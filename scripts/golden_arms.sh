#!/usr/bin/env bash
# Run every topology x scheme arm through noc_explorer with a short, fixed
# workload and concatenate the per-arm CSV rows into one file.
#
#   scripts/golden_arms.sh <noc_explorer-binary> <out-csv> [extra-flag ...]
#
# Any extra arguments are passed through to every noc_explorer invocation
# (e.g. `routing=dor` to pin the routing plugin explicitly — tier1's
# routing gate uses this to prove the plugin path is bitwise identical to
# the registry default).
#
# The output is bitwise deterministic for a given simulator build, so a file
# produced by one build can be cmp'd against another build to prove the two
# behave identically (tests/golden/prerewrite_arms.csv pins the behaviour of
# the scalar pre-bitmask hot path; scripts/tier1.sh re-runs this script and
# requires an exact match).
set -euo pipefail

if [ $# -lt 2 ]; then
  echo "usage: $0 <noc_explorer-binary> <out-csv> [extra-flag ...]" >&2
  exit 2
fi
bin=$1
out=$2
shift 2
extra=("$@")

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

: > "$out"
first=1
for topo in mesh cmesh fbfly torus; do
  for scheme in if wf ap vix ideal pc islip sparoflo; do
    "$bin" topology="$topo" scheme="$scheme" rate=0.06 vcs=6 depth=5 \
      packet=4 seed=7 warmup=500 measure=2000 drain=1500 \
      csv="$tmp/arm.csv" ${extra[@]+"${extra[@]}"} > /dev/null
    if [ "$first" -eq 1 ]; then
      cat "$tmp/arm.csv" >> "$out"
      first=0
    else
      tail -n +2 "$tmp/arm.csv" >> "$out"
    fi
  done
done
