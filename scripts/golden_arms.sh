#!/usr/bin/env bash
# Run every topology x scheme arm through noc_explorer with a short, fixed
# workload and concatenate the per-arm CSV rows into one file.
#
#   scripts/golden_arms.sh <noc_explorer-binary> <out-csv>
#
# The output is bitwise deterministic for a given simulator build, so a file
# produced by one build can be cmp'd against another build to prove the two
# behave identically (tests/golden/prerewrite_arms.csv pins the behaviour of
# the scalar pre-bitmask hot path; scripts/tier1.sh re-runs this script and
# requires an exact match).
set -euo pipefail

if [ $# -ne 2 ]; then
  echo "usage: $0 <noc_explorer-binary> <out-csv>" >&2
  exit 2
fi
bin=$1
out=$2

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

: > "$out"
first=1
for topo in mesh cmesh fbfly torus; do
  for scheme in if wf ap vix ideal pc islip sparoflo; do
    "$bin" topology="$topo" scheme="$scheme" rate=0.06 vcs=6 depth=5 \
      packet=4 seed=7 warmup=500 measure=2000 drain=1500 \
      csv="$tmp/arm.csv" > /dev/null
    if [ "$first" -eq 1 ]; then
      cat "$tmp/arm.csv" >> "$out"
      first=0
    else
      tail -n +2 "$tmp/arm.csv" >> "$out"
    fi
  done
done
