#!/usr/bin/env bash
# Tier-1 verification: the gate every PR must keep green.
#
#  1. standard Release-ish build + full ctest suite;
#  2. ThreadSanitizer build (-DVIXNOC_SANITIZE=thread) running sweep_test,
#     which drives SweepRunner at 1/2/8 threads — any data race in the
#     parallel sweep path fails the script;
#  3. ASan+UBSan build (-DVIXNOC_SANITIZE=address,undefined) running the
#     fault/robustness/sweep tests — the error-recovery paths (SimError
#     unwinding out of half-built networks, watchdog aborts mid-run,
#     fault-schedule sampling) are exactly where leaks and UB would hide.
#
# Usage: scripts/tier1.sh [build-dir-prefix]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build}"

echo "== tier1: build + ctest (${PREFIX}) =="
cmake -B "${PREFIX}" -S .
cmake --build "${PREFIX}" -j
(cd "${PREFIX}" && ctest --output-on-failure -j)

echo "== tier1: ThreadSanitizer sweep_test (${PREFIX}-tsan) =="
cmake -B "${PREFIX}-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVIXNOC_SANITIZE=thread
cmake --build "${PREFIX}-tsan" -j --target sweep_test
"${PREFIX}-tsan/tests/sweep_test"

echo "== tier1: ASan+UBSan fault/robustness tests (${PREFIX}-asan) =="
cmake -B "${PREFIX}-asan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVIXNOC_SANITIZE=address,undefined
cmake --build "${PREFIX}-asan" -j --target fault_test robustness_test \
  sweep_test
"${PREFIX}-asan/tests/fault_test"
"${PREFIX}-asan/tests/robustness_test"
"${PREFIX}-asan/tests/sweep_test"

echo "== tier1: OK =="
