#!/usr/bin/env bash
# Tier-1 verification: the gate every PR must keep green.
#
#  1. standard Release-ish build + full ctest suite;
#  2. ThreadSanitizer build (-DVIXNOC_SANITIZE=thread) running sweep_test,
#     which drives SweepRunner at 1/2/8 threads — any data race in the
#     parallel sweep path fails the script;
#  3. ASan+UBSan build (-DVIXNOC_SANITIZE=address,undefined) running the
#     fault/robustness/sweep tests — the error-recovery paths (SimError
#     unwinding out of half-built networks, watchdog aborts mid-run,
#     fault-schedule sampling) are exactly where leaks and UB would hide;
#  4. telemetry gate: telemetry_test (pins bitwise identity of
#     telemetry-off runs against frozen goldens AND off-vs-on identity),
#     then a bench_ext_telemetry run whose JSONL packet trace is
#     schema-validated with python3 (skipped if python3 is absent);
#  5. checkpoint/restore gate (snapshot_test + CLI save/kill/resume + bench
#     point-cache resume, all byte-compared);
#  6. golden-arms identity gate: every topology x scheme arm re-run through
#     noc_explorer and cmp'd against tests/golden/prerewrite_arms.csv — the
#     bitmask/SoA hot path must stay bitwise identical to the scalar one —
#     then re-run with an explicit routing=dor flag and cmp'd again: the
#     table-driven routing plugin must not perturb a single byte;
#  7. process-isolation gate: exec_test (injected worker crashes, hangs,
#     bad frames, retry/backoff, fallback), then a real sweep run twice —
#     isolate=process vs in-process — with a field-by-field JSON compare
#     of every result row: crash isolation must not change a single
#     number;
#  8. service gate: a real vixnocd daemon is started on a Unix socket and
#     the same sweep is run twice through vixnoc_client — run 2 must be
#     served 100% from the content-addressed result store with every
#     result field identical to run 1, and the daemon must drain to a
#     clean exit 0 on the shutdown frame;
#  9. perf smoke gate: bench_sim_speed compared against the committed
#     trajectory (BENCH_sim_speed.json) via scripts/bench_trajectory.py;
#     the trajectory includes the sweep_process arm, so subprocess-mode
#     throughput is gated alongside the in-process arms.
#
# Usage: scripts/tier1.sh [build-dir-prefix]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build}"

echo "== tier1: build + ctest (${PREFIX}) =="
cmake -B "${PREFIX}" -S .
cmake --build "${PREFIX}" -j
(cd "${PREFIX}" && ctest --output-on-failure -j)

echo "== tier1: ThreadSanitizer sweep_test (${PREFIX}-tsan) =="
cmake -B "${PREFIX}-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVIXNOC_SANITIZE=thread
cmake --build "${PREFIX}-tsan" -j --target sweep_test alloc_equiv_test \
  routing_test serenade_test store_test server_test
"${PREFIX}-tsan/tests/sweep_test"
# alloc_equiv_test now sweeps radixes 2..70 (multi-word rows included), so
# the large-radix word-parallel paths run under the sanitizer too.
"${PREFIX}-tsan/tests/alloc_equiv_test"
# routing_test drives the adaptive arm through SweepRunner at 1/2/8
# threads and the subprocess coordinator — the candidate-selection VA
# path must be as race-free as the deterministic one.
"${PREFIX}-tsan/tests/routing_test"
# serenade_test pins the randomized allocator's determinism contract at
# 1/2/8 threads and across the subprocess coordinator — the per-router
# RNG streams must stay race-free and bitwise stable.
"${PREFIX}-tsan/tests/serenade_test"
# store_test hammers the result store from concurrent writers; server_test
# drives the daemon's accept/conn/compute threads, single-flight map and
# drain logic — the whole service layer must be race-free.
"${PREFIX}-tsan/tests/store_test"
"${PREFIX}-tsan/tests/server_test"

echo "== tier1: ASan+UBSan fault/robustness tests (${PREFIX}-asan) =="
cmake -B "${PREFIX}-asan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVIXNOC_SANITIZE=address,undefined
cmake --build "${PREFIX}-asan" -j --target fault_test robustness_test \
  sweep_test alloc_equiv_test exec_test routing_test serenade_test \
  store_test server_test
"${PREFIX}-asan/tests/fault_test"
"${PREFIX}-asan/tests/robustness_test"
"${PREFIX}-asan/tests/sweep_test"
"${PREFIX}-asan/tests/alloc_equiv_test"
"${PREFIX}-asan/tests/routing_test"
# serenade_test under ASan+UBSan covers the knot-decomposition DFS, the
# snapshot save/load path, and the checkpoint/restore plumbing.
"${PREFIX}-asan/tests/serenade_test"
# exec_test under ASan covers the fork/exec/pipe plumbing and the
# coordinator's threads; the worker binary it spawns is the ASan build.
"${PREFIX}-asan/tests/exec_test"
# store_test/server_test under ASan+UBSan cover the snapshot container
# codec on hostile bytes (every truncation/corruption), the socket frame
# plumbing, and the daemon teardown paths; the vixnocd binary server_test
# SIGTERMs is the ASan build.
"${PREFIX}-asan/tests/store_test"
"${PREFIX}-asan/tests/server_test"

echo "== tier1: telemetry gate (${PREFIX}) =="
# telemetry_test asserts (a) telemetry-off results are bitwise identical to
# the pre-telemetry goldens and (b) telemetry-on results are bitwise
# identical to telemetry-off — the zero-overhead contract.
"${PREFIX}/tests/telemetry_test"
TRACE_JSONL="${PREFIX}/telemetry_trace.jsonl"
"${PREFIX}/bench/bench_ext_telemetry" "trace=${TRACE_JSONL}" \
  "json=${PREFIX}/telemetry_bench_results.json"
if command -v python3 >/dev/null 2>&1; then
  python3 - "${TRACE_JSONL}" <<'EOF'
import json, sys
keys = {"packet", "event", "cycle", "router", "src", "dst"}
events = {"inject", "vc_alloc", "sa_grant", "eject"}
n = 0
with open(sys.argv[1]) as f:
    for line in f:
        ev = json.loads(line)
        assert set(ev) == keys, f"bad key set: {sorted(ev)}"
        assert ev["event"] in events, f"bad event kind: {ev['event']}"
        assert ev["cycle"] >= 0 and ev["packet"] >= 0 and ev["router"] >= -1
        n += 1
assert n > 0, "empty trace"
print(f"telemetry trace schema OK ({n} events)")
EOF
else
  echo "python3 not found; skipping JSONL schema validation"
fi

echo "== tier1: checkpoint/restore gate (${PREFIX}) =="
# snapshot_test pins the core contract (restore-then-run is bitwise
# identical to an uninterrupted run; corrupted checkpoints throw SimError).
"${PREFIX}/tests/snapshot_test"
# End-to-end save/kill/resume through the CLI: a run that checkpoints and a
# run restored from that checkpoint must produce byte-identical CSVs.
CKPT_DIR="${PREFIX}/ckpt_gate"
rm -rf "${CKPT_DIR}" && mkdir -p "${CKPT_DIR}"
EXPLORER="${PREFIX}/examples/noc_explorer"
COMMON=(rate=0.1 warmup=500 measure=1500 drain=500 seed=7)
"${EXPLORER}" "${COMMON[@]}" "csv=${CKPT_DIR}/straight.csv" >/dev/null
"${EXPLORER}" "${COMMON[@]}" "checkpoint=${CKPT_DIR}/state.ckpt" \
  checkpoint_every=900 "csv=${CKPT_DIR}/saving.csv" >/dev/null
"${EXPLORER}" "${COMMON[@]}" "restore=${CKPT_DIR}/state.ckpt" \
  "csv=${CKPT_DIR}/resumed.csv" >/dev/null
cmp "${CKPT_DIR}/straight.csv" "${CKPT_DIR}/saving.csv"
cmp "${CKPT_DIR}/straight.csv" "${CKPT_DIR}/resumed.csv"
echo "CLI save/restore CSVs byte-identical"
# Bench resume: an interrupted sweep re-run over its point cache must emit
# the same results as a straight run (field-by-field JSON compare).
BENCH="${PREFIX}/bench/bench_ext_telemetry"
if [ -x "${BENCH}" ] && command -v python3 >/dev/null 2>&1; then
  "${BENCH}" "json=${CKPT_DIR}/straight.json" >/dev/null
  "${BENCH}" "json=${CKPT_DIR}/first.json" \
    "checkpoint=${CKPT_DIR}/bench_cache" >/dev/null
  # Evict one entry from the content-addressed store so the re-run has to
  # recompute exactly that point while resuming all the others.
  EVICT="$(find "${CKPT_DIR}/bench_cache" -name '*.res' | sort | head -n 1)"
  rm -f "${EVICT}"
  "${BENCH}" "json=${CKPT_DIR}/resumed.json" \
    "checkpoint=${CKPT_DIR}/bench_cache" >/dev/null
  python3 - "${CKPT_DIR}/straight.json" "${CKPT_DIR}/resumed.json" <<'EOF'
import json, sys
straight = json.load(open(sys.argv[1]))
resumed = json.load(open(sys.argv[2]))
assert resumed.get("resumed_points", 0) > 0, "no points resumed from cache"
a, b = straight["results"], resumed["results"]
assert len(a) == len(b), f"point count differs: {len(a)} vs {len(b)}"
for i, (ra, rb) in enumerate(zip(a, b)):
    for key in sorted(set(ra) | set(rb)):
        assert ra.get(key) == rb.get(key), (
            f"point {i} field {key!r}: {ra.get(key)!r} != {rb.get(key)!r}")
print(f"bench resume results identical ({len(a)} points, "
      f"{resumed['resumed_points']} from cache)")
EOF
else
  echo "bench_ext_telemetry or python3 not found; skipping bench resume gate"
fi

echo "== tier1: golden-arms identity gate (${PREFIX}) =="
# Every topology x scheme arm, re-run and byte-compared against the frozen
# pre-rewrite CSV: the word-parallel/SoA hot path must produce exactly the
# same allocation decisions as the scalar implementation it replaced.
scripts/golden_arms.sh "${PREFIX}/examples/noc_explorer" \
  "${PREFIX}/golden_arms.csv"
cmp tests/golden/prerewrite_arms.csv "${PREFIX}/golden_arms.csv"
echo "golden arms bitwise-identical to tests/golden/prerewrite_arms.csv"
# Routing gate: the same 32 arms with the routing plugin named explicitly.
# routing=dor must reproduce the registry-default goldens byte for byte —
# the table-driven plugin path is a refactor, not a behaviour change.
scripts/golden_arms.sh "${PREFIX}/examples/noc_explorer" \
  "${PREFIX}/golden_arms_routing.csv" routing=dor
cmp tests/golden/prerewrite_arms.csv "${PREFIX}/golden_arms_routing.csv"
echo "routing=dor arms bitwise-identical to tests/golden/prerewrite_arms.csv"

echo "== tier1: process-isolation gate (${PREFIX}) =="
# exec_test drives SweepCoordinator against the real worker binary with
# injected crashes, hangs, nonzero exits and truncated frames: the batch
# must always complete, failures must be classified, retries must land on
# respawned workers, and every surviving result must be bitwise identical
# to a serial in-process run.
"${PREFIX}/tests/exec_test"
# A real sweep executed both ways must agree on every emitted field
# (exec-only provenance keys aside): process isolation is an execution
# detail, never a results change.
ISOL_DIR="${PREFIX}/isolation_gate"
rm -rf "${ISOL_DIR}" && mkdir -p "${ISOL_DIR}"
BENCH="${PREFIX}/bench/bench_ext_telemetry"
if [ -x "${BENCH}" ] && command -v python3 >/dev/null 2>&1; then
  "${BENCH}" "json=${ISOL_DIR}/inproc.json" >/dev/null
  "${BENCH}" "json=${ISOL_DIR}/isolated.json" isolate=process \
    point_timeout=120 >/dev/null
  python3 - "${ISOL_DIR}/inproc.json" "${ISOL_DIR}/isolated.json" <<'EOF'
import json, sys
inproc = json.load(open(sys.argv[1]))
isolated = json.load(open(sys.argv[2]))
exec_info = isolated.get("exec")
assert exec_info and exec_info.get("isolate") == "process", \
    "isolated run carries no exec provenance"
assert exec_info["fallback_points"] == 0, \
    f"worker unavailable: {exec_info['fallback_points']} points fell back"
assert exec_info["exhausted_points"] == 0, exec_info
a, b = inproc["results"], isolated["results"]
assert len(a) == len(b), f"point count differs: {len(a)} vs {len(b)}"
exec_keys = {"attempts", "from_cache", "in_process_fallback",
             "exec_failure", "exec_detail"}
for i, (ra, rb) in enumerate(zip(a, b)):
    for key in sorted((set(ra) | set(rb)) - exec_keys):
        assert ra.get(key) == rb.get(key), (
            f"point {i} field {key!r}: {ra.get(key)!r} != {rb.get(key)!r}")
print(f"isolate=process results identical to in-process ({len(a)} points, "
      f"{exec_info['workers_spawned']} worker(s) spawned)")
EOF
else
  echo "bench_ext_telemetry or python3 not found; skipping sweep compare"
fi

echo "== tier1: service gate (${PREFIX}) =="
# A real vixnocd daemon serves the same sweep twice: run 1 populates the
# content-addressed store, run 2 must be answered entirely from it with
# every result field identical, and the shutdown frame must drain the
# daemon to a clean exit 0 with the socket unlinked.
VIXNOCD="${PREFIX}/src/app/vixnocd"
VIXCLIENT="${PREFIX}/src/app/vixnoc_client"
SVC_DIR="${PREFIX}/service_gate"
rm -rf "${SVC_DIR}" && mkdir -p "${SVC_DIR}"
if [ -x "${VIXNOCD}" ] && [ -x "${VIXCLIENT}" ] \
    && command -v python3 >/dev/null 2>&1; then
  "${VIXNOCD}" "socket=${SVC_DIR}/vixd.sock" "store=${SVC_DIR}/store" \
    threads=4 >"${SVC_DIR}/daemon.log" 2>&1 &
  VIXNOCD_PID=$!
  trap 'kill "${VIXNOCD_PID}" 2>/dev/null || true' EXIT
  SWEEP=(sweep "socket=${SVC_DIR}/vixd.sock" warmup=500 measure=1500 \
    drain=500)
  "${VIXCLIENT}" "${SWEEP[@]}" "json=${SVC_DIR}/run1.json" >/dev/null
  "${VIXCLIENT}" "${SWEEP[@]}" "json=${SVC_DIR}/run2.json" >/dev/null
  "${VIXCLIENT}" shutdown "socket=${SVC_DIR}/vixd.sock" >/dev/null
  wait "${VIXNOCD_PID}"
  trap - EXIT
  [ ! -e "${SVC_DIR}/vixd.sock" ] || { echo "socket not unlinked"; exit 1; }
  python3 - "${SVC_DIR}/run1.json" "${SVC_DIR}/run2.json" <<'EOF'
import json, sys
run1 = json.load(open(sys.argv[1]))
run2 = json.load(open(sys.argv[2]))
assert run1["errors"] == 0 and run2["errors"] == 0, "daemon-side errors"
assert run2["points"] > 0, "empty sweep"
assert run2["store_hits"] == run2["points"] and run2["computed"] == 0, (
    f"run 2 must be 100% store hits: {run2['store_hits']}/{run2['points']} "
    f"hits, {run2['computed']} computed")
a, b = run1["results"], run2["results"]
assert len(a) == len(b), f"point count differs: {len(a)} vs {len(b)}"
for i, (ra, rb) in enumerate(zip(a, b)):
    for key in sorted((set(ra) | set(rb)) - {"source"}):
        assert ra.get(key) == rb.get(key), (
            f"point {i} field {key!r}: {ra.get(key)!r} != {rb.get(key)!r}")
print(f"service gate: run 2 served {run2['store_hits']}/{run2['points']} "
      "points from the store, results identical; daemon drained to exit 0")
EOF
else
  echo "vixnocd/vixnoc_client/python3 not found; skipping service gate"
fi

echo "== tier1: perf smoke gate (${PREFIX}) =="
# bench_sim_speed against the committed trajectory. The smoke tolerance is
# deliberately loose (50%) so CI noise never flakes the gate while a real
# return-to-scalar regression (the committed entries are 2x+ apart) still
# fails loudly. Use the default 10% tolerance when benchmarking by hand.
if command -v python3 >/dev/null 2>&1; then
  "${PREFIX}/bench/bench_sim_speed" "json=${PREFIX}/perf_smoke.json" \
    >/dev/null
  python3 scripts/bench_trajectory.py check \
    --results "${PREFIX}/perf_smoke.json" --max-regression 0.5
else
  echo "python3 not found; skipping perf smoke gate"
fi

echo "== tier1: OK =="
