#!/usr/bin/env python3
"""Maintain and gate the repo's committed simulator-speed trajectory.

BENCH_sim_speed.json (repo root) is an append-only list of measurement
entries, one per committed optimization milestone. Each entry records the
per-arm throughput of bench_sim_speed (router-cycles/s for every micro arm
plus the serial sweep's network-cycles/s) and the build provenance.

Subcommands:

  check    Compare a fresh bench_results.json against the LAST committed
           trajectory entry. Fails (exit 1) when any arm is more than
           --max-regression (default 10%) below the committed value, or
           when the results came from a non-NDEBUG build.

  append   Add a new trajectory entry from a bench_results.json. Refuses
           non-NDEBUG builds.

Typical workflow after a performance-relevant change:

  ./build/bench/bench_sim_speed json=/tmp/bench.json
  scripts/bench_trajectory.py check --results /tmp/bench.json
  # and when the change is a milestone worth pinning:
  scripts/bench_trajectory.py append --results /tmp/bench.json \
      --label "short description of the change"
"""

import argparse
import datetime
import json
import sys

# Arms that only run when explicitly enabled on the bench command line
# (e.g. `bench_sim_speed serenade=1` or `service=1`). Their absence from a
# results file is a skipped run, not a regression. sweep_process
# additionally vanishes on hosts without the vixnoc_sweep_worker binary
# next to the bench, so it is treated the same way. Every other committed
# arm is mandatory: missing means the bench silently lost coverage, and
# the check fails.
GATED_ARMS = {"BM_SingleRouter_Serenade", "sweep_process", "service_hits"}


def load_results(path):
    """Extract {arm: cycles/s} plus build info from a bench_sim_speed
    results file (the `json=` output of bench/bench_sim_speed)."""
    with open(path) as f:
        data = json.load(f)
    if data.get("bench") != "sim_speed":
        sys.exit(f"{path}: not a bench_sim_speed results file "
                 f"(bench={data.get('bench')!r})")
    arms = {}
    for micro in data.get("micro", []):
        arms[micro["name"]] = micro["router_cycles_per_second"]
    # The serial sweep run is the end-to-end arm; threads>1 runs vary with
    # host load and are informational only. The crash-isolated subprocess
    # run is its own arm so the cost of process isolation is tracked and
    # gated like any other throughput number.
    for run in data.get("sweep", {}).get("runs", []):
        if run.get("isolate") == "process":
            arms["sweep_process"] = run["network_cycles_per_second"]
        elif run.get("threads") == 1:
            arms["sweep_serial"] = run["network_cycles_per_second"]
    # Service arm (bench_sim_speed service=1): warm-path request rate of
    # the vixnocd daemon serving pure store hits over its Unix socket —
    # the protocol + store-probe overhead with zero simulation in it.
    service = data.get("service")
    if service is not None:
        arms["service_hits"] = service["hit_requests_per_second"]
    if not arms:
        sys.exit(f"{path}: no arms found (empty micro and sweep sections)")
    return arms, data.get("build")


def load_trajectory(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except FileNotFoundError:
        return {"bench": "sim_speed", "entries": []}
    if data.get("bench") != "sim_speed" or "entries" not in data:
        sys.exit(f"{path}: not a sim_speed trajectory file")
    return data


def require_ndebug(build, path):
    if build is not None and build.get("ndebug") is False:
        sys.exit(f"{path}: results were produced by a non-NDEBUG (debug) "
                 "build; rebuild with CMAKE_BUILD_TYPE=Release")


def cmd_check(args):
    arms, build = load_results(args.results)
    require_ndebug(build, args.results)
    trajectory = load_trajectory(args.trajectory)
    if not trajectory["entries"]:
        sys.exit(f"{args.trajectory}: no committed entries to compare "
                 "against; run `append` first")
    last = trajectory["entries"][-1]
    committed = last["arms"]
    failures = []
    print(f"comparing against entry '{last['label']}' ({last['date']}):")
    for name in sorted(committed):
        if name not in arms:
            if name in GATED_ARMS:
                print(f"  {name:<24} committed {committed[name]:>14.0f}  "
                      "skipped (gated arm not enabled this run)")
            else:
                print(f"  {name:<24} committed {committed[name]:>14.0f}  "
                      "MISSING from results")
                failures.append(name)
            continue
        ratio = arms[name] / committed[name] if committed[name] > 0 else 1.0
        status = "ok"
        if ratio < 1.0 - args.max_regression:
            status = "REGRESSION"
            failures.append(name)
        print(f"  {name:<24} committed {committed[name]:>14.0f}  "
              f"now {arms[name]:>14.0f}  {ratio:>7.2%}  {status}")
    for name in sorted(set(arms) - set(committed)):
        print(f"  {name:<24} new arm (no committed value): "
              f"{arms[name]:.0f}")
    if failures:
        print(f"FAIL: {len(failures)} arm(s) missing or more than "
              f"{args.max_regression:.0%} below the committed trajectory: "
              f"{', '.join(failures)}")
        return 1
    print("perf trajectory OK")
    return 0


def cmd_append(args):
    arms, build = load_results(args.results)
    require_ndebug(build, args.results)
    trajectory = load_trajectory(args.trajectory)
    entry = {
        "label": args.label,
        "date": args.date or datetime.date.today().isoformat(),
        "build": build,
        "arms": arms,
    }
    trajectory["entries"].append(entry)
    with open(args.trajectory, "w") as f:
        json.dump(trajectory, f, indent=2)
        f.write("\n")
    print(f"appended entry '{args.label}' with {len(arms)} arms to "
          f"{args.trajectory}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--results", default="bench_results.json",
                        help="bench_sim_speed JSON output to read")
    common.add_argument("--trajectory", default="BENCH_sim_speed.json",
                        help="committed trajectory file")

    check = sub.add_parser("check", parents=[common],
                           help="fail on >max-regression slowdown vs the "
                                "last committed entry")
    check.add_argument("--max-regression", type=float, default=0.10,
                       help="allowed fractional slowdown per arm "
                            "(default 0.10)")
    check.set_defaults(func=cmd_check)

    append = sub.add_parser("append", parents=[common],
                            help="append a new trajectory entry")
    append.add_argument("--label", required=True,
                        help="short description of the milestone")
    append.add_argument("--date", default=None,
                        help="ISO date override (default: today)")
    append.set_defaults(func=cmd_append)

    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
