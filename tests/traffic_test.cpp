#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "traffic/patterns.hpp"

namespace vixnoc {
namespace {

TEST(Uniform, NeverSelf) {
  UniformRandomPattern p;
  Rng rng(1);
  for (NodeId src = 0; src < 64; ++src) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_NE(p.Dest(src, 64, rng), src);
    }
  }
}

TEST(Uniform, CoversAllDestinationsUniformly) {
  UniformRandomPattern p;
  Rng rng(2);
  std::map<NodeId, int> counts;
  constexpr int kDraws = 63000;
  for (int i = 0; i < kDraws; ++i) ++counts[p.Dest(5, 64, rng)];
  EXPECT_EQ(counts.size(), 63u);
  for (const auto& [dst, c] : counts) {
    EXPECT_NEAR(c, 1000, 150) << "dst " << dst;
  }
}

TEST(Transpose, MapsCoordinateSwap) {
  TransposePattern p;
  Rng rng(3);
  // Node (x=3, y=1) = 11 -> (x=1, y=3) = 25 on an 8x8 layout.
  EXPECT_EQ(p.Dest(11, 64, rng), 25);
  // Diagonal nodes map to themselves and must be remapped off-self.
  EXPECT_NE(p.Dest(9, 64, rng), 9);  // (1,1)
}

TEST(Transpose, IsInvolutionOffDiagonal) {
  TransposePattern p;
  Rng rng(4);
  for (NodeId n = 0; n < 64; ++n) {
    const NodeId d = p.Dest(n, 64, rng);
    if (d == (n % 8) * 8 + n / 8) {  // true transpose (not remapped)
      EXPECT_EQ(p.Dest(d, 64, rng), n);
    }
  }
}

TEST(BitComplement, MapsToComplement) {
  BitComplementPattern p;
  Rng rng(5);
  EXPECT_EQ(p.Dest(0, 64, rng), 63);
  EXPECT_EQ(p.Dest(63, 64, rng), 0);
  EXPECT_EQ(p.Dest(21, 64, rng), 42);
}

TEST(BitReverse, ReversesIndexBits) {
  BitReversePattern p;
  Rng rng(6);
  EXPECT_EQ(p.Dest(1, 64, rng), 32);   // 000001 -> 100000
  EXPECT_EQ(p.Dest(3, 64, rng), 48);   // 000011 -> 110000
  EXPECT_NE(p.Dest(0, 64, rng), 0);    // palindrome remapped off-self
}

TEST(Tornado, HalfwayAroundBothDimensions) {
  TornadoPattern p;
  Rng rng(7);
  // (0,0) -> (4,4) = 36 on 8x8.
  EXPECT_EQ(p.Dest(0, 64, rng), 36);
  // (4,4) -> (0,0).
  EXPECT_EQ(p.Dest(36, 64, rng), 0);
}

TEST(Hotspot, FractionHitsHotspot) {
  HotspotPattern p(/*hotspot=*/10, /*hot_fraction=*/0.25);
  Rng rng(8);
  int hot = 0;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    if (p.Dest(3, 64, rng) == 10) ++hot;
  }
  // 25% direct + ~1.2% of the uniform remainder also lands on 10.
  EXPECT_NEAR(hot / static_cast<double>(kDraws), 0.262, 0.02);
}

TEST(Hotspot, HotspotNodeItselfSendsUniform) {
  HotspotPattern p(10, 0.5);
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(p.Dest(10, 64, rng), 10);
  }
}

class PatternKindTest : public ::testing::TestWithParam<PatternKind> {};

TEST_P(PatternKindTest, FactoryProducesValidDestinations) {
  auto p = MakePattern(GetParam());
  Rng rng(11);
  for (NodeId src = 0; src < 64; src += 5) {
    for (int i = 0; i < 100; ++i) {
      const NodeId d = p->Dest(src, 64, rng);
      EXPECT_GE(d, 0);
      EXPECT_LT(d, 64);
      EXPECT_NE(d, src);
    }
  }
}

TEST_P(PatternKindTest, HasName) {
  EXPECT_FALSE(MakePattern(GetParam())->Name().empty());
}

INSTANTIATE_TEST_SUITE_P(All, PatternKindTest,
                         ::testing::Values(PatternKind::kUniform,
                                           PatternKind::kTranspose,
                                           PatternKind::kBitComplement,
                                           PatternKind::kBitReverse,
                                           PatternKind::kTornado,
                                           PatternKind::kHotspot,
                                           PatternKind::kIncast));

// ---------------------------------------------------------------------------
// Hotspot node derivation and the incast pattern.

TEST(Hotspot, DefaultNodeDerivesFromTopologySize) {
  // Square layouts: off-center (side/2 - 1, side/2 - 1). The 64-node value
  // is pinned to 27 — the historical hardcode — so goldens are untouched.
  EXPECT_EQ(DefaultHotspotNode(64), 27);
  EXPECT_EQ(DefaultHotspotNode(16), 5);    // 4x4: (1,1)
  EXPECT_EQ(DefaultHotspotNode(256), 119); // 16x16: (7,7)
  // Non-square: N/2 - 1.
  EXPECT_EQ(DefaultHotspotNode(8), 3);
  EXPECT_EQ(DefaultHotspotNode(2), 0);
}

TEST(Hotspot, DerivedDefaultIsUsedWhenNodeIsUnset) {
  HotspotPattern derived(kInvalidNode, 1.0);
  Rng rng(3);
  // hot_fraction 1.0: every non-hotspot source targets the hot node.
  EXPECT_EQ(derived.Dest(0, 64, rng), 27);
  EXPECT_EQ(derived.Dest(0, 16, rng), 5);
}

TEST(Incast, SendersTargetReceiverOthersSendBackground) {
  // Receiver 10, fan-in 4: senders are the 4 lowest-numbered nodes
  // excluding the receiver, i.e. 0..3.
  IncastPattern p(/*receiver=*/10, /*fan_in=*/4);
  Rng rng(4);
  for (NodeId src : {0, 1, 2, 3}) {
    for (int i = 0; i < 50; ++i) EXPECT_EQ(p.Dest(src, 64, rng), 10);
  }
  // Non-senders (including the receiver) draw uniform background and may
  // hit any node but themselves.
  std::map<NodeId, int> seen;
  for (int i = 0; i < 2000; ++i) {
    const NodeId d = p.Dest(5, 64, rng);
    EXPECT_NE(d, 5);
    ++seen[d];
  }
  EXPECT_GT(seen.size(), 40u);  // spread, not concentrated
  for (int i = 0; i < 200; ++i) EXPECT_NE(p.Dest(10, 64, rng), 10);
}

TEST(Incast, SenderSetSkipsOverTheReceiver) {
  // Receiver 1, fan-in 3: senders are 0, 2, 3 (rank skips the receiver).
  IncastPattern p(1, 3);
  Rng rng(5);
  for (NodeId src : {0, 2, 3}) {
    for (int i = 0; i < 30; ++i) EXPECT_EQ(p.Dest(src, 16, rng), 1);
  }
  bool node4_always_hot = true;
  for (int i = 0; i < 200; ++i) {
    if (p.Dest(4, 16, rng) != 1) node4_always_hot = false;
  }
  EXPECT_FALSE(node4_always_hot);
}

TEST(Incast, NonPositiveFanInMeansAllToOne) {
  IncastPattern p(kInvalidNode, 0);  // derived receiver, everyone sends
  Rng rng(6);
  for (NodeId src = 0; src < 64; ++src) {
    if (src == 27) continue;
    EXPECT_EQ(p.Dest(src, 64, rng), 27);
  }
  EXPECT_NE(p.Dest(27, 64, rng), 27);
}

TEST(Incast, FactoryThreadsOptionsThrough) {
  PatternOptions opts;
  opts.hotspot_node = 7;
  opts.incast_fanin = 2;
  auto p = MakePattern(PatternKind::kIncast, opts);
  Rng rng(7);
  EXPECT_EQ(p->Dest(0, 64, rng), 7);
  EXPECT_EQ(p->Dest(1, 64, rng), 7);
}

}  // namespace
}  // namespace vixnoc
