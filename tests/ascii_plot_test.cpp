#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/ascii_plot.hpp"

namespace vixnoc {
namespace {

std::string Render(const AsciiPlot& plot) {
  std::FILE* f = std::tmpfile();
  plot.Print(f);
  std::rewind(f);
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(AsciiPlot, EmptyPlotSafe) {
  AsciiPlot plot(40, 10, "x", "y");
  EXPECT_NE(Render(plot).find("(empty plot)"), std::string::npos);
}

TEST(AsciiPlot, MarkersAppear) {
  AsciiPlot plot(40, 10, "x", "y");
  plot.AddSeries("a", '*', {{0.0, 0.0}, {1.0, 1.0}, {2.0, 4.0}});
  const std::string out = Render(plot);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("*=a"), std::string::npos);
}

TEST(AsciiPlot, ExtremesLandOnCanvasCorners) {
  AsciiPlot plot(20, 5, "x", "y");
  plot.AddSeries("s", 'o', {{0.0, 0.0}, {1.0, 1.0}});
  const std::string out = Render(plot);
  // Max point on the top row, min point on the bottom row.
  const auto first_row = out.find('|');
  ASSERT_NE(first_row, std::string::npos);
  EXPECT_EQ(out[first_row + 20], 'o');  // last column of top row
}

TEST(AsciiPlot, YLimitClampsOutliers) {
  AsciiPlot plot(20, 5, "x", "y");
  plot.SetYLimit(10.0);
  plot.AddSeries("s", 'x', {{0.0, 5.0}, {1.0, 1e9}});
  const std::string out = Render(plot);
  // The outlier is drawn at the clamp, and the axis tops out at 10.
  EXPECT_NE(out.find("10.0"), std::string::npos);
  EXPECT_EQ(out.find("1000000000"), std::string::npos);
}

TEST(AsciiPlot, MultipleSeriesKeepDistinctMarkers) {
  AsciiPlot plot(30, 8, "x", "y");
  plot.AddSeries("one", '1', {{0.0, 1.0}});
  plot.AddSeries("two", '2', {{1.0, 2.0}});
  const std::string out = Render(plot);
  EXPECT_NE(out.find('1'), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);
  EXPECT_NE(out.find("1=one"), std::string::npos);
  EXPECT_NE(out.find("2=two"), std::string::npos);
}

}  // namespace
}  // namespace vixnoc
