// Greedy vs separable-arbitrated VC allocation.
#include <gtest/gtest.h>

#include <vector>

#include "router/router.hpp"
#include "sim/network_sim.hpp"

namespace vixnoc {
namespace {

class PortIsDestRouting final : public RoutingAlgorithm {
 public:
  PortId Route(RouterId, NodeId dst) const override { return dst % 5; }
  PortDimension DimensionOf(PortId port) const override {
    if (port < 2) return PortDimension::kX;
    if (port < 4) return PortDimension::kY;
    return PortDimension::kLocal;
  }
};

std::vector<OutputLinkInfo> TestLinks() {
  std::vector<OutputLinkInfo> links(5);
  for (PortId p = 0; p < 4; ++p) links[p] = {1, p, kInvalidNode};
  links[4] = {-1, kInvalidPort, 0};
  return links;
}

Flit HeadTail(PacketId id, VcId vc, PortId route_out) {
  Flit f;
  f.packet_id = id;
  f.src = 1;
  f.dst = route_out;
  f.type = FlitType::kHeadTail;
  f.packet_size = 1;
  f.vc = vc;
  f.route_out = route_out;
  return f;
}

RouterConfig Config(VaOrganization org) {
  RouterConfig c;
  c.radix = 5;
  c.num_vcs = 2;
  c.buffer_depth = 3;
  c.va_organization = org;
  return c;
}

TEST(VaOrganization, GreedyResolvesConflictSameCycle) {
  // Two heads prefer the same output VC (equal credits -> both prefer VC
  // 0). Greedy VA lets the loser take VC 1 in the same cycle: both flits
  // traverse together (distinct ports, distinct output VCs).
  PortIsDestRouting routing;
  Router r(0, Config(VaOrganization::kGreedyRotating), TestLinks(),
           &routing);
  std::vector<Router::SentFlit> sent;
  std::vector<Router::SentCredit> credits;
  r.AcceptFlit(0, HeadTail(1, 0, 2));
  r.AcceptFlit(1, HeadTail(2, 0, 3));  // different outputs: no SA conflict
  r.Step(0, &sent, &credits);
  EXPECT_EQ(sent.size(), 2u);
}

TEST(VaOrganization, SeparableLoserWaitsACycle) {
  // Both heads want output 2 and (same credits) prefer output VC 0; under
  // separable arbitration only one gets a VC this cycle. SA then serializes
  // them on the port anyway; the observable difference is the VA grant
  // count on cycle 0.
  PortIsDestRouting routing;
  Router r(0, Config(VaOrganization::kSeparableArbitrated), TestLinks(),
           &routing);
  std::vector<Router::SentFlit> sent;
  std::vector<Router::SentCredit> credits;
  r.AcceptFlit(0, HeadTail(1, 0, 2));
  r.AcceptFlit(1, HeadTail(2, 0, 2));
  r.Step(0, &sent, &credits);
  EXPECT_EQ(r.activity().va_grants, 1u);  // one winner, one retry
  sent.clear();
  r.Step(1, &sent, &credits);
  r.Step(2, &sent, &credits);
  EXPECT_EQ(r.activity().va_grants, 2u);  // loser got VC 1 next cycle
}

TEST(VaOrganization, SeparableStillDrainsEverything) {
  NetworkSimConfig c;
  c.va_organization = VaOrganization::kSeparableArbitrated;
  c.injection_rate = 0.06;
  c.warmup = 2'000;
  c.measure = 6'000;
  c.drain = 2'000;
  const auto r = RunNetworkSim(c);
  EXPECT_NEAR(r.accepted_ppc, 0.06, 0.005);
  EXPECT_FALSE(r.saturated);
}

TEST(VaOrganization, SeparableCostsLittleAtSaturation) {
  auto run = [](VaOrganization org) {
    NetworkSimConfig c;
    c.va_organization = org;
    c.injection_rate = 0.25;
    c.warmup = 3'000;
    c.measure = 8'000;
    c.drain = 1'000;
    return RunNetworkSim(c).accepted_ppc;
  };
  const double greedy = run(VaOrganization::kGreedyRotating);
  const double separable = run(VaOrganization::kSeparableArbitrated);
  EXPECT_LE(separable, greedy * 1.02);
  EXPECT_GE(separable, greedy * 0.90);
}

TEST(VaOrganization, VixGainSurvivesRealisticVa) {
  auto run = [](AllocScheme scheme) {
    NetworkSimConfig c;
    c.scheme = scheme;
    c.va_organization = VaOrganization::kSeparableArbitrated;
    c.injection_rate = 0.25;
    c.warmup = 3'000;
    c.measure = 8'000;
    c.drain = 1'000;
    return RunNetworkSim(c).accepted_ppc;
  };
  EXPECT_GT(run(AllocScheme::kVix), run(AllocScheme::kInputFirst) * 1.08);
}

}  // namespace
}  // namespace vixnoc
