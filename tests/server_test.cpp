// vixnocd service layer: wire protocol, daemon serving semantics, and the
// real binary's signal-driven drain.
//
// The contracts under test: protocol frames round-trip and authenticate
// their content; a point served from the store is bitwise identical to
// the fresh computation (and to a local RunNetworkSim); N concurrent
// clients asking for one missing point trigger exactly one simulation
// (single-flight); a saturated daemon answers retry-after instead of
// queueing unboundedly; malformed frames get structured error replies;
// and SIGTERM on the real vixnocd process drains in-flight points —
// their replies still arrive — before a clean exit 0.
#include "server/daemon.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "exec/exec_protocol.hpp"
#include "server/client.hpp"
#include "server/server_protocol.hpp"
#include "snapshot/snapshot.hpp"

namespace vixnoc {
namespace {

namespace fs = std::filesystem;

struct TempService {
  std::string root;
  std::string socket;
  std::string store;

  explicit TempService(const std::string& tag) {
    root = testing::TempDir() + "vixnoc_srv_" + tag + "_" +
           std::to_string(::getpid());
    fs::remove_all(root);
    fs::create_directories(root);
    socket = root + "/d.sock";
    store = root + "/store";
  }
  ~TempService() { fs::remove_all(root); }

  DaemonConfig Config() const {
    DaemonConfig c;
    c.socket_path = socket;
    c.store_dir = store;
    c.threads = 2;
    return c;
  }
};

NetworkSimConfig ShortConfig(double rate = 0.10, std::uint64_t seed = 1) {
  NetworkSimConfig c;
  c.scheme = AllocScheme::kVix;
  c.injection_rate = rate;
  c.seed = seed;
  c.warmup = 300;
  c.measure = 900;
  c.drain = 300;
  c.sample_interval = 0;
  return c;
}

std::string Bytes(const NetworkSimResult& r) {
  SnapshotWriter w;
  w.BeginSection("r");
  SaveNetworkSimResult(w, r);
  w.EndSection();
  return w.Finish(0);
}

// ---------------------------------------------------------------------------
// Protocol round-trips (no daemon).

TEST(ServerProtocolTest, PointRequestRoundTripsAndAuthenticates) {
  const NetworkSimConfig config = ShortConfig(0.07, 42);
  const std::string payload = EncodePointRequest(config);
  const Request req = DecodeRequest(payload);
  EXPECT_EQ(req.kind, RequestKind::kPoint);
  ASSERT_EQ(req.configs.size(), 1u);
  EXPECT_EQ(NetworkSimResultKey(req.configs[0]),
            NetworkSimResultKey(config));

  // Any corrupted byte must fail decode, not deliver a different config.
  for (std::size_t i = 0; i < payload.size(); i += 11) {
    std::string bad = payload;
    bad[i] = static_cast<char>(bad[i] ^ 0x20);
    EXPECT_THROW((void)DecodeRequest(bad), SimError) << "byte " << i;
  }
}

TEST(ServerProtocolTest, BatchAndControlFramesRoundTrip) {
  std::vector<NetworkSimConfig> configs = {ShortConfig(0.05),
                                           ShortConfig(0.06),
                                           ShortConfig(0.05)};
  const Request batch = DecodeRequest(EncodeBatchRequest(configs));
  EXPECT_EQ(batch.kind, RequestKind::kBatch);
  ASSERT_EQ(batch.configs.size(), 3u);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(NetworkSimResultKey(batch.configs[i]),
              NetworkSimResultKey(configs[i]));
  }
  EXPECT_EQ(DecodeRequest(EncodeStatsRequest()).kind, RequestKind::kStats);
  EXPECT_EQ(DecodeRequest(EncodeShutdownRequest()).kind,
            RequestKind::kShutdown);
}

TEST(ServerProtocolTest, PointReplyRoundTripsWithAndWithoutResult) {
  const NetworkSimConfig config = ShortConfig();
  PointReply ok;
  ok.status = ServeStatus::kOk;
  ok.source = ServeSource::kStore;
  ok.result_key = NetworkSimResultKey(config);
  ok.result = RunNetworkSim(config);
  const PointReply ok2 = DecodePointReply(EncodePointReply(ok));
  EXPECT_EQ(ok2.status, ServeStatus::kOk);
  EXPECT_EQ(ok2.source, ServeSource::kStore);
  EXPECT_EQ(ok2.result_key, ok.result_key);
  EXPECT_EQ(Bytes(ok2.result), Bytes(ok.result));

  PointReply retry;
  retry.status = ServeStatus::kRetryAfter;
  retry.retry_after_seconds = 0.25;
  retry.message = "at capacity";
  const PointReply retry2 = DecodePointReply(EncodePointReply(retry));
  EXPECT_EQ(retry2.status, ServeStatus::kRetryAfter);
  EXPECT_DOUBLE_EQ(retry2.retry_after_seconds, 0.25);
  EXPECT_EQ(retry2.message, "at capacity");
  EXPECT_TRUE(IsPointReply(EncodePointReply(retry)));
  EXPECT_FALSE(IsPointReply(EncodeStatsReply(DaemonStats{})));
}

TEST(ServerProtocolTest, StatsReplyRoundTrips) {
  DaemonStats s;
  s.requests = 7;
  s.point_requests = 3;
  s.batch_requests = 2;
  s.points_served = 40;
  s.store_hits = 30;
  s.computed_points = 8;
  s.coalesced_points = 2;
  s.inflight = 1;
  s.store_bytes_written = 12'345;
  const DaemonStats d = DecodeStatsReply(EncodeStatsReply(s));
  EXPECT_EQ(d.requests, 7u);
  EXPECT_EQ(d.points_served, 40u);
  EXPECT_EQ(d.store_hits, 30u);
  EXPECT_EQ(d.computed_points, 8u);
  EXPECT_EQ(d.coalesced_points, 2u);
  EXPECT_EQ(d.store_bytes_written, 12'345u);
}

// ---------------------------------------------------------------------------
// Live daemon semantics (in-process SimDaemon + SimClient).

TEST(SimDaemonTest, StoreHitIsBitwiseIdenticalToFreshComputation) {
  TempService svc("identity");
  SimDaemon daemon(svc.Config());
  daemon.Start();
  SimClient client(svc.socket, 10.0);

  const NetworkSimConfig config = ShortConfig();
  const PointReply first = client.Point(config);
  ASSERT_EQ(first.status, ServeStatus::kOk);
  EXPECT_EQ(first.source, ServeSource::kComputed);

  const PointReply second = client.Point(config);
  ASSERT_EQ(second.status, ServeStatus::kOk);
  EXPECT_EQ(second.source, ServeSource::kStore);

  const std::string local = Bytes(RunNetworkSim(config));
  EXPECT_EQ(Bytes(first.result), local);
  EXPECT_EQ(Bytes(second.result), local);

  const DaemonStats s = daemon.stats();
  EXPECT_EQ(s.computed_points, 1u);
  EXPECT_EQ(s.store_hits, 1u);
  daemon.Stop();
}

TEST(SimDaemonTest, BatchIsAnsweredPositionallyWithDedupThroughTheStore) {
  TempService svc("batch");
  SimDaemon daemon(svc.Config());
  daemon.Start();
  SimClient client(svc.socket, 10.0);

  const NetworkSimConfig a = ShortConfig(0.05);
  const NetworkSimConfig b = ShortConfig(0.07);
  const std::vector<NetworkSimConfig> batch = {a, b, a};
  const std::vector<PointReply> replies = client.Batch(batch);
  ASSERT_EQ(replies.size(), 3u);
  for (const PointReply& r : replies) {
    ASSERT_EQ(r.status, ServeStatus::kOk);
  }
  EXPECT_EQ(Bytes(replies[0].result), Bytes(replies[2].result));
  // The duplicate slot never triggered a second simulation: it was a
  // store hit or coalesced join of the first slot's computation.
  EXPECT_EQ(daemon.stats().computed_points, 2u);
  daemon.Stop();
}

TEST(SimDaemonTest, NConcurrentClientsOneMissingPointOneSimulation) {
  TempService svc("singleflight");
  DaemonConfig dc = svc.Config();
  // Hold each computation's publish open so every client below arrives
  // while the point is still in flight.
  dc.test_compute_delay_ms = 400;
  SimDaemon daemon(dc);
  daemon.Start();

  const NetworkSimConfig missing = ShortConfig();
  constexpr int kClients = 6;
  std::vector<std::string> results(kClients);
  std::atomic<int> ok_count{0};
  std::vector<std::thread> pool;
  for (int i = 0; i < kClients; ++i) {
    pool.emplace_back([&, i] {
      SimClient c(svc.socket, 10.0);
      const PointReply r = c.PointWithRetry(missing);
      if (r.status == ServeStatus::kOk) {
        results[static_cast<std::size_t>(i)] = Bytes(r.result);
        ++ok_count;
      }
    });
  }
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(ok_count.load(), kClients);
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], results[0]);
  }
  // The acceptance bar: N requests, exactly one simulation.
  const DaemonStats s = daemon.stats();
  EXPECT_EQ(s.computed_points, 1u);
  EXPECT_EQ(s.coalesced_points + s.store_hits,
            static_cast<std::uint64_t>(kClients - 1));
  daemon.Stop();
}

TEST(SimDaemonTest, SaturatedQueueAnswersRetryAfterThenRecovers) {
  TempService svc("backpressure");
  DaemonConfig dc = svc.Config();
  dc.max_queue = 1;
  dc.test_compute_delay_ms = 500;
  dc.retry_after_seconds = 0.02;
  SimDaemon daemon(dc);
  daemon.Start();

  const NetworkSimConfig x = ShortConfig(0.05);
  const NetworkSimConfig y = ShortConfig(0.09);

  std::thread occupant([&] {
    SimClient c(svc.socket, 10.0);
    const PointReply r = c.Point(x);
    EXPECT_EQ(r.status, ServeStatus::kOk);
  });
  // Let x land in the (size-1) in-flight table, then ask for a different
  // missing point: the daemon must refuse with a positive retry hint
  // rather than queue it.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  SimClient client(svc.socket, 10.0);
  const PointReply refused = client.Point(y);
  EXPECT_EQ(refused.status, ServeStatus::kRetryAfter);
  EXPECT_GT(refused.retry_after_seconds, 0.0);
  // Joining the already-in-flight x is still allowed — it adds no work.
  const PointReply joined = client.Point(x);
  EXPECT_NE(joined.status, ServeStatus::kRetryAfter);

  // Once the pipe drains, the refused point goes through via the retry
  // helper.
  const PointReply eventually = client.PointWithRetry(y);
  EXPECT_EQ(eventually.status, ServeStatus::kOk);
  occupant.join();
  EXPECT_GE(daemon.stats().retry_after_replies, 1u);
  daemon.Stop();
}

TEST(SimDaemonTest, MalformedFrameGetsStructuredErrorReply) {
  TempService svc("malformed");
  SimDaemon daemon(svc.Config());
  daemon.Start();

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, svc.socket.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  std::string error;
  ASSERT_TRUE(WriteFrame(fd, "not a snapshot container", &error)) << error;
  const FrameRead reply = ReadFrame(fd, 10.0);
  ASSERT_EQ(reply.status, FrameRead::Status::kOk);
  ASSERT_TRUE(IsPointReply(reply.payload));
  const PointReply decoded = DecodePointReply(reply.payload);
  EXPECT_EQ(decoded.status, ServeStatus::kError);
  EXPECT_FALSE(decoded.message.empty());
  ::close(fd);
  EXPECT_GE(daemon.stats().error_replies, 1u);
  daemon.Stop();
}

TEST(SimDaemonTest, ShutdownFrameDrainsWaitAndUnlinksSocket) {
  TempService svc("shutdown");
  SimDaemon daemon(svc.Config());
  daemon.Start();

  std::thread waiter([&] { EXPECT_EQ(daemon.Wait(), 0); });
  {
    SimClient client(svc.socket, 10.0);
    // Seed one computed point so the drain has something to have finished.
    EXPECT_EQ(client.Point(ShortConfig()).status, ServeStatus::kOk);
    client.Shutdown();
  }
  waiter.join();
  EXPECT_FALSE(fs::exists(svc.socket));
}

// ---------------------------------------------------------------------------
// The real binary: SIGTERM mid-computation drains before exit 0.

#ifdef VIXNOC_VIXNOCD_PATH
TEST(VixnocdProcessTest, SigtermDrainsInflightPointsThenExitsZero) {
  TempService svc("sigterm");
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    const std::string socket_arg = "socket=" + svc.socket;
    const std::string store_arg = "store=" + svc.store;
    ::execl(VIXNOC_VIXNOCD_PATH, "vixnocd", socket_arg.c_str(),
            store_arg.c_str(), "threads=2", "test_compute_delay_ms=600",
            static_cast<char*>(nullptr));
    ::_exit(127);
  }

  // Fire a point whose publish is held open for 600 ms, then SIGTERM the
  // daemon mid-flight. The reply must still arrive, computed, before the
  // process exits cleanly.
  const NetworkSimConfig config = ShortConfig();
  // Connect before starting the kill timer so a slow daemon startup
  // cannot turn this into a "SIGTERM before the request" race.
  SimClient client(svc.socket, 10.0);
  PointReply reply;
  std::thread requester([&] { reply = client.PointWithRetry(config); });
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  requester.join();

  ASSERT_EQ(reply.status, ServeStatus::kOk);
  EXPECT_EQ(reply.source, ServeSource::kComputed);
  EXPECT_EQ(Bytes(reply.result), Bytes(RunNetworkSim(config)));

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_FALSE(fs::exists(svc.socket));
  // The drained point made it into the store on disk.
  bool has_entry = false;
  for (const auto& e : fs::recursive_directory_iterator(svc.store)) {
    has_entry = has_entry || e.path().extension() == ".res";
  }
  EXPECT_TRUE(has_entry);
}
#endif  // VIXNOC_VIXNOCD_PATH

}  // namespace
}  // namespace vixnoc
