// Virtual networks (message classes): VC partition isolation.
#include <gtest/gtest.h>

#include <memory>

#include "app/app_sim.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "network/network.hpp"
#include "router/router.hpp"
#include "topology/topology.hpp"

namespace vixnoc {
namespace {

class PortIsDestRouting final : public RoutingAlgorithm {
 public:
  PortId Route(RouterId, NodeId dst) const override { return dst % 5; }
  PortDimension DimensionOf(PortId port) const override {
    if (port < 2) return PortDimension::kX;
    if (port < 4) return PortDimension::kY;
    return PortDimension::kLocal;
  }
};

std::vector<OutputLinkInfo> TestLinks() {
  std::vector<OutputLinkInfo> links(5);
  for (PortId p = 0; p < 4; ++p) links[p] = {1, p, kInvalidNode};
  links[4] = {-1, kInvalidPort, 0};
  return links;
}

Flit ClassFlit(PacketId id, VcId vc, int msg_class, PortId route_out) {
  Flit f;
  f.packet_id = id;
  f.src = 1;
  f.dst = route_out;
  f.type = FlitType::kHeadTail;
  f.packet_size = 1;
  f.vc = vc;
  f.route_out = route_out;
  f.msg_class = static_cast<std::uint8_t>(msg_class);
  return f;
}

TEST(Vnet, RouterAssignsOutputVcWithinClass) {
  RouterConfig config;
  config.radix = 5;
  config.num_vcs = 6;
  config.buffer_depth = 3;
  config.num_message_classes = 2;  // class 0: VCs 0-2, class 1: VCs 3-5
  PortIsDestRouting routing;
  Router r(0, config, TestLinks(), &routing);

  std::vector<Router::SentFlit> sent;
  std::vector<Router::SentCredit> credits;
  r.AcceptFlit(0, ClassFlit(1, 0, /*msg_class=*/1, /*route_out=*/2));
  r.Step(0, &sent, &credits);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_GE(sent[0].flit.vc, 3);  // class 1 VCs only

  sent.clear();
  r.AcceptFlit(1, ClassFlit(2, 0, /*msg_class=*/0, /*route_out=*/3));
  r.Step(1, &sent, &credits);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_LT(sent[0].flit.vc, 3);  // class 0 VCs only
}

TEST(Vnet, ClassStallsWhenItsVcsBusyEvenIfOthersFree) {
  RouterConfig config;
  config.radix = 5;
  config.num_vcs = 2;  // one VC per class
  config.buffer_depth = 1;
  config.num_message_classes = 2;
  PortIsDestRouting routing;
  Router r(0, config, TestLinks(), &routing);
  std::vector<Router::SentFlit> sent;
  std::vector<Router::SentCredit> credits;

  // Two class-1 packets from different ports to the same output: the
  // second must wait for VC 1 even though VC 0 (class 0) is free.
  r.AcceptFlit(0, ClassFlit(1, 1, 1, 2));
  r.AcceptFlit(1, ClassFlit(2, 1, 1, 2));
  r.Step(0, &sent, &credits);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].flit.vc, 1);
  // The tail released the VC at send time (non-atomic), so the second
  // packet proceeds next cycle onto the SAME class-1 VC, never VC 0.
  sent.clear();
  r.AcceptCredit(2, 1);
  r.Step(1, &sent, &credits);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].flit.vc, 1);
}

TEST(Vnet, NetworkConservationWithTwoClasses) {
  std::shared_ptr<Topology> topo = MakeTopology64(TopologyKind::kMesh);
  NetworkParams params;
  params.router.radix = 5;
  params.router.num_vcs = 6;
  params.router.buffer_depth = 5;
  params.router.num_message_classes = 2;
  Network net(topo, params);

  Rng rng(8);
  std::uint64_t sent = 0, got = 0;
  net.SetEjectCallback([&](const PacketRecord&) { ++got; });
  for (int t = 0; t < 2000; ++t) {
    for (NodeId n = 0; n < 64; ++n) {
      if (rng.NextBool(0.04)) {
        net.EnqueuePacket(n, static_cast<NodeId>(rng.NextBounded(64)), 4, 0,
                          static_cast<int>(rng.NextBounded(2)));
        ++sent;
      }
    }
    net.Step();
  }
  int guard = 0;
  while (!net.Quiescent()) {
    net.Step();
    ASSERT_LT(++guard, 20'000);
  }
  EXPECT_EQ(got, sent);
}

TEST(Vnet, VixWithTwoClassesStillBeatsBaseline) {
  auto run = [](AllocScheme scheme) {
    std::shared_ptr<Topology> topo = MakeTopology64(TopologyKind::kMesh);
    NetworkParams params;
    params.router.radix = 5;
    params.router.num_vcs = 6;
    params.router.buffer_depth = 5;
    params.router.scheme = scheme;
    params.router.vc_policy = RouterConfig::DefaultPolicyFor(scheme);
    params.router.num_message_classes = 2;
    Network net(topo, params);
    Rng rng(9);
    std::uint64_t got = 0;
    net.SetEjectCallback([&](const PacketRecord&) { ++got; });
    for (int t = 0; t < 8000; ++t) {
      for (NodeId n = 0; n < 64; ++n) {
        if (rng.NextBool(0.25)) {
          net.EnqueuePacket(n, static_cast<NodeId>(rng.NextBounded(64)), 4,
                            0, static_cast<int>(rng.NextBounded(2)));
        }
      }
      net.Step();
    }
    return got;
  };
  EXPECT_GT(run(AllocScheme::kVix), run(AllocScheme::kInputFirst) * 1.05);
}

TEST(Vnet, AppSimRunsWithRequestReplyNetworks) {
  app::AppSimConfig config;
  config.num_message_classes = 2;
  config.warmup = 2'000;
  config.measure = 6'000;
  const auto cores = app::ExpandMix(app::PaperMixes()[4]);
  const auto r = RunAppSim(config, cores);
  EXPECT_GT(r.aggregate_ipc, 1.0);
  EXPECT_LE(r.aggregate_ipc, 64.0);
  EXPECT_GT(r.total_requests, 1000u);
}

TEST(Vnet, InvalidClassCountRejected) {
  RouterConfig config;
  config.radix = 5;
  config.num_vcs = 6;
  config.buffer_depth = 3;
  config.num_message_classes = 4;  // 6 % 4 != 0
  PortIsDestRouting routing;
  EXPECT_THROW(Router(0, config, TestLinks(), &routing), SimError);
}

}  // namespace
}  // namespace vixnoc
