// Telemetry subsystem tests: the zero-overhead contract (disabled telemetry
// is bitwise invisible, enabled telemetry never changes results), the
// conflict-classification logic, the constant-memory window reservoir, the
// packet event trace, and the headline physics claim that dimension
// steering produces fewer same-output virtual-input conflicts than random
// VC assignment.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "sim/network_sim.hpp"
#include "telemetry/telemetry.hpp"

namespace vixnoc {
namespace {

NetworkSimConfig GoldenConfig(AllocScheme scheme) {
  NetworkSimConfig c;
  c.scheme = scheme;
  c.injection_rate = 0.06;
  c.seed = 7;
  c.warmup = 2'000;
  c.measure = 6'000;
  c.drain = 2'000;
  return c;
}

// Golden values captured from this exact config BEFORE the telemetry
// subsystem existed. EXPECT_EQ on doubles is deliberate: the contract is
// bitwise identity, not approximation. If this test fails, a "zero
// overhead" code path changed simulated behaviour.
TEST(TelemetryOverhead, DisabledRunMatchesPreTelemetryGolden) {
  const NetworkSimResult vix = RunNetworkSim(GoldenConfig(AllocScheme::kVix));
  EXPECT_EQ(vix.accepted_ppc, 0.0595078125);
  EXPECT_EQ(vix.accepted_fpc, 15.233333333333333);
  EXPECT_EQ(vix.avg_latency, 29.320171411080576);
  EXPECT_EQ(vix.avg_net_latency, 29.108706108705938);
  EXPECT_EQ(vix.p99_latency, 58.0);
  EXPECT_EQ(vix.min_node_ppc, 0.053999999999999999);
  EXPECT_EQ(vix.max_node_ppc, 0.066000000000000003);
  EXPECT_EQ(vix.max_min_ratio, 1.2222222222222223);
  EXPECT_EQ(vix.packets_measured, 22869u);
  EXPECT_EQ(vix.activity.sa_requests, 750730u);
  EXPECT_EQ(vix.activity.sa_grants, 577517u);
  EXPECT_EQ(vix.activity.xbar_traversals, 577517u);
  EXPECT_FALSE(vix.telemetry.enabled);

  const NetworkSimResult base =
      RunNetworkSim(GoldenConfig(AllocScheme::kInputFirst));
  EXPECT_EQ(base.accepted_ppc, 0.0595078125);
  EXPECT_EQ(base.accepted_fpc, 15.233499999999999);
  EXPECT_EQ(base.avg_latency, 31.070182342909586);
  EXPECT_EQ(base.avg_net_latency, 30.858717040535208);
  EXPECT_EQ(base.p99_latency, 66.0);
  EXPECT_EQ(base.packets_measured, 22869u);
  EXPECT_EQ(base.activity.sa_requests, 821192u);
  EXPECT_EQ(base.activity.sa_grants, 577502u);
}

// Enabling telemetry (even with tracing) must observe, never perturb: every
// simulated metric stays bitwise identical to the disabled run.
TEST(TelemetryOverhead, EnabledRunIsBitwiseIdenticalToDisabled) {
  for (AllocScheme scheme :
       {AllocScheme::kVix, AllocScheme::kInputFirst}) {
    const NetworkSimResult off = RunNetworkSim(GoldenConfig(scheme));
    NetworkSimConfig on_cfg = GoldenConfig(scheme);
    on_cfg.telemetry.enabled = true;
    on_cfg.telemetry.window_cycles = 256;
    on_cfg.telemetry.trace_sample_period = 8;
    const NetworkSimResult on = RunNetworkSim(on_cfg);

    EXPECT_EQ(on.accepted_ppc, off.accepted_ppc);
    EXPECT_EQ(on.accepted_fpc, off.accepted_fpc);
    EXPECT_EQ(on.avg_latency, off.avg_latency);
    EXPECT_EQ(on.avg_net_latency, off.avg_net_latency);
    EXPECT_EQ(on.p99_latency, off.p99_latency);
    EXPECT_EQ(on.max_min_ratio, off.max_min_ratio);
    EXPECT_EQ(on.packets_measured, off.packets_measured);
    EXPECT_EQ(on.activity.sa_requests, off.activity.sa_requests);
    EXPECT_EQ(on.activity.sa_grants, off.activity.sa_grants);
    EXPECT_EQ(on.activity.xbar_traversals, off.activity.xbar_traversals);

    // And the telemetry itself must be present and agree with the router
    // activity counters over the same measurement window.
    ASSERT_TRUE(on.telemetry.enabled);
    EXPECT_EQ(on.telemetry.sa_requests, off.activity.sa_requests);
    EXPECT_EQ(on.telemetry.sa_grants, off.activity.sa_grants);
    EXPECT_FALSE(on.telemetry.windows.empty());
    EXPECT_FALSE(on.telemetry.trace.empty());
  }
}

TEST(TelemetrySummary, InternalConsistency) {
  NetworkSimConfig cfg = GoldenConfig(AllocScheme::kVix);
  cfg.telemetry.enabled = true;
  const NetworkSimResult r = RunNetworkSim(cfg);
  const TelemetrySummary& t = r.telemetry;

  // Separable allocation: every grant passed through one input arbiter and
  // one output arbiter.
  EXPECT_EQ(t.input_arbiter_grants, t.sa_grants);
  EXPECT_EQ(t.output_arbiter_grants, t.sa_grants);
  EXPECT_GE(t.input_arbiter_requests, t.input_arbiter_grants);
  EXPECT_GE(t.output_arbiter_requests, t.output_arbiter_grants);
  // Every (port, vc, cycle) lands in exactly one stall bucket.
  const std::uint64_t states = t.stall_empty + t.stall_va + t.stall_credit +
                               t.stall_sa + t.vc_moving;
  EXPECT_EQ(states, t.cycles * 6u /* num_vcs */ * 5u /* radix */);
  EXPECT_EQ(t.vc_moving, t.sa_grants);
  EXPECT_GT(t.crossbar_utilization, 0.0);
  EXPECT_LE(t.crossbar_utilization, 1.0);
  EXPECT_GE(t.port_multi_request_cycles,
            t.vin_conflict_distinct_output + t.vin_conflict_same_output);
  EXPECT_GT(t.mean_port_occupancy, 0.0);
  EXPECT_GE(t.p99_port_occupancy, t.mean_port_occupancy);
}

// --- conflict classification on hand-crafted request sets -----------------

SwitchGeometry VixGeom() {
  SwitchGeometry g;
  g.num_inports = 2;
  g.num_outports = 2;
  g.num_vcs = 4;
  g.num_vins = 2;  // contiguous: vcs {0,1} -> vin 0, {2,3} -> vin 1
  return g;
}

TEST(RouterTelemetryClassify, DistinctVinsDistinctOutputsIsVixWin) {
  RouterTelemetry rt;
  rt.Init(VixGeom(), /*buffer_depth=*/4);
  rt.RecordAllocationCycle({{0, 0, 0}, {0, 2, 1}}, {});
  EXPECT_EQ(rt.port_conflicts[0].multi_request_cycles, 1u);
  EXPECT_EQ(rt.port_conflicts[0].vin_distinct_output_cycles, 1u);
  EXPECT_EQ(rt.port_conflicts[0].vin_same_output_cycles, 0u);
  EXPECT_EQ(rt.port_conflicts[0].single_vin_serialized_cycles, 0u);
  EXPECT_EQ(rt.port_conflicts[1].multi_request_cycles, 0u);
}

TEST(RouterTelemetryClassify, DistinctVinsSameOutputIsPolicyMiss) {
  RouterTelemetry rt;
  rt.Init(VixGeom(), 4);
  rt.RecordAllocationCycle({{0, 1, 1}, {0, 3, 1}}, {});
  EXPECT_EQ(rt.port_conflicts[0].multi_request_cycles, 1u);
  EXPECT_EQ(rt.port_conflicts[0].vin_distinct_output_cycles, 0u);
  EXPECT_EQ(rt.port_conflicts[0].vin_same_output_cycles, 1u);
}

TEST(RouterTelemetryClassify, SameVinDistinctOutputsIsSerialized) {
  RouterTelemetry rt;
  rt.Init(VixGeom(), 4);
  rt.RecordAllocationCycle({{1, 0, 0}, {1, 1, 1}}, {});
  EXPECT_EQ(rt.port_conflicts[1].multi_request_cycles, 1u);
  EXPECT_EQ(rt.port_conflicts[1].single_vin_serialized_cycles, 1u);
  EXPECT_EQ(rt.port_conflicts[1].vin_distinct_output_cycles, 0u);
  EXPECT_EQ(rt.port_conflicts[1].vin_same_output_cycles, 0u);
}

TEST(RouterTelemetryClassify, SingleRequestIsNotAConflict) {
  RouterTelemetry rt;
  rt.Init(VixGeom(), 4);
  rt.RecordAllocationCycle({{0, 0, 0}}, {});
  EXPECT_EQ(rt.port_conflicts[0].multi_request_cycles, 0u);
  EXPECT_EQ(rt.sa_requests, 1u);
  EXPECT_EQ(rt.cycles, 1u);
}

TEST(RouterTelemetryClassify, GrantMaskTracksLatestCycleOnly) {
  RouterTelemetry rt;
  rt.Init(VixGeom(), 4);
  SaGrant g;
  g.in_port = 0;
  g.vin = 0;
  g.vc = 1;
  g.out_port = 0;
  rt.RecordAllocationCycle({{0, 1, 0}}, {g});
  EXPECT_TRUE(rt.WasGranted(0, 1));
  EXPECT_FALSE(rt.WasGranted(0, 0));
  EXPECT_EQ(rt.grants_per_out[0], 1u);
  rt.RecordAllocationCycle({}, {});
  EXPECT_FALSE(rt.WasGranted(0, 1));  // mask rebuilt, counter kept
  EXPECT_EQ(rt.grants_per_out[0], 1u);
}

// --- window reservoir ------------------------------------------------------

TEST(TelemetryWindows, ReservoirMergesToConstantMemory) {
  TelemetryConfig cfg;
  cfg.enabled = true;
  cfg.window_cycles = 4;
  cfg.max_windows = 4;
  TelemetryCollector col(cfg);
  col.AttachRouters(1, VixGeom(), 4);

  // Drive 1 sa_request per cycle for 64 cycles: far more raw windows (16)
  // than the reservoir holds (4), forcing repeated pair-merges.
  for (Cycle t = 0; t < 64; ++t) {
    ++col.router(0).sa_requests;
    col.Tick(t);
  }

  const std::vector<TelemetryWindow>& windows = col.windows();
  ASSERT_FALSE(windows.empty());
  EXPECT_LT(windows.size(), cfg.max_windows);
  EXPECT_GT(col.window_width(), cfg.window_cycles);

  // Coverage is contiguous from cycle 0 and no request was lost or double
  // counted by the merges.
  Cycle expected_start = 0;
  std::uint64_t total_requests = 0;
  for (const TelemetryWindow& w : windows) {
    EXPECT_EQ(w.start, expected_start);
    // Each window's request count equals its width (1 request per cycle):
    // the merge preserved per-window deltas exactly.
    EXPECT_EQ(w.sa_requests, w.width);
    expected_start += w.width;
    total_requests += w.sa_requests;
  }
  EXPECT_EQ(expected_start, 64u);
  EXPECT_EQ(total_requests, 64u);
}

TEST(TelemetryWindows, ResetCountersKeepsWindowDeltasConsistent) {
  TelemetryConfig cfg;
  cfg.enabled = true;
  cfg.window_cycles = 8;
  cfg.max_windows = 16;
  TelemetryCollector col(cfg);
  col.AttachRouters(1, VixGeom(), 4);
  for (Cycle t = 0; t < 8; ++t) {
    ++col.router(0).sa_requests;
    col.Tick(t);
  }
  ASSERT_EQ(col.windows().size(), 1u);
  EXPECT_EQ(col.windows()[0].sa_requests, 8u);
  // Measurement-window start: counters zeroed mid-run. The next window must
  // not underflow (monotonic totals were re-based along with the counters).
  col.ResetCounters();
  for (Cycle t = 8; t < 16; ++t) {
    ++col.router(0).sa_requests;
    col.Tick(t);
  }
  ASSERT_EQ(col.windows().size(), 2u);
  EXPECT_EQ(col.windows()[1].sa_requests, 8u);
}

// --- packet event trace ----------------------------------------------------

TEST(TelemetryTrace, SampledPacketsHaveOrderedMilestones) {
  NetworkSimConfig cfg = GoldenConfig(AllocScheme::kVix);
  cfg.warmup = 500;
  cfg.measure = 1'500;
  cfg.drain = 1'000;
  cfg.telemetry.enabled = true;
  cfg.telemetry.trace_sample_period = 4;
  const NetworkSimResult r = RunNetworkSim(cfg);
  ASSERT_FALSE(r.telemetry.trace.empty());

  struct PacketTrail {
    std::vector<PacketTraceEvent> events;
  };
  std::map<PacketId, PacketTrail> trails;
  Cycle last_cycle = 0;
  for (const PacketTraceEvent& ev : r.telemetry.trace) {
    EXPECT_EQ(ev.packet % cfg.telemetry.trace_sample_period, 0u);
    EXPECT_GE(ev.cycle, last_cycle);  // buffer is appended in cycle order
    last_cycle = ev.cycle;
    trails[ev.packet].events.push_back(ev);
  }

  int complete = 0;
  for (const auto& [id, trail] : trails) {
    Cycle prev = 0;
    bool injected = false, ejected = false;
    for (const PacketTraceEvent& ev : trail.events) {
      EXPECT_GE(ev.cycle, prev);
      prev = ev.cycle;
      switch (ev.kind) {
        case PacketTraceEvent::Kind::kInject:
          EXPECT_FALSE(injected);  // exactly one inject, and it comes first
          EXPECT_EQ(ev.router, -1);
          injected = true;
          break;
        case PacketTraceEvent::Kind::kVcAlloc:
        case PacketTraceEvent::Kind::kSaGrant:
          EXPECT_TRUE(injected);
          EXPECT_GE(ev.router, 0);
          EXPECT_FALSE(ejected);
          break;
        case PacketTraceEvent::Kind::kEject:
          EXPECT_TRUE(injected);
          EXPECT_EQ(ev.router, -1);
          ejected = true;
          break;
      }
    }
    if (injected && ejected) ++complete;
  }
  // Most sampled packets (all but those in flight at the cutoffs) have a
  // full inject -> ... -> eject trail.
  EXPECT_GT(complete, 0);
}

TEST(TelemetryTrace, JsonlLineMatchesDocumentedSchema) {
  PacketTraceEvent ev;
  ev.packet = 42;
  ev.kind = PacketTraceEvent::Kind::kSaGrant;
  ev.cycle = 1234;
  ev.router = 7;
  ev.src = 3;
  ev.dst = 60;
  char buf[256] = {};
  std::FILE* f = fmemopen(buf, sizeof buf, "w");
  ASSERT_NE(f, nullptr);
  WriteTraceEventJson(f, ev);
  std::fclose(f);
  EXPECT_STREQ(buf,
               "{\"packet\": 42, \"event\": \"sa_grant\", \"cycle\": 1234, "
               "\"router\": 7, \"src\": 3, \"dst\": 60}\n");
}

// --- the physics claim the bench is built on -------------------------------

// Dimension steering exists to put packets heading to different outputs
// into different virtual inputs. Random assignment wastes crossbar inputs
// on same-output conflicts far more often.
TEST(TelemetryConflicts, SteeredPolicyBeatsRandomAssignment) {
  auto run = [](VcAssignPolicy policy) {
    NetworkSimConfig c;
    c.scheme = AllocScheme::kVix;
    c.vc_policy = policy;
    c.injection_rate = 0.09;
    c.seed = 11;
    c.warmup = 1'000;
    c.measure = 4'000;
    c.drain = 1'000;
    c.telemetry.enabled = true;
    return RunNetworkSim(c);
  };
  const NetworkSimResult steered = run(VcAssignPolicy::kVixDimension);
  const NetworkSimResult random = run(VcAssignPolicy::kRandomFree);
  ASSERT_TRUE(steered.outcome.ok());
  ASSERT_TRUE(random.outcome.ok());
  ASSERT_GT(steered.telemetry.port_multi_request_cycles, 1'000u);
  ASSERT_GT(random.telemetry.port_multi_request_cycles, 1'000u);
  EXPECT_LT(steered.telemetry.same_output_conflict_rate,
            random.telemetry.same_output_conflict_rate);
}

}  // namespace
}  // namespace vixnoc
