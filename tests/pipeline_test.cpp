// Pipeline-depth behaviour: speculative (3-stage, Fig 6b) vs conservative
// (5-stage, Fig 6a) routers.
#include <gtest/gtest.h>

#include "network/network.hpp"
#include "sim/network_sim.hpp"
#include "topology/topology.hpp"

namespace vixnoc {
namespace {

std::unique_ptr<Network> MakeNet(bool speculative, int flit_delay = 3) {
  std::shared_ptr<Topology> topo = MakeTopology64(TopologyKind::kMesh);
  NetworkParams p;
  p.router.radix = topo->Radix();
  p.router.num_vcs = 6;
  p.router.buffer_depth = 5;
  p.router.speculative_sa = speculative;
  p.flit_delay = flit_delay;
  return std::make_unique<Network>(topo, p);
}

Cycle OneShotLatency(Network& net, NodeId src, NodeId dst, int size) {
  Cycle latency = 0;
  net.SetEjectCallback([&](const PacketRecord& r) {
    latency = r.ejected - r.created;
  });
  net.EnqueuePacket(src, dst, size);
  for (int t = 0; t < 500 && latency == 0; ++t) net.Step();
  return latency;
}

TEST(Pipeline, NonSpeculativeAddsOneCyclePerHop) {
  // 0 -> 1: head visits 2 routers; each VA->SA serialization adds 1 cycle.
  auto spec = MakeNet(true);
  auto nonspec = MakeNet(false);
  const Cycle lat_spec = OneShotLatency(*spec, 0, 1, 1);
  const Cycle lat_nonspec = OneShotLatency(*nonspec, 0, 1, 1);
  EXPECT_EQ(lat_spec, 7u);
  EXPECT_EQ(lat_nonspec, 9u);  // +1 per router traversed
}

TEST(Pipeline, NonSpeculativeScalesWithHops) {
  auto spec = MakeNet(true);
  auto nonspec = MakeNet(false);
  // 0 -> 63: 15 routers traversed.
  const Cycle lat_spec = OneShotLatency(*spec, 0, 63, 1);
  const Cycle lat_nonspec = OneShotLatency(*nonspec, 0, 63, 1);
  EXPECT_EQ(lat_nonspec - lat_spec, 15u);
}

TEST(Pipeline, FiveStageConfigRaisesZeroLoadLatency) {
  NetworkSimConfig c3;
  c3.injection_rate = 0.01;
  c3.warmup = 1'000;
  c3.measure = 4'000;
  c3.drain = 1'000;
  NetworkSimConfig c5 = c3;
  c5.pipeline_stages = 5;
  const auto r3 = RunNetworkSim(c3);
  const auto r5 = RunNetworkSim(c5);
  // ~6.3 routers on the average path; each costs ~2 extra cycles (non-
  // speculative VA + longer link stage).
  EXPECT_GT(r5.avg_latency, r3.avg_latency + 8.0);
  EXPECT_LT(r5.avg_latency, r3.avg_latency + 20.0);
}

TEST(Pipeline, ThroughputUnaffectedByDepthAtSaturation) {
  // Pipeline depth costs latency, not bandwidth: saturation throughput
  // stays within a few percent.
  NetworkSimConfig c3;
  c3.injection_rate = 0.25;
  c3.warmup = 3'000;
  c3.measure = 8'000;
  c3.drain = 1'000;
  NetworkSimConfig c5 = c3;
  c5.pipeline_stages = 5;
  const auto r3 = RunNetworkSim(c3);
  const auto r5 = RunNetworkSim(c5);
  EXPECT_NEAR(r5.accepted_ppc, r3.accepted_ppc, r3.accepted_ppc * 0.08);
}

TEST(Pipeline, SpeculationBenefitsVixEqually) {
  // VIX works in both pipeline organizations.
  NetworkSimConfig c;
  c.scheme = AllocScheme::kVix;
  c.pipeline_stages = 5;
  c.injection_rate = 0.25;
  c.warmup = 3'000;
  c.measure = 8'000;
  c.drain = 1'000;
  const auto vix5 = RunNetworkSim(c);
  c.scheme = AllocScheme::kInputFirst;
  const auto base5 = RunNetworkSim(c);
  EXPECT_GT(vix5.accepted_ppc, base5.accepted_ppc * 1.05);
}

}  // namespace
}  // namespace vixnoc
