// Time-series sampling and config-file loading.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/cli.hpp"
#include "sim/network_sim.hpp"

namespace vixnoc {
namespace {

TEST(Timeline, DisabledByDefault) {
  NetworkSimConfig c;
  c.injection_rate = 0.02;
  c.warmup = 1'000;
  c.measure = 3'000;
  c.drain = 500;
  const auto r = RunNetworkSim(c);
  EXPECT_TRUE(r.timeline.empty());
}

TEST(Timeline, SamplesCoverTheRun) {
  NetworkSimConfig c;
  c.injection_rate = 0.05;
  c.warmup = 2'000;
  c.measure = 6'000;
  c.drain = 2'000;
  c.sample_interval = 1'000;
  const auto r = RunNetworkSim(c);
  // 10'000 cycles / 1'000 per sample, minus the final partial interval.
  EXPECT_GE(r.timeline.size(), 9u);
  for (std::size_t i = 0; i < r.timeline.size(); ++i) {
    EXPECT_EQ(r.timeline[i].start, i * 1'000);
  }
}

TEST(Timeline, SteadyStateSamplesMatchOfferedRate) {
  NetworkSimConfig c;
  c.injection_rate = 0.05;
  c.warmup = 2'000;
  c.measure = 8'000;
  c.drain = 2'000;
  c.sample_interval = 2'000;
  const auto r = RunNetworkSim(c);
  // Skip the first (ramp-up) sample; the rest should sit near the rate.
  for (std::size_t i = 1; i + 1 < r.timeline.size(); ++i) {
    EXPECT_NEAR(r.timeline[i].accepted_ppc, 0.05, 0.01) << "sample " << i;
    EXPECT_GT(r.timeline[i].avg_latency, 20.0);
    EXPECT_GT(r.timeline[i].packets, 0u);
  }
}

TEST(Timeline, FirstSampleShowsRampUp) {
  NetworkSimConfig c;
  c.injection_rate = 0.05;
  c.warmup = 2'000;
  c.measure = 4'000;
  c.drain = 1'000;
  c.sample_interval = 500;
  const auto r = RunNetworkSim(c);
  ASSERT_GE(r.timeline.size(), 4u);
  // Deliveries cannot start before the minimum network transit time, so
  // the first interval under-counts relative to steady state.
  EXPECT_LT(r.timeline[0].accepted_ppc, r.timeline[3].accepted_ppc);
}

TEST(ConfigFile, LoadsAndMerges) {
  const std::string path = ::testing::TempDir() + "/vixnoc_cfg_test.cfg";
  {
    std::ofstream out(path);
    out << "# comment line\n";
    out << "rate=0.25\n";
    out << "  vcs=4  \n";
    out << "\n";
    out << "scheme=wavefront\n";
  }
  ArgMap file = ArgMap::FromFile(path);
  EXPECT_DOUBLE_EQ(file.GetDouble("rate", 0.0), 0.25);
  EXPECT_EQ(file.GetInt("vcs", 0), 4);
  EXPECT_EQ(file.GetString("scheme", ""), "wavefront");

  // Command line overrides the file.
  std::string cli_arg = "rate=0.10";
  char* argv[] = {const_cast<char*>("prog"), cli_arg.data()};
  ArgMap merged = ArgMap::FromFile(path);
  merged.Merge(ArgMap::Parse(2, argv));
  EXPECT_DOUBLE_EQ(merged.GetDouble("rate", 0.0), 0.10);
  EXPECT_EQ(merged.GetInt("vcs", 0), 4);  // file value survives
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vixnoc
