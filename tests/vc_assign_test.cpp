#include <gtest/gtest.h>

#include <vector>

#include "router/vc_assign.hpp"

namespace vixnoc {
namespace {

std::vector<OutputVcView> Views(std::initializer_list<std::pair<bool, int>>
                                    alloc_credits) {
  std::vector<OutputVcView> v;
  for (const auto& [allocated, credits] : alloc_credits) {
    v.push_back(OutputVcView{allocated, credits});
  }
  return v;
}

/// Full-range layout over `total` VCs with `vins` contiguous sub-groups.
VinLayout Contiguous(int vins, int total) {
  VinLayout layout;
  layout.num_vins = vins;
  layout.total_vcs = total;
  return layout;
}

VinLayout Interleaved(int vins, int total) {
  VinLayout layout = Contiguous(vins, total);
  layout.interleaved = true;
  return layout;
}

TEST(VinLayout, ContiguousMapping) {
  const VinLayout l = Contiguous(2, 6);
  EXPECT_EQ(l.VinOfView(0), 0);
  EXPECT_EQ(l.VinOfView(2), 0);
  EXPECT_EQ(l.VinOfView(3), 1);
  EXPECT_EQ(l.VinOfView(5), 1);
}

TEST(VinLayout, InterleavedMapping) {
  const VinLayout l = Interleaved(2, 6);
  EXPECT_EQ(l.VinOfView(0), 0);
  EXPECT_EQ(l.VinOfView(1), 1);
  EXPECT_EQ(l.VinOfView(2), 0);
  EXPECT_EQ(l.VinOfView(5), 1);
}

TEST(VinLayout, FirstVcOffsetsTheMapping) {
  VinLayout l = Contiguous(2, 6);
  l.first_vc = 3;  // views cover VCs 3..5 = all of sub-group 1
  EXPECT_EQ(l.VinOfView(0), 1);
  EXPECT_EQ(l.VinOfView(2), 1);
}

TEST(MaxCredits, PicksFreeVcWithMostCredits) {
  const auto vcs = Views({{false, 2}, {false, 5}, {false, 3}});
  EXPECT_EQ(PickOutputVc(VcAssignPolicy::kMaxCredits, vcs, Contiguous(1, 3),
                         PortDimension::kX),
            1);
}

TEST(MaxCredits, SkipsAllocatedVcs) {
  const auto vcs = Views({{true, 5}, {false, 1}, {true, 4}});
  EXPECT_EQ(PickOutputVc(VcAssignPolicy::kMaxCredits, vcs, Contiguous(1, 3),
                         PortDimension::kY),
            1);
}

TEST(MaxCredits, AllAllocatedReturnsNegative) {
  const auto vcs = Views({{true, 5}, {true, 5}});
  EXPECT_EQ(PickOutputVc(VcAssignPolicy::kMaxCredits, vcs, Contiguous(1, 2),
                         PortDimension::kX),
            -1);
}

TEST(MaxCredits, TieBreaksToLowestIndex) {
  const auto vcs = Views({{false, 3}, {false, 3}, {false, 3}});
  EXPECT_EQ(PickOutputVc(VcAssignPolicy::kMaxCredits, vcs, Contiguous(1, 3),
                         PortDimension::kX),
            0);
}

TEST(VixDimension, XTrafficPrefersGroupZero) {
  const auto vcs = Views({{false, 5}, {false, 5}, {false, 5},
                          {false, 5}, {false, 5}, {false, 5}});
  const int pick = PickOutputVc(VcAssignPolicy::kVixDimension, vcs,
                                Contiguous(2, 6), PortDimension::kX);
  EXPECT_LT(pick, 3);
}

TEST(VixDimension, YTrafficPrefersGroupOne) {
  const auto vcs = Views({{false, 5}, {false, 5}, {false, 5},
                          {false, 5}, {false, 5}, {false, 5}});
  const int pick = PickOutputVc(VcAssignPolicy::kVixDimension, vcs,
                                Contiguous(2, 6), PortDimension::kY);
  EXPECT_GE(pick, 3);
}

TEST(VixDimension, InterleavedYTrafficLandsOnOddVcs) {
  const auto vcs = Views({{false, 5}, {false, 5}, {false, 5},
                          {false, 5}, {false, 5}, {false, 5}});
  const int pick = PickOutputVc(VcAssignPolicy::kVixDimension, vcs,
                                Interleaved(2, 6), PortDimension::kY);
  EXPECT_EQ(pick % 2, 1);
}

TEST(VixDimension, FallsBackWhenPreferredGroupFull) {
  const auto vcs = Views({{true, 0}, {true, 0}, {true, 0},
                          {false, 5}, {false, 2}, {false, 3}});
  const int pick = PickOutputVc(VcAssignPolicy::kVixDimension, vcs,
                                Contiguous(2, 6), PortDimension::kX);
  EXPECT_EQ(pick, 3);  // max credits in the fallback set
}

TEST(VixDimension, LocalTrafficBalancesLoad) {
  const auto vcs = Views({{false, 5}, {false, 5}, {false, 5},
                          {true, 0}, {true, 0}, {false, 5}});
  const int pick = PickOutputVc(VcAssignPolicy::kVixDimension, vcs,
                                Contiguous(2, 6), PortDimension::kLocal);
  EXPECT_LT(pick, 3);
}

TEST(VixDimension, MaxCreditsWithinPreferredGroup) {
  const auto vcs = Views({{false, 1}, {false, 4}, {false, 2},
                          {false, 5}, {false, 5}, {false, 5}});
  EXPECT_EQ(PickOutputVc(VcAssignPolicy::kVixDimension, vcs,
                         Contiguous(2, 6), PortDimension::kX),
            1);
}

TEST(VixDimension, SubrangeCoveringOneGroupStillWorks) {
  // Candidate range = VCs 3..5 (contiguous sub-group 1 only). X traffic
  // prefers group 0, which is absent: fallback must still pick a VC.
  const auto vcs = Views({{false, 2}, {false, 4}, {false, 1}});
  VinLayout layout = Contiguous(2, 6);
  layout.first_vc = 3;
  EXPECT_EQ(PickOutputVc(VcAssignPolicy::kVixDimension, vcs, layout,
                         PortDimension::kX),
            1);
}

TEST(VixDimension, InterleavedSubrangeKeepsBothGroupsReachable) {
  // Candidate range = VCs 0..2 of an interleaved 2-vin router: vins are
  // {0, 2} -> group 0 and {1} -> group 1, so Y traffic can still land in
  // group 1 inside the lower dateline half — the motivation for the
  // interleaved wiring.
  const auto vcs = Views({{false, 5}, {false, 5}, {false, 5}});
  VinLayout layout = Interleaved(2, 6);
  const int pick = PickOutputVc(VcAssignPolicy::kVixDimension, vcs, layout,
                                PortDimension::kY);
  EXPECT_EQ(pick, 1);
}

TEST(VixBalance, PicksLessLoadedGroupRegardlessOfDimension) {
  const auto vcs = Views({{true, 0}, {true, 0}, {false, 1},
                          {false, 5}, {false, 5}, {false, 5}});
  const int pick = PickOutputVc(VcAssignPolicy::kVixBalance, vcs,
                                Contiguous(2, 6), PortDimension::kX);
  EXPECT_GE(pick, 3);
}

TEST(VixBalance, AllFullReturnsNegative) {
  const auto vcs = Views({{true, 0}, {true, 0}, {true, 0},
                          {true, 0}, {true, 0}, {true, 0}});
  EXPECT_EQ(PickOutputVc(VcAssignPolicy::kVixBalance, vcs, Contiguous(2, 6),
                         PortDimension::kY),
            -1);
}

TEST(VixPolicies, DegenerateToMaxCreditsWithOneVin) {
  const auto vcs = Views({{false, 2}, {false, 7}, {false, 3}});
  for (auto policy : {VcAssignPolicy::kVixDimension,
                      VcAssignPolicy::kVixBalance}) {
    EXPECT_EQ(PickOutputVc(policy, vcs, Contiguous(1, 3), PortDimension::kX),
              1);
  }
}

class VinCountTest : public ::testing::TestWithParam<int> {};

TEST_P(VinCountTest, AlwaysReturnsFreeVcWhenOneExists) {
  const int num_vins = GetParam();
  std::vector<OutputVcView> vcs(6);
  for (int busy = 0; busy < 6; ++busy) {
    for (auto& v : vcs) v = {true, 0};
    vcs[busy] = {false, 2};
    for (auto dim : {PortDimension::kX, PortDimension::kY,
                     PortDimension::kLocal}) {
      for (auto policy : {VcAssignPolicy::kMaxCredits,
                          VcAssignPolicy::kVixDimension,
                          VcAssignPolicy::kVixBalance}) {
        for (bool interleaved : {false, true}) {
          VinLayout layout = Contiguous(num_vins, 6);
          layout.interleaved = interleaved;
          EXPECT_EQ(PickOutputVc(policy, vcs, layout, dim), busy);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Vins, VinCountTest, ::testing::Values(1, 2, 3, 6));

}  // namespace
}  // namespace vixnoc
