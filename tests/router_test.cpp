#include <gtest/gtest.h>

#include <vector>

#include "router/router.hpp"

namespace vixnoc {
namespace {

// Standalone routing stub: a destination node id < radix names the output
// port to take at *every* router, so tests can steer flits precisely.
class PortIsDestRouting final : public RoutingAlgorithm {
 public:
  explicit PortIsDestRouting(int radix) : radix_(radix) {}
  PortId Route(RouterId, NodeId dst) const override {
    return dst % radix_;
  }
  PortDimension DimensionOf(PortId port) const override {
    if (port < 2) return PortDimension::kX;
    if (port < 4) return PortDimension::kY;
    return PortDimension::kLocal;
  }

 private:
  int radix_;
};

// Radix-5 router: ports 0-3 connect to a fictional neighbor router 1
// (mirrored port), port 4 ejects to node 0.
std::vector<OutputLinkInfo> TestLinks() {
  std::vector<OutputLinkInfo> links(5);
  for (PortId p = 0; p < 4; ++p) links[p] = {1, p, kInvalidNode};
  links[4] = {-1, kInvalidPort, 0};
  return links;
}

Flit MakeFlit(PacketId id, int seq, int size, VcId vc, PortId route_out,
              NodeId dst = 0) {
  Flit f;
  f.packet_id = id;
  f.src = 1;
  f.dst = dst;
  f.type = FlitTypeFor(seq, size);
  f.seq = static_cast<std::uint16_t>(seq);
  f.packet_size = static_cast<std::uint16_t>(size);
  f.vc = vc;
  f.route_out = route_out;
  return f;
}

class RouterTest : public ::testing::Test {
 protected:
  RouterConfig Config(AllocScheme scheme = AllocScheme::kInputFirst,
                      int vcs = 4, int depth = 3) {
    RouterConfig c;
    c.radix = 5;
    c.num_vcs = vcs;
    c.buffer_depth = depth;
    c.scheme = scheme;
    c.vc_policy = RouterConfig::DefaultPolicyFor(scheme);
    return c;
  }

  PortIsDestRouting routing_{5};
  std::vector<Router::SentFlit> sent_;
  std::vector<Router::SentCredit> credits_;

  void StepRouter(Router& r, Cycle t) {
    sent_.clear();
    credits_.clear();
    r.Step(t, &sent_, &credits_);
  }
};

TEST_F(RouterTest, SingleFlitTraversesToEjection) {
  Router r(0, Config(), TestLinks(), &routing_);
  r.AcceptFlit(0, MakeFlit(1, 0, 1, 0, /*route_out=*/4, /*dst=*/4));
  StepRouter(r, 0);
  ASSERT_EQ(sent_.size(), 1u);
  EXPECT_EQ(sent_[0].out_port, 4);
  EXPECT_EQ(sent_[0].flit.packet_id, 1u);
  ASSERT_EQ(credits_.size(), 1u);
  EXPECT_EQ(credits_[0].in_port, 0);
  EXPECT_EQ(credits_[0].vc, 0);
  EXPECT_TRUE(r.Quiescent());
}

TEST_F(RouterTest, EmptyRouterEmitsNothing) {
  Router r(0, Config(), TestLinks(), &routing_);
  StepRouter(r, 0);
  EXPECT_TRUE(sent_.empty());
  EXPECT_TRUE(credits_.empty());
  EXPECT_TRUE(r.Quiescent());
}

TEST_F(RouterTest, ForwardedFlitCarriesLookaheadRoute) {
  Router r(0, Config(), TestLinks(), &routing_);
  // Packet leaves on port 2 toward router 1; its route there is dst % 5.
  r.AcceptFlit(0, MakeFlit(1, 0, 1, 0, /*route_out=*/2, /*dst=*/3));
  StepRouter(r, 0);
  ASSERT_EQ(sent_.size(), 1u);
  EXPECT_EQ(sent_[0].out_port, 2);
  EXPECT_EQ(sent_[0].flit.route_out, 3);  // lookahead computed here
}

TEST_F(RouterTest, CreditsDecrementAndRecover) {
  Router r(0, Config(), TestLinks(), &routing_);
  r.AcceptFlit(0, MakeFlit(1, 0, 1, 0, 2, 3));
  StepRouter(r, 0);
  ASSERT_EQ(sent_.size(), 1u);
  const VcId out_vc = sent_[0].flit.vc;
  EXPECT_EQ(r.CreditsFor(2, out_vc), 2);  // depth 3 - 1 in flight
  r.AcceptCredit(2, out_vc);
  EXPECT_EQ(r.CreditsFor(2, out_vc), 3);
}

TEST_F(RouterTest, StallsWithoutCredits) {
  Router r(0, Config(AllocScheme::kInputFirst, /*vcs=*/1, /*depth=*/1),
           TestLinks(), &routing_);
  // Two single-flit packets queued back-to-back in the lone VC of port 0;
  // with depth 1 downstream, the second must wait for the credit.
  r.AcceptFlit(0, MakeFlit(1, 0, 1, 0, 2, 3));
  StepRouter(r, 0);
  ASSERT_EQ(sent_.size(), 1u);
  r.AcceptFlit(0, MakeFlit(2, 0, 1, 0, 2, 3));
  StepRouter(r, 1);
  EXPECT_TRUE(sent_.empty());  // zero credits: blocked
  r.AcceptCredit(2, 0);
  StepRouter(r, 2);
  ASSERT_EQ(sent_.size(), 1u);
  EXPECT_EQ(sent_[0].flit.packet_id, 2u);
}

TEST_F(RouterTest, WormholeFlitsStayInOrder) {
  Router r(0, Config(), TestLinks(), &routing_);
  const int size = 3;
  for (int s = 0; s < size; ++s) {
    r.AcceptFlit(1, MakeFlit(7, s, size, 2, 0, 1));
  }
  std::vector<int> seqs;
  for (Cycle t = 0; t < 6; ++t) {
    StepRouter(r, t);
    for (const auto& sf : sent_) {
      seqs.push_back(sf.flit.seq);
    }
  }
  ASSERT_EQ(seqs.size(), 3u);
  EXPECT_EQ(seqs[0], 0);
  EXPECT_EQ(seqs[1], 1);
  EXPECT_EQ(seqs[2], 2);
}

TEST_F(RouterTest, TailFreesOutputVcForNextPacket) {
  Router r(0, Config(AllocScheme::kInputFirst, /*vcs=*/1, /*depth=*/3),
           TestLinks(), &routing_);
  // Port 0 and port 1 both head to output 2; with one VC per port the
  // second packet needs the output VC released by the first one's tail.
  r.AcceptFlit(0, MakeFlit(1, 0, 2, 0, 2, 3));
  r.AcceptFlit(0, MakeFlit(1, 1, 2, 0, 2, 3));
  r.AcceptFlit(1, MakeFlit(2, 0, 1, 0, 2, 3));
  int sent_p1 = 0, sent_p2 = 0;
  for (Cycle t = 0; t < 8; ++t) {
    StepRouter(r, t);
    for (const auto& sf : sent_) {
      if (sf.flit.packet_id == 1) ++sent_p1;
      if (sf.flit.packet_id == 2) ++sent_p2;
    }
  }
  EXPECT_EQ(sent_p1, 2);
  EXPECT_EQ(sent_p2, 1);
  EXPECT_TRUE(r.Quiescent());
}

TEST_F(RouterTest, NonAtomicVcAcceptsBackToBackPackets) {
  Router r(0, Config(), TestLinks(), &routing_);
  // Two packets share input VC 0 FIFO; both complete.
  r.AcceptFlit(0, MakeFlit(1, 0, 1, 0, 4, 4));
  r.AcceptFlit(0, MakeFlit(2, 0, 1, 0, 4, 4));
  int delivered = 0;
  for (Cycle t = 0; t < 4; ++t) {
    StepRouter(r, t);
    delivered += static_cast<int>(sent_.size());
  }
  EXPECT_EQ(delivered, 2);
}

TEST_F(RouterTest, BaselineSendsOneFlitPerInputPortPerCycle) {
  Router r(0, Config(AllocScheme::kInputFirst), TestLinks(), &routing_);
  // Two VCs of port 0 request different free outputs.
  r.AcceptFlit(0, MakeFlit(1, 0, 1, 0, 2, 3));
  r.AcceptFlit(0, MakeFlit(2, 0, 1, 3, 1, 0));
  StepRouter(r, 0);
  EXPECT_EQ(sent_.size(), 1u);
}

TEST_F(RouterTest, VixSendsTwoFlitsFromOneInputPort) {
  Router r(0, Config(AllocScheme::kVix), TestLinks(), &routing_);
  // VC 0 (sub-group 0) and VC 3 (sub-group 1) of port 0, distinct outputs.
  r.AcceptFlit(0, MakeFlit(1, 0, 1, 0, 2, 3));
  r.AcceptFlit(0, MakeFlit(2, 0, 1, 3, 1, 0));
  StepRouter(r, 0);
  EXPECT_EQ(sent_.size(), 2u);
}

TEST_F(RouterTest, OutputPortNeverDoubleGranted) {
  Router r(0, Config(AllocScheme::kVix), TestLinks(), &routing_);
  r.AcceptFlit(0, MakeFlit(1, 0, 1, 0, 2, 3));
  r.AcceptFlit(1, MakeFlit(2, 0, 1, 0, 2, 3));
  r.AcceptFlit(2, MakeFlit(3, 0, 1, 0, 2, 3));
  for (Cycle t = 0; t < 5; ++t) {
    StepRouter(r, t);
    EXPECT_LE(sent_.size(), 1u);  // all compete for output 2
  }
}

TEST_F(RouterTest, ActivityCountersTrackEvents) {
  Router r(0, Config(), TestLinks(), &routing_);
  r.AcceptFlit(0, MakeFlit(1, 0, 2, 0, 2, 3));
  r.AcceptFlit(0, MakeFlit(1, 1, 2, 0, 2, 3));
  for (Cycle t = 0; t < 4; ++t) StepRouter(r, t);
  const RouterActivity& a = r.activity();
  EXPECT_EQ(a.buffer_writes, 2u);
  EXPECT_EQ(a.buffer_reads, 2u);
  EXPECT_EQ(a.xbar_traversals, 2u);
  EXPECT_EQ(a.link_flits, 2u);  // port 2 is a router-router link
  EXPECT_EQ(a.va_grants, 1u);
  EXPECT_GE(a.sa_grants, 2u);
  EXPECT_EQ(a.cycles, 4u);
  r.ClearActivity();
  EXPECT_EQ(r.activity().buffer_writes, 0u);
}

TEST_F(RouterTest, EjectionNeedsNoCredits) {
  Router r(0, Config(AllocScheme::kInputFirst, 2, 2), TestLinks(),
           &routing_);
  // Many packets eject back-to-back without any credit returns on port 4.
  int delivered = 0;
  for (Cycle t = 0; t < 12; ++t) {
    if (t < 4) r.AcceptFlit(0, MakeFlit(10 + t, 0, 1, t % 2, 4, 4));
    StepRouter(r, t);
    delivered += static_cast<int>(sent_.size());
  }
  EXPECT_EQ(delivered, 4);
}

TEST_F(RouterTest, BufferOccupancyReflectsArrivalsAndDepartures) {
  Router r(0, Config(), TestLinks(), &routing_);
  EXPECT_EQ(r.BufferOccupancy(0, 0), 0);
  r.AcceptFlit(0, MakeFlit(1, 0, 2, 0, 2, 3));
  r.AcceptFlit(0, MakeFlit(1, 1, 2, 0, 2, 3));
  EXPECT_EQ(r.BufferOccupancy(0, 0), 2);
  StepRouter(r, 0);
  EXPECT_EQ(r.BufferOccupancy(0, 0), 1);
}

TEST_F(RouterTest, GeometryMatchesScheme) {
  Router base(0, Config(AllocScheme::kInputFirst), TestLinks(), &routing_);
  EXPECT_EQ(base.geometry().num_vins, 1);
  Router vix(0, Config(AllocScheme::kVix), TestLinks(), &routing_);
  EXPECT_EQ(vix.geometry().num_vins, 2);
  Router ideal(0, Config(AllocScheme::kVixIdeal), TestLinks(), &routing_);
  EXPECT_EQ(ideal.geometry().num_vins, 4);
}

}  // namespace
}  // namespace vixnoc
