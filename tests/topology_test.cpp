#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "routing/dor.hpp"
#include "topology/topology.hpp"

namespace vixnoc {
namespace {

// ---------------------------------------------------------------------------
// Shared structural properties, parameterized over all three topologies
// ---------------------------------------------------------------------------

class TopologyTest : public ::testing::TestWithParam<TopologyKind> {
 protected:
  void SetUp() override { topo_ = MakeTopology64(GetParam()); }
  std::unique_ptr<Topology> topo_;
};

TEST_P(TopologyTest, SixtyFourNodes) {
  EXPECT_EQ(topo_->NumNodes(), 64);
}

TEST_P(TopologyTest, PaperRadix) {
  switch (GetParam()) {
    case TopologyKind::kMesh:
      EXPECT_EQ(topo_->Radix(), 5);
      EXPECT_EQ(topo_->NumRouters(), 64);
      break;
    case TopologyKind::kCMesh:
      EXPECT_EQ(topo_->Radix(), 8);
      EXPECT_EQ(topo_->NumRouters(), 16);
      break;
    case TopologyKind::kFBfly:
      EXPECT_EQ(topo_->Radix(), 10);
      EXPECT_EQ(topo_->NumRouters(), 16);
      break;
    case TopologyKind::kTorus:
      EXPECT_EQ(topo_->Radix(), 5);
      EXPECT_EQ(topo_->NumRouters(), 64);
      break;
  }
}

TEST_P(TopologyTest, EveryNodeHasDistinctLocalPort) {
  // Two nodes on the same router must use different local ports.
  std::set<std::pair<RouterId, PortId>> seen;
  for (NodeId n = 0; n < topo_->NumNodes(); ++n) {
    const RouterId r = topo_->RouterOfNode(n);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, topo_->NumRouters());
    EXPECT_EQ(topo_->InjectPortOfNode(n), topo_->EjectPortOfNode(n));
    EXPECT_TRUE(seen.insert({r, topo_->InjectPortOfNode(n)}).second);
  }
}

TEST_P(TopologyTest, EjectionPortsPointBackAtNodes) {
  for (NodeId n = 0; n < topo_->NumNodes(); ++n) {
    const auto links = topo_->LinksFor(topo_->RouterOfNode(n));
    const OutputLinkInfo& link = links[topo_->EjectPortOfNode(n)];
    EXPECT_TRUE(link.IsEjection());
    EXPECT_EQ(link.eject_node, n);
  }
}

TEST_P(TopologyTest, LinksAreSymmetric) {
  // If A's port p reaches B on B's input q, then B's output q reaches A on
  // A's input p (channels come in bidirectional pairs).
  for (RouterId a = 0; a < topo_->NumRouters(); ++a) {
    const auto links_a = topo_->LinksFor(a);
    for (PortId p = 0; p < topo_->Radix(); ++p) {
      if (links_a[p].neighbor < 0) continue;
      const RouterId b = links_a[p].neighbor;
      const PortId q = links_a[p].neighbor_in_port;
      const auto links_b = topo_->LinksFor(b);
      ASSERT_EQ(links_b[q].neighbor, a);
      ASSERT_EQ(links_b[q].neighbor_in_port, p);
    }
  }
}

TEST_P(TopologyTest, RoutingDeliversEveryPair) {
  const DorRouting routing(*topo_);
  for (NodeId src = 0; src < topo_->NumNodes(); ++src) {
    for (NodeId dst = 0; dst < topo_->NumNodes(); ++dst) {
      RouterId at = topo_->RouterOfNode(src);
      int hops = 0;
      while (true) {
        const PortId out = routing.Route(at, dst);
        ASSERT_GE(out, 0);
        ASSERT_LT(out, topo_->Radix());
        const auto links = topo_->LinksFor(at);
        ASSERT_TRUE(links[out].IsConnected())
            << "routed to unconnected port " << out << " at router " << at;
        if (links[out].IsEjection()) {
          EXPECT_EQ(links[out].eject_node, dst);
          break;
        }
        at = links[out].neighbor;
        ASSERT_LE(++hops, 32) << "routing loop " << src << "->" << dst;
      }
      EXPECT_EQ(hops, topo_->RouterHops(src, dst))
          << src << "->" << dst;
    }
  }
}

TEST_P(TopologyTest, RoutingIsDimensionOrdered) {
  // Once a packet leaves the X dimension it never re-enters it.
  const DorRouting routing(*topo_);
  for (NodeId src = 0; src < topo_->NumNodes(); src += 7) {
    for (NodeId dst = 0; dst < topo_->NumNodes(); ++dst) {
      RouterId at = topo_->RouterOfNode(src);
      bool left_x = false;
      while (true) {
        const PortId out = routing.Route(at, dst);
        const PortDimension dim = routing.DimensionOf(out);
        if (dim == PortDimension::kX) {
          EXPECT_FALSE(left_x) << src << "->" << dst;
        } else {
          left_x = true;
        }
        const auto links = topo_->LinksFor(at);
        if (links[out].IsEjection()) break;
        at = links[out].neighbor;
      }
    }
  }
}

TEST_P(TopologyTest, DimensionClassesPartitionPorts) {
  const DorRouting routing(*topo_);
  int x = 0, y = 0, local = 0;
  for (PortId p = 0; p < topo_->Radix(); ++p) {
    switch (routing.DimensionOf(p)) {
      case PortDimension::kX: ++x; break;
      case PortDimension::kY: ++y; break;
      case PortDimension::kLocal: ++local; break;
    }
  }
  EXPECT_GT(x, 0);
  EXPECT_GT(y, 0);
  EXPECT_EQ(local, topo_->NumNodes() / topo_->NumRouters());
}

INSTANTIATE_TEST_SUITE_P(All, TopologyTest,
                         ::testing::Values(TopologyKind::kMesh,
                                           TopologyKind::kCMesh,
                                           TopologyKind::kFBfly,
                                           TopologyKind::kTorus),
                         [](const auto& info) { return ToString(info.param); });

// ---------------------------------------------------------------------------
// Topology-specific expectations
// ---------------------------------------------------------------------------

TEST(Mesh, CornerRouterHasTwoUnconnectedPorts) {
  auto topo = MakeTopology64(TopologyKind::kMesh);
  const auto links = topo->LinksFor(0);  // (0,0): no West, no South
  int unconnected = 0;
  for (const auto& link : links) {
    if (!link.IsConnected()) ++unconnected;
  }
  EXPECT_EQ(unconnected, 2);
}

TEST(Mesh, XyRouteExample) {
  auto topo = MakeTopology64(TopologyKind::kMesh);
  const DorRouting routing(*topo);
  // Router 0 = (0,0); node 19 = (3,2): first hop must be East (port 0).
  EXPECT_EQ(routing.Route(0, 19), 0);
  // From router 3 = (3,0) to node 19: go North (port 2).
  EXPECT_EQ(routing.Route(3, 19), 2);
  // From router 19 itself: eject (port 4).
  EXPECT_EQ(routing.Route(19, 19), 4);
}

TEST(Mesh, HopsIsManhattanDistance) {
  auto topo = MakeTopology64(TopologyKind::kMesh);
  EXPECT_EQ(topo->RouterHops(0, 63), 14);  // (0,0) -> (7,7)
  EXPECT_EQ(topo->RouterHops(0, 7), 7);
  EXPECT_EQ(topo->RouterHops(9, 9), 0);
}

TEST(Mesh, CustomSizesSupported) {
  auto topo = MakeMesh(4, 2);
  EXPECT_EQ(topo->NumRouters(), 8);
  EXPECT_EQ(topo->NumNodes(), 8);
  EXPECT_EQ(topo->Radix(), 5);
}

TEST(CMesh, FourNodesPerRouter) {
  auto topo = MakeTopology64(TopologyKind::kCMesh);
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(topo->RouterOfNode(n), 0);
  }
  EXPECT_EQ(topo->RouterOfNode(4), 1);
  // Local ports are 4..7.
  EXPECT_EQ(topo->InjectPortOfNode(0), 4);
  EXPECT_EQ(topo->InjectPortOfNode(3), 7);
}

TEST(CMesh, MaxHopsIsSix) {
  auto topo = MakeTopology64(TopologyKind::kCMesh);
  int max_hops = 0;
  for (NodeId s = 0; s < 64; ++s) {
    for (NodeId d = 0; d < 64; ++d) {
      max_hops = std::max(max_hops, topo->RouterHops(s, d));
    }
  }
  EXPECT_EQ(max_hops, 6);  // 4x4 router grid: 3 + 3
}

TEST(FBfly, AtMostTwoRouterHops) {
  auto topo = MakeTopology64(TopologyKind::kFBfly);
  for (NodeId s = 0; s < 64; ++s) {
    for (NodeId d = 0; d < 64; ++d) {
      EXPECT_LE(topo->RouterHops(s, d), 2);
    }
  }
}

TEST(FBfly, FullyConnectedRowsAndColumns) {
  auto topo = MakeTopology64(TopologyKind::kFBfly);
  // Router 0 (row 0, col 0) must reach routers 1,2,3 (same row) and
  // 4,8,12 (same column) directly.
  const auto links = topo->LinksFor(0);
  std::set<RouterId> neighbors;
  for (const auto& link : links) {
    if (link.neighbor >= 0) neighbors.insert(link.neighbor);
  }
  EXPECT_EQ(neighbors, (std::set<RouterId>{1, 2, 3, 4, 8, 12}));
}

TEST(FBfly, EveryRouterPortConnectedOrLocal) {
  auto topo = MakeTopology64(TopologyKind::kFBfly);
  for (RouterId r = 0; r < topo->NumRouters(); ++r) {
    for (const auto& link : topo->LinksFor(r)) {
      EXPECT_TRUE(link.IsConnected());  // FBfly has no unconnected ports
    }
  }
}

}  // namespace
}  // namespace vixnoc
