#include <gtest/gtest.h>

#include "timing/delay_model.hpp"

namespace vixnoc::timing {
namespace {

// Paper Table 1 anchors. The model is a least-squares fit; every anchor
// must reproduce within 2%.
struct Table1Row {
  const char* design;
  int radix;
  int vins;
  double va_ps;
  double sa_ps;
  double xbar_ps;
};

constexpr Table1Row kTable1[] = {
    {"Mesh", 5, 1, 300, 280, 167},
    {"Mesh+VIX", 5, 2, 300, 290, 205},
    {"CMesh", 8, 1, 340, 315, 205},
    {"CMesh+VIX", 8, 2, 340, 330, 289},
    {"FBfly", 10, 1, 360, 340, 238},
    {"FBfly+VIX", 10, 2, 360, 345, 359},
};

class Table1Test : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1Test, VaWithinTwoPercent) {
  const auto& row = GetParam();
  EXPECT_NEAR(VaDelayPs(row.radix, 6), row.va_ps, row.va_ps * 0.02)
      << row.design;
}

TEST_P(Table1Test, SaWithinTwoPercent) {
  const auto& row = GetParam();
  EXPECT_NEAR(SaDelayPs(row.radix, 6, row.vins), row.sa_ps, row.sa_ps * 0.02)
      << row.design;
}

TEST_P(Table1Test, XbarWithinTwoPercent) {
  const auto& row = GetParam();
  EXPECT_NEAR(XbarDelayPs(row.radix * row.vins, row.radix), row.xbar_ps,
              row.xbar_ps * 0.02)
      << row.design;
}

TEST_P(Table1Test, CrossbarNeverOnCriticalPath) {
  // The paper's feasibility argument: even the doubled VIX crossbar stays
  // below the VA stage delay for all three topologies.
  const auto& row = GetParam();
  const StageDelays d = RouterStageDelays(row.radix, 6, row.vins);
  EXPECT_LT(d.xbar_ps, d.va_ps) << row.design;
}

INSTANTIATE_TEST_SUITE_P(Anchors, Table1Test, ::testing::ValuesIn(kTable1),
                         [](const auto& info) {
                           std::string n = info.param.design;
                           for (char& c : n) {
                             if (c == '+') c = '_';
                           }
                           return n;
                         });

TEST(DelayModel, VixDoesNotStretchRouterCycle) {
  for (int radix : {5, 8, 10}) {
    EXPECT_DOUBLE_EQ(RouterCyclePs(radix, 6, 1), RouterCyclePs(radix, 6, 2))
        << "radix " << radix;
  }
}

TEST(DelayModel, MeshVixCrossbarGrowthMatchesPaper) {
  // §2.4: "the delay of crossbar stage increases by 22%, while still
  // remaining within 70% of the router's cycle time."
  const double base = XbarDelayPs(5, 5);
  const double vix = XbarDelayPs(10, 5);
  EXPECT_NEAR(vix / base, 1.22, 0.03);
  EXPECT_LT(vix, 0.71 * RouterCyclePs(5, 6, 1));
}

TEST(DelayModel, FbflyVixCrossbarGrowthMatchesPaper) {
  // §2.4: FBfly crossbar delay grows ~50% under VIX yet stays below VA.
  const double base = XbarDelayPs(10, 10);
  const double vix = XbarDelayPs(20, 10);
  EXPECT_NEAR(vix / base, 1.50, 0.03);
  EXPECT_LT(vix, VaDelayPs(10, 6));
}

TEST(DelayModel, Table3SeparableAnchor) {
  EXPECT_NEAR(SaDelayPs(5, 6, 1), 280.0, 280.0 * 0.02);
}

TEST(DelayModel, Table3WavefrontAnchor) {
  EXPECT_NEAR(WavefrontDelayPs(5, 6), 390.0, 390.0 * 0.02);
  // "+39% higher cycle time than a separable allocator".
  EXPECT_NEAR(WavefrontDelayPs(5, 6) / SaDelayPs(5, 6, 1), 1.39, 0.01);
}

TEST(DelayModel, Table3AugmentingPathInfeasible) {
  for (int radix : {5, 8, 10}) {
    EXPECT_FALSE(AllocatorFeasible(AugmentingPathDelayPs(radix, 6), radix, 6))
        << "radix " << radix;
  }
}

TEST(DelayModel, SeparableAndVixFeasibleEverywhere) {
  for (int radix : {5, 8, 10}) {
    EXPECT_TRUE(AllocatorFeasible(SaDelayPs(radix, 6, 1), radix, 6));
    EXPECT_TRUE(AllocatorFeasible(SaDelayPs(radix, 6, 2), radix, 6));
  }
}

TEST(DelayModel, WavefrontInfeasibleWithinBaselineCycle) {
  // WF (390ps) exceeds the radix-5 router's 300ps cycle: the reason the
  // paper assumes equalized cycle times when comparing schemes.
  EXPECT_FALSE(AllocatorFeasible(WavefrontDelayPs(5, 6), 5, 6));
}

TEST(DelayModel, DelaysIncreaseWithRadix) {
  double prev_va = 0, prev_sa = 0, prev_xb = 0;
  for (int radix : {3, 5, 8, 10, 16}) {
    const StageDelays d = RouterStageDelays(radix, 6, 1);
    EXPECT_GT(d.va_ps, prev_va);
    EXPECT_GT(d.sa_ps, prev_sa);
    EXPECT_GT(d.xbar_ps, prev_xb);
    prev_va = d.va_ps;
    prev_sa = d.sa_ps;
    prev_xb = d.xbar_ps;
  }
}

TEST(DelayModel, SaDelayGrowsWithVcsAndShrinksWithSplitInputArbiters) {
  // More VCs -> deeper input arbiter -> slower.
  EXPECT_GT(SaDelayPs(5, 8, 1), SaDelayPs(5, 4, 1));
  // Splitting into two sub-groups halves the input arbiter, but doubles
  // the output arbiter; the net effect for the paper's configs is a small
  // increase (Table 1: 280 -> 290 at radix 5).
  const double delta = SaDelayPs(5, 6, 2) - SaDelayPs(5, 6, 1);
  EXPECT_GT(delta, 0.0);
  EXPECT_LT(delta, 20.0);
}

TEST(DelayModel, IdealVixSaIsPureOutputArbitration) {
  // num_vins == num_vcs removes the input arbiter entirely (log2(1) = 0).
  const double ideal = SaDelayPs(5, 6, 6);
  const double vix2 = SaDelayPs(5, 6, 2);
  // Larger output arbiter (30:1) but no input stage.
  EXPECT_GT(ideal, 0.0);
  EXPECT_NE(ideal, vix2);
}

}  // namespace
}  // namespace vixnoc::timing
