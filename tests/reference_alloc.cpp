#include "reference_alloc.hpp"

#include <algorithm>

namespace vixnoc::ref {

std::unique_ptr<RefArbiter> MakeRefArbiter(ArbiterKind kind, int n) {
  if (kind == ArbiterKind::kMatrix) return std::make_unique<RefMatrix>(n);
  return std::make_unique<RefRoundRobin>(n);
}

// ---------------------------------------------------------------------------
// Separable input-first (pre-rewrite SeparableInputFirstAllocator::Allocate).

RefSeparableInputFirst::RefSeparableInputFirst(const SwitchGeometry& g,
                                               ArbiterKind kind,
                                               bool update_on_grant_only)
    : RefAllocator(g), update_on_grant_only_(update_on_grant_only) {
  for (int i = 0; i < g.NumCrossbarInputs(); ++i) {
    input_arbiters_.push_back(MakeRefArbiter(kind, g.VcsPerVin()));
  }
  for (int o = 0; o < g.num_outports; ++o) {
    output_arbiters_.push_back(MakeRefArbiter(kind, g.NumCrossbarInputs()));
  }
  vc_request_scratch_.resize(g.VcsPerVin());
  phase1_vc_.resize(g.NumCrossbarInputs());
  phase1_out_.resize(g.NumCrossbarInputs());
  out_request_scratch_.resize(g.NumCrossbarInputs());
  out_port_of_.resize(static_cast<std::size_t>(g.NumCrossbarInputs()) *
                      g.VcsPerVin());
}

void RefSeparableInputFirst::Allocate(const std::vector<SaRequest>& requests,
                                      std::vector<SaGrant>* grants) {
  grants->clear();
  const int xin_count = geom_.NumCrossbarInputs();
  const int vpv = geom_.VcsPerVin();

  std::fill(out_port_of_.begin(), out_port_of_.end(), kInvalidPort);
  for (const SaRequest& r : requests) {
    const VinId vin = geom_.VinOfVc(r.vc);
    const int xin = r.in_port * geom_.num_vins + vin;
    const int sub = geom_.SubIndexOfVc(r.vc);
    out_port_of_[static_cast<std::size_t>(xin) * vpv + sub] = r.out_port;
  }

  for (int xin = 0; xin < xin_count; ++xin) {
    bool any = false;
    for (int sub = 0; sub < vpv; ++sub) {
      const bool req =
          out_port_of_[static_cast<std::size_t>(xin) * vpv + sub] !=
          kInvalidPort;
      vc_request_scratch_[sub] = req;
      any |= req;
    }
    if (!any) {
      phase1_vc_[xin] = -1;
      continue;
    }
    const int sub = input_arbiters_[xin]->Pick(vc_request_scratch_);
    phase1_vc_[xin] = sub;
    phase1_out_[xin] = out_port_of_[static_cast<std::size_t>(xin) * vpv + sub];
    if (!update_on_grant_only_) {
      input_arbiters_[xin]->Commit(sub);
    }
  }

  for (PortId o = 0; o < geom_.num_outports; ++o) {
    bool any = false;
    for (int xin = 0; xin < xin_count; ++xin) {
      const bool req = phase1_vc_[xin] >= 0 && phase1_out_[xin] == o;
      out_request_scratch_[xin] = req;
      any |= req;
    }
    if (!any) continue;
    const int xin = output_arbiters_[o]->Pick(out_request_scratch_);
    output_arbiters_[o]->Commit(xin);
    const int sub = phase1_vc_[xin];
    if (update_on_grant_only_) {
      input_arbiters_[xin]->Commit(sub);
    }
    SaGrant grant;
    grant.in_port = xin / geom_.num_vins;
    grant.vin = xin % geom_.num_vins;
    grant.vc = geom_.VcOf(grant.vin, sub);
    grant.out_port = o;
    grants->push_back(grant);
  }
}

// ---------------------------------------------------------------------------
// Wavefront (pre-rewrite WavefrontAllocator::Allocate).

RefWavefront::RefWavefront(const SwitchGeometry& g)
    : RefAllocator(g), n_(std::max(g.num_inports, g.num_outports)) {
  vc_rr_.assign(
      static_cast<std::size_t>(g.num_inports) * g.num_outports, 0);
  cell_vcs_.resize(static_cast<std::size_t>(g.num_inports) * g.num_outports);
  row_free_.resize(static_cast<std::size_t>(n_));
  col_free_.resize(static_cast<std::size_t>(n_));
}

void RefWavefront::Allocate(const std::vector<SaRequest>& requests,
                            std::vector<SaGrant>* grants) {
  grants->clear();
  for (auto& v : cell_vcs_) v.clear();
  for (const SaRequest& r : requests) {
    cell_vcs_[static_cast<std::size_t>(r.in_port) * geom_.num_outports +
              r.out_port]
        .push_back(r.vc);
  }

  std::fill(row_free_.begin(), row_free_.end(), true);
  std::fill(col_free_.begin(), col_free_.end(), true);

  for (int d = 0; d < n_; ++d) {
    const int diag = (priority_diagonal_ + d) % n_;
    for (int i = 0; i < n_; ++i) {
      const int j = (diag + i) % n_;
      if (i >= geom_.num_inports || j >= geom_.num_outports) continue;
      if (!row_free_[i] || !col_free_[j]) continue;
      const std::size_t cell =
          static_cast<std::size_t>(i) * geom_.num_outports + j;
      const auto& vcs = cell_vcs_[cell];
      if (vcs.empty()) continue;
      row_free_[i] = false;
      col_free_[j] = false;
      int& ptr = vc_rr_[cell];
      VcId best = kInvalidVc;
      for (VcId vc : vcs) {
        if (vc >= ptr && (best == kInvalidVc || vc < best)) best = vc;
      }
      if (best == kInvalidVc) {
        for (VcId vc : vcs) {
          if (best == kInvalidVc || vc < best) best = vc;
        }
      }
      ptr = (best + 1) % geom_.num_vcs;
      grants->push_back(SaGrant{i, 0, best, j});
    }
  }
  priority_diagonal_ = (priority_diagonal_ + 1) % n_;
}

// ---------------------------------------------------------------------------
// iSLIP (pre-rewrite IslipAllocator::Allocate).

RefIslip::RefIslip(const SwitchGeometry& g, int iterations)
    : RefAllocator(g), iterations_(iterations) {
  grant_ptr_.assign(g.num_outports, 0);
  accept_ptr_.assign(g.num_inports, 0);
  vc_rr_.assign(static_cast<std::size_t>(g.num_inports) * g.num_outports, 0);
  cell_vcs_.resize(static_cast<std::size_t>(g.num_inports) * g.num_outports);
  match_in_.resize(g.num_inports);
  match_out_.resize(g.num_outports);
  granted_to_.resize(g.num_outports);
}

void RefIslip::Allocate(const std::vector<SaRequest>& requests,
                        std::vector<SaGrant>* grants) {
  grants->clear();
  for (auto& v : cell_vcs_) v.clear();
  for (const SaRequest& r : requests) {
    cell_vcs_[static_cast<std::size_t>(r.in_port) * geom_.num_outports +
              r.out_port]
        .push_back(r.vc);
  }

  std::fill(match_in_.begin(), match_in_.end(), -1);
  std::fill(match_out_.begin(), match_out_.end(), -1);

  for (int iter = 0; iter < iterations_; ++iter) {
    std::fill(granted_to_.begin(), granted_to_.end(), -1);
    for (int out = 0; out < geom_.num_outports; ++out) {
      if (match_out_[out] != -1) continue;
      for (int off = 0; off < geom_.num_inports; ++off) {
        const int in = (grant_ptr_[out] + off) % geom_.num_inports;
        if (match_in_[in] != -1) continue;
        if (cell_vcs_[static_cast<std::size_t>(in) * geom_.num_outports + out]
                .empty()) {
          continue;
        }
        granted_to_[out] = in;
        break;
      }
    }
    bool progress = false;
    for (int in = 0; in < geom_.num_inports; ++in) {
      if (match_in_[in] != -1) continue;
      int chosen = -1;
      for (int off = 0; off < geom_.num_outports; ++off) {
        const int out = (accept_ptr_[in] + off) % geom_.num_outports;
        if (granted_to_[out] == in) {
          chosen = out;
          break;
        }
      }
      if (chosen == -1) continue;
      match_in_[in] = chosen;
      match_out_[chosen] = in;
      progress = true;
      if (iter == 0) {
        grant_ptr_[chosen] = (in + 1) % geom_.num_inports;
        accept_ptr_[in] = (chosen + 1) % geom_.num_outports;
      }
    }
    if (!progress) break;
  }

  for (int in = 0; in < geom_.num_inports; ++in) {
    const int out = match_in_[in];
    if (out == -1) continue;
    const std::size_t cell =
        static_cast<std::size_t>(in) * geom_.num_outports + out;
    const auto& vcs = cell_vcs_[cell];
    int& ptr = vc_rr_[cell];
    VcId best = kInvalidVc;
    for (VcId vc : vcs) {
      if (vc >= ptr && (best == kInvalidVc || vc < best)) best = vc;
    }
    if (best == kInvalidVc) {
      for (VcId vc : vcs) {
        if (best == kInvalidVc || vc < best) best = vc;
      }
    }
    ptr = (best + 1) % geom_.num_vcs;
    grants->push_back(SaGrant{in, 0, best, out});
  }
}

// ---------------------------------------------------------------------------
// Augmenting path (pre-rewrite AugmentingPathAllocator::Allocate).

RefAugmentingPath::RefAugmentingPath(const SwitchGeometry& g, bool rotate_vcs)
    : RefAllocator(g), rotate_vcs_(rotate_vcs) {
  request_.assign(
      static_cast<std::size_t>(g.num_inports) * g.num_outports, false);
  match_of_out_.assign(g.num_outports, -1);
  match_of_in_.assign(g.num_inports, -1);
  vc_rr_.assign(static_cast<std::size_t>(g.num_inports) * g.num_outports, 0);
  cell_vcs_.resize(static_cast<std::size_t>(g.num_inports) * g.num_outports);
  visited_.resize(static_cast<std::size_t>(g.num_outports));
}

bool RefAugmentingPath::TryAugment(int in, std::vector<bool>* visited) {
  for (int out = 0; out < geom_.num_outports; ++out) {
    if (!request_[static_cast<std::size_t>(in) * geom_.num_outports + out] ||
        (*visited)[out]) {
      continue;
    }
    (*visited)[out] = true;
    if (match_of_out_[out] == -1 ||
        TryAugment(match_of_out_[out], visited)) {
      match_of_out_[out] = in;
      match_of_in_[in] = out;
      return true;
    }
  }
  return false;
}

void RefAugmentingPath::Allocate(const std::vector<SaRequest>& requests,
                                 std::vector<SaGrant>* grants) {
  grants->clear();
  std::fill(request_.begin(), request_.end(), false);
  std::fill(match_of_out_.begin(), match_of_out_.end(), -1);
  std::fill(match_of_in_.begin(), match_of_in_.end(), -1);
  for (auto& v : cell_vcs_) v.clear();

  for (const SaRequest& r : requests) {
    const std::size_t cell =
        static_cast<std::size_t>(r.in_port) * geom_.num_outports + r.out_port;
    request_[cell] = true;
    cell_vcs_[cell].push_back(r.vc);
  }

  for (int in = 0; in < geom_.num_inports; ++in) {
    std::fill(visited_.begin(), visited_.end(), false);
    TryAugment(in, &visited_);
  }

  for (int in = 0; in < geom_.num_inports; ++in) {
    const int out = match_of_in_[in];
    if (out == -1) continue;
    const std::size_t cell =
        static_cast<std::size_t>(in) * geom_.num_outports + out;
    const auto& vcs = cell_vcs_[cell];
    int& ptr = vc_rr_[cell];
    VcId best = kInvalidVc;
    if (rotate_vcs_) {
      for (VcId vc : vcs) {
        if (vc >= ptr && (best == kInvalidVc || vc < best)) best = vc;
      }
    }
    if (best == kInvalidVc) {
      for (VcId vc : vcs) {
        if (best == kInvalidVc || vc < best) best = vc;
      }
    }
    ptr = (best + 1) % geom_.num_vcs;
    grants->push_back(SaGrant{in, 0, best, out});
  }
}

// ---------------------------------------------------------------------------
// SPAROFLO (pre-rewrite SparofloAllocator::Allocate).

RefSparoflo::RefSparoflo(const SwitchGeometry& g, ArbiterKind kind,
                         int max_exposed)
    : RefAllocator(g), max_exposed_(max_exposed) {
  for (int p = 0; p < g.num_inports; ++p) {
    input_arbiters_.push_back(MakeRefArbiter(kind, g.num_vcs));
    conflict_arbiters_.push_back(MakeRefArbiter(kind, g.num_outports));
  }
  for (int o = 0; o < g.num_outports; ++o) {
    output_arbiters_.push_back(MakeRefArbiter(kind, g.num_inports * g.num_vcs));
  }
}

void RefSparoflo::Allocate(const std::vector<SaRequest>& requests,
                           std::vector<SaGrant>* grants) {
  grants->clear();
  const int ports = geom_.num_inports;
  const int vcs = geom_.num_vcs;

  std::vector<PortId> out_of(static_cast<std::size_t>(ports) * vcs,
                             kInvalidPort);
  for (const SaRequest& r : requests) {
    out_of[static_cast<std::size_t>(r.in_port) * vcs + r.vc] = r.out_port;
  }

  std::vector<bool> exposed(static_cast<std::size_t>(ports) * vcs, false);
  for (PortId p = 0; p < ports; ++p) {
    std::vector<bool> candidate(vcs);
    std::vector<bool> out_taken(geom_.num_outports, false);
    for (int round = 0; round < max_exposed_; ++round) {
      bool any = false;
      for (VcId c = 0; c < vcs; ++c) {
        const PortId out = out_of[static_cast<std::size_t>(p) * vcs + c];
        candidate[c] = out != kInvalidPort && !exposed[p * vcs + c] &&
                       !out_taken[out];
        any |= candidate[c];
      }
      if (!any) break;
      const int winner = input_arbiters_[p]->Pick(candidate);
      input_arbiters_[p]->Commit(winner);
      exposed[static_cast<std::size_t>(p) * vcs + winner] = true;
      out_taken[out_of[static_cast<std::size_t>(p) * vcs + winner]] = true;
    }
  }

  std::vector<Tentative> tentative;
  std::vector<bool> req_scratch(static_cast<std::size_t>(ports) * vcs);
  for (PortId o = 0; o < geom_.num_outports; ++o) {
    bool any = false;
    for (PortId p = 0; p < ports; ++p) {
      for (VcId c = 0; c < vcs; ++c) {
        const std::size_t idx = static_cast<std::size_t>(p) * vcs + c;
        req_scratch[idx] = exposed[idx] && out_of[idx] == o;
        any |= req_scratch[idx];
      }
    }
    if (!any) continue;
    const int winner = output_arbiters_[o]->Pick(req_scratch);
    output_arbiters_[o]->Commit(winner);
    tentative.push_back(
        Tentative{static_cast<PortId>(winner / vcs),
                  static_cast<VcId>(winner % vcs), o});
  }

  std::vector<std::vector<Tentative>> by_port(ports);
  for (const Tentative& t : tentative) by_port[t.in_port].push_back(t);
  for (PortId p = 0; p < ports; ++p) {
    auto& wins = by_port[p];
    if (wins.empty()) continue;
    if (wins.size() == 1) {
      grants->push_back(SaGrant{p, 0, wins[0].vc, wins[0].out_port});
      continue;
    }
    std::vector<bool> outs(geom_.num_outports, false);
    for (const Tentative& t : wins) outs[t.out_port] = true;
    const int keep_out = conflict_arbiters_[p]->Pick(outs);
    conflict_arbiters_[p]->Commit(keep_out);
    for (const Tentative& t : wins) {
      if (t.out_port == keep_out) {
        grants->push_back(SaGrant{p, 0, t.vc, t.out_port});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SERENADE (scalar mirror of SerenadeAllocator::Allocate).

RefSerenade::RefSerenade(const SwitchGeometry& g, std::uint64_t seed)
    : RefAllocator(g), rng_(seed) {
  prev_match_.assign(g.num_inports, -1);
  vc_rr_.assign(static_cast<std::size_t>(g.num_inports) * g.num_outports, 0);
  request_row_.assign(g.num_inports,
                      std::vector<bool>(g.num_outports, false));
  cell_vc_.assign(static_cast<std::size_t>(g.num_inports) * g.num_outports,
                  std::vector<bool>(g.num_vcs, false));
  prop_in_.resize(g.num_inports);
  prop_out_.resize(g.num_outports);
  prop_w_.resize(g.num_outports);
  prev_out_.resize(g.num_outports);
  match_in_.resize(g.num_inports);
  in_seen_.resize(g.num_inports);
  out_seen_.resize(g.num_outports);
}

int RefSerenade::EdgeWeight(int in, int out) const {
  if (out < 0 || !request_row_[in][out]) return 0;
  const auto& vcs =
      cell_vc_[static_cast<std::size_t>(in) * geom_.num_outports + out];
  int w = 0;
  for (const bool b : vcs) w += b ? 1 : 0;
  return w;
}

void RefSerenade::Allocate(const std::vector<SaRequest>& requests,
                           std::vector<SaGrant>* grants) {
  grants->clear();
  for (auto& row : request_row_) std::fill(row.begin(), row.end(), false);
  for (auto& vcs : cell_vc_) std::fill(vcs.begin(), vcs.end(), false);
  for (const SaRequest& r : requests) {
    request_row_[r.in_port][r.out_port] = true;
    cell_vc_[static_cast<std::size_t>(r.in_port) * geom_.num_outports +
             r.out_port][r.vc] = true;
  }

  // Phase 1 — randomized proposals, ascending input order, one bounded
  // draw per requesting input; each output keeps its heaviest proposer
  // (earliest on ties).
  std::fill(prop_in_.begin(), prop_in_.end(), -1);
  std::fill(prop_out_.begin(), prop_out_.end(), -1);
  std::fill(prop_w_.begin(), prop_w_.end(), 0);
  for (int in = 0; in < geom_.num_inports; ++in) {
    int count = 0;
    for (int o = 0; o < geom_.num_outports; ++o) {
      count += request_row_[in][o] ? 1 : 0;
    }
    if (count == 0) continue;
    const int k = static_cast<int>(
        rng_.NextBounded(static_cast<std::uint64_t>(count)));
    int out = -1;
    int seen = 0;
    for (int o = 0; o < geom_.num_outports; ++o) {
      if (request_row_[in][o] && seen++ == k) {
        out = o;
        break;
      }
    }
    const int w = EdgeWeight(in, out);
    const int incumbent = prop_out_[out];
    if (incumbent == -1 || w > prop_w_[out]) {
      if (incumbent != -1) prop_in_[incumbent] = -1;
      prop_in_[in] = out;
      prop_out_[out] = in;
      prop_w_[out] = w;
    }
  }

  // Phase 2 — knot decomposition of previous matching union proposals.
  // Component membership and per-component sums are traversal-order
  // independent, so a plain scalar DFS lands on identical matchings.
  std::fill(prev_out_.begin(), prev_out_.end(), -1);
  for (int in = 0; in < geom_.num_inports; ++in) {
    if (prev_match_[in] != -1) prev_out_[prev_match_[in]] = in;
  }
  std::fill(match_in_.begin(), match_in_.end(), -1);
  std::fill(in_seen_.begin(), in_seen_.end(), false);
  std::fill(out_seen_.begin(), out_seen_.end(), false);
  std::vector<int> comp_in;
  std::vector<int> stack;
  for (int start = 0; start < geom_.num_inports; ++start) {
    if (in_seen_[start]) continue;
    comp_in.clear();
    stack.assign(1, start);
    in_seen_[start] = true;
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      if (v >= 0) {
        comp_in.push_back(v);
        for (const int out : {prev_match_[v], prop_in_[v]}) {
          if (out != -1 && !out_seen_[out]) {
            out_seen_[out] = true;
            stack.push_back(-(out + 1));
          }
        }
      } else {
        const int out = -v - 1;
        for (const int in : {prev_out_[out], prop_out_[out]}) {
          if (in != -1 && !in_seen_[in]) {
            in_seen_[in] = true;
            stack.push_back(in);
          }
        }
      }
    }
    int sum_p = 0;
    int sum_r = 0;
    for (const int in : comp_in) {
      sum_p += EdgeWeight(in, prev_match_[in]);
      sum_r += EdgeWeight(in, prop_in_[in]);
    }
    const bool keep_r = sum_r >= sum_p;
    for (const int in : comp_in) {
      const int out = keep_r ? prop_in_[in] : prev_match_[in];
      if (out != -1) match_in_[in] = out;
    }
  }
  prev_match_ = match_in_;

  // Phase 3 — grants with the rotating VC scan (first set VC at or after
  // the pointer, wrapping).
  for (int in = 0; in < geom_.num_inports; ++in) {
    const int out = match_in_[in];
    if (out == -1 || !request_row_[in][out]) continue;
    const std::size_t cell =
        static_cast<std::size_t>(in) * geom_.num_outports + out;
    int& ptr = vc_rr_[cell];
    VcId best = kInvalidVc;
    for (int off = 0; off < geom_.num_vcs; ++off) {
      const VcId vc = static_cast<VcId>((ptr + off) % geom_.num_vcs);
      if (cell_vc_[cell][vc]) {
        best = vc;
        break;
      }
    }
    ptr = (best + 1) % geom_.num_vcs;
    grants->push_back(SaGrant{in, 0, best, out});
  }
}

std::unique_ptr<RefAllocator> MakeRefAllocator(AllocScheme scheme,
                                               const SwitchGeometry& g,
                                               ArbiterKind kind,
                                               std::uint64_t seed) {
  switch (scheme) {
    case AllocScheme::kInputFirst:
    case AllocScheme::kVix:
    case AllocScheme::kVixIdeal:
      return std::make_unique<RefSeparableInputFirst>(g, kind);
    case AllocScheme::kWavefront:
      return std::make_unique<RefWavefront>(g);
    case AllocScheme::kAugmentingPath:
      return std::make_unique<RefAugmentingPath>(g);
    case AllocScheme::kIslip:
      return std::make_unique<RefIslip>(g);
    case AllocScheme::kSparoflo:
      return std::make_unique<RefSparoflo>(g, kind);
    case AllocScheme::kSerenade:
      return std::make_unique<RefSerenade>(g, seed);
    default:
      return nullptr;
  }
}

}  // namespace vixnoc::ref
