#include <gtest/gtest.h>

#include "sim/network_sim.hpp"
#include "sim/single_router.hpp"

namespace vixnoc {
namespace {

NetworkSimConfig QuickConfig(AllocScheme scheme, double rate) {
  NetworkSimConfig c;
  c.scheme = scheme;
  c.injection_rate = rate;
  c.warmup = 2000;
  c.measure = 5000;
  c.drain = 2000;
  return c;
}

TEST(NetworkSim, LowLoadAcceptsOfferedTraffic) {
  const auto r = RunNetworkSim(QuickConfig(AllocScheme::kInputFirst, 0.02));
  EXPECT_NEAR(r.accepted_ppc, 0.02, 0.003);
  EXPECT_FALSE(r.saturated);
  EXPECT_GT(r.packets_measured, 1000u);
}

TEST(NetworkSim, LowLoadLatencyNearZeroLoadBound) {
  const auto r = RunNetworkSim(QuickConfig(AllocScheme::kInputFirst, 0.01));
  // 8x8 mesh uniform: mean ~6.33 routers on the path; head latency about
  // 1 + 6.33*3 = 20 plus 3 serialization cycles -> lower bound ~23.
  EXPECT_GT(r.avg_latency, 20.0);
  EXPECT_LT(r.avg_latency, 32.0);
  EXPECT_LT(r.avg_net_latency, r.avg_latency + 1e-9);
}

TEST(NetworkSim, SaturatesAtExcessLoad) {
  const auto r = RunNetworkSim(QuickConfig(AllocScheme::kInputFirst, 0.25));
  EXPECT_TRUE(r.saturated);
  EXPECT_LT(r.accepted_ppc, 0.25);
  EXPECT_GT(r.accepted_ppc, 0.05);
}

TEST(NetworkSim, DeterministicForSameSeed) {
  const auto a = RunNetworkSim(QuickConfig(AllocScheme::kVix, 0.1));
  const auto b = RunNetworkSim(QuickConfig(AllocScheme::kVix, 0.1));
  EXPECT_EQ(a.accepted_ppc, b.accepted_ppc);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.packets_measured, b.packets_measured);
}

TEST(NetworkSim, DifferentSeedsAgreeStatistically) {
  auto c1 = QuickConfig(AllocScheme::kInputFirst, 0.05);
  auto c2 = c1;
  c2.seed = 999;
  const auto a = RunNetworkSim(c1);
  const auto b = RunNetworkSim(c2);
  EXPECT_NE(a.avg_latency, b.avg_latency);  // genuinely different streams
  EXPECT_NEAR(a.avg_latency, b.avg_latency, a.avg_latency * 0.1);
  EXPECT_NEAR(a.accepted_ppc, b.accepted_ppc, 0.005);
}

TEST(NetworkSim, FairnessNearOneAtLowLoad) {
  const auto r = RunNetworkSim(QuickConfig(AllocScheme::kInputFirst, 0.02));
  EXPECT_GT(r.max_min_ratio, 0.99);
  EXPECT_LT(r.max_min_ratio, 1.6);
}

TEST(NetworkSim, ActivityScalesWithLoad) {
  const auto lo = RunNetworkSim(QuickConfig(AllocScheme::kInputFirst, 0.02));
  const auto hi = RunNetworkSim(QuickConfig(AllocScheme::kInputFirst, 0.08));
  EXPECT_GT(hi.activity.xbar_traversals, 2 * lo.activity.xbar_traversals);
  EXPECT_GT(hi.activity.link_flits, 2 * lo.activity.link_flits);
}

TEST(NetworkSim, AllTopologiesRun) {
  for (auto kind : {TopologyKind::kMesh, TopologyKind::kCMesh,
                    TopologyKind::kFBfly}) {
    auto c = QuickConfig(AllocScheme::kVix, 0.05);
    c.topology = kind;
    const auto r = RunNetworkSim(c);
    EXPECT_GT(r.accepted_ppc, 0.03) << ToString(kind);
    EXPECT_GT(r.packets_measured, 100u) << ToString(kind);
  }
}

TEST(NetworkSim, MaxInjectionRateMatchesPacketSize) {
  NetworkSimConfig c;
  c.packet_size = 4;
  EXPECT_DOUBLE_EQ(c.MaxInjectionRate(), 0.25);
  c.packet_size = 1;
  EXPECT_DOUBLE_EQ(c.MaxInjectionRate(), 1.0);
}

TEST(NetworkSim, VixBeatsBaselineAtSaturationMesh) {
  // The headline claim (Fig 8), verified with a short run: VIX improves
  // saturation throughput substantially over separable IF.
  auto base_cfg = QuickConfig(AllocScheme::kInputFirst, 0.25);
  auto vix_cfg = QuickConfig(AllocScheme::kVix, 0.25);
  const auto base = RunNetworkSim(base_cfg);
  const auto vix = RunNetworkSim(vix_cfg);
  EXPECT_GT(vix.accepted_ppc, base.accepted_ppc * 1.05);
}

// ---------------------------------------------------------------------------
// Single-router harness (Fig 7)
// ---------------------------------------------------------------------------

SingleRouterResult RunSr(AllocScheme scheme, int radix, int vcs = 6) {
  SingleRouterConfig c;
  c.scheme = scheme;
  c.radix = radix;
  c.num_vcs = vcs;
  c.cycles = 20'000;
  return RunSingleRouter(c);
}

TEST(SingleRouter, ThroughputBoundedByRadix) {
  for (int radix : {5, 8, 10}) {
    const auto r = RunSr(AllocScheme::kVixIdeal, radix);
    EXPECT_LE(r.flits_per_cycle, radix);
    EXPECT_GT(r.flits_per_cycle, radix * 0.5);
  }
}

TEST(SingleRouter, IdealAllocationAchievesUnitEfficiency) {
  const auto r = RunSr(AllocScheme::kVixIdeal, 5);
  EXPECT_NEAR(r.matching_efficiency, 1.0, 1e-9);
}

TEST(SingleRouter, ApAchievesNearIdealMatching) {
  const auto r = RunSr(AllocScheme::kAugmentingPath, 5);
  EXPECT_GT(r.matching_efficiency, 0.97);
}

TEST(SingleRouter, PaperFig7OrderingHolds) {
  for (int radix : {5, 8, 10}) {
    const auto base = RunSr(AllocScheme::kInputFirst, radix);
    const auto wf = RunSr(AllocScheme::kWavefront, radix);
    const auto vix = RunSr(AllocScheme::kVix, radix);
    const auto ap = RunSr(AllocScheme::kAugmentingPath, radix);
    const auto ideal = RunSr(AllocScheme::kVixIdeal, radix);
    // Fig 7: AP > 30% over IF; VIX > 25% over IF; both near ideal; WF
    // between IF and AP.
    EXPECT_GT(ap.flits_per_cycle, base.flits_per_cycle * 1.25) << radix;
    EXPECT_GT(vix.flits_per_cycle, base.flits_per_cycle * 1.2) << radix;
    EXPECT_GT(wf.flits_per_cycle, base.flits_per_cycle) << radix;
    EXPECT_GE(ideal.flits_per_cycle * 1.001, ap.flits_per_cycle) << radix;
    EXPECT_GE(ideal.flits_per_cycle * 1.05, vix.flits_per_cycle) << radix;
  }
}

TEST(SingleRouter, DeterministicForSeed) {
  const auto a = RunSr(AllocScheme::kVix, 5);
  const auto b = RunSr(AllocScheme::kVix, 5);
  EXPECT_EQ(a.total_grants, b.total_grants);
}

TEST(SingleRouter, MultiFlitPacketsSupported) {
  SingleRouterConfig c;
  c.scheme = AllocScheme::kInputFirst;
  c.packet_size = 4;
  c.cycles = 10'000;
  const auto r = RunSingleRouter(c);
  EXPECT_GT(r.flits_per_cycle, 1.0);
}

}  // namespace
}  // namespace vixnoc
