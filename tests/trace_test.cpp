#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "sim/trace_sim.hpp"
#include "traffic/trace.hpp"

namespace vixnoc {
namespace {

TEST(Trace, AddKeepsOrderAndContents) {
  PacketTrace trace;
  trace.Add({0, 1, 2, 4});
  trace.Add({0, 3, 4, 1});
  trace.Add({5, 0, 63, 4});
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.LastCycle(), 5u);
  EXPECT_EQ(trace.records()[1], (TraceRecord{0, 3, 4, 1}));
}

TEST(Trace, TextRoundTrip) {
  PacketTrace trace;
  trace.Add({0, 1, 2, 4});
  trace.Add({7, 3, 4, 1});
  trace.Add({7, 5, 6, 8});
  const PacketTrace parsed = PacketTrace::FromText(trace.ToText(), 64);
  ASSERT_EQ(parsed.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(parsed.records()[i], trace.records()[i]);
  }
}

TEST(Trace, FromTextSkipsCommentsAndBlanks) {
  const PacketTrace trace = PacketTrace::FromText(
      "# header\n\n3 1 2 4\n# mid comment\n5 0 1 1\n", 8);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.records()[0].cycle, 3u);
  EXPECT_EQ(trace.records()[1].src, 0);
}

TEST(Trace, FileRoundTrip) {
  PacketTrace trace;
  for (Cycle t = 0; t < 50; ++t) {
    trace.Add({t, static_cast<NodeId>(t % 8),
               static_cast<NodeId>((t + 3) % 8), 1 + static_cast<int>(t % 4)});
  }
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.txt";
  trace.Save(path);
  const PacketTrace loaded = PacketTrace::Load(path, 8);
  ASSERT_EQ(loaded.size(), trace.size());
  EXPECT_EQ(loaded.records().back(), trace.records().back());
  std::remove(path.c_str());
}

TEST(Trace, ReplayerDeliversPerCycle) {
  PacketTrace trace;
  trace.Add({1, 0, 1, 1});
  trace.Add({1, 2, 3, 1});
  trace.Add({4, 4, 5, 1});
  TraceReplayer replayer(trace);
  EXPECT_TRUE(replayer.TakeDue(0).empty());
  EXPECT_EQ(replayer.TakeDue(1).size(), 2u);
  EXPECT_TRUE(replayer.TakeDue(2).empty());
  EXPECT_TRUE(replayer.TakeDue(3).empty());
  EXPECT_EQ(replayer.TakeDue(4).size(), 1u);
  EXPECT_TRUE(replayer.Exhausted());
  replayer.Reset();
  EXPECT_FALSE(replayer.Exhausted());
}

TEST(TraceGen, MatchesRequestedRateApproximately) {
  const PacketTrace trace = GeneratePatternTrace(
      PatternKind::kUniform, 0.1, 64, 10'000, 4, /*seed=*/3);
  const double rate =
      static_cast<double>(trace.size()) / (64.0 * 10'000.0);
  EXPECT_NEAR(rate, 0.1, 0.005);
  for (const TraceRecord& r : trace.records()) {
    EXPECT_NE(r.src, r.dst);
    EXPECT_EQ(r.size_flits, 4);
  }
}

TEST(TraceSim, DeterministicReplay) {
  const PacketTrace trace = GeneratePatternTrace(
      PatternKind::kUniform, 0.05, 64, 8'000, 4, 9);
  NetworkSimConfig config;
  config.scheme = AllocScheme::kVix;
  config.warmup = 2'000;
  config.measure = 5'000;
  config.drain = 2'000;
  const auto a = RunTraceSim(config, trace);
  const auto b = RunTraceSim(config, trace);
  EXPECT_EQ(a.accepted_ppc, b.accepted_ppc);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.packets_measured, b.packets_measured);
}

TEST(TraceSim, MatchesBernoulliSimStatistically) {
  // A replayed Bernoulli trace should land near the live Bernoulli sim.
  NetworkSimConfig config;
  config.scheme = AllocScheme::kInputFirst;
  config.injection_rate = 0.05;
  config.warmup = 2'000;
  config.measure = 6'000;
  config.drain = 2'000;
  const auto live = RunNetworkSim(config);
  const PacketTrace trace = GeneratePatternTrace(
      PatternKind::kUniform, 0.05, 64, 10'000, 4, config.seed);
  const auto replay = RunTraceSim(config, trace);
  EXPECT_NEAR(replay.accepted_ppc, live.accepted_ppc, 0.004);
  EXPECT_NEAR(replay.avg_latency, live.avg_latency, live.avg_latency * 0.1);
}

void ExpectTraceBitwiseEqual(const NetworkSimResult& a,
                             const NetworkSimResult& b) {
  EXPECT_EQ(a.accepted_ppc, b.accepted_ppc);
  EXPECT_EQ(a.accepted_fpc, b.accepted_fpc);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.avg_net_latency, b.avg_net_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_EQ(a.activity.xbar_traversals, b.activity.xbar_traversals);
  EXPECT_EQ(a.activity.buffer_writes, b.activity.buffer_writes);
}

TEST(TraceSim, CheckpointRestoreMidRunIsBitwiseEquivalent) {
  const PacketTrace trace = GeneratePatternTrace(
      PatternKind::kUniform, 0.05, 64, 4'000, 4, 13);
  NetworkSimConfig config;
  // SERENADE makes this the strongest restore test available: the
  // allocator RNG cursor must ride through the snapshot too.
  config.scheme = AllocScheme::kSerenade;
  config.warmup = 1'000;
  config.measure = 2'500;
  config.drain = 1'500;
  const auto uninterrupted = RunTraceSim(config, trace);
  ASSERT_GT(uninterrupted.packets_measured, 0u);

  const std::string path = ::testing::TempDir() + "/trace_midrun.ckpt";
  NetworkSimConfig writing = config;
  writing.checkpoint_path = path;
  writing.checkpoint_every = 1'000;
  const auto checkpointed = RunTraceSim(writing, trace);
  ExpectTraceBitwiseEqual(uninterrupted, checkpointed);

  NetworkSimConfig resumed = config;
  resumed.restore_path = path;
  const auto restored = RunTraceSim(resumed, trace);
  ExpectTraceBitwiseEqual(uninterrupted, restored);
  std::remove(path.c_str());
}

TEST(TraceSim, RestoreRejectsADifferentTrace) {
  const PacketTrace trace = GeneratePatternTrace(
      PatternKind::kUniform, 0.05, 64, 4'000, 4, 13);
  NetworkSimConfig config;
  config.warmup = 1'000;
  config.measure = 2'500;
  config.drain = 1'500;
  const std::string path = ::testing::TempDir() + "/trace_reject.ckpt";
  NetworkSimConfig writing = config;
  writing.checkpoint_path = path;
  writing.checkpoint_every = 1'000;
  RunTraceSim(writing, trace);

  // Same config, different records: the trace hash in the fingerprint
  // must refuse the resume instead of silently replaying wrong traffic.
  const PacketTrace other = GeneratePatternTrace(
      PatternKind::kUniform, 0.05, 64, 4'000, 4, 14);
  NetworkSimConfig resumed = config;
  resumed.restore_path = path;
  EXPECT_THROW(RunTraceSim(resumed, other), SimError);
  std::remove(path.c_str());
}

TEST(TraceSim, CheckpointEveryWithoutPathThrows) {
  PacketTrace trace;
  trace.Add({0, 0, 1, 1});
  NetworkSimConfig config;
  config.checkpoint_every = 100;  // no checkpoint_path
  EXPECT_THROW(RunTraceSim(config, trace), SimError);
}

TEST(TraceSim, SchemesComparedOnIdenticalTraffic) {
  const PacketTrace trace = GeneratePatternTrace(
      PatternKind::kUniform, 0.12, 64, 12'000, 4, 21);
  NetworkSimConfig config;
  config.warmup = 3'000;
  config.measure = 8'000;
  config.drain = 3'000;
  config.scheme = AllocScheme::kInputFirst;
  const auto base = RunTraceSim(config, trace);
  config.scheme = AllocScheme::kVix;
  const auto vix = RunTraceSim(config, trace);
  // Same offered traffic by construction.
  EXPECT_DOUBLE_EQ(base.offered_ppc, vix.offered_ppc);
  EXPECT_GT(vix.accepted_ppc, base.accepted_ppc * 1.05);
}

}  // namespace
}  // namespace vixnoc
