// Flit-event tracer: completeness and ordering of the event stream.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "network/network.hpp"
#include "topology/topology.hpp"

namespace vixnoc {
namespace {

std::unique_ptr<Network> MakeNet() {
  std::shared_ptr<Topology> topo = MakeTopology64(TopologyKind::kMesh);
  NetworkParams p;
  p.router.radix = 5;
  p.router.num_vcs = 6;
  p.router.buffer_depth = 5;
  return std::make_unique<Network>(topo, p);
}

using Kind = Network::FlitEventKind;

TEST(Tracer, SinglePacketEventSequence) {
  auto net = MakeNet();
  std::vector<Network::FlitEvent> events;
  net->SetFlitTracer([&](const Network::FlitEvent& e) {
    events.push_back(e);
  });
  net->EnqueuePacket(0, 2, 1);  // 2 hops east: routers 0, 1, 2
  for (int t = 0; t < 100; ++t) net->Step();

  // inject, traverse x3 routers, eject.
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].kind, Kind::kInject);
  EXPECT_EQ(events[1].kind, Kind::kTraverse);
  EXPECT_EQ(events[1].router, 0);
  EXPECT_EQ(events[1].out_port, 0);  // East
  EXPECT_EQ(events[2].router, 1);
  EXPECT_EQ(events[3].router, 2);
  EXPECT_EQ(events[3].out_port, 4 + 2 % 1);  // local port of node 2
  EXPECT_EQ(events[4].kind, Kind::kEject);
  // Cycles strictly increase along the path.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].cycle, events[i - 1].cycle);
  }
}

TEST(Tracer, MultiFlitPacketTracesEveryFlit) {
  auto net = MakeNet();
  int injects = 0, traversals = 0, ejects = 0;
  net->SetFlitTracer([&](const Network::FlitEvent& e) {
    switch (e.kind) {
      case Kind::kInject: ++injects; break;
      case Kind::kTraverse: ++traversals; break;
      case Kind::kEject: ++ejects; break;
    }
  });
  net->EnqueuePacket(0, 1, 4);  // 1 hop, 2 routers
  for (int t = 0; t < 100; ++t) net->Step();
  EXPECT_EQ(injects, 4);
  EXPECT_EQ(traversals, 8);  // 4 flits x 2 routers
  EXPECT_EQ(ejects, 4);
}

TEST(Tracer, CountsMatchCountersUnderRandomLoad) {
  auto net = MakeNet();
  std::uint64_t traced_ejects = 0;
  net->SetFlitTracer([&](const Network::FlitEvent& e) {
    if (e.kind == Kind::kEject) ++traced_ejects;
  });
  Rng rng(3);
  for (int t = 0; t < 1000; ++t) {
    for (NodeId n = 0; n < 64; ++n) {
      if (rng.NextBool(0.03)) {
        net->EnqueuePacket(n, static_cast<NodeId>(rng.NextBounded(64)), 2);
      }
    }
    net->Step();
  }
  std::uint64_t counted = 0;
  for (NodeId n = 0; n < 64; ++n) counted += net->counters(n).flits_ejected;
  EXPECT_EQ(traced_ejects, counted);
}

TEST(Tracer, UnsetTracerIsFree) {
  // Smoke: no tracer, everything still works (the common case).
  auto net = MakeNet();
  net->EnqueuePacket(0, 63, 4);
  for (int t = 0; t < 100; ++t) net->Step();
  EXPECT_EQ(net->counters(63).packets_ejected, 1u);
}

}  // namespace
}  // namespace vixnoc
