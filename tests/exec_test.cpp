// Crash-isolated sweep execution (exec/coordinator.hpp + the
// vixnoc_sweep_worker subprocess).
//
// The contract under test: a batch containing points that segfault, hang,
// exit, or corrupt their output completes without killing the
// coordinator; every failure is classified in the per-point ExecStatus;
// failed points are retried with backoff on respawned workers; and every
// surviving result is bitwise identical to a direct serial RunNetworkSim
// call — the same determinism contract SweepRunner pins, now across a
// process boundary.
//
// The worker binary's path is baked in by CMake
// (VIXNOC_SWEEP_WORKER_PATH); failure injection uses the worker's
// VIXNOC_TEST_*_POINT environment hooks.
#include "exec/coordinator.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "common/error.hpp"
#include "exec/exec_protocol.hpp"
#include "sim/sweep.hpp"
#include "snapshot/snapshot.hpp"
#include "store/result_store.hpp"
#include "topology/topology.hpp"

namespace vixnoc {
namespace {

/// Serialized image of a result: bitwise equality of every field the
/// full-fidelity codec covers (metrics, outcome, timeline, telemetry).
std::string Bytes(const NetworkSimResult& r) {
  SnapshotWriter w;
  w.BeginSection("result");
  SaveNetworkSimResult(w, r);
  w.EndSection();
  return w.Finish(0);
}

/// Small default-topology batch (the 64-node mesh; a topology_factory
/// cannot cross the process boundary) with mixed schemes and rates so
/// points differ in runtime and completion order.
std::vector<NetworkSimConfig> TestBatch(std::size_t n = 6) {
  std::vector<NetworkSimConfig> points;
  const AllocScheme schemes[] = {AllocScheme::kInputFirst, AllocScheme::kVix,
                                 AllocScheme::kWavefront};
  for (std::size_t i = 0; i < n; ++i) {
    NetworkSimConfig c;
    c.scheme = schemes[i % 3];
    c.injection_rate = 0.04 + 0.02 * static_cast<double>(i % 3);
    c.warmup = 200;
    c.measure = 600;
    c.drain = 200;
    c.sample_interval = 250;  // the timeline must survive the wire, too
    c.seed = 11 + i;
    points.push_back(c);
  }
  return points;
}

std::vector<NetworkSimResult> SerialReference(
    const std::vector<NetworkSimConfig>& configs) {
  std::vector<NetworkSimResult> out;
  out.reserve(configs.size());
  for (const NetworkSimConfig& c : configs) out.push_back(RunNetworkSim(c));
  return out;
}

ExecPolicy TestPolicy(int workers = 3) {
  ExecPolicy policy;
  policy.num_workers = workers;
  policy.worker_path = VIXNOC_SWEEP_WORKER_PATH;
  // Fast backoff so retry tests stay quick while still exercising the
  // exponential schedule.
  policy.backoff_initial_seconds = 0.01;
  policy.backoff_multiplier = 2.0;
  policy.backoff_max_seconds = 0.1;
  return policy;
}

/// Sets a worker failure-injection hook for one test body, restoring the
/// pristine environment afterwards (hooks leak into every later spawn
/// otherwise).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    EXPECT_EQ(setenv(name, value.c_str(), 1), 0);
  }
  ~ScopedEnv() { unsetenv(name_); }

 private:
  const char* name_;
};

std::string FreshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "vixnoc_exec_" + tag + "_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(ExecProtocolTest, PointFrameRoundTripsNonDefaultConfig) {
  NetworkSimConfig c;
  c.topology = TopologyKind::kFBfly;
  c.scheme = AllocScheme::kVix;
  c.num_vcs = 4;
  c.buffer_depth = 3;
  c.packet_size = 2;
  c.injection_rate = 0.17;
  c.pattern = PatternKind::kTranspose;
  c.arbiter = ArbiterKind::kMatrix;
  c.vc_policy = VcAssignPolicy::kVixBalance;
  c.ap_rotate_vcs = false;
  c.pipeline_stages = 5;
  c.vix_virtual_inputs = 2;
  c.interleaved_vins = true;
  c.prioritize_nonspeculative = true;
  c.va_organization = VaOrganization::kSeparableArbitrated;
  c.atomic_vc_alloc = true;
  c.bursty = true;
  c.burst_on_rate = 0.4;
  c.mean_burst_cycles = 17.5;
  c.sample_interval = 123;
  c.faults.link_down_rate = 0.01;
  c.faults.forced_link_down = {{3, 1}, {7, 2}};
  c.faults.seed = 99;
  c.watchdog_cycles = 7'777;
  c.telemetry.enabled = true;
  c.telemetry.trace_sample_period = 5;
  c.seed = 42;
  c.warmup = 111;
  c.measure = 222;
  c.drain = 33;

  PointFrame in;
  in.index = 17;
  in.attempt = 3;
  in.config = c;
  const PointFrame out = DecodePointFrame(EncodePointFrame(in));
  EXPECT_EQ(out.index, 17u);
  EXPECT_EQ(out.attempt, 3u);
  // The fingerprint covers every evolution-relevant field, so equality of
  // fingerprints is equality of the wire-visible config.
  EXPECT_EQ(NetworkSimConfigFingerprint(out.config),
            NetworkSimConfigFingerprint(c));
  EXPECT_EQ(out.config.faults.forced_link_down, c.faults.forced_link_down);
  EXPECT_EQ(out.config.telemetry.enabled, true);
  EXPECT_EQ(out.config.vc_policy, c.vc_policy);
}

TEST(ExecProtocolTest, TopologyFactoryRefusedAtEncode) {
  PointFrame frame;
  frame.config.topology_factory = [] { return MakeMesh(4, 4); };
  EXPECT_THROW(EncodePointFrame(frame), SimError);
}

TEST(ExecProtocolTest, ResultFrameRoundTrips) {
  NetworkSimConfig c;
  c.warmup = 100;
  c.measure = 300;
  c.drain = 100;
  const NetworkSimResult r = RunNetworkSim(c);
  const std::string bytes =
      EncodeResultFrame(5, NetworkSimConfigFingerprint(c), r);
  const ResultFrame decoded = DecodeResultFrame(bytes);
  EXPECT_EQ(decoded.index, 5u);
  EXPECT_EQ(decoded.config_fingerprint, NetworkSimConfigFingerprint(c));
  EXPECT_EQ(Bytes(decoded.result), Bytes(r));
}

TEST(SweepCoordinatorTest, CleanBatchBitwiseIdenticalToSerial) {
  const std::vector<NetworkSimConfig> points = TestBatch();
  const std::vector<NetworkSimResult> serial = SerialReference(points);

  for (const int workers : {1, 3}) {
    SweepCoordinator coordinator(TestPolicy(workers));
    const SweepExecResult exec = coordinator.Run(points);
    ASSERT_EQ(exec.results.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      EXPECT_EQ(Bytes(exec.results[i]), Bytes(serial[i])) << "point " << i;
      EXPECT_TRUE(exec.points[i].isolated);
      EXPECT_FALSE(exec.points[i].in_process_fallback);
      EXPECT_EQ(exec.points[i].attempts, 1);
      EXPECT_EQ(exec.points[i].last_failure, ExecFailure::kNone);
    }
    EXPECT_GE(exec.workers_spawned, 1u);
    EXPECT_EQ(exec.crashes, 0u);
    EXPECT_EQ(exec.timeouts, 0u);
    EXPECT_EQ(exec.retries, 0u);
    EXPECT_EQ(exec.exhausted_points, 0u);
  }
}

TEST(SweepCoordinatorTest, CrashPointIsClassifiedRetriedAndIsolated) {
  const std::vector<NetworkSimConfig> points = TestBatch();
  const std::vector<NetworkSimResult> serial = SerialReference(points);

  ScopedEnv crash("VIXNOC_TEST_CRASH_POINT", "2");
  ExecPolicy policy = TestPolicy(2);
  policy.max_retries = 2;
  SweepCoordinator coordinator(policy);
  const SweepExecResult exec = coordinator.Run(points);

  // The poisoned point got a final error slot after exhausting retries.
  ASSERT_EQ(exec.results.size(), points.size());
  EXPECT_EQ(exec.results[2].outcome.status, SimStatus::kExecFailure);
  EXPECT_NE(exec.results[2].outcome.message.find("signal"),
            std::string::npos)
      << exec.results[2].outcome.message;
  EXPECT_EQ(exec.points[2].last_failure, ExecFailure::kSignal);
  EXPECT_EQ(exec.points[2].attempts, 3);  // 1 try + 2 retries
  EXPECT_GT(exec.points[2].backoff_seconds, 0.0);
  EXPECT_EQ(exec.crashes, 3u);
  EXPECT_EQ(exec.retries, 2u);
  EXPECT_EQ(exec.exhausted_points, 1u);
  // Each crash killed a worker, so the pool respawned at least that many.
  EXPECT_GE(exec.workers_spawned, 3u);

  // Every healthy point survived, bitwise identical to the serial run.
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i == 2) continue;
    EXPECT_EQ(Bytes(exec.results[i]), Bytes(serial[i])) << "point " << i;
    EXPECT_TRUE(exec.points[i].isolated);
  }
}

TEST(SweepCoordinatorTest, CrashOnceThenSucceedOnRetry) {
  const std::vector<NetworkSimConfig> points = TestBatch(4);
  const std::vector<NetworkSimResult> serial = SerialReference(points);

  // Hook fires only while attempt < 1: the first try aborts, the retry
  // (on a respawned worker) succeeds.
  ScopedEnv crash("VIXNOC_TEST_CRASH_POINT", "1:1");
  ExecPolicy policy = TestPolicy(2);
  policy.max_retries = 2;
  SweepCoordinator coordinator(policy);
  const SweepExecResult exec = coordinator.Run(points);

  EXPECT_EQ(exec.points[1].attempts, 2);
  EXPECT_EQ(exec.points[1].last_failure, ExecFailure::kSignal);
  EXPECT_TRUE(exec.points[1].isolated);
  EXPECT_GT(exec.points[1].backoff_seconds, 0.0);
  EXPECT_EQ(exec.retries, 1u);
  EXPECT_EQ(exec.crashes, 1u);
  EXPECT_EQ(exec.exhausted_points, 0u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(Bytes(exec.results[i]), Bytes(serial[i])) << "point " << i;
  }
}

TEST(SweepCoordinatorTest, HangPointIsKilledAndClassifiedTimeout) {
  const std::vector<NetworkSimConfig> points = TestBatch(4);
  const std::vector<NetworkSimResult> serial = SerialReference(points);

  ScopedEnv hang("VIXNOC_TEST_HANG_POINT", "0");
  ExecPolicy policy = TestPolicy(2);
  policy.point_timeout_seconds = 0.4;
  policy.max_retries = 1;
  SweepCoordinator coordinator(policy);
  const SweepExecResult exec = coordinator.Run(points);

  EXPECT_EQ(exec.results[0].outcome.status, SimStatus::kExecFailure);
  EXPECT_EQ(exec.points[0].last_failure, ExecFailure::kTimeout);
  EXPECT_NE(exec.points[0].failure_detail.find("deadline"),
            std::string::npos)
      << exec.points[0].failure_detail;
  EXPECT_EQ(exec.points[0].attempts, 2);
  EXPECT_EQ(exec.timeouts, 2u);
  EXPECT_EQ(exec.exhausted_points, 1u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_EQ(Bytes(exec.results[i]), Bytes(serial[i])) << "point " << i;
  }
  // The kill shows up in the worker lifecycle events.
  bool saw_kill = false;
  for (const WorkerEvent& ev : exec.events) {
    saw_kill = saw_kill || ev.kind == WorkerEvent::Kind::kKill;
  }
  EXPECT_TRUE(saw_kill);
}

TEST(SweepCoordinatorTest, NonzeroExitIsClassifiedExit) {
  const std::vector<NetworkSimConfig> points = TestBatch(3);
  ScopedEnv exit_hook("VIXNOC_TEST_EXIT_POINT", "0");
  ExecPolicy policy = TestPolicy(1);
  policy.max_retries = 0;
  SweepCoordinator coordinator(policy);
  const SweepExecResult exec = coordinator.Run(points);
  EXPECT_EQ(exec.points[0].last_failure, ExecFailure::kExit);
  EXPECT_NE(exec.points[0].failure_detail.find("exit status 41"),
            std::string::npos)
      << exec.points[0].failure_detail;
  EXPECT_EQ(exec.results[0].outcome.status, SimStatus::kExecFailure);
  EXPECT_EQ(exec.crashes, 1u);
}

TEST(SweepCoordinatorTest, ShortFrameIsClassifiedBadFrame) {
  const std::vector<NetworkSimConfig> points = TestBatch(3);
  ScopedEnv bad("VIXNOC_TEST_BADFRAME_POINT", "1");
  ExecPolicy policy = TestPolicy(1);
  policy.max_retries = 0;
  SweepCoordinator coordinator(policy);
  const SweepExecResult exec = coordinator.Run(points);
  EXPECT_EQ(exec.points[1].last_failure, ExecFailure::kBadFrame);
  EXPECT_EQ(exec.results[1].outcome.status, SimStatus::kExecFailure);
  EXPECT_EQ(exec.bad_frames, 1u);
}

TEST(SweepCoordinatorTest, SpawnFailureDegradesToInProcess) {
  const std::vector<NetworkSimConfig> points = TestBatch(4);
  const std::vector<NetworkSimResult> serial = SerialReference(points);

  ExecPolicy policy = TestPolicy(2);
  policy.worker_path = "/nonexistent/vixnoc_sweep_worker";
  SweepCoordinator coordinator(policy);
  const SweepExecResult exec = coordinator.Run(points);

  EXPECT_GE(exec.spawn_failures, 1u);
  EXPECT_EQ(exec.fallback_points, points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_TRUE(exec.points[i].in_process_fallback);
    EXPECT_FALSE(exec.points[i].isolated);
    EXPECT_EQ(exec.points[i].last_failure, ExecFailure::kSpawn);
    EXPECT_EQ(Bytes(exec.results[i]), Bytes(serial[i])) << "point " << i;
  }
}

TEST(SweepCoordinatorTest, TopologyFactoryPointRunsInProcess) {
  std::vector<NetworkSimConfig> points = TestBatch(4);
  points[2].topology_factory = [] { return MakeMesh(4, 4); };
  const std::vector<NetworkSimResult> serial = SerialReference(points);

  SweepCoordinator coordinator(TestPolicy(2));
  const SweepExecResult exec = coordinator.Run(points);
  EXPECT_TRUE(exec.points[2].in_process_fallback);
  EXPECT_EQ(exec.fallback_points, 1u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(Bytes(exec.results[i]), Bytes(serial[i])) << "point " << i;
    if (i != 2) {
      EXPECT_TRUE(exec.points[i].isolated);
    }
  }
}

TEST(SweepCoordinatorTest, CheckpointCacheServesCompletedPoints) {
  const std::vector<NetworkSimConfig> points = TestBatch(4);
  const std::string dir = FreshDir("cache");

  ExecPolicy policy = TestPolicy(2);
  policy.checkpoint_dir = dir;
  const SweepExecResult first = SweepCoordinator(policy).Run(points);
  ASSERT_EQ(first.cached_points, 0u);

  // A fresh coordinator over the same directory serves everything from
  // cache without spawning a single worker.
  const SweepExecResult second = SweepCoordinator(policy).Run(points);
  EXPECT_EQ(second.cached_points, points.size());
  EXPECT_EQ(second.workers_spawned, 0u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_TRUE(second.points[i].from_cache);
    EXPECT_EQ(Bytes(second.results[i]), Bytes(first.results[i]));
  }

  // Interop: SweepRunner reads the same content-addressed store, so the
  // in-process path resumes from a coordinator-written cache too.
  SweepRunner runner(2);
  runner.SetCache(std::make_shared<ResultStore>(dir));
  const std::vector<NetworkSimResult> resumed = runner.Run(points);
  EXPECT_EQ(runner.resumed_points(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(Bytes(resumed[i]), Bytes(first.results[i]));
  }
  std::filesystem::remove_all(dir);
}

TEST(SweepCoordinatorTest, CrashedPointRecoversFromCacheAssistedRerun) {
  const std::vector<NetworkSimConfig> points = TestBatch(4);
  const std::vector<NetworkSimResult> serial = SerialReference(points);
  const std::string dir = FreshDir("crash_cache");

  ExecPolicy policy = TestPolicy(2);
  policy.checkpoint_dir = dir;
  policy.max_retries = 1;
  {
    // First run: point 3 crashes out; the healthy points land in cache.
    ScopedEnv crash("VIXNOC_TEST_CRASH_POINT", "3");
    const SweepExecResult exec = SweepCoordinator(policy).Run(points);
    EXPECT_EQ(exec.results[3].outcome.status, SimStatus::kExecFailure);
    EXPECT_EQ(exec.exhausted_points, 1u);
  }
  // Re-run after the "bug is fixed" (hook cleared): only the crashed
  // point is simulated, everything else is a cheap cache hit.
  const SweepExecResult rerun = SweepCoordinator(policy).Run(points);
  EXPECT_EQ(rerun.cached_points, points.size() - 1);
  EXPECT_EQ(rerun.exhausted_points, 0u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(Bytes(rerun.results[i]), Bytes(serial[i])) << "point " << i;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace vixnoc
