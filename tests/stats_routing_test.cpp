// Tests for the observability features (per-port link counters, progress
// watchdog) and the YX mesh routing option.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "network/network.hpp"
#include "routing/dor.hpp"
#include "topology/topology.hpp"

namespace vixnoc {
namespace {

std::unique_ptr<Network> MakeNet(std::shared_ptr<Topology> topo) {
  NetworkParams p;
  p.router.radix = topo->Radix();
  p.router.num_vcs = 6;
  p.router.buffer_depth = 5;
  return std::make_unique<Network>(std::move(topo), p);
}

TEST(LinkCounters, TrackPerPortFlits) {
  auto net = MakeNet(MakeTopology64(TopologyKind::kMesh));
  // 0 -> 2 along the top row: router 0 and router 1 each forward 4 flits
  // East (port 0); router 2 ejects them on its local port (4).
  net->EnqueuePacket(0, 2, 4);
  for (int t = 0; t < 100; ++t) net->Step();
  EXPECT_EQ(net->router(0).FlitsSentOn(0), 4u);
  EXPECT_EQ(net->router(1).FlitsSentOn(0), 4u);
  EXPECT_EQ(net->router(2).FlitsSentOn(4), 4u);
  EXPECT_EQ(net->router(2).FlitsSentOn(0), 0u);
  net->router(0).ClearActivity();
  EXPECT_EQ(net->router(0).FlitsSentOn(0), 0u);
}

TEST(LinkCounters, SumMatchesActivityTotals) {
  auto net = MakeNet(MakeTopology64(TopologyKind::kMesh));
  Rng rng(4);
  for (int t = 0; t < 500; ++t) {
    for (NodeId n = 0; n < 64; ++n) {
      if (rng.NextBool(0.03)) {
        net->EnqueuePacket(n, static_cast<NodeId>(rng.NextBounded(64)), 2);
      }
    }
    net->Step();
  }
  for (RouterId r = 0; r < net->NumRouters(); ++r) {
    std::uint64_t per_port_sum = 0;
    for (PortId p = 0; p < 5; ++p) {
      per_port_sum += net->router(r).FlitsSentOn(p);
    }
    EXPECT_EQ(per_port_sum, net->router(r).activity().xbar_traversals);
  }
}

TEST(Watchdog, NoFalseAlarmUnderLoad) {
  auto net = MakeNet(MakeTopology64(TopologyKind::kMesh));
  Rng rng(5);
  for (int t = 0; t < 2000; ++t) {
    for (NodeId n = 0; n < 64; ++n) {
      if (rng.NextBool(0.05)) {
        net->EnqueuePacket(n, static_cast<NodeId>(rng.NextBounded(64)), 4);
      }
    }
    net->Step();
    ASSERT_FALSE(net->SuspectedDeadlock(100)) << "cycle " << t;
  }
}

TEST(Watchdog, IdleNetworkIsNotDeadlocked) {
  auto net = MakeNet(MakeTopology64(TopologyKind::kMesh));
  for (int t = 0; t < 3000; ++t) net->Step();
  EXPECT_GE(net->CyclesSinceProgress(), 2999u);
  EXPECT_FALSE(net->SuspectedDeadlock(100));  // quiescent, not stuck
}

TEST(Watchdog, ProgressCounterResetsOnTraffic) {
  auto net = MakeNet(MakeTopology64(TopologyKind::kMesh));
  for (int t = 0; t < 500; ++t) net->Step();
  net->EnqueuePacket(0, 1, 1);
  for (int t = 0; t < 20; ++t) net->Step();
  EXPECT_LT(net->CyclesSinceProgress(), 20u);
}

TEST(YxRouting, DeliversEveryPair) {
  auto topo = MakeMesh(8, 8, 1, MeshRouteOrder::kYX);
  const DorRouting routing(*topo);
  for (NodeId src = 0; src < 64; src += 3) {
    for (NodeId dst = 0; dst < 64; ++dst) {
      RouterId at = topo->RouterOfNode(src);
      int hops = 0;
      while (true) {
        const PortId out = routing.Route(at, dst);
        const auto links = topo->LinksFor(at);
        ASSERT_TRUE(links[out].IsConnected());
        if (links[out].IsEjection()) {
          EXPECT_EQ(links[out].eject_node, dst);
          break;
        }
        at = links[out].neighbor;
        ASSERT_LE(++hops, 20);
      }
      EXPECT_EQ(hops, topo->RouterHops(src, dst));
    }
  }
}

TEST(YxRouting, YBeforeX) {
  auto topo = MakeMesh(8, 8, 1, MeshRouteOrder::kYX);
  const DorRouting routing(*topo);
  // From router 0 = (0,0) to node 19 = (3,2): YX goes North first.
  EXPECT_EQ(routing.Route(0, 19), 2);  // North
  // XY (default) goes East first.
  auto xy = MakeMesh(8, 8, 1, MeshRouteOrder::kXY);
  EXPECT_EQ(DorRouting(*xy).Route(0, 19), 0);  // East
}

TEST(YxRouting, NetworkDrainsWithoutDeadlock) {
  auto net = MakeNet(MakeMesh(8, 8, 1, MeshRouteOrder::kYX));
  Rng rng(6);
  std::uint64_t sent = 0, got = 0;
  net->SetEjectCallback([&](const PacketRecord&) { ++got; });
  for (int t = 0; t < 1500; ++t) {
    for (NodeId n = 0; n < 64; ++n) {
      if (rng.NextBool(0.05)) {
        net->EnqueuePacket(n, static_cast<NodeId>(rng.NextBounded(64)), 4);
        ++sent;
      }
    }
    net->Step();
  }
  int guard = 0;
  while (!net->Quiescent()) {
    net->Step();
    ASSERT_LT(++guard, 20'000);
  }
  EXPECT_EQ(got, sent);
}

}  // namespace
}  // namespace vixnoc
