// Randomized equivalence tests: the word-parallel arbiter and allocator
// kernels must be grant-for-grant identical to the retained scalar
// reference implementations (tests/reference_alloc.*) over long request
// sequences. Priority state (rotating pointers, LRG matrices, per-cell VC
// pointers) evolves with every commit, so per-cycle identity here pins the
// full state machine, not just a single decision.
//
// Sizes cover 2..64 plus >64-input instances, which exercise the
// multi-word (two-plus uint64_t) scan paths of every kernel.

#include <gtest/gtest.h>

#include <cctype>
#include <random>
#include <string>
#include <vector>

#include "alloc/request_matrix.hpp"
#include "alloc/switch_allocator.hpp"
#include "arbiter/arbiter.hpp"
#include "reference_alloc.hpp"

namespace vixnoc {
namespace {

TEST(BitsEquiv, FirstSetFromMatchesRotatingScan) {
  std::mt19937_64 rng(7);
  for (int n : {1, 2, 13, 63, 64, 65, 127, 130}) {
    BitWords words(n);
    std::vector<bool> scalar(n);
    for (int round = 0; round < 200; ++round) {
      for (int i = 0; i < n; ++i) {
        const bool bit = (rng() & 3) == 0;
        words.Assign(i, bit);
        scalar[i] = bit;
      }
      const int start = static_cast<int>(rng() % n);
      int expect = -1;
      for (int off = 0; off < n; ++off) {
        const int i = (start + off) % n;
        if (scalar[i]) {
          expect = i;
          break;
        }
      }
      EXPECT_EQ(words.FirstFrom(start), expect) << "n=" << n;
      EXPECT_EQ(words.First(),
                bits::FirstSetAtOrAfter(words.data(), words.word_count(), 0));
    }
  }
}

class ArbiterEquivTest : public ::testing::TestWithParam<ArbiterKind> {};

TEST_P(ArbiterEquivTest, RandomSequencesMatchScalarReference) {
  const ArbiterKind kind = GetParam();
  // 2..64 plus >64 sizes that need a second (and third) word.
  for (int n : {1, 2, 3, 5, 8, 17, 31, 32, 33, 63, 64, 65, 100, 130}) {
    auto fast = MakeArbiter(kind, n);
    auto ref = ref::MakeRefArbiter(kind, n);
    std::mt19937_64 rng(0x5eedu + static_cast<unsigned>(n));
    BitWords requests(n);
    std::vector<bool> scalar(n);
    for (int round = 0; round < 300; ++round) {
      for (int i = 0; i < n; ++i) {
        const bool bit = (rng() & 3) == 0;
        requests.Assign(i, bit);
        scalar[i] = bit;
      }
      const int got = fast->Pick(requests);
      const int expect = ref->Pick(scalar);
      ASSERT_EQ(got, expect) << "kind=" << static_cast<int>(kind)
                             << " n=" << n << " round=" << round;
      if (got >= 0) {
        fast->Commit(got);
        ref->Commit(got);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ArbiterEquivTest,
                         ::testing::Values(ArbiterKind::kRoundRobin,
                                           ArbiterKind::kMatrix));

// ---------------------------------------------------------------------------
// Allocator equivalence.

struct EquivCase {
  AllocScheme scheme;
  int radix;
  int vcs;
  ArbiterKind kind;
};

std::string CaseName(const ::testing::TestParamInfo<EquivCase>& info) {
  const EquivCase& c = info.param;
  std::string name = ToString(c.scheme) + "_r" + std::to_string(c.radix) +
                     "_v" + std::to_string(c.vcs) +
                     (c.kind == ArbiterKind::kMatrix ? "_matrix" : "_rr");
  for (char& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return name;
}

class AllocEquivTest : public ::testing::TestWithParam<EquivCase> {};

TEST_P(AllocEquivTest, RandomRequestMatricesMatchScalarReference) {
  const EquivCase& c = GetParam();
  SwitchGeometry g;
  g.num_inports = c.radix;
  g.num_outports = c.radix;
  g.num_vcs = c.vcs;
  g.num_vins = VirtualInputsForScheme(c.scheme, c.vcs);
  // Randomized schemes (SERENADE) must see the same seed on both sides;
  // the deterministic schemes ignore it.
  const std::uint64_t seed =
      0x5e7e9adeull ^ (static_cast<std::uint64_t>(c.radix) << 16);
  auto fast = MakeSwitchAllocator(c.scheme, g, c.kind, seed);
  auto ref = ref::MakeRefAllocator(c.scheme, g, c.kind, seed);
  ASSERT_NE(ref, nullptr);

  std::mt19937_64 rng(0xA110Cu ^ (static_cast<std::uint64_t>(c.radix) << 8) ^
                      static_cast<std::uint64_t>(c.scheme));
  std::vector<SaRequest> requests;
  std::vector<SaGrant> got;
  std::vector<SaGrant> expect;
  const int cycles = c.radix > 64 ? 60 : 200;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    requests.clear();
    // Each (in_port, vc) independently requests one random output with
    // probability 1/4 — the same shape the router's SA stage produces.
    for (PortId p = 0; p < g.num_inports; ++p) {
      for (VcId v = 0; v < g.num_vcs; ++v) {
        if ((rng() & 3) != 0) continue;
        requests.push_back(
            SaRequest{p, v, static_cast<PortId>(rng() % g.num_outports)});
      }
    }
    fast->Allocate(requests, &got);
    ref->Allocate(requests, &expect);
    ASSERT_EQ(got.size(), expect.size())
        << CaseName({GetParam(), 0}) << " cycle=" << cycle;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].in_port, expect[i].in_port) << "cycle=" << cycle;
      ASSERT_EQ(got[i].vin, expect[i].vin) << "cycle=" << cycle;
      ASSERT_EQ(got[i].vc, expect[i].vc) << "cycle=" << cycle;
      ASSERT_EQ(got[i].out_port, expect[i].out_port) << "cycle=" << cycle;
    }
    ASSERT_TRUE(GrantsAreLegal(g, requests, got)) << "cycle=" << cycle;
  }
}

std::vector<EquivCase> AllCases() {
  std::vector<EquivCase> cases;
  // Radixes spanning one-word and multi-word request rows; 70 > 64 guards
  // the multi-word paths (iSLIP grant rows, separable phase-2 rows, and
  // SPAROFLO output rows cross the word boundary much earlier, at
  // radix * vcs > 64).
  const int radixes[] = {2, 3, 5, 8, 16, 33, 64, 70};
  const AllocScheme schemes[] = {
      AllocScheme::kInputFirst, AllocScheme::kVix, AllocScheme::kVixIdeal,
      AllocScheme::kWavefront,  AllocScheme::kAugmentingPath,
      AllocScheme::kIslip,      AllocScheme::kSparoflo,
      AllocScheme::kSerenade,
  };
  for (int radix : radixes) {
    for (AllocScheme scheme : schemes) {
      // Keep the >64 guard to three schemes so sanitizer runs stay fast.
      // SERENADE stays in: its k-th-set-bit proposal scan walks whole
      // multi-word rows and needs the >64 coverage.
      if (radix > 64 && scheme != AllocScheme::kInputFirst &&
          scheme != AllocScheme::kIslip &&
          scheme != AllocScheme::kSerenade) {
        continue;
      }
      cases.push_back(EquivCase{scheme, radix, 4, ArbiterKind::kRoundRobin});
    }
    // Matrix arbiters take a different Pick/Commit path; cover them on the
    // schemes that use pluggable arbiters.
    cases.push_back(
        EquivCase{AllocScheme::kInputFirst, radix, 4, ArbiterKind::kMatrix});
    cases.push_back(
        EquivCase{AllocScheme::kSparoflo, radix, 4, ArbiterKind::kMatrix});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllocEquivTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace vixnoc
