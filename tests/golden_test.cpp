// Golden regression test: pins the exact cycle-level behaviour of the
// network on a small deterministic scenario. Any change to pipeline
// timing, arbitration order, VC assignment, or credit accounting shows up
// here immediately. Update the golden sequences ONLY for intentional
// microarchitectural changes, and say so in the commit message.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "network/network.hpp"
#include "topology/topology.hpp"

namespace vixnoc {
namespace {

using Ejection = std::pair<PacketId, Cycle>;

std::vector<Ejection> RunScenario(AllocScheme scheme) {
  std::shared_ptr<Topology> topo = MakeMesh(4, 4);
  NetworkParams p;
  p.router.radix = 5;
  p.router.num_vcs = 4;
  p.router.buffer_depth = 3;
  p.router.scheme = scheme;
  p.router.vc_policy = RouterConfig::DefaultPolicyFor(scheme);
  Network net(topo, p);

  std::vector<Ejection> ejections;
  net.SetEjectCallback([&](const PacketRecord& r) {
    ejections.emplace_back(r.id, r.ejected);
  });
  for (Cycle t = 0; t < 40; ++t) {
    if (t % 3 == 0) {
      net.EnqueuePacket((t * 7) % 16, (t * 5 + 3) % 16, 2 + (t % 3));
    }
    net.Step();
  }
  Cycle guard = 0;
  while (!net.Quiescent()) {
    net.Step();
    EXPECT_LT(++guard, 10'000u);
  }
  return ejections;
}

// At this light load both schemes behave identically — the golden data
// doubles as a check that VIX is a pure superset of the baseline when no
// port ever has two competing sub-group requests.
const std::vector<Ejection> kGolden = {
    {2, 14}, {1, 14}, {3, 20}, {7, 26}, {6, 26}, {4, 32}, {5, 32},
    {10, 38}, {9, 38}, {11, 44}, {8, 44}, {14, 50}, {12, 50}, {13, 56},
};

TEST(Golden, InputFirstScenario) {
  EXPECT_EQ(RunScenario(AllocScheme::kInputFirst), kGolden);
}

TEST(Golden, VixScenarioMatchesBaselineAtLightLoad) {
  EXPECT_EQ(RunScenario(AllocScheme::kVix), kGolden);
}

TEST(Golden, EveryPacketEjected) {
  const auto ejections = RunScenario(AllocScheme::kInputFirst);
  EXPECT_EQ(ejections.size(), 14u);  // 40 cycles / 3 = 14 packets
}

}  // namespace
}  // namespace vixnoc
