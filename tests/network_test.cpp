#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "network/network.hpp"
#include "topology/topology.hpp"

namespace vixnoc {
namespace {

NetworkParams DefaultParams(const Topology& topo,
                            AllocScheme scheme = AllocScheme::kInputFirst,
                            int vcs = 6, int depth = 5) {
  NetworkParams p;
  p.router.radix = topo.Radix();
  p.router.num_vcs = vcs;
  p.router.buffer_depth = depth;
  p.router.scheme = scheme;
  p.router.vc_policy = RouterConfig::DefaultPolicyFor(scheme);
  return p;
}

std::unique_ptr<Network> MakeNet(TopologyKind kind,
                                 AllocScheme scheme = AllocScheme::kInputFirst,
                                 int vcs = 6, int depth = 5) {
  std::shared_ptr<Topology> topo = MakeTopology64(kind);
  return std::make_unique<Network>(topo, DefaultParams(*topo, scheme, vcs,
                                                       depth));
}

void RunCycles(Network& net, Cycle n) {
  for (Cycle t = 0; t < n; ++t) net.Step();
}

TEST(Network, StartsQuiescent) {
  auto net = MakeNet(TopologyKind::kMesh);
  EXPECT_TRUE(net->Quiescent());
  RunCycles(*net, 10);
  EXPECT_TRUE(net->Quiescent());
  EXPECT_EQ(net->now(), 10u);
}

TEST(Network, DeliversSinglePacket) {
  auto net = MakeNet(TopologyKind::kMesh);
  std::vector<PacketRecord> delivered;
  net->SetEjectCallback([&](const PacketRecord& r) { delivered.push_back(r); });
  const PacketId id = net->EnqueuePacket(0, 63, 4);
  RunCycles(*net, 200);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].id, id);
  EXPECT_EQ(delivered[0].src, 0);
  EXPECT_EQ(delivered[0].dst, 63);
  EXPECT_EQ(delivered[0].size_flits, 4);
  EXPECT_TRUE(net->Quiescent());
}

TEST(Network, ZeroLoadLatencyMatchesPipelineModel) {
  auto net = MakeNet(TopologyKind::kMesh);
  std::vector<PacketRecord> delivered;
  net->SetEjectCallback([&](const PacketRecord& r) { delivered.push_back(r); });
  // 0 -> 1: one router hop, so the head visits 2 routers.
  // head: 1 (NI link) + 2 routers x (SA..arrival = 3 cycles) = 7 cycles;
  // tail of a 4-flit packet adds 3 serialization cycles.
  net->EnqueuePacket(0, 1, 4);
  RunCycles(*net, 50);
  ASSERT_EQ(delivered.size(), 1u);
  const Cycle latency = delivered[0].ejected - delivered[0].created;
  EXPECT_EQ(latency, 10u);
}

TEST(Network, LatencyScalesWithHops) {
  auto net = MakeNet(TopologyKind::kMesh);
  std::vector<PacketRecord> delivered;
  net->SetEjectCallback([&](const PacketRecord& r) { delivered.push_back(r); });
  net->EnqueuePacket(0, 63, 1);  // 14 router hops, 15 routers
  RunCycles(*net, 200);
  ASSERT_EQ(delivered.size(), 1u);
  // 1 + 15*3 = 46 cycles for a single-flit packet.
  EXPECT_EQ(delivered[0].ejected - delivered[0].created, 46u);
}

TEST(Network, SelfTrafficLoopsThroughLocalRouter) {
  auto net = MakeNet(TopologyKind::kMesh);
  std::vector<PacketRecord> delivered;
  net->SetEjectCallback([&](const PacketRecord& r) { delivered.push_back(r); });
  net->EnqueuePacket(5, 5, 2);
  RunCycles(*net, 50);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].dst, 5);
}

TEST(Network, CountersTrackInjectionsAndEjections) {
  auto net = MakeNet(TopologyKind::kMesh);
  net->EnqueuePacket(3, 42, 4);
  RunCycles(*net, 200);
  EXPECT_EQ(net->counters(3).packets_injected, 1u);
  EXPECT_EQ(net->counters(3).flits_injected, 4u);
  EXPECT_EQ(net->counters(3).packets_delivered, 1u);
  EXPECT_EQ(net->counters(42).packets_ejected, 1u);
  EXPECT_EQ(net->counters(42).flits_ejected, 4u);
  net->ClearCounters();
  EXPECT_EQ(net->counters(3).packets_injected, 0u);
}

struct ConservationCase {
  TopologyKind topology;
  AllocScheme scheme;
};

class ConservationTest : public ::testing::TestWithParam<ConservationCase> {};

TEST_P(ConservationTest, NoFlitEverLostUnderRandomLoad) {
  const auto [kind, scheme] = GetParam();
  auto net = MakeNet(kind, scheme);
  Rng rng(2024);
  std::uint64_t enqueued_packets = 0;
  std::uint64_t delivered_packets = 0;
  std::map<PacketId, int> outstanding;
  net->SetEjectCallback([&](const PacketRecord& r) {
    ++delivered_packets;
    ASSERT_EQ(outstanding.count(r.id), 1u) << "duplicate or unknown packet";
    outstanding.erase(r.id);
  });
  for (Cycle t = 0; t < 3000; ++t) {
    for (NodeId n = 0; n < 64; ++n) {
      if (rng.NextBool(0.02)) {
        const auto dst = static_cast<NodeId>(rng.NextBounded(64));
        const int size = 1 + static_cast<int>(rng.NextBounded(5));
        const PacketId id = net->EnqueuePacket(n, dst, size);
        outstanding[id] = size;
        ++enqueued_packets;
      }
    }
    net->Step();
  }
  // Drain: no deadlock, everything arrives.
  Cycle guard = 0;
  while (!net->Quiescent()) {
    net->Step();
    ASSERT_LT(++guard, 20'000u) << "network failed to drain (deadlock?)";
  }
  EXPECT_EQ(delivered_packets, enqueued_packets);
  EXPECT_TRUE(outstanding.empty());
}

TEST_P(ConservationTest, CreditsFullyRestoredAfterDrain) {
  const auto [kind, scheme] = GetParam();
  auto net = MakeNet(kind, scheme);
  Rng rng(7);
  for (Cycle t = 0; t < 1000; ++t) {
    for (NodeId n = 0; n < 64; ++n) {
      if (rng.NextBool(0.05)) {
        net->EnqueuePacket(n, static_cast<NodeId>(rng.NextBounded(64)), 4);
      }
    }
    net->Step();
  }
  Cycle guard = 0;
  while (!net->Quiescent()) {
    net->Step();
    ASSERT_LT(++guard, 20'000u);
  }
  // Extra settling for in-flight credits.
  RunCycles(*net, 10);
  const auto& topo = net->topology();
  for (RouterId r = 0; r < net->NumRouters(); ++r) {
    const auto links = topo.LinksFor(r);
    for (PortId o = 0; o < topo.Radix(); ++o) {
      if (links[o].neighbor < 0) continue;  // ejection/unconnected
      for (VcId vc = 0; vc < net->params().router.num_vcs; ++vc) {
        EXPECT_EQ(net->router(r).CreditsFor(o, vc),
                  net->params().router.buffer_depth)
            << "router " << r << " port " << o << " vc " << vc;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConservationTest,
    ::testing::Values(
        ConservationCase{TopologyKind::kMesh, AllocScheme::kInputFirst},
        ConservationCase{TopologyKind::kMesh, AllocScheme::kVix},
        ConservationCase{TopologyKind::kMesh, AllocScheme::kVixIdeal},
        ConservationCase{TopologyKind::kMesh, AllocScheme::kWavefront},
        ConservationCase{TopologyKind::kMesh, AllocScheme::kAugmentingPath},
        ConservationCase{TopologyKind::kMesh, AllocScheme::kPacketChaining},
        ConservationCase{TopologyKind::kMesh, AllocScheme::kIslip},
        ConservationCase{TopologyKind::kCMesh, AllocScheme::kInputFirst},
        ConservationCase{TopologyKind::kCMesh, AllocScheme::kVix},
        ConservationCase{TopologyKind::kFBfly, AllocScheme::kInputFirst},
        ConservationCase{TopologyKind::kFBfly, AllocScheme::kVix}),
    [](const ::testing::TestParamInfo<ConservationCase>& info) {
      std::string name = ToString(info.param.topology) + "_" +
                         ToString(info.param.scheme);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(Network, FlitsOfPacketArriveContiguouslyPerVc) {
  // Per-packet flit order is guaranteed; verify via per-packet seq checks.
  auto net = MakeNet(TopologyKind::kMesh);
  std::vector<PacketRecord> delivered;
  net->SetEjectCallback([&](const PacketRecord& r) { delivered.push_back(r); });
  Rng rng(5);
  std::uint64_t sent = 0;
  for (Cycle t = 0; t < 500; ++t) {
    if (t % 3 == 0) {
      net->EnqueuePacket(static_cast<NodeId>(rng.NextBounded(64)),
                         static_cast<NodeId>(rng.NextBounded(64)), 4);
      ++sent;
    }
    net->Step();
  }
  Cycle guard = 0;
  while (!net->Quiescent()) {
    net->Step();
    ASSERT_LT(++guard, 20'000u);
  }
  // Every packet completed exactly once (the callback fires on tails only;
  // a mis-ordered flit stream would break reassembly counts).
  EXPECT_EQ(delivered.size(), sent);
}

TEST(Network, BackpressurePropagatesToSourceQueues) {
  // A tiny network config saturates instantly; the source queue must grow
  // rather than flits being dropped.
  auto net = MakeNet(TopologyKind::kMesh, AllocScheme::kInputFirst,
                     /*vcs=*/2, /*depth=*/2);
  for (Cycle t = 0; t < 300; ++t) {
    net->EnqueuePacket(0, 63, 8);  // one long packet per cycle: way over BW
    net->Step();
  }
  EXPECT_GT(net->SourceQueueLength(0), 100u);
  EXPECT_GT(net->TotalSourceQueueFlits(), 800u);
}

TEST(Network, ActivityAggregatesAcrossRouters) {
  auto net = MakeNet(TopologyKind::kMesh);
  net->EnqueuePacket(0, 7, 4);  // 7 hops along the top row
  RunCycles(*net, 200);
  const RouterActivity a = net->TotalActivity();
  // 4 flits x 8 routers touched.
  EXPECT_EQ(a.buffer_writes, 32u);
  EXPECT_EQ(a.xbar_traversals, 32u);
  EXPECT_EQ(a.link_flits, 28u);  // 7 inter-router hops x 4 flits
  net->ClearActivity();
  EXPECT_EQ(net->TotalActivity().buffer_writes, 0u);
}

TEST(Network, DeterministicGivenSeedlessConfig) {
  // Two identical networks fed identical packets step identically.
  auto a = MakeNet(TopologyKind::kMesh, AllocScheme::kVix);
  auto b = MakeNet(TopologyKind::kMesh, AllocScheme::kVix);
  std::vector<Cycle> eject_a, eject_b;
  a->SetEjectCallback([&](const PacketRecord& r) { eject_a.push_back(r.ejected); });
  b->SetEjectCallback([&](const PacketRecord& r) { eject_b.push_back(r.ejected); });
  Rng rng_a(3), rng_b(3);
  for (Cycle t = 0; t < 800; ++t) {
    for (NodeId n = 0; n < 64; ++n) {
      if (rng_a.NextBool(0.05)) {
        a->EnqueuePacket(n, static_cast<NodeId>(rng_a.NextBounded(64)), 4);
      }
      if (rng_b.NextBool(0.05)) {
        b->EnqueuePacket(n, static_cast<NodeId>(rng_b.NextBounded(64)), 4);
      }
    }
    a->Step();
    b->Step();
  }
  EXPECT_EQ(eject_a, eject_b);
}

}  // namespace
}  // namespace vixnoc
