#include <gtest/gtest.h>

#include "power/energy_model.hpp"

namespace vixnoc::power {
namespace {

RouterConfig MeshRouter(AllocScheme scheme) {
  RouterConfig c;
  c.radix = 5;
  c.num_vcs = 6;
  c.buffer_depth = 5;
  c.scheme = scheme;
  return c;
}

RouterActivity SyntheticActivity(std::uint64_t flits, double avg_hops) {
  RouterActivity a;
  const auto traversals =
      static_cast<std::uint64_t>(flits * (avg_hops + 1.0));
  a.buffer_writes = traversals;
  a.buffer_reads = traversals;
  a.xbar_traversals = traversals;
  a.link_flits = static_cast<std::uint64_t>(flits * avg_hops);
  return a;
}

TEST(XbarScale, SquareCrossbarIsUnity) {
  EXPECT_DOUBLE_EQ(XbarEnergyScale(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(XbarEnergyScale(10, 10), 1.0);
}

TEST(XbarScale, DoubledInputsScaleByOnePointFive) {
  EXPECT_DOUBLE_EQ(XbarEnergyScale(10, 5), 1.5);
  EXPECT_DOUBLE_EQ(XbarEnergyScale(16, 8), 1.5);
  EXPECT_DOUBLE_EQ(XbarEnergyScale(20, 10), 1.5);
}

TEST(Energy, ZeroActivityLeavesOnlyStaticComponents) {
  const EnergyParams params;
  const auto e = NetworkEnergy(params, MeshRouter(AllocScheme::kInputFirst),
                               64, RouterActivity{}, 1000);
  EXPECT_DOUBLE_EQ(e.buffer_pj, 0.0);
  EXPECT_DOUBLE_EQ(e.xbar_pj, 0.0);
  EXPECT_DOUBLE_EQ(e.link_pj, 0.0);
  EXPECT_GT(e.clock_pj, 0.0);
  EXPECT_GT(e.leakage_pj, 0.0);
}

TEST(Energy, DynamicComponentsScaleLinearlyWithActivity) {
  const EnergyParams params;
  const auto cfg = MeshRouter(AllocScheme::kInputFirst);
  const auto e1 = NetworkEnergy(params, cfg, 64,
                                SyntheticActivity(1000, 5.0), 1000);
  const auto e2 = NetworkEnergy(params, cfg, 64,
                                SyntheticActivity(2000, 5.0), 1000);
  EXPECT_NEAR(e2.buffer_pj, 2 * e1.buffer_pj, 1e-6);
  EXPECT_NEAR(e2.xbar_pj, 2 * e1.xbar_pj, 1e-6);
  EXPECT_NEAR(e2.link_pj, 2 * e1.link_pj, 1e-6);
  EXPECT_DOUBLE_EQ(e2.clock_pj, e1.clock_pj);
}

TEST(Energy, StaticComponentsScaleWithCycles) {
  const EnergyParams params;
  const auto cfg = MeshRouter(AllocScheme::kInputFirst);
  const auto e1 = NetworkEnergy(params, cfg, 64, RouterActivity{}, 1000);
  const auto e2 = NetworkEnergy(params, cfg, 64, RouterActivity{}, 3000);
  EXPECT_NEAR(e2.clock_pj, 3 * e1.clock_pj, 1e-6);
  EXPECT_NEAR(e2.leakage_pj, 3 * e1.leakage_pj, 1e-6);
}

TEST(Energy, VixRaisesCrossbarAndLeakageOnly) {
  const EnergyParams params;
  const auto act = SyntheticActivity(100'000, 5.25);
  const auto base = NetworkEnergy(params, MeshRouter(AllocScheme::kInputFirst),
                                  64, act, 10'000);
  const auto vix = NetworkEnergy(params, MeshRouter(AllocScheme::kVix), 64,
                                 act, 10'000);
  EXPECT_DOUBLE_EQ(vix.buffer_pj, base.buffer_pj);
  EXPECT_DOUBLE_EQ(vix.link_pj, base.link_pj);
  EXPECT_DOUBLE_EQ(vix.clock_pj, base.clock_pj);
  EXPECT_GT(vix.xbar_pj, base.xbar_pj);
  EXPECT_GT(vix.leakage_pj, base.leakage_pj);
}

TEST(Energy, VixTotalWithinPaperEnvelope) {
  // §4.5: VIX raises total network energy per bit by ~4% on the mesh at
  // 0.1 packets/cycle/node. Reconstruct that operating point analytically:
  // 64 nodes x 0.1 pkt x 4 flits = 25.6 flits/cycle delivered, avg 5.25
  // inter-router hops.
  const EnergyParams params;
  const Cycle cycles = 10'000;
  const auto flits = static_cast<std::uint64_t>(25.6 * cycles);
  const auto act = SyntheticActivity(flits, 5.25);
  const auto base = NetworkEnergy(params, MeshRouter(AllocScheme::kInputFirst),
                                  64, act, cycles);
  const auto vix = NetworkEnergy(params, MeshRouter(AllocScheme::kVix), 64,
                                 act, cycles);
  const double overhead = vix.TotalPj() / base.TotalPj() - 1.0;
  EXPECT_GT(overhead, 0.01);
  EXPECT_LT(overhead, 0.08);
}

TEST(Energy, PerBitDividesByPayload) {
  EnergyBreakdown e;
  e.buffer_pj = 50.0;
  e.link_pj = 78.0;
  EXPECT_DOUBLE_EQ(EnergyPerBitPj(e, 128), 1.0);
}

TEST(Energy, BreakdownComponentsAllPositiveAtRealisticLoad) {
  const EnergyParams params;
  const auto e = NetworkEnergy(params, MeshRouter(AllocScheme::kInputFirst),
                               64, SyntheticActivity(256'000, 5.25), 10'000);
  EXPECT_GT(e.buffer_pj, 0.0);
  EXPECT_GT(e.xbar_pj, 0.0);
  EXPECT_GT(e.link_pj, 0.0);
  EXPECT_GT(e.clock_pj, 0.0);
  EXPECT_GT(e.leakage_pj, 0.0);
  // No single component dominates beyond 60% (Fig 11 shows a balanced
  // stack).
  const double total = e.TotalPj();
  for (double part : {e.buffer_pj, e.xbar_pj, e.link_pj, e.clock_pj,
                      e.leakage_pj}) {
    EXPECT_LT(part / total, 0.6);
  }
}

}  // namespace
}  // namespace vixnoc::power
