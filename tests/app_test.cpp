#include <gtest/gtest.h>

#include <set>

#include "app/app_sim.hpp"
#include "app/benchmarks.hpp"

namespace vixnoc::app {
namespace {

TEST(Catalogue, HasThirtyFiveUniqueBenchmarks) {
  const auto& cat = BenchmarkCatalogue();
  EXPECT_EQ(cat.size(), 35u);
  std::set<std::string> names;
  for (const auto& b : cat) {
    EXPECT_TRUE(names.insert(b.name).second) << "duplicate " << b.name;
    EXPECT_GT(b.network_mpki, 0.0);
    EXPECT_GT(b.l2_miss_rate, 0.0);
    EXPECT_LT(b.l2_miss_rate, 1.0);
  }
}

TEST(Catalogue, FindBenchmarkReturnsRequested) {
  EXPECT_EQ(FindBenchmark("mcf").name, "mcf");
  EXPECT_GT(FindBenchmark("mcf").network_mpki,
            FindBenchmark("gcc").network_mpki);
}

TEST(Mixes, EightMixesOfSixtyFourCores) {
  const auto& mixes = PaperMixes();
  ASSERT_EQ(mixes.size(), 8u);
  for (const auto& mix : mixes) {
    int total = 0;
    EXPECT_EQ(mix.apps.size(), 6u) << mix.name;
    for (const auto& [name, count] : mix.apps) {
      FindBenchmark(name);  // must exist (checked internally)
      total += count;
    }
    EXPECT_EQ(total, 64) << mix.name;
  }
}

TEST(Mixes, AverageMpkiMatchesTable4) {
  for (const auto& mix : PaperMixes()) {
    EXPECT_NEAR(MixAverageMpki(mix), mix.paper_avg_mpki, 0.15) << mix.name;
  }
}

TEST(Mixes, MpkiIncreasesMonotonicallyMix1ToMix8) {
  const auto& mixes = PaperMixes();
  for (std::size_t i = 1; i < mixes.size(); ++i) {
    EXPECT_GT(MixAverageMpki(mixes[i]), MixAverageMpki(mixes[i - 1]));
  }
}

TEST(Mixes, PaperSpeedupsNonDecreasing) {
  const auto& mixes = PaperMixes();
  for (std::size_t i = 1; i < mixes.size(); ++i) {
    EXPECT_GE(mixes[i].paper_vix_speedup, mixes[i - 1].paper_vix_speedup);
  }
}

TEST(Mixes, ExpandAssignsEveryCore) {
  const auto cores = ExpandMix(PaperMixes()[0]);
  EXPECT_EQ(cores.size(), 64u);
  int milc = 0;
  for (const auto& c : cores) {
    if (c.name == "milc") ++milc;
  }
  EXPECT_EQ(milc, 11);
}

AppSimConfig QuickApp(AllocScheme scheme) {
  AppSimConfig c;
  c.scheme = scheme;
  c.warmup = 3000;
  c.measure = 8000;
  return c;
}

TEST(AppSim, IpcWithinPhysicalBounds) {
  const auto cores = ExpandMix(PaperMixes()[0]);
  const auto r = RunAppSim(QuickApp(AllocScheme::kInputFirst), cores);
  ASSERT_EQ(r.core_ipc.size(), 64u);
  for (double ipc : r.core_ipc) {
    EXPECT_GE(ipc, 0.0);
    EXPECT_LE(ipc, 1.0);
  }
  EXPECT_GT(r.aggregate_ipc, 1.0);
  EXPECT_LE(r.aggregate_ipc, 64.0);
}

TEST(AppSim, MeasuredMpkiTracksProfile) {
  const auto& mix = PaperMixes()[0];  // avg 15.0
  const auto r = RunAppSim(QuickApp(AllocScheme::kInputFirst),
                           ExpandMix(mix));
  EXPECT_NEAR(r.avg_mpki, mix.paper_avg_mpki, mix.paper_avg_mpki * 0.25);
}

TEST(AppSim, HigherMpkiMixRunsSlower) {
  const auto light = RunAppSim(QuickApp(AllocScheme::kInputFirst),
                               ExpandMix(PaperMixes()[0]));  // 15.0
  const auto heavy = RunAppSim(QuickApp(AllocScheme::kInputFirst),
                               ExpandMix(PaperMixes()[7]));  // 66.9
  EXPECT_LT(heavy.aggregate_ipc, light.aggregate_ipc);
}

TEST(AppSim, MissLatencyAboveZeroLoadFloor) {
  const auto r = RunAppSim(QuickApp(AllocScheme::kInputFirst),
                           ExpandMix(PaperMixes()[3]));
  // Floor: request (>=1 net hop) + 6-cycle L2 + reply: > 20 cycles.
  EXPECT_GT(r.avg_miss_latency, 20.0);
  EXPECT_GT(r.total_requests, 1000u);
}

TEST(AppSim, DeterministicForSeed) {
  const auto cores = ExpandMix(PaperMixes()[4]);
  const auto a = RunAppSim(QuickApp(AllocScheme::kVix), cores);
  const auto b = RunAppSim(QuickApp(AllocScheme::kVix), cores);
  EXPECT_EQ(a.aggregate_ipc, b.aggregate_ipc);
  EXPECT_EQ(a.total_requests, b.total_requests);
}

TEST(AppSim, UniformLowMpkiWorkloadNearlyFullIpc) {
  std::vector<BenchmarkProfile> cores(64,
                                      BenchmarkProfile{"calm", 0.5, 0.2});
  const auto r = RunAppSim(QuickApp(AllocScheme::kInputFirst), cores);
  EXPECT_GT(r.aggregate_ipc, 60.0);  // barely any stalls
}

TEST(AppSim, WeightedSpeedupIdentityAndScaling) {
  AppSimResult a, b;
  a.core_ipc = {0.5, 1.0, 0.25};
  b.core_ipc = {0.5, 1.0, 0.25};
  EXPECT_DOUBLE_EQ(WeightedSpeedup(a, a), 1.0);
  b.core_ipc = {1.0, 2.0, 0.5};  // every core 2x faster
  EXPECT_DOUBLE_EQ(WeightedSpeedup(a, b), 2.0);
}

TEST(AppSim, WeightedSpeedupIgnoresIdleCores) {
  AppSimResult a, b;
  a.core_ipc = {0.0, 0.5};
  b.core_ipc = {0.7, 1.0};
  EXPECT_DOUBLE_EQ(WeightedSpeedup(a, b), 2.0);  // only core 1 counted
}

TEST(AppSim, VixDoesNotHurtApplications) {
  const auto cores = ExpandMix(PaperMixes()[7]);  // heaviest mix
  const auto base = RunAppSim(QuickApp(AllocScheme::kInputFirst), cores);
  const auto vix = RunAppSim(QuickApp(AllocScheme::kVix), cores);
  EXPECT_GE(vix.aggregate_ipc, base.aggregate_ipc * 0.99);
}

}  // namespace
}  // namespace vixnoc::app
