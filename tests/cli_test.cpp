#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/types.hpp"
#include "traffic/patterns.hpp"

namespace vixnoc {
namespace {

ArgMap ParseArgs(std::vector<std::string> args) {
  std::vector<char*> argv{const_cast<char*>("prog")};
  for (auto& a : args) argv.push_back(a.data());
  return ArgMap::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesTypedValues) {
  auto args = ParseArgs({"rate=0.25", "vcs=4", "name=mesh", "flag=true"});
  EXPECT_DOUBLE_EQ(args.GetDouble("rate", 0.0), 0.25);
  EXPECT_EQ(args.GetInt("vcs", 0), 4);
  EXPECT_EQ(args.GetString("name", ""), "mesh");
  EXPECT_TRUE(args.GetBool("flag", false));
  args.CheckAllConsumed();
}

TEST(Cli, FallbacksWhenMissing) {
  auto args = ParseArgs({});
  EXPECT_DOUBLE_EQ(args.GetDouble("rate", 0.07), 0.07);
  EXPECT_EQ(args.GetInt("vcs", 6), 6);
  EXPECT_EQ(args.GetString("name", "dflt"), "dflt");
  EXPECT_FALSE(args.GetBool("flag", false));
}

TEST(Cli, HasMarksConsumption) {
  auto args = ParseArgs({"x=1"});
  EXPECT_TRUE(args.Has("x"));
  EXPECT_FALSE(args.Has("y"));
  args.CheckAllConsumed();  // must not abort: x was queried
}

TEST(Cli, BoolSpellings) {
  auto args = ParseArgs({"a=1", "b=yes", "c=on", "d=0", "e=no", "f=off"});
  EXPECT_TRUE(args.GetBool("a", false));
  EXPECT_TRUE(args.GetBool("b", false));
  EXPECT_TRUE(args.GetBool("c", false));
  EXPECT_FALSE(args.GetBool("d", true));
  EXPECT_FALSE(args.GetBool("e", true));
  EXPECT_FALSE(args.GetBool("f", true));
}

TEST(Csv, WritesHeaderAndEscapedRows) {
  const std::string path = ::testing::TempDir() + "/csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.AddRow({"plain", "with,comma"});
    csv.AddRow({"with\"quote", "line\nbreak"});
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(),
            "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",\"line\nbreak\"\n");
  std::remove(path.c_str());
}

TEST(ParseEnums, AllocSchemes) {
  AllocScheme s;
  EXPECT_TRUE(ParseAllocScheme("vix", &s));
  EXPECT_EQ(s, AllocScheme::kVix);
  EXPECT_TRUE(ParseAllocScheme("IF", &s));
  EXPECT_EQ(s, AllocScheme::kInputFirst);
  EXPECT_TRUE(ParseAllocScheme("wavefront", &s));
  EXPECT_EQ(s, AllocScheme::kWavefront);
  EXPECT_TRUE(ParseAllocScheme("ap", &s));
  EXPECT_EQ(s, AllocScheme::kAugmentingPath);
  EXPECT_TRUE(ParseAllocScheme("ideal", &s));
  EXPECT_EQ(s, AllocScheme::kVixIdeal);
  EXPECT_TRUE(ParseAllocScheme("pc", &s));
  EXPECT_EQ(s, AllocScheme::kPacketChaining);
  EXPECT_TRUE(ParseAllocScheme("islip", &s));
  EXPECT_EQ(s, AllocScheme::kIslip);
  EXPECT_TRUE(ParseAllocScheme("sparoflo", &s));
  EXPECT_EQ(s, AllocScheme::kSparoflo);
  EXPECT_TRUE(ParseAllocScheme("serenade", &s));
  EXPECT_EQ(s, AllocScheme::kSerenade);
  EXPECT_FALSE(ParseAllocScheme("bogus", &s));
}

TEST(ParseEnums, Topologies) {
  TopologyKind t;
  EXPECT_TRUE(ParseTopologyKind("mesh", &t));
  EXPECT_EQ(t, TopologyKind::kMesh);
  EXPECT_TRUE(ParseTopologyKind("CMesh", &t));
  EXPECT_EQ(t, TopologyKind::kCMesh);
  EXPECT_TRUE(ParseTopologyKind("fbfly", &t));
  EXPECT_EQ(t, TopologyKind::kFBfly);
  EXPECT_TRUE(ParseTopologyKind("torus", &t));
  EXPECT_EQ(t, TopologyKind::kTorus);
  EXPECT_FALSE(ParseTopologyKind("hypercube", &t));
}

TEST(ParseEnums, Patterns) {
  PatternKind p;
  EXPECT_TRUE(ParsePatternKind("uniform", &p));
  EXPECT_EQ(p, PatternKind::kUniform);
  EXPECT_TRUE(ParsePatternKind("Transpose", &p));
  EXPECT_EQ(p, PatternKind::kTranspose);
  EXPECT_TRUE(ParsePatternKind("bitcomp", &p));
  EXPECT_EQ(p, PatternKind::kBitComplement);
  EXPECT_TRUE(ParsePatternKind("bitrev", &p));
  EXPECT_EQ(p, PatternKind::kBitReverse);
  EXPECT_TRUE(ParsePatternKind("tornado", &p));
  EXPECT_EQ(p, PatternKind::kTornado);
  EXPECT_TRUE(ParsePatternKind("hotspot", &p));
  EXPECT_EQ(p, PatternKind::kHotspot);
  EXPECT_TRUE(ParsePatternKind("Incast", &p));
  EXPECT_EQ(p, PatternKind::kIncast);
  EXPECT_FALSE(ParsePatternKind("nearest", &p));
}

}  // namespace
}  // namespace vixnoc
