// SERENADE allocator arm: the determinism contract (bitwise-identical
// results across thread counts, process isolation, and mid-run
// checkpoint/restore — the allocator's RNG stream is a pure function of
// (seed, request history)), allocator-level snapshot round trips, config
// validation for the new pattern knobs, and exec-frame round trips of the
// serenade/incast config fields.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "alloc/serenade.hpp"
#include "alloc/switch_allocator.hpp"
#include "common/error.hpp"
#include "exec/coordinator.hpp"
#include "exec/exec_protocol.hpp"
#include "sim/sweep.hpp"
#include "snapshot/snapshot.hpp"

namespace vixnoc {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

NetworkSimConfig SerenadePoint(TopologyKind kind, PatternKind pattern,
                               double rate) {
  NetworkSimConfig c;
  c.topology = kind;
  c.scheme = AllocScheme::kSerenade;
  c.pattern = pattern;
  c.injection_rate = rate;
  c.num_vcs = 4;
  c.buffer_depth = 5;
  c.packet_size = 4;
  c.warmup = 300;
  c.measure = 1'200;
  c.drain = 1'000;
  c.watchdog_cycles = 800;
  c.seed = 7;
  return c;
}

std::vector<NetworkSimConfig> SerenadePoints() {
  std::vector<NetworkSimConfig> points;
  points.push_back(SerenadePoint(TopologyKind::kMesh, PatternKind::kUniform,
                                 0.06));
  points.push_back(SerenadePoint(TopologyKind::kMesh, PatternKind::kHotspot,
                                 0.05));
  NetworkSimConfig incast =
      SerenadePoint(TopologyKind::kMesh, PatternKind::kIncast, 0.04);
  incast.hotspot_node = 12;
  incast.incast_fanin = 6;
  points.push_back(incast);
  points.push_back(SerenadePoint(TopologyKind::kTorus, PatternKind::kUniform,
                                 0.06));
  return points;
}

void ExpectBitwiseEqual(const NetworkSimResult& a, const NetworkSimResult& b) {
  EXPECT_EQ(a.accepted_ppc, b.accepted_ppc);
  EXPECT_EQ(a.accepted_fpc, b.accepted_fpc);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.avg_net_latency, b.avg_net_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_EQ(a.activity.xbar_traversals, b.activity.xbar_traversals);
  EXPECT_EQ(a.activity.buffer_writes, b.activity.buffer_writes);
  EXPECT_EQ(a.outcome.status, b.outcome.status);
}

// ---------------------------------------------------------------------------
// Determinism contracts at the network level.

TEST(SerenadeDeterminism, IdenticalAtAnyThreadCount) {
  const std::vector<NetworkSimConfig> points = SerenadePoints();
  std::vector<NetworkSimResult> serial;
  for (const NetworkSimConfig& c : points) {
    serial.push_back(RunNetworkSim(c));
    ASSERT_EQ(serial.back().outcome.status, SimStatus::kOk)
        << serial.back().outcome.message;
    ASSERT_GT(serial.back().packets_measured, 0u);
  }
  for (int threads : {2, 8}) {
    SweepRunner runner(threads);
    const std::vector<NetworkSimResult> parallel = runner.Run(points);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " point=" << i);
      ExpectBitwiseEqual(serial[i], parallel[i]);
    }
  }
}

TEST(SerenadeDeterminism, ProcessIsolationMatchesInProcess) {
  const std::vector<NetworkSimConfig> points = SerenadePoints();
  std::vector<NetworkSimResult> serial;
  for (const NetworkSimConfig& c : points) serial.push_back(RunNetworkSim(c));

  ExecPolicy policy;
  policy.num_workers = 2;
  policy.worker_path = VIXNOC_SWEEP_WORKER_PATH;
  SweepCoordinator coordinator(policy);
  SweepExecResult exec = coordinator.Run(points);
  ASSERT_EQ(exec.results.size(), serial.size());
  EXPECT_EQ(exec.crashes, 0u);
  EXPECT_EQ(exec.bad_frames, 0u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "point=" << i);
    ExpectBitwiseEqual(serial[i], exec.results[i]);
  }
}

TEST(SerenadeDeterminism, CheckpointRestoreMidRunIsEquivalent) {
  const std::string path = TempPath("serenade_midrun.ckpt");
  NetworkSimConfig base =
      SerenadePoint(TopologyKind::kMesh, PatternKind::kHotspot, 0.05);
  const NetworkSimResult uninterrupted = RunNetworkSim(base);
  ASSERT_EQ(uninterrupted.outcome.status, SimStatus::kOk);

  // Checkpointing must not perturb a single flit — SaveState draws
  // nothing from the allocator RNG.
  NetworkSimConfig writing = base;
  writing.checkpoint_path = path;
  writing.checkpoint_every = 400;
  const NetworkSimResult checkpointed = RunNetworkSim(writing);
  ExpectBitwiseEqual(uninterrupted, checkpointed);
  ASSERT_TRUE(std::filesystem::exists(path));

  // Resuming from the last mid-run checkpoint restores the RNG stream
  // mid-sequence; the finished run must be bitwise identical.
  NetworkSimConfig resumed = base;
  resumed.restore_path = path;
  const NetworkSimResult restored = RunNetworkSim(resumed);
  ExpectBitwiseEqual(uninterrupted, restored);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Allocator-level state round trips.

SwitchGeometry SerenadeGeom(int radix, int vcs) {
  SwitchGeometry g;
  g.num_inports = radix;
  g.num_outports = radix;
  g.num_vcs = vcs;
  g.num_vins = 1;
  return g;
}

std::vector<SaRequest> RandomRequests(const SwitchGeometry& g, Rng& rng) {
  std::vector<SaRequest> reqs;
  for (PortId p = 0; p < g.num_inports; ++p) {
    for (VcId v = 0; v < g.num_vcs; ++v) {
      if (rng.NextBool(0.3)) {
        reqs.push_back(SaRequest{
            p, v, static_cast<PortId>(rng.NextBounded(g.num_outports))});
      }
    }
  }
  return reqs;
}

TEST(SerenadeAllocatorState, SnapshotRoundTripResumesIdentically) {
  const SwitchGeometry g = SerenadeGeom(8, 4);
  SerenadeAllocator live(g, /*seed=*/77);
  Rng traffic(3);
  std::vector<SaGrant> grants;
  std::vector<std::vector<SaRequest>> history;
  for (int t = 0; t < 120; ++t) {
    history.push_back(RandomRequests(g, traffic));
    live.Allocate(history.back(), &grants);
  }

  SnapshotWriter w;
  w.BeginSection("alloc");
  live.SaveState(w);
  w.EndSection();
  const std::string bytes = w.Finish(0);

  // A differently-seeded instance, once restored, must produce the exact
  // grant sequence of the uninterrupted one: matching, VC pointers, and
  // RNG cursor all ride in the snapshot.
  SerenadeAllocator restored(g, /*seed=*/999);
  SnapshotReader r(bytes);
  r.OpenSection("alloc");
  restored.LoadState(r);
  r.CloseSection();

  std::vector<SaGrant> a, b;
  for (int t = 0; t < 120; ++t) {
    const std::vector<SaRequest> reqs = RandomRequests(g, traffic);
    live.Allocate(reqs, &a);
    restored.Allocate(reqs, &b);
    ASSERT_EQ(a.size(), b.size()) << "cycle " << t;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].in_port, b[i].in_port);
      EXPECT_EQ(a[i].vc, b[i].vc);
      EXPECT_EQ(a[i].out_port, b[i].out_port);
    }
  }
}

TEST(SerenadeAllocatorState, LoadRejectsForeignGeometry) {
  SerenadeAllocator small(SerenadeGeom(4, 2), 1);
  SnapshotWriter w;
  w.BeginSection("alloc");
  small.SaveState(w);
  w.EndSection();
  const std::string bytes = w.Finish(0);

  SerenadeAllocator big(SerenadeGeom(8, 2), 1);
  SnapshotReader r(bytes);
  r.OpenSection("alloc");
  EXPECT_THROW(big.LoadState(r), SimError);
}

TEST(SerenadeAllocatorState, ResetRestoresTheInitialStream) {
  const SwitchGeometry g = SerenadeGeom(6, 3);
  SerenadeAllocator a(g, 42);
  SerenadeAllocator b(g, 42);
  Rng traffic(5);
  std::vector<SaGrant> ga, gb;
  std::vector<std::vector<SaRequest>> reqs;
  for (int t = 0; t < 50; ++t) reqs.push_back(RandomRequests(g, traffic));

  std::vector<std::size_t> first_counts;
  for (const auto& r : reqs) {
    a.Allocate(r, &ga);
    first_counts.push_back(ga.size());
  }
  a.Reset();
  for (std::size_t t = 0; t < reqs.size(); ++t) {
    a.Allocate(reqs[t], &ga);
    b.Allocate(reqs[t], &gb);
    ASSERT_EQ(ga.size(), first_counts[t]) << "cycle " << t;
    ASSERT_EQ(ga.size(), gb.size()) << "cycle " << t;
    for (std::size_t i = 0; i < ga.size(); ++i) {
      EXPECT_EQ(ga[i].in_port, gb[i].in_port);
      EXPECT_EQ(ga[i].vc, gb[i].vc);
      EXPECT_EQ(ga[i].out_port, gb[i].out_port);
    }
  }
}

// ---------------------------------------------------------------------------
// Config validation and exec framing for the new knobs.

TEST(SerenadeConfig, PatternKnobsValidate) {
  NetworkSimConfig c =
      SerenadePoint(TopologyKind::kMesh, PatternKind::kUniform, 0.05);
  EXPECT_NO_THROW(ValidateNetworkSimConfig(c));

  // hotspot_node only makes sense for hotspot/incast.
  c.hotspot_node = 9;
  EXPECT_THROW(ValidateNetworkSimConfig(c), SimError);
  c.pattern = PatternKind::kHotspot;
  EXPECT_NO_THROW(ValidateNetworkSimConfig(c));

  // incast_fanin only makes sense for incast.
  c.incast_fanin = 8;
  EXPECT_THROW(ValidateNetworkSimConfig(c), SimError);
  c.pattern = PatternKind::kIncast;
  EXPECT_NO_THROW(ValidateNetworkSimConfig(c));
}

TEST(SerenadeConfig, PointFrameRoundTripsNewFields) {
  NetworkSimConfig c =
      SerenadePoint(TopologyKind::kMesh, PatternKind::kIncast, 0.05);
  c.hotspot_node = 9;
  c.incast_fanin = 5;
  PointFrame frame;
  frame.index = 3;
  frame.attempt = 1;
  frame.config = c;
  const PointFrame back = DecodePointFrame(EncodePointFrame(frame));
  EXPECT_EQ(back.config.scheme, AllocScheme::kSerenade);
  EXPECT_EQ(back.config.pattern, PatternKind::kIncast);
  EXPECT_EQ(back.config.hotspot_node, 9);
  EXPECT_EQ(back.config.incast_fanin, 5);
  EXPECT_EQ(NetworkSimConfigFingerprint(back.config),
            NetworkSimConfigFingerprint(c));
}

}  // namespace
}  // namespace vixnoc
