// Torus topology: structure, minimal routing, dateline VC classes, and —
// the property the datelines exist for — deadlock freedom at saturation.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "network/network.hpp"
#include "routing/dor.hpp"
#include "topology/topology.hpp"

namespace vixnoc {
namespace {

TEST(Torus, Structure) {
  auto topo = MakeTorus(8, 8);
  EXPECT_EQ(topo->Kind(), TopologyKind::kTorus);
  EXPECT_EQ(topo->NumRouters(), 64);
  EXPECT_EQ(topo->NumNodes(), 64);
  EXPECT_EQ(topo->Radix(), 5);
}

TEST(Torus, EveryPortConnected) {
  auto topo = MakeTorus(8, 8);
  for (RouterId r = 0; r < 64; ++r) {
    for (const auto& link : topo->LinksFor(r)) {
      EXPECT_TRUE(link.IsConnected());
    }
  }
}

TEST(Torus, WrapLinksExist) {
  auto topo = MakeTorus(8, 8);
  // Router 7 = (7,0): East wraps to router 0.
  const auto links = topo->LinksFor(7);
  EXPECT_EQ(links[0].neighbor, 0);
  // Router 0: West wraps to router 7.
  EXPECT_EQ(topo->LinksFor(0)[1].neighbor, 7);
  // Router 56 = (0,7): North wraps to router 0.
  EXPECT_EQ(topo->LinksFor(56)[2].neighbor, 0);
}

TEST(Torus, LinksSymmetric) {
  auto topo = MakeTorus(8, 8);
  for (RouterId a = 0; a < 64; ++a) {
    const auto links_a = topo->LinksFor(a);
    for (PortId p = 0; p < 4; ++p) {
      const RouterId b = links_a[p].neighbor;
      const PortId q = links_a[p].neighbor_in_port;
      const auto links_b = topo->LinksFor(b);
      EXPECT_EQ(links_b[q].neighbor, a);
      EXPECT_EQ(links_b[q].neighbor_in_port, p);
    }
  }
}

TEST(Torus, MinimalHops) {
  auto topo = MakeTorus(8, 8);
  EXPECT_EQ(topo->RouterHops(0, 7), 1);   // wrap is shorter than 7 east
  EXPECT_EQ(topo->RouterHops(0, 4), 4);   // exactly half way
  EXPECT_EQ(topo->RouterHops(0, 63), 2);  // (0,0)->(7,7): 1+1 via wraps
  EXPECT_EQ(topo->RouterHops(0, 36), 8);  // (0,0)->(4,4): 4+4, diameter
}

TEST(Torus, RoutingDeliversEveryPairMinimally) {
  auto topo = MakeTorus(8, 8);
  const DorRouting routing(*topo);
  for (NodeId src = 0; src < 64; src += 3) {
    for (NodeId dst = 0; dst < 64; ++dst) {
      RouterId at = topo->RouterOfNode(src);
      int hops = 0;
      while (true) {
        const PortId out = routing.Route(at, dst);
        const auto links = topo->LinksFor(at);
        if (links[out].IsEjection()) {
          EXPECT_EQ(links[out].eject_node, dst);
          break;
        }
        at = links[out].neighbor;
        ASSERT_LE(++hops, 16) << src << "->" << dst;
      }
      EXPECT_EQ(hops, topo->RouterHops(src, dst)) << src << "->" << dst;
    }
  }
}

TEST(Torus, DatelineStateSetsOnWrapOnly) {
  auto topo = MakeTorus(8, 8);
  const DorRouting r(*topo);
  // East from col 3: no crossing.
  EXPECT_EQ(r.NextDatelineState(3, 0, 0), 0);
  // East from col 7 (router 7): crosses the X dateline.
  EXPECT_EQ(r.NextDatelineState(7, 0, 0), 1);
  // West from col 0: crosses.
  EXPECT_EQ(r.NextDatelineState(0, 1, 0), 1);
  // North from row 7 (router 56): crosses Y -> bit 2, independent of X bit.
  EXPECT_EQ(r.NextDatelineState(56, 2, 0), 2);
  EXPECT_EQ(r.NextDatelineState(56, 2, 1), 3);  // X bit preserved
  // Ejection keeps state.
  EXPECT_EQ(r.NextDatelineState(5, 4, 1), 1);
}

TEST(Torus, AllowedVcRangeSplitsByDimensionBit) {
  auto topo = MakeTorus(8, 8);
  const DorRouting r(*topo);
  // X port, not crossed: lower half.
  auto range = r.AllowedVcRange(0, 0, 6);
  EXPECT_EQ(range.lo, 0);
  EXPECT_EQ(range.hi, 3);
  // X port, X crossed: upper half.
  range = r.AllowedVcRange(0, 1, 6);
  EXPECT_EQ(range.lo, 3);
  EXPECT_EQ(range.hi, 6);
  // Y port only reads the Y bit: X-crossed packet still in lower half.
  range = r.AllowedVcRange(2, 1, 6);
  EXPECT_EQ(range.lo, 0);
  EXPECT_EQ(range.hi, 3);
  range = r.AllowedVcRange(2, 2, 6);
  EXPECT_EQ(range.lo, 3);
  // Ejection unrestricted.
  range = r.AllowedVcRange(4, 3, 6);
  EXPECT_EQ(range.lo, 0);
  EXPECT_EQ(range.hi, 6);
}

std::unique_ptr<Network> TorusNet(AllocScheme scheme) {
  std::shared_ptr<Topology> topo = MakeTorus(8, 8);
  NetworkParams p;
  p.router.radix = 5;
  p.router.num_vcs = 6;
  p.router.buffer_depth = 5;
  p.router.scheme = scheme;
  p.router.vc_policy = RouterConfig::DefaultPolicyFor(scheme);
  return std::make_unique<Network>(topo, p);
}

TEST(Torus, NoDeadlockAtSaturationUniform) {
  auto net = TorusNet(AllocScheme::kInputFirst);
  Rng rng(11);
  std::uint64_t sent = 0, got = 0;
  net->SetEjectCallback([&](const PacketRecord&) { ++got; });
  for (int t = 0; t < 4000; ++t) {
    for (NodeId n = 0; n < 64; ++n) {
      if (rng.NextBool(0.25)) {
        net->EnqueuePacket(n, static_cast<NodeId>(rng.NextBounded(64)), 4);
        ++sent;
      }
    }
    net->Step();
    ASSERT_FALSE(net->SuspectedDeadlock(500)) << "cycle " << t;
  }
  // Stop injecting and drain completely.
  Cycle guard = 0;
  while (!net->Quiescent()) {
    net->Step();
    ASSERT_LT(++guard, 500'000u) << "torus failed to drain";
  }
  EXPECT_EQ(got, sent);
}

TEST(Torus, NoDeadlockUnderTornado) {
  // Tornado is the adversarial pattern for rings: every packet travels
  // half way around, maximizing wrap-link pressure.
  auto net = TorusNet(AllocScheme::kInputFirst);
  Rng rng(12);
  std::uint64_t sent = 0, got = 0;
  net->SetEjectCallback([&](const PacketRecord&) { ++got; });
  for (int t = 0; t < 4000; ++t) {
    for (NodeId n = 0; n < 64; ++n) {
      if (rng.NextBool(0.25)) {
        const int x = n % 8, y = n / 8;
        const NodeId dst = ((y + 4) % 8) * 8 + (x + 4) % 8;
        net->EnqueuePacket(n, dst, 4);
        ++sent;
      }
    }
    net->Step();
    ASSERT_FALSE(net->SuspectedDeadlock(500)) << "cycle " << t;
  }
  Cycle guard = 0;
  while (!net->Quiescent()) {
    net->Step();
    ASSERT_LT(++guard, 500'000u);
  }
  EXPECT_EQ(got, sent);
}

TEST(Torus, VixWorksOnTorus) {
  auto run = [](AllocScheme scheme) {
    auto net = TorusNet(scheme);
    Rng rng(13);
    std::uint64_t got = 0;
    net->SetEjectCallback([&](const PacketRecord&) { ++got; });
    for (int t = 0; t < 6000; ++t) {
      for (NodeId n = 0; n < 64; ++n) {
        if (rng.NextBool(0.25)) {
          net->EnqueuePacket(n, static_cast<NodeId>(rng.NextBounded(64)),
                             4);
        }
      }
      net->Step();
    }
    return got;
  };
  // With datelines each class maps onto one VIX sub-group, so the gain is
  // smaller than on the mesh but must not be negative.
  EXPECT_GE(run(AllocScheme::kVix), run(AllocScheme::kInputFirst) * 0.98);
}

TEST(Torus, ZeroLoadLatencyBeatsMeshOnWrapPairs) {
  // 0 -> 7 is 7 hops on the mesh but 1 on the torus.
  auto torus = TorusNet(AllocScheme::kInputFirst);
  Cycle latency = 0;
  torus->SetEjectCallback([&](const PacketRecord& r) {
    latency = r.ejected - r.created;
  });
  torus->EnqueuePacket(0, 7, 1);
  for (int t = 0; t < 100 && latency == 0; ++t) torus->Step();
  EXPECT_EQ(latency, 7u);  // 1 + 2 routers x 3 cycles
}

TEST(Torus, RequiresAtLeastTwoVcsPerClass) {
  std::shared_ptr<Topology> topo = MakeTorus(8, 8);
  NetworkParams p;
  p.router.radix = 5;
  p.router.num_vcs = 1;  // cannot split into dateline halves
  p.router.buffer_depth = 2;
  Network net(topo, p);
  net.EnqueuePacket(0, 5, 1);
  EXPECT_DEATH(
      {
        for (int t = 0; t < 10; ++t) net.Step();
      },
      "check failed");
}

}  // namespace
}  // namespace vixnoc
