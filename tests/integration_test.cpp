// Cross-module integration tests: the paper's headline claims verified
// end-to-end (shortened runs; the bench binaries reproduce the full-length
// numbers).
#include <gtest/gtest.h>

#include "app/app_sim.hpp"
#include "power/energy_model.hpp"
#include "sim/network_sim.hpp"
#include "sim/single_router.hpp"
#include "timing/delay_model.hpp"

namespace vixnoc {
namespace {

NetworkSimConfig Saturated(TopologyKind topo, AllocScheme scheme,
                           int vcs = 6) {
  NetworkSimConfig c;
  c.topology = topo;
  c.scheme = scheme;
  c.num_vcs = vcs;
  c.injection_rate = c.MaxInjectionRate();
  c.warmup = 3000;
  c.measure = 8000;
  c.drain = 1000;
  return c;
}

TEST(Headline, VixImprovesMeshThroughputDoubleDigits) {
  const auto base =
      RunNetworkSim(Saturated(TopologyKind::kMesh, AllocScheme::kInputFirst));
  const auto vix =
      RunNetworkSim(Saturated(TopologyKind::kMesh, AllocScheme::kVix));
  const double gain = vix.accepted_ppc / base.accepted_ppc - 1.0;
  EXPECT_GT(gain, 0.08) << "paper reports +16.2%";
  EXPECT_LT(gain, 0.40);
}

TEST(Headline, VixImprovesHighRadixTopologies) {
  for (auto topo : {TopologyKind::kCMesh, TopologyKind::kFBfly}) {
    const auto base =
        RunNetworkSim(Saturated(topo, AllocScheme::kInputFirst));
    const auto vix = RunNetworkSim(Saturated(topo, AllocScheme::kVix));
    EXPECT_GT(vix.accepted_ppc, base.accepted_ppc * 1.05)
        << ToString(topo) << " (paper: +15%/+17%)";
  }
}

TEST(Headline, VixFairestAtHighLoad) {
  // Fig 9: VIX achieves the best max/min per-node throughput of all the
  // schemes. Fairness is measured at a high-load operating point just past
  // the baseline's saturation knee (deep saturation measures open-loop
  // injection starvation, which swamps every scheme equally).
  auto high = [](AllocScheme scheme) {
    auto c = Saturated(TopologyKind::kMesh, scheme);
    c.injection_rate = 0.12;
    c.measure = 12'000;
    return RunNetworkSim(c);
  };
  const auto base = high(AllocScheme::kInputFirst);
  const auto vix = high(AllocScheme::kVix);
  EXPECT_LT(vix.max_min_ratio, base.max_min_ratio);
  EXPECT_LT(vix.max_min_ratio, 4.0);
}

TEST(Headline, AugmentingPathUnfairAtMaxInjection) {
  // Fig 9 reports max/min = 6.4 for AP; deep saturation reproduces it.
  auto c = Saturated(TopologyKind::kMesh, AllocScheme::kAugmentingPath);
  c.measure = 12'000;
  const auto ap = RunNetworkSim(c);
  EXPECT_GT(ap.max_min_ratio, 4.0);
  EXPECT_LT(ap.max_min_ratio, 10.0);
}

TEST(Headline, BufferReduction4VcVixBeats6VcBaseline) {
  // §4.6: 1:2 VIX with 4 VCs outperforms the 6 VC baseline by >10%,
  // enabling a 33% buffer reduction.
  const auto base6 = RunNetworkSim(
      Saturated(TopologyKind::kMesh, AllocScheme::kInputFirst, 6));
  const auto vix4 =
      RunNetworkSim(Saturated(TopologyKind::kMesh, AllocScheme::kVix, 4));
  EXPECT_GT(vix4.accepted_ppc, base6.accepted_ppc * 1.02);
}

TEST(Headline, SingleFlitPacketChainingHelpsButVixHelpsMore) {
  // Fig 10 setting: single-flit packets at max injection.
  auto cfg = Saturated(TopologyKind::kMesh, AllocScheme::kInputFirst);
  cfg.packet_size = 1;
  cfg.injection_rate = cfg.MaxInjectionRate();
  const auto base = RunNetworkSim(cfg);
  cfg.scheme = AllocScheme::kPacketChaining;
  const auto pc = RunNetworkSim(cfg);
  cfg.scheme = AllocScheme::kVix;
  const auto vix = RunNetworkSim(cfg);
  EXPECT_GT(pc.accepted_ppc, base.accepted_ppc);
  EXPECT_GT(vix.accepted_ppc, pc.accepted_ppc);
}

TEST(Headline, EnergyPerBitOverheadSmall) {
  // Fig 11 setting: mesh at 0.1 packets/cycle/node.
  auto cfg = Saturated(TopologyKind::kMesh, AllocScheme::kInputFirst);
  cfg.injection_rate = 0.1;
  const auto base = RunNetworkSim(cfg);
  cfg.scheme = AllocScheme::kVix;
  const auto vix = RunNetworkSim(cfg);

  const power::EnergyParams params;
  RouterConfig base_rtr;
  base_rtr.radix = 5;
  base_rtr.num_vcs = 6;
  base_rtr.buffer_depth = 5;
  base_rtr.scheme = AllocScheme::kInputFirst;
  RouterConfig vix_rtr = base_rtr;
  vix_rtr.scheme = AllocScheme::kVix;

  const auto e_base = power::NetworkEnergy(params, base_rtr, 64,
                                           base.activity, base.measure_cycles);
  const auto e_vix = power::NetworkEnergy(params, vix_rtr, 64, vix.activity,
                                          vix.measure_cycles);
  const auto bits_base = static_cast<std::uint64_t>(
      base.accepted_fpc * base.measure_cycles * 128);
  const auto bits_vix = static_cast<std::uint64_t>(
      vix.accepted_fpc * vix.measure_cycles * 128);
  const double epb_base = power::EnergyPerBitPj(e_base, bits_base);
  const double epb_vix = power::EnergyPerBitPj(e_vix, bits_vix);
  // Both schemes deliver the same load here, so energy/bit should differ
  // by only a few percent (paper: +4%).
  EXPECT_NEAR(epb_vix / epb_base, 1.04, 0.06);
  EXPECT_GT(epb_base, 0.1);
  EXPECT_LT(epb_base, 10.0);
}

TEST(Headline, TimingAndSimulationAgreeVixIsFree) {
  // The whole argument: VIX's throughput gain (simulation) costs no cycle
  // time (timing model).
  const auto base =
      RunNetworkSim(Saturated(TopologyKind::kMesh, AllocScheme::kInputFirst));
  const auto vix =
      RunNetworkSim(Saturated(TopologyKind::kMesh, AllocScheme::kVix));
  EXPECT_GT(vix.accepted_ppc, base.accepted_ppc);
  EXPECT_DOUBLE_EQ(timing::RouterCyclePs(5, 6, 2),
                   timing::RouterCyclePs(5, 6, 1));
}

TEST(Headline, ApplicationSpeedupPositiveOnHeavyMix) {
  app::AppSimConfig cfg;
  cfg.warmup = 3000;
  cfg.measure = 10'000;
  const auto cores = app::ExpandMix(app::PaperMixes()[7]);
  cfg.scheme = AllocScheme::kInputFirst;
  const auto base = RunAppSim(cfg, cores);
  cfg.scheme = AllocScheme::kVix;
  const auto vix = RunAppSim(cfg, cores);
  const double speedup = vix.aggregate_ipc / base.aggregate_ipc;
  EXPECT_GT(speedup, 0.99);
  EXPECT_LT(speedup, 1.30);
}

TEST(Headline, WavefrontSingleRouterGainDoesNotTransferToNetwork) {
  // Fig 7 vs Fig 8: WF clearly beats IF in a single router, but at network
  // level the gap shrinks dramatically (the paper's central observation
  // about second-order effects).
  SingleRouterConfig sr;
  sr.cycles = 20'000;
  sr.scheme = AllocScheme::kInputFirst;
  const auto sr_base = RunSingleRouter(sr);
  sr.scheme = AllocScheme::kWavefront;
  const auto sr_wf = RunSingleRouter(sr);
  const double single_gain =
      sr_wf.flits_per_cycle / sr_base.flits_per_cycle - 1.0;

  const auto net_base =
      RunNetworkSim(Saturated(TopologyKind::kMesh, AllocScheme::kInputFirst));
  const auto net_wf =
      RunNetworkSim(Saturated(TopologyKind::kMesh, AllocScheme::kWavefront));
  const double net_gain = net_wf.accepted_ppc / net_base.accepted_ppc - 1.0;
  EXPECT_LT(net_gain, single_gain);
}

}  // namespace
}  // namespace vixnoc
