// Failure-injection tests: every misuse of the public API must die loudly
// on a VIXNOC_CHECK (a silently-corrupt cycle-accurate model is worthless).
#include <gtest/gtest.h>

#include <memory>

#include "alloc/switch_allocator.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "network/network.hpp"
#include "topology/topology.hpp"
#include "traffic/trace.hpp"

namespace vixnoc {
namespace {

std::unique_ptr<Network> SmallNet() {
  std::shared_ptr<Topology> topo = MakeMesh(4, 4);
  NetworkParams p;
  p.router.radix = 5;
  p.router.num_vcs = 2;
  p.router.buffer_depth = 2;
  return std::make_unique<Network>(topo, p);
}

TEST(Robustness, EnqueueRejectsBadSource) {
  auto net = SmallNet();
  EXPECT_DEATH(net->EnqueuePacket(-1, 0, 1), "check failed");
  EXPECT_DEATH(net->EnqueuePacket(16, 0, 1), "check failed");
}

TEST(Robustness, EnqueueRejectsBadDestination) {
  auto net = SmallNet();
  EXPECT_DEATH(net->EnqueuePacket(0, 99, 1), "check failed");
}

TEST(Robustness, EnqueueRejectsEmptyPacket) {
  auto net = SmallNet();
  EXPECT_DEATH(net->EnqueuePacket(0, 1, 0), "check failed");
}

TEST(Robustness, EnqueueRejectsUnknownMessageClass) {
  auto net = SmallNet();  // 1 message class
  EXPECT_DEATH(net->EnqueuePacket(0, 1, 1, 0, /*msg_class=*/1),
               "check failed");
}

TEST(Robustness, CreditOverflowDies) {
  auto net = SmallNet();
  // Returning a credit that was never consumed overflows depth 2.
  EXPECT_DEATH(net->router(0).AcceptCredit(0, 0), "check failed");
}

TEST(Robustness, BufferOverflowDies) {
  std::shared_ptr<Topology> topo = MakeMesh(4, 4);
  NetworkParams p;
  p.router.radix = 5;
  p.router.num_vcs = 2;
  p.router.buffer_depth = 1;
  Network net(topo, p);
  Flit f;
  f.vc = 0;
  f.route_out = 4;
  f.dst = 0;
  f.type = FlitType::kHeadTail;
  net.router(0).AcceptFlit(0, f);
  EXPECT_DEATH(net.router(0).AcceptFlit(0, f), "check failed");
}

TEST(Robustness, FlitWithBadVcDies) {
  auto net = SmallNet();
  Flit f;
  f.vc = 7;  // only 2 VCs configured
  f.route_out = 4;
  EXPECT_DEATH(net->router(0).AcceptFlit(0, f), "check failed");
}

TEST(Robustness, InvalidGeometryDies) {
  SwitchGeometry g;
  g.num_inports = 5;
  g.num_outports = 5;
  g.num_vcs = 6;
  g.num_vins = 4;  // 6 % 4 != 0
  EXPECT_DEATH(MakeSwitchAllocator(AllocScheme::kVix, g), "check failed");
}

TEST(Robustness, SchemeGeometryMismatchDies) {
  SwitchGeometry g;
  g.num_inports = 5;
  g.num_outports = 5;
  g.num_vcs = 6;
  g.num_vins = 2;  // wavefront requires a single virtual input
  EXPECT_DEATH(MakeSwitchAllocator(AllocScheme::kWavefront, g),
               "check failed");
}

TEST(Robustness, TablePrinterRowWidthMismatchDies) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "check failed");
}

TEST(Robustness, CsvRowWidthMismatchDies) {
  const std::string path = ::testing::TempDir() + "/robust.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_DEATH(csv.AddRow({"1", "2", "3"}), "check failed");
  std::remove(path.c_str());
}

TEST(Robustness, TraceRejectsOutOfOrderRecords) {
  PacketTrace trace;
  trace.Add({10, 0, 1, 1});
  EXPECT_DEATH(trace.Add({5, 0, 1, 1}), "check failed");
}

TEST(Robustness, TraceRejectsMalformedText) {
  EXPECT_DEATH(PacketTrace::FromText("1 2 3\n", 8), "check failed");
  EXPECT_DEATH(PacketTrace::FromText("1 2 99 1\n", 8), "check failed");
}

TEST(Robustness, NetworkRadixMismatchDies) {
  std::shared_ptr<Topology> topo = MakeMesh(4, 4);  // radix 5
  NetworkParams p;
  p.router.radix = 8;
  EXPECT_DEATH(Network(topo, p), "check failed");
}

}  // namespace
}  // namespace vixnoc
