// Failure-injection tests for API misuse. Two regimes, by design:
//  * recoverable setup/configuration errors throw vixnoc::SimError
//    (VIXNOC_REQUIRE) so a sweep can mark the point failed and move on;
//  * hot-path invariant violations still abort via VIXNOC_CHECK — once a
//    buffer or credit count is corrupt the model's numbers are worthless,
//    and unwinding through a half-stepped router would only hide that.
#include <gtest/gtest.h>

#include <memory>

#include "alloc/switch_allocator.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "network/network.hpp"
#include "sim/network_sim.hpp"
#include "topology/topology.hpp"
#include "traffic/trace.hpp"

namespace vixnoc {
namespace {

std::unique_ptr<Network> SmallNet() {
  std::shared_ptr<Topology> topo = MakeMesh(4, 4);
  NetworkParams p;
  p.router.radix = 5;
  p.router.num_vcs = 2;
  p.router.buffer_depth = 2;
  return std::make_unique<Network>(topo, p);
}

TEST(Robustness, EnqueueRejectsBadSource) {
  auto net = SmallNet();
  EXPECT_THROW(net->EnqueuePacket(-1, 0, 1), SimError);
  EXPECT_THROW(net->EnqueuePacket(16, 0, 1), SimError);
}

TEST(Robustness, EnqueueRejectsBadDestination) {
  auto net = SmallNet();
  EXPECT_THROW(net->EnqueuePacket(0, 99, 1), SimError);
}

TEST(Robustness, EnqueueRejectsEmptyPacket) {
  auto net = SmallNet();
  EXPECT_THROW(net->EnqueuePacket(0, 1, 0), SimError);
}

TEST(Robustness, EnqueueRejectsUnknownMessageClass) {
  auto net = SmallNet();  // 1 message class
  EXPECT_THROW(net->EnqueuePacket(0, 1, 1, 0, /*msg_class=*/1), SimError);
}

TEST(Robustness, CreditOverflowDies) {
  auto net = SmallNet();
  // Returning a credit that was never consumed overflows depth 2.
  EXPECT_DEATH(net->router(0).AcceptCredit(0, 0), "check failed");
}

TEST(Robustness, BufferOverflowDies) {
  std::shared_ptr<Topology> topo = MakeMesh(4, 4);
  NetworkParams p;
  p.router.radix = 5;
  p.router.num_vcs = 2;
  p.router.buffer_depth = 1;
  Network net(topo, p);
  Flit f;
  f.vc = 0;
  f.route_out = 4;
  f.dst = 0;
  f.type = FlitType::kHeadTail;
  net.router(0).AcceptFlit(0, f);
  EXPECT_DEATH(net.router(0).AcceptFlit(0, f), "check failed");
}

TEST(Robustness, FlitWithBadVcDies) {
  auto net = SmallNet();
  Flit f;
  f.vc = 7;  // only 2 VCs configured
  f.route_out = 4;
  EXPECT_DEATH(net->router(0).AcceptFlit(0, f), "check failed");
}

TEST(Robustness, InvalidGeometryThrows) {
  SwitchGeometry g;
  g.num_inports = 5;
  g.num_outports = 5;
  g.num_vcs = 6;
  g.num_vins = 4;  // 6 % 4 != 0
  EXPECT_THROW(MakeSwitchAllocator(AllocScheme::kVix, g), SimError);
}

TEST(Robustness, SchemeGeometryMismatchThrows) {
  SwitchGeometry g;
  g.num_inports = 5;
  g.num_outports = 5;
  g.num_vcs = 6;
  g.num_vins = 2;  // wavefront requires a single virtual input
  EXPECT_THROW(MakeSwitchAllocator(AllocScheme::kWavefront, g), SimError);
}

TEST(Robustness, TablePrinterRowWidthMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), SimError);
}

TEST(Robustness, CsvRowWidthMismatchThrows) {
  const std::string path = ::testing::TempDir() + "/robust.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.AddRow({"1", "2", "3"}), SimError);
  std::remove(path.c_str());
}

TEST(Robustness, TraceRejectsOutOfOrderRecords) {
  PacketTrace trace;
  trace.Add({10, 0, 1, 1});
  EXPECT_THROW(trace.Add({5, 0, 1, 1}), SimError);
}

TEST(Robustness, TraceRejectsMalformedText) {
  EXPECT_THROW(PacketTrace::FromText("1 2 3\n", 8), SimError);
  EXPECT_THROW(PacketTrace::FromText("1 2 99 1\n", 8), SimError);
}

TEST(Robustness, NetworkRadixMismatchThrows) {
  std::shared_ptr<Topology> topo = MakeMesh(4, 4);  // radix 5
  NetworkParams p;
  p.router.radix = 8;
  EXPECT_THROW(Network(topo, p), SimError);
}

TEST(Robustness, SimErrorMessageNamesFileAndReason) {
  try {
    TablePrinter t({"a", "b"});
    t.AddRow({"only-one"});
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("table row"), std::string::npos) << msg;
    EXPECT_NE(msg.find("table.cpp"), std::string::npos) << msg;
  }
}

// Configuration validation happens before any network is built, with the
// offending field named in the message.
TEST(Robustness, ValidateConfigRejectsBadRate) {
  NetworkSimConfig config;
  config.injection_rate = 2.0;
  EXPECT_THROW(ValidateNetworkSimConfig(config), SimError);
}

TEST(Robustness, ValidateConfigRejectsZeroBuffers) {
  NetworkSimConfig config;
  config.buffer_depth = 0;
  EXPECT_THROW(ValidateNetworkSimConfig(config), SimError);
  config.buffer_depth = 5;
  config.num_vcs = 0;
  EXPECT_THROW(ValidateNetworkSimConfig(config), SimError);
  config.num_vcs = 6;
  config.packet_size = 0;
  EXPECT_THROW(ValidateNetworkSimConfig(config), SimError);
}

TEST(Robustness, ValidateConfigRejectsIndivisibleVixVins) {
  NetworkSimConfig config;
  config.scheme = AllocScheme::kVix;
  config.num_vcs = 6;
  config.vix_virtual_inputs = 4;  // 6 % 4 != 0
  EXPECT_THROW(ValidateNetworkSimConfig(config), SimError);
  config.vix_virtual_inputs = 3;
  EXPECT_NO_THROW(ValidateNetworkSimConfig(config));
}

TEST(Robustness, ValidateConfigRejectsBadPipeline) {
  NetworkSimConfig config;
  config.pipeline_stages = 4;
  EXPECT_THROW(ValidateNetworkSimConfig(config), SimError);
}

TEST(Robustness, ValidateConfigRejectsTorusPermanentFaults) {
  NetworkSimConfig config;
  config.topology = TopologyKind::kTorus;
  config.faults.link_down_rate = 0.05;
  EXPECT_THROW(ValidateNetworkSimConfig(config), SimError);
}

TEST(Robustness, ValidateConfigRejectsBadFaultRates) {
  NetworkSimConfig config;
  config.faults.corruption_rate = 1.5;
  EXPECT_THROW(ValidateNetworkSimConfig(config), SimError);
}

// RunNetworkSim sets the thread-local sim-point context before validating,
// so the SimError from a bad config names the offending point.
TEST(Robustness, SimErrorCarriesSimPointContext) {
  NetworkSimConfig config;
  config.injection_rate = 2.0;
  try {
    RunNetworkSim(config);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("while simulating"), std::string::npos) << msg;
    EXPECT_NE(msg.find("scheme=IF"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rate=2"), std::string::npos) << msg;
  }
}

// Aborting checks print the same context so a crash deep inside a sweep is
// attributable to its point.
TEST(Robustness, CheckFailureReportsSimPointContext) {
  auto die = [] {
    ScopedSimContext ctx("scheme=%s topology=%s rate=%g", "IF", "mesh", 0.1);
    VIXNOC_CHECK(false);
  };
  EXPECT_DEATH(die(), "while simulating scheme=IF topology=mesh rate=0.1");
}

}  // namespace
}  // namespace vixnoc
