#include <gtest/gtest.h>

#include "alloc/sparoflo.hpp"
#include "common/rng.hpp"

namespace vixnoc {
namespace {

SwitchGeometry Geom(int ports, int vcs) {
  SwitchGeometry g;
  g.num_inports = ports;
  g.num_outports = ports;
  g.num_vcs = vcs;
  g.num_vins = 1;
  return g;
}

TEST(Sparoflo, SingleRequestGranted) {
  SparofloAllocator alloc(Geom(5, 6), ArbiterKind::kRoundRobin);
  std::vector<SaGrant> grants;
  alloc.Allocate({{2, 1, 3}}, &grants);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].in_port, 2);
  EXPECT_EQ(grants[0].out_port, 3);
}

TEST(Sparoflo, OneGrantPerInputPortDespiteExposure) {
  // Two VCs of one port requesting distinct outputs are both exposed, can
  // both win output arbitration, but only one traverses — the conflict
  // kill that distinguishes SPAROFLO from VIX.
  SparofloAllocator alloc(Geom(5, 4), ArbiterKind::kRoundRobin);
  std::vector<SaGrant> grants;
  alloc.Allocate({{0, 0, 1}, {0, 2, 3}}, &grants);
  EXPECT_EQ(grants.size(), 1u);
  EXPECT_EQ(alloc.last_killed_grants(), 1);
}

TEST(Sparoflo, ExposureImprovesMatchingOverIF) {
  // The Fig 5 situation: two ports' preferred requests collide on one
  // output, but a second exposed request from one port fills another
  // output. IF would transfer 1 flit; SPAROFLO transfers 2.
  SparofloAllocator alloc(Geom(5, 4), ArbiterKind::kRoundRobin);
  std::vector<SaGrant> grants;
  alloc.Allocate({{1, 0, 0}, {3, 0, 0}, {3, 2, 2}}, &grants);
  EXPECT_EQ(grants.size(), 2u);
}

TEST(Sparoflo, GrantsLegalOnRandomMatrices) {
  const SwitchGeometry geom = Geom(8, 6);
  SparofloAllocator alloc(geom, ArbiterKind::kRoundRobin);
  Rng rng(3);
  std::vector<SaGrant> grants;
  for (int t = 0; t < 500; ++t) {
    std::vector<SaRequest> reqs;
    for (PortId in = 0; in < 8; ++in) {
      for (VcId vc = 0; vc < 6; ++vc) {
        if (rng.NextBool(0.4)) {
          reqs.push_back({in, vc, static_cast<PortId>(rng.NextBounded(8))});
        }
      }
    }
    alloc.Allocate(reqs, &grants);
    ASSERT_TRUE(GrantsAreLegal(geom, reqs, grants)) << "cycle " << t;
  }
}

TEST(Sparoflo, FactoryIntegration) {
  auto alloc = MakeSwitchAllocator(AllocScheme::kSparoflo, Geom(5, 6));
  EXPECT_EQ(alloc->Name(), "sparoflo");
  EXPECT_EQ(VirtualInputsForScheme(AllocScheme::kSparoflo, 6), 1);
}

TEST(Sparoflo, ResetClearsState) {
  SparofloAllocator alloc(Geom(5, 4), ArbiterKind::kRoundRobin);
  std::vector<SaGrant> grants;
  std::vector<SaRequest> reqs{{0, 0, 1}, {1, 0, 1}};
  std::vector<SaGrant> first;
  alloc.Allocate(reqs, &first);
  alloc.Allocate(reqs, &grants);
  alloc.Reset();
  alloc.Allocate(reqs, &grants);
  ASSERT_EQ(first.size(), grants.size());
  EXPECT_EQ(first[0].in_port, grants[0].in_port);
}

TEST(Sparoflo, KilledGrantsLeaveOutputsIdle) {
  // Saturated contention: measure that SPAROFLO kills grants sometimes and
  // that its throughput lands between IF and VIX, per the paper's analysis.
  auto run = [](AllocScheme scheme) {
    SwitchGeometry g = Geom(5, 6);
    g.num_vins = VirtualInputsForScheme(scheme, 6);
    auto alloc = MakeSwitchAllocator(scheme, g);
    Rng rng(11);
    std::vector<PortId> want(30);
    for (auto& w : want) w = static_cast<PortId>(rng.NextBounded(5));
    std::uint64_t total = 0;
    std::vector<SaGrant> grants;
    for (int t = 0; t < 5000; ++t) {
      std::vector<SaRequest> reqs;
      for (PortId in = 0; in < 5; ++in) {
        for (VcId vc = 0; vc < 6; ++vc) {
          reqs.push_back({in, vc, want[in * 6 + vc]});
        }
      }
      alloc->Allocate(reqs, &grants);
      total += grants.size();
      for (const auto& g2 : grants) {
        want[g2.in_port * 6 + g2.vc] =
            static_cast<PortId>(rng.NextBounded(5));
      }
    }
    return static_cast<double>(total) / 5000.0;
  };
  const double base = run(AllocScheme::kInputFirst);
  const double sparoflo = run(AllocScheme::kSparoflo);
  const double vix = run(AllocScheme::kVix);
  EXPECT_GT(sparoflo, base * 1.02);
  EXPECT_LT(sparoflo, vix);
}

}  // namespace
}  // namespace vixnoc
