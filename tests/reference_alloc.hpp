// Scalar reference implementations of the arbiters and switch allocators,
// retained verbatim from the pre-bitmask code so the word-parallel kernels
// in src/alloc/ and src/arbiter/ can be checked grant-for-grant against the
// original nested-loop logic on randomized request matrices.
//
// These are TEST-ONLY. They carry the full priority state (rotating
// pointers, LRG matrices, per-cell VC pointers) so an equivalence test can
// drive both implementations through long randomized request sequences and
// require identical grants at every cycle, not just on the first one.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/switch_allocator.hpp"
#include "common/rng.hpp"

namespace vixnoc::ref {

// ---------------------------------------------------------------------------
// Scalar arbiters (pre-rewrite RoundRobinArbiter / MatrixArbiter).

class RefArbiter {
 public:
  explicit RefArbiter(int n) : n_(n) {}
  virtual ~RefArbiter() = default;
  virtual int Pick(const std::vector<bool>& requests) const = 0;
  virtual void Commit(int winner) = 0;
  virtual void Reset() = 0;

 protected:
  int n_;
};

class RefRoundRobin final : public RefArbiter {
 public:
  explicit RefRoundRobin(int n) : RefArbiter(n) {}
  int Pick(const std::vector<bool>& requests) const override {
    for (int off = 0; off < n_; ++off) {
      const int i = (next_priority_ + off) % n_;
      if (requests[i]) return i;
    }
    return -1;
  }
  void Commit(int winner) override { next_priority_ = (winner + 1) % n_; }
  void Reset() override { next_priority_ = 0; }

 private:
  int next_priority_ = 0;
};

class RefMatrix final : public RefArbiter {
 public:
  explicit RefMatrix(int n)
      : RefArbiter(n), pri_(static_cast<std::size_t>(n) * n) {
    Reset();
  }
  int Pick(const std::vector<bool>& requests) const override {
    for (int i = 0; i < n_; ++i) {
      if (!requests[i]) continue;
      bool beaten = false;
      for (int j = 0; j < n_; ++j) {
        if (j == i || !requests[j]) continue;
        if (pri_[static_cast<std::size_t>(j) * n_ + i]) {
          beaten = true;
          break;
        }
      }
      if (!beaten) return i;
    }
    return -1;
  }
  void Commit(int winner) override {
    for (int j = 0; j < n_; ++j) {
      if (j == winner) continue;
      pri_[static_cast<std::size_t>(winner) * n_ + j] = false;
      pri_[static_cast<std::size_t>(j) * n_ + winner] = true;
    }
  }
  void Reset() override {
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        pri_[static_cast<std::size_t>(i) * n_ + j] = i < j;
      }
    }
  }

 private:
  std::vector<bool> pri_;
};

std::unique_ptr<RefArbiter> MakeRefArbiter(ArbiterKind kind, int n);

// ---------------------------------------------------------------------------
// Scalar allocators. Same Allocate semantics and internal priority state as
// the pre-rewrite implementations; no snapshot/telemetry support.

class RefAllocator {
 public:
  explicit RefAllocator(const SwitchGeometry& g) : geom_(g) {}
  virtual ~RefAllocator() = default;
  virtual void Allocate(const std::vector<SaRequest>& requests,
                        std::vector<SaGrant>* grants) = 0;

 protected:
  SwitchGeometry geom_;
};

class RefSeparableInputFirst final : public RefAllocator {
 public:
  RefSeparableInputFirst(const SwitchGeometry& g, ArbiterKind kind,
                         bool update_on_grant_only = true);
  void Allocate(const std::vector<SaRequest>& requests,
                std::vector<SaGrant>* grants) override;

 private:
  bool update_on_grant_only_;
  std::vector<std::unique_ptr<RefArbiter>> input_arbiters_;
  std::vector<std::unique_ptr<RefArbiter>> output_arbiters_;
  std::vector<bool> vc_request_scratch_;
  std::vector<int> phase1_vc_;
  std::vector<PortId> phase1_out_;
  std::vector<bool> out_request_scratch_;
  std::vector<PortId> out_port_of_;
};

class RefWavefront final : public RefAllocator {
 public:
  explicit RefWavefront(const SwitchGeometry& g);
  void Allocate(const std::vector<SaRequest>& requests,
                std::vector<SaGrant>* grants) override;

 private:
  int n_;
  int priority_diagonal_ = 0;
  std::vector<int> vc_rr_;
  std::vector<std::vector<VcId>> cell_vcs_;
  std::vector<bool> row_free_;
  std::vector<bool> col_free_;
};

class RefIslip final : public RefAllocator {
 public:
  RefIslip(const SwitchGeometry& g, int iterations = 2);
  void Allocate(const std::vector<SaRequest>& requests,
                std::vector<SaGrant>* grants) override;

 private:
  int iterations_;
  std::vector<int> grant_ptr_;
  std::vector<int> accept_ptr_;
  std::vector<int> vc_rr_;
  std::vector<std::vector<VcId>> cell_vcs_;
  std::vector<int> match_in_;
  std::vector<int> match_out_;
  std::vector<int> granted_to_;
};

class RefAugmentingPath final : public RefAllocator {
 public:
  explicit RefAugmentingPath(const SwitchGeometry& g, bool rotate_vcs = true);
  void Allocate(const std::vector<SaRequest>& requests,
                std::vector<SaGrant>* grants) override;

 private:
  bool TryAugment(int in, std::vector<bool>* visited);

  bool rotate_vcs_;
  std::vector<bool> request_;
  std::vector<int> match_of_out_;
  std::vector<int> match_of_in_;
  std::vector<int> vc_rr_;
  std::vector<std::vector<VcId>> cell_vcs_;
  std::vector<bool> visited_;
};

class RefSparoflo final : public RefAllocator {
 public:
  RefSparoflo(const SwitchGeometry& g, ArbiterKind kind, int max_exposed = 2);
  void Allocate(const std::vector<SaRequest>& requests,
                std::vector<SaGrant>* grants) override;

 private:
  struct Tentative {
    PortId in_port;
    VcId vc;
    PortId out_port;
  };

  int max_exposed_;
  std::vector<std::unique_ptr<RefArbiter>> input_arbiters_;
  std::vector<std::unique_ptr<RefArbiter>> output_arbiters_;
  std::vector<std::unique_ptr<RefArbiter>> conflict_arbiters_;
};

// Scalar SERENADE mirror. Unlike the other references this one is not a
// pre-rewrite retention — SERENADE was born word-parallel — but it plays
// the same role: nested-loop logic with plain vectors, consuming the
// identical RNG draw sequence (one bounded draw per requesting input, in
// ascending input order), so the bitmask kernel's proposal selection, knot
// decomposition, and VC rotation are pinned grant-for-grant.
class RefSerenade final : public RefAllocator {
 public:
  RefSerenade(const SwitchGeometry& g, std::uint64_t seed);
  void Allocate(const std::vector<SaRequest>& requests,
                std::vector<SaGrant>* grants) override;

 private:
  int EdgeWeight(int in, int out) const;

  Rng rng_;
  std::vector<int> prev_match_;
  std::vector<int> vc_rr_;
  std::vector<std::vector<bool>> request_row_;
  std::vector<std::vector<bool>> cell_vc_;
  std::vector<int> prop_in_;
  std::vector<int> prop_out_;
  std::vector<int> prop_w_;
  std::vector<int> prev_out_;
  std::vector<int> match_in_;
  std::vector<bool> in_seen_;
  std::vector<bool> out_seen_;
};

/// Factory mirroring MakeSwitchAllocator for the schemes with bitmask
/// kernels (separable IF/VIX/VIX-ideal, wavefront, AP, iSLIP, SPAROFLO,
/// SERENADE). `seed` only matters for the randomized schemes and must
/// match the seed handed to MakeSwitchAllocator.
std::unique_ptr<RefAllocator> MakeRefAllocator(AllocScheme scheme,
                                               const SwitchGeometry& g,
                                               ArbiterKind kind,
                                               std::uint64_t seed = 0);

}  // namespace vixnoc::ref
