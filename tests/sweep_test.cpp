// SweepRunner determinism and thread-pool behavior.
//
// The contract under test: running a batch of NetworkSimConfig points
// through SweepRunner yields, for every point, a result bitwise identical
// to a direct serial RunNetworkSim call — regardless of worker count,
// scheduling order, or how many batches the pool has already processed.
// These tests are also the workload for the TSAN build
// (-DVIXNOC_SANITIZE=thread).
#include "sim/sweep.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "store/result_store.hpp"
#include "topology/topology.hpp"

namespace vixnoc {
namespace {

// Small but non-trivial points: a 4x4 mesh keeps each point ~100x cheaper
// than the default 64-node config while still exercising the full VC/SA
// pipeline. Mixed schemes and patterns so points differ in run time, which
// shuffles completion order across threads.
std::vector<NetworkSimConfig> TestBatch() {
  std::vector<NetworkSimConfig> points;
  const AllocScheme schemes[] = {AllocScheme::kInputFirst,
                                 AllocScheme::kWavefront, AllocScheme::kVix};
  const double rates[] = {0.05, 0.15, 0.24};
  for (AllocScheme scheme : schemes) {
    for (double rate : rates) {
      NetworkSimConfig c;
      c.scheme = scheme;
      c.injection_rate = rate;
      c.pattern =
          rate < 0.1 ? PatternKind::kTranspose : PatternKind::kUniform;
      c.topology_factory = [] { return MakeMesh(4, 4); };
      c.warmup = 300;
      c.measure = 1'000;
      c.drain = 300;
      c.sample_interval = 200;  // timeline must match too
      c.seed = 7 + points.size();
      points.push_back(c);
    }
  }
  return points;
}

// Bitwise equality, field by field, including the activity counters and
// the optional timeline. EXPECT_EQ on doubles is deliberate: determinism
// means identical bits, not merely close values.
void ExpectIdentical(const NetworkSimResult& a, const NetworkSimResult& b) {
  EXPECT_EQ(a.offered_ppc, b.offered_ppc);
  EXPECT_EQ(a.accepted_ppc, b.accepted_ppc);
  EXPECT_EQ(a.accepted_fpc, b.accepted_fpc);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.avg_net_latency, b.avg_net_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.min_node_ppc, b.min_node_ppc);
  EXPECT_EQ(a.max_node_ppc, b.max_node_ppc);
  EXPECT_EQ(a.max_min_ratio, b.max_min_ratio);
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.activity.buffer_writes, b.activity.buffer_writes);
  EXPECT_EQ(a.activity.buffer_reads, b.activity.buffer_reads);
  EXPECT_EQ(a.activity.xbar_traversals, b.activity.xbar_traversals);
  EXPECT_EQ(a.activity.link_flits, b.activity.link_flits);
  EXPECT_EQ(a.activity.sa_requests, b.activity.sa_requests);
  EXPECT_EQ(a.activity.sa_grants, b.activity.sa_grants);
  EXPECT_EQ(a.activity.va_requests, b.activity.va_requests);
  EXPECT_EQ(a.activity.va_grants, b.activity.va_grants);
  EXPECT_EQ(a.activity.cycles, b.activity.cycles);
  EXPECT_EQ(a.activity.cycles_with_requests, b.activity.cycles_with_requests);
  EXPECT_EQ(a.measure_cycles, b.measure_cycles);
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_EQ(a.packets_corrupted, b.packets_corrupted);
  EXPECT_EQ(a.outcome.status, b.outcome.status);
  EXPECT_EQ(a.outcome.message, b.outcome.message);
  EXPECT_EQ(a.outcome.cycle, b.outcome.cycle);
  EXPECT_EQ(a.outcome.router_occupancy, b.outcome.router_occupancy);
  EXPECT_EQ(a.outcome.unreachable_packets, b.outcome.unreachable_packets);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].start, b.timeline[i].start);
    EXPECT_EQ(a.timeline[i].accepted_ppc, b.timeline[i].accepted_ppc);
    EXPECT_EQ(a.timeline[i].avg_latency, b.timeline[i].avg_latency);
    EXPECT_EQ(a.timeline[i].packets, b.timeline[i].packets);
  }
}

TEST(SweepRunnerTest, MatchesSerialAtEveryThreadCount) {
  const std::vector<NetworkSimConfig> points = TestBatch();
  std::vector<NetworkSimResult> serial;
  for (const NetworkSimConfig& c : points) {
    serial.push_back(RunNetworkSim(c));
  }

  for (int threads : {1, 2, 8}) {
    SweepRunner runner(threads);
    EXPECT_EQ(runner.num_threads(), threads);
    const std::vector<NetworkSimResult> parallel = runner.Run(points);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " point=" << i);
      ExpectIdentical(serial[i], parallel[i]);
    }
  }
}

TEST(SweepRunnerTest, RepeatedRunsAreIdentical) {
  const std::vector<NetworkSimConfig> points = TestBatch();
  SweepRunner runner(4);
  const std::vector<NetworkSimResult> first = runner.Run(points);
  const std::vector<NetworkSimResult> second = runner.Run(points);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "point=" << i);
    ExpectIdentical(first[i], second[i]);
  }
}

TEST(SweepRunnerTest, EmptyBatch) {
  SweepRunner runner(2);
  EXPECT_TRUE(runner.Run({}).empty());
}

TEST(SweepRunnerTest, MoreThreadsThanPoints) {
  std::vector<NetworkSimConfig> points = TestBatch();
  points.resize(2);
  const NetworkSimResult serial0 = RunNetworkSim(points[0]);
  SweepRunner runner(8);
  const std::vector<NetworkSimResult> results = runner.Run(points);
  ASSERT_EQ(results.size(), 2u);
  ExpectIdentical(serial0, results[0]);
}

TEST(SweepRunnerTest, ProgressCallbackCountsEveryPoint) {
  const std::vector<NetworkSimConfig> points = TestBatch();
  SweepRunner runner(3);
  std::size_t calls = 0;
  std::size_t last_done = 0;
  // Called under the runner's lock, so plain variables are safe here.
  runner.SetProgress([&](std::size_t done, std::size_t total) {
    ++calls;
    last_done = done;
    EXPECT_EQ(total, points.size());
  });
  runner.Run(points);
  EXPECT_EQ(calls, points.size());
  EXPECT_EQ(last_done, points.size());
}

// A point whose config is invalid throws SimError inside a worker. The
// batch must still complete: the bad slot comes back as
// kInvariantViolation with the message, every other slot matches the
// serial run bit for bit, and the pool stays usable for another batch.
TEST(SweepRunnerTest, ThrowingPointDoesNotWedgeThePool) {
  std::vector<NetworkSimConfig> points = TestBatch();
  const std::size_t bad = points.size() / 2;
  points[bad].injection_rate = 2.0;  // ValidateNetworkSimConfig throws

  std::vector<NetworkSimResult> serial;
  for (std::size_t i = 0; i < points.size(); ++i) {
    serial.push_back(i == bad ? NetworkSimResult{}
                              : RunNetworkSim(points[i]));
  }

  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    SweepRunner runner(threads);
    const std::vector<NetworkSimResult> results = runner.Run(points);
    ASSERT_EQ(results.size(), points.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "point=" << i);
      if (i == bad) {
        EXPECT_EQ(results[i].outcome.status, SimStatus::kInvariantViolation);
        EXPECT_NE(results[i].outcome.message.find("injection_rate"),
                  std::string::npos)
            << results[i].outcome.message;
      } else {
        ExpectIdentical(serial[i], results[i]);
      }
    }

    // The pool survived the exception and accepts further batches.
    std::vector<NetworkSimConfig> good(points.begin(), points.begin() + 2);
    const std::vector<NetworkSimResult> again = runner.Run(good);
    ASSERT_EQ(again.size(), 2u);
    ExpectIdentical(serial[0], again[0]);
  }
}

TEST(ResolveThreadCountTest, ExplicitRequestWins) {
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(5), 5);
}

TEST(ResolveThreadCountTest, AutoIsPositive) {
  EXPECT_GE(ResolveThreadCount(0), 1);
}

TEST(ResolveThreadCountTest, EnvOverridesAuto) {
  ASSERT_EQ(setenv("VIXNOC_THREADS", "3", 1), 0);
  EXPECT_EQ(ResolveThreadCount(0), 3);
  // Explicit request still beats the environment.
  EXPECT_EQ(ResolveThreadCount(2), 2);
  // Garbage and non-positive values fall back to hardware concurrency.
  ASSERT_EQ(setenv("VIXNOC_THREADS", "bogus", 1), 0);
  EXPECT_GE(ResolveThreadCount(0), 1);
  ASSERT_EQ(setenv("VIXNOC_THREADS", "0", 1), 0);
  EXPECT_GE(ResolveThreadCount(0), 1);
  ASSERT_EQ(unsetenv("VIXNOC_THREADS"), 0);
}

// Every malformed form of VIXNOC_THREADS is rejected (with a warning on
// stderr, not silently), falling back to hardware concurrency; huge
// values are capped rather than spawning an unbounded pool.
TEST(ResolveThreadCountTest, MalformedEnvFormsAreRejected) {
  const int fallback = []() {
    unsetenv("VIXNOC_THREADS");
    return ResolveThreadCount(0);
  }();

  // Trailing garbage after a valid prefix: "12abc" must NOT become 12.
  ASSERT_EQ(setenv("VIXNOC_THREADS", "12abc", 1), 0);
  EXPECT_EQ(ResolveThreadCount(0), fallback);
  ASSERT_EQ(setenv("VIXNOC_THREADS", "3 ", 1), 0);
  EXPECT_EQ(ResolveThreadCount(0), fallback);
  ASSERT_EQ(setenv("VIXNOC_THREADS", "2.5", 1), 0);
  EXPECT_EQ(ResolveThreadCount(0), fallback);
  // Negative and zero are not thread counts.
  ASSERT_EQ(setenv("VIXNOC_THREADS", "-4", 1), 0);
  EXPECT_EQ(ResolveThreadCount(0), fallback);
  ASSERT_EQ(setenv("VIXNOC_THREADS", "-0", 1), 0);
  EXPECT_EQ(ResolveThreadCount(0), fallback);
  // Empty string behaves as unset.
  ASSERT_EQ(setenv("VIXNOC_THREADS", "", 1), 0);
  EXPECT_EQ(ResolveThreadCount(0), fallback);
  ASSERT_EQ(unsetenv("VIXNOC_THREADS"), 0);
}

TEST(ResolveThreadCountTest, OversizedValuesAreCapped) {
  // Larger than the sanity cap but representable.
  ASSERT_EQ(setenv("VIXNOC_THREADS", "99999", 1), 0);
  EXPECT_EQ(ResolveThreadCount(0), kMaxThreadCount);
  // Overflows long: strtol saturates with ERANGE; still capped.
  ASSERT_EQ(setenv("VIXNOC_THREADS",
                   "99999999999999999999999999999999", 1), 0);
  EXPECT_EQ(ResolveThreadCount(0), kMaxThreadCount);
  ASSERT_EQ(unsetenv("VIXNOC_THREADS"), 0);
  // The cap also applies to explicit requests.
  EXPECT_EQ(ResolveThreadCount(kMaxThreadCount + 1), kMaxThreadCount);
}

// A corrupt store entry must be re-run (with a warning naming the file)
// and counted in defective_cache_points(), never silently treated as a
// miss. Valid entries keep resuming. Unlike TestBatch(), these configs
// carry no topology_factory: the content-addressed store only caches
// configs whose result key is unambiguous, and a factory's key records
// presence alone.
TEST(SweepRunnerTest, DefectiveCacheEntriesAreCountedAndRerun) {
  std::vector<NetworkSimConfig> points;
  for (int i = 0; i < 5; ++i) {
    NetworkSimConfig c;
    c.scheme = AllocScheme::kVix;
    c.injection_rate = 0.04 + 0.02 * i;
    c.warmup = 300;
    c.measure = 900;
    c.drain = 300;
    points.push_back(c);
  }
  const std::string dir = testing::TempDir() + "vixnoc_sweep_defective_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);

  auto store = std::make_shared<ResultStore>(dir);
  SweepRunner runner(2);
  runner.SetCache(store);
  const std::vector<NetworkSimResult> first = runner.Run(points);
  EXPECT_EQ(runner.defective_cache_points(), 0u);

  // Corrupt one entry (truncate) and garbage another (bad magic).
  {
    std::ofstream trunc(store->EntryPath(points[1]),
                        std::ios::binary | std::ios::trunc);
    trunc << "vix";
  }
  {
    std::ofstream garbage(store->EntryPath(points[3]),
                          std::ios::binary | std::ios::trunc);
    garbage << std::string(256, 'Z');
  }

  const std::vector<NetworkSimResult> second = runner.Run(points);
  EXPECT_EQ(runner.defective_cache_points(), 2u);
  EXPECT_EQ(runner.resumed_points(), points.size() - 2);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < second.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "point=" << i);
    ExpectIdentical(first[i], second[i]);
  }

  // The re-run repaired the store in place (defective entries are
  // unlinked on detection so the recompute's Put rewrites them); a third
  // run resumes fully and the defective counter resets per Run().
  const std::vector<NetworkSimResult> third = runner.Run(points);
  EXPECT_EQ(runner.defective_cache_points(), 0u);
  EXPECT_EQ(runner.resumed_points(), points.size());
  ASSERT_EQ(third.size(), first.size());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace vixnoc
