// Atomic vs non-atomic VC reallocation (RouterConfig::atomic_vc_alloc).
#include <gtest/gtest.h>

#include "sim/network_sim.hpp"

namespace vixnoc {
namespace {

NetworkSimConfig Config(bool atomic, double rate) {
  NetworkSimConfig c;
  c.atomic_vc_alloc = atomic;
  c.injection_rate = rate;
  c.warmup = 2'000;
  c.measure = 8'000;
  c.drain = 2'000;
  return c;
}

TEST(AtomicVc, ConservationHolds) {
  // Atomic reallocation must not lose or duplicate packets.
  const auto r = RunNetworkSim(Config(true, 0.06));
  EXPECT_NEAR(r.accepted_ppc, 0.06, 0.005);
  EXPECT_FALSE(r.saturated);
}

TEST(AtomicVc, ReducesSaturationThroughput) {
  // Waiting for a VC to fully drain before reallocating wastes buffer
  // turnaround: atomic must not outperform non-atomic.
  const auto atomic = RunNetworkSim(Config(true, 0.25));
  const auto nonatomic = RunNetworkSim(Config(false, 0.25));
  EXPECT_LE(atomic.accepted_ppc, nonatomic.accepted_ppc * 1.01);
  EXPECT_GT(atomic.accepted_ppc, nonatomic.accepted_ppc * 0.5);
}

TEST(AtomicVc, ZeroLoadLatencyUnchanged) {
  // With no contention a VC is always empty when requested, so the policy
  // cannot matter at zero load.
  const auto atomic = RunNetworkSim(Config(true, 0.01));
  const auto nonatomic = RunNetworkSim(Config(false, 0.01));
  EXPECT_NEAR(atomic.avg_latency, nonatomic.avg_latency, 0.5);
}

TEST(AtomicVc, WorksUnderVix) {
  auto c = Config(true, 0.25);
  c.scheme = AllocScheme::kVix;
  const auto vix_atomic = RunNetworkSim(c);
  c.scheme = AllocScheme::kInputFirst;
  const auto if_atomic = RunNetworkSim(c);
  EXPECT_GT(vix_atomic.accepted_ppc, if_atomic.accepted_ppc * 1.05);
}

}  // namespace
}  // namespace vixnoc
