#include <gtest/gtest.h>

#include <vector>

#include "arbiter/arbiter.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace vixnoc {
namespace {

BitWords Req(std::initializer_list<int> set, int n) {
  BitWords r(n);
  for (int i : set) r.Set(i);
  return r;
}

BitWords AllSet(int n) {
  BitWords r(n);
  r.SetAll();
  return r;
}

TEST(RoundRobin, NoRequestsReturnsMinusOne) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.Pick(BitWords(4)), -1);
}

TEST(RoundRobin, SingleRequestWins) {
  RoundRobinArbiter arb(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(arb.Pick(Req({i}, 4)), i);
  }
}

TEST(RoundRobin, PickDoesNotAdvanceState) {
  RoundRobinArbiter arb(4);
  const auto reqs = Req({1, 2}, 4);
  EXPECT_EQ(arb.Pick(reqs), 1);
  EXPECT_EQ(arb.Pick(reqs), 1);  // no Commit: same winner
}

TEST(RoundRobin, CommitRotatesPriority) {
  RoundRobinArbiter arb(4);
  const auto reqs = Req({1, 2}, 4);
  EXPECT_EQ(arb.Pick(reqs), 1);
  arb.Commit(1);
  EXPECT_EQ(arb.Pick(reqs), 2);  // priority now starts at 2
  arb.Commit(2);
  EXPECT_EQ(arb.Pick(reqs), 1);  // wraps around past 3, 0
}

TEST(RoundRobin, FairUnderFullContention) {
  RoundRobinArbiter arb(5);
  std::vector<int> wins(5, 0);
  const BitWords all = AllSet(5);
  for (int t = 0; t < 500; ++t) {
    const int w = arb.Pick(all);
    ASSERT_GE(w, 0);
    ++wins[w];
    arb.Commit(w);
  }
  for (int w : wins) EXPECT_EQ(w, 100);
}

TEST(RoundRobin, ResetRestoresInitialPriority) {
  RoundRobinArbiter arb(3);
  arb.Commit(1);
  arb.Reset();
  EXPECT_EQ(arb.Pick(Req({0, 2}, 3)), 0);
}

TEST(Matrix, NoRequestsReturnsMinusOne) {
  MatrixArbiter arb(4);
  EXPECT_EQ(arb.Pick(BitWords(4)), -1);
}

TEST(Matrix, InitialOrderIsByIndex) {
  MatrixArbiter arb(4);
  EXPECT_EQ(arb.Pick(Req({1, 3}, 4)), 1);
}

TEST(Matrix, WinnerBecomesLeastPriority) {
  MatrixArbiter arb(3);
  const BitWords all = AllSet(3);
  EXPECT_EQ(arb.Pick(all), 0);
  arb.Commit(0);
  EXPECT_EQ(arb.Pick(all), 1);
  arb.Commit(1);
  EXPECT_EQ(arb.Pick(all), 2);
  arb.Commit(2);
  EXPECT_EQ(arb.Pick(all), 0);  // least-recently-granted wins again
}

TEST(Matrix, LeastRecentlyGrantedProperty) {
  MatrixArbiter arb(4);
  // Grant 2, then 0; among {0, 2}, 2 was granted longer ago... but 0 more
  // recently, so 2 must win.
  arb.Commit(2);
  arb.Commit(0);
  EXPECT_EQ(arb.Pick(Req({0, 2}, 4)), 2);
}

TEST(Matrix, CommitDemotesWinnerBelowEveryOtherRequester) {
  // After Commit(w), w must lose every pairwise contest — the matrix clears
  // w's entire priority row, not just the bit against the runner-up.
  const int n = 5;
  for (int w = 0; w < n; ++w) {
    MatrixArbiter arb(n);
    arb.Commit(w);
    for (int other = 0; other < n; ++other) {
      if (other == w) continue;
      EXPECT_EQ(arb.Pick(Req({w, other}, n)), other)
          << "after Commit(" << w << "), " << w << " still beats " << other;
    }
  }
}

TEST(Matrix, StarvationFreeOverFullRotation) {
  // Under persistent full contention every requester must win within one
  // n-grant rotation: LRG priority means a waiting requester climbs one rank
  // per grant it loses, so its wait can never exceed n - 1 grants.
  const int n = 6;
  MatrixArbiter arb(n);
  const BitWords all = AllSet(n);
  std::vector<int> waiting(n, 0);
  for (int t = 0; t < 600; ++t) {
    const int w = arb.Pick(all);
    ASSERT_GE(w, 0);
    for (int i = 0; i < n; ++i) {
      if (i == w) {
        waiting[i] = 0;
      } else {
        ++waiting[i];
        EXPECT_LE(waiting[i], n - 1) << "requester " << i << " starved at " << t;
      }
    }
    arb.Commit(w);
  }
}

TEST(Matrix, AgreesWithRoundRobinOnSingleRequesterInputs) {
  // With exactly one bit set there is nothing to arbitrate: both policies
  // must return that bit and committing it must not change this.
  const int n = 4;
  MatrixArbiter matrix(n);
  RoundRobinArbiter rr(n);
  Rng rng(29);
  for (int t = 0; t < 200; ++t) {
    const int i = static_cast<int>(rng.NextBounded(n));
    const auto reqs = Req({i}, n);
    const int mw = matrix.Pick(reqs);
    const int rw = rr.Pick(reqs);
    EXPECT_EQ(mw, i);
    EXPECT_EQ(mw, rw);
    matrix.Commit(mw);
    rr.Commit(rw);
  }
}

TEST(Matrix, FairUnderFullContention) {
  MatrixArbiter arb(6);
  std::vector<int> wins(6, 0);
  const BitWords all = AllSet(6);
  for (int t = 0; t < 600; ++t) {
    const int w = arb.Pick(all);
    ++wins[w];
    arb.Commit(w);
  }
  for (int w : wins) EXPECT_EQ(w, 100);
}

class ArbiterKindTest : public ::testing::TestWithParam<ArbiterKind> {};

TEST_P(ArbiterKindTest, GrantAlwaysAmongRequests) {
  auto arb = MakeArbiter(GetParam(), 8);
  Rng rng(13);
  for (int t = 0; t < 2000; ++t) {
    BitWords reqs(8);
    bool any = false;
    for (int i = 0; i < 8; ++i) {
      const bool bit = rng.NextBool(0.3);
      reqs.Assign(i, bit);
      any |= bit;
    }
    const int w = arb->Pick(reqs);
    if (!any) {
      EXPECT_EQ(w, -1);
    } else {
      ASSERT_GE(w, 0);
      ASSERT_LT(w, 8);
      EXPECT_TRUE(reqs.Test(w));
      arb->Commit(w);
    }
  }
}

TEST_P(ArbiterKindTest, NoStarvationUnderPartialContention) {
  auto arb = MakeArbiter(GetParam(), 4);
  // Requester 3 always requests alongside 0 and 1; it must win regularly.
  int wins3 = 0;
  for (int t = 0; t < 300; ++t) {
    const int w = arb->Pick(Req({0, 1, 3}, 4));
    if (w == 3) ++wins3;
    arb->Commit(w);
  }
  EXPECT_EQ(wins3, 100);
}

TEST_P(ArbiterKindTest, SizeOneAlwaysGrantsZero) {
  auto arb = MakeArbiter(GetParam(), 1);
  EXPECT_EQ(arb->Pick(AllSet(1)), 0);
  arb->Commit(0);
  EXPECT_EQ(arb->Pick(AllSet(1)), 0);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ArbiterKindTest,
                         ::testing::Values(ArbiterKind::kRoundRobin,
                                           ArbiterKind::kMatrix));

TEST(MakeArbiter, UnknownKindThrowsSimError) {
  // A corrupted kind must surface as a recoverable SimError (so sweep drivers
  // can mark the point failed), not a process abort.
  EXPECT_THROW(MakeArbiter(static_cast<ArbiterKind>(99), 4), SimError);
}

}  // namespace
}  // namespace vixnoc
