#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <tuple>
#include <vector>

#include "alloc/augmenting_path.hpp"
#include "alloc/packet_chaining.hpp"
#include "alloc/separable.hpp"
#include "alloc/switch_allocator.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace vixnoc {
namespace {

SwitchGeometry Geom(int ports, int vcs, int vins) {
  SwitchGeometry g;
  g.num_inports = ports;
  g.num_outports = ports;
  g.num_vcs = vcs;
  g.num_vins = vins;
  return g;
}

SwitchGeometry GeomFor(AllocScheme scheme, int ports, int vcs) {
  return Geom(ports, vcs, VirtualInputsForScheme(scheme, vcs));
}

// ---------------------------------------------------------------------------
// Geometry basics
// ---------------------------------------------------------------------------

TEST(Geometry, VinOfVcPartitionsContiguously) {
  const SwitchGeometry g = Geom(5, 6, 2);
  EXPECT_EQ(g.VcsPerVin(), 3);
  EXPECT_EQ(g.VinOfVc(0), 0);
  EXPECT_EQ(g.VinOfVc(2), 0);
  EXPECT_EQ(g.VinOfVc(3), 1);
  EXPECT_EQ(g.VinOfVc(5), 1);
  EXPECT_EQ(g.NumCrossbarInputs(), 10);
}

TEST(Geometry, ValidityChecks) {
  EXPECT_TRUE(Geom(5, 6, 1).Valid());
  EXPECT_TRUE(Geom(5, 6, 2).Valid());
  EXPECT_TRUE(Geom(5, 6, 6).Valid());
  EXPECT_FALSE(Geom(5, 6, 4).Valid());  // 6 % 4 != 0
  EXPECT_FALSE(Geom(0, 6, 1).Valid());
  EXPECT_FALSE(Geom(5, 6, 7).Valid());  // more vins than vcs
}

TEST(Geometry, VirtualInputsForScheme) {
  EXPECT_EQ(VirtualInputsForScheme(AllocScheme::kInputFirst, 6), 1);
  EXPECT_EQ(VirtualInputsForScheme(AllocScheme::kWavefront, 6), 1);
  EXPECT_EQ(VirtualInputsForScheme(AllocScheme::kAugmentingPath, 6), 1);
  EXPECT_EQ(VirtualInputsForScheme(AllocScheme::kPacketChaining, 6), 1);
  EXPECT_EQ(VirtualInputsForScheme(AllocScheme::kVix, 6), 2);
  EXPECT_EQ(VirtualInputsForScheme(AllocScheme::kVixIdeal, 6), 6);
}

// ---------------------------------------------------------------------------
// Separable input-first: baseline behaviour
// ---------------------------------------------------------------------------

TEST(SeparableIF, SingleRequestGranted) {
  auto alloc = MakeSwitchAllocator(AllocScheme::kInputFirst, Geom(5, 6, 1));
  std::vector<SaGrant> grants;
  alloc->Allocate({{0, 2, 3}}, &grants);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].in_port, 0);
  EXPECT_EQ(grants[0].vc, 2);
  EXPECT_EQ(grants[0].out_port, 3);
  EXPECT_EQ(grants[0].vin, 0);
}

TEST(SeparableIF, TwoInputsSameOutputOneGrant) {
  auto alloc = MakeSwitchAllocator(AllocScheme::kInputFirst, Geom(5, 6, 1));
  std::vector<SaGrant> grants;
  alloc->Allocate({{0, 0, 4}, {1, 0, 4}}, &grants);
  EXPECT_EQ(grants.size(), 1u);
}

TEST(SeparableIF, InputPortConstraintOneFlitPerPort) {
  // The paper's second problem: two VCs of one input port requesting two
  // different outputs — the baseline can only serve one per cycle.
  auto alloc = MakeSwitchAllocator(AllocScheme::kInputFirst, Geom(5, 4, 1));
  std::vector<SaGrant> grants;
  alloc->Allocate({{0, 0, 1}, {0, 2, 3}}, &grants);
  EXPECT_EQ(grants.size(), 1u);
}

TEST(SeparableIF, DisjointRequestsAllGranted) {
  auto alloc = MakeSwitchAllocator(AllocScheme::kInputFirst, Geom(5, 6, 1));
  std::vector<SaGrant> grants;
  alloc->Allocate({{0, 0, 1}, {1, 0, 2}, {2, 0, 3}, {3, 0, 4}, {4, 0, 0}},
                  &grants);
  EXPECT_EQ(grants.size(), 5u);
}

TEST(SeparableIF, ContendersAlternateOverCycles) {
  auto alloc = MakeSwitchAllocator(AllocScheme::kInputFirst, Geom(5, 6, 1));
  std::vector<SaGrant> grants;
  std::map<PortId, int> wins;
  for (int t = 0; t < 100; ++t) {
    alloc->Allocate({{0, 0, 4}, {1, 0, 4}}, &grants);
    ASSERT_EQ(grants.size(), 1u);
    ++wins[grants[0].in_port];
  }
  EXPECT_EQ(wins[0], 50);
  EXPECT_EQ(wins[1], 50);
}

// ---------------------------------------------------------------------------
// VIX: the paper's two motivating scenarios
// ---------------------------------------------------------------------------

TEST(Vix, Fig4TwoFlitsFromOneInputPort) {
  // 5-port mesh router, 4 VCs, 1:2 VIX: sub-groups {VC0,VC1} and {VC2,VC3}.
  // West port holds a packet in VC0 for Local and one in VC2 for East.
  // With virtual inputs both transfer in the same cycle.
  auto alloc = MakeSwitchAllocator(AllocScheme::kVix, Geom(5, 4, 2));
  std::vector<SaGrant> grants;
  alloc->Allocate({{1, 0, 4}, {1, 2, 0}}, &grants);
  EXPECT_EQ(grants.size(), 2u);
}

TEST(Vix, Fig4BaselineTransfersOnlyOne) {
  auto alloc = MakeSwitchAllocator(AllocScheme::kInputFirst, Geom(5, 4, 1));
  std::vector<SaGrant> grants;
  alloc->Allocate({{1, 0, 4}, {1, 2, 0}}, &grants);
  EXPECT_EQ(grants.size(), 1u);
}

TEST(Vix, SameSubgroupStillConstrained) {
  // Two VCs in the SAME sub-group share one crossbar input: only one grant.
  auto alloc = MakeSwitchAllocator(AllocScheme::kVix, Geom(5, 4, 2));
  std::vector<SaGrant> grants;
  alloc->Allocate({{1, 0, 4}, {1, 1, 0}}, &grants);
  EXPECT_EQ(grants.size(), 1u);
}

TEST(Vix, Fig5ExposesMoreRequestsForBetterMatching) {
  // South port has VCs requesting East (VC0, sub-group 0) and North (VC2,
  // sub-group 1); West requests East. Baseline separable can pick East at
  // both ports and transfer one flit; VIX transfers three when West->East,
  // South->North, and the third South VC all line up. We verify VIX serves
  // East + North + one more distinct output in one cycle.
  auto alloc = MakeSwitchAllocator(AllocScheme::kVix, Geom(5, 4, 2));
  std::vector<SaGrant> grants;
  // Ports: 0=E,1=W,2=N,3=S,4=L (numbering irrelevant to the allocator).
  alloc->Allocate({{1, 0, 0},    // West VC0 -> East
                   {3, 0, 0},    // South VC0 -> East (conflicts with West)
                   {3, 2, 2}},   // South VC2 -> North (different sub-group)
                  &grants);
  // East granted once, North granted once: 2 or 3 total (West and South
  // VC0 conflict on East; only one wins).
  ASSERT_EQ(grants.size(), 2u);
  bool east = false, north = false;
  for (const auto& g : grants) {
    east |= g.out_port == 0;
    north |= g.out_port == 2;
  }
  EXPECT_TRUE(east);
  EXPECT_TRUE(north);
}

TEST(Vix, GrantVinMatchesVcSubgroup) {
  auto alloc = MakeSwitchAllocator(AllocScheme::kVix, Geom(5, 6, 2));
  std::vector<SaGrant> grants;
  alloc->Allocate({{2, 4, 1}}, &grants);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].vin, 1);  // vc 4 of 6 with 2 sub-groups -> group 1
}

TEST(Vix, InterleavedMappingAssignsVinByParity) {
  SwitchGeometry g = Geom(5, 6, 2);
  g.interleaved_vins = true;
  EXPECT_EQ(g.VinOfVc(0), 0);
  EXPECT_EQ(g.VinOfVc(1), 1);
  EXPECT_EQ(g.VinOfVc(4), 0);
  EXPECT_EQ(g.VcOf(1, 2), 5);  // sub 2 of odd group
  EXPECT_EQ(g.SubIndexOfVc(5), 2);

  auto alloc = MakeSwitchAllocator(AllocScheme::kVix, g);
  std::vector<SaGrant> grants;
  // VCs 0 (vin 0) and 1 (vin 1) of one port, distinct outputs: both
  // transmit — under the contiguous wiring they would share vin 0.
  alloc->Allocate({{0, 0, 1}, {0, 1, 3}}, &grants);
  EXPECT_EQ(grants.size(), 2u);
  ASSERT_TRUE(GrantsAreLegal(g, {{0, 0, 1}, {0, 1, 3}}, grants));
}

TEST(Vix, InterleavedLegalOnRandomMatrices) {
  SwitchGeometry g = Geom(5, 6, 2);
  g.interleaved_vins = true;
  auto alloc = MakeSwitchAllocator(AllocScheme::kVix, g);
  Rng rng(77);
  std::vector<SaGrant> grants;
  for (int t = 0; t < 400; ++t) {
    std::vector<SaRequest> reqs;
    for (PortId in = 0; in < 5; ++in) {
      for (VcId vc = 0; vc < 6; ++vc) {
        if (rng.NextBool(0.5)) {
          reqs.push_back({in, vc, static_cast<PortId>(rng.NextBounded(5))});
        }
      }
    }
    alloc->Allocate(reqs, &grants);
    ASSERT_TRUE(GrantsAreLegal(g, reqs, grants)) << "cycle " << t;
  }
}

TEST(VixIdeal, AllDistinctOutputsServed) {
  // With one virtual input per VC there is no input constraint at all:
  // every requested output is granted.
  auto alloc = MakeSwitchAllocator(AllocScheme::kVixIdeal, Geom(5, 6, 6));
  std::vector<SaGrant> grants;
  alloc->Allocate({{0, 0, 0}, {0, 1, 1}, {0, 2, 2}, {0, 3, 3}, {0, 4, 4}},
                  &grants);
  EXPECT_EQ(grants.size(), 5u);
}

// ---------------------------------------------------------------------------
// Wavefront
// ---------------------------------------------------------------------------

TEST(Wavefront, SingleRequestGranted) {
  auto alloc = MakeSwitchAllocator(AllocScheme::kWavefront, Geom(5, 6, 1));
  std::vector<SaGrant> grants;
  alloc->Allocate({{3, 1, 2}}, &grants);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].in_port, 3);
  EXPECT_EQ(grants[0].out_port, 2);
}

TEST(Wavefront, ProducesMaximalMatching) {
  auto alloc = MakeSwitchAllocator(AllocScheme::kWavefront, Geom(6, 4, 1));
  Rng rng(99);
  std::vector<SaGrant> grants;
  for (int t = 0; t < 500; ++t) {
    std::vector<SaRequest> reqs;
    std::vector<std::vector<bool>> matrix(6, std::vector<bool>(6, false));
    for (PortId in = 0; in < 6; ++in) {
      for (VcId vc = 0; vc < 4; ++vc) {
        if (rng.NextBool(0.3)) {
          const auto out = static_cast<PortId>(rng.NextBounded(6));
          reqs.push_back({in, vc, out});
          matrix[in][out] = true;
          break;  // one request per VC; keep at most one VC per port here
        }
      }
    }
    alloc->Allocate(reqs, &grants);
    ASSERT_TRUE(GrantsAreLegal(alloc->geometry(), reqs, grants));
    // Maximality: no (in, out) pair with a request where both sides are free.
    std::vector<bool> in_used(6, false), out_used(6, false);
    for (const auto& g : grants) {
      in_used[g.in_port] = true;
      out_used[g.out_port] = true;
    }
    for (int in = 0; in < 6; ++in) {
      for (int out = 0; out < 6; ++out) {
        if (matrix[in][out]) {
          EXPECT_TRUE(in_used[in] || out_used[out])
              << "non-maximal at (" << in << "," << out << ")";
        }
      }
    }
  }
}

TEST(Wavefront, RotatingDiagonalIsFair) {
  auto alloc = MakeSwitchAllocator(AllocScheme::kWavefront, Geom(4, 2, 1));
  std::vector<SaGrant> grants;
  std::map<PortId, int> wins;
  for (int t = 0; t < 400; ++t) {
    alloc->Allocate({{0, 0, 2}, {1, 0, 2}, {2, 0, 2}, {3, 0, 2}}, &grants);
    ASSERT_EQ(grants.size(), 1u);
    ++wins[grants[0].in_port];
  }
  for (int in = 0; in < 4; ++in) {
    EXPECT_EQ(wins[in], 100) << "input " << in;
  }
}

// ---------------------------------------------------------------------------
// Augmenting path: maximum matching
// ---------------------------------------------------------------------------

int BruteForceMaxMatching(const std::vector<std::vector<bool>>& m) {
  const int n = static_cast<int>(m.size());
  int best = 0;
  std::vector<int> perm;  // try all assignments via DFS
  std::vector<bool> out_used(n, false);
  std::function<void(int, int)> go = [&](int in, int matched) {
    best = std::max(best, matched);
    if (in == n) return;
    go(in + 1, matched);  // leave input unmatched
    for (int out = 0; out < n; ++out) {
      if (m[in][out] && !out_used[out]) {
        out_used[out] = true;
        go(in + 1, matched + 1);
        out_used[out] = false;
      }
    }
  };
  go(0, 0);
  return best;
}

TEST(AugmentingPath, MatchesBruteForceMaximum) {
  auto alloc =
      MakeSwitchAllocator(AllocScheme::kAugmentingPath, Geom(5, 3, 1));
  Rng rng(5);
  std::vector<SaGrant> grants;
  for (int t = 0; t < 300; ++t) {
    std::vector<SaRequest> reqs;
    std::vector<std::vector<bool>> matrix(5, std::vector<bool>(5, false));
    for (PortId in = 0; in < 5; ++in) {
      for (VcId vc = 0; vc < 3; ++vc) {
        if (rng.NextBool(0.4)) {
          const auto out = static_cast<PortId>(rng.NextBounded(5));
          reqs.push_back({in, vc, out});
          matrix[in][out] = true;
        }
      }
    }
    alloc->Allocate(reqs, &grants);
    ASSERT_TRUE(GrantsAreLegal(alloc->geometry(), reqs, grants));
    EXPECT_EQ(static_cast<int>(grants.size()),
              BruteForceMaxMatching(matrix));
  }
}

TEST(AugmentingPath, AugmentsThroughConflict) {
  // in0 can reach {0,1}, in1 only {0}: greedy in0->0 must be augmented to
  // in0->1, in1->0 for the maximum matching of 2.
  auto alloc =
      MakeSwitchAllocator(AllocScheme::kAugmentingPath, Geom(5, 6, 1));
  std::vector<SaGrant> grants;
  alloc->Allocate({{0, 0, 0}, {0, 1, 1}, {1, 0, 0}}, &grants);
  EXPECT_EQ(grants.size(), 2u);
}

TEST(AugmentingPath, DeterministicallyFavorsLowInputs) {
  // The paper's unfairness mechanism: with a fixed exploration order, the
  // lower-indexed input always wins a persistent tie.
  auto alloc =
      MakeSwitchAllocator(AllocScheme::kAugmentingPath, Geom(5, 6, 1));
  std::vector<SaGrant> grants;
  for (int t = 0; t < 50; ++t) {
    alloc->Allocate({{1, 0, 3}, {4, 0, 3}}, &grants);
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].in_port, 1);
  }
}

TEST(AugmentingPath, DefaultWorkBoundNeverTripsOnDenseMatrices) {
  // The default bound is P^2 * (P + 1), above Kuhn's worst case, so even
  // an all-ones request matrix (the probe-heaviest input) must allocate.
  auto alloc =
      MakeSwitchAllocator(AllocScheme::kAugmentingPath, Geom(16, 2, 1));
  auto* ap = static_cast<AugmentingPathAllocator*>(alloc.get());
  EXPECT_EQ(ap->work_limit(), 16ll * 16 * 17);
  std::vector<SaRequest> reqs;
  for (PortId in = 0; in < 16; ++in) {
    for (PortId out = 0; out < 16; ++out) reqs.push_back({in, 0, out});
  }
  std::vector<SaGrant> grants;
  for (int t = 0; t < 20; ++t) {
    ASSERT_NO_THROW(alloc->Allocate(reqs, &grants));
    EXPECT_EQ(grants.size(), 16u);  // perfect matching exists
  }
}

TEST(AugmentingPath, ExhaustedWorkBoundIsASimErrorNotAHang) {
  auto alloc =
      MakeSwitchAllocator(AllocScheme::kAugmentingPath, Geom(8, 2, 1));
  auto* ap = static_cast<AugmentingPathAllocator*>(alloc.get());
  ap->set_work_limit(3);  // trips on any nontrivial matrix
  std::vector<SaRequest> reqs;
  for (PortId in = 0; in < 8; ++in) {
    for (PortId out = 0; out < 8; ++out) reqs.push_back({in, 0, out});
  }
  std::vector<SaGrant> grants;
  try {
    alloc->Allocate(reqs, &grants);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("work bound"), std::string::npos) << msg;
  }
}

TEST(AugmentingPath, VcSelectionRotates) {
  auto alloc =
      MakeSwitchAllocator(AllocScheme::kAugmentingPath, Geom(5, 4, 1));
  std::vector<SaGrant> grants;
  std::map<VcId, int> wins;
  for (int t = 0; t < 200; ++t) {
    alloc->Allocate({{0, 0, 2}, {0, 1, 2}}, &grants);
    ASSERT_EQ(grants.size(), 1u);
    ++wins[grants[0].vc];
  }
  EXPECT_EQ(wins[0], 100);
  EXPECT_EQ(wins[1], 100);
}

// ---------------------------------------------------------------------------
// Packet chaining
// ---------------------------------------------------------------------------

TEST(PacketChaining, ChainPersistsAcrossCycles) {
  PacketChainingAllocator alloc(Geom(5, 4, 1), ArbiterKind::kRoundRobin);
  std::vector<SaGrant> grants;
  // Cycle 1: in0 wins out2.
  alloc.Allocate({{0, 0, 2}}, &grants);
  ASSERT_EQ(grants.size(), 1u);
  // Cycle 2: in0 and in3 both request out2; the chain keeps in0 connected
  // without arbitration.
  alloc.Allocate({{0, 1, 2}, {3, 0, 2}}, &grants);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].in_port, 0);
  EXPECT_GE(alloc.chained_grants(), 1u);
}

TEST(PacketChaining, AnyVcContinuesChain) {
  PacketChainingAllocator alloc(Geom(5, 4, 1), ArbiterKind::kRoundRobin);
  std::vector<SaGrant> grants;
  alloc.Allocate({{0, 0, 2}}, &grants);
  // A different VC at the same input keeps the chain (SameInput/anyVC).
  alloc.Allocate({{0, 3, 2}}, &grants);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].vc, 3);
}

TEST(PacketChaining, BrokenChainFreesOutput) {
  PacketChainingAllocator alloc(Geom(5, 4, 1), ArbiterKind::kRoundRobin);
  std::vector<SaGrant> grants;
  alloc.Allocate({{0, 0, 2}}, &grants);
  // in0 no longer requests out2: in3 must win it via the separable pass.
  alloc.Allocate({{3, 0, 2}}, &grants);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].in_port, 3);
}

TEST(PacketChaining, ChainedInputSkipsResidualArbitration) {
  PacketChainingAllocator alloc(Geom(5, 4, 1), ArbiterKind::kRoundRobin);
  std::vector<SaGrant> grants;
  alloc.Allocate({{0, 0, 2}}, &grants);
  // in0 requests out2 (chained) and another VC requests out4: the chained
  // input cannot also take out4 (one crossbar input per port).
  alloc.Allocate({{0, 0, 2}, {0, 1, 4}}, &grants);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].out_port, 2);
}

// ---------------------------------------------------------------------------
// Property sweep: legality + ordering across every scheme
// ---------------------------------------------------------------------------

struct SchemeCase {
  AllocScheme scheme;
  int ports;
  int vcs;
};

class AllSchemesTest : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(AllSchemesTest, GrantsAlwaysLegalOnRandomMatrices) {
  const auto [scheme, ports, vcs] = GetParam();
  const SwitchGeometry geom = GeomFor(scheme, ports, vcs);
  auto alloc = MakeSwitchAllocator(scheme, geom);
  Rng rng(static_cast<std::uint64_t>(ports) * 31 + vcs);
  std::vector<SaGrant> grants;
  for (int t = 0; t < 400; ++t) {
    std::vector<SaRequest> reqs;
    for (PortId in = 0; in < ports; ++in) {
      for (VcId vc = 0; vc < vcs; ++vc) {
        if (rng.NextBool(0.5)) {
          reqs.push_back(
              {in, vc, static_cast<PortId>(rng.NextBounded(ports))});
        }
      }
    }
    alloc->Allocate(reqs, &grants);
    ASSERT_TRUE(GrantsAreLegal(geom, reqs, grants)) << "cycle " << t;
  }
}

TEST_P(AllSchemesTest, NoGrantsWithoutRequests) {
  const auto [scheme, ports, vcs] = GetParam();
  auto alloc = MakeSwitchAllocator(scheme, GeomFor(scheme, ports, vcs));
  std::vector<SaGrant> grants{{0, 0, 0, 0}};  // stale content must be cleared
  alloc->Allocate({}, &grants);
  EXPECT_TRUE(grants.empty());
}

TEST_P(AllSchemesTest, ResetIsIdempotentAndRestoresDeterminism) {
  const auto [scheme, ports, vcs] = GetParam();
  auto alloc = MakeSwitchAllocator(scheme, GeomFor(scheme, ports, vcs));
  std::vector<SaRequest> reqs{{0, 0, 1}, {1, 0, 1}, {2, 0, 0}};
  std::vector<SaGrant> first, replay;
  alloc->Allocate(reqs, &first);
  alloc->Allocate(reqs, &replay);  // state may have advanced
  alloc->Reset();
  std::vector<SaGrant> after_reset;
  alloc->Allocate(reqs, &after_reset);
  ASSERT_EQ(first.size(), after_reset.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].in_port, after_reset[i].in_port);
    EXPECT_EQ(first[i].vc, after_reset[i].vc);
    EXPECT_EQ(first[i].out_port, after_reset[i].out_port);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllSchemesTest,
    ::testing::Values(
        SchemeCase{AllocScheme::kInputFirst, 5, 6},
        SchemeCase{AllocScheme::kInputFirst, 8, 6},
        SchemeCase{AllocScheme::kInputFirst, 10, 4},
        SchemeCase{AllocScheme::kVix, 5, 6},
        SchemeCase{AllocScheme::kVix, 8, 6},
        SchemeCase{AllocScheme::kVix, 10, 4},
        SchemeCase{AllocScheme::kVixIdeal, 5, 6},
        SchemeCase{AllocScheme::kVixIdeal, 8, 4},
        SchemeCase{AllocScheme::kWavefront, 5, 6},
        SchemeCase{AllocScheme::kWavefront, 10, 6},
        SchemeCase{AllocScheme::kAugmentingPath, 5, 6},
        SchemeCase{AllocScheme::kAugmentingPath, 8, 4},
        SchemeCase{AllocScheme::kPacketChaining, 5, 6},
        SchemeCase{AllocScheme::kPacketChaining, 8, 6},
        SchemeCase{AllocScheme::kIslip, 5, 6},
        SchemeCase{AllocScheme::kIslip, 10, 6}),
    [](const ::testing::TestParamInfo<SchemeCase>& info) {
      std::string name = ToString(info.param.scheme) + "_p" +
                         std::to_string(info.param.ports) + "v" +
                         std::to_string(info.param.vcs);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ---------------------------------------------------------------------------
// Relative matching quality on saturated random matrices
// ---------------------------------------------------------------------------

double SaturatedGrantRate(AllocScheme scheme, int ports, int vcs,
                          std::uint64_t seed) {
  const SwitchGeometry geom = GeomFor(scheme, ports, vcs);
  auto alloc = MakeSwitchAllocator(scheme, geom);
  Rng rng(seed);
  std::vector<SaGrant> grants;
  // Persistent per-VC requests, re-drawn only when granted — models
  // saturated input queues.
  std::vector<PortId> want(static_cast<std::size_t>(ports) * vcs);
  for (auto& w : want) w = static_cast<PortId>(rng.NextBounded(ports));
  std::uint64_t total = 0;
  const int cycles = 3000;
  for (int t = 0; t < cycles; ++t) {
    std::vector<SaRequest> reqs;
    for (PortId in = 0; in < ports; ++in) {
      for (VcId vc = 0; vc < vcs; ++vc) {
        reqs.push_back({in, vc, want[in * vcs + vc]});
      }
    }
    alloc->Allocate(reqs, &grants);
    total += grants.size();
    for (const auto& g : grants) {
      want[g.in_port * vcs + g.vc] =
          static_cast<PortId>(rng.NextBounded(ports));
    }
  }
  return static_cast<double>(total) / cycles;
}

TEST(MatchingQuality, PaperOrderingHoldsAtRadix5) {
  const double ideal = SaturatedGrantRate(AllocScheme::kVixIdeal, 5, 6, 42);
  const double ap = SaturatedGrantRate(AllocScheme::kAugmentingPath, 5, 6, 42);
  const double vix = SaturatedGrantRate(AllocScheme::kVix, 5, 6, 42);
  const double wf = SaturatedGrantRate(AllocScheme::kWavefront, 5, 6, 42);
  const double base = SaturatedGrantRate(AllocScheme::kInputFirst, 5, 6, 42);
  // Fig 7: AP and VIX clearly above IF; both near ideal; WF above IF.
  EXPECT_GT(ap, base * 1.15);
  EXPECT_GT(vix, base * 1.15);
  EXPECT_GT(wf, base * 1.02);
  EXPECT_GT(ideal, base * 1.2);
  EXPECT_LE(vix, ideal * 1.001);
  EXPECT_LE(ap, ideal * 1.001);
}

TEST(MatchingQuality, VixGainGrowsWithRadix) {
  for (int ports : {5, 8, 10}) {
    const double vix = SaturatedGrantRate(AllocScheme::kVix, ports, 6, 7);
    const double base =
        SaturatedGrantRate(AllocScheme::kInputFirst, ports, 6, 7);
    EXPECT_GT(vix, base * 1.1) << "radix " << ports;
  }
}

}  // namespace
}  // namespace vixnoc
