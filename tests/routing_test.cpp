// Routing subsystem: table-driven plugins behind the string-keyed registry,
// route-table properties (minimality, local ejection, acyclic escape
// channel dependencies), config validation, and the adaptive_min arm's
// determinism contracts (threads, process isolation, checkpoint/restore)
// plus its reason to exist: surviving hotspot loads past DOR.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "exec/coordinator.hpp"
#include "routing/adaptive_min.hpp"
#include "routing/dor.hpp"
#include "routing/fault_aware.hpp"
#include "routing/registry.hpp"
#include "sim/sweep.hpp"
#include "topology/topology.hpp"

namespace vixnoc {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct TopoCase {
  const char* label;
  std::function<std::unique_ptr<Topology>()> make;
};

// All topology kinds at several sizes, including odd torus rings (the
// destination-parity tie-break) and both mesh dimension orders.
std::vector<TopoCase> AllTopologies() {
  return {
      {"mesh8x8", [] { return MakeMesh(8, 8); }},
      {"mesh4x4", [] { return MakeMesh(4, 4); }},
      {"mesh4x2", [] { return MakeMesh(4, 2); }},
      {"mesh8x8yx",
       [] { return MakeMesh(8, 8, 1, MeshRouteOrder::kYX); }},
      {"cmesh4x4c4", [] { return MakeMesh(4, 4, 4); }},
      {"fbfly4x4c4", [] { return MakeFlattenedButterfly(4, 4, 4); }},
      {"fbfly3x3c2", [] { return MakeFlattenedButterfly(3, 3, 2); }},
      {"torus8x8", [] { return MakeTorus(8, 8); }},
      {"torus4x4", [] { return MakeTorus(4, 4); }},
      {"torus5x3", [] { return MakeTorus(5, 3); }},
  };
}

// ---------------------------------------------------------------------------
// Route-table properties, every plugin-supported topology and size.

TEST(RouteTables, MinimalPathsAndLocalEjectionEverywhere) {
  for (const TopoCase& tc : AllTopologies()) {
    SCOPED_TRACE(tc.label);
    auto topo = tc.make();
    const DorRouting routing(*topo);
    for (NodeId src = 0; src < topo->NumNodes(); ++src) {
      for (NodeId dst = 0; dst < topo->NumNodes(); ++dst) {
        RouterId at = topo->RouterOfNode(src);
        int hops = 0;
        while (true) {
          const PortId out = routing.Route(at, dst);
          ASSERT_GE(out, 0);
          ASSERT_LT(out, topo->Radix());
          const auto links = topo->LinksFor(at);
          ASSERT_TRUE(links[out].IsConnected());
          if (links[out].IsEjection()) {
            // Local delivery must use the destination's own ejection port.
            ASSERT_EQ(links[out].eject_node, dst);
            ASSERT_EQ(out, topo->EjectPortOfNode(dst));
            break;
          }
          at = links[out].neighbor;
          ASSERT_LE(++hops, 64) << "routing loop " << src << "->" << dst;
        }
        ASSERT_EQ(hops, topo->RouterHops(src, dst))
            << "non-minimal " << src << "->" << dst;
      }
    }
  }
}

// The escape network's channel-dependency graph — channels keyed by
// (router, out_port, AllowedVcRange class) under the dateline state a
// packet actually carries there — must be acyclic on every topology. This
// is the deadlock-freedom order the adaptive arm's escape VCs inherit.
TEST(RouteTables, EscapeChannelDependenciesAreAcyclic) {
  for (const TopoCase& tc : AllTopologies()) {
    SCOPED_TRACE(tc.label);
    auto topo = tc.make();
    const DorRouting routing(*topo);
    const int vpc = 2;  // minimum that exercises the dateline halves
    const int radix = topo->Radix();

    std::map<int, std::vector<int>> edges;
    for (NodeId src = 0; src < topo->NumNodes(); ++src) {
      for (NodeId dst = 0; dst < topo->NumNodes(); ++dst) {
        RouterId at = topo->RouterOfNode(src);
        std::uint8_t state = 0;
        int prev = -1;
        while (true) {
          const PortId out = routing.Route(at, dst);
          const auto links = topo->LinksFor(at);
          if (links[out].IsEjection()) break;  // ejection ends dependency
          const std::uint8_t next = routing.NextDatelineState(at, out, state);
          const VcRange range = routing.AllowedVcRange(out, next, vpc);
          ASSERT_GE(range.lo, 0);
          ASSERT_LT(range.lo, range.hi);
          ASSERT_LE(range.hi, vpc);
          const int chan = (at * radix + out) * vpc + range.lo;
          if (prev >= 0) edges[prev].push_back(chan);
          prev = chan;
          state = next;
          at = links[out].neighbor;
        }
      }
    }

    // Iterative three-color DFS for a cycle.
    std::map<int, int> color;  // 0 unseen / 1 on stack / 2 done
    for (const auto& [start, _] : edges) {
      if (color[start] != 0) continue;
      std::vector<std::pair<int, std::size_t>> stack{{start, 0}};
      color[start] = 1;
      while (!stack.empty()) {
        auto& [node, i] = stack.back();
        const auto it = edges.find(node);
        if (it == edges.end() || i >= it->second.size()) {
          color[node] = 2;
          stack.pop_back();
          continue;
        }
        const int next = it->second[i++];
        ASSERT_NE(color[next], 1)
            << "channel-dependency cycle through channel " << next;
        if (color[next] == 0) {
          color[next] = 1;
          stack.emplace_back(next, 0);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Registry and validation.

TEST(RoutingRegistry, BuildsEveryRegisteredPlugin) {
  auto topo = MakeTopology64(TopologyKind::kMesh);
  for (const std::string& name : RegisteredRoutingNames()) {
    SCOPED_TRACE(name);
    auto algo = MakeRoutingAlgorithm(name, *topo);
    ASSERT_NE(algo, nullptr);
    EXPECT_EQ(algo->Name(), name);
    EXPECT_TRUE(IsRegisteredRouting(name));
  }
  EXPECT_FALSE(IsRegisteredRouting("valiant"));
}

TEST(RoutingRegistry, UnknownNameThrowsListingPlugins) {
  auto topo = MakeTopology64(TopologyKind::kMesh);
  try {
    MakeRoutingAlgorithm("valiant", *topo);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("valiant"), std::string::npos) << msg;
    for (const std::string& name : RegisteredRoutingNames()) {
      EXPECT_NE(msg.find(name), std::string::npos) << msg;
    }
  }
}

TEST(RoutingRegistry, DorAndAdaptiveRejectDeadLinks) {
  auto topo = MakeTopology64(TopologyKind::kMesh);
  RoutingBuildContext ctx;
  ctx.dead_links = {{0, 0}};
  EXPECT_THROW(MakeRoutingAlgorithm("dor", *topo, ctx), SimError);
  EXPECT_THROW(MakeRoutingAlgorithm("adaptive_min", *topo, ctx), SimError);
  EXPECT_NO_THROW(MakeRoutingAlgorithm("fault_aware", *topo, ctx));
}

TEST(RoutingValidation, RejectsUnknownNameListingPlugins) {
  NetworkSimConfig c;
  c.routing = "valiant";
  try {
    ValidateNetworkSimConfig(c);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string msg = e.what();
    for (const std::string& name : RegisteredRoutingNames()) {
      EXPECT_NE(msg.find(name), std::string::npos) << msg;
    }
  }
}

TEST(RoutingValidation, AdaptiveMinNeedsEscapeVcBudget) {
  NetworkSimConfig c;
  c.routing = "adaptive_min";
  c.num_vcs = 1;  // no room for escape + adaptive
  EXPECT_THROW(ValidateNetworkSimConfig(c), SimError);

  NetworkSimConfig torus;
  torus.routing = "adaptive_min";
  torus.topology = TopologyKind::kTorus;
  torus.num_vcs = 2;  // dateline pair alone consumes both
  EXPECT_THROW(ValidateNetworkSimConfig(torus), SimError);
  torus.num_vcs = 3;
  EXPECT_NO_THROW(ValidateNetworkSimConfig(torus));
}

TEST(RoutingValidation, AdaptiveMinRejectsPermanentFaults) {
  NetworkSimConfig c;
  c.routing = "adaptive_min";
  c.faults.forced_link_down = {{0, 0}};
  EXPECT_THROW(ValidateNetworkSimConfig(c), SimError);
  c.routing = "fault_aware";
  EXPECT_NO_THROW(ValidateNetworkSimConfig(c));
}

// ---------------------------------------------------------------------------
// Fingerprints: stable across instances, distinct across algorithms and
// topologies (they guard checkpoint restores).

TEST(RoutingFingerprint, StableAndDiscriminating) {
  auto mesh = MakeTopology64(TopologyKind::kMesh);
  auto torus = MakeTopology64(TopologyKind::kTorus);
  EXPECT_EQ(DorRouting(*mesh).Fingerprint(), DorRouting(*mesh).Fingerprint());
  EXPECT_NE(DorRouting(*mesh).Fingerprint(),
            DorRouting(*torus).Fingerprint());
  EXPECT_NE(DorRouting(*mesh).Fingerprint(),
            AdaptiveMinRouting(*mesh).Fingerprint());
  EXPECT_NE(DorRouting(*mesh).Fingerprint(),
            FaultAwareRouting(*mesh, {}).Fingerprint());
  // YX tables differ from XY tables, so the fingerprints must too.
  auto yx = MakeMesh(8, 8, 1, MeshRouteOrder::kYX);
  EXPECT_NE(DorRouting(*mesh).Fingerprint(), DorRouting(*yx).Fingerprint());
}

// ---------------------------------------------------------------------------
// adaptive_min candidate sets.

TEST(AdaptiveMin, CandidatesAreMinimalWithEscapeLast) {
  for (const TopoCase& tc : AllTopologies()) {
    SCOPED_TRACE(tc.label);
    auto topo = tc.make();
    const AdaptiveMinRouting adaptive(*topo);
    const DorRouting dor(*topo);
    const int vpc = adaptive.MinVcsPerClass();
    for (RouterId r = 0; r < topo->NumRouters(); ++r) {
      for (NodeId dst = 0; dst < topo->NumNodes(); dst += 3) {
        RouteCandidate cands[kMaxRouteCandidates];
        const int n = adaptive.Candidates(r, dst, 0, vpc, cands);
        ASSERT_GE(n, 1);
        ASSERT_LE(n, kMaxRouteCandidates);
        // The escape candidate comes last and follows plain DOR.
        const RouteCandidate& esc = cands[n - 1];
        EXPECT_TRUE(esc.escape);
        EXPECT_EQ(esc.out_port, dor.Route(r, dst));
        const auto links = topo->LinksFor(r);
        // RouterHops takes node ids; the per-candidate minimality check
        // only applies where router id == node id (concentration 1).
        const bool flat = topo->NumNodes() == topo->NumRouters();
        for (int i = 0; i < n; ++i) {
          const RouteCandidate& c = cands[i];
          ASSERT_TRUE(links[c.out_port].IsConnected());
          ASSERT_GE(c.vc_range.lo, 0);
          ASSERT_LT(c.vc_range.lo, c.vc_range.hi);
          ASSERT_LE(c.vc_range.hi, vpc);
          if (i < n - 1) EXPECT_FALSE(c.escape);
          if (links[c.out_port].IsEjection()) {
            EXPECT_EQ(links[c.out_port].eject_node, dst);
            continue;
          }
          // Every candidate is minimal: one hop closer to the destination.
          if (flat) {
            const RouterId next = links[c.out_port].neighbor;
            EXPECT_EQ(topo->RouterHops(static_cast<NodeId>(next), dst) + 1,
                      topo->RouterHops(static_cast<NodeId>(r), dst))
                << "non-minimal candidate " << i << " at router " << r
                << " to " << dst;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// adaptive_min determinism contracts. One shared point set: a hotspot and
// a transpose arm per topology kind that supports the VC budget.

NetworkSimConfig AdaptivePoint(TopologyKind kind, PatternKind pattern,
                               double rate) {
  NetworkSimConfig c;
  c.topology = kind;
  c.routing = "adaptive_min";
  c.pattern = pattern;
  c.injection_rate = rate;
  c.num_vcs = kind == TopologyKind::kTorus ? 6 : 4;
  c.buffer_depth = 5;
  c.packet_size = 4;
  c.warmup = 300;
  c.measure = 1'200;
  c.drain = 1'000;
  c.watchdog_cycles = 800;
  c.seed = 7;
  return c;
}

std::vector<NetworkSimConfig> AdaptivePoints() {
  std::vector<NetworkSimConfig> points;
  for (TopologyKind kind :
       {TopologyKind::kMesh, TopologyKind::kCMesh, TopologyKind::kFBfly,
        TopologyKind::kTorus}) {
    points.push_back(AdaptivePoint(kind, PatternKind::kHotspot, 0.05));
    points.push_back(AdaptivePoint(kind, PatternKind::kTranspose, 0.06));
  }
  return points;
}

void ExpectBitwiseEqual(const NetworkSimResult& a, const NetworkSimResult& b) {
  EXPECT_EQ(a.accepted_ppc, b.accepted_ppc);
  EXPECT_EQ(a.accepted_fpc, b.accepted_fpc);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.avg_net_latency, b.avg_net_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_EQ(a.activity.xbar_traversals, b.activity.xbar_traversals);
  EXPECT_EQ(a.activity.buffer_writes, b.activity.buffer_writes);
  EXPECT_EQ(a.outcome.status, b.outcome.status);
}

TEST(AdaptiveMinDeterminism, IdenticalAtAnyThreadCount) {
  const std::vector<NetworkSimConfig> points = AdaptivePoints();
  std::vector<NetworkSimResult> serial;
  for (const NetworkSimConfig& c : points) {
    serial.push_back(RunNetworkSim(c));
    ASSERT_EQ(serial.back().outcome.status, SimStatus::kOk)
        << serial.back().outcome.message;
  }
  for (int threads : {2, 8}) {
    SweepRunner runner(threads);
    const std::vector<NetworkSimResult> parallel = runner.Run(points);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " point=" << i);
      ExpectBitwiseEqual(serial[i], parallel[i]);
    }
  }
}

TEST(AdaptiveMinDeterminism, ProcessIsolationMatchesInProcess) {
  const std::vector<NetworkSimConfig> points = AdaptivePoints();
  std::vector<NetworkSimResult> serial;
  for (const NetworkSimConfig& c : points) serial.push_back(RunNetworkSim(c));

  ExecPolicy policy;
  policy.num_workers = 2;
  policy.worker_path = VIXNOC_SWEEP_WORKER_PATH;
  SweepCoordinator coordinator(policy);
  SweepExecResult exec = coordinator.Run(points);
  ASSERT_EQ(exec.results.size(), serial.size());
  EXPECT_EQ(exec.crashes, 0u);
  EXPECT_EQ(exec.bad_frames, 0u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "point=" << i);
    ExpectBitwiseEqual(serial[i], exec.results[i]);
  }
}

TEST(AdaptiveMinDeterminism, CheckpointRestoreMidRunIsEquivalent) {
  const std::string path = TempPath("adaptive_min_midrun.ckpt");
  NetworkSimConfig base =
      AdaptivePoint(TopologyKind::kMesh, PatternKind::kHotspot, 0.05);
  const NetworkSimResult uninterrupted = RunNetworkSim(base);
  ASSERT_EQ(uninterrupted.outcome.status, SimStatus::kOk);

  // Same run, checkpointing every 400 cycles: checkpointing itself must
  // not perturb a single flit.
  NetworkSimConfig writing = base;
  writing.checkpoint_path = path;
  writing.checkpoint_every = 400;
  const NetworkSimResult checkpointed = RunNetworkSim(writing);
  ExpectBitwiseEqual(uninterrupted, checkpointed);
  ASSERT_TRUE(std::filesystem::exists(path));

  // Resume from the last mid-run checkpoint; the finished run must be
  // bitwise identical to one that never stopped.
  NetworkSimConfig resumed = base;
  resumed.restore_path = path;
  const NetworkSimResult restored = RunNetworkSim(resumed);
  ExpectBitwiseEqual(uninterrupted, restored);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// The adaptive arm's reason to exist: where deterministic DOR concentrates
// load, credit-driven spreading over both minimal directions delivers more
// — with the deadlock watchdog enabled and quiet throughout.

TEST(AdaptiveMinTranspose, BeatsDorPastItsSaturationPointWatchdogQuiet) {
  // Transpose is DOR's adversary: XY folds every (i,j)->(j,i) flow onto
  // the diagonal, while minimal-adaptive balances across the staircase.
  NetworkSimConfig adaptive =
      AdaptivePoint(TopologyKind::kMesh, PatternKind::kTranspose, 0.08);
  adaptive.warmup = 500;
  adaptive.measure = 2'500;
  adaptive.drain = 1'500;
  NetworkSimConfig dor = adaptive;
  dor.routing = "dor";

  const NetworkSimResult rd = RunNetworkSim(dor);
  const NetworkSimResult ra = RunNetworkSim(adaptive);
  // Watchdog quiet on both (the escape VCs preserve deadlock freedom).
  EXPECT_EQ(rd.outcome.status, SimStatus::kOk) << rd.outcome.message;
  EXPECT_EQ(ra.outcome.status, SimStatus::kOk) << ra.outcome.message;
  // DOR is saturated at this load; adaptive delivers strictly more.
  EXPECT_TRUE(rd.saturated);
  EXPECT_GT(ra.accepted_ppc, rd.accepted_ppc);
}

TEST(AdaptiveMinHotspot, CompletesPastDorSaturationWatchdogQuiet) {
  // A single hotspot is ejection-limited: the hot node's one ejection link
  // caps accepted throughput identically for every routing algorithm, so
  // this is a deadlock-freedom stress, not a throughput race. Past DOR's
  // saturation point the adaptive run must still drain cleanly (watchdog
  // quiet) without collapsing below the ejection-bound DOR baseline.
  NetworkSimConfig adaptive =
      AdaptivePoint(TopologyKind::kMesh, PatternKind::kHotspot, 0.14);
  adaptive.warmup = 500;
  adaptive.measure = 2'500;
  adaptive.drain = 1'500;
  NetworkSimConfig dor = adaptive;
  dor.routing = "dor";

  const NetworkSimResult rd = RunNetworkSim(dor);
  const NetworkSimResult ra = RunNetworkSim(adaptive);
  EXPECT_EQ(rd.outcome.status, SimStatus::kOk) << rd.outcome.message;
  EXPECT_EQ(ra.outcome.status, SimStatus::kOk) << ra.outcome.message;
  EXPECT_TRUE(rd.saturated);
  EXPECT_GE(ra.accepted_ppc, 0.9 * rd.accepted_ppc);
}

TEST(AdaptiveMinTorus, DeadlockFreeWithDatelineEscapePair) {
  NetworkSimConfig c =
      AdaptivePoint(TopologyKind::kTorus, PatternKind::kHotspot, 0.08);
  const NetworkSimResult r = RunNetworkSim(c);
  EXPECT_EQ(r.outcome.status, SimStatus::kOk) << r.outcome.message;
  EXPECT_GT(r.packets_measured, 0u);
}

}  // namespace
}  // namespace vixnoc
