// Fault-injection subsystem: deterministic schedules, fault-aware detour
// routing, the forward-progress watchdog, and structured SimOutcome
// reporting through both serial runs and the SweepRunner pool.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/error.hpp"
#include "fault/fault_model.hpp"
#include "routing/dor.hpp"
#include "routing/fault_aware.hpp"
#include "sim/sweep.hpp"
#include "topology/topology.hpp"

namespace vixnoc {
namespace {

// ---------------------------------------------------------------------------
// Fault schedules are pure functions of (topology, config, seed).

FaultConfig MixedFaults() {
  FaultConfig f;
  f.link_down_rate = 0.05;
  f.transient_rate = 0.08;
  f.router_stall_rate = 0.05;
  f.corruption_rate = 0.001;
  return f;
}

TEST(FaultModel, ScheduleIsDeterministic) {
  auto topo = MakeMesh(8, 8);
  const FaultConfig config = MixedFaults();
  FaultModel a(*topo, config, 42);
  FaultModel b(*topo, config, 42);
  ASSERT_EQ(a.permanent_down(), b.permanent_down());
  ASSERT_EQ(a.transient_links().size(), b.transient_links().size());
  for (std::size_t i = 0; i < a.transient_links().size(); ++i) {
    EXPECT_EQ(a.transient_links()[i].router, b.transient_links()[i].router);
    EXPECT_EQ(a.transient_links()[i].out_port,
              b.transient_links()[i].out_port);
    EXPECT_EQ(a.transient_links()[i].phase, b.transient_links()[i].phase);
  }
  ASSERT_EQ(a.stalls().size(), b.stalls().size());
  for (std::size_t i = 0; i < a.stalls().size(); ++i) {
    EXPECT_EQ(a.stalls()[i].router, b.stalls()[i].router);
    EXPECT_EQ(a.stalls()[i].phase, b.stalls()[i].phase);
  }
  EXPECT_EQ(a.CorruptsTraversal(3, 1, 777), b.CorruptsTraversal(3, 1, 777));
}

TEST(FaultModel, DifferentSeedsGiveDifferentSchedules) {
  auto topo = MakeMesh(8, 8);
  const FaultConfig config = MixedFaults();
  FaultModel a(*topo, config, 1);
  FaultModel b(*topo, config, 2);
  EXPECT_NE(a.permanent_down(), b.permanent_down());
}

TEST(FaultModel, SamplesTheRequestedFraction) {
  auto topo = MakeMesh(8, 8);  // 2 * (7*8 + 8*7) = 224 directed mesh links
  FaultConfig config;
  config.link_down_rate = 0.10;
  FaultModel m(*topo, config, 9);
  EXPECT_EQ(m.permanent_down().size(), 22u);  // llround(0.10 * 224)
  for (const auto& [router, port] : m.permanent_down()) {
    EXPECT_TRUE(m.LinkPermanentlyDown(router, port));
  }
}

TEST(FaultModel, RejectsInvalidConfig) {
  auto topo = MakeMesh(4, 4);
  FaultConfig bad_rate;
  bad_rate.link_down_rate = 1.5;
  EXPECT_THROW(FaultModel(*topo, bad_rate, 1), SimError);

  FaultConfig bad_window;
  bad_window.transient_rate = 0.1;
  bad_window.transient_duration = bad_window.transient_period;
  EXPECT_THROW(FaultModel(*topo, bad_window, 1), SimError);

  FaultConfig bad_forced;
  bad_forced.forced_link_down = {{0, 99}};
  EXPECT_THROW(FaultModel(*topo, bad_forced, 1), SimError);
}

// ---------------------------------------------------------------------------
// Fault-aware routing: identical to DOR when nothing is broken, minimal
// detours when something is.

TEST(FaultRouting, MatchesDorOnFaultFreeMesh) {
  auto topo = MakeMesh(4, 4);
  const DorRouting dor(*topo);
  FaultAwareRouting detour(*topo, {});
  EXPECT_EQ(detour.NumUnreachablePairs(), 0u);
  for (RouterId r = 0; r < topo->NumRouters(); ++r) {
    for (NodeId dst = 0; dst < topo->NumNodes(); ++dst) {
      EXPECT_EQ(detour.Route(r, dst), dor.Route(r, dst))
          << "router " << r << " dst " << dst;
    }
  }
}

TEST(FaultRouting, DetoursAroundDeadLink) {
  auto topo = MakeMesh(4, 4);
  // Kill router 0's east link (the XY route 0 -> 1). A detour via the
  // other dimension must be found, and every pair stays reachable.
  const PortId east = DorRouting(*topo).Route(0, 3);  // node 3 is due east
  FaultAwareRouting detour(*topo, {{0, east}});
  EXPECT_EQ(detour.NumUnreachablePairs(), 0u);
  EXPECT_NE(detour.Route(0, 1), east);
  EXPECT_TRUE(detour.Reachable(0, 1));
}

// ---------------------------------------------------------------------------
// End-to-end simulation outcomes.

NetworkSimConfig SmallSim() {
  NetworkSimConfig c;
  c.topology_factory = [] { return MakeMesh(4, 4); };
  c.injection_rate = 0.10;
  c.warmup = 300;
  c.measure = 1'500;
  c.drain = 500;
  c.watchdog_cycles = 1'000;
  c.seed = 11;
  return c;
}

TEST(FaultSim, GoldenConfigStaysClean) {
  const NetworkSimResult r = RunNetworkSim(SmallSim());
  EXPECT_EQ(r.outcome.status, SimStatus::kOk);
  EXPECT_TRUE(r.outcome.ok());
  EXPECT_EQ(r.outcome.unreachable_packets, 0u);
  EXPECT_EQ(r.packets_corrupted, 0u);
  EXPECT_GT(r.packets_measured, 0u);
}

// Corruption marks packets but must not perturb a single flit movement:
// the metrics are bitwise identical to the fault-free run.
TEST(FaultSim, CorruptionIsMeteredButNonPerturbing) {
  NetworkSimConfig clean = SmallSim();
  NetworkSimConfig faulty = SmallSim();
  faulty.faults.corruption_rate = 0.01;
  const NetworkSimResult a = RunNetworkSim(clean);
  const NetworkSimResult b = RunNetworkSim(faulty);
  EXPECT_GT(b.packets_corrupted, 0u);
  EXPECT_EQ(a.accepted_ppc, b.accepted_ppc);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_EQ(a.activity.xbar_traversals, b.activity.xbar_traversals);
  EXPECT_EQ(b.outcome.status, SimStatus::kOk);

  const NetworkSimResult c = RunNetworkSim(faulty);
  EXPECT_EQ(b.packets_corrupted, c.packets_corrupted);
}

TEST(FaultSim, SeveredSourceReportsUndeliverable) {
  NetworkSimConfig config = SmallSim();
  // Cut every inter-router output of router 0: its node can still receive
  // but can no longer send. Packets sourced there are unreachable and must
  // be reported, not hung.
  auto topo = MakeMesh(4, 4);
  for (PortId p = 0; p < topo->Radix(); ++p) {
    const auto links = topo->LinksFor(0);
    if (links[p].neighbor >= 0) {
      config.faults.forced_link_down.emplace_back(0, p);
    }
  }
  const NetworkSimResult r = RunNetworkSim(config);
  EXPECT_EQ(r.outcome.status, SimStatus::kUndeliverable);
  EXPECT_GT(r.outcome.unreachable_packets, 0u);
  EXPECT_FALSE(r.outcome.message.empty());
  // Undeliverable outcomes carry the same diagnostics as deadlocks: the
  // detection cycle and the end-of-drain per-router occupancy snapshot
  // (regression: these used to be populated only for kDeadlock).
  EXPECT_GT(r.outcome.cycle, 0u);
  EXPECT_EQ(r.outcome.router_occupancy.size(), 16u);
  // Everyone else's traffic still flows.
  EXPECT_GT(r.packets_measured, 0u);
}

TEST(FaultSim, TransientAndStallFaultsDegradeButComplete) {
  NetworkSimConfig config = SmallSim();
  config.watchdog_cycles = 2'000;
  config.faults.transient_rate = 0.10;
  config.faults.transient_period = 500;
  config.faults.transient_duration = 100;
  config.faults.router_stall_rate = 0.10;
  config.faults.stall_period = 500;
  config.faults.stall_duration = 50;
  const NetworkSimResult r = RunNetworkSim(config);
  EXPECT_EQ(r.outcome.status, SimStatus::kOk) << r.outcome.message;
  EXPECT_GT(r.packets_measured, 0u);
}

// ---------------------------------------------------------------------------
// Watchdog: a hand-built deadlock. All inter-router traffic is routed
// around the fixed cycle r0 -> r1 -> r3 -> r2 -> r0 of a 2x2 mesh with a
// single VC, so wormhole packets close a channel-dependency cycle and the
// network wedges almost immediately under load.

class RingRouting final : public RoutingAlgorithm {
 public:
  explicit RingRouting(const Topology& mesh) : mesh_(&mesh) {
    static const RouterId kNext[4] = {1, 3, 0, 2};
    next_port_.assign(4, kInvalidPort);
    for (RouterId r = 0; r < 4; ++r) {
      for (PortId p = 0; p < mesh.Radix(); ++p) {
        if (mesh.LinksFor(r)[p].neighbor == kNext[r]) next_port_[r] = p;
      }
    }
  }
  PortId Route(RouterId router, NodeId dst) const override {
    if (mesh_->RouterOfNode(dst) == router) {
      return mesh_->EjectPortOfNode(dst);
    }
    return next_port_[router];
  }
  PortDimension DimensionOf(PortId port) const override {
    // Mesh port convention: E/W then N/S then locals.
    if (port <= 1) return PortDimension::kX;
    if (port <= 3) return PortDimension::kY;
    return PortDimension::kLocal;
  }

 private:
  const Topology* mesh_;
  std::vector<PortId> next_port_;
};

class RingTopology final : public Topology {
 public:
  RingTopology() : mesh_(MakeMesh(2, 2)) {}
  TopologyKind Kind() const override { return mesh_->Kind(); }
  int NumRouters() const override { return mesh_->NumRouters(); }
  int NumNodes() const override { return mesh_->NumNodes(); }
  int Radix() const override { return mesh_->Radix(); }
  RouterId RouterOfNode(NodeId node) const override {
    return mesh_->RouterOfNode(node);
  }
  PortId InjectPortOfNode(NodeId node) const override {
    return mesh_->InjectPortOfNode(node);
  }
  PortId EjectPortOfNode(NodeId node) const override {
    return mesh_->EjectPortOfNode(node);
  }
  std::vector<OutputLinkInfo> LinksFor(RouterId router) const override {
    return mesh_->LinksFor(router);
  }
  int Cols() const override { return mesh_->Cols(); }
  int Rows() const override { return mesh_->Rows(); }
  int RouterHops(NodeId src, NodeId dst) const override {
    return mesh_->RouterHops(src, dst);
  }

 private:
  std::unique_ptr<Topology> mesh_;
};

TEST(Watchdog, FiresOnHandBuiltDeadlock) {
  NetworkSimConfig config;
  config.topology_factory = [] { return std::make_unique<RingTopology>(); };
  config.routing_factory =
      [](const Topology& topo) -> std::unique_ptr<RoutingAlgorithm> {
    return std::make_unique<RingRouting>(topo);
  };
  config.num_vcs = 1;
  config.buffer_depth = 2;
  config.packet_size = 6;  // wormholes span multiple routers
  config.injection_rate = 0.30;
  config.warmup = 500;
  config.measure = 2'000;
  config.drain = 500;
  config.watchdog_cycles = 400;
  config.seed = 3;
  const NetworkSimResult r = RunNetworkSim(config);
  ASSERT_EQ(r.outcome.status, SimStatus::kDeadlock) << r.outcome.message;
  EXPECT_GT(r.outcome.cycle, 0);
  EXPECT_NE(r.outcome.message.find("no flit movement"), std::string::npos)
      << r.outcome.message;
  // The occupancy snapshot shows where the wedged flits sit.
  ASSERT_EQ(r.outcome.router_occupancy.size(), 4u);
  std::uint32_t total = 0;
  for (std::uint32_t o : r.outcome.router_occupancy) total += o;
  EXPECT_GT(total, 0u);
}

// ---------------------------------------------------------------------------
// Determinism through the pool: fault schedules and outcomes are functions
// of the config alone, so SweepRunner results match serial runs bit for
// bit at any thread count.

TEST(FaultSweep, OutcomesIdenticalAtAnyThreadCount) {
  std::vector<NetworkSimConfig> points;
  for (int i = 0; i < 6; ++i) {
    NetworkSimConfig c = SmallSim();
    c.seed = 100 + i;
    c.scheme = i % 2 == 0 ? AllocScheme::kInputFirst : AllocScheme::kVix;
    c.faults.link_down_rate = 0.04;
    c.faults.corruption_rate = 0.002;
    c.faults.transient_rate = 0.05;
    c.faults.transient_period = 500;
    c.faults.transient_duration = 100;
    points.push_back(c);
  }

  std::vector<NetworkSimResult> serial;
  for (const NetworkSimConfig& c : points) serial.push_back(RunNetworkSim(c));

  for (int threads : {1, 2, 8}) {
    SweepRunner runner(threads);
    const std::vector<NetworkSimResult> parallel = runner.Run(points);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " point=" << i);
      EXPECT_EQ(serial[i].accepted_ppc, parallel[i].accepted_ppc);
      EXPECT_EQ(serial[i].avg_latency, parallel[i].avg_latency);
      EXPECT_EQ(serial[i].packets_measured, parallel[i].packets_measured);
      EXPECT_EQ(serial[i].packets_corrupted, parallel[i].packets_corrupted);
      EXPECT_EQ(serial[i].activity.xbar_traversals,
                parallel[i].activity.xbar_traversals);
      EXPECT_EQ(serial[i].outcome.status, parallel[i].outcome.status);
      EXPECT_EQ(serial[i].outcome.message, parallel[i].outcome.message);
      EXPECT_EQ(serial[i].outcome.unreachable_packets,
                parallel[i].outcome.unreachable_packets);
    }
  }
}

// The acceptance scenario from the issue: a sweep holding an invalid
// config and a deadlocking config completes, with those two slots marked
// failed and valid results everywhere else.
TEST(FaultSweep, MixedFailureBatchCompletes) {
  std::vector<NetworkSimConfig> points;
  points.push_back(SmallSim());  // 0: healthy
  NetworkSimConfig invalid = SmallSim();
  invalid.num_vcs = 0;  // ValidateNetworkSimConfig throws
  points.push_back(invalid);  // 1: invalid
  NetworkSimConfig deadlock;
  deadlock.topology_factory = [] { return std::make_unique<RingTopology>(); };
  deadlock.routing_factory =
      [](const Topology& topo) -> std::unique_ptr<RoutingAlgorithm> {
    return std::make_unique<RingRouting>(topo);
  };
  deadlock.num_vcs = 1;
  deadlock.buffer_depth = 2;
  deadlock.packet_size = 6;
  deadlock.injection_rate = 0.30;
  deadlock.warmup = 500;
  deadlock.measure = 2'000;
  deadlock.drain = 500;
  deadlock.watchdog_cycles = 400;
  deadlock.seed = 3;
  points.push_back(deadlock);  // 2: deadlocks
  points.push_back(SmallSim());  // 3: healthy

  SweepRunner runner(4);
  const std::vector<NetworkSimResult> results = runner.Run(points);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].outcome.status, SimStatus::kOk);
  EXPECT_EQ(results[1].outcome.status, SimStatus::kInvariantViolation);
  EXPECT_NE(results[1].outcome.message.find("num_vcs"), std::string::npos)
      << results[1].outcome.message;
  EXPECT_EQ(results[2].outcome.status, SimStatus::kDeadlock);
  EXPECT_EQ(results[3].outcome.status, SimStatus::kOk);
  EXPECT_GT(results[0].packets_measured, 0u);
  EXPECT_GT(results[3].packets_measured, 0u);
}

// Measurement-window delta accounting under fault schedules: stall windows
// sized so routers freeze *across* the measure_end boundary (stalls start
// at phase-seeded offsets within each 1500-cycle period and last 600
// cycles; with warmup=1000 and measure=2000, many straddle t=3000). The
// per-node deltas are (end snapshot - start snapshot) of monotonically
// increasing counters, so whatever the fault schedule does, they must be
// non-negative and bounded — a wraparound or inverted-snapshot bug would
// surface as a huge or negative node throughput.
TEST(FaultMeasurement, StallAcrossMeasureEndKeepsNodeDeltasSane) {
  NetworkSimConfig c;
  c.injection_rate = 0.05;
  c.seed = 5;
  c.warmup = 1'000;
  c.measure = 2'000;
  c.drain = 1'000;
  c.faults.router_stall_rate = 0.25;
  c.faults.stall_period = 1'500;
  c.faults.stall_duration = 600;
  c.watchdog_cycles = 4'000;  // must exceed stall_duration
  const NetworkSimResult r = RunNetworkSim(c);

  ASSERT_TRUE(r.outcome.ok()) << r.outcome.message;
  EXPECT_GT(r.packets_measured, 0u);
  // NodeCounters are uint64: a negative delta would wrap to ~1.8e19 and
  // blow straight through these bounds.
  EXPECT_GE(r.min_node_ppc, 0.0);
  EXPECT_LE(r.min_node_ppc, r.max_node_ppc);
  EXPECT_LE(r.max_node_ppc, 1.0);
  // A quarter of the routers are stalled 40% of the time, so accepted
  // throughput is degraded but must stay near the offered load's order of
  // magnitude, not explode.
  EXPECT_GT(r.accepted_ppc, 0.0);
  EXPECT_LE(r.accepted_ppc, 2.0 * c.injection_rate);
  EXPECT_GE(r.max_min_ratio, 1.0);
}

}  // namespace
}  // namespace vixnoc
