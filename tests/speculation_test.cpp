// Speculative-SA priority masking (Becker & Dally; paper §5).
#include <gtest/gtest.h>

#include <vector>

#include "router/router.hpp"
#include "sim/network_sim.hpp"

namespace vixnoc {
namespace {

class PortIsDestRouting final : public RoutingAlgorithm {
 public:
  PortId Route(RouterId, NodeId dst) const override { return dst % 5; }
  PortDimension DimensionOf(PortId port) const override {
    if (port < 2) return PortDimension::kX;
    if (port < 4) return PortDimension::kY;
    return PortDimension::kLocal;
  }
};

std::vector<OutputLinkInfo> TestLinks() {
  std::vector<OutputLinkInfo> links(5);
  for (PortId p = 0; p < 4; ++p) links[p] = {1, p, kInvalidNode};
  links[4] = {-1, kInvalidPort, 0};
  return links;
}

Flit MakeFlit(PacketId id, int seq, int size, VcId vc, PortId route_out) {
  Flit f;
  f.packet_id = id;
  f.src = 1;
  f.dst = route_out;
  f.type = FlitTypeFor(seq, size);
  f.seq = static_cast<std::uint16_t>(seq);
  f.packet_size = static_cast<std::uint16_t>(size);
  f.vc = vc;
  f.route_out = route_out;
  return f;
}

RouterConfig MaskedConfig() {
  RouterConfig c;
  c.radix = 5;
  c.num_vcs = 4;
  c.buffer_depth = 4;
  c.prioritize_nonspeculative = true;
  return c;
}

TEST(Speculation, EstablishedPacketBeatsNewHead) {
  PortIsDestRouting routing;
  Router r(0, MaskedConfig(), TestLinks(), &routing);
  std::vector<Router::SentFlit> sent;
  std::vector<Router::SentCredit> credits;

  // Cycle 0: a 3-flit packet on port 0 establishes itself toward output 2.
  for (int s = 0; s < 3; ++s) r.AcceptFlit(0, MakeFlit(1, s, 3, 0, 2));
  r.Step(0, &sent, &credits);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].flit.packet_id, 1u);

  // Cycle 1: a new head on port 1 also wants output 2. It is speculative
  // (VA this cycle); the established packet's body flit must win.
  r.AcceptFlit(1, MakeFlit(2, 0, 1, 0, 2));
  sent.clear();
  r.Step(1, &sent, &credits);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].flit.packet_id, 1u);
}

TEST(Speculation, SpeculativeGrantProceedsWhenOutputUncontested) {
  PortIsDestRouting routing;
  Router r(0, MaskedConfig(), TestLinks(), &routing);
  std::vector<Router::SentFlit> sent;
  std::vector<Router::SentCredit> credits;
  // A lone new head must not be delayed by the masking rule.
  r.AcceptFlit(0, MakeFlit(1, 0, 1, 0, 2));
  r.Step(0, &sent, &credits);
  EXPECT_EQ(sent.size(), 1u);
}

TEST(Speculation, MaskingCostsLittleThroughput) {
  auto run = [](bool mask) {
    NetworkSimConfig c;
    c.prioritize_nonspeculative = mask;
    c.injection_rate = 0.25;
    c.warmup = 3'000;
    c.measure = 8'000;
    c.drain = 1'000;
    return RunNetworkSim(c).accepted_ppc;
  };
  const double masked = run(true);
  const double unmasked = run(false);
  EXPECT_NEAR(masked, unmasked, unmasked * 0.05);
}

TEST(Speculation, MaskingComposesWithVix) {
  NetworkSimConfig c;
  c.scheme = AllocScheme::kVix;
  c.prioritize_nonspeculative = true;
  c.injection_rate = 0.25;
  c.warmup = 3'000;
  c.measure = 8'000;
  c.drain = 1'000;
  const auto vix = RunNetworkSim(c);
  c.scheme = AllocScheme::kInputFirst;
  const auto base = RunNetworkSim(c);
  EXPECT_GT(vix.accepted_ppc, base.accepted_ppc * 1.05);
}

}  // namespace
}  // namespace vixnoc
