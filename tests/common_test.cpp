#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace vixnoc {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(Rng, ReseedRestoresStream) {
  Rng a(99);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 100; ++i) first.push_back(a.Next64());
  a.Reseed(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), first[i]);
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBoundedStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 63ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, NextBoundedCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextBoundedApproximatelyUniform) {
  Rng rng(5);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.NextInRange(-3, 3);
    ASSERT_GE(x, -3);
    ASSERT_LE(x, 3);
    saw_lo |= x == -3;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextBoolProbability) {
  Rng rng(23);
  int trues = 0;
  for (int i = 0; i < 100000; ++i) trues += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(trues / 100000.0, 0.3, 0.01);
}

TEST(RunningStat, Empty) {
  RunningStat s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
}

TEST(RunningStat, KnownValues) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.Count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 42.0);
  EXPECT_DOUBLE_EQ(s.Max(), 42.0);
}

TEST(RunningStat, ResetClears) {
  RunningStat s;
  s.Add(1.0);
  s.Add(2.0);
  s.Reset();
  EXPECT_EQ(s.Count(), 0u);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 10.0);
}

TEST(RunningStat, MatchesDirectComputation) {
  Rng rng(31);
  RunningStat s;
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.NextDouble() * 100.0;
    xs.push_back(x);
    s.Add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);
  EXPECT_NEAR(s.Mean(), mean, 1e-9);
  EXPECT_NEAR(s.Variance(), var, 1e-6);
}

TEST(Histogram, CountsAndOverflow) {
  Histogram h(10.0, 4);  // buckets [0,10) [10,20) [20,30) [30,40) + overflow
  h.Add(5.0);
  h.Add(15.0);
  h.Add(15.5);
  h.Add(1000.0);
  EXPECT_EQ(h.TotalCount(), 4u);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 0u);
  EXPECT_EQ(h.BucketCount(4), 1u);  // overflow bucket
}

TEST(Histogram, MedianOfUniform) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.99), 99.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.0), 0.5, 1.0);
}

TEST(Histogram, TailQuantileInOverflowBucketIsLowerBound) {
  // Regression: quantiles landing in the overflow bucket must report the
  // bucket's lower bound (num_buckets * width), never a fabricated midpoint
  // (the old code returned (idx + 0.5) * width == 45 here, silently
  // understating "at least 40" as a point estimate).
  Histogram h(10.0, 4);  // covered range [0, 40) + overflow
  for (int i = 0; i < 90; ++i) h.Add(5.0);
  for (int i = 0; i < 10; ++i) h.Add(1000.0);
  EXPECT_EQ(h.OverflowCount(), 10u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 40.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 40.0);
  // Quantiles below the overflow mass are unaffected.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.0);
}

TEST(Histogram, NegativeClampsToZeroBucket) {
  Histogram h(1.0, 10);
  h.Add(-5.0);
  EXPECT_EQ(h.BucketCount(0), 1u);
}

TEST(TablePrinter, FormatHelpers) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(TablePrinter::Fmt(std::int64_t{-7}), "-7");
  EXPECT_EQ(TablePrinter::Pct(0.162), "+16.2%");
  EXPECT_EQ(TablePrinter::Pct(-0.05), "-5.0%");
}

TEST(TablePrinter, PrintsAllCells) {
  TablePrinter t({"a", "bb"});
  t.AddRow({"x", "yyyy"});
  // Just verify printing does not crash and row width adapts.
  t.Print(stderr);
}

TEST(Types, AllocSchemeNames) {
  EXPECT_EQ(ToString(AllocScheme::kInputFirst), "IF");
  EXPECT_EQ(ToString(AllocScheme::kWavefront), "WF");
  EXPECT_EQ(ToString(AllocScheme::kAugmentingPath), "AP");
  EXPECT_EQ(ToString(AllocScheme::kVix), "VIX");
  EXPECT_EQ(ToString(AllocScheme::kVixIdeal), "VIX-ideal");
  EXPECT_EQ(ToString(AllocScheme::kPacketChaining), "PC");
  EXPECT_EQ(ToString(AllocScheme::kIslip), "iSLIP");
}

TEST(Types, TopologyNames) {
  EXPECT_EQ(ToString(TopologyKind::kMesh), "Mesh");
  EXPECT_EQ(ToString(TopologyKind::kCMesh), "CMesh");
  EXPECT_EQ(ToString(TopologyKind::kFBfly), "FBfly");
}

}  // namespace
}  // namespace vixnoc
