// Content-addressed result store: correctness of the cache the sweep
// machinery and the vixnocd daemon are built on.
//
// The contracts under test: entries round-trip bitwise; the result key
// distinguishes observation knobs (telemetry) on top of the evolution
// fingerprint; every possible truncation or corruption of an entry is
// detected (never served as data); concurrent same-key writers — across
// real process boundaries — leave a valid entry; GC evicts oldest-first
// and respects max_bytes; and the SweepRunner/SweepCoordinator resume +
// dedup behavior layered on the store is exact.
#include "store/result_store.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/network_sim.hpp"
#include "sim/sweep.hpp"
#include "snapshot/snapshot.hpp"

namespace vixnoc {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "vixnoc_store_" + tag + "_" +
                          std::to_string(::getpid());
  fs::remove_all(dir);
  return dir;
}

NetworkSimConfig ShortConfig(double rate = 0.10, std::uint64_t seed = 1) {
  NetworkSimConfig c;
  c.scheme = AllocScheme::kVix;
  c.injection_rate = rate;
  c.seed = seed;
  c.warmup = 300;
  c.measure = 900;
  c.drain = 300;
  c.sample_interval = 0;
  return c;
}

std::string Bytes(const NetworkSimResult& r) {
  SnapshotWriter w;
  w.BeginSection("r");
  SaveNetworkSimResult(w, r);
  w.EndSection();
  return w.Finish(0);
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void Spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(ResultStoreTest, RoundTripIsBitwiseIdentical) {
  const std::string dir = FreshDir("roundtrip");
  ResultStore store(dir);
  const NetworkSimConfig config = ShortConfig();
  const NetworkSimResult fresh = RunNetworkSim(config);

  NetworkSimResult out;
  EXPECT_EQ(store.Load(config, &out), PointCacheStatus::kMiss);
  store.Put(config, fresh);
  EXPECT_TRUE(fs::exists(store.EntryPath(config)));
  ASSERT_EQ(store.Load(config, &out), PointCacheStatus::kHit);
  EXPECT_EQ(Bytes(out), Bytes(fresh));

  const ResultStoreStats s = store.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.defective, 0u);
  EXPECT_GT(store.approximate_bytes(), 0u);

  // The entry lives in its two-hex-char shard under the key filename.
  const std::uint64_t key = NetworkSimResultKey(config);
  EXPECT_EQ(store.EntryPath(config), dir + "/" + StoreEntryRelPath(key));
  fs::remove_all(dir);
}

TEST(ResultStoreTest, ResultKeySeparatesObservationKnobs) {
  NetworkSimConfig base = ShortConfig();
  NetworkSimConfig with_telemetry = base;
  with_telemetry.telemetry.enabled = true;
  // Same evolution fingerprint — telemetry does not perturb the simulation —
  // but different result keys: the stored payloads differ.
  EXPECT_EQ(NetworkSimConfigFingerprint(base),
            NetworkSimConfigFingerprint(with_telemetry));
  EXPECT_NE(NetworkSimResultKey(base), NetworkSimResultKey(with_telemetry));

  // Checkpoint plumbing is excluded: restoring is bitwise-equivalent, so
  // a checkpointing run and a plain run share one entry.
  NetworkSimConfig with_ckpt = base;
  with_ckpt.checkpoint_path = "/tmp/somewhere.ckpt";
  with_ckpt.checkpoint_every = 1'000;
  EXPECT_EQ(NetworkSimResultKey(base), NetworkSimResultKey(with_ckpt));
}

TEST(ResultStoreTest, EveryTruncationAndCorruptionIsDetected) {
  const std::string dir = FreshDir("trunc");
  ResultStore store(dir);
  const NetworkSimConfig config = ShortConfig();
  store.Put(config, RunNetworkSim(config));
  const std::string path = store.EntryPath(config);
  const std::string good = Slurp(path);
  ASSERT_FALSE(good.empty());

  NetworkSimResult out;
  for (std::size_t len = 0; len < good.size(); ++len) {
    Spit(path, good.substr(0, len));
    // kDefective (validation caught it), never kHit with garbage. A
    // defective entry is also unlinked so a later Put can repair it.
    EXPECT_EQ(store.Load(config, &out), PointCacheStatus::kDefective)
        << "truncation at " << len << " of " << good.size();
    EXPECT_FALSE(fs::exists(path)) << "defective entry not unlinked";
  }
  // Single-byte corruption anywhere is caught by the section checksums /
  // container fingerprint. (Sampled stride keeps the test fast.)
  for (std::size_t i = 0; i < good.size(); i += 7) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    Spit(path, bad);
    EXPECT_EQ(store.Load(config, &out), PointCacheStatus::kDefective)
        << "corruption at byte " << i;
  }
  EXPECT_GE(store.stats().defective, good.size());
  fs::remove_all(dir);
}

TEST(ResultStoreTest, CrossProcessConcurrentWritersLeaveAValidEntry) {
  const std::string dir = FreshDir("race");
  const NetworkSimConfig config = ShortConfig();
  const NetworkSimResult fresh = RunNetworkSim(config);

  // Fork real processes all Putting the same key at once: unique tmp
  // names + atomic rename mean the survivors' bytes are identical and the
  // final entry always validates.
  constexpr int kWriters = 8;
  std::vector<pid_t> pids;
  for (int i = 0; i < kWriters; ++i) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ResultStore child_store(dir);
      child_store.Put(config, fresh);
      ::_exit(0);
    }
    pids.push_back(pid);
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }

  ResultStore store(dir);
  NetworkSimResult out;
  ASSERT_EQ(store.Load(config, &out), PointCacheStatus::kHit);
  EXPECT_EQ(Bytes(out), Bytes(fresh));
  // No staged tmp files left behind by the race.
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (e.is_regular_file()) {
      EXPECT_EQ(e.path().extension(), ".res") << e.path();
    }
  }
  fs::remove_all(dir);
}

TEST(ResultStoreTest, PutSkipsErrorSlotsAndExistingEntries) {
  const std::string dir = FreshDir("skip");
  ResultStore store(dir);
  const NetworkSimConfig config = ShortConfig();

  NetworkSimResult broken;
  broken.outcome.status = SimStatus::kInvariantViolation;
  store.Put(config, broken);
  EXPECT_FALSE(fs::exists(store.EntryPath(config)));
  NetworkSimResult exec_failed;
  exec_failed.outcome.status = SimStatus::kExecFailure;
  store.Put(config, exec_failed);
  EXPECT_FALSE(fs::exists(store.EntryPath(config)));
  EXPECT_EQ(store.stats().writes_skipped, 2u);

  // A real result lands; an identical re-Put is skipped (determinism
  // makes the rewrite pointless).
  const NetworkSimResult fresh = RunNetworkSim(config);
  store.Put(config, fresh);
  store.Put(config, fresh);
  EXPECT_EQ(store.stats().writes, 1u);
  EXPECT_EQ(store.stats().writes_skipped, 3u);
  fs::remove_all(dir);
}

TEST(ResultStoreTest, GarbageCollectionEvictsOldestUntilUnderBound) {
  const std::string dir = FreshDir("gc");
  std::vector<NetworkSimConfig> configs;
  std::uint64_t entry_bytes = 0;
  {
    ResultStore store(dir);
    for (int i = 0; i < 4; ++i) {
      NetworkSimConfig c = ShortConfig(0.05 + 0.01 * i);
      configs.push_back(c);
      store.Put(c, RunNetworkSim(c));
    }
    entry_bytes = store.approximate_bytes() / 4;
    ASSERT_GT(entry_bytes, 0u);
  }
  // Age the first two entries far into the past; the GC must pick them.
  const auto old_time =
      fs::file_time_type::clock::now() - std::chrono::hours(24);
  {
    ResultStore store(dir);
    fs::last_write_time(store.EntryPath(configs[0]), old_time);
    fs::last_write_time(store.EntryPath(configs[1]), old_time);
  }

  // Bound fits two entries (plus slack below three): the two aged ones go.
  ResultStore bounded(
      ResultStoreConfig{dir, entry_bytes * 2 + entry_bytes / 2});
  EXPECT_EQ(bounded.GarbageCollect(), 2u);
  EXPECT_FALSE(fs::exists(bounded.EntryPath(configs[0])));
  EXPECT_FALSE(fs::exists(bounded.EntryPath(configs[1])));
  EXPECT_TRUE(fs::exists(bounded.EntryPath(configs[2])));
  EXPECT_TRUE(fs::exists(bounded.EntryPath(configs[3])));
  EXPECT_LE(bounded.approximate_bytes(), entry_bytes * 2 + entry_bytes / 2);
  EXPECT_EQ(bounded.stats().gc_evicted_entries, 2u);

  // A Put that crosses the bound triggers collection by itself.
  NetworkSimConfig extra = ShortConfig(0.11);
  bounded.Put(extra, RunNetworkSim(extra));
  EXPECT_LE(bounded.approximate_bytes(), entry_bytes * 2 + entry_bytes / 2);
  fs::remove_all(dir);
}

TEST(ResultStoreTest, SweepRunnerResumesAcrossReorderedGrids) {
  const std::string dir = FreshDir("reorder");
  std::vector<NetworkSimConfig> grid;
  for (int i = 0; i < 5; ++i) grid.push_back(ShortConfig(0.04 + 0.02 * i));

  auto store = std::make_shared<ResultStore>(dir);
  SweepRunner first(2);
  first.SetCache(store);
  const std::vector<NetworkSimResult> r1 = first.Run(grid);
  EXPECT_EQ(first.resumed_points(), 0u);

  // Content addressing means order and batch shape are irrelevant: the
  // reversed grid (a different "batch" entirely) is a full resume.
  std::vector<NetworkSimConfig> reversed(grid.rbegin(), grid.rend());
  SweepRunner second(2);
  second.SetCache(std::make_shared<ResultStore>(dir));
  const std::vector<NetworkSimResult> r2 = second.Run(reversed);
  EXPECT_EQ(second.resumed_points(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(Bytes(r2[i]), Bytes(r1[grid.size() - 1 - i])) << i;
  }
  fs::remove_all(dir);
}

TEST(SweepRunnerTest, WithinBatchDuplicatesAreDeduplicated) {
  // The same point three times plus two distinct ones: two slots are
  // satisfied by copying the canonical result, and with a store attached
  // only the distinct points are ever written.
  const std::string dir = FreshDir("dedup");
  const NetworkSimConfig a = ShortConfig(0.06);
  const NetworkSimConfig b = ShortConfig(0.08);
  const std::vector<NetworkSimConfig> batch = {a, b, a, a, ShortConfig(0.10)};

  auto store = std::make_shared<ResultStore>(dir);
  SweepRunner runner(2);
  runner.SetCache(store);
  const std::vector<NetworkSimResult> results = runner.Run(batch);
  EXPECT_EQ(runner.deduped_points(), 2u);
  EXPECT_EQ(store->stats().writes, 3u);
  EXPECT_EQ(Bytes(results[0]), Bytes(results[2]));
  EXPECT_EQ(Bytes(results[0]), Bytes(results[3]));
  EXPECT_EQ(Bytes(results[0]), Bytes(RunNetworkSim(a)));
  EXPECT_EQ(Bytes(results[1]), Bytes(RunNetworkSim(b)));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace vixnoc
