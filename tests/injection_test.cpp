#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "traffic/injection.hpp"

namespace vixnoc {
namespace {

TEST(Bernoulli, MatchesRate) {
  BernoulliInjection inj(0.2);
  Rng rng(1);
  int hits = 0;
  constexpr int kTrials = 100'000;
  for (int i = 0; i < kTrials; ++i) hits += inj.ShouldInject(0, rng) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(kTrials), 0.2, 0.01);
}

TEST(Bernoulli, ZeroRateNeverInjects) {
  BernoulliInjection inj(0.0);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(inj.ShouldInject(0, rng));
}

TEST(OnOff, MatchesAverageRate) {
  constexpr double kAvg = 0.1, kOn = 0.5;
  OnOffInjection inj(4, kAvg, kOn, 32.0);
  EXPECT_NEAR(inj.DutyCycle(), kAvg / kOn, 1e-12);
  Rng rng(3);
  int hits = 0;
  constexpr int kCycles = 400'000;
  for (int t = 0; t < kCycles; ++t) {
    for (NodeId n = 0; n < 4; ++n) hits += inj.ShouldInject(n, rng) ? 1 : 0;
  }
  EXPECT_NEAR(hits / static_cast<double>(kCycles * 4), kAvg, 0.01);
}

TEST(OnOff, ProducesBursts) {
  // Injections must cluster: the lag-1 autocorrelation of the injection
  // indicator is positive for an on-off process, ~0 for Bernoulli.
  auto lag1 = [](InjectionProcess& inj, Rng& rng) {
    constexpr int kCycles = 200'000;
    std::vector<char> x(kCycles);
    double mean = 0.0;
    for (int t = 0; t < kCycles; ++t) {
      x[t] = inj.ShouldInject(0, rng) ? 1 : 0;
      mean += x[t];
    }
    mean /= kCycles;
    double num = 0.0, den = 0.0;
    for (int t = 0; t + 1 < kCycles; ++t) {
      num += (x[t] - mean) * (x[t + 1] - mean);
      den += (x[t] - mean) * (x[t] - mean);
    }
    return num / den;
  };
  Rng rng_a(4), rng_b(4);
  OnOffInjection bursty(1, 0.1, 0.5, 32.0);
  BernoulliInjection smooth(0.1);
  EXPECT_GT(lag1(bursty, rng_a), 0.2);
  EXPECT_NEAR(lag1(smooth, rng_b), 0.0, 0.05);
}

TEST(OnOff, MeanBurstLengthApproximatelyConfigured) {
  // Mean ON sojourn ~ configured burst length.
  OnOffInjection inj(1, 0.1, 0.5, 16.0);
  Rng rng(5);
  // Measure ON runs via the injection process's state, observed through
  // repeated sampling: count transitions by tracking injections is noisy;
  // instead measure the duty cycle and rate relationship, which pins the
  // sojourn parameters jointly.
  int hits = 0;
  constexpr int kCycles = 400'000;
  for (int t = 0; t < kCycles; ++t) hits += inj.ShouldInject(0, rng) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(kCycles), 0.1, 0.01);
}

TEST(OnOff, RejectsImpossibleParameters) {
  EXPECT_DEATH(OnOffInjection(1, 0.6, 0.5, 32.0), "check failed");
}

}  // namespace
}  // namespace vixnoc
