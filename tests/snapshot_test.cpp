// Checkpoint/restore subsystem (src/snapshot/): the binary format's
// integrity guarantees (checksums, versioning, truncation), and the
// load-bearing contract of the whole feature — a run restored from a
// checkpoint and continued to cycle C is bitwise identical to an
// uninterrupted run to cycle C, across topologies, allocation schemes,
// fault injection and telemetry.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "network/network.hpp"
#include "sim/sweep.hpp"
#include "snapshot/snapshot.hpp"
#include "store/result_store.hpp"
#include "topology/topology.hpp"

namespace vixnoc {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "vixnoc_snapshot_" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void Spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// ---------------------------------------------------------------------------
// Format layer: primitive round trips and corruption detection.

TEST(SnapshotFormat, PrimitivesRoundTrip) {
  SnapshotWriter w;
  w.BeginSection("alpha");
  w.U8(0xAB);
  w.U16(0xBEEF);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.I32(-42);
  w.I64(-1'234'567'890'123ll);
  w.F64(3.141592653589793);
  w.B(true);
  w.Str("hello, checkpoint");
  w.VecU64({1, 2, 3});
  w.VecU32({4, 5});
  w.VecI32({-6, 7});
  w.VecBool({true, false, true, true});
  w.EndSection();
  w.BeginSection("beta");
  w.U64(99);
  w.EndSection();

  SnapshotReader r(w.Finish(/*fingerprint=*/0x5EED));
  EXPECT_EQ(r.fingerprint(), 0x5EEDu);
  EXPECT_TRUE(r.HasSection("alpha"));
  EXPECT_TRUE(r.HasSection("beta"));
  EXPECT_FALSE(r.HasSection("gamma"));

  r.OpenSection("alpha");
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U16(), 0xBEEF);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I32(), -42);
  EXPECT_EQ(r.I64(), -1'234'567'890'123ll);
  EXPECT_EQ(r.F64(), 3.141592653589793);
  EXPECT_TRUE(r.B());
  EXPECT_EQ(r.Str(), "hello, checkpoint");
  EXPECT_EQ(r.VecU64(), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(r.VecU32(), (std::vector<std::uint32_t>{4, 5}));
  EXPECT_EQ(r.VecI32(), (std::vector<int>{-6, 7}));
  EXPECT_EQ(r.VecBool(), (std::vector<bool>{true, false, true, true}));
  r.CloseSection();

  r.OpenSection("beta");
  EXPECT_EQ(r.U64(), 99u);
  r.CloseSection();
}

std::string SmallSnapshot() {
  SnapshotWriter w;
  w.BeginSection("state");
  for (int i = 0; i < 32; ++i) w.U64(static_cast<std::uint64_t>(i) * 1000);
  w.EndSection();
  return w.Finish(7);
}

TEST(SnapshotFormat, EveryBitFlipIsDetected) {
  const std::string good = SmallSnapshot();
  // Flip one byte at a time across the whole file: every corruption must
  // surface as SimError (bad magic, bad version, checksum failure, or a
  // frame inconsistency) — never a crash, never a silent success that
  // changes payload bytes.
  int undetected = 0;
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    try {
      SnapshotReader r(std::move(bad));
      // Parsing succeeded: the flip must not have touched the payload
      // (e.g. the stored fingerprint, which the format itself cannot
      // validate — callers compare it against their config).
      r.OpenSection("state");
      for (int k = 0; k < 32; ++k) {
        EXPECT_EQ(r.U64(), static_cast<std::uint64_t>(k) * 1000)
            << "flip at byte " << i << " silently altered the payload";
      }
      r.CloseSection();
      ++undetected;
    } catch (const SimError&) {
      // Expected for flips in magic/version/lengths/payload/checksums.
    }
  }
  // Only the 8 fingerprint bytes (validated by the caller, not the frame)
  // and the 4 section-count... no: a count flip breaks parsing. Allow the
  // fingerprint plus nothing else to go format-undetected.
  EXPECT_LE(undetected, 8);
}

TEST(SnapshotFormat, ChecksumErrorNamesTheSection) {
  std::string bad = SmallSnapshot();
  bad[bad.size() - 20] = static_cast<char>(bad[bad.size() - 20] ^ 0x01);
  try {
    SnapshotReader r(std::move(bad));
    FAIL() << "corrupted snapshot parsed cleanly";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("state"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST(SnapshotFormat, EveryTruncationIsDetected) {
  const std::string good = SmallSnapshot();
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_THROW(SnapshotReader r(good.substr(0, len)), SimError)
        << "truncation to " << len << " bytes parsed cleanly";
  }
}

TEST(SnapshotFormat, BadMagicAndVersionThrow) {
  std::string bad_magic = SmallSnapshot();
  bad_magic[0] = 'X';
  EXPECT_THROW(SnapshotReader r(std::move(bad_magic)), SimError);

  std::string bad_version = SmallSnapshot();
  bad_version[8] = static_cast<char>(kSnapshotFormatVersion + 1);
  try {
    SnapshotReader r(std::move(bad_version));
    FAIL() << "future-version snapshot parsed cleanly";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(SnapshotFormat, UnreadTrailingBytesFailCloseSection) {
  SnapshotWriter w;
  w.BeginSection("s");
  w.U64(1);
  w.U64(2);
  w.EndSection();
  SnapshotReader r(w.Finish(0));
  r.OpenSection("s");
  EXPECT_EQ(r.U64(), 1u);
  EXPECT_THROW(r.CloseSection(), SimError);  // one u64 left unread
}

TEST(SnapshotFormat, ReadingPastTheSectionThrows) {
  SnapshotWriter w;
  w.BeginSection("s");
  w.U32(5);
  w.EndSection();
  SnapshotReader r(w.Finish(0));
  r.OpenSection("s");
  EXPECT_EQ(r.U32(), 5u);
  EXPECT_THROW(r.U32(), SimError);
}

// ---------------------------------------------------------------------------
// Network layer: a restored network re-serializes to identical bytes.

TEST(NetworkCheckpoint, RestoredNetworkSerializesIdentically) {
  NetworkParams params;
  params.router.radix = 5;
  params.router.num_vcs = 4;
  params.router.buffer_depth = 3;
  params.router.scheme = AllocScheme::kVix;
  params.router.vc_policy = RouterConfig::DefaultPolicyFor(AllocScheme::kVix);
  const auto make_net = [&] {
    return std::make_unique<Network>(
        std::shared_ptr<Topology>(MakeMesh(4, 4)), params);
  };

  auto net = make_net();
  Rng rng(11);
  for (Cycle t = 0; t < 300; ++t) {
    for (NodeId n = 0; n < net->NumNodes(); ++n) {
      if (rng.NextBool(0.1)) {
        net->EnqueuePacket(n, static_cast<NodeId>(rng.NextInRange(
                                  0, net->NumNodes() - 1)),
                           4);
      }
    }
    net->Step();
  }

  const std::string path = TempPath("net.ckpt");
  net->SaveCheckpoint(path);

  auto restored = make_net();
  restored->RestoreCheckpoint(path);
  EXPECT_EQ(restored->now(), net->now());

  const std::string repath = TempPath("net2.ckpt");
  restored->SaveCheckpoint(repath);
  EXPECT_EQ(Slurp(path), Slurp(repath));

  // And the two networks evolve identically from here.
  for (Cycle t = 0; t < 200; ++t) {
    net->Step();
    restored->Step();
  }
  net->SaveCheckpoint(path);
  restored->SaveCheckpoint(repath);
  EXPECT_EQ(Slurp(path), Slurp(repath));
}

TEST(NetworkCheckpoint, StructureMismatchThrows) {
  NetworkParams params;
  params.router.radix = 5;
  params.router.num_vcs = 4;
  params.router.buffer_depth = 3;
  Network small(std::shared_ptr<Topology>(MakeMesh(4, 4)), params);
  const std::string path = TempPath("small.ckpt");
  small.SaveCheckpoint(path);

  Network big(std::shared_ptr<Topology>(MakeMesh(8, 8)), params);
  EXPECT_THROW(big.RestoreCheckpoint(path), SimError);

  params.router.num_vcs = 6;
  Network other_vcs(std::shared_ptr<Topology>(MakeMesh(4, 4)), params);
  EXPECT_THROW(other_vcs.RestoreCheckpoint(path), SimError);
}

// ---------------------------------------------------------------------------
// The contract: restore-then-run equals an uninterrupted run, bitwise.

void ExpectTelemetryIdentical(const TelemetrySummary& a,
                              const TelemetrySummary& b) {
  EXPECT_EQ(a.enabled, b.enabled);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.sa_requests, b.sa_requests);
  EXPECT_EQ(a.sa_grants, b.sa_grants);
  EXPECT_EQ(a.input_arbiter_requests, b.input_arbiter_requests);
  EXPECT_EQ(a.input_arbiter_grants, b.input_arbiter_grants);
  EXPECT_EQ(a.output_arbiter_requests, b.output_arbiter_requests);
  EXPECT_EQ(a.output_arbiter_grants, b.output_arbiter_grants);
  EXPECT_EQ(a.output_conflict_cycles, b.output_conflict_cycles);
  EXPECT_EQ(a.port_multi_request_cycles, b.port_multi_request_cycles);
  EXPECT_EQ(a.vin_conflict_distinct_output, b.vin_conflict_distinct_output);
  EXPECT_EQ(a.vin_conflict_same_output, b.vin_conflict_same_output);
  EXPECT_EQ(a.single_vin_serialized, b.single_vin_serialized);
  EXPECT_EQ(a.stall_empty, b.stall_empty);
  EXPECT_EQ(a.stall_va, b.stall_va);
  EXPECT_EQ(a.stall_credit, b.stall_credit);
  EXPECT_EQ(a.stall_sa, b.stall_sa);
  EXPECT_EQ(a.vc_moving, b.vc_moving);
  EXPECT_EQ(a.crossbar_utilization, b.crossbar_utilization);
  EXPECT_EQ(a.mean_port_occupancy, b.mean_port_occupancy);
  EXPECT_EQ(a.p99_port_occupancy, b.p99_port_occupancy);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].start, b.windows[i].start);
    EXPECT_EQ(a.windows[i].width, b.windows[i].width);
    EXPECT_EQ(a.windows[i].sa_grants, b.windows[i].sa_grants);
    EXPECT_EQ(a.windows[i].packets_ejected, b.windows[i].packets_ejected);
  }
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].packet, b.trace[i].packet);
    EXPECT_EQ(a.trace[i].kind, b.trace[i].kind);
    EXPECT_EQ(a.trace[i].cycle, b.trace[i].cycle);
    EXPECT_EQ(a.trace[i].router, b.trace[i].router);
  }
}

/// Every metric, the outcome, the timeline and the telemetry must match
/// exactly — doubles compared bitwise, since the resumed run is supposed to
/// have executed the same arithmetic in the same order.
void ExpectResultsIdentical(const NetworkSimResult& a,
                            const NetworkSimResult& b) {
  EXPECT_EQ(a.offered_ppc, b.offered_ppc);
  EXPECT_EQ(a.accepted_ppc, b.accepted_ppc);
  EXPECT_EQ(a.accepted_fpc, b.accepted_fpc);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.avg_net_latency, b.avg_net_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.min_node_ppc, b.min_node_ppc);
  EXPECT_EQ(a.max_node_ppc, b.max_node_ppc);
  EXPECT_EQ(a.max_min_ratio, b.max_min_ratio);
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.activity.buffer_writes, b.activity.buffer_writes);
  EXPECT_EQ(a.activity.xbar_traversals, b.activity.xbar_traversals);
  EXPECT_EQ(a.activity.link_flits, b.activity.link_flits);
  EXPECT_EQ(a.activity.sa_requests, b.activity.sa_requests);
  EXPECT_EQ(a.activity.sa_grants, b.activity.sa_grants);
  EXPECT_EQ(a.packets_corrupted, b.packets_corrupted);
  EXPECT_EQ(a.outcome.status, b.outcome.status);
  EXPECT_EQ(a.outcome.cycle, b.outcome.cycle);
  EXPECT_EQ(a.outcome.unreachable_packets, b.outcome.unreachable_packets);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].start, b.timeline[i].start);
    EXPECT_EQ(a.timeline[i].packets, b.timeline[i].packets);
    EXPECT_EQ(a.timeline[i].accepted_ppc, b.timeline[i].accepted_ppc);
    EXPECT_EQ(a.timeline[i].avg_latency, b.timeline[i].avg_latency);
  }
  ExpectTelemetryIdentical(a.telemetry, b.telemetry);
}

NetworkSimConfig ShortConfig(TopologyKind topology, AllocScheme scheme) {
  NetworkSimConfig config;
  config.topology = topology;
  config.scheme = scheme;
  config.injection_rate = 0.08;
  config.warmup = 400;
  config.measure = 1'000;
  config.drain = 300;
  config.sample_interval = 250;
  config.seed = 17;
  return config;
}

/// Runs `config` three ways: straight through; with periodic checkpoints
/// enabled (saving must not perturb anything); and restored from the last
/// periodic checkpoint. All three must agree bitwise.
void CheckResumeEquivalence(NetworkSimConfig config, const char* tag) {
  SCOPED_TRACE(tag);
  const NetworkSimResult straight = RunNetworkSim(config);

  const std::string path = TempPath(std::string("resume_") + tag + ".ckpt");
  NetworkSimConfig saving = config;
  saving.checkpoint_path = path;
  saving.checkpoint_every = 700;  // last checkpoint lands mid-measurement
  const NetworkSimResult with_saves = RunNetworkSim(saving);
  ExpectResultsIdentical(straight, with_saves);

  NetworkSimConfig resuming = config;
  resuming.restore_path = path;
  const NetworkSimResult resumed = RunNetworkSim(resuming);
  ExpectResultsIdentical(straight, resumed);
  std::remove(path.c_str());
}

TEST(ResumeEquivalence, MeshVix) {
  CheckResumeEquivalence(ShortConfig(TopologyKind::kMesh, AllocScheme::kVix),
                         "mesh_vix");
}
TEST(ResumeEquivalence, MeshInputFirst) {
  CheckResumeEquivalence(
      ShortConfig(TopologyKind::kMesh, AllocScheme::kInputFirst), "mesh_if");
}
TEST(ResumeEquivalence, MeshAugmentingPath) {
  CheckResumeEquivalence(
      ShortConfig(TopologyKind::kMesh, AllocScheme::kAugmentingPath),
      "mesh_ap");
}
TEST(ResumeEquivalence, TorusVix) {
  CheckResumeEquivalence(ShortConfig(TopologyKind::kTorus, AllocScheme::kVix),
                         "torus_vix");
}
TEST(ResumeEquivalence, TorusInputFirst) {
  CheckResumeEquivalence(
      ShortConfig(TopologyKind::kTorus, AllocScheme::kInputFirst), "torus_if");
}
TEST(ResumeEquivalence, TorusAugmentingPath) {
  CheckResumeEquivalence(
      ShortConfig(TopologyKind::kTorus, AllocScheme::kAugmentingPath),
      "torus_ap");
}
TEST(ResumeEquivalence, FbflyVix) {
  CheckResumeEquivalence(ShortConfig(TopologyKind::kFBfly, AllocScheme::kVix),
                         "fbfly_vix");
}
TEST(ResumeEquivalence, FbflyInputFirst) {
  CheckResumeEquivalence(
      ShortConfig(TopologyKind::kFBfly, AllocScheme::kInputFirst), "fbfly_if");
}
TEST(ResumeEquivalence, FbflyAugmentingPath) {
  CheckResumeEquivalence(
      ShortConfig(TopologyKind::kFBfly, AllocScheme::kAugmentingPath),
      "fbfly_ap");
}

TEST(ResumeEquivalence, WithFaultsMidSchedule) {
  // Transient outages every 500 cycles for 100, router stalls, payload
  // corruption, plus a couple of permanently dead links. checkpoint_every
  // = 700 puts the restore point mid-way through fault windows, so the
  // restored run must re-derive the same masks from (fault model, cycle).
  NetworkSimConfig config =
      ShortConfig(TopologyKind::kMesh, AllocScheme::kVix);
  config.faults.transient_rate = 0.08;
  config.faults.transient_period = 500;
  config.faults.transient_duration = 100;
  config.faults.router_stall_rate = 0.05;
  config.faults.stall_period = 500;
  config.faults.stall_duration = 50;
  config.faults.corruption_rate = 0.002;
  // Sever two real inter-router links (interior router 9 of the 8x8 mesh).
  const auto mesh = MakeMesh(8, 8);
  for (PortId p = 0; p < mesh->Radix() &&
                     config.faults.forced_link_down.size() < 2;
       ++p) {
    if (mesh->LinksFor(9)[p].neighbor >= 0) {
      config.faults.forced_link_down.emplace_back(9, p);
    }
  }
  config.watchdog_cycles = 2'000;
  CheckResumeEquivalence(config, "mesh_vix_faults");
}

TEST(ResumeEquivalence, WithTelemetryAndTrace) {
  NetworkSimConfig config =
      ShortConfig(TopologyKind::kMesh, AllocScheme::kVix);
  config.telemetry.enabled = true;
  config.telemetry.window_cycles = 256;
  config.telemetry.trace_sample_period = 7;
  CheckResumeEquivalence(config, "mesh_vix_telemetry");
}

TEST(ResumeEquivalence, BurstyInjection) {
  NetworkSimConfig config =
      ShortConfig(TopologyKind::kMesh, AllocScheme::kInputFirst);
  config.bursty = true;
  config.burst_on_rate = 0.4;
  config.mean_burst_cycles = 24.0;
  CheckResumeEquivalence(config, "mesh_if_bursty");
}

// ---------------------------------------------------------------------------
// Guard rails: wrong config, corrupted file, truncated file.

TEST(SimCheckpoint, ConfigMismatchThrows) {
  NetworkSimConfig config =
      ShortConfig(TopologyKind::kMesh, AllocScheme::kVix);
  const std::string path = TempPath("fingerprint.ckpt");
  config.checkpoint_path = path;
  config.checkpoint_every = 700;
  (void)RunNetworkSim(config);

  NetworkSimConfig other = config;
  other.checkpoint_path.clear();
  other.checkpoint_every = 0;
  other.restore_path = path;
  other.seed = config.seed + 1;  // would evolve differently
  EXPECT_THROW(RunNetworkSim(other), SimError);

  // Telemetry knobs are deliberately outside the fingerprint: a replay may
  // switch tracing on without invalidating the checkpoint.
  NetworkSimConfig replay = config;
  replay.checkpoint_path.clear();
  replay.checkpoint_every = 0;
  replay.restore_path = path;
  replay.telemetry.enabled = true;
  replay.telemetry.trace_sample_period = 3;
  const NetworkSimResult r = RunNetworkSim(replay);
  EXPECT_EQ(r.outcome.status, SimStatus::kOk) << r.outcome.message;
  std::remove(path.c_str());
}

TEST(SimCheckpoint, CorruptedAndTruncatedFilesThrowRecoverably) {
  NetworkSimConfig config =
      ShortConfig(TopologyKind::kMesh, AllocScheme::kVix);
  const std::string path = TempPath("corrupt.ckpt");
  config.checkpoint_path = path;
  config.checkpoint_every = 700;
  (void)RunNetworkSim(config);
  const std::string good = Slurp(path);
  ASSERT_GT(good.size(), 1000u);

  NetworkSimConfig restore = config;
  restore.checkpoint_path.clear();
  restore.checkpoint_every = 0;
  restore.restore_path = path;

  // Bit-flip in the middle of the network section's payload.
  std::string corrupted = good;
  corrupted[good.size() / 2] ^= 0x10;
  Spit(path, corrupted);
  EXPECT_THROW(RunNetworkSim(restore), SimError);

  // Truncations at several depths, including mid-header.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{5}, std::size_t{40}, good.size() / 3,
        good.size() - 1}) {
    Spit(path, good.substr(0, len));
    EXPECT_THROW(RunNetworkSim(restore), SimError) << "len=" << len;
  }

  // Missing file entirely.
  std::remove(path.c_str());
  EXPECT_THROW(RunNetworkSim(restore), SimError);
}

TEST(SimCheckpoint, ValidationRejectsIncoherentKnobs) {
  NetworkSimConfig config;
  config.checkpoint_every = 100;  // no checkpoint_path
  EXPECT_THROW(ValidateNetworkSimConfig(config), SimError);

  NetworkSimConfig config2;
  config2.watchdog_cycles = 0;
  config2.deadlock_checkpoint_path = "x.ckpt";  // watchdog disabled
  EXPECT_THROW(ValidateNetworkSimConfig(config2), SimError);
}

// ---------------------------------------------------------------------------
// Deadlock post-mortem: the rolling pre-deadlock checkpoint replays into
// the same deadlock, and the replay can run with tracing enabled.

class RingRouting final : public RoutingAlgorithm {
 public:
  explicit RingRouting(const Topology& mesh) : mesh_(&mesh) {
    static const RouterId kNext[4] = {1, 3, 0, 2};
    next_port_.assign(4, kInvalidPort);
    for (RouterId r = 0; r < 4; ++r) {
      for (PortId p = 0; p < mesh.Radix(); ++p) {
        if (mesh.LinksFor(r)[p].neighbor == kNext[r]) next_port_[r] = p;
      }
    }
  }
  PortId Route(RouterId router, NodeId dst) const override {
    if (mesh_->RouterOfNode(dst) == router) {
      return mesh_->EjectPortOfNode(dst);
    }
    return next_port_[router];
  }
  PortDimension DimensionOf(PortId port) const override {
    // Mesh port convention: E/W then N/S then locals.
    if (port <= 1) return PortDimension::kX;
    if (port <= 3) return PortDimension::kY;
    return PortDimension::kLocal;
  }

 private:
  const Topology* mesh_;
  std::vector<PortId> next_port_;
};

/// 2x2 mesh whose inter-router traffic is forced around the cycle
/// r0 -> r1 -> r3 -> r2 -> r0 (single VC): a textbook channel-dependency
/// cycle that wedges under load. Mirrors fault_test's watchdog fixture.
class RingTopology final : public Topology {
 public:
  RingTopology() : mesh_(MakeMesh(2, 2)) {}
  TopologyKind Kind() const override { return mesh_->Kind(); }
  int NumRouters() const override { return mesh_->NumRouters(); }
  int NumNodes() const override { return mesh_->NumNodes(); }
  int Radix() const override { return mesh_->Radix(); }
  RouterId RouterOfNode(NodeId node) const override {
    return mesh_->RouterOfNode(node);
  }
  PortId InjectPortOfNode(NodeId node) const override {
    return mesh_->InjectPortOfNode(node);
  }
  PortId EjectPortOfNode(NodeId node) const override {
    return mesh_->EjectPortOfNode(node);
  }
  std::vector<OutputLinkInfo> LinksFor(RouterId router) const override {
    return mesh_->LinksFor(router);
  }
  int Cols() const override { return mesh_->Cols(); }
  int Rows() const override { return mesh_->Rows(); }
  int RouterHops(NodeId src, NodeId dst) const override {
    return mesh_->RouterHops(src, dst);
  }

 private:
  std::unique_ptr<Topology> mesh_;
};

NetworkSimConfig DeadlockConfig() {
  NetworkSimConfig config;
  config.topology_factory = [] { return std::make_unique<RingTopology>(); };
  config.routing_factory =
      [](const Topology& topo) -> std::unique_ptr<RoutingAlgorithm> {
    return std::make_unique<RingRouting>(topo);
  };
  config.num_vcs = 1;
  config.buffer_depth = 2;
  config.packet_size = 6;
  config.injection_rate = 0.30;
  config.warmup = 500;
  config.measure = 2'000;
  config.drain = 500;
  config.watchdog_cycles = 400;
  config.seed = 3;
  return config;
}

TEST(DeadlockPostMortem, RollingCheckpointReplaysIntoTheSameDeadlock) {
  const std::string path = TempPath("predeadlock.ckpt");
  NetworkSimConfig config = DeadlockConfig();
  config.deadlock_checkpoint_path = path;
  const NetworkSimResult crashed = RunNetworkSim(config);
  ASSERT_EQ(crashed.outcome.status, SimStatus::kDeadlock)
      << crashed.outcome.message;
  ASSERT_EQ(crashed.outcome.checkpoint_path, path);
  ASSERT_TRUE(std::filesystem::exists(path));

  // The rolling checkpoint must predate detection by at least one full
  // watchdog window, leaving the entire wedging sequence replayable.
  SnapshotReader peek(ReadSnapshotFile(path));
  peek.OpenSection("sim");
  const Cycle resume_at = peek.U64();
  EXPECT_LE(resume_at + config.watchdog_cycles, crashed.outcome.cycle);

  // Replay with the packet trace switched on — the point of the feature:
  // full observability over the final cycles without re-running from 0.
  NetworkSimConfig replay = DeadlockConfig();
  replay.restore_path = path;
  replay.telemetry.enabled = true;
  replay.telemetry.trace_sample_period = 1;
  const NetworkSimResult replayed = RunNetworkSim(replay);
  EXPECT_EQ(replayed.outcome.status, SimStatus::kDeadlock);
  EXPECT_EQ(replayed.outcome.cycle, crashed.outcome.cycle);
  EXPECT_EQ(replayed.outcome.message, crashed.outcome.message);
  ASSERT_EQ(replayed.outcome.router_occupancy.size(),
            crashed.outcome.router_occupancy.size());
  for (std::size_t i = 0; i < crashed.outcome.router_occupancy.size(); ++i) {
    EXPECT_EQ(replayed.outcome.router_occupancy[i],
              crashed.outcome.router_occupancy[i]);
  }
  EXPECT_FALSE(replayed.telemetry.trace.empty());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Sweep resume: a killed sweep re-run over the same result store only
// simulates the missing points, and the merged results are bitwise
// identical to an uninterrupted sweep.

TEST(SweepResume, CachedPointsAreLoadedNotRerun) {
  std::vector<NetworkSimConfig> points;
  for (int i = 0; i < 6; ++i) {
    NetworkSimConfig c = ShortConfig(TopologyKind::kMesh, AllocScheme::kVix);
    c.injection_rate = 0.02 + 0.02 * i;
    c.sample_interval = 0;
    points.push_back(c);
  }
  const std::vector<NetworkSimResult> straight = RunSweep(points, 2);

  const std::string dir = TempPath("sweepdir");
  std::filesystem::remove_all(dir);
  {
    SweepRunner first(2);
    first.SetCache(std::make_shared<ResultStore>(dir));
    const std::vector<NetworkSimResult> r1 = first.Run(points);
    EXPECT_EQ(first.resumed_points(), 0u);
    for (std::size_t i = 0; i < points.size(); ++i) {
      ExpectResultsIdentical(straight[i], r1[i]);
    }
  }

  // Simulate an interrupted sweep: two results lost, one corrupted.
  auto store = std::make_shared<ResultStore>(dir);
  ASSERT_TRUE(std::filesystem::remove(store->EntryPath(points[1])));
  ASSERT_TRUE(std::filesystem::remove(store->EntryPath(points[4])));
  std::string damaged = Slurp(store->EntryPath(points[2]));
  damaged[damaged.size() / 2] ^= 0x08;
  Spit(store->EntryPath(points[2]), damaged);

  SweepRunner second(2);
  second.SetCache(store);
  const std::vector<NetworkSimResult> r2 = second.Run(points);
  EXPECT_EQ(second.resumed_points(), 3u);  // 0, 3, 5 from the store
  for (std::size_t i = 0; i < points.size(); ++i) {
    ExpectResultsIdentical(straight[i], r2[i]);
  }
  std::filesystem::remove_all(dir);
}

TEST(SweepResume, StaleCacheFromDifferentConfigIsIgnored) {
  NetworkSimConfig a = ShortConfig(TopologyKind::kMesh, AllocScheme::kVix);
  a.sample_interval = 0;
  NetworkSimConfig b = a;
  b.seed = a.seed + 99;

  const std::string dir = TempPath("staledir");
  std::filesystem::remove_all(dir);
  {
    SweepRunner first(1);
    first.SetCache(std::make_shared<ResultStore>(dir));
    (void)first.Run({a});
  }
  // Different config -> different result key -> different entry path: b
  // misses even though a's entry sits in the same store.
  SweepRunner second(1);
  second.SetCache(std::make_shared<ResultStore>(dir));
  const std::vector<NetworkSimResult> rb = second.Run({b});
  EXPECT_EQ(second.resumed_points(), 0u);
  ExpectResultsIdentical(RunNetworkSim(b), rb[0]);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace vixnoc
