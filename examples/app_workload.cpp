// Full-system example: run a multiprogrammed workload on the 64-core
// manycore model (cores + L1s + shared L2 banks + memory controllers over
// the NoC) and report per-application IPC under two allocators.
//
//   $ ./build/examples/app_workload [Mix1..Mix8]
//
// Demonstrates: the benchmark catalogue, workload mixes, the application
// simulator, and how network allocation shows up as system performance.
#include <cstdio>
#include <cstring>
#include <map>

#include "app/app_sim.hpp"

using namespace vixnoc;
using namespace vixnoc::app;

int main(int argc, char** argv) {
  const WorkloadMix* mix = &PaperMixes()[3];  // Mix4 by default
  if (argc > 1) {
    for (const WorkloadMix& m : PaperMixes()) {
      if (m.name == argv[1]) mix = &m;
    }
  }

  std::printf("workload %s (avg MPKI %.1f):", mix->name.c_str(),
              MixAverageMpki(*mix));
  for (const auto& [name, count] : mix->apps) {
    std::printf(" %s(x%d)", name.c_str(), count);
  }
  std::printf("\n\n");

  AppSimConfig config;
  config.warmup = 8'000;
  config.measure = 30'000;
  const auto cores = ExpandMix(*mix);

  config.scheme = AllocScheme::kInputFirst;
  const AppSimResult base = RunAppSim(config, cores);
  config.scheme = AllocScheme::kVix;
  const AppSimResult vix = RunAppSim(config, cores);

  // Per-benchmark average IPC under each scheme.
  std::map<std::string, std::pair<double, int>> by_app_base, by_app_vix;
  for (std::size_t i = 0; i < cores.size(); ++i) {
    by_app_base[cores[i].name].first += base.core_ipc[i];
    by_app_base[cores[i].name].second += 1;
    by_app_vix[cores[i].name].first += vix.core_ipc[i];
    by_app_vix[cores[i].name].second += 1;
  }
  std::printf("%-12s %10s %10s %10s\n", "benchmark", "IPC (IF)", "IPC (VIX)",
              "speedup");
  for (const auto& [name, acc] : by_app_base) {
    const double ipc_base = acc.first / acc.second;
    const double ipc_vix =
        by_app_vix[name].first / by_app_vix[name].second;
    std::printf("%-12s %10.3f %10.3f %10.3f\n", name.c_str(), ipc_base,
                ipc_vix, ipc_vix / ipc_base);
  }

  std::printf("\naggregate IPC: %.2f (IF) -> %.2f (VIX), speedup %.3f\n",
              base.aggregate_ipc, vix.aggregate_ipc,
              vix.aggregate_ipc / base.aggregate_ipc);
  std::printf("avg miss latency: %.1f -> %.1f cycles\n",
              base.avg_miss_latency, vix.avg_miss_latency);
  return 0;
}
