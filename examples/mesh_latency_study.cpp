// Latency-vs-load study: sweeps injection rate on a chosen topology and
// prints the classic latency/throughput curves for several allocation
// schemes, plus each scheme's saturation point.
//
//   $ ./build/examples/mesh_latency_study
//   $ ./build/examples/mesh_latency_study topology=fbfly threads=4
//
// Keys (all optional): topology=mesh|cmesh|fbfly threads=<N>
//
// Demonstrates: topology selection, scheme sweeps, saturation detection,
// and running the whole rate x scheme grid concurrently on a SweepRunner
// (threads=0 means $VIXNOC_THREADS if set, else all cores; results are
// identical to a serial run regardless of thread count).
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "sim/sweep.hpp"

using namespace vixnoc;

int main(int argc, char** argv) {
  ArgMap args = ArgMap::Parse(argc, argv);
  TopologyKind topo = TopologyKind::kMesh;
  if (!ParseTopologyKind(args.GetString("topology", "mesh"), &topo)) {
    std::fprintf(stderr, "unrecognized topology name\n");
    return 2;
  }
  const int threads =
      ResolveThreadCount(static_cast<int>(args.GetInt("threads", 0)));
  args.CheckAllConsumed();

  const std::vector<AllocScheme> schemes = {
      AllocScheme::kInputFirst, AllocScheme::kWavefront, AllocScheme::kVix};
  std::vector<double> rates;
  for (double rate = 0.02; rate <= 0.205; rate += 0.02) rates.push_back(rate);

  // One grid point per rate x scheme, run concurrently; results come back
  // in submission order, so results[r * schemes.size() + s] is (rate r,
  // scheme s).
  std::vector<NetworkSimConfig> points;
  for (double rate : rates) {
    for (AllocScheme scheme : schemes) {
      NetworkSimConfig c;
      c.topology = topo;
      c.scheme = scheme;
      c.injection_rate = rate;
      c.warmup = 3'000;
      c.measure = 10'000;
      c.drain = 2'000;
      points.push_back(c);
    }
  }
  const std::vector<NetworkSimResult> results = RunSweep(points, threads);

  std::printf("latency vs offered load, %s (64 nodes, uniform random)\n\n",
              ToString(topo).c_str());
  std::printf("%8s", "offered");
  for (AllocScheme s : schemes) std::printf(" %12s", ToString(s).c_str());
  std::printf("   [avg packet latency, cycles]\n");

  std::vector<double> saturation(schemes.size(), 0.0);
  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    std::printf("%8.3f", rates[ri]);
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      const NetworkSimResult& r = results[ri * schemes.size() + i];
      if (r.saturated) {
        std::printf(" %12s", "saturated");
      } else {
        std::printf(" %12.1f", r.avg_latency);
        saturation[i] = std::max(saturation[i], r.accepted_ppc);
      }
    }
    std::printf("\n");
  }

  std::printf("\nhighest un-saturated accepted load per scheme:\n");
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    std::printf("  %-4s %.4f packets/cycle/node\n",
                ToString(schemes[i]).c_str(), saturation[i]);
  }
  return 0;
}
