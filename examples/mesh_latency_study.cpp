// Latency-vs-load study: sweeps injection rate on a chosen topology and
// prints the classic latency/throughput curves for several allocation
// schemes, plus each scheme's saturation point.
//
//   $ ./build/examples/mesh_latency_study [mesh|cmesh|fbfly]
//
// Demonstrates: topology selection, scheme sweeps, saturation detection,
// and the structured results the sim layer exposes.
#include <cstdio>
#include <cstring>
#include <vector>

#include "sim/network_sim.hpp"

using namespace vixnoc;

int main(int argc, char** argv) {
  TopologyKind topo = TopologyKind::kMesh;
  if (argc > 1) {
    if (std::strcmp(argv[1], "cmesh") == 0) topo = TopologyKind::kCMesh;
    if (std::strcmp(argv[1], "fbfly") == 0) topo = TopologyKind::kFBfly;
  }

  const std::vector<AllocScheme> schemes = {
      AllocScheme::kInputFirst, AllocScheme::kWavefront, AllocScheme::kVix};
  std::printf("latency vs offered load, %s (64 nodes, uniform random)\n\n",
              ToString(topo).c_str());
  std::printf("%8s", "offered");
  for (AllocScheme s : schemes) std::printf(" %12s", ToString(s).c_str());
  std::printf("   [avg packet latency, cycles]\n");

  std::vector<double> saturation(schemes.size(), 0.0);
  for (double rate = 0.02; rate <= 0.205; rate += 0.02) {
    std::printf("%8.3f", rate);
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      NetworkSimConfig c;
      c.topology = topo;
      c.scheme = schemes[i];
      c.injection_rate = rate;
      c.warmup = 3'000;
      c.measure = 10'000;
      c.drain = 2'000;
      const auto r = RunNetworkSim(c);
      if (r.saturated) {
        std::printf(" %12s", "saturated");
      } else {
        std::printf(" %12.1f", r.avg_latency);
        saturation[i] = std::max(saturation[i], r.accepted_ppc);
      }
    }
    std::printf("\n");
  }

  std::printf("\nhighest un-saturated accepted load per scheme:\n");
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    std::printf("  %-4s %.4f packets/cycle/node\n",
                ToString(schemes[i]).c_str(), saturation[i]);
  }
  return 0;
}
