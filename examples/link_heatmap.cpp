// Link-utilization heatmap: visualize where traffic concentrates in the
// mesh, using the per-output-port flit counters.
//
//   $ ./build/examples/link_heatmap [uniform|transpose|tornado] [if|vix]
//
// Prints an 8x8 grid of per-router crossbar activity (flits/cycle) plus
// the horizontal (East+West) link loads per row — making bisection
// pressure and the center-vs-edge contention that drives saturation
// fairness directly visible.
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/rng.hpp"
#include "network/network.hpp"
#include "topology/topology.hpp"
#include "traffic/patterns.hpp"

using namespace vixnoc;

int main(int argc, char** argv) {
  PatternKind pattern = PatternKind::kUniform;
  if (argc > 1) {
    if (!ParsePatternKind(argv[1], &pattern)) {
      std::fprintf(stderr, "unknown pattern '%s'\n", argv[1]);
      return 2;
    }
  }
  AllocScheme scheme = AllocScheme::kInputFirst;
  if (argc > 2 && !ParseAllocScheme(argv[2], &scheme)) {
    std::fprintf(stderr, "unknown scheme '%s'\n", argv[2]);
    return 2;
  }

  std::shared_ptr<Topology> topo = MakeTopology64(TopologyKind::kMesh);
  NetworkParams params;
  params.router.radix = topo->Radix();
  params.router.num_vcs = 6;
  params.router.buffer_depth = 5;
  params.router.scheme = scheme;
  params.router.vc_policy = RouterConfig::DefaultPolicyFor(scheme);
  Network net(topo, params);

  auto pat = MakePattern(pattern);
  Rng rng(1);
  constexpr Cycle kWarmup = 3'000, kMeasure = 10'000;
  const double rate = 0.25;  // saturating load

  for (Cycle t = 0; t < kWarmup + kMeasure; ++t) {
    if (t == kWarmup) net.ClearActivity();
    for (NodeId n = 0; n < 64; ++n) {
      if (rng.NextBool(rate)) net.EnqueuePacket(n, pat->Dest(n, 64, rng), 4);
    }
    net.Step();
  }

  std::printf("crossbar activity per router [flits/cycle], pattern=%s "
              "scheme=%s @ saturating load\n\n",
              pat->Name().c_str(), ToString(scheme).c_str());
  for (int row = 7; row >= 0; --row) {
    for (int col = 0; col < 8; ++col) {
      const auto& a = net.router(row * 8 + col).activity();
      std::printf("%5.2f ",
                  static_cast<double>(a.xbar_traversals) / kMeasure);
    }
    std::printf("\n");
  }

  std::printf("\nEast-link load per router [flits/cycle] "
              "(bisection pressure):\n\n");
  for (int row = 7; row >= 0; --row) {
    for (int col = 0; col < 8; ++col) {
      std::printf("%5.2f ",
                  static_cast<double>(
                      net.router(row * 8 + col).FlitsSentOn(0)) /
                      kMeasure);
    }
    std::printf("\n");
  }
  std::printf("\n(center columns carry the most East-West traffic under "
              "uniform random\n — the physical reason center nodes starve "
              "first at deep saturation.)\n");
  return 0;
}
