// Buffer-sizing study (the paper's §4.6 argument as a design exercise):
// can VIX pay for itself by shrinking input buffers?
//
//   $ ./build/examples/buffer_sizing
//
// Sweeps VC count x buffer depth for the baseline and VIX routers on the
// mesh and prints saturation throughput per configuration together with
// the total buffer budget (VCs x depth x ports x routers), so the
// buffers-vs-throughput trade-off is directly readable.
#include <cstdio>

#include "sim/network_sim.hpp"

using namespace vixnoc;

namespace {

double SaturationThroughput(AllocScheme scheme, int vcs, int depth) {
  NetworkSimConfig c;
  c.scheme = scheme;
  c.num_vcs = vcs;
  c.buffer_depth = depth;
  c.injection_rate = c.MaxInjectionRate();
  c.warmup = 4'000;
  c.measure = 12'000;
  c.drain = 1'000;
  return RunNetworkSim(c).accepted_ppc;
}

}  // namespace

int main() {
  std::printf("buffer sizing on the 8x8 mesh: saturation throughput "
              "[packets/cycle/node]\n");
  std::printf("buffer budget = VCs x depth flits per input port\n\n");
  std::printf("%6s %6s %8s | %10s %10s | %s\n", "VCs", "depth", "flits/port",
              "no VIX", "1:2 VIX", "VIX gain");

  double base_6x5 = 0.0;
  struct Config {
    int vcs, depth;
  };
  const Config configs[] = {{2, 5}, {4, 3}, {4, 5}, {6, 3}, {6, 5}, {8, 5}};
  for (const auto& [vcs, depth] : configs) {
    const double base = SaturationThroughput(AllocScheme::kInputFirst, vcs,
                                             depth);
    const double vix = SaturationThroughput(AllocScheme::kVix, vcs, depth);
    if (vcs == 6 && depth == 5) base_6x5 = base;
    std::printf("%6d %6d %8d | %10.4f %10.4f | %+.1f%%\n", vcs, depth,
                vcs * depth, base, vix, 100.0 * (vix / base - 1.0));
  }

  const double vix_4x5 = SaturationThroughput(AllocScheme::kVix, 4, 5);
  std::printf("\npaper Section 4.6: 1:2 VIX with 4 VCs (20 flits/port, a 33%%"
              " buffer cut)\nvs the 6 VC baseline (30 flits/port): %+.1f%% "
              "throughput (paper: >+10%%)\n",
              100.0 * (vix_4x5 / base_6x5 - 1.0));
  return 0;
}
