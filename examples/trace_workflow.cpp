// Trace workflow: record a packet trace once, replay it under several
// allocators, and show that the comparison is free of injection noise.
//
//   $ ./build/examples/trace_workflow [trace-file]
//
// Without an argument a fresh uniform-random trace is generated, saved to
// a temp file, reloaded (exercising the on-disk format), and replayed.
// Passing a path replays an externally produced trace instead (format:
// `cycle src dst size_flits` per line, '#' comments).
#include <cstdio>
#include <string>

#include "sim/trace_sim.hpp"

using namespace vixnoc;

int main(int argc, char** argv) {
  PacketTrace trace;
  if (argc > 1) {
    trace = PacketTrace::Load(argv[1], /*num_nodes=*/64);
    std::printf("loaded %zu packets from %s (last cycle %llu)\n\n",
                trace.size(), argv[1],
                static_cast<unsigned long long>(trace.LastCycle()));
  } else {
    trace = GeneratePatternTrace(PatternKind::kUniform, /*rate=*/0.11,
                                 /*num_nodes=*/64, /*cycles=*/20'000,
                                 /*packet_size=*/4, /*seed=*/42);
    const std::string path = "/tmp/vixnoc_example_trace.txt";
    trace.Save(path);
    trace = PacketTrace::Load(path, 64);  // round-trip through the format
    std::printf("generated and saved %zu packets to %s\n\n", trace.size(),
                path.c_str());
  }

  NetworkSimConfig config;
  config.warmup = 4'000;
  config.measure = 12'000;
  config.drain = 4'000;

  std::printf("%-6s %12s %12s %10s\n", "scheme", "accepted", "latency",
              "max/min");
  for (AllocScheme scheme :
       {AllocScheme::kInputFirst, AllocScheme::kWavefront,
        AllocScheme::kAugmentingPath, AllocScheme::kPacketChaining,
        AllocScheme::kVix}) {
    config.scheme = scheme;
    const NetworkSimResult r = RunTraceSim(config, trace);
    std::printf("%-6s %12.4f %12.1f %10.2f\n", ToString(scheme).c_str(),
                r.accepted_ppc, r.avg_latency, r.max_min_ratio);
  }
  std::printf("\nevery scheme saw the *identical* packet schedule: any "
              "difference above is\npurely the allocator, with zero "
              "injection-process noise.\n");
  return 0;
}
