// noc_explorer: a general-purpose command-line driver over the whole
// library — the tool a downstream user reaches for first.
//
//   $ ./build/examples/noc_explorer topology=mesh scheme=vix rate=0.1
//   $ ./build/examples/noc_explorer scheme=wf pattern=transpose vcs=4 \
//         depth=3 packet=4 warmup=5000 measure=20000 csv=out.csv
//   $ ./build/examples/noc_explorer sweep=1 scheme=vix csv=sweep.csv
//
// Keys (all optional): topology=mesh|cmesh|fbfly scheme=if|wf|ap|vix|
// ideal|pc|islip|sparoflo|serenade pattern=uniform|transpose|bitcomp|
// bitrev|tornado|hotspot|incast routing=dor|adaptive_min|fault_aware
// hotspot=<node> (hot node for pattern=hotspot, receiver for
// pattern=incast; default derives an off-center node from the topology)
// fanin=<M> (pattern=incast sender count; default all nodes but the
// receiver)
// rate=<packets/cycle/node> vcs= depth= packet= seed= warmup= measure=
// drain= pipeline=3|5 sweep=0|1 csv=<path> threads=<N>
// checkpoint=<path> checkpoint_every=<N> restore=<path>
// isolate=thread|process point_timeout=<seconds> retries=<N>
// server=<socket>
//
// server=SOCK sends every point to a running vixnocd daemon instead of
// simulating locally: hits in the daemon's content-addressed store come
// back without any computation, misses are computed once daemon-side no
// matter how many clients ask. Mutually exclusive with checkpoint= and
// isolate=process (the daemon owns the cache and the compute pool).
//
// threads=N sets the SweepRunner worker count for sweep=1 (default 0 =
// $VIXNOC_THREADS if set, else all cores); results are identical to a
// serial sweep regardless of thread count.
//
// isolate=process runs each sweep point in a vixnoc_sweep_worker
// subprocess via SweepCoordinator: a point that segfaults, aborts, or
// hangs past point_timeout= seconds is killed, classified, and retried
// up to retries= times with exponential backoff; the rest of the sweep
// always completes, and surviving points stay bitwise identical to the
// in-process path.
//
// Checkpointing: in single-run mode, checkpoint=path checkpoint_every=N
// saves the full simulation state every N cycles (atomic overwrite), and
// restore=path resumes a run from such a file — the resumed run's output
// is bitwise identical to an uninterrupted one. In sweep mode,
// checkpoint=dir caches each completed point's result under the directory,
// so re-running the same command after an interruption only simulates the
// missing points.
#include <cstdio>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "app/sim_config_args.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "exec/coordinator.hpp"
#include "server/client.hpp"
#include "sim/sweep.hpp"
#include "store/result_store.hpp"

using namespace vixnoc;

namespace {

void PrintResult(const NetworkSimConfig& config,
                 const NetworkSimResult& r) {
  std::printf(
      "%-6s %-9s %-10s rate=%.3f | accepted=%.4f ppc (%.1f flits/cyc) "
      "lat=%.1f p99=%.0f maxmin=%.2f%s\n",
      ToString(config.topology).c_str(), ToString(config.scheme).c_str(),
      MakePattern(config.pattern)->Name().c_str(), config.injection_rate,
      r.accepted_ppc, r.accepted_fpc, r.avg_latency, r.p99_latency,
      r.max_min_ratio, r.saturated ? "  [saturated]" : "");
}

std::vector<std::string> CsvRow(const NetworkSimConfig& config,
                                const NetworkSimResult& r) {
  return {ToString(config.topology),
          ToString(config.scheme),
          MakePattern(config.pattern)->Name(),
          std::to_string(config.injection_rate),
          std::to_string(r.accepted_ppc),
          std::to_string(r.accepted_fpc),
          std::to_string(r.avg_latency),
          std::to_string(r.p99_latency),
          std::to_string(r.max_min_ratio),
          std::to_string(r.saturated ? 1 : 0)};
}

}  // namespace

int main(int argc, char** argv) {
  ArgMap cli = ArgMap::Parse(argc, argv);
  ArgMap args;
  // Optional config file; command-line keys override file keys.
  if (cli.Has("config")) {
    args = ArgMap::FromFile(cli.GetString("config", ""));
  }
  args.Merge(cli);
  (void)args.GetString("config", "");  // consumed above

  NetworkSimConfig config;
  if (!SimConfigFromArgs(args, &config)) return 2;
  const bool sweep = args.GetBool("sweep", false);
  const std::string csv_path = args.GetString("csv", "");
  const int threads =
      ResolveThreadCount(static_cast<int>(args.GetInt("threads", 0)));
  const std::string checkpoint = args.GetString("checkpoint", "");
  const std::string isolate = args.GetString("isolate", "thread");
  if (isolate != "thread" && isolate != "process") {
    std::fprintf(stderr, "isolate=%s is not 'thread' or 'process'\n",
                 isolate.c_str());
    return 2;
  }
  const double point_timeout = args.GetDouble("point_timeout", 0.0);
  const int retries = static_cast<int>(args.GetInt("retries", 2));
  const std::string server = args.GetString("server", "");
  if (!server.empty() && (!checkpoint.empty() || isolate == "process")) {
    std::fprintf(stderr,
                 "server= is mutually exclusive with checkpoint= and "
                 "isolate=process (the daemon owns cache and compute)\n");
    return 2;
  }
  config.checkpoint_every =
      static_cast<Cycle>(args.GetInt("checkpoint_every", 0));
  config.restore_path = args.GetString("restore", "");
  if (!sweep) config.checkpoint_path = checkpoint;
  if (!config.checkpoint_path.empty() && config.checkpoint_every == 0) {
    config.checkpoint_every = 1'000;  // a sensible default cadence
  }
  args.CheckAllConsumed();

  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        csv_path, std::vector<std::string>{
                      "topology", "scheme", "pattern", "offered_ppc",
                      "accepted_ppc", "accepted_fpc", "avg_latency",
                      "p99_latency", "max_min_ratio", "saturated"});
  }

  if (sweep) {
    std::vector<NetworkSimConfig> points;
    for (double rate = 0.02; rate <= config.MaxInjectionRate() + 1e-9;
         rate += 0.01) {
      config.injection_rate = rate;
      points.push_back(config);
    }
    std::vector<NetworkSimResult> results;
    if (!server.empty()) {
      SimClient client(server, 10.0);
      const std::vector<PointReply> replies = client.Batch(points);
      std::size_t hits = 0, computed = 0, coalesced = 0;
      results.resize(points.size());
      for (std::size_t i = 0; i < points.size(); ++i) {
        PointReply reply = replies[i];
        while (reply.status == ServeStatus::kRetryAfter) {
          reply = client.PointWithRetry(points[i]);
        }
        if (reply.status != ServeStatus::kOk) {
          std::fprintf(stderr, "point %zu failed daemon-side: %s\n", i,
                       reply.message.c_str());
          results[i].outcome.status = SimStatus::kExecFailure;
          results[i].outcome.message = reply.message;
          continue;
        }
        results[i] = std::move(reply.result);
        hits += reply.source == ServeSource::kStore;
        computed += reply.source == ServeSource::kComputed;
        coalesced += reply.source == ServeSource::kCoalesced;
      }
      std::printf("served by %s: %zu store hits, %zu computed, "
                  "%zu coalesced\n",
                  server.c_str(), hits, computed, coalesced);
    } else if (isolate == "process") {
      ExecPolicy policy;
      policy.num_workers = threads;
      policy.point_timeout_seconds = point_timeout;
      policy.max_retries = retries;
      policy.checkpoint_dir = checkpoint;
      SweepCoordinator coordinator(policy);
      SweepExecResult exec = coordinator.Run(points);
      results = std::move(exec.results);
      if (exec.cached_points > 0) {
        std::printf("resumed %llu/%zu points from %s\n",
                    static_cast<unsigned long long>(exec.cached_points),
                    points.size(), checkpoint.c_str());
      }
      if (exec.crashes + exec.timeouts + exec.bad_frames +
              exec.spawn_failures >
          0) {
        std::printf(
            "exec: %llu crash(es), %llu timeout(s), %llu bad frame(s), "
            "%llu spawn failure(s); %llu retr%s, %llu point(s) exhausted, "
            "%llu ran in-process\n",
            static_cast<unsigned long long>(exec.crashes),
            static_cast<unsigned long long>(exec.timeouts),
            static_cast<unsigned long long>(exec.bad_frames),
            static_cast<unsigned long long>(exec.spawn_failures),
            static_cast<unsigned long long>(exec.retries),
            exec.retries == 1 ? "y" : "ies",
            static_cast<unsigned long long>(exec.exhausted_points),
            static_cast<unsigned long long>(exec.fallback_points));
      }
    } else {
      SweepRunner runner(threads);
      if (!checkpoint.empty()) {
        runner.SetCache(std::make_shared<ResultStore>(checkpoint));
      }
      results = runner.Run(points);
      if (runner.resumed_points() > 0) {
        std::printf("resumed %zu/%zu points from %s\n",
                    runner.resumed_points(), points.size(),
                    checkpoint.c_str());
      }
      if (runner.defective_cache_points() > 0) {
        std::printf("re-ran %zu point(s) whose cache entries were "
                    "defective\n",
                    runner.defective_cache_points());
      }
    }
    for (std::size_t i = 0; i < points.size(); ++i) {
      PrintResult(points[i], results[i]);
      if (csv) csv->AddRow(CsvRow(points[i], results[i]));
    }
  } else if (!server.empty()) {
    SimClient client(server, 10.0);
    const PointReply reply = client.PointWithRetry(config);
    if (reply.status != ServeStatus::kOk) {
      std::fprintf(stderr, "daemon-side failure: %s\n",
                   reply.message.c_str());
      return 1;
    }
    PrintResult(config, reply.result);
    if (csv) csv->AddRow(CsvRow(config, reply.result));
  } else {
    const auto r = RunNetworkSim(config);
    PrintResult(config, r);
    if (csv) csv->AddRow(CsvRow(config, r));
  }
  if (csv) std::printf("wrote %s\n", csv->path().c_str());
  return 0;
}
