// Adversarial-traffic study of the VIX VC-assignment policies (paper §2.3:
// "load balancing the input requests in combination with dimension
// information ... will help improve performance in adversarial traffic
// patterns").
//
//   $ ./build/examples/adversarial_traffic
//
// Runs VIX under every statistical pattern with the three VC-assignment
// policies and shows where dimension-aware steering matters.
#include <cstdio>
#include <vector>

#include "sim/network_sim.hpp"

using namespace vixnoc;

int main() {
  const std::vector<PatternKind> patterns = {
      PatternKind::kUniform, PatternKind::kTranspose,
      PatternKind::kBitComplement, PatternKind::kBitReverse,
      PatternKind::kTornado};
  const std::vector<std::pair<const char*, VcAssignPolicy>> policies = {
      {"max-credits", VcAssignPolicy::kMaxCredits},
      {"balance", VcAssignPolicy::kVixBalance},
      {"dimension", VcAssignPolicy::kVixDimension}};

  std::printf("VIX saturation throughput [packets/cycle/node] on the mesh\n"
              "per traffic pattern and VC-assignment policy; baseline IF "
              "for reference\n\n");
  std::printf("%-10s %10s", "pattern", "IF");
  for (const auto& [name, policy] : policies) std::printf(" %12s", name);
  std::printf("\n");

  for (PatternKind pattern : patterns) {
    NetworkSimConfig c;
    c.pattern = pattern;
    c.injection_rate = c.MaxInjectionRate();
    c.warmup = 4'000;
    c.measure = 12'000;
    c.drain = 1'000;

    c.scheme = AllocScheme::kInputFirst;
    const double base = RunNetworkSim(c).accepted_ppc;
    std::printf("%-10s %10.4f", MakePattern(pattern)->Name().c_str(), base);

    c.scheme = AllocScheme::kVix;
    for (const auto& [name, policy] : policies) {
      c.vc_policy = policy;
      std::printf(" %12.4f", RunNetworkSim(c).accepted_ppc);
    }
    std::printf("\n");
  }

  std::printf("\ndimension steering assigns packets to virtual-input "
              "sub-groups by their\nnext-hop direction so requests to "
              "different outputs arrive on different\ncrossbar inputs; "
              "balance-only ignores direction. Patterns with strong\n"
              "directional structure (transpose, tornado) are where the "
              "difference shows.\n");
  return 0;
}
