// Quickstart: build a 64-node mesh, compare the baseline separable
// allocator against VIX at one operating point, and print what changed.
//
//   $ ./build/examples/quickstart
//
// This is the smallest end-to-end use of the library: pick a topology and
// an allocation scheme, run a statistical-traffic simulation, read the
// results. See mesh_latency_study.cpp for sweeps and app_workload.cpp for
// the full-system model.
#include <cstdio>

#include "sim/network_sim.hpp"

using namespace vixnoc;

int main() {
  std::printf("vixnoc quickstart: 8x8 mesh, uniform random traffic, "
              "4-flit packets, 6 VCs/port\n\n");

  // A high-load operating point, just past the baseline's saturation knee.
  const double kInjectionRate = 0.12;  // packets/cycle/node

  for (AllocScheme scheme : {AllocScheme::kInputFirst, AllocScheme::kVix}) {
    NetworkSimConfig config;
    config.topology = TopologyKind::kMesh;
    config.scheme = scheme;               // the only knob that changes
    config.injection_rate = kInjectionRate;
    config.warmup = 5'000;
    config.measure = 15'000;
    config.drain = 2'000;

    const NetworkSimResult result = RunNetworkSim(config);
    std::printf("%-4s: accepted %.4f packets/cycle/node  "
                "(%.1f flits/cycle network-wide)\n",
                ToString(scheme).c_str(), result.accepted_ppc,
                result.accepted_fpc);
    std::printf("      avg packet latency %.1f cycles, "
                "p99 %.0f cycles, fairness max/min %.2f\n\n",
                result.avg_latency, result.p99_latency,
                result.max_min_ratio);
  }

  std::printf("VIX connects two virtual channels per input port to the "
              "crossbar,\nso one input port can feed two different output "
              "ports in a cycle\nand output arbiters see twice as many "
              "requests - which is where the\nthroughput and latency gap "
              "above comes from.\n");
  return 0;
}
