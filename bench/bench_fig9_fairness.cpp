// Reproduces Figure 9: network fairness on the mesh, measured as the
// max/min ratio of per-node delivered throughput ("ideally close to 1, as
// all network nodes are injecting at equal injection rate").
//
// Two operating points are reported: a high-load point just past the
// baseline's saturation knee (where allocator-induced unfairness is
// cleanly visible) and deep saturation at maximum injection rate (where
// the paper's AP figure of 6.4 reproduces, but open-loop injection
// starvation also inflates every scheme's ratio).
//
// The (scheme x operating point) grid runs in parallel on a SweepRunner
// (threads=N to override, default all cores).
#include <cstdio>

#include "bench_util.hpp"
#include "sweep_util.hpp"

using namespace vixnoc;

int main(int argc, char** argv) {
  bench::Banner("Figure 9", "Fairness (max/min per-node throughput), mesh");
  bench::SweepHarness sweep(argc, argv, "fig9_fairness");

  const AllocScheme schemes[] = {
      AllocScheme::kInputFirst, AllocScheme::kWavefront,
      AllocScheme::kAugmentingPath, AllocScheme::kVix};
  const double rates[] = {0.12, 0.25};  // high load, deep saturation

  std::vector<NetworkSimConfig> points;
  for (AllocScheme scheme : schemes) {
    for (double rate : rates) {
      NetworkSimConfig c;
      c.scheme = scheme;
      c.injection_rate = rate;
      c.warmup = 5'000;
      c.measure = 20'000;
      c.drain = 2'000;
      points.push_back(c);
    }
  }
  const std::vector<NetworkSimResult> results = sweep.Run(points);

  TablePrinter table({"Scheme", "max/min @ 0.12 (high load)",
                      "max/min @ max injection", "accepted @ 0.12"});
  double vix_high = 0, ap_max = 0, base_high = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    const NetworkSimResult& high = results[s * 2];
    const NetworkSimResult& deep = results[s * 2 + 1];
    table.AddRow({ToString(schemes[s]),
                  TablePrinter::Fmt(high.max_min_ratio, 2),
                  TablePrinter::Fmt(deep.max_min_ratio, 2),
                  TablePrinter::Fmt(high.accepted_ppc, 4)});
    if (schemes[s] == AllocScheme::kVix) vix_high = high.max_min_ratio;
    if (schemes[s] == AllocScheme::kAugmentingPath) {
      ap_max = deep.max_min_ratio;
    }
    if (schemes[s] == AllocScheme::kInputFirst) {
      base_high = high.max_min_ratio;
    }
  }
  table.Print();

  bench::Claim("AP max/min ratio (paper: 6.4)", 6.4, ap_max);
  bench::Claim("VIX max/min ratio (paper: 1.99)", 1.99, vix_high);
  bench::Claim("baseline IF max/min at the same point", 2.0, base_high);
  bench::Note("VIX achieves the best fairness of all schemes at high load, "
              "matching the paper's conclusion; deep-saturation ratios for "
              "IF/WF/VIX are dominated by open-loop injection starvation at "
              "mesh centers (see EXPERIMENTS.md).");
  return sweep.Finish();
}
