// Reproduces Figure 7: switch-allocation efficiency of a single router at
// maximum injection, for radix 5 / 8 / 10 and all allocation schemes.
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "sim/single_router.hpp"

using namespace vixnoc;

int main() {
  bench::Banner("Figure 7",
                "Single-router switch allocation efficiency (flits/cycle)");

  const AllocScheme schemes[] = {
      AllocScheme::kInputFirst, AllocScheme::kWavefront,
      AllocScheme::kPacketChaining, AllocScheme::kAugmentingPath,
      AllocScheme::kVix, AllocScheme::kIslip, AllocScheme::kVixIdeal,
  };
  const int radices[] = {5, 8, 10};

  TablePrinter table({"Scheme", "Radix-5", "Radix-8", "Radix-10",
                      "efficiency@5"});
  std::map<std::pair<int, AllocScheme>, double> tput;
  for (AllocScheme scheme : schemes) {
    std::vector<std::string> row{ToString(scheme)};
    double eff5 = 0.0;
    for (int radix : radices) {
      SingleRouterConfig c;
      c.scheme = scheme;
      c.radix = radix;
      c.num_vcs = 6;
      c.cycles = 100'000;
      const auto r = RunSingleRouter(c);
      tput[{radix, scheme}] = r.flits_per_cycle;
      row.push_back(TablePrinter::Fmt(r.flits_per_cycle, 3));
      if (radix == 5) eff5 = r.matching_efficiency;
    }
    row.push_back(TablePrinter::Fmt(eff5, 3));
    table.AddRow(std::move(row));
  }
  table.Print();

  for (int radix : radices) {
    const double base = tput[{radix, AllocScheme::kInputFirst}];
    std::printf("  radix-%d gains over IF:  AP %+.1f%%  VIX %+.1f%%  "
                "WF %+.1f%%  ideal %+.1f%%\n",
                radix,
                100 * bench::PctGain(tput[{radix, AllocScheme::kAugmentingPath}], base),
                100 * bench::PctGain(tput[{radix, AllocScheme::kVix}], base),
                100 * bench::PctGain(tput[{radix, AllocScheme::kWavefront}], base),
                100 * bench::PctGain(tput[{radix, AllocScheme::kVixIdeal}], base));
  }
  bench::Claim("AP gain over IF, all radices (paper: >30%)", 0.30,
               bench::PctGain(tput[{5, AllocScheme::kAugmentingPath}],
                              tput[{5, AllocScheme::kInputFirst}]));
  bench::Claim("VIX gain over IF, all radices (paper: >25%)", 0.25,
               bench::PctGain(tput[{5, AllocScheme::kVix}],
                              tput[{5, AllocScheme::kInputFirst}]));
  bench::Note("ideal allocation = 6 virtual inputs per port (one per VC); "
              "AP and VIX both land close to it, per the paper.");
  return 0;
}
