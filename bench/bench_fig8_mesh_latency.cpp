// Reproduces Figure 8: average packet latency and accepted network
// throughput vs injection rate on the 8x8 mesh with uniform random traffic
// (4-flit packets, 6 VCs), for IF / WF / AP / VIX.
//
// The 40 (scheme x rate) points are independent simulations and run in
// parallel on a SweepRunner (threads=N to override, default all cores).
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "sweep_util.hpp"

using namespace vixnoc;

int main(int argc, char** argv) {
  bench::Banner("Figure 8",
                "Mesh latency & throughput vs injection rate (64 nodes, "
                "uniform random, 4-flit packets)");
  bench::SweepHarness sweep(argc, argv, "fig8_mesh_latency");

  const AllocScheme schemes[] = {
      AllocScheme::kInputFirst, AllocScheme::kWavefront,
      AllocScheme::kAugmentingPath, AllocScheme::kVix};
  const std::vector<double> rates = {0.02, 0.04, 0.06, 0.08, 0.09,
                                     0.10, 0.105, 0.11, 0.115, 0.12};

  std::vector<NetworkSimConfig> points;
  for (AllocScheme scheme : schemes) {
    for (double rate : rates) {
      NetworkSimConfig c;
      c.scheme = scheme;
      c.injection_rate = rate;
      c.warmup = 5'000;
      c.measure = 20'000;
      c.drain = 3'000;
      points.push_back(c);
    }
  }
  const std::vector<NetworkSimResult> swept = sweep.Run(points);

  std::map<std::pair<double, AllocScheme>, NetworkSimResult> results;
  for (std::size_t i = 0; i < points.size(); ++i) {
    results[{points[i].injection_rate, points[i].scheme}] = swept[i];
  }

  std::printf("\n(a) average packet latency [cycles]\n");
  TablePrinter lat({"inj rate", "IF", "WF", "AP", "VIX"});
  for (double rate : rates) {
    std::vector<std::string> row{TablePrinter::Fmt(rate, 3)};
    for (AllocScheme scheme : schemes) {
      row.push_back(TablePrinter::Fmt(results[{rate, scheme}].avg_latency, 1));
    }
    lat.AddRow(std::move(row));
  }
  lat.Print();

  std::printf("\n(b) accepted throughput [packets/cycle/node]\n");
  TablePrinter thr({"inj rate", "IF", "WF", "AP", "VIX"});
  for (double rate : rates) {
    std::vector<std::string> row{TablePrinter::Fmt(rate, 3)};
    for (AllocScheme scheme : schemes) {
      row.push_back(
          TablePrinter::Fmt(results[{rate, scheme}].accepted_ppc, 4));
    }
    thr.AddRow(std::move(row));
  }
  thr.Print();

  // Render the two curves the paper plots.
  const char kMarkers[] = {'i', 'w', 'a', 'V'};
  std::printf("\nlatency vs offered load (y clipped at 300 cycles):\n");
  AsciiPlot lat_plot(64, 16, "offered packets/cycle/node",
                     "avg packet latency [cycles]");
  lat_plot.SetYLimit(300.0);
  for (std::size_t s = 0; s < 4; ++s) {
    std::vector<std::pair<double, double>> pts;
    for (double rate : rates) {
      pts.emplace_back(rate, results[{rate, schemes[s]}].avg_latency);
    }
    lat_plot.AddSeries(ToString(schemes[s]), kMarkers[s], std::move(pts));
  }
  lat_plot.Print();

  std::printf("\naccepted vs offered load:\n");
  AsciiPlot thr_plot(64, 12, "offered packets/cycle/node",
                     "accepted packets/cycle/node");
  for (std::size_t s = 0; s < 4; ++s) {
    std::vector<std::pair<double, double>> pts;
    for (double rate : rates) {
      pts.emplace_back(rate, results[{rate, schemes[s]}].accepted_ppc);
    }
    thr_plot.AddSeries(ToString(schemes[s]), kMarkers[s], std::move(pts));
  }
  thr_plot.Print();

  const double kHigh = 0.12;  // high-injection operating point
  const double t_if = results[{kHigh, AllocScheme::kInputFirst}].accepted_ppc;
  const double t_wf = results[{kHigh, AllocScheme::kWavefront}].accepted_ppc;
  const double t_ap =
      results[{kHigh, AllocScheme::kAugmentingPath}].accepted_ppc;
  const double t_vix = results[{kHigh, AllocScheme::kVix}].accepted_ppc;
  const double l_if = results[{kHigh, AllocScheme::kInputFirst}].avg_latency;
  const double l_vix = results[{kHigh, AllocScheme::kVix}].avg_latency;

  bench::Claim("VIX throughput gain over IF at high load", 0.162,
               bench::PctGain(t_vix, t_if));
  bench::Claim("VIX throughput gain over AP", 0.159,
               bench::PctGain(t_vix, t_ap));
  bench::Claim("VIX throughput gain over WF", 0.15,
               bench::PctGain(t_vix, t_wf));
  bench::Claim("VIX latency reduction vs IF at high load", 0.36,
               1.0 - l_vix / l_if);
  bench::Claim("AP throughput gain over IF (paper: ~0.3%)", 0.003,
               bench::PctGain(t_ap, t_if));
  bench::Note("divergence: our AP retains a network-level gain over IF "
              "(~+10%) instead of collapsing to +0.3%; its unfairness "
              "(Fig 9 bench) reproduces, but not the aggregate-throughput "
              "collapse. See EXPERIMENTS.md.");
  return sweep.Finish();
}
