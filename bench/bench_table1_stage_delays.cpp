// Reproduces Table 1: router pipeline stage delays (VA, SA, crossbar) for
// Mesh, CMesh, and FBfly routers with and without VIX, from the calibrated
// circuit-delay models in src/timing.
#include <cstdio>

#include "bench_util.hpp"
#include "timing/delay_model.hpp"

using namespace vixnoc;

int main() {
  bench::Banner("Table 1", "Router pipeline stage delays (45nm-class model)");

  struct Row {
    const char* design;
    int radix;
    int vins;
    double paper_va, paper_sa, paper_xbar;
  };
  const Row rows[] = {
      {"Mesh", 5, 1, 300, 280, 167},
      {"Mesh with VIX", 5, 2, 300, 290, 205},
      {"CMesh", 8, 1, 340, 315, 205},
      {"CMesh with VIX", 8, 2, 340, 330, 289},
      {"FBfly", 10, 1, 360, 340, 238},
      {"FBfly with VIX", 10, 2, 360, 345, 359},
  };

  TablePrinter table({"Design", "Radix", "Xbar size", "VA delay", "SA delay",
                      "Xbar delay", "paper VA/SA/Xbar"});
  constexpr int kVcs = 6;
  for (const Row& r : rows) {
    const timing::StageDelays d = timing::RouterStageDelays(r.radix, kVcs,
                                                            r.vins);
    char xbar_size[16], paper[32];
    std::snprintf(xbar_size, sizeof xbar_size, "%d x %d", r.radix * r.vins,
                  r.radix);
    std::snprintf(paper, sizeof paper, "%.0f/%.0f/%.0f ps", r.paper_va,
                  r.paper_sa, r.paper_xbar);
    table.AddRow({r.design, TablePrinter::Fmt(std::int64_t{r.radix}),
                  xbar_size, TablePrinter::Fmt(d.va_ps, 0) + " ps",
                  TablePrinter::Fmt(d.sa_ps, 0) + " ps",
                  TablePrinter::Fmt(d.xbar_ps, 0) + " ps", paper});
  }
  table.Print();

  bench::Claim("Mesh VIX crossbar delay growth (x)",
               205.0 / 167.0, timing::XbarDelayPs(10, 5) /
                   timing::XbarDelayPs(5, 5));
  bench::Claim("FBfly VIX crossbar delay growth (x)",
               359.0 / 238.0, timing::XbarDelayPs(20, 10) /
                   timing::XbarDelayPs(10, 10));
  bench::Claim("Mesh VIX xbar / router cycle (<= 0.7)", 0.70,
               timing::XbarDelayPs(10, 5) / timing::RouterCyclePs(5, 6, 1));
  for (int radix : {5, 8, 10}) {
    const bool free_cycle = timing::RouterCyclePs(radix, 6, 2) <=
                            timing::RouterCyclePs(radix, 6, 1);
    std::printf("  VIX leaves radix-%d router cycle time unchanged: %s\n",
                radix, free_cycle ? "yes" : "NO");
  }
  bench::Note("crossbar stage never on the critical path: VA dominates in "
              "every configuration, so VIX is frequency-neutral (paper "
              "Section 2.4).");
  return 0;
}
