// Reproduces Table 4: application-level speedup of VIX over the separable
// baseline for the eight multiprogrammed workload mixes on the 64-core
// mesh processor, plus the comparison against AP (§4.7: VIX up to +3.2%
// over AP).
#include <cstdio>

#include "app/app_sim.hpp"
#include "bench_util.hpp"

using namespace vixnoc;
using namespace vixnoc::app;

namespace {

AppSimResult Run(AllocScheme scheme, const WorkloadMix& mix) {
  AppSimConfig c;
  c.scheme = scheme;
  c.warmup = 10'000;
  c.measure = 40'000;
  return RunAppSim(c, ExpandMix(mix));
}

}  // namespace

int main() {
  bench::Banner("Table 4",
                "Application speedup of VIX over baseline (IF), 64-core "
                "mesh, 8 multiprogrammed mixes");

  TablePrinter table({"Mix", "avg MPKI", "IPC (IF)", "IPC (VIX)",
                      "IPC (AP)", "VIX speedup", "weighted", "VIX vs AP",
                      "paper speedup"});
  double speedup_sum = 0.0, speedup_max = 0.0, vs_ap_max = 0.0;
  for (const WorkloadMix& mix : PaperMixes()) {
    const auto base = Run(AllocScheme::kInputFirst, mix);
    const auto vix = Run(AllocScheme::kVix, mix);
    const auto ap = Run(AllocScheme::kAugmentingPath, mix);
    const double speedup = vix.aggregate_ipc / base.aggregate_ipc;
    const double weighted = WeightedSpeedup(base, vix);
    const double vs_ap = vix.aggregate_ipc / ap.aggregate_ipc;
    speedup_sum += speedup;
    speedup_max = std::max(speedup_max, speedup);
    vs_ap_max = std::max(vs_ap_max, vs_ap);
    table.AddRow({mix.name, TablePrinter::Fmt(base.avg_mpki, 1),
                  TablePrinter::Fmt(base.aggregate_ipc, 2),
                  TablePrinter::Fmt(vix.aggregate_ipc, 2),
                  TablePrinter::Fmt(ap.aggregate_ipc, 2),
                  TablePrinter::Fmt(speedup, 3),
                  TablePrinter::Fmt(weighted, 3),
                  TablePrinter::Fmt(vs_ap, 3),
                  TablePrinter::Fmt(mix.paper_vix_speedup, 2)});
  }
  table.Print();

  bench::Claim("average VIX speedup over IF (paper: 1.05)", 1.05,
               speedup_sum / 8.0);
  bench::Claim("maximum VIX speedup over IF (paper: 1.07)", 1.07,
               speedup_max);
  bench::Claim("maximum VIX gain over AP (paper: up to +3.2%)", 1.032,
               vs_ap_max);
  bench::Note("per-benchmark MPKI profiles are synthetic, solved to "
              "reproduce Table 4's per-mix average MPKI exactly (the "
              "original SPEC/commercial traces are proprietary).");
  return 0;
}
