// Ablation: SPAROFLO vs VIX (paper §5 related work).
//
// Both expose multiple requests per input port to output arbitration;
// SPAROFLO has no extra crossbar inputs, so double-wins are killed after
// output arbitration. The paper argues "these conflicts limit the
// efficiency of SPAROFLO when compared to VIX" — this bench quantifies it
// at both the single-router and the network level.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/network_sim.hpp"
#include "sim/single_router.hpp"

using namespace vixnoc;

int main() {
  bench::Banner("Ablation",
                "SPAROFLO (exposure, no virtual inputs) vs VIX (exposure + "
                "virtual inputs)");

  const AllocScheme schemes[] = {AllocScheme::kInputFirst,
                                 AllocScheme::kSparoflo, AllocScheme::kVix};

  TablePrinter table({"Scheme", "single-router flits/cyc (r5)",
                      "network pkt/cyc/node @sat", "network gain over IF"});
  double sr[3] = {}, net[3] = {};
  int i = 0;
  for (AllocScheme scheme : schemes) {
    SingleRouterConfig src;
    src.scheme = scheme;
    src.cycles = 50'000;
    sr[i] = RunSingleRouter(src).flits_per_cycle;

    NetworkSimConfig nc;
    nc.scheme = scheme;
    nc.injection_rate = nc.MaxInjectionRate();
    nc.warmup = 4'000;
    nc.measure = 12'000;
    nc.drain = 1'000;
    net[i] = RunNetworkSim(nc).accepted_ppc;

    table.AddRow({ToString(scheme), TablePrinter::Fmt(sr[i], 3),
                  TablePrinter::Fmt(net[i], 4),
                  TablePrinter::Pct(bench::PctGain(net[i], net[0]))});
    ++i;
  }
  table.Print();

  // The paper's claim is qualitative: "these conflicts limit the
  // efficiency of SPAROFLO when compared to VIX" — i.e. SPAROFLO < VIX.
  bench::Claim("single-router: SPAROFLO gain vs VIX gain over IF",
               bench::PctGain(sr[2], sr[0]),
               bench::PctGain(sr[1], sr[0]));
  bench::Claim("VIX network gain over IF", 0.16,
               bench::PctGain(net[2], net[0]));
  bench::Note("exposure without virtual inputs helps inside one router but "
              "the post-arbitration conflict kills waste outputs, and at "
              "network level SPAROFLO gives up the entire gap to VIX — "
              "consistent with the paper's qualitative comparison (§5).");
  return 0;
}
