// Ablation: SPAROFLO vs VIX (paper §5 related work).
//
// Both expose multiple requests per input port to output arbitration;
// SPAROFLO has no extra crossbar inputs, so double-wins are killed after
// output arbitration. The paper argues "these conflicts limit the
// efficiency of SPAROFLO when compared to VIX" — this bench quantifies it
// at both the single-router and the network level. The three network
// points run in parallel on a SweepRunner (threads=N to override).
#include <cstdio>

#include "bench_util.hpp"
#include "sim/single_router.hpp"
#include "sweep_util.hpp"

using namespace vixnoc;

int main(int argc, char** argv) {
  bench::Banner("Ablation",
                "SPAROFLO (exposure, no virtual inputs) vs VIX (exposure + "
                "virtual inputs)");
  bench::SweepHarness sweep(argc, argv, "ablation_sparoflo");

  const AllocScheme schemes[] = {AllocScheme::kInputFirst,
                                 AllocScheme::kSparoflo, AllocScheme::kVix};

  std::vector<NetworkSimConfig> points;
  for (AllocScheme scheme : schemes) {
    NetworkSimConfig nc;
    nc.scheme = scheme;
    nc.injection_rate = nc.MaxInjectionRate();
    nc.warmup = 4'000;
    nc.measure = 12'000;
    nc.drain = 1'000;
    points.push_back(nc);
  }
  const std::vector<NetworkSimResult> swept = sweep.Run(points);

  TablePrinter table({"Scheme", "single-router flits/cyc (r5)",
                      "network pkt/cyc/node @sat", "network gain over IF"});
  double sr[3] = {}, net[3] = {};
  for (int i = 0; i < 3; ++i) {
    // The single-router experiment is cheap; it stays serial.
    SingleRouterConfig src;
    src.scheme = schemes[i];
    src.cycles = 50'000;
    sr[i] = RunSingleRouter(src).flits_per_cycle;
    net[i] = swept[i].accepted_ppc;

    table.AddRow({ToString(schemes[i]), TablePrinter::Fmt(sr[i], 3),
                  TablePrinter::Fmt(net[i], 4),
                  TablePrinter::Pct(bench::PctGain(net[i], net[0]))});
  }
  table.Print();

  // The paper's claim is qualitative: "these conflicts limit the
  // efficiency of SPAROFLO when compared to VIX" — i.e. SPAROFLO < VIX.
  bench::Claim("single-router: SPAROFLO gain vs VIX gain over IF",
               bench::PctGain(sr[2], sr[0]),
               bench::PctGain(sr[1], sr[0]));
  bench::Claim("VIX network gain over IF", 0.16,
               bench::PctGain(net[2], net[0]));
  bench::Note("exposure without virtual inputs helps inside one router but "
              "the post-arbitration conflict kills waste outputs, and at "
              "network level SPAROFLO gives up the entire gap to VIX — "
              "consistent with the paper's qualitative comparison (§5).");
  return sweep.Finish();
}
