// Extension: routing plugins — minimal-adaptive vs dimension-order.
//
// The routing subsystem exposes policy as table-driven plugins
// (routing=dor|adaptive_min|fault_aware). This bench quantifies what the
// adaptive_min arm buys on the paper's 8x8 mesh against the two classic
// adversaries of deterministic XY:
//
//   transpose  (i,j)->(j,i): XY folds every flow onto the diagonal
//              routers, so DOR saturates early; minimal-adaptive spreads
//              each packet across its full staircase of minimal paths.
//   hotspot    15% of traffic to one off-center node: the hot node's
//              single ejection link caps accepted throughput identically
//              for every algorithm, so the interesting signal is *where*
//              packets wait, not how many arrive.
//
// Telemetry's stall attribution (VA / credit / SA stalls per buffered
// cycle) shows where adaptivity pays: under transpose DOR burns cycles
// credit-stalled on saturated diagonal links, while adaptive_min shifts
// those cycles into useful motion. Points run on a SweepRunner
// (threads=N to override; identical results at any thread count).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sweep_util.hpp"

using namespace vixnoc;

namespace {

NetworkSimConfig Point(const char* routing, PatternKind pattern, double rate) {
  NetworkSimConfig c;
  c.routing = routing;
  c.pattern = pattern;
  c.injection_rate = rate;
  // adaptive_min reserves VC 0 per class as the DOR escape channel; give
  // both arms the same 4-VC budget so the comparison is routing-only.
  c.num_vcs = 4;
  c.warmup = 3'000;
  c.measure = 10'000;
  c.drain = 2'000;
  c.telemetry.enabled = true;
  return c;
}

/// Fraction of buffered-flit cycles attributed to one stall class.
double StallShare(const NetworkSimResult& r, std::uint64_t counter) {
  const double total = static_cast<double>(r.telemetry.stall_empty +
                                           r.telemetry.stall_va +
                                           r.telemetry.stall_credit +
                                           r.telemetry.stall_sa +
                                           r.telemetry.vc_moving);
  return total > 0 ? static_cast<double>(counter) / total : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("Extension",
                "Routing plugins: adaptive_min vs dor, 8x8 mesh, "
                "transpose + hotspot");
  bench::SweepHarness sweep(argc, argv, "ext_routing");

  struct Cell {
    const char* pattern_name;
    PatternKind pattern;
    double rate;
  };
  const Cell cells[] = {
      {"transpose", PatternKind::kTranspose, 0.04},  // below DOR's knee
      {"transpose", PatternKind::kTranspose, 0.08},  // past DOR's knee
      {"hotspot", PatternKind::kHotspot, 0.14},      // ejection-limited
  };
  const char* const algs[] = {"dor", "adaptive_min"};

  std::vector<NetworkSimConfig> points;
  for (const Cell& cell : cells) {
    for (const char* alg : algs) {
      points.push_back(Point(alg, cell.pattern, cell.rate));
    }
  }
  const std::vector<NetworkSimResult> results = sweep.Run(points);

  TablePrinter table({"pattern", "rate", "routing", "accepted", "latency",
                      "credit-stall", "va-stall", "status"});
  std::size_t i = 0;
  double gain_sat = 0.0, dor_credit = 0.0, ada_credit = 0.0;
  for (const Cell& cell : cells) {
    const NetworkSimResult& rd = results[i++];
    const NetworkSimResult& ra = results[i++];
    for (const NetworkSimResult* r : {&rd, &ra}) {
      table.AddRow({cell.pattern_name, TablePrinter::Fmt(cell.rate, 2),
                    r == &rd ? "dor" : "adaptive_min",
                    TablePrinter::Fmt(r->accepted_ppc, 4),
                    TablePrinter::Fmt(r->avg_latency, 1),
                    TablePrinter::Pct(StallShare(*r, r->telemetry.stall_credit)),
                    TablePrinter::Pct(StallShare(*r, r->telemetry.stall_va)),
                    ToString(r->outcome.status)});
    }
    if (cell.pattern == PatternKind::kTranspose && cell.rate > 0.06) {
      gain_sat = bench::PctGain(ra.accepted_ppc, rd.accepted_ppc);
      dor_credit = StallShare(rd, rd.telemetry.stall_credit);
      ada_credit = StallShare(ra, ra.telemetry.stall_credit);
    }
  }
  table.Print();

  bench::Claim("adaptive_min / dor accepted throughput gain, transpose "
               "past DOR's saturation point",
               0.30, gain_sat);
  bench::Claim("credit-stall share saved by adaptivity at that point "
               "(dor share minus adaptive share)",
               0.10, dor_credit - ada_credit);
  bench::Note("transpose: XY concentrates every flow on the diagonal, so "
              "DOR's buffered cycles are dominated by mid-flight credit "
              "stalls on those links. adaptive_min eliminates the credit-"
              "stall class outright — its atomic VC reallocation only "
              "grants a VC with an empty downstream buffer, so waiting "
              "moves to VA time where the candidate choice can still "
              "route around the congestion — and tracks offered load "
              "well past DOR's knee. hotspot: both arms pin at the hot "
              "node's ejection bandwidth (accepted throughput matches by "
              "construction); the signal is the adaptive arm reaching it "
              "with the watchdog quiet — the deadlock-freedom claim the "
              "escape VCs buy.");
  return sweep.Finish();
}
