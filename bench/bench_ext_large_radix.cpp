// Extension: large-radix allocation scaling (radix 8 / 16 / 32 / 64).
//
// The paper evaluates radix-5 mesh routers, where serial maximum matching
// (AP) is still tractable. High-radix designs (concentrated meshes,
// flattened butterflies, datacenter switches) need allocators whose cost
// scales with log(P), not P^3 — the regime SERENADE's O(log N) randomized
// knot decomposition targets. This bench compares SERENADE vs VIX vs AP vs
// iSLIP at radix 8..64 on:
//   * delivered throughput and matching quality: the saturated
//     single-router harness (Fig-7 shape, larger radix);
//   * wall-clock allocator cost: host ns per Allocate() call on saturated
//     request matrices — the simulation-side cost of each algorithm;
//   * modeled circuit delay: SERENADE's request/propose + log2(P) knotting
//     rounds vs AP's serial augmentation lower bound (Table-3 models).
// Also demonstrates the AP work bound: at radix 64 a tight budget turns a
// pathological allocation into a recoverable SimError, not a hang.
#include <chrono>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "alloc/augmenting_path.hpp"
#include "alloc/switch_allocator.hpp"
#include "bench_util.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/single_router.hpp"
#include "timing/delay_model.hpp"

using namespace vixnoc;

namespace {

constexpr int kVcs = 4;

std::vector<std::vector<SaRequest>> RequestPool(const SwitchGeometry& g,
                                                int pool_size) {
  Rng rng(17);
  std::vector<std::vector<SaRequest>> pool(pool_size);
  for (auto& reqs : pool) {
    for (PortId in = 0; in < g.num_inports; ++in) {
      for (VcId vc = 0; vc < g.num_vcs; ++vc) {
        if (rng.NextBool(0.7)) {
          reqs.push_back({in, vc,
                          static_cast<PortId>(
                              rng.NextBounded(g.num_outports))});
        }
      }
    }
  }
  return pool;
}

double NsPerAllocate(AllocScheme scheme, int radix) {
  SwitchGeometry g;
  g.num_inports = radix;
  g.num_outports = radix;
  g.num_vcs = kVcs;
  g.num_vins = VirtualInputsForScheme(scheme, kVcs);
  auto alloc = MakeSwitchAllocator(scheme, g, ArbiterKind::kRoundRobin, 99);

  constexpr int kPool = 64;
  const auto pool = RequestPool(g, kPool);
  std::vector<SaGrant> grants;
  for (int i = 0; i < 2 * kPool; ++i) {  // warm the priority state
    alloc->Allocate(pool[i % kPool], &grants);
  }
  const int calls = radix >= 32 ? 4'000 : 20'000;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < calls; ++i) {
    alloc->Allocate(pool[i % kPool], &grants);
  }
  const double ns = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  return ns / calls;
}

double ModeledDelayPs(AllocScheme scheme, int radix) {
  switch (scheme) {
    case AllocScheme::kSerenade:
      return timing::SerenadeDelayPs(radix, kVcs);
    case AllocScheme::kAugmentingPath:
      return timing::AugmentingPathDelayPs(radix, kVcs);
    case AllocScheme::kVix:
      return timing::SaDelayPs(radix, kVcs, 2);
    case AllocScheme::kIslip:
      // Two grant/accept iterations of separable arbitration.
      return 2.0 * timing::SaDelayPs(radix, kVcs, 1);
    default:
      return timing::SaDelayPs(radix, kVcs, 1);
  }
}

}  // namespace

int main() {
  bench::Banner("Extension",
                "Large-radix allocation scaling: SERENADE vs VIX vs AP vs "
                "iSLIP at radix 8-64");
  bench::WarnIfDebugBuild("ext_large_radix");

  const AllocScheme schemes[] = {
      AllocScheme::kSerenade, AllocScheme::kVix,
      AllocScheme::kAugmentingPath, AllocScheme::kIslip};
  const int radices[] = {8, 16, 32, 64};

  std::map<std::pair<int, AllocScheme>, SingleRouterResult> sim;
  std::map<std::pair<int, AllocScheme>, double> cost_ns;
  for (AllocScheme scheme : schemes) {
    for (int radix : radices) {
      SingleRouterConfig c;
      c.scheme = scheme;
      c.radix = radix;
      c.num_vcs = kVcs;
      c.cycles = radix >= 32 ? 20'000 : 50'000;
      sim[{radix, scheme}] = RunSingleRouter(c);
      cost_ns[{radix, scheme}] = NsPerAllocate(scheme, radix);
    }
  }

  TablePrinter tput({"Scheme", "r8", "r16", "r32", "r64", "match-eff@64"});
  for (AllocScheme scheme : schemes) {
    std::vector<std::string> row{ToString(scheme)};
    for (int radix : radices) {
      row.push_back(TablePrinter::Fmt(sim[{radix, scheme}].flits_per_cycle,
                                      3));
    }
    row.push_back(
        TablePrinter::Fmt(sim[{64, scheme}].matching_efficiency, 3));
    tput.AddRow(std::move(row));
  }
  std::printf("saturated single-router throughput (flits/cycle):\n");
  tput.Print();

  TablePrinter cost({"Scheme", "r8 ns", "r16 ns", "r32 ns", "r64 ns",
                     "r64 model ps"});
  for (AllocScheme scheme : schemes) {
    std::vector<std::string> row{ToString(scheme)};
    for (int radix : radices) {
      row.push_back(TablePrinter::Fmt(cost_ns[{radix, scheme}], 1));
    }
    row.push_back(TablePrinter::Fmt(ModeledDelayPs(scheme, 64), 0));
    cost.AddRow(std::move(row));
  }
  std::printf("\nper-cycle allocator cost (host ns/Allocate) and modeled "
              "circuit delay:\n");
  cost.Print();

  // "Per-cycle allocator cost" in a router is the circuit delay the
  // allocator adds to every cycle — AP's serial augmentation grows with
  // P^2 augmentation steps while SERENADE needs log2(P)+1 knotting
  // rounds, so the gap must be at least an order of magnitude by radix
  // 64. (The host-side ns/Allocate ratio is much flatter — the simulator's
  // AP is word-parallel — and is reported above as simulation cost, not
  // hardware cost.)
  const double ap64 = cost_ns[{64, AllocScheme::kAugmentingPath}];
  const double ser64 = cost_ns[{64, AllocScheme::kSerenade}];
  bench::Claim(
      "AP/SERENADE per-cycle allocator delay ratio at radix 64 (>=10x)",
      10.0,
      timing::AugmentingPathDelayPs(64, kVcs) /
          timing::SerenadeDelayPs(64, kVcs),
      "x");
  bench::Note("host-side allocator cost at radix 64: AP " +
              TablePrinter::Fmt(ap64, 0) + " ns/Allocate vs SERENADE " +
              TablePrinter::Fmt(ser64, 0) + " ns/Allocate (" +
              TablePrinter::Fmt(ap64 / ser64, 2) +
              "x) — both complete full sweeps.");
  bench::Claim("SERENADE matching efficiency at radix 64 (vs iSLIP)",
               sim[{64, AllocScheme::kIslip}].matching_efficiency,
               sim[{64, AllocScheme::kSerenade}].matching_efficiency);

  // The AP work bound (satellite of the same change): a tight budget at
  // radix 64 surfaces as a recoverable SimError, never a hang.
  {
    SwitchGeometry g;
    g.num_inports = 64;
    g.num_outports = 64;
    g.num_vcs = kVcs;
    g.num_vins = 1;
    auto alloc =
        MakeSwitchAllocator(AllocScheme::kAugmentingPath, g);
    auto* ap = static_cast<AugmentingPathAllocator*>(alloc.get());
    ap->set_work_limit(64);  // far below the dense-matrix demand
    const auto pool = RequestPool(g, 1);
    std::vector<SaGrant> grants;
    try {
      alloc->Allocate(pool[0], &grants);
      bench::Note("AP work bound did NOT trip (unexpected)");
    } catch (const SimError&) {
      bench::Note("AP with an exhausted work budget raises SimError "
                  "(recoverable) instead of wedging the sweep point.");
    }
  }
  bench::Note("SERENADE's log-depth knotting keeps both the modeled "
              "circuit delay and the host-side cost flat enough to sweep "
              "radix 64, where AP's serial augmentation is the clear "
              "outlier on every axis.");
  return 0;
}
