// Reproduces Figure 12: impact of the number of virtual inputs — baseline
// (no VIX), 1:2 VIX, and ideal VIX (one virtual input per VC) — for 4 and 6
// VCs per port, on Mesh, CMesh, and FBfly, at a high-load operating point.
//
// The 18 (topology x VCs x scheme) points run in parallel on a SweepRunner
// (threads=N to override, default all cores).
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "sweep_util.hpp"

using namespace vixnoc;

int main(int argc, char** argv) {
  bench::Banner("Figure 12",
                "Impact of virtual inputs: no VIX vs 1:2 VIX vs ideal VIX "
                "(saturation throughput, packets/cycle/node)");
  bench::SweepHarness sweep(argc, argv, "fig12_virtual_inputs");

  const TopologyKind topos[] = {TopologyKind::kMesh, TopologyKind::kFBfly,
                                TopologyKind::kCMesh};
  const AllocScheme schemes[] = {AllocScheme::kInputFirst, AllocScheme::kVix,
                                 AllocScheme::kVixIdeal};

  std::vector<NetworkSimConfig> points;
  for (TopologyKind topo : topos) {
    for (int vcs : {4, 6}) {
      for (AllocScheme scheme : schemes) {
        NetworkSimConfig c;
        c.topology = topo;
        c.scheme = scheme;
        c.num_vcs = vcs;
        c.injection_rate = c.MaxInjectionRate();
        c.warmup = 5'000;
        c.measure = 15'000;
        c.drain = 1'000;
        points.push_back(c);
      }
    }
  }
  const std::vector<NetworkSimResult> results = sweep.Run(points);

  std::map<std::tuple<TopologyKind, int, AllocScheme>, double> tput;
  for (std::size_t i = 0; i < points.size(); ++i) {
    tput[{points[i].topology, points[i].num_vcs, points[i].scheme}] =
        results[i].accepted_ppc;
  }

  for (TopologyKind topo : topos) {
    std::printf("\n(%s)\n", ToString(topo).c_str());
    TablePrinter table({"VCs", "no VIX", "1:2 VIX", "ideal VIX",
                        "1:2 gain", "1:2 vs ideal"});
    for (int vcs : {4, 6}) {
      const double base = tput[{topo, vcs, AllocScheme::kInputFirst}];
      const double vix = tput[{topo, vcs, AllocScheme::kVix}];
      const double ideal = tput[{topo, vcs, AllocScheme::kVixIdeal}];
      table.AddRow({TablePrinter::Fmt(std::int64_t{vcs}),
                    TablePrinter::Fmt(base, 4), TablePrinter::Fmt(vix, 4),
                    TablePrinter::Fmt(ideal, 4),
                    TablePrinter::Pct(bench::PctGain(vix, base)),
                    TablePrinter::Pct(bench::PctGain(vix, ideal))});
    }
    table.Print();
  }

  // Averages across topologies (the paper quotes 21% @ 4 VCs, 16% @ 6 VCs).
  for (int vcs : {4, 6}) {
    double gain = 0.0;
    for (TopologyKind topo : topos) {
      gain += bench::PctGain(tput[{topo, vcs, AllocScheme::kVix}],
                             tput[{topo, vcs, AllocScheme::kInputFirst}]);
    }
    bench::Claim("average 1:2 VIX gain, " + std::to_string(vcs) + " VCs",
                 vcs == 4 ? 0.21 : 0.16, gain / 3.0);
  }
  // Buffer-saving claim (§4.6): 1:2 VIX with 4 VCs vs baseline with 6 VCs.
  double gain_sum = 0.0;
  for (TopologyKind topo : topos) {
    gain_sum += bench::PctGain(tput[{topo, 4, AllocScheme::kVix}],
                               tput[{topo, 6, AllocScheme::kInputFirst}]);
  }
  bench::Claim("1:2 VIX @ 4 VCs vs no-VIX @ 6 VCs (paper: >10%)", 0.10,
               gain_sum / 3.0);
  bench::Note("a 6->4 VC reduction cuts input buffering by 33% while VIX "
              "still improves throughput — the paper's buffer-saving "
              "argument.");
  return sweep.Finish();
}
