// Shared harness for the sweep-shaped paper benches.
//
// Wraps the common lifecycle: parse `threads=` / `json=` / `help=` keys,
// run batches of NetworkSimConfig points on a SweepRunner, keep wall-clock
// and simulated-cycle totals, and emit a machine-readable results file
// (default bench_results.json) alongside the human-readable tables.
//
//   bench::SweepHarness sweep(argc, argv, "fig8_mesh_latency");
//   std::vector<NetworkSimResult> results = sweep.Run(points);
//   ...print tables / claims...
//   sweep.Finish();   // summary line + JSON
//
// Execution backends (mutually exclusive where noted):
//   default            in-process SweepRunner thread pool
//   checkpoint=DIR     same, backed by the content-addressed result store
//                      at DIR — interrupted benches resume, and any bench
//                      pointed at the same DIR shares completed points
//   isolate=process    crash-isolated subprocess execution (composable
//                      with checkpoint=)
//   server=SOCK        points are served by a running vixnocd daemon over
//                      its Unix socket (exclusive with checkpoint= and
//                      isolate=process — the daemon owns its own store)
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "exec/coordinator.hpp"
#include "server/client.hpp"
#include "sim/sweep.hpp"
#include "store/result_store.hpp"
#include "traffic/patterns.hpp"

namespace vixnoc::bench {

class SweepHarness {
 public:
  SweepHarness(int argc, char** argv, std::string bench_name,
               std::string default_json = "bench_results.json")
      : bench_name_(std::move(bench_name)) {
    ArgMap args = ArgMap::Parse(argc, argv);
    Init(args, default_json, /*extra_usage=*/"");
    args.CheckAllConsumed();
  }

  /// For benches with their own flags: the caller parses an ArgMap, passes
  /// it here (the harness consumes `threads=` / `json=` / `help=`, printing
  /// `extra_usage` after the standard lines on help=), then reads its own
  /// keys and calls args.CheckAllConsumed() itself.
  SweepHarness(ArgMap& args, std::string bench_name,
               std::string default_json = "bench_results.json",
               const std::string& extra_usage = "")
      : bench_name_(std::move(bench_name)) {
    Init(args, default_json, extra_usage);
  }

  int threads() const {
    // server= mode has no local pool; report the requested key (0 = auto)
    // so the summary/JSON stay truthful about local compute.
    return runner_ != nullptr ? runner_->num_threads() : threads_;
  }

  /// Runs one batch of points in parallel; may be called repeatedly. Wall
  /// clock and per-point records accumulate across calls. With
  /// `checkpoint=DIR`, completed points land in the content-addressed
  /// result store at DIR (keyed by config fingerprint, not batch index) —
  /// re-running an interrupted bench resumes from the store and produces
  /// results bitwise identical to a straight run.
  std::vector<NetworkSimResult> Run(
      const std::vector<NetworkSimConfig>& points) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<NetworkSimResult> results;
    if (client_ != nullptr) {
      results = RunViaServer(points);
    } else if (isolate_process_) {
      // Crash-isolated path: points run in vixnoc_sweep_worker
      // subprocesses with classification, retries and graceful
      // degradation (exec/coordinator.hpp). Results are merged in
      // submission order, so the table below is identical to the
      // in-process path's whenever no point crashes out.
      ExecPolicy policy;
      policy.num_workers = threads_;
      policy.point_timeout_seconds = point_timeout_;
      policy.max_retries = retries_;
      policy.cache = store_;
      SweepCoordinator coordinator(policy);
      SweepExecResult exec = coordinator.Run(points);
      results = std::move(exec.results);
      resumed_points_ += exec.cached_points;
      defective_cache_points_ += exec.defective_cache_points;
      deduped_points_ += exec.deduped_points;
      exec_.crashes += exec.crashes;
      exec_.timeouts += exec.timeouts;
      exec_.bad_frames += exec.bad_frames;
      exec_.spawn_failures += exec.spawn_failures;
      exec_.retries += exec.retries;
      exec_.workers_spawned += exec.workers_spawned;
      exec_.exhausted_points += exec.exhausted_points;
      exec_.fallback_points += exec.fallback_points;
      exec_.cached_points += exec.cached_points;
      for (const WorkerEvent& ev : exec.events) {
        worker_events_.push_back(ToString(ev.kind) + " slot " +
                                 std::to_string(ev.slot) + " pid " +
                                 std::to_string(ev.pid) +
                                 (ev.detail.empty() ? "" : ": " + ev.detail));
      }
      exec_points_.insert(exec_points_.end(), exec.points.begin(),
                          exec.points.end());
    } else {
      results = runner_->Run(points);
      resumed_points_ += runner_->resumed_points();
      defective_cache_points_ += runner_->defective_cache_points();
      deduped_points_ += runner_->deduped_points();
    }
    wall_seconds_ += std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    for (std::size_t i = 0; i < points.size(); ++i) {
      const NetworkSimConfig& c = points[i];
      sim_cycles_ += static_cast<std::uint64_t>(c.warmup) + c.measure +
                     c.drain;
      records_.emplace_back(c, results[i]);
    }
    return results;
  }

  /// Prints the sweep summary and writes the JSON results file. Returns a
  /// process exit code (non-zero if the JSON file could not be written),
  /// so benches can end with `return sweep.Finish();`.
  int Finish() const {
    std::printf(
        "\nsweep: %zu points on %d thread(s) in %.2fs "
        "(%.0f network-cycles/s)\n",
        records_.size(), threads(), wall_seconds_,
        wall_seconds_ > 0 ? static_cast<double>(sim_cycles_) / wall_seconds_
                          : 0.0);
    if (json_path_.empty()) return 0;
    std::FILE* f = std::fopen(json_path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path_.c_str());
      return 1;
    }
    // Checkpoint provenance: whether this file was produced with a point
    // cache, how many points came from it rather than fresh runs, how
    // many cache entries were found defective and re-run, and how many
    // duplicate in-batch points were satisfied by copying a canonical
    // slot's result instead of re-simulating.
    std::string provenance =
        "  \"deduped_points\": " + std::to_string(deduped_points_) + ",\n";
    if (!checkpoint_dir_.empty()) {
      provenance += "  \"checkpoint_dir\": \"" + EscapeJson(checkpoint_dir_) +
                    "\",\n  \"resumed_points\": " +
                    std::to_string(resumed_points_) +
                    ",\n  \"defective_cache_points\": " +
                    std::to_string(defective_cache_points_) + ",\n";
    }
    if (client_ != nullptr) {
      // Service provenance: which vixnocd daemon served the sweep and how
      // each point was satisfied (store hit / fresh compute / coalesced
      // onto another client's in-flight computation).
      provenance += "  \"server\": {\"socket\": \"" +
                    EscapeJson(client_->socket_path()) +
                    "\", \"store_hits\": " + std::to_string(server_hits_) +
                    ", \"computed\": " + std::to_string(server_computed_) +
                    ", \"coalesced\": " + std::to_string(server_coalesced_) +
                    ", \"retries\": " + std::to_string(server_retries_) +
                    "},\n";
    }
    if (isolate_process_) {
      // Process-isolation provenance: how the batch was executed at the
      // subprocess level — retry/crash/timeout tallies plus the worker
      // lifecycle event log — so a results file records not just the
      // numbers but how reliably they were produced.
      provenance += "  \"exec\": {\"isolate\": \"process\", "
                    "\"point_timeout\": " + Num(point_timeout_) +
                    ", \"retries\": " + std::to_string(retries_) +
                    ", \"workers_spawned\": " +
                    std::to_string(exec_.workers_spawned) +
                    ", \"crashes\": " + std::to_string(exec_.crashes) +
                    ", \"timeouts\": " + std::to_string(exec_.timeouts) +
                    ", \"bad_frames\": " + std::to_string(exec_.bad_frames) +
                    ", \"spawn_failures\": " +
                    std::to_string(exec_.spawn_failures) +
                    ", \"retries_performed\": " +
                    std::to_string(exec_.retries) +
                    ", \"exhausted_points\": " +
                    std::to_string(exec_.exhausted_points) +
                    ", \"fallback_points\": " +
                    std::to_string(exec_.fallback_points) +
                    ", \"cached_points\": " +
                    std::to_string(exec_.cached_points) +
                    ",\n    \"worker_events\": [";
      for (std::size_t i = 0; i < worker_events_.size(); ++i) {
        provenance += (i ? ", \"" : "\"") + EscapeJson(worker_events_[i]) +
                      "\"";
      }
      provenance += "]},\n";
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"%s\",\n"
                 "  \"build\": %s,\n"
                 "  \"threads\": %d,\n"
                 "  \"points\": %zu,\n"
                 "%s"
                 "  \"wall_seconds\": %s,\n"
                 "  \"sim_cycles\": %llu,\n"
                 "  \"sim_cycles_per_second\": %s,\n"
                 "  \"results\": [\n",
                 bench_name_.c_str(), BuildFlagsJson().c_str(), threads(),
                 records_.size(),
                 provenance.c_str(), Num(wall_seconds_).c_str(),
                 static_cast<unsigned long long>(sim_cycles_),
                 Num(wall_seconds_ > 0
                         ? static_cast<double>(sim_cycles_) / wall_seconds_
                         : 0.0)
                     .c_str());
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const NetworkSimConfig& c = records_[i].first;
      const NetworkSimResult& r = records_[i].second;
      // Failed points (invalid config, deadlock, undeliverable traffic)
      // keep their slot with a status and message instead of silently
      // vanishing or poisoning the table with zeros.
      std::string outcome_json =
          "\"status\": \"" + ToString(r.outcome.status) + "\"";
      if (!r.outcome.ok()) {
        outcome_json +=
            ", \"message\": \"" + EscapeJson(r.outcome.message) + "\"";
      }
      if (i < exec_points_.size()) {
        // Per-point execution provenance in process-isolation mode:
        // subprocess attempts and, when the point ever failed at the
        // process level, the classified cause.
        const ExecStatus& es = exec_points_[i];
        outcome_json += ", \"attempts\": " + std::to_string(es.attempts);
        if (es.from_cache) outcome_json += ", \"from_cache\": true";
        if (es.in_process_fallback) {
          outcome_json += ", \"in_process_fallback\": true";
        }
        if (es.last_failure != ExecFailure::kNone) {
          outcome_json += ", \"exec_failure\": \"" +
                          ToString(es.last_failure) + "\", " +
                          "\"exec_detail\": \"" +
                          EscapeJson(es.failure_detail) + "\"";
        }
      }
      if (r.telemetry.enabled) {
        // Telemetry aggregates ride along per point when the config enabled
        // the collector (measurement-window scope, like the core metrics).
        const TelemetrySummary& t = r.telemetry;
        char tele[512];
        std::snprintf(
            tele, sizeof tele,
            ", \"telemetry\": {\"sa_requests\": %llu, \"sa_grants\": %llu, "
            "\"crossbar_utilization\": %s, "
            "\"vin_conflict_distinct_output\": %llu, "
            "\"vin_conflict_same_output\": %llu, "
            "\"same_output_conflict_rate\": %s, "
            "\"distinct_output_conflict_rate\": %s, "
            "\"output_conflict_cycles\": %llu}",
            static_cast<unsigned long long>(t.sa_requests),
            static_cast<unsigned long long>(t.sa_grants),
            Num(t.crossbar_utilization).c_str(),
            static_cast<unsigned long long>(t.vin_conflict_distinct_output),
            static_cast<unsigned long long>(t.vin_conflict_same_output),
            Num(t.same_output_conflict_rate).c_str(),
            Num(t.distinct_output_conflict_rate).c_str(),
            static_cast<unsigned long long>(t.output_conflict_cycles));
        outcome_json += tele;
      }
      std::fprintf(
          f,
          "    {\"topology\": \"%s\", \"scheme\": \"%s\", "
          "\"pattern\": \"%s\", \"injection_rate\": %s, \"num_vcs\": %d, "
          "\"seed\": %llu, \"accepted_ppc\": %s, \"avg_latency\": %s, "
          "\"p99_latency\": %s, \"max_min_ratio\": %s, \"saturated\": %s, "
          "%s}%s\n",
          ToString(c.topology).c_str(), ToString(c.scheme).c_str(),
          MakePattern(c.pattern)->Name().c_str(), Num(c.injection_rate).c_str(),
          c.num_vcs, static_cast<unsigned long long>(c.seed),
          Num(r.accepted_ppc).c_str(), Num(r.avg_latency).c_str(),
          Num(r.p99_latency).c_str(), Num(r.max_min_ratio).c_str(),
          r.saturated ? "true" : "false", outcome_json.c_str(),
          i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path_.c_str());
    return 0;
  }

 private:
  void Init(ArgMap& args, const std::string& default_json,
            const std::string& extra_usage) {
    if (args.GetBool("help", false)) {
      std::printf(
          "usage: bench_%s [threads=N] [json=PATH] [checkpoint=DIR]\n"
          "       [server=SOCK] [isolate=thread|process] [point_timeout=S] "
          "[retries=N]%s\n"
          "  threads=N       worker threads (or subprocesses) for the sweep\n"
          "                  (default 0 = $VIXNOC_THREADS if set, else all "
          "cores)\n"
          "  json=PATH       machine-readable results file\n"
          "                  (default %s; json= disables)\n"
          "  checkpoint=DIR  content-addressed result store at DIR;\n"
          "                  re-running after an interruption resumes, and\n"
          "                  benches sharing DIR share completed points\n"
          "  server=SOCK     send every point to the vixnocd daemon at\n"
          "                  SOCK instead of simulating locally (exclusive\n"
          "                  with checkpoint= and isolate=process)\n"
          "  isolate=MODE    'thread' (default) runs points in-process;\n"
          "                  'process' runs each point in a\n"
          "                  vixnoc_sweep_worker subprocess so a crashing\n"
          "                  or hanging point cannot take down the sweep\n"
          "  point_timeout=S kill a worker stuck on one point for more\n"
          "                  than S seconds (isolate=process; 0 disables)\n"
          "  retries=N       process-level retries per failed point\n"
          "                  (isolate=process; default 2)\n%s",
          bench_name_.c_str(), extra_usage.empty() ? "" : " [...]",
          default_json.c_str(), extra_usage.c_str());
      std::exit(0);
    }
    threads_ = static_cast<int>(args.GetInt("threads", 0));
    json_path_ = args.GetString("json", default_json);
    checkpoint_dir_ = args.GetString("checkpoint", "");
    server_socket_ = args.GetString("server", "");
    const std::string isolate = args.GetString("isolate", "thread");
    if (isolate != "thread" && isolate != "process") {
      std::fprintf(stderr, "isolate=%s is not 'thread' or 'process'\n",
                   isolate.c_str());
      std::exit(2);
    }
    isolate_process_ = isolate == "process";
    if (!server_socket_.empty() &&
        (!checkpoint_dir_.empty() || isolate_process_)) {
      std::fprintf(stderr,
                   "server= is mutually exclusive with checkpoint= and "
                   "isolate=process (the daemon owns its own store)\n");
      std::exit(2);
    }
    point_timeout_ = args.GetDouble("point_timeout", 0.0);
    retries_ = static_cast<int>(args.GetInt("retries", 2));
    if (!server_socket_.empty()) {
      try {
        client_ = std::make_unique<SimClient>(server_socket_, 10.0);
      } catch (const SimError& e) {
        std::fprintf(stderr, "cannot reach vixnocd at %s: %s\n",
                     server_socket_.c_str(), e.what());
        std::exit(1);
      }
    } else {
      if (!checkpoint_dir_.empty()) {
        store_ = std::make_shared<ResultStore>(checkpoint_dir_);
      }
      runner_ = std::make_unique<SweepRunner>(threads_);
      if (store_ != nullptr) runner_->SetCache(store_);
    }
    WarnIfDebugBuild(bench_name_);
  }

  std::vector<NetworkSimResult> RunViaServer(
      const std::vector<NetworkSimConfig>& points) {
    std::vector<NetworkSimResult> results(points.size());
    std::vector<PointReply> replies = client_->Batch(points);
    for (std::size_t i = 0; i < points.size(); ++i) {
      // Daemon-at-capacity slots are re-asked individually with the
      // daemon's own backoff hint.
      while (replies[i].status == ServeStatus::kRetryAfter) {
        ++server_retries_;
        replies[i] = client_->PointWithRetry(points[i]);
        if (server_retries_ > 10'000) break;  // daemon permanently saturated
      }
      const PointReply& r = replies[i];
      if (r.status != ServeStatus::kOk) {
        results[i].outcome.status = SimStatus::kExecFailure;
        results[i].outcome.message = "daemon: " + r.message;
        continue;
      }
      results[i] = std::move(replies[i].result);
      server_hits_ += r.source == ServeSource::kStore;
      server_computed_ += r.source == ServeSource::kComputed;
      server_coalesced_ += r.source == ServeSource::kCoalesced;
    }
    return results;
  }

  std::string bench_name_;
  std::string json_path_;
  std::string checkpoint_dir_;
  std::string server_socket_;
  int threads_ = 0;
  bool isolate_process_ = false;
  double point_timeout_ = 0.0;
  int retries_ = 2;
  std::size_t resumed_points_ = 0;
  std::uint64_t defective_cache_points_ = 0;
  std::size_t deduped_points_ = 0;
  std::uint64_t server_hits_ = 0;
  std::uint64_t server_computed_ = 0;
  std::uint64_t server_coalesced_ = 0;
  std::uint64_t server_retries_ = 0;
  std::shared_ptr<ResultStore> store_;
  std::unique_ptr<SimClient> client_;
  std::unique_ptr<SweepRunner> runner_;
  double wall_seconds_ = 0.0;
  std::uint64_t sim_cycles_ = 0;
  std::vector<std::pair<NetworkSimConfig, NetworkSimResult>> records_;
  // Process-isolation accumulators (cross-batch sums + per-point records
  // parallel to records_; empty in isolate=thread mode).
  SweepExecResult exec_;
  std::vector<ExecStatus> exec_points_;
  std::vector<std::string> worker_events_;
};

}  // namespace vixnoc::bench
