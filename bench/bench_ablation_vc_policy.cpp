// Ablation: VIX VC-assignment policies (paper §2.3).
//
// The paper's VC-assignment optimization steers packets into virtual-input
// sub-groups by the direction of their downstream output port, with load
// balancing; it claims this "will help improve performance in adversarial
// traffic patterns". This bench sweeps policy x traffic pattern; the 20
// grid points run in parallel on a SweepRunner (threads=N to override).
#include <cstdio>

#include "bench_util.hpp"
#include "sweep_util.hpp"

using namespace vixnoc;

int main(int argc, char** argv) {
  bench::Banner("Ablation",
                "VIX VC-assignment policy x traffic pattern (mesh "
                "saturation throughput, packets/cycle/node)");
  bench::SweepHarness sweep(argc, argv, "ablation_vc_policy");

  const PatternKind patterns[] = {
      PatternKind::kUniform, PatternKind::kTranspose,
      PatternKind::kBitComplement, PatternKind::kBitReverse,
      PatternKind::kTornado};
  const std::pair<const char*, VcAssignPolicy> policies[] = {
      {"max-credits", VcAssignPolicy::kMaxCredits},
      {"balance", VcAssignPolicy::kVixBalance},
      {"dimension", VcAssignPolicy::kVixDimension}};

  // Per pattern: one IF baseline plus the three VIX policies.
  std::vector<NetworkSimConfig> points;
  for (PatternKind pattern : patterns) {
    NetworkSimConfig c;
    c.pattern = pattern;
    c.injection_rate = c.MaxInjectionRate();
    c.warmup = 4'000;
    c.measure = 12'000;
    c.drain = 1'000;

    c.scheme = AllocScheme::kInputFirst;
    points.push_back(c);
    c.scheme = AllocScheme::kVix;
    for (const auto& [name, policy] : policies) {
      c.vc_policy = policy;
      points.push_back(c);
    }
  }
  const std::vector<NetworkSimResult> results = sweep.Run(points);

  TablePrinter table({"pattern", "IF baseline", "VIX max-credits",
                      "VIX balance", "VIX dimension", "best policy"});
  double uniform_dim = 0, uniform_base = 0;
  for (std::size_t p = 0; p < std::size(patterns); ++p) {
    const double base = results[p * 4].accepted_ppc;
    double vals[3];
    int best = 0;
    for (int i = 0; i < 3; ++i) {
      vals[i] = results[p * 4 + 1 + i].accepted_ppc;
      if (vals[i] > vals[best]) best = i;
    }
    if (patterns[p] == PatternKind::kUniform) {
      uniform_dim = vals[2];
      uniform_base = base;
    }
    table.AddRow({MakePattern(patterns[p])->Name(),
                  TablePrinter::Fmt(base, 4), TablePrinter::Fmt(vals[0], 4),
                  TablePrinter::Fmt(vals[1], 4),
                  TablePrinter::Fmt(vals[2], 4), policies[best].first});
  }
  table.Print();

  bench::Claim("VIX(dimension) gain over IF on uniform random", 0.16,
               bench::PctGain(uniform_dim, uniform_base));
  bench::Note("on uniform random the policies tie (any steering works); "
              "directional patterns are where dimension information and "
              "load balance separate.");
  return sweep.Finish();
}
