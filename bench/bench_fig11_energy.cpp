// Reproduces Figure 11: network energy per bit for the mesh at an
// injection rate of 0.1 packets/cycle/node, broken into buffer, crossbar,
// link, clock, and leakage components, for IF / WF / AP / VIX.
#include <cstdio>

#include "bench_util.hpp"
#include "power/energy_model.hpp"
#include "sim/network_sim.hpp"

using namespace vixnoc;

int main() {
  bench::Banner("Figure 11",
                "Network energy per bit, mesh @ 0.1 packets/cycle/node");

  const AllocScheme schemes[] = {
      AllocScheme::kInputFirst, AllocScheme::kWavefront,
      AllocScheme::kAugmentingPath, AllocScheme::kVix};

  const power::EnergyParams params;
  TablePrinter table({"Scheme", "buffer", "xbar", "link", "clock", "leak",
                      "total [pJ/bit]", "vs IF"});
  double total_if = 0.0, total_vix = 0.0;
  for (AllocScheme scheme : schemes) {
    NetworkSimConfig c;
    c.scheme = scheme;
    c.injection_rate = 0.1;
    c.warmup = 5'000;
    c.measure = 20'000;
    c.drain = 2'000;
    const auto r = RunNetworkSim(c);

    RouterConfig router;
    router.radix = 5;
    router.num_vcs = c.num_vcs;
    router.buffer_depth = c.buffer_depth;
    router.scheme = scheme;
    const auto e = power::NetworkEnergy(params, router, 64, r.activity,
                                        r.measure_cycles);
    const auto bits = static_cast<std::uint64_t>(
        r.accepted_fpc * static_cast<double>(r.measure_cycles) *
        params.flit_bits);
    const double total = power::EnergyPerBitPj(e, bits);
    const double scale = total / e.TotalPj();
    if (scheme == AllocScheme::kInputFirst) total_if = total;
    if (scheme == AllocScheme::kVix) total_vix = total;
    table.AddRow({ToString(scheme),
                  TablePrinter::Fmt(e.buffer_pj * scale, 3),
                  TablePrinter::Fmt(e.xbar_pj * scale, 3),
                  TablePrinter::Fmt(e.link_pj * scale, 3),
                  TablePrinter::Fmt(e.clock_pj * scale, 3),
                  TablePrinter::Fmt(e.leakage_pj * scale, 3),
                  TablePrinter::Fmt(total, 3),
                  total_if > 0
                      ? TablePrinter::Pct(bench::PctGain(total, total_if))
                      : "--"});
  }
  table.Print();

  bench::Claim("VIX total energy/bit overhead vs IF (paper: +4%)", 0.04,
               bench::PctGain(total_vix, total_if));
  bench::Note("VIX's overhead is confined to the crossbar (1.5x traversal "
              "energy for the 2P x P switch) and its leakage; the paper "
              "adds that VIX's shorter runtimes recoup static energy at "
              "the system level.");
  return 0;
}
