// Ablation: router pipeline organization (Fig 6a vs 6b).
//
// The paper's evaluation uses the optimized 3-stage pipeline (lookahead
// routing + speculative switch allocation). This bench shows what the
// conservative 5-stage organization costs and that VIX's benefit is
// orthogonal to pipeline depth. The (stages x scheme x rate) grid runs in
// parallel on a SweepRunner (threads=N to override, default all cores).
#include <cstdio>

#include "bench_util.hpp"
#include "sweep_util.hpp"

using namespace vixnoc;

int main(int argc, char** argv) {
  bench::Banner("Ablation",
                "3-stage (speculative, lookahead) vs 5-stage router "
                "pipeline, mesh");
  bench::SweepHarness sweep(argc, argv, "ablation_pipeline");

  const int stage_opts[] = {3, 5};
  const AllocScheme schemes[] = {AllocScheme::kInputFirst, AllocScheme::kVix};
  const double rates[] = {0.01, 0.08, 0.25};  // zero-load, mid, saturation

  std::vector<NetworkSimConfig> points;
  for (int stages : stage_opts) {
    for (AllocScheme scheme : schemes) {
      for (double rate : rates) {
        NetworkSimConfig c;
        c.scheme = scheme;
        c.pipeline_stages = stages;
        c.injection_rate = rate;
        c.warmup = 4'000;
        c.measure = 12'000;
        c.drain = 2'000;
        points.push_back(c);
      }
    }
  }
  const std::vector<NetworkSimResult> results = sweep.Run(points);
  // Index into the (stages, scheme, rate) grid laid out above.
  const auto at = [&](int stages_idx, int scheme_idx,
                      int rate_idx) -> const NetworkSimResult& {
    return results[static_cast<std::size_t>(stages_idx) * 6 +
                   static_cast<std::size_t>(scheme_idx) * 3 + rate_idx];
  };

  TablePrinter table({"Scheme", "stages", "zero-load latency",
                      "latency @0.08", "throughput @sat"});
  double gain[2] = {};
  for (int si = 0; si < 2; ++si) {
    for (int ai = 0; ai < 2; ++ai) {
      const NetworkSimResult& lo = at(si, ai, 0);
      const NetworkSimResult& mid = at(si, ai, 1);
      const NetworkSimResult& sat = at(si, ai, 2);
      table.AddRow({ToString(schemes[ai]),
                    TablePrinter::Fmt(std::int64_t{stage_opts[si]}),
                    TablePrinter::Fmt(lo.avg_latency, 1),
                    TablePrinter::Fmt(mid.avg_latency, 1),
                    TablePrinter::Fmt(sat.accepted_ppc, 4)});
      if (schemes[ai] == AllocScheme::kVix) {
        gain[si] = bench::PctGain(sat.accepted_ppc, at(si, 0, 2).accepted_ppc);
      }
    }
  }
  table.Print();

  bench::Claim("VIX gain with 3-stage pipeline", 0.16, gain[0]);
  bench::Claim("VIX gain with 5-stage pipeline", 0.16, gain[1]);
  bench::Note("pipelining depth moves the latency floor but not the "
              "allocation bottleneck: VIX's throughput gain survives both "
              "organizations (speculation, per Peh & Dally, is what makes "
              "the 3-stage feasible).");
  return sweep.Finish();
}
