// Ablation: router pipeline organization (Fig 6a vs 6b).
//
// The paper's evaluation uses the optimized 3-stage pipeline (lookahead
// routing + speculative switch allocation). This bench shows what the
// conservative 5-stage organization costs and that VIX's benefit is
// orthogonal to pipeline depth.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/network_sim.hpp"

using namespace vixnoc;

namespace {

NetworkSimResult Run(AllocScheme scheme, int stages, double rate) {
  NetworkSimConfig c;
  c.scheme = scheme;
  c.pipeline_stages = stages;
  c.injection_rate = rate;
  c.warmup = 4'000;
  c.measure = 12'000;
  c.drain = 2'000;
  return RunNetworkSim(c);
}

}  // namespace

int main() {
  bench::Banner("Ablation",
                "3-stage (speculative, lookahead) vs 5-stage router "
                "pipeline, mesh");

  TablePrinter table({"Scheme", "stages", "zero-load latency",
                      "latency @0.08", "throughput @sat"});
  double gain[2] = {};
  for (int stages : {3, 5}) {
    for (AllocScheme scheme : {AllocScheme::kInputFirst, AllocScheme::kVix}) {
      const auto lo = Run(scheme, stages, 0.01);
      const auto mid = Run(scheme, stages, 0.08);
      const auto sat = Run(scheme, stages, 0.25);
      table.AddRow({ToString(scheme),
                    TablePrinter::Fmt(std::int64_t{stages}),
                    TablePrinter::Fmt(lo.avg_latency, 1),
                    TablePrinter::Fmt(mid.avg_latency, 1),
                    TablePrinter::Fmt(sat.accepted_ppc, 4)});
      if (scheme == AllocScheme::kVix) {
        const auto base = Run(AllocScheme::kInputFirst, stages, 0.25);
        gain[stages == 5] = bench::PctGain(sat.accepted_ppc,
                                           base.accepted_ppc);
      }
    }
  }
  table.Print();

  bench::Claim("VIX gain with 3-stage pipeline", 0.16, gain[0]);
  bench::Claim("VIX gain with 5-stage pipeline", 0.16, gain[1]);
  bench::Note("pipelining depth moves the latency floor but not the "
              "allocation bottleneck: VIX's throughput gain survives both "
              "organizations (speculation, per Peh & Dally, is what makes "
              "the 3-stage feasible).");
  return 0;
}
