// Extension: VIX on a torus with dateline VC classes.
//
// The torus halves average hop count versus the mesh but its dateline
// deadlock avoidance splits each VC partition in two, which interacts with
// VIX's sub-group partitioning (each dateline class maps onto one virtual
// input for the 6-VC 1:2 configuration). This bench quantifies how much of
// VIX's mesh gain survives. The (topology x config) points run in parallel
// on a SweepRunner (threads=N to override, default all cores).
#include <cstdio>

#include "bench_util.hpp"
#include "sweep_util.hpp"
#include "topology/topology.hpp"

using namespace vixnoc;

namespace {

NetworkSimConfig Point(TopologyKind kind, AllocScheme scheme, double rate,
                       bool interleaved = false) {
  NetworkSimConfig c;
  c.topology = kind;
  c.scheme = scheme;
  c.injection_rate = rate;
  c.interleaved_vins = interleaved;
  c.warmup = 4'000;
  c.measure = 12'000;
  c.drain = 1'000;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("Extension",
                "Torus (dateline VC classes) vs mesh, 64 nodes, uniform "
                "random");
  bench::SweepHarness sweep(argc, argv, "ext_torus");

  const TopologyKind kinds[] = {TopologyKind::kMesh, TopologyKind::kTorus};
  std::vector<NetworkSimConfig> points;
  for (TopologyKind kind : kinds) {
    points.push_back(Point(kind, AllocScheme::kInputFirst, 0.01));
    points.push_back(Point(kind, AllocScheme::kInputFirst, 0.25));
    points.push_back(Point(kind, AllocScheme::kVix, 0.25));
    points.push_back(Point(kind, AllocScheme::kVix, 0.25, true));
  }
  const std::vector<NetworkSimResult> results = sweep.Run(points);

  TablePrinter table({"topology", "scheme", "zero-load latency",
                      "throughput @sat", "VIX gain"});
  double gains[2] = {};
  for (std::size_t i = 0; i < std::size(kinds); ++i) {
    const TopologyKind kind = kinds[i];
    const NetworkSimResult& base_lo = results[i * 4];
    const NetworkSimResult& base_sat = results[i * 4 + 1];
    const NetworkSimResult& vix_sat = results[i * 4 + 2];
    const NetworkSimResult& vix_il = results[i * 4 + 3];
    gains[i] = bench::PctGain(vix_sat.accepted_ppc, base_sat.accepted_ppc);
    table.AddRow({ToString(kind), "IF",
                  TablePrinter::Fmt(base_lo.avg_latency, 1),
                  TablePrinter::Fmt(base_sat.accepted_ppc, 4), "--"});
    table.AddRow({ToString(kind), "VIX", "--",
                  TablePrinter::Fmt(vix_sat.accepted_ppc, 4),
                  TablePrinter::Pct(gains[i])});
    table.AddRow({ToString(kind), "VIX (interleaved)", "--",
                  TablePrinter::Fmt(vix_il.accepted_ppc, 4),
                  TablePrinter::Pct(bench::PctGain(vix_il.accepted_ppc,
                                                   base_sat.accepted_ppc))});
  }
  table.Print();

  bench::Claim("VIX gain on mesh", 0.153, gains[0]);
  bench::Claim("VIX gain on torus (contiguous wiring)", 0.153, gains[1]);
  bench::Note("wrap links cut zero-load latency, but dateline deadlock "
              "avoidance confines every packet to half the VC partition "
              "and most hops are pre-dateline, so the baseline torus "
              "under-utilizes its upper VC half (the classic dateline "
              "cost). VIX helps more than on the mesh even with the "
              "paper's contiguous wiring (the two dateline classes land "
              "on different virtual inputs), and the interleaved vc%k "
              "wiring — which keeps BOTH virtual inputs reachable inside "
              "each dateline class — roughly doubles the gain again. On "
              "the mesh the two wirings are equivalent.");
  return sweep.Finish();
}
