// Extension: VIX on a torus with dateline VC classes.
//
// The torus halves average hop count versus the mesh but its dateline
// deadlock avoidance splits each VC partition in two, which interacts with
// VIX's sub-group partitioning (each dateline class maps onto one virtual
// input for the 6-VC 1:2 configuration). This bench quantifies how much of
// VIX's mesh gain survives.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/network_sim.hpp"
#include "topology/topology.hpp"

using namespace vixnoc;

namespace {

NetworkSimResult Run(TopologyKind kind, AllocScheme scheme, double rate,
                     bool interleaved = false) {
  NetworkSimConfig c;
  c.topology = kind;
  c.scheme = scheme;
  c.injection_rate = rate;
  c.interleaved_vins = interleaved;
  c.warmup = 4'000;
  c.measure = 12'000;
  c.drain = 1'000;
  return RunNetworkSim(c);
}

}  // namespace

int main() {
  bench::Banner("Extension",
                "Torus (dateline VC classes) vs mesh, 64 nodes, uniform "
                "random");

  TablePrinter table({"topology", "scheme", "zero-load latency",
                      "throughput @sat", "VIX gain"});
  double gains[2] = {};
  int i = 0;
  for (TopologyKind kind : {TopologyKind::kMesh, TopologyKind::kTorus}) {
    const auto base_lo = Run(kind, AllocScheme::kInputFirst, 0.01);
    const auto base_sat = Run(kind, AllocScheme::kInputFirst, 0.25);
    const auto vix_sat = Run(kind, AllocScheme::kVix, 0.25);
    gains[i] = bench::PctGain(vix_sat.accepted_ppc, base_sat.accepted_ppc);
    table.AddRow({ToString(kind), "IF",
                  TablePrinter::Fmt(base_lo.avg_latency, 1),
                  TablePrinter::Fmt(base_sat.accepted_ppc, 4), "--"});
    table.AddRow({ToString(kind), "VIX", "--",
                  TablePrinter::Fmt(vix_sat.accepted_ppc, 4),
                  TablePrinter::Pct(gains[i])});
    const auto vix_il = Run(kind, AllocScheme::kVix, 0.25, true);
    table.AddRow({ToString(kind), "VIX (interleaved)", "--",
                  TablePrinter::Fmt(vix_il.accepted_ppc, 4),
                  TablePrinter::Pct(bench::PctGain(vix_il.accepted_ppc,
                                                   base_sat.accepted_ppc))});
    ++i;
  }
  table.Print();

  bench::Claim("VIX gain on mesh", 0.153, gains[0]);
  bench::Claim("VIX gain on torus (contiguous wiring)", 0.153, gains[1]);
  bench::Note("wrap links cut zero-load latency, but dateline deadlock "
              "avoidance confines every packet to half the VC partition "
              "and most hops are pre-dateline, so the baseline torus "
              "under-utilizes its upper VC half (the classic dateline "
              "cost). VIX helps more than on the mesh even with the "
              "paper's contiguous wiring (the two dateline classes land "
              "on different virtual inputs), and the interleaved vc%k "
              "wiring — which keeps BOTH virtual inputs reachable inside "
              "each dateline class — roughly doubles the gain again. On "
              "the mesh the two wirings are equivalent.");
  return 0;
}
