// Google-benchmark microbenchmarks of the allocator kernels themselves:
// simulation-host cost per Allocate() call for each scheme. (The *circuit*
// delay comparison lives in bench_table3_allocator_delay; this bench makes
// the software cost of each algorithm visible, e.g. AP's augmentation work
// versus the separable allocators.)
#include <benchmark/benchmark.h>

#include "alloc/switch_allocator.hpp"
#include "common/rng.hpp"

namespace vixnoc {
namespace {

void RunAllocator(benchmark::State& state, AllocScheme scheme, int radix,
                  int vcs) {
  SwitchGeometry geom;
  geom.num_inports = radix;
  geom.num_outports = radix;
  geom.num_vcs = vcs;
  geom.num_vins = VirtualInputsForScheme(scheme, vcs);
  auto alloc = MakeSwitchAllocator(scheme, geom);

  // Pre-generate a pool of saturated request matrices.
  Rng rng(17);
  constexpr int kPool = 64;
  std::vector<std::vector<SaRequest>> pool(kPool);
  for (auto& reqs : pool) {
    for (PortId in = 0; in < radix; ++in) {
      for (VcId vc = 0; vc < vcs; ++vc) {
        if (rng.NextBool(0.7)) {
          reqs.push_back({in, vc, static_cast<PortId>(rng.NextBounded(radix))});
        }
      }
    }
  }

  std::vector<SaGrant> grants;
  std::size_t i = 0;
  for (auto _ : state) {
    alloc->Allocate(pool[i++ % kPool], &grants);
    benchmark::DoNotOptimize(grants.data());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_InputFirst(benchmark::State& s) {
  RunAllocator(s, AllocScheme::kInputFirst, static_cast<int>(s.range(0)), 6);
}
void BM_Vix(benchmark::State& s) {
  RunAllocator(s, AllocScheme::kVix, static_cast<int>(s.range(0)), 6);
}
void BM_VixIdeal(benchmark::State& s) {
  RunAllocator(s, AllocScheme::kVixIdeal, static_cast<int>(s.range(0)), 6);
}
void BM_Wavefront(benchmark::State& s) {
  RunAllocator(s, AllocScheme::kWavefront, static_cast<int>(s.range(0)), 6);
}
void BM_AugmentingPath(benchmark::State& s) {
  RunAllocator(s, AllocScheme::kAugmentingPath, static_cast<int>(s.range(0)),
               6);
}
void BM_PacketChaining(benchmark::State& s) {
  RunAllocator(s, AllocScheme::kPacketChaining, static_cast<int>(s.range(0)),
               6);
}
void BM_Islip(benchmark::State& s) {
  RunAllocator(s, AllocScheme::kIslip, static_cast<int>(s.range(0)), 6);
}
void BM_Serenade(benchmark::State& s) {
  RunAllocator(s, AllocScheme::kSerenade, static_cast<int>(s.range(0)), 6);
}

BENCHMARK(BM_InputFirst)->Arg(5)->Arg(8)->Arg(10);
BENCHMARK(BM_Vix)->Arg(5)->Arg(8)->Arg(10);
BENCHMARK(BM_VixIdeal)->Arg(5)->Arg(8)->Arg(10);
BENCHMARK(BM_Wavefront)->Arg(5)->Arg(8)->Arg(10);
BENCHMARK(BM_AugmentingPath)->Arg(5)->Arg(8)->Arg(10);
BENCHMARK(BM_PacketChaining)->Arg(5)->Arg(8)->Arg(10);
BENCHMARK(BM_Islip)->Arg(5)->Arg(8)->Arg(10);
BENCHMARK(BM_Serenade)->Arg(5)->Arg(8)->Arg(10);

}  // namespace
}  // namespace vixnoc

BENCHMARK_MAIN();
