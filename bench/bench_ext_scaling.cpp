// Extension: how does the VIX advantage scale with network size?
//
// The paper evaluates 64 nodes. This bench sweeps mesh sizes from 16 to
// 256 nodes at each size's own high-load operating point and reports the
// VIX-over-IF saturation-throughput gain. The (size x scheme) points run
// in parallel on a SweepRunner (threads=N to override, default all cores).
#include <cstdio>

#include "bench_util.hpp"
#include "sweep_util.hpp"
#include "topology/topology.hpp"

using namespace vixnoc;

int main(int argc, char** argv) {
  bench::Banner("Extension",
                "VIX gain vs mesh size (saturation throughput, "
                "packets/cycle/node)");
  bench::SweepHarness sweep(argc, argv, "ext_scaling");

  const int sides[] = {4, 6, 8, 12, 16};
  std::vector<NetworkSimConfig> points;
  for (int side : sides) {
    for (AllocScheme scheme :
         {AllocScheme::kInputFirst, AllocScheme::kVix}) {
      NetworkSimConfig c;
      c.scheme = scheme;
      c.topology = TopologyKind::kMesh;
      c.topology_factory = [side] { return MakeMesh(side, side); };
      c.injection_rate = c.MaxInjectionRate();
      c.warmup = 4'000;
      c.measure = 10'000;
      c.drain = 1'000;
      points.push_back(c);
    }
  }
  const std::vector<NetworkSimResult> results = sweep.Run(points);

  TablePrinter table({"mesh", "nodes", "IF", "VIX", "VIX gain"});
  double gain64 = 0.0;
  for (std::size_t i = 0; i < std::size(sides); ++i) {
    const int side = sides[i];
    const double base = results[i * 2].accepted_ppc;
    const double vix = results[i * 2 + 1].accepted_ppc;
    if (side == 8) gain64 = bench::PctGain(vix, base);
    char name[16];
    std::snprintf(name, sizeof name, "%dx%d", side, side);
    table.AddRow({name, TablePrinter::Fmt(std::int64_t{side} * side),
                  TablePrinter::Fmt(base, 4), TablePrinter::Fmt(vix, 4),
                  TablePrinter::Pct(bench::PctGain(vix, base))});
  }
  table.Print();

  bench::Claim("VIX gain at the paper's 8x8 size", 0.162, gain64);
  bench::Note("the VIX gain shrinks as the mesh grows (+21% at 16 nodes -> "
              "+9% at 256): larger meshes are increasingly bisection-"
              "limited rather than allocation-limited, so improving the "
              "per-router matching buys less. Concentration (CMesh) or "
              "higher-radix topologies (FBfly) keep routers the bottleneck "
              "— consistent with the paper's focus on those designs for "
              "scaling.");
  return sweep.Finish();
}
