// Extension: allocator resilience under link faults. VIX's case is built
// on fault-free meshes; this bench asks whether its throughput and
// fairness advantages survive when a fraction of inter-router links is
// permanently down and traffic detours around the holes.
//
// For each (scheme x link-fault rate) cell, two operating points run with
// deterministic fault schedules (seeded from `seed=`, identical at any
// threads= value): a safe point (0.03) below the fault-degraded saturation
// knee, where latency and fairness are comparable across schemes, and a
// stress point (0.06) past the knee for higher fault rates, where minimal
// detour routing is expected to wedge — those cells report a deadlock or
// undeliverable status caught by the watchdog instead of folding bogus
// zeros into the averages.
//
// Flags beyond the standard harness ones:
//   faults=R1,R2,...  link-down rates to sweep (default 0,0.02,0.05,0.1)
//   seed=N            fault-schedule/simulation seed (default 1)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sweep_util.hpp"

using namespace vixnoc;

namespace {

std::vector<double> ParseRates(const std::string& csv) {
  std::vector<double> rates;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!item.empty()) rates.push_back(std::stod(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("Extension", "Allocator resilience under link faults, mesh");
  ArgMap args = ArgMap::Parse(argc, argv);
  bench::SweepHarness sweep(
      args, "ext_fault_resilience", "bench_results.json",
      "  faults=R,..  link-down rates to sweep (default 0,0.02,0.05,0.1)\n"
      "  seed=N       fault-schedule/simulation seed (default 1)\n");
  const std::vector<double> fault_rates =
      ParseRates(args.GetString("faults", "0,0.02,0.05,0.1"));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));
  args.CheckAllConsumed();

  const AllocScheme schemes[] = {AllocScheme::kInputFirst,
                                 AllocScheme::kAugmentingPath,
                                 AllocScheme::kVix};
  const double rates[] = {0.03, 0.06};  // below the degraded knee; stress

  std::vector<NetworkSimConfig> points;
  for (AllocScheme scheme : schemes) {
    for (double fault_rate : fault_rates) {
      for (double rate : rates) {
        NetworkSimConfig c;
        c.scheme = scheme;
        // Explicit plugin selection (with zero faults fault_aware's BFS
        // tables coincide with XY DOR, so the fault=0 column is a true
        // baseline rather than a different algorithm).
        c.routing = "fault_aware";
        c.injection_rate = rate;
        c.warmup = 3'000;
        c.measure = 10'000;
        c.drain = 2'000;
        c.seed = seed;
        c.faults.link_down_rate = fault_rate;
        points.push_back(c);
      }
    }
  }
  const std::vector<NetworkSimResult> results = sweep.Run(points);

  TablePrinter table({"Scheme", "link faults", "accepted @ 0.03",
                      "latency @ 0.03", "max/min @ 0.03", "accepted @ 0.06",
                      "stress status"});
  double vix_worst_lat = 0, if_worst_lat = 0;
  std::size_t i = 0;
  for (AllocScheme scheme : schemes) {
    for (double fault_rate : fault_rates) {
      const NetworkSimResult& safe = results[i++];
      const NetworkSimResult& stress = results[i++];
      table.AddRow({ToString(scheme), TablePrinter::Fmt(fault_rate, 2),
                    TablePrinter::Fmt(safe.accepted_ppc, 4),
                    TablePrinter::Fmt(safe.avg_latency, 1),
                    TablePrinter::Fmt(safe.max_min_ratio, 2),
                    TablePrinter::Fmt(stress.accepted_ppc, 4),
                    ToString(stress.outcome.status)});
      if (fault_rate == fault_rates.back()) {
        if (scheme == AllocScheme::kVix) vix_worst_lat = safe.avg_latency;
        if (scheme == AllocScheme::kInputFirst) {
          if_worst_lat = safe.avg_latency;
        }
      }
    }
  }
  table.Print();

  bench::Note("Below the degraded saturation knee every scheme delivers the "
              "full offered load over an identical fault schedule, so the "
              "latency and fairness columns isolate the allocator. Stress "
              "cells marked 'deadlock' are expected above ~5% faults: "
              "minimal detours close channel-dependency cycles under "
              "congestion, and the forward-progress watchdog reports them "
              "instead of hanging the sweep. 'undeliverable' marks runs "
              "where the surviving link graph disconnects node pairs (their "
              "packets are counted, not injected).");
  if (vix_worst_lat > 0 && if_worst_lat > 0) {
    bench::Claim("VIX / IF packet latency at the worst fault rate "
                 "(expect ~1 or below: virtual inputs cost nothing here)",
                 1.0, vix_worst_lat / if_worst_lat);
  }
  return sweep.Finish();
}
