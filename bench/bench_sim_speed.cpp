// Google-benchmark measurement of the simulator itself: router-cycles per
// second of host time per topology and allocator. A practical number for
// anyone planning larger parameter sweeps on this code base.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.hpp"
#include "network/network.hpp"
#include "topology/topology.hpp"

namespace vixnoc {
namespace {

void RunNetwork(benchmark::State& state, TopologyKind kind,
                AllocScheme scheme) {
  std::shared_ptr<Topology> topo = MakeTopology64(kind);
  NetworkParams params;
  params.router.radix = topo->Radix();
  params.router.num_vcs = 6;
  params.router.buffer_depth = 5;
  params.router.scheme = scheme;
  params.router.vc_policy = RouterConfig::DefaultPolicyFor(scheme);
  Network net(topo, params);
  const int num_routers = net.NumRouters();

  Rng rng(1);
  // Pre-load to a realistic operating point.
  for (Cycle t = 0; t < 2'000; ++t) {
    for (NodeId n = 0; n < net.NumNodes(); ++n) {
      if (rng.NextBool(0.08)) {
        net.EnqueuePacket(n, static_cast<NodeId>(
                                 rng.NextBounded(net.NumNodes())), 4);
      }
    }
    net.Step();
  }

  for (auto _ : state) {
    for (NodeId n = 0; n < net.NumNodes(); ++n) {
      if (rng.NextBool(0.08)) {
        net.EnqueuePacket(n, static_cast<NodeId>(
                                 rng.NextBounded(net.NumNodes())), 4);
      }
    }
    net.Step();
  }
  state.SetItemsProcessed(state.iterations() * num_routers);
  state.counters["router_cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * num_routers,
      benchmark::Counter::kIsRate);
}

void BM_Mesh_IF(benchmark::State& s) {
  RunNetwork(s, TopologyKind::kMesh, AllocScheme::kInputFirst);
}
void BM_Mesh_VIX(benchmark::State& s) {
  RunNetwork(s, TopologyKind::kMesh, AllocScheme::kVix);
}
void BM_Mesh_WF(benchmark::State& s) {
  RunNetwork(s, TopologyKind::kMesh, AllocScheme::kWavefront);
}
void BM_Mesh_AP(benchmark::State& s) {
  RunNetwork(s, TopologyKind::kMesh, AllocScheme::kAugmentingPath);
}
void BM_CMesh_VIX(benchmark::State& s) {
  RunNetwork(s, TopologyKind::kCMesh, AllocScheme::kVix);
}
void BM_FBfly_VIX(benchmark::State& s) {
  RunNetwork(s, TopologyKind::kFBfly, AllocScheme::kVix);
}

BENCHMARK(BM_Mesh_IF);
BENCHMARK(BM_Mesh_VIX);
BENCHMARK(BM_Mesh_WF);
BENCHMARK(BM_Mesh_AP);
BENCHMARK(BM_CMesh_VIX);
BENCHMARK(BM_FBfly_VIX);

}  // namespace
}  // namespace vixnoc

BENCHMARK_MAIN();
