// Measurement of the simulator itself, for anyone planning larger
// parameter sweeps on this code base.
//
// Two sections:
//  * google-benchmark micro section: router-cycles per second of host time
//    per topology and allocator (single-threaded hot-loop speed);
//  * sweep section: a Fig-8-shaped batch of independent simulation points
//    run through SweepRunner at 1 and N threads, then through the
//    crash-isolated SweepCoordinator subprocess pool — end-to-end sweep
//    throughput, parallel speedup, subprocess-isolation overhead, and a
//    determinism cross-check across all three execution modes.
//
// Emits bench_results.json (json=PATH to override, json= to disable) with
// both sections' numbers, seeding the repo's performance trajectory.
// Flags: threads=N (sweep worker cap, default all cores), plus the usual
// --benchmark_* flags for the micro section.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "alloc/switch_allocator.hpp"
#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "exec/coordinator.hpp"
#include "network/network.hpp"
#include "routing/registry.hpp"
#include "server/client.hpp"
#include "server/daemon.hpp"
#include "sim/sweep.hpp"
#include "topology/topology.hpp"

namespace vixnoc {
namespace {

void RunNetwork(benchmark::State& state, TopologyKind kind,
                AllocScheme scheme, const char* routing = nullptr) {
  std::shared_ptr<Topology> topo = MakeTopology64(kind);
  std::unique_ptr<RoutingAlgorithm> routing_algo;
  NetworkParams params;
  params.router.radix = topo->Radix();
  params.router.num_vcs = 6;
  params.router.buffer_depth = 5;
  params.router.scheme = scheme;
  params.router.vc_policy = RouterConfig::DefaultPolicyFor(scheme);
  if (routing != nullptr) {
    routing_algo = MakeRoutingAlgorithm(routing, *topo);
    params.routing = routing_algo.get();
  }
  Network net(topo, params);
  const int num_routers = net.NumRouters();

  Rng rng(1);
  // Pre-load to a realistic operating point.
  for (Cycle t = 0; t < 2'000; ++t) {
    for (NodeId n = 0; n < net.NumNodes(); ++n) {
      if (rng.NextBool(0.08)) {
        net.EnqueuePacket(n, static_cast<NodeId>(
                                 rng.NextBounded(net.NumNodes())), 4);
      }
    }
    net.Step();
  }

  for (auto _ : state) {
    for (NodeId n = 0; n < net.NumNodes(); ++n) {
      if (rng.NextBool(0.08)) {
        net.EnqueuePacket(n, static_cast<NodeId>(
                                 rng.NextBounded(net.NumNodes())), 4);
      }
    }
    net.Step();
  }
  state.SetItemsProcessed(state.iterations() * num_routers);
  state.counters["router_cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * num_routers,
      benchmark::Counter::kIsRate);
}

void BM_Mesh_IF(benchmark::State& s) {
  RunNetwork(s, TopologyKind::kMesh, AllocScheme::kInputFirst);
}
void BM_Mesh_VIX(benchmark::State& s) {
  RunNetwork(s, TopologyKind::kMesh, AllocScheme::kVix);
}
void BM_Mesh_WF(benchmark::State& s) {
  RunNetwork(s, TopologyKind::kMesh, AllocScheme::kWavefront);
}
void BM_Mesh_AP(benchmark::State& s) {
  RunNetwork(s, TopologyKind::kMesh, AllocScheme::kAugmentingPath);
}
void BM_CMesh_VIX(benchmark::State& s) {
  RunNetwork(s, TopologyKind::kCMesh, AllocScheme::kVix);
}
void BM_FBfly_VIX(benchmark::State& s) {
  RunNetwork(s, TopologyKind::kFBfly, AllocScheme::kVix);
}
// Adaptive routing costs an extra candidate-scoring pass in VA; this arm
// pins that overhead on the trajectory next to the default-DOR mesh arm.
void BM_Mesh_VIX_AdaptiveMin(benchmark::State& s) {
  RunNetwork(s, TopologyKind::kMesh, AllocScheme::kVix, "adaptive_min");
}

BENCHMARK(BM_Mesh_IF);
BENCHMARK(BM_Mesh_VIX);
BENCHMARK(BM_Mesh_WF);
BENCHMARK(BM_Mesh_AP);
BENCHMARK(BM_CMesh_VIX);
BENCHMARK(BM_FBfly_VIX);
BENCHMARK(BM_Mesh_VIX_AdaptiveMin);

// Gated arm (pass serenade=1): a saturated radix-64 single-router hot loop
// over the SERENADE allocator — one Allocate() per state iteration is one
// router cycle. Large-radix points are well off the 64-node mesh arms'
// operating point, so this arm is opt-in; the trajectory check
// (scripts/bench_trajectory.py) treats its absence as a skipped gated arm,
// not a regression.
void BM_SingleRouter_Serenade(benchmark::State& state) {
  constexpr int kRadix = 64;
  constexpr int kVcs = 4;
  SwitchGeometry geom;
  geom.num_inports = kRadix;
  geom.num_outports = kRadix;
  geom.num_vcs = kVcs;
  geom.num_vins = VirtualInputsForScheme(AllocScheme::kSerenade, kVcs);
  auto alloc = MakeSwitchAllocator(AllocScheme::kSerenade, geom,
                                   ArbiterKind::kRoundRobin, 7);
  Rng rng(17);
  constexpr int kPool = 64;
  std::vector<std::vector<SaRequest>> pool(kPool);
  for (auto& reqs : pool) {
    for (PortId in = 0; in < kRadix; ++in) {
      for (VcId vc = 0; vc < kVcs; ++vc) {
        if (rng.NextBool(0.7)) {
          reqs.push_back(
              {in, vc, static_cast<PortId>(rng.NextBounded(kRadix))});
        }
      }
    }
  }
  std::vector<SaGrant> grants;
  std::size_t i = 0;
  for (auto _ : state) {
    alloc->Allocate(pool[i++ % kPool], &grants);
    benchmark::DoNotOptimize(grants.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["router_cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

/// Tees the console output while keeping every finished run for the JSON
/// report.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct MicroResult {
    std::string name;
    double router_cycles_per_second = 0.0;
    double real_ns_per_cycle = 0.0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      MicroResult r;
      r.name = run.benchmark_name();
      r.real_ns_per_cycle = run.GetAdjustedRealTime();
      const auto it = run.counters.find("router_cycles/s");
      if (it != run.counters.end()) {
        r.router_cycles_per_second = it->second.value;
      }
      results.push_back(std::move(r));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<MicroResult> results;
};

struct SweepTiming {
  int threads = 0;
  bool process_isolated = false;
  double wall_seconds = 0.0;
};

using bench::Num;

}  // namespace
}  // namespace vixnoc

int main(int argc, char** argv) {
  using namespace vixnoc;

  benchmark::Initialize(&argc, argv);
  ArgMap args = ArgMap::Parse(argc, argv);
  const int max_threads =
      ResolveThreadCount(static_cast<int>(args.GetInt("threads", 0)));
  const std::string json_path = args.GetString("json", "bench_results.json");
  const bool serenade_arm = args.GetBool("serenade", false);
  const bool service_arm = args.GetBool("service", false);
  args.CheckAllConsumed();

  if (serenade_arm) {
    benchmark::RegisterBenchmark("BM_SingleRouter_Serenade",
                                 BM_SingleRouter_Serenade);
  }

  bench::WarnIfDebugBuild("sim_speed");
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  // Sweep section: a Fig-8-shaped batch (4 schemes x 2 rates), sized to a
  // few seconds of serial work.
  std::vector<NetworkSimConfig> points;
  for (AllocScheme scheme :
       {AllocScheme::kInputFirst, AllocScheme::kWavefront,
        AllocScheme::kAugmentingPath, AllocScheme::kVix}) {
    for (double rate : {0.08, 0.12}) {
      NetworkSimConfig c;
      c.scheme = scheme;
      c.injection_rate = rate;
      c.warmup = 2'000;
      c.measure = 6'000;
      c.drain = 1'000;
      points.push_back(c);
    }
  }
  std::uint64_t network_cycles = 0;
  for (const NetworkSimConfig& c : points) {
    network_cycles += static_cast<std::uint64_t>(c.warmup) + c.measure +
                      c.drain;
  }

  std::printf("\nsweep section: %zu Fig-8-shaped points, %llu network "
              "cycles total\n",
              points.size(),
              static_cast<unsigned long long>(network_cycles));
  std::vector<SweepTiming> timings;
  std::vector<NetworkSimResult> serial_results;
  bool deterministic = true;
  for (const int threads :
       std::vector<int>{1, max_threads > 1 ? max_threads : 0}) {
    if (threads == 0) break;  // single-core host: nothing to compare
    const auto start = std::chrono::steady_clock::now();
    const std::vector<NetworkSimResult> results = RunSweep(points, threads);
    SweepTiming t;
    t.threads = threads;
    t.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    timings.push_back(t);
    std::printf("  threads=%-3d wall=%6.2fs  %12.0f network-cycles/s\n",
                threads, t.wall_seconds,
                static_cast<double>(network_cycles) / t.wall_seconds);
    if (threads == 1) {
      serial_results = results;
    } else {
      for (std::size_t i = 0; i < results.size(); ++i) {
        deterministic = deterministic &&
                        results[i].accepted_ppc ==
                            serial_results[i].accepted_ppc &&
                        results[i].avg_latency ==
                            serial_results[i].avg_latency;
      }
      std::printf("  determinism vs threads=1: %s\n",
                  deterministic ? "bitwise-identical" : "MISMATCH");
    }
  }
  if (timings.size() == 2) {
    std::printf("  parallel speedup: %.2fx on %d threads\n",
                timings[0].wall_seconds / timings[1].wall_seconds,
                timings[1].threads);
  }

  // Crash-isolated subprocess pool (isolate=process): same batch, same
  // determinism contract, across a process boundary. The throughput
  // ratio vs the in-process pool is the cost of isolation — the
  // trajectory gate (scripts/bench_trajectory.py) tracks it as the
  // "sweep_process" arm.
  {
    ExecPolicy policy;
    policy.num_workers = max_threads;
    SweepCoordinator coordinator(policy);
    const auto start = std::chrono::steady_clock::now();
    const SweepExecResult exec = coordinator.Run(points);
    SweepTiming t;
    t.threads = coordinator.policy().num_workers;
    t.process_isolated = true;
    t.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    if (exec.fallback_points == points.size()) {
      std::printf("  isolate=process: no worker binary; all points ran "
                  "in-process (not recorded)\n");
    } else {
      timings.push_back(t);
      for (std::size_t i = 0; i < exec.results.size(); ++i) {
        deterministic = deterministic &&
                        exec.results[i].accepted_ppc ==
                            serial_results[i].accepted_ppc &&
                        exec.results[i].avg_latency ==
                            serial_results[i].avg_latency;
      }
      std::printf("  workers=%-3d wall=%6.2fs  %12.0f network-cycles/s "
                  "(isolate=process)\n  determinism vs threads=1: %s\n",
                  t.threads, t.wall_seconds,
                  static_cast<double>(network_cycles) / t.wall_seconds,
                  deterministic ? "bitwise-identical" : "MISMATCH");
    }
  }

  // Gated service arm (pass service=1): the same batch served by an
  // in-process vixnocd daemon over its Unix socket. The first batch is
  // cold (every point computed and stored); the following per-point
  // requests are pure store hits, so their request rate isolates the
  // service-path overhead — frame encode/decode, socket round-trip, store
  // probe — with zero simulation in it. The trajectory gate tracks the
  // hit rate as the "service_hits" arm.
  double service_cold_wall = 0.0;
  double service_hit_rps = 0.0;
  std::uint64_t service_hit_requests = 0;
  bool service_all_hits = false;
  if (service_arm) {
    const std::string tmp = "/tmp/vixnoc_sim_speed_service." +
                            std::to_string(static_cast<long>(::getpid()));
    std::filesystem::create_directories(tmp);
    DaemonConfig dc;
    dc.socket_path = tmp + "/vixd.sock";
    dc.store_dir = tmp + "/store";
    dc.threads = max_threads;
    SimDaemon daemon(dc);
    daemon.Start();
    {
      SimClient client(dc.socket_path, 10.0);
      auto start = std::chrono::steady_clock::now();
      client.Batch(points);
      service_cold_wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      service_all_hits = true;
      start = std::chrono::steady_clock::now();
      double warm_wall = 0.0;
      while (warm_wall < 0.5) {  // enough hit round-trips to smooth timing
        for (const NetworkSimConfig& c : points) {
          const PointReply reply = client.Point(c);
          service_all_hits = service_all_hits &&
                             reply.status == ServeStatus::kOk &&
                             reply.source == ServeSource::kStore;
          ++service_hit_requests;
        }
        warm_wall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      }
      service_hit_rps = static_cast<double>(service_hit_requests) / warm_wall;
      std::printf(
          "  service: cold batch %.2fs, %llu hit requests at %.0f req/s "
          "(%s)\n",
          service_cold_wall,
          static_cast<unsigned long long>(service_hit_requests),
          service_hit_rps,
          service_all_hits ? "all store hits" : "NOT ALL STORE HITS");
    }
    daemon.Stop();
    std::filesystem::remove_all(tmp);
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"sim_speed\",\n  \"build\": %s,\n  \"micro\": [\n",
                 bench::BuildFlagsJson().c_str());
    for (std::size_t i = 0; i < reporter.results.size(); ++i) {
      const auto& r = reporter.results[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"router_cycles_per_second\": %s, "
                   "\"ns_per_network_cycle\": %s}%s\n",
                   r.name.c_str(), Num(r.router_cycles_per_second).c_str(),
                   Num(r.real_ns_per_cycle).c_str(),
                   i + 1 < reporter.results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    if (service_arm) {
      std::fprintf(f,
                   "  \"service\": {\"points\": %zu, "
                   "\"cold_wall_seconds\": %s, \"hit_requests\": %llu, "
                   "\"hit_requests_per_second\": %s, "
                   "\"all_store_hits\": %s},\n",
                   points.size(), Num(service_cold_wall).c_str(),
                   static_cast<unsigned long long>(service_hit_requests),
                   Num(service_hit_rps).c_str(),
                   service_all_hits ? "true" : "false");
    }
    std::fprintf(f,
                 "  \"sweep\": {\n"
                 "    \"points\": %zu,\n"
                 "    \"network_cycles\": %llu,\n"
                 "    \"deterministic_across_threads\": %s,\n"
                 "    \"runs\": [\n",
                 points.size(),
                 static_cast<unsigned long long>(network_cycles),
                 deterministic ? "true" : "false");
    for (std::size_t i = 0; i < timings.size(); ++i) {
      std::fprintf(
          f,
          "      {\"threads\": %d, \"isolate\": \"%s\", "
          "\"wall_seconds\": %s, "
          "\"network_cycles_per_second\": %s}%s\n",
          timings[i].threads,
          timings[i].process_isolated ? "process" : "thread",
          Num(timings[i].wall_seconds).c_str(),
          Num(static_cast<double>(network_cycles) / timings[i].wall_seconds)
              .c_str(),
          i + 1 < timings.size() ? "," : "");
    }
    std::fprintf(f, "    ],\n    \"results\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const NetworkSimConfig& c = points[i];
      const NetworkSimResult& r = serial_results[i];  // threads=1 always ran
      std::fprintf(f,
                   "      {\"scheme\": \"%s\", \"injection_rate\": %s, "
                   "\"accepted_ppc\": %s, \"avg_latency\": %s}%s\n",
                   ToString(c.scheme).c_str(), Num(c.injection_rate).c_str(),
                   Num(r.accepted_ppc).c_str(), Num(r.avg_latency).c_str(),
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  benchmark::Shutdown();
  return 0;
}
