// Reproduces Figure 10: comparison against Packet Chaining (SameInput /
// anyVC) on an 8x8 mesh with uniform random single-flit packets at maximum
// injection rate.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/network_sim.hpp"

using namespace vixnoc;

int main() {
  bench::Banner("Figure 10",
                "Packet Chaining vs VIX (single-flit packets, max injection)");

  const AllocScheme schemes[] = {
      AllocScheme::kInputFirst, AllocScheme::kWavefront,
      AllocScheme::kAugmentingPath, AllocScheme::kPacketChaining,
      AllocScheme::kVix, AllocScheme::kVixIdeal};

  TablePrinter table({"Scheme", "throughput [pkt/cycle/node]",
                      "flits/cycle", "gain over IF"});
  double base = 0.0;
  double tput[8] = {};
  int i = 0;
  for (AllocScheme scheme : schemes) {
    NetworkSimConfig c;
    c.scheme = scheme;
    c.packet_size = 1;  // single-flit packets favour chaining (paper §4.4)
    c.injection_rate = 1.0;  // maximum injection rate
    c.warmup = 5'000;
    c.measure = 20'000;
    c.drain = 1'000;
    const auto r = RunNetworkSim(c);
    tput[i] = r.accepted_ppc;
    if (scheme == AllocScheme::kInputFirst) base = r.accepted_ppc;
    table.AddRow({ToString(scheme), TablePrinter::Fmt(r.accepted_ppc, 4),
                  TablePrinter::Fmt(r.accepted_fpc, 1),
                  TablePrinter::Pct(bench::PctGain(r.accepted_ppc, base))});
    ++i;
  }
  table.Print();

  bench::Claim("PC throughput gain over IF (paper: +9%)", 0.09,
               bench::PctGain(tput[3], base));
  bench::Claim("VIX throughput gain over IF (paper: +16%)", 0.16,
               bench::PctGain(tput[4], base));
  bench::Note("the paper's conclusion: exposing more non-conflicting "
              "requests (VIX) beats eliminating requests via chaining (PC) "
              "for separable allocators.");
  return 0;
}
