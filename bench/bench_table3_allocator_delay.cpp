// Reproduces Table 3: delay of the switch-allocation schemes (separable,
// wavefront, augmenting path) for the radix-5 mesh router.
#include <cstdio>

#include "bench_util.hpp"
#include "timing/delay_model.hpp"

using namespace vixnoc;

int main() {
  bench::Banner("Table 3", "Delay of different switch allocation schemes");

  constexpr int kRadix = 5, kVcs = 6;
  const double separable = timing::SaDelayPs(kRadix, kVcs, 1);
  const double vix = timing::SaDelayPs(kRadix, kVcs, 2);
  const double wavefront = timing::WavefrontDelayPs(kRadix, kVcs);
  const double ap = timing::AugmentingPathDelayPs(kRadix, kVcs);
  const double cycle = timing::RouterCyclePs(kRadix, kVcs, 1);

  TablePrinter table({"Scheme", "Delay", "Feasible in router cycle?",
                      "paper"});
  auto feas = [&](double d) {
    return timing::AllocatorFeasible(d, kRadix, kVcs) ? "yes" : "no";
  };
  table.AddRow({"Separable (IF)", TablePrinter::Fmt(separable, 0) + " ps",
                feas(separable), "280 ps"});
  table.AddRow({"Separable + VIX", TablePrinter::Fmt(vix, 0) + " ps",
                feas(vix), "290 ps (Table 1)"});
  table.AddRow({"Wavefront", TablePrinter::Fmt(wavefront, 0) + " ps",
                feas(wavefront), "390 ps"});
  table.AddRow({"Augmented Path", TablePrinter::Fmt(ap, 0) + " ps", feas(ap),
                "Infeasible"});
  table.Print();

  bench::Claim("Wavefront delay vs separable (+39%)", 1.39,
               wavefront / separable);
  bench::Claim("VIX allocation delay overhead (x)", 290.0 / 280.0,
               vix / separable);
  std::printf("  router cycle time (VA-limited): %.0f ps\n", cycle);
  bench::Note("AP needs up to P sequential augmentation phases -> far beyond "
              "a cycle; the paper calls it infeasible for NoC routers.");
  return 0;
}
