// Extension: does VIX's advantage survive bursty traffic?
//
// The paper evaluates smooth Bernoulli injection. Real cache-miss traffic
// is bursty; this bench repeats the Fig-8 high-load comparison under an
// on-off Markov process at the same average rates.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/network_sim.hpp"

using namespace vixnoc;

namespace {

NetworkSimResult Run(AllocScheme scheme, double rate, bool bursty) {
  NetworkSimConfig c;
  c.scheme = scheme;
  c.injection_rate = rate;
  c.bursty = bursty;
  c.burst_on_rate = 0.5;
  c.mean_burst_cycles = 32.0;
  c.warmup = 5'000;
  c.measure = 15'000;
  c.drain = 2'000;
  return RunNetworkSim(c);
}

}  // namespace

int main() {
  bench::Banner("Extension",
                "VIX under bursty (on-off, mean burst 32 cycles) vs smooth "
                "Bernoulli injection, mesh");

  TablePrinter table({"process", "rate", "IF accepted", "VIX accepted",
                      "VIX gain", "IF latency", "VIX latency"});
  double gain_smooth = 0.0, gain_bursty = 0.0;
  for (bool bursty : {false, true}) {
    for (double rate : {0.06, 0.10, 0.12}) {
      const auto base = Run(AllocScheme::kInputFirst, rate, bursty);
      const auto vix = Run(AllocScheme::kVix, rate, bursty);
      const double gain = bench::PctGain(vix.accepted_ppc,
                                         base.accepted_ppc);
      if (rate == 0.12) (bursty ? gain_bursty : gain_smooth) = gain;
      table.AddRow({bursty ? "on-off" : "bernoulli",
                    TablePrinter::Fmt(rate, 2),
                    TablePrinter::Fmt(base.accepted_ppc, 4),
                    TablePrinter::Fmt(vix.accepted_ppc, 4),
                    TablePrinter::Pct(gain),
                    TablePrinter::Fmt(base.avg_latency, 1),
                    TablePrinter::Fmt(vix.avg_latency, 1)});
    }
  }
  table.Print();

  bench::Claim("VIX gain at 0.12, smooth", 0.153, gain_smooth);
  bench::Claim("VIX gain at 0.12, bursty", 0.153, gain_bursty);
  bench::Note("bursts push routers into the contended regime sooner, so "
              "VIX's matching advantage appears at lower average rates; "
              "the headline gain is robust to the injection process.");
  return 0;
}
