// Extension: virtual-input conflict telemetry across VC-assignment policies.
//
// The VIX crossbar only pays off when the two requests competing at an input
// port sit in *different* virtual inputs AND want *different* outputs; two
// virtual inputs aimed at one output is a conflict no crossbar can resolve,
// and whether that happens is decided one hop upstream by the VC-assignment
// policy (paper §2.3). The telemetry subsystem classifies every
// multi-request port-cycle, so this bench can compare, per injection rate:
//
//   * VIX with the paper's dimension-steering policy,
//   * VIX with uniform-random VC assignment (control: steering disabled),
//   * the baseline IF allocator (no virtual inputs; its conflicts are all
//     head-of-line serialization).
//
// Expected shape: at high load the steered policy shows a markedly lower
// same-output conflict rate than random assignment — the policy, not the
// crossbar, is what converts multi-request cycles into VIX wins.
//
// trace=PATH additionally samples a packet event trace (inject / vc_alloc /
// sa_grant / eject) on the highest-load steered point and writes it as
// JSONL; scripts/tier1.sh validates the schema.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "sweep_util.hpp"

using namespace vixnoc;

namespace {

NetworkSimConfig Point(AllocScheme scheme, VcAssignPolicy policy,
                       double rate) {
  NetworkSimConfig c;
  c.scheme = scheme;
  c.vc_policy = policy;
  c.injection_rate = rate;
  c.warmup = 3'000;
  c.measure = 10'000;
  c.drain = 2'000;
  c.telemetry.enabled = true;
  c.telemetry.window_cycles = 512;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("Extension",
                "Virtual-input conflict telemetry: steered vs random VC "
                "assignment, 8x8 mesh, uniform random");
  ArgMap args = ArgMap::Parse(argc, argv);
  bench::SweepHarness sweep(
      args, "ext_telemetry", "bench_results.json",
      "  trace=PATH packet event trace (JSONL) from the highest-load "
      "steered point\n");
  const std::string trace_path = args.GetString("trace", "");
  args.CheckAllConsumed();

  const double rates[] = {0.03, 0.06, 0.09, 0.11};
  struct Arm {
    const char* name;
    AllocScheme scheme;
    VcAssignPolicy policy;
  };
  const Arm arms[] = {
      {"VIX steered", AllocScheme::kVix, VcAssignPolicy::kVixDimension},
      {"VIX random", AllocScheme::kVix, VcAssignPolicy::kRandomFree},
      {"IF", AllocScheme::kInputFirst, VcAssignPolicy::kMaxCredits},
  };

  std::vector<NetworkSimConfig> points;
  for (const Arm& arm : arms) {
    for (double rate : rates) {
      NetworkSimConfig c = Point(arm.scheme, arm.policy, rate);
      if (!trace_path.empty() && arm.policy == VcAssignPolicy::kVixDimension &&
          rate == rates[std::size(rates) - 1]) {
        c.telemetry.trace_sample_period = 16;
      }
      points.push_back(c);
    }
  }
  const std::vector<NetworkSimResult> results = sweep.Run(points);

  TablePrinter table({"config", "rate", "accepted", "avg lat",
                      "multi-req cyc", "vix-win rate", "same-out rate",
                      "xbar util"});
  for (std::size_t a = 0; a < std::size(arms); ++a) {
    for (std::size_t r = 0; r < std::size(rates); ++r) {
      const NetworkSimResult& res = results[a * std::size(rates) + r];
      const TelemetrySummary& t = res.telemetry;
      table.AddRow({arms[a].name, TablePrinter::Fmt(rates[r], 2),
                    TablePrinter::Fmt(res.accepted_ppc, 4),
                    TablePrinter::Fmt(res.avg_latency, 1),
                    std::to_string(t.port_multi_request_cycles),
                    TablePrinter::Fmt(t.distinct_output_conflict_rate, 3),
                    TablePrinter::Fmt(t.same_output_conflict_rate, 3),
                    TablePrinter::Fmt(t.crossbar_utilization, 3)});
    }
  }
  table.Print();

  // Headline comparison at the highest load point.
  const std::size_t hi = std::size(rates) - 1;
  const TelemetrySummary& steered = results[0 * std::size(rates) + hi].telemetry;
  const TelemetrySummary& random_arm =
      results[1 * std::size(rates) + hi].telemetry;
  std::printf(
      "\n  same-output virtual-input conflict rate @ rate=%.2f: "
      "steered %.4f vs random %.4f (%s)\n",
      rates[hi], steered.same_output_conflict_rate,
      random_arm.same_output_conflict_rate,
      steered.same_output_conflict_rate < random_arm.same_output_conflict_rate
          ? "steering wins"
          : "UNEXPECTED: steering did not reduce same-output conflicts");
  bench::Claim("steered same-output conflict rate / random (< 1)", 1.0,
               random_arm.same_output_conflict_rate > 0.0
                   ? steered.same_output_conflict_rate /
                         random_arm.same_output_conflict_rate
                   : 0.0);
  bench::Note("the IF arm has one virtual input per port, so its vin "
              "conflict counters are structurally zero and its multi-request "
              "cycles are pure head-of-line serialization; compare its "
              "crossbar utilization column against the VIX arms instead.");

  if (!trace_path.empty()) {
    const NetworkSimResult& traced = results[0 * std::size(rates) + hi];
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    for (const PacketTraceEvent& ev : traced.telemetry.trace) {
      WriteTraceEventJson(f, ev);
    }
    std::fclose(f);
    std::printf("wrote %zu trace events to %s\n",
                traced.telemetry.trace.size(), trace_path.c_str());
  }

  return sweep.Finish();
}
