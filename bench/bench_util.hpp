// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench prints (a) the experiment's configuration, (b) a table in the
// shape of the paper's table/figure, and (c) a paper-vs-measured summary of
// the headline claim(s) it reproduces. EXPERIMENTS.md archives the output.
#pragma once

#include <cstdio>
#include <string>

#include "common/table.hpp"
#include "common/types.hpp"

namespace vixnoc::bench {

inline void Banner(const std::string& experiment, const std::string& what) {
  std::printf("\n=================================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), what.c_str());
  std::printf("=================================================================\n");
}

inline void Claim(const std::string& description, double paper,
                  double measured, const std::string& unit = "") {
  std::printf("  claim: %-52s paper: %8.3f%s  measured: %8.3f%s\n",
              description.c_str(), paper, unit.c_str(), measured,
              unit.c_str());
}

inline void Note(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
}

inline double PctGain(double a, double b) { return a / b - 1.0; }

}  // namespace vixnoc::bench
