// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench prints (a) the experiment's configuration, (b) a table in the
// shape of the paper's table/figure, and (c) a paper-vs-measured summary of
// the headline claim(s) it reproduces. EXPERIMENTS.md archives the output.
//
// Also hosts the one JSON vocabulary every bench shares: Num (finite-or-
// null numbers), EscapeJson, and BuildFlagsJson — a provenance block
// recording whether the binary was built with NDEBUG/optimization, so a
// results file can never silently mix debug-build numbers into the
// performance trajectory (scripts/bench_trajectory.py refuses them).
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

#include "common/table.hpp"
#include "common/types.hpp"

namespace vixnoc::bench {

inline void Banner(const std::string& experiment, const std::string& what) {
  std::printf("\n=================================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), what.c_str());
  std::printf("=================================================================\n");
}

inline void Claim(const std::string& description, double paper,
                  double measured, const std::string& unit = "") {
  std::printf("  claim: %-52s paper: %8.3f%s  measured: %8.3f%s\n",
              description.c_str(), paper, unit.c_str(), measured,
              unit.c_str());
}

inline void Note(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
}

inline double PctGain(double a, double b) { return a / b - 1.0; }

/// JSON has no NaN/Inf; non-finite metrics (e.g. latency with zero
/// delivered packets) become null.
inline std::string Num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

/// Minimal JSON string escape (quotes, backslashes, control characters).
inline std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// True when the binary was compiled with NDEBUG (asserts compiled out) —
/// the precondition for comparable performance numbers.
inline constexpr bool BuiltWithNdebug() {
#ifdef NDEBUG
  return true;
#else
  return false;
#endif
}

/// Build-provenance JSON object: `{"ndebug": ..., "compiler": "..."}`.
inline std::string BuildFlagsJson() {
  std::string compiler =
#if defined(__clang__)
      "clang " __clang_version__;
#elif defined(__GNUC__)
      "gcc " + std::to_string(__GNUC__) + "." +
      std::to_string(__GNUC_MINOR__) + "." +
      std::to_string(__GNUC_PATCHLEVEL__);
#else
      "unknown";
#endif
  return std::string("{\"ndebug\": ") +
         (BuiltWithNdebug() ? "true" : "false") + ", \"compiler\": \"" +
         EscapeJson(compiler) + "\"}";
}

/// Loud stderr warning when a bench binary runs without NDEBUG; such
/// numbers are not comparable to the committed trajectory.
inline void WarnIfDebugBuild(const std::string& bench_name) {
  if (!BuiltWithNdebug()) {
    std::fprintf(stderr,
                 "WARNING: bench_%s was built without NDEBUG (debug "
                 "asserts on); performance numbers are not comparable to "
                 "the committed trajectory\n",
                 bench_name.c_str());
  }
}

}  // namespace vixnoc::bench
