// Ablation: fine-grained virtual-input sweep (extends Fig 12 / §4.6).
//
// The paper evaluates 1 (baseline), 2 (practical VIX), and v (ideal)
// virtual inputs; this bench fills in the intermediate point (1:3 for a
// 6-VC router) and shows the diminishing returns that justify stopping at
// two — alongside the crossbar delay each point costs (Table 1 model).
// The four sweep points run in parallel on a SweepRunner (threads=N).
#include <cstdio>

#include "bench_util.hpp"
#include "sweep_util.hpp"
#include "timing/delay_model.hpp"

using namespace vixnoc;

int main(int argc, char** argv) {
  bench::Banner("Ablation",
                "Virtual inputs per port: throughput vs crossbar cost "
                "(mesh, 6 VCs)");
  bench::SweepHarness sweep(argc, argv, "ablation_virtual_inputs");

  const int ks[] = {1, 2, 3, 6};
  std::vector<NetworkSimConfig> points;
  for (int k : ks) {
    NetworkSimConfig c;
    c.scheme = k == 1 ? AllocScheme::kInputFirst : AllocScheme::kVix;
    c.vix_virtual_inputs = k;
    c.injection_rate = c.MaxInjectionRate();
    c.warmup = 4'000;
    c.measure = 12'000;
    c.drain = 1'000;
    points.push_back(c);
  }
  const std::vector<NetworkSimResult> results = sweep.Run(points);

  TablePrinter table({"virtual inputs", "xbar size", "xbar delay [ps]",
                      "throughput @sat", "gain over k=1",
                      "xbar delay vs cycle"});
  double base = 0.0, k2_gain = 0.0, k6_gain = 0.0;
  for (std::size_t i = 0; i < std::size(ks); ++i) {
    const int k = ks[i];
    const double tput = results[i].accepted_ppc;
    if (k == 1) base = tput;
    if (k == 2) k2_gain = bench::PctGain(tput, base);
    if (k == 6) k6_gain = bench::PctGain(tput, base);

    const double xbar = timing::XbarDelayPs(5 * k, 5);
    const double cycle = timing::RouterCyclePs(5, 6, 1);
    char size[16];
    std::snprintf(size, sizeof size, "%d x 5", 5 * k);
    table.AddRow({TablePrinter::Fmt(std::int64_t{k}), size,
                  TablePrinter::Fmt(xbar, 0), TablePrinter::Fmt(tput, 4),
                  TablePrinter::Pct(bench::PctGain(tput, base)),
                  TablePrinter::Fmt(xbar / cycle, 2)});
  }
  table.Print();

  bench::Claim("k=2 captures most of the k=6 (ideal) gain", 1.0,
               k6_gain > 0 ? k2_gain / k6_gain : 0.0);
  bench::Note("two virtual inputs buy nearly all the throughput while the "
              "crossbar still fits comfortably in the cycle; the k=6 "
              "crossbar (30x5) would dominate the critical path — the "
              "paper's rationale for 1:2 VIX (§1, §4.6).");
  return sweep.Finish();
}
