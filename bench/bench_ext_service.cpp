// Extension: what does simulation-as-a-service cost, and what does it buy?
//
// Spins up an in-process vixnocd daemon (Unix socket + content-addressed
// result store + SweepRunner pool) and measures the three properties the
// service layer claims:
//
//   1. cold batch    — a Fig-8-shaped sweep computed through the daemon;
//                      the baseline everything below is compared against;
//   2. warm hits     — the same points re-requested one by one: pure
//                      store hits, so the request rate is the service
//                      overhead (frame codec + socket + store probe) with
//                      zero simulation in it;
//   3. single-flight — N concurrent clients ask for the SAME missing
//                      point while the computation is artificially held
//                      open; the daemon must simulate it exactly once and
//                      coalesce everyone else onto that result.
//
// Flags: threads=N   daemon compute pool (default 0 = auto)
//        clients=N   concurrent clients for the single-flight demo
//                    (default 8)
//        delay_ms=MS artificial compute hold for the single-flight demo
//                    (default 300; must exceed client connect+request skew)
//        json=PATH   machine-readable results (default bench_results.json)
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "server/client.hpp"
#include "server/daemon.hpp"
#include "sim/network_sim.hpp"

using namespace vixnoc;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  ArgMap args = ArgMap::Parse(argc, argv);
  if (args.GetBool("help", false)) {
    std::printf(
        "usage: bench_ext_service [threads=N] [clients=N] [delay_ms=MS] "
        "[json=PATH]\n");
    return 0;
  }
  const int threads = static_cast<int>(args.GetInt("threads", 0));
  const int clients = static_cast<int>(args.GetInt("clients", 8));
  const int delay_ms = static_cast<int>(args.GetInt("delay_ms", 300));
  const std::string json_path = args.GetString("json", "bench_results.json");
  args.CheckAllConsumed();
  bench::WarnIfDebugBuild("ext_service");

  bench::Banner("ext_service",
                "simulation-as-a-service: store-hit overhead and "
                "single-flight coalescing through a live vixnocd");

  const std::string tmp = "/tmp/vixnoc_bench_service." +
                          std::to_string(static_cast<long>(::getpid()));
  std::filesystem::create_directories(tmp);

  // Fig-8-shaped batch: 4 schemes x 2 rates, short windows.
  std::vector<NetworkSimConfig> points;
  for (AllocScheme scheme :
       {AllocScheme::kInputFirst, AllocScheme::kWavefront,
        AllocScheme::kAugmentingPath, AllocScheme::kVix}) {
    for (double rate : {0.08, 0.12}) {
      NetworkSimConfig c;
      c.scheme = scheme;
      c.injection_rate = rate;
      c.warmup = 2'000;
      c.measure = 6'000;
      c.drain = 1'000;
      points.push_back(c);
    }
  }

  // --- Phases 1+2: cold batch, then warm per-point store hits. ---
  double cold_wall = 0.0, warm_wall = 0.0;
  std::uint64_t hit_requests = 0;
  bool all_hits = true;
  {
    DaemonConfig dc;
    dc.socket_path = tmp + "/vixd.sock";
    dc.store_dir = tmp + "/store";
    dc.threads = threads;
    SimDaemon daemon(dc);
    daemon.Start();
    SimClient client(dc.socket_path, 10.0);

    auto start = std::chrono::steady_clock::now();
    const std::vector<PointReply> cold = client.Batch(points);
    cold_wall = Seconds(start);
    for (const PointReply& r : cold) {
      if (r.status != ServeStatus::kOk) {
        std::fprintf(stderr, "cold point failed: %s\n", r.message.c_str());
        return 1;
      }
    }
    std::printf("cold batch:  %zu points in %.2fs (%.1f points/s)\n",
                points.size(), cold_wall,
                static_cast<double>(points.size()) / cold_wall);

    start = std::chrono::steady_clock::now();
    while ((warm_wall = Seconds(start)) < 0.5) {
      for (const NetworkSimConfig& c : points) {
        const PointReply r = client.Point(c);
        all_hits = all_hits && r.status == ServeStatus::kOk &&
                   r.source == ServeSource::kStore;
        ++hit_requests;
      }
    }
    std::printf("warm hits:   %llu requests in %.2fs (%.0f req/s, %s)\n",
                static_cast<unsigned long long>(hit_requests), warm_wall,
                static_cast<double>(hit_requests) / warm_wall,
                all_hits ? "all served from store" : "NOT ALL FROM STORE");
    daemon.Stop();
  }
  const double hit_rps = static_cast<double>(hit_requests) / warm_wall;
  const double cold_seconds_per_point =
      cold_wall / static_cast<double>(points.size());
  bench::Note("a warm store hit costs " +
              std::to_string(1.0 / hit_rps * 1e3) +
              " ms vs " + std::to_string(cold_seconds_per_point * 1e3) +
              " ms to simulate the point (" +
              std::to_string(cold_seconds_per_point * hit_rps) +
              "x cheaper)");

  // --- Phase 3: single-flight. N clients, one missing point, the
  // completion path held open for delay_ms so every client arrives while
  // the computation is in flight. ---
  std::uint64_t sf_computed = 0, sf_coalesced = 0, sf_store = 0;
  {
    DaemonConfig dc;
    dc.socket_path = tmp + "/vixd_sf.sock";
    dc.store_dir = tmp + "/store_sf";
    dc.threads = threads;
    dc.test_compute_delay_ms = delay_ms;
    SimDaemon daemon(dc);
    daemon.Start();

    NetworkSimConfig missing;
    missing.scheme = AllocScheme::kVix;
    missing.injection_rate = 0.1;
    missing.warmup = 500;
    missing.measure = 1'500;
    missing.drain = 500;

    std::vector<std::thread> pool;
    std::vector<ServeSource> sources(static_cast<std::size_t>(clients));
    for (int i = 0; i < clients; ++i) {
      pool.emplace_back([&, i] {
        SimClient c(dc.socket_path, 10.0);
        const PointReply r = c.PointWithRetry(missing);
        sources[static_cast<std::size_t>(i)] =
            r.status == ServeStatus::kOk ? r.source : ServeSource::kComputed;
      });
    }
    for (std::thread& t : pool) t.join();
    const DaemonStats s = daemon.stats();
    sf_computed = s.computed_points;
    sf_coalesced = s.coalesced_points;
    sf_store = s.store_hits;
    std::printf(
        "single-flight: %d clients, 1 missing point -> %llu simulated, "
        "%llu coalesced, %llu store hits\n",
        clients, static_cast<unsigned long long>(sf_computed),
        static_cast<unsigned long long>(sf_coalesced),
        static_cast<unsigned long long>(sf_store));
    daemon.Stop();
  }
  bench::Claim("simulations run for N concurrent identical requests", 1.0,
               static_cast<double>(sf_computed));

  int rc = 0;
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      rc = 1;
    } else {
      std::fprintf(
          f,
          "{\n  \"bench\": \"ext_service\",\n  \"build\": %s,\n"
          "  \"points\": %zu,\n  \"cold_wall_seconds\": %s,\n"
          "  \"hit_requests\": %llu,\n  \"hit_requests_per_second\": %s,\n"
          "  \"all_store_hits\": %s,\n"
          "  \"single_flight\": {\"clients\": %d, \"computed\": %llu, "
          "\"coalesced\": %llu, \"store_hits\": %llu}\n}\n",
          bench::BuildFlagsJson().c_str(), points.size(),
          bench::Num(cold_wall).c_str(),
          static_cast<unsigned long long>(hit_requests),
          bench::Num(hit_rps).c_str(), all_hits ? "true" : "false", clients,
          static_cast<unsigned long long>(sf_computed),
          static_cast<unsigned long long>(sf_coalesced),
          static_cast<unsigned long long>(sf_store));
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    }
  }
  std::filesystem::remove_all(tmp);
  return rc;
}
