// Flattened butterfly (Kim, Balfour & Dally [11]): a cols x rows grid of
// routers where every router links directly to every other router in its
// row and in its column. Port numbering:
//   ports [0, cols-1)                    : X links, one per other column
//   ports [cols-1, cols-1 + rows-1)     : Y links, one per other row
//   ports [cols-1 + rows-1, +conc)      : local ports
// Dimension-order routing over this wiring (at most one X hop, then at
// most one Y hop) lives in routing/dor.cpp.
#include <memory>

#include "common/check.hpp"
#include "topology/topology.hpp"

namespace vixnoc {

namespace {

class FbflyTopology final : public Topology {
 public:
  FbflyTopology(int cols, int rows, int concentration)
      : cols_(cols), rows_(rows), conc_(concentration) {
    VIXNOC_CHECK(cols >= 2 && rows >= 2);
    VIXNOC_CHECK(concentration >= 1);
  }

  TopologyKind Kind() const override { return TopologyKind::kFBfly; }
  int NumRouters() const override { return cols_ * rows_; }
  int NumNodes() const override { return cols_ * rows_ * conc_; }
  int Radix() const override { return (cols_ - 1) + (rows_ - 1) + conc_; }

  int Cols() const override { return cols_; }
  int Rows() const override { return rows_; }

  int NumXPorts() const { return cols_ - 1; }
  int NumYPorts() const { return rows_ - 1; }
  PortId FirstYPort() const { return cols_ - 1; }
  PortId FirstLocalPort() const { return (cols_ - 1) + (rows_ - 1); }

  int ColOf(RouterId r) const { return r % cols_; }
  int RowOf(RouterId r) const { return r / cols_; }
  RouterId RouterAt(int col, int row) const { return row * cols_ + col; }

  /// X port at a router in column `from` leading to column `to` (`to` !=
  /// `from`): ports are ordered by destination column, skipping self.
  PortId XPortTo(int from, int to) const {
    VIXNOC_DCHECK(to != from);
    return to < from ? to : to - 1;
  }
  /// Destination column of X port `p` at a router in column `from`.
  int XDestOf(int from, PortId p) const { return p < from ? p : p + 1; }

  PortId YPortTo(int from, int to) const {
    VIXNOC_DCHECK(to != from);
    return FirstYPort() + (to < from ? to : to - 1);
  }
  int YDestOf(int from, PortId p) const {
    const int i = p - FirstYPort();
    return i < from ? i : i + 1;
  }

  RouterId RouterOfNode(NodeId node) const override {
    VIXNOC_CHECK(node >= 0 && node < NumNodes());
    return static_cast<RouterId>(node / conc_);
  }
  int LocalIndexOfNode(NodeId node) const { return node % conc_; }
  PortId InjectPortOfNode(NodeId node) const override {
    return FirstLocalPort() + LocalIndexOfNode(node);
  }
  PortId EjectPortOfNode(NodeId node) const override {
    return FirstLocalPort() + LocalIndexOfNode(node);
  }

  std::vector<OutputLinkInfo> LinksFor(RouterId router) const override {
    const int col = ColOf(router);
    const int row = RowOf(router);
    std::vector<OutputLinkInfo> links(Radix());
    for (int c = 0; c < cols_; ++c) {
      if (c == col) continue;
      links[XPortTo(col, c)] = {RouterAt(c, row), XPortTo(c, col),
                                kInvalidNode};
    }
    for (int r = 0; r < rows_; ++r) {
      if (r == row) continue;
      links[YPortTo(row, r)] = {RouterAt(col, r), YPortTo(r, row),
                                kInvalidNode};
    }
    for (int l = 0; l < conc_; ++l) {
      links[FirstLocalPort() + l] = {-1, kInvalidPort,
                                     static_cast<NodeId>(router * conc_ + l)};
    }
    return links;
  }

  int RouterHops(NodeId src, NodeId dst) const override {
    const RouterId a = RouterOfNode(src);
    const RouterId b = RouterOfNode(dst);
    return (ColOf(a) != ColOf(b) ? 1 : 0) + (RowOf(a) != RowOf(b) ? 1 : 0);
  }

 private:
  int cols_, rows_, conc_;
};

}  // namespace

std::unique_ptr<Topology> MakeFlattenedButterfly(int cols, int rows,
                                                 int concentration) {
  return std::make_unique<FbflyTopology>(cols, rows, concentration);
}

std::unique_ptr<Topology> MakeTopology64(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kMesh:
      return MakeMesh(8, 8, 1);  // radix 5
    case TopologyKind::kCMesh:
      return MakeMesh(4, 4, 4);  // radix 8
    case TopologyKind::kFBfly:
      return MakeFlattenedButterfly(4, 4, 4);  // radix 10
    case TopologyKind::kTorus:
      return MakeTorus(8, 8, 1);  // radix 5, dateline VCs
  }
  VIXNOC_CHECK(false);
  return nullptr;
}

}  // namespace vixnoc
