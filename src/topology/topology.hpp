// Topology abstraction: the wiring of routers, links, and network
// interfaces for each topology studied in the paper (mesh, concentrated
// mesh, flattened butterfly — §2.4, Table 1) plus the torus extension.
//
// Topologies carry *wiring only*. Routing policy lives in src/routing/
// (table-driven plugins built from the geometry accessors below via
// routing/registry.hpp); the router supplies the mechanism.
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "router/router.hpp"

namespace vixnoc {

/// Dimension order for mesh routing: X-first (the paper's configuration)
/// or Y-first (useful for adversarial-pattern studies; both deadlock-free).
enum class MeshRouteOrder { kXY, kYX };

class Topology {
 public:
  virtual ~Topology() = default;

  virtual TopologyKind Kind() const = 0;
  virtual int NumRouters() const = 0;
  virtual int NumNodes() const = 0;
  /// Uniform router radix (physical input/output ports).
  virtual int Radix() const = 0;

  /// The router a node's NI attaches to, and the injection (input) /
  /// ejection (output) port indices it uses there.
  virtual RouterId RouterOfNode(NodeId node) const = 0;
  virtual PortId InjectPortOfNode(NodeId node) const = 0;
  virtual PortId EjectPortOfNode(NodeId node) const = 0;

  /// Output-link table for a router: where each of its output ports goes.
  virtual std::vector<OutputLinkInfo> LinksFor(RouterId router) const = 0;

  /// Grid shape: router r sits at column r % Cols(), row r / Cols().
  /// Routing plugins build their per-node route tables from these.
  virtual int Cols() const = 0;
  virtual int Rows() const = 0;

  /// Dimension priority DOR-family plugins use on this topology (only
  /// meshes ever report kYX).
  virtual MeshRouteOrder MeshOrder() const { return MeshRouteOrder::kXY; }

  /// Router-hop distance between two nodes' routers (0 when co-located);
  /// used by latency sanity tests and analysis.
  virtual int RouterHops(NodeId src, NodeId dst) const = 0;
};

/// Mesh / concentrated mesh of `cols` x `rows` routers with `concentration`
/// nodes per router. concentration == 1 gives the paper's 8x8 mesh
/// (radix 5); concentration == 4 on a 4x4 grid gives the CMesh (radix 8).
std::unique_ptr<Topology> MakeMesh(int cols, int rows, int concentration = 1,
                                   MeshRouteOrder order = MeshRouteOrder::kXY);

/// Flattened butterfly of `cols` x `rows` fully row/column-connected
/// routers with `concentration` nodes per router. 4x4 with concentration 4
/// gives the paper's 64-node radix-10 FBfly.
std::unique_ptr<Topology> MakeFlattenedButterfly(int cols, int rows,
                                                 int concentration = 4);

/// 2D torus of `cols` x `rows` routers (>= 3 each, so wrap links are
/// distinct) with minimal dimension-order routing and dateline VC classes
/// for deadlock freedom. Routers need >= 2 VCs per message class.
std::unique_ptr<Topology> MakeTorus(int cols, int rows,
                                    int concentration = 1);

/// Paper defaults: 64-node instance of each topology kind.
std::unique_ptr<Topology> MakeTopology64(TopologyKind kind);

}  // namespace vixnoc
