// 2D torus (k-ary 2-cube) — an extension beyond the paper's three
// topologies, exercising the dateline VC-class machinery.
//
// Port numbering matches the mesh (0=East/+x, 1=West/-x, 2=North/+y,
// 3=South/-y, locals from 4), every port is wrap-connected, and routing is
// minimal dimension-order (shortest way around each ring; ties go
// East/North).
//
// Deadlock avoidance: each message class's VC partition is split into two
// dateline halves. A packet uses the lower half until it crosses the
// dimension's dateline (the wrap link between the last and first
// row/column), then the upper half; entering the Y dimension resets the
// state. This breaks the cyclic channel dependency of each ring (Dally &
// Seitz datelines), so dimension-order torus routing is deadlock-free.
#include <cstdlib>
#include <memory>

#include "common/check.hpp"
#include "topology/topology.hpp"

namespace vixnoc {

namespace {

constexpr PortId kEast = 0;
constexpr PortId kWest = 1;
constexpr PortId kNorth = 2;
constexpr PortId kSouth = 3;
constexpr PortId kFirstLocal = 4;

// Dateline state bits, one per dimension: routing is dimension-ordered so
// the bits never interact, but keeping them separate means an X crossing
// cannot leak into the Y ring's class selection.
constexpr std::uint8_t kXCrossed = 1;
constexpr std::uint8_t kYCrossed = 2;

class TorusTopology;

class TorusRouting final : public RoutingFunction {
 public:
  explicit TorusRouting(const TorusTopology* topo) : topo_(topo) {}
  PortId Route(RouterId router, NodeId dst) const override;
  PortDimension DimensionOf(PortId port) const override {
    if (port == kEast || port == kWest) return PortDimension::kX;
    if (port == kNorth || port == kSouth) return PortDimension::kY;
    return PortDimension::kLocal;
  }
  std::uint8_t NextDatelineState(RouterId router, PortId out_port,
                                 std::uint8_t state) const override;
  VcRange AllowedVcRange(PortId out_port, std::uint8_t state,
                         int vcs_per_class) const override;

 private:
  const TorusTopology* topo_;
};

class TorusTopology final : public Topology {
 public:
  TorusTopology(int cols, int rows, int concentration)
      : cols_(cols), rows_(rows), conc_(concentration), routing_(this) {
    VIXNOC_CHECK(cols >= 3 && rows >= 3);  // wrap links distinct from direct
    VIXNOC_CHECK(concentration >= 1);
  }

  TopologyKind Kind() const override { return TopologyKind::kTorus; }
  int NumRouters() const override { return cols_ * rows_; }
  int NumNodes() const override { return cols_ * rows_ * conc_; }
  int Radix() const override { return kFirstLocal + conc_; }

  int Cols() const { return cols_; }
  int Rows() const { return rows_; }
  int ColOf(RouterId r) const { return r % cols_; }
  int RowOf(RouterId r) const { return r / cols_; }
  RouterId RouterAt(int col, int row) const { return row * cols_ + col; }

  RouterId RouterOfNode(NodeId node) const override {
    VIXNOC_CHECK(node >= 0 && node < NumNodes());
    return static_cast<RouterId>(node / conc_);
  }
  int LocalIndexOfNode(NodeId node) const { return node % conc_; }
  PortId InjectPortOfNode(NodeId node) const override {
    return kFirstLocal + LocalIndexOfNode(node);
  }
  PortId EjectPortOfNode(NodeId node) const override {
    return kFirstLocal + LocalIndexOfNode(node);
  }

  std::vector<OutputLinkInfo> LinksFor(RouterId router) const override {
    const int col = ColOf(router);
    const int row = RowOf(router);
    std::vector<OutputLinkInfo> links(Radix());
    links[kEast] = {RouterAt((col + 1) % cols_, row), kWest, kInvalidNode};
    links[kWest] = {RouterAt((col + cols_ - 1) % cols_, row), kEast,
                    kInvalidNode};
    links[kNorth] = {RouterAt(col, (row + 1) % rows_), kSouth, kInvalidNode};
    links[kSouth] = {RouterAt(col, (row + rows_ - 1) % rows_), kNorth,
                     kInvalidNode};
    for (int l = 0; l < conc_; ++l) {
      links[kFirstLocal + l] = {-1, kInvalidPort,
                                static_cast<NodeId>(router * conc_ + l)};
    }
    return links;
  }

  const RoutingFunction& Routing() const override { return routing_; }

  int RouterHops(NodeId src, NodeId dst) const override {
    const RouterId a = RouterOfNode(src);
    const RouterId b = RouterOfNode(dst);
    const int dx = std::abs(ColOf(a) - ColOf(b));
    const int dy = std::abs(RowOf(a) - RowOf(b));
    return std::min(dx, cols_ - dx) + std::min(dy, rows_ - dy);
  }

 private:
  int cols_, rows_, conc_;
  TorusRouting routing_;
};

PortId TorusRouting::Route(RouterId router, NodeId dst) const {
  const RouterId dr = topo_->RouterOfNode(dst);
  const int x = topo_->ColOf(router), y = topo_->RowOf(router);
  const int dx = topo_->ColOf(dr), dy = topo_->RowOf(dr);
  const int cols = topo_->Cols(), rows = topo_->Rows();
  if (dx != x) {
    // Shortest way around the X ring. Exactly-half-way ties are split by
    // destination parity — a deterministic choice that is consistent along
    // the path (after one hop the distance is strictly minimal) yet
    // balances tie traffic across both ring directions.
    const int east_dist = (dx - x + cols) % cols;
    const int west_dist = cols - east_dist;
    if (east_dist != west_dist) return east_dist < west_dist ? kEast : kWest;
    return (dst & 1) ? kEast : kWest;
  }
  if (dy != y) {
    const int north_dist = (dy - y + rows) % rows;
    const int south_dist = rows - north_dist;
    if (north_dist != south_dist) {
      return north_dist < south_dist ? kNorth : kSouth;
    }
    return (dst & 1) ? kNorth : kSouth;
  }
  return kFirstLocal + topo_->LocalIndexOfNode(dst);
}

std::uint8_t TorusRouting::NextDatelineState(RouterId router, PortId out_port,
                                             std::uint8_t state) const {
  const int col = topo_->ColOf(router);
  const int row = topo_->RowOf(router);
  switch (out_port) {
    case kEast:
      // The East ring's dateline is the wrap link col N-1 -> 0.
      return col == topo_->Cols() - 1 ? (state | kXCrossed) : state;
    case kWest:
      // The West ring's dateline is the wrap link col 0 -> N-1.
      return col == 0 ? (state | kXCrossed) : state;
    case kNorth:
      return row == topo_->Rows() - 1 ? (state | kYCrossed) : state;
    case kSouth:
      return row == 0 ? (state | kYCrossed) : state;
    default:
      return state;  // ejection
  }
}

VcRange TorusRouting::AllowedVcRange(PortId out_port, std::uint8_t state,
                                     int vcs_per_class) const {
  if (out_port >= kFirstLocal) return VcRange{0, vcs_per_class};
  VIXNOC_CHECK(vcs_per_class >= 2);
  const std::uint8_t bit =
      DimensionOf(out_port) == PortDimension::kX ? kXCrossed : kYCrossed;
  const int half = vcs_per_class / 2;
  return (state & bit) ? VcRange{half, vcs_per_class} : VcRange{0, half};
}

}  // namespace

std::unique_ptr<Topology> MakeTorus(int cols, int rows, int concentration) {
  return std::make_unique<TorusTopology>(cols, rows, concentration);
}

}  // namespace vixnoc
