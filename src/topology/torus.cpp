// 2D torus (k-ary 2-cube) — an extension beyond the paper's three
// topologies, exercising the dateline VC-class machinery.
//
// Port numbering matches the mesh (0=East/+x, 1=West/-x, 2=North/+y,
// 3=South/-y, locals from 4) and every port is wrap-connected. Minimal
// dimension-order routing and the dateline VC classes that keep it
// deadlock-free live in routing/dor.cpp.
#include <cstdlib>
#include <memory>

#include "common/check.hpp"
#include "topology/topology.hpp"

namespace vixnoc {

namespace {

constexpr PortId kEast = 0;
constexpr PortId kWest = 1;
constexpr PortId kNorth = 2;
constexpr PortId kSouth = 3;
constexpr PortId kFirstLocal = 4;

class TorusTopology final : public Topology {
 public:
  TorusTopology(int cols, int rows, int concentration)
      : cols_(cols), rows_(rows), conc_(concentration) {
    VIXNOC_CHECK(cols >= 3 && rows >= 3);  // wrap links distinct from direct
    VIXNOC_CHECK(concentration >= 1);
  }

  TopologyKind Kind() const override { return TopologyKind::kTorus; }
  int NumRouters() const override { return cols_ * rows_; }
  int NumNodes() const override { return cols_ * rows_ * conc_; }
  int Radix() const override { return kFirstLocal + conc_; }

  int Cols() const override { return cols_; }
  int Rows() const override { return rows_; }
  int ColOf(RouterId r) const { return r % cols_; }
  int RowOf(RouterId r) const { return r / cols_; }
  RouterId RouterAt(int col, int row) const { return row * cols_ + col; }

  RouterId RouterOfNode(NodeId node) const override {
    VIXNOC_CHECK(node >= 0 && node < NumNodes());
    return static_cast<RouterId>(node / conc_);
  }
  int LocalIndexOfNode(NodeId node) const { return node % conc_; }
  PortId InjectPortOfNode(NodeId node) const override {
    return kFirstLocal + LocalIndexOfNode(node);
  }
  PortId EjectPortOfNode(NodeId node) const override {
    return kFirstLocal + LocalIndexOfNode(node);
  }

  std::vector<OutputLinkInfo> LinksFor(RouterId router) const override {
    const int col = ColOf(router);
    const int row = RowOf(router);
    std::vector<OutputLinkInfo> links(Radix());
    links[kEast] = {RouterAt((col + 1) % cols_, row), kWest, kInvalidNode};
    links[kWest] = {RouterAt((col + cols_ - 1) % cols_, row), kEast,
                    kInvalidNode};
    links[kNorth] = {RouterAt(col, (row + 1) % rows_), kSouth, kInvalidNode};
    links[kSouth] = {RouterAt(col, (row + rows_ - 1) % rows_), kNorth,
                     kInvalidNode};
    for (int l = 0; l < conc_; ++l) {
      links[kFirstLocal + l] = {-1, kInvalidPort,
                                static_cast<NodeId>(router * conc_ + l)};
    }
    return links;
  }

  int RouterHops(NodeId src, NodeId dst) const override {
    const RouterId a = RouterOfNode(src);
    const RouterId b = RouterOfNode(dst);
    const int dx = std::abs(ColOf(a) - ColOf(b));
    const int dy = std::abs(RowOf(a) - RowOf(b));
    return std::min(dx, cols_ - dx) + std::min(dy, rows_ - dy);
  }

 private:
  int cols_, rows_, conc_;
};

}  // namespace

std::unique_ptr<Topology> MakeTorus(int cols, int rows, int concentration) {
  return std::make_unique<TorusTopology>(cols, rows, concentration);
}

}  // namespace vixnoc
