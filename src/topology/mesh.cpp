// Mesh and concentrated mesh (CMesh) topologies with lookahead-friendly
// port numbering:
//   port 0 = East (+x), 1 = West (-x), 2 = North (+y), 3 = South (-y),
//   ports 4..4+concentration-1 = local ejection/injection.
// Unconnected edge ports exist (uniform radix) but are never routed to.
// Dimension-order routing over this wiring lives in routing/dor.cpp.
#include <cstdlib>
#include <memory>

#include "common/check.hpp"
#include "topology/topology.hpp"

namespace vixnoc {

namespace {

constexpr PortId kEast = 0;
constexpr PortId kWest = 1;
constexpr PortId kNorth = 2;
constexpr PortId kSouth = 3;
constexpr PortId kFirstLocal = 4;

class MeshTopology final : public Topology {
 public:
  MeshTopology(int cols, int rows, int concentration, MeshRouteOrder order)
      : cols_(cols), rows_(rows), conc_(concentration), order_(order) {
    VIXNOC_CHECK(cols >= 2 && rows >= 2);
    VIXNOC_CHECK(concentration >= 1);
  }

  TopologyKind Kind() const override {
    return conc_ == 1 ? TopologyKind::kMesh : TopologyKind::kCMesh;
  }
  int NumRouters() const override { return cols_ * rows_; }
  int NumNodes() const override { return cols_ * rows_ * conc_; }
  int Radix() const override { return kFirstLocal + conc_; }

  int Cols() const override { return cols_; }
  int Rows() const override { return rows_; }
  MeshRouteOrder MeshOrder() const override { return order_; }

  int ColOf(RouterId r) const { return r % cols_; }
  int RowOf(RouterId r) const { return r / cols_; }
  RouterId RouterAt(int col, int row) const { return row * cols_ + col; }

  RouterId RouterOfNode(NodeId node) const override {
    VIXNOC_CHECK(node >= 0 && node < NumNodes());
    return static_cast<RouterId>(node / conc_);
  }
  int LocalIndexOfNode(NodeId node) const { return node % conc_; }
  PortId InjectPortOfNode(NodeId node) const override {
    return kFirstLocal + LocalIndexOfNode(node);
  }
  PortId EjectPortOfNode(NodeId node) const override {
    return kFirstLocal + LocalIndexOfNode(node);
  }

  std::vector<OutputLinkInfo> LinksFor(RouterId router) const override {
    const int col = ColOf(router);
    const int row = RowOf(router);
    std::vector<OutputLinkInfo> links(Radix());
    if (col + 1 < cols_) {
      links[kEast] = {RouterAt(col + 1, row), kWest, kInvalidNode};
    }
    if (col > 0) {
      links[kWest] = {RouterAt(col - 1, row), kEast, kInvalidNode};
    }
    if (row + 1 < rows_) {
      links[kNorth] = {RouterAt(col, row + 1), kSouth, kInvalidNode};
    }
    if (row > 0) {
      links[kSouth] = {RouterAt(col, row - 1), kNorth, kInvalidNode};
    }
    for (int l = 0; l < conc_; ++l) {
      links[kFirstLocal + l] = {-1, kInvalidPort,
                                static_cast<NodeId>(router * conc_ + l)};
    }
    return links;
  }

  int RouterHops(NodeId src, NodeId dst) const override {
    const RouterId a = RouterOfNode(src);
    const RouterId b = RouterOfNode(dst);
    return std::abs(ColOf(a) - ColOf(b)) + std::abs(RowOf(a) - RowOf(b));
  }

 private:
  int cols_, rows_, conc_;
  MeshRouteOrder order_;
};

}  // namespace

std::unique_ptr<Topology> MakeMesh(int cols, int rows, int concentration,
                                   MeshRouteOrder order) {
  return std::make_unique<MeshTopology>(cols, rows, concentration, order);
}

}  // namespace vixnoc
