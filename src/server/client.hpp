// SimClient: one connection to a vixnocd daemon.
//
// Thin synchronous request/reply wrapper over the frame protocol
// (server/server_protocol.hpp). Every reply's container checksum and
// result key are verified against the request before it is returned — a
// daemon serving the wrong point, or bytes corrupted in transit, surface
// as SimError, never as silently wrong data. Not thread-safe: one client
// per thread (connections are cheap; the daemon handles many).
#pragma once

#include <string>
#include <vector>

#include "server/server_protocol.hpp"
#include "sim/network_sim.hpp"

namespace vixnoc {

class SimClient {
 public:
  /// Connects to the daemon at `socket_path`. With `connect_timeout_seconds`
  /// > 0 a refused/missing socket is retried until the deadline — covering
  /// the daemon's startup window. Throws SimError when no connection can
  /// be established.
  explicit SimClient(std::string socket_path,
                     double connect_timeout_seconds = 0.0);
  ~SimClient();

  SimClient(const SimClient&) = delete;
  SimClient& operator=(const SimClient&) = delete;

  const std::string& socket_path() const { return socket_path_; }

  /// One simulation point. Transport failures and a reply whose result
  /// key does not match `config` throw SimError; daemon-side outcomes
  /// (retry-after, validation errors) come back in the reply's status.
  PointReply Point(const NetworkSimConfig& config);

  /// A batch of points, answered positionally.
  std::vector<PointReply> Batch(const std::vector<NetworkSimConfig>& configs);

  DaemonStats Stats();

  /// Asks the daemon to drain and exit. Returns once the daemon has
  /// acknowledged (its actual exit completes asynchronously).
  void Shutdown();

  /// Point with retry-after handling: sleeps the daemon's hint and
  /// retries, up to `max_attempts`. The last reply (whatever its status)
  /// is returned.
  PointReply PointWithRetry(const NetworkSimConfig& config,
                            int max_attempts = 50);

 private:
  std::string Roundtrip(const std::string& payload);

  std::string socket_path_;
  int fd_ = -1;
};

}  // namespace vixnoc
