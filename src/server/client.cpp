#include "server/client.hpp"

#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

#include <pthread.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.hpp"
#include "exec/exec_protocol.hpp"

namespace vixnoc {

namespace {

int ConnectOnce(const std::string& path, std::string* error) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    *error = std::string("connect '") + path + "': " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

SimClient::SimClient(std::string socket_path, double connect_timeout_seconds)
    : socket_path_(std::move(socket_path)) {
  VIXNOC_REQUIRE(!socket_path_.empty(), "client socket path is empty");
  VIXNOC_REQUIRE(socket_path_.size() < sizeof(sockaddr_un{}.sun_path),
                 "socket path '%s' exceeds the AF_UNIX limit",
                 socket_path_.c_str());
  // A dead daemon mid-write must surface as EPIPE, not kill the client.
  sigset_t sigpipe;
  sigemptyset(&sigpipe);
  sigaddset(&sigpipe, SIGPIPE);
  pthread_sigmask(SIG_BLOCK, &sigpipe, nullptr);

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(connect_timeout_seconds));
  std::string error;
  for (;;) {
    fd_ = ConnectOnce(socket_path_, &error);
    if (fd_ >= 0) return;
    if (connect_timeout_seconds <= 0.0 ||
        std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  VIXNOC_REQUIRE(false, "%s", error.c_str());
}

SimClient::~SimClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string SimClient::Roundtrip(const std::string& payload) {
  std::string werr;
  VIXNOC_REQUIRE(WriteFrame(fd_, payload, &werr),
                 "cannot send request to '%s': %s", socket_path_.c_str(),
                 werr.c_str());
  const FrameRead fr = ReadFrame(fd_, -1.0);
  VIXNOC_REQUIRE(fr.status == FrameRead::Status::kOk,
                 "no reply from '%s': %s", socket_path_.c_str(),
                 fr.detail.empty() ? "connection closed" : fr.detail.c_str());
  return fr.payload;
}

PointReply SimClient::Point(const NetworkSimConfig& config) {
  const std::string payload = Roundtrip(EncodePointRequest(config));
  PointReply reply = DecodePointReply(payload);
  // Validation both directions: the daemon proves which point it answered.
  // (A daemon-side decode error legitimately carries key 0.)
  VIXNOC_REQUIRE(reply.status == ServeStatus::kError ||
                     reply.result_key == NetworkSimResultKey(config),
                 "daemon answered a different point (key %016llx, asked for "
                 "%016llx)",
                 static_cast<unsigned long long>(reply.result_key),
                 static_cast<unsigned long long>(NetworkSimResultKey(config)));
  return reply;
}

std::vector<PointReply> SimClient::Batch(
    const std::vector<NetworkSimConfig>& configs) {
  const std::string payload = Roundtrip(EncodeBatchRequest(configs));
  if (IsPointReply(payload)) {
    // The daemon rejected the whole frame (decode failure) with a single
    // error reply; surface its message.
    const PointReply err = DecodePointReply(payload);
    VIXNOC_REQUIRE(false, "daemon rejected batch: %s", err.message.c_str());
  }
  std::vector<PointReply> replies = DecodeBatchReply(payload);
  VIXNOC_REQUIRE(replies.size() == configs.size(),
                 "daemon answered %zu points for a %zu-point batch",
                 replies.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    VIXNOC_REQUIRE(
        replies[i].status == ServeStatus::kError ||
            replies[i].result_key == NetworkSimResultKey(configs[i]),
        "batch reply %zu answers a different point", i);
  }
  return replies;
}

DaemonStats SimClient::Stats() {
  const std::string payload = Roundtrip(EncodeStatsRequest());
  if (IsPointReply(payload)) {
    const PointReply err = DecodePointReply(payload);
    VIXNOC_REQUIRE(false, "daemon rejected stats request: %s",
                   err.message.c_str());
  }
  return DecodeStatsReply(payload);
}

void SimClient::Shutdown() {
  DecodeShutdownReply(Roundtrip(EncodeShutdownRequest()));
}

PointReply SimClient::PointWithRetry(const NetworkSimConfig& config,
                                     int max_attempts) {
  PointReply reply;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    reply = Point(config);
    if (reply.status != ServeStatus::kRetryAfter) return reply;
    const double delay =
        reply.retry_after_seconds > 0.0 ? reply.retry_after_seconds : 0.05;
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
  return reply;
}

}  // namespace vixnoc
