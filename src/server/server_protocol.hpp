// Wire protocol between vixnoc_client and the vixnocd daemon.
//
// The service speaks the same length-prefixed snapshot-container frames as
// the sweep worker protocol (exec/exec_protocol.hpp): every payload is a
// snapshot container, so magic/version/per-section checksums validate each
// frame for free, and the container's fingerprint slot authenticates the
// content in both directions. Four request kinds and their replies:
//
//   point    := section "vixd_point"    { config }            fp = result key
//   batch    := section "vixd_batch"   { count, configs... }  fp = key fold
//   stats    := section "vixd_stats"    {}                    fp = control
//   shutdown := section "vixd_shutdown" {}                    fp = control
//
//   reply(point)    := section "vixd_reply"   { status, source, retry_after,
//                                               message, key [, result] }
//   reply(batch)    := section "vixd_breply"  { count, replies... }
//   reply(stats)    := section "vixd_dstats"  { counters... }
//   reply(shutdown) := section "vixd_bye"     {}
//
// The fingerprint slot of a point request/reply is NetworkSimResultKey —
// the *result* content key (evolution fingerprint + observation knobs),
// not the bare evolution fingerprint, because the daemon dedupes and
// stores by what the client will actually receive. Clients verify the
// reply key against the config they asked about; the daemon verifies
// request payloads the same way. Configs carrying live factory callbacks
// cannot cross the socket (same rule as the worker protocol).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/network_sim.hpp"

namespace vixnoc {

/// Container fingerprint for payload-free control frames (stats/shutdown).
std::uint64_t ControlFrameFingerprint();

enum class RequestKind : std::uint8_t {
  kPoint,
  kBatch,
  kStats,
  kShutdown,
};

std::string ToString(RequestKind kind);

/// A decoded client request. configs holds one entry for kPoint, any
/// number for kBatch, none for control kinds.
struct Request {
  RequestKind kind = RequestKind::kStats;
  std::vector<NetworkSimConfig> configs;
};

std::string EncodePointRequest(const NetworkSimConfig& config);
std::string EncodeBatchRequest(const std::vector<NetworkSimConfig>& configs);
std::string EncodeStatsRequest();
std::string EncodeShutdownRequest();

/// Decodes any request frame payload, validating the container fingerprint
/// against the recomputed result key(s). Throws SimError on malformed or
/// unrecognized payloads.
Request DecodeRequest(const std::string& payload);

/// How a served point was satisfied.
enum class ServeStatus : std::uint8_t {
  kOk,          ///< result holds the point's NetworkSimResult
  kRetryAfter,  ///< daemon at capacity (or draining); retry after the hint
  kError,       ///< invalid request; message explains
};

enum class ServeSource : std::uint8_t {
  kNone,       ///< not served (retry-after / error)
  kStore,      ///< hit in the content-addressed result store
  kComputed,   ///< this request triggered the simulation
  kCoalesced,  ///< joined another request's in-flight simulation
};

std::string ToString(ServeStatus status);
std::string ToString(ServeSource source);

struct PointReply {
  ServeStatus status = ServeStatus::kError;
  ServeSource source = ServeSource::kNone;
  double retry_after_seconds = 0.0;
  std::string message;
  /// NetworkSimResultKey of the config this reply answers; clients verify
  /// it against their own recomputation.
  std::uint64_t result_key = 0;
  NetworkSimResult result;  ///< valid only when status == kOk
};

std::string EncodePointReply(const PointReply& reply);
PointReply DecodePointReply(const std::string& payload);  ///< throws SimError

std::string EncodeBatchReply(const std::vector<PointReply>& replies);
std::vector<PointReply> DecodeBatchReply(const std::string& payload);

/// Daemon-side counters served by the stats request. The store_* fields
/// mirror the underlying ResultStore's own stats.
struct DaemonStats {
  std::uint64_t requests = 0;
  std::uint64_t point_requests = 0;
  std::uint64_t batch_requests = 0;
  std::uint64_t points_served = 0;
  std::uint64_t store_hits = 0;
  std::uint64_t computed_points = 0;
  std::uint64_t coalesced_points = 0;
  std::uint64_t retry_after_replies = 0;
  std::uint64_t error_replies = 0;
  std::uint64_t inflight = 0;  ///< snapshot at reply time
  std::uint64_t connections_accepted = 0;
  std::uint64_t active_connections = 0;  ///< snapshot at reply time
  std::uint64_t store_entries_written = 0;
  std::uint64_t store_bytes_written = 0;
  std::uint64_t store_defective = 0;
  std::uint64_t store_gc_evicted = 0;
};

std::string EncodeStatsReply(const DaemonStats& stats);
DaemonStats DecodeStatsReply(const std::string& payload);  ///< throws SimError

std::string EncodeShutdownReply();
/// Throws SimError when the payload is not a shutdown acknowledgment.
void DecodeShutdownReply(const std::string& payload);

/// Is this reply payload a point reply (vs batch/stats/bye)? Lets a client
/// surface a daemon-side decode error (sent as an error PointReply) for
/// any request kind.
bool IsPointReply(const std::string& payload);

}  // namespace vixnoc
