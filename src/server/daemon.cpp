#include "server/daemon.hpp"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include <pthread.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/check.hpp"
#include "common/error.hpp"
#include "exec/exec_protocol.hpp"

namespace vixnoc {

namespace {

/// Connection and accept threads must see a dead peer as EPIPE from
/// write(), never SIGPIPE (which would kill an in-process daemon's host
/// too, e.g. a test binary).
void BlockSigpipeOnThisThread() {
  sigset_t sigpipe;
  sigemptyset(&sigpipe);
  sigaddset(&sigpipe, SIGPIPE);
  pthread_sigmask(SIG_BLOCK, &sigpipe, nullptr);
}

}  // namespace

SimDaemon::SimDaemon(DaemonConfig config) : config_(std::move(config)) {
  VIXNOC_REQUIRE(!config_.socket_path.empty(), "daemon socket path is empty");
  VIXNOC_REQUIRE(config_.socket_path.size() < sizeof(sockaddr_un{}.sun_path),
                 "socket path '%s' exceeds the AF_UNIX limit of %zu bytes",
                 config_.socket_path.c_str(),
                 sizeof(sockaddr_un{}.sun_path) - 1);
  VIXNOC_REQUIRE(config_.max_queue > 0, "max_queue must be positive");
  store_ = std::make_shared<ResultStore>(
      ResultStoreConfig{config_.store_dir, config_.store_max_bytes});
  runner_ = std::make_unique<SweepRunner>(config_.threads);
}

SimDaemon::~SimDaemon() { Stop(); }

void SimDaemon::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    VIXNOC_CHECK(!started_ && !stopped_);
    started_ = true;
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  VIXNOC_REQUIRE(listen_fd_ >= 0, "socket: %s", std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, config_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  // A stale socket file from a crashed daemon would make bind fail with
  // EADDRINUSE even though nobody is listening; remove it first. A *live*
  // daemon still loses its socket this way — running two daemons on one
  // path is an operator error this refuses to silently arbitrate only by
  // the bind that follows.
  ::unlink(config_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    VIXNOC_REQUIRE(false, "bind '%s': %s", config_.socket_path.c_str(),
                   std::strerror(err));
  }
  if (::listen(listen_fd_, 128) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
    VIXNOC_REQUIRE(false, "listen '%s': %s", config_.socket_path.c_str(),
                   std::strerror(err));
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void SimDaemon::AcceptLoop() {
  BlockSigpipeOnThisThread();
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // shutdown(listen_fd_) during Stop lands here (EINVAL/ECONNABORTED).
      return;
    }
    bool reject = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        reject = true;
      } else {
        ++counters_.connections_accepted;
        ++active_connections_;
        conn_fds_.insert(fd);
      }
    }
    if (reject) {
      ::close(fd);
      continue;
    }
    // Detached: lifetime is tracked by active_connections_, which Stop
    // waits on after shutting every connection fd down.
    std::thread([this, fd] {
      BlockSigpipeOnThisThread();
      ServeConnection(fd);
    }).detach();
  }
}

void SimDaemon::ServeConnection(int fd) {
  for (;;) {
    const FrameRead fr = ReadFrame(fd, -1.0);
    if (fr.status != FrameRead::Status::kOk) break;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.requests;
      ++busy_requests_;
    }
    std::string reply;
    bool shutdown_requested = false;
    try {
      const Request req = DecodeRequest(fr.payload);
      switch (req.kind) {
        case RequestKind::kPoint: {
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.point_requests;
          }
          reply = EncodePointReply(ServePoint(req.configs.front()));
          break;
        }
        case RequestKind::kBatch: {
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.batch_requests;
          }
          reply = EncodeBatchReply(ServeBatch(req.configs));
          break;
        }
        case RequestKind::kStats:
          reply = EncodeStatsReply(stats());
          break;
        case RequestKind::kShutdown:
          reply = EncodeShutdownReply();
          shutdown_requested = true;
          break;
      }
    } catch (const SimError& e) {
      // A malformed frame gets a structured error reply, not a dropped
      // connection: the client learns *why*.
      PointReply err;
      err.status = ServeStatus::kError;
      err.message = e.what();
      reply = EncodePointReply(err);
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.error_replies;
    }
    std::string werr;
    const bool wrote = WriteFrame(fd, reply, &werr);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_requests_;
      cv_.notify_all();
    }
    // The acknowledgment is written *before* the stop flag is raised, so
    // the requesting client always hears back.
    if (shutdown_requested) RequestStop();
    if (!wrote) break;
  }
  // Deregister before close: Stop's fd-shutdown pass holds the lock, so
  // once the fd leaves the set it can never shutdown() a recycled
  // descriptor number.
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.erase(fd);
    --active_connections_;
    cv_.notify_all();
  }
  ::close(fd);
}

SimDaemon::ComputeHandle SimDaemon::BeginPoint(const NetworkSimConfig& config,
                                               PointReply* out) {
  // Store probe first — hits never touch the pool or the queue bound.
  if (store_->Load(config, &out->result) == PointCacheStatus::kHit) {
    std::lock_guard<std::mutex> lock(mu_);
    out->status = ServeStatus::kOk;
    out->source = ServeSource::kStore;
    ++counters_.store_hits;
    ++counters_.points_served;
    return {};
  }
  const std::uint64_t key = out->result_key;
  std::unique_lock<std::mutex> lock(mu_);
  if (const auto it = inflight_.find(key); it != inflight_.end()) {
    // Single-flight: join the computation already running for this key.
    return ComputeHandle{it->second, false};
  }
  if (stopping_) {
    out->status = ServeStatus::kRetryAfter;
    out->retry_after_seconds = config_.retry_after_seconds;
    out->message = "daemon is draining";
    ++counters_.retry_after_replies;
    return {};
  }
  if (inflight_.size() >= config_.max_queue) {
    out->status = ServeStatus::kRetryAfter;
    out->retry_after_seconds = config_.retry_after_seconds;
    out->message = "compute queue full (" +
                   std::to_string(inflight_.size()) + " points in flight)";
    ++counters_.retry_after_replies;
    return {};
  }
  auto inflight = std::make_shared<Inflight>();
  inflight_.emplace(key, inflight);
  lock.unlock();
  runner_->Submit(config, [this, key, inflight, config](NetworkSimResult r) {
    if (config_.test_compute_delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config_.test_compute_delay_ms));
    }
    // Store before publish: a waiter woken by this completion and any
    // later request observe the same durable entry.
    store_->Put(config, r);
    std::lock_guard<std::mutex> inner(mu_);
    inflight->result = std::move(r);
    inflight->done = true;
    inflight_.erase(key);
    ++counters_.computed_points;
    cv_.notify_all();
  });
  return ComputeHandle{inflight, true};
}

void SimDaemon::AwaitPoint(const ComputeHandle& handle, PointReply* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return handle.inflight->done; });
  out->result = handle.inflight->result;
  out->status = ServeStatus::kOk;
  out->source =
      handle.submitter ? ServeSource::kComputed : ServeSource::kCoalesced;
  if (!handle.submitter) ++counters_.coalesced_points;
  ++counters_.points_served;
}

PointReply SimDaemon::ServePoint(const NetworkSimConfig& config) {
  PointReply out;
  out.result_key = NetworkSimResultKey(config);
  try {
    ValidateNetworkSimConfig(config);
  } catch (const SimError& e) {
    out.status = ServeStatus::kError;
    out.message = e.what();
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.error_replies;
    return out;
  }
  const ComputeHandle handle = BeginPoint(config, &out);
  if (handle.inflight) AwaitPoint(handle, &out);
  return out;
}

std::vector<PointReply> SimDaemon::ServeBatch(
    const std::vector<NetworkSimConfig>& configs) {
  // Two phases so a batch's misses compute concurrently: begin (or join)
  // every point first, then await. A batch's internal duplicates coalesce
  // onto the first occurrence like any other concurrent requests would.
  std::vector<PointReply> replies(configs.size());
  std::vector<ComputeHandle> handles(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    PointReply& out = replies[i];
    out.result_key = NetworkSimResultKey(configs[i]);
    try {
      ValidateNetworkSimConfig(configs[i]);
    } catch (const SimError& e) {
      out.status = ServeStatus::kError;
      out.message = e.what();
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.error_replies;
      continue;
    }
    handles[i] = BeginPoint(configs[i], &out);
  }
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (handles[i].inflight) AwaitPoint(handles[i], &replies[i]);
  }
  return replies;
}

DaemonStats SimDaemon::stats() const {
  const ResultStoreStats ss = store_->stats();
  std::lock_guard<std::mutex> lock(mu_);
  DaemonStats s = counters_;
  s.inflight = inflight_.size();
  s.active_connections = active_connections_;
  s.store_entries_written = ss.writes;
  s.store_bytes_written = ss.bytes_written;
  s.store_defective = ss.defective;
  s.store_gc_evicted = ss.gc_evicted_entries;
  return s;
}

int SimDaemon::Wait() {
  // The stop flag is the only channel a signal handler can use, so it is
  // polled: 100ms of shutdown latency, zero signal-unsafe work.
  while (!stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  Stop();
  return 0;
}

void SimDaemon::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopped_) {
      stopped_ = true;
      return;
    }
    stopping_ = true;  // new misses now get retry-after
  }
  stop_requested_.store(true, std::memory_order_relaxed);

  // 1. Stop accepting: shutdown unblocks accept4, then the thread exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Drain: every in-flight computation completes and every request
  // already read off the wire gets its reply written. New requests that
  // race in on live connections resolve too (hit, join, or retry-after) —
  // busy_requests_ covers them.
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] {
      return inflight_.empty() && busy_requests_ == 0;
    });
  }

  // 3. Disconnect: shutting the fds down unblocks connection threads
  // parked in ReadFrame; each closes its own fd and signs off.
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    cv_.wait(lock, [this] { return active_connections_ == 0; });
    stopped_ = true;
  }

  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(config_.socket_path.c_str());
}

}  // namespace vixnoc
