#include "server/server_protocol.hpp"

#include "common/error.hpp"
#include "exec/exec_protocol.hpp"
#include "snapshot/snapshot.hpp"

namespace vixnoc {

namespace {

constexpr const char kPointSection[] = "vixd_point";
constexpr const char kBatchSection[] = "vixd_batch";
constexpr const char kStatsSection[] = "vixd_stats";
constexpr const char kShutdownSection[] = "vixd_shutdown";
constexpr const char kReplySection[] = "vixd_reply";
constexpr const char kBatchReplySection[] = "vixd_breply";
constexpr const char kStatsReplySection[] = "vixd_dstats";
constexpr const char kByeSection[] = "vixd_bye";

/// Order-sensitive fold of a batch's per-point result keys, stamped into
/// batch request/reply containers.
std::uint64_t FoldKeys(const std::vector<std::uint64_t>& keys) {
  return Fnv1a64(keys.data(), keys.size() * sizeof(std::uint64_t));
}

void SavePointReply(SnapshotWriter& w, const PointReply& r) {
  w.U8(static_cast<std::uint8_t>(r.status));
  w.U8(static_cast<std::uint8_t>(r.source));
  w.F64(r.retry_after_seconds);
  w.Str(r.message);
  w.U64(r.result_key);
  w.B(r.status == ServeStatus::kOk);
  if (r.status == ServeStatus::kOk) SaveNetworkSimResult(w, r.result);
}

PointReply LoadPointReply(SnapshotReader& r) {
  PointReply out;
  const std::uint8_t status = r.U8();
  VIXNOC_REQUIRE(status <= static_cast<std::uint8_t>(ServeStatus::kError),
                 "point reply carries unknown status %u", status);
  out.status = static_cast<ServeStatus>(status);
  const std::uint8_t source = r.U8();
  VIXNOC_REQUIRE(source <= static_cast<std::uint8_t>(ServeSource::kCoalesced),
                 "point reply carries unknown source %u", source);
  out.source = static_cast<ServeSource>(source);
  out.retry_after_seconds = r.F64();
  out.message = r.Str();
  out.result_key = r.U64();
  if (r.B()) out.result = LoadNetworkSimResult(r);
  return out;
}

}  // namespace

std::uint64_t ControlFrameFingerprint() {
  static const std::uint64_t fp = [] {
    const char tag[] = "vixd_control";
    return Fnv1a64(tag, sizeof(tag) - 1);
  }();
  return fp;
}

std::string ToString(RequestKind kind) {
  switch (kind) {
    case RequestKind::kPoint:
      return "point";
    case RequestKind::kBatch:
      return "batch";
    case RequestKind::kStats:
      return "stats";
    case RequestKind::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

std::string ToString(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kRetryAfter:
      return "retry-after";
    case ServeStatus::kError:
      return "error";
  }
  return "unknown";
}

std::string ToString(ServeSource source) {
  switch (source) {
    case ServeSource::kNone:
      return "none";
    case ServeSource::kStore:
      return "store";
    case ServeSource::kComputed:
      return "computed";
    case ServeSource::kCoalesced:
      return "coalesced";
  }
  return "unknown";
}

std::string EncodePointRequest(const NetworkSimConfig& config) {
  SnapshotWriter w;
  w.BeginSection(kPointSection);
  SaveNetworkSimConfig(w, config);
  w.EndSection();
  return w.Finish(NetworkSimResultKey(config));
}

std::string EncodeBatchRequest(const std::vector<NetworkSimConfig>& configs) {
  SnapshotWriter w;
  w.BeginSection(kBatchSection);
  w.U64(configs.size());
  std::vector<std::uint64_t> keys;
  keys.reserve(configs.size());
  for (const NetworkSimConfig& c : configs) {
    SaveNetworkSimConfig(w, c);
    keys.push_back(NetworkSimResultKey(c));
  }
  w.EndSection();
  return w.Finish(FoldKeys(keys));
}

std::string EncodeStatsRequest() {
  SnapshotWriter w;
  w.BeginSection(kStatsSection);
  w.EndSection();
  return w.Finish(ControlFrameFingerprint());
}

std::string EncodeShutdownRequest() {
  SnapshotWriter w;
  w.BeginSection(kShutdownSection);
  w.EndSection();
  return w.Finish(ControlFrameFingerprint());
}

Request DecodeRequest(const std::string& payload) {
  SnapshotReader r(payload);
  Request out;
  if (r.HasSection(kPointSection)) {
    out.kind = RequestKind::kPoint;
    r.OpenSection(kPointSection);
    out.configs.push_back(LoadNetworkSimConfig(r));
    r.CloseSection();
    const std::uint64_t key = NetworkSimResultKey(out.configs.back());
    VIXNOC_REQUIRE(r.fingerprint() == key,
                   "point request fingerprint %016llx does not match the "
                   "config's result key %016llx",
                   static_cast<unsigned long long>(r.fingerprint()),
                   static_cast<unsigned long long>(key));
    return out;
  }
  if (r.HasSection(kBatchSection)) {
    out.kind = RequestKind::kBatch;
    r.OpenSection(kBatchSection);
    const std::uint64_t count = r.U64();
    VIXNOC_REQUIRE(count <= 1'000'000,
                   "batch request claims %llu points",
                   static_cast<unsigned long long>(count));
    std::vector<std::uint64_t> keys;
    keys.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      out.configs.push_back(LoadNetworkSimConfig(r));
      keys.push_back(NetworkSimResultKey(out.configs.back()));
    }
    r.CloseSection();
    VIXNOC_REQUIRE(r.fingerprint() == FoldKeys(keys),
                   "batch request fingerprint does not match its configs");
    return out;
  }
  if (r.HasSection(kStatsSection)) {
    out.kind = RequestKind::kStats;
    return out;
  }
  if (r.HasSection(kShutdownSection)) {
    out.kind = RequestKind::kShutdown;
    return out;
  }
  VIXNOC_REQUIRE(false, "frame is not a recognized vixnocd request");
  return out;  // unreachable
}

std::string EncodePointReply(const PointReply& reply) {
  SnapshotWriter w;
  w.BeginSection(kReplySection);
  SavePointReply(w, reply);
  w.EndSection();
  return w.Finish(reply.result_key);
}

PointReply DecodePointReply(const std::string& payload) {
  SnapshotReader r(payload);
  r.OpenSection(kReplySection);
  PointReply out = LoadPointReply(r);
  r.CloseSection();
  VIXNOC_REQUIRE(r.fingerprint() == out.result_key,
                 "point reply container fingerprint does not match its "
                 "result key");
  return out;
}

std::string EncodeBatchReply(const std::vector<PointReply>& replies) {
  SnapshotWriter w;
  w.BeginSection(kBatchReplySection);
  w.U64(replies.size());
  std::vector<std::uint64_t> keys;
  keys.reserve(replies.size());
  for (const PointReply& r : replies) {
    SavePointReply(w, r);
    keys.push_back(r.result_key);
  }
  w.EndSection();
  return w.Finish(FoldKeys(keys));
}

std::vector<PointReply> DecodeBatchReply(const std::string& payload) {
  SnapshotReader r(payload);
  r.OpenSection(kBatchReplySection);
  const std::uint64_t count = r.U64();
  VIXNOC_REQUIRE(count <= 1'000'000, "batch reply claims %llu points",
                 static_cast<unsigned long long>(count));
  std::vector<PointReply> out;
  std::vector<std::uint64_t> keys;
  out.reserve(count);
  keys.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(LoadPointReply(r));
    keys.push_back(out.back().result_key);
  }
  r.CloseSection();
  VIXNOC_REQUIRE(r.fingerprint() == FoldKeys(keys),
                 "batch reply container fingerprint does not match its "
                 "per-point keys");
  return out;
}

std::string EncodeStatsReply(const DaemonStats& s) {
  SnapshotWriter w;
  w.BeginSection(kStatsReplySection);
  w.U64(s.requests);
  w.U64(s.point_requests);
  w.U64(s.batch_requests);
  w.U64(s.points_served);
  w.U64(s.store_hits);
  w.U64(s.computed_points);
  w.U64(s.coalesced_points);
  w.U64(s.retry_after_replies);
  w.U64(s.error_replies);
  w.U64(s.inflight);
  w.U64(s.connections_accepted);
  w.U64(s.active_connections);
  w.U64(s.store_entries_written);
  w.U64(s.store_bytes_written);
  w.U64(s.store_defective);
  w.U64(s.store_gc_evicted);
  w.EndSection();
  return w.Finish(ControlFrameFingerprint());
}

DaemonStats DecodeStatsReply(const std::string& payload) {
  SnapshotReader r(payload);
  r.OpenSection(kStatsReplySection);
  DaemonStats s;
  s.requests = r.U64();
  s.point_requests = r.U64();
  s.batch_requests = r.U64();
  s.points_served = r.U64();
  s.store_hits = r.U64();
  s.computed_points = r.U64();
  s.coalesced_points = r.U64();
  s.retry_after_replies = r.U64();
  s.error_replies = r.U64();
  s.inflight = r.U64();
  s.connections_accepted = r.U64();
  s.active_connections = r.U64();
  s.store_entries_written = r.U64();
  s.store_bytes_written = r.U64();
  s.store_defective = r.U64();
  s.store_gc_evicted = r.U64();
  r.CloseSection();
  return s;
}

std::string EncodeShutdownReply() {
  SnapshotWriter w;
  w.BeginSection(kByeSection);
  w.EndSection();
  return w.Finish(ControlFrameFingerprint());
}

void DecodeShutdownReply(const std::string& payload) {
  SnapshotReader r(payload);
  VIXNOC_REQUIRE(r.HasSection(kByeSection),
                 "frame is not a shutdown acknowledgment");
}

bool IsPointReply(const std::string& payload) {
  try {
    SnapshotReader r(payload);
    return r.HasSection(kReplySection);
  } catch (const SimError&) {
    return false;
  }
}

}  // namespace vixnoc
