// SimDaemon: the long-running simulation service behind vixnocd.
//
// One daemon owns a Unix-domain listening socket, a content-addressed
// ResultStore, and a SweepRunner compute pool. Per request:
//
//   store hit       -> served immediately, no pool involvement;
//   miss            -> the point is submitted to the pool once; concurrent
//                      requests for the same NetworkSimResultKey join the
//                      in-flight computation (single-flight: N clients
//                      asking for one missing point trigger exactly one
//                      simulation), and the finished result lands in the
//                      store before anyone is woken;
//   pool saturated  -> when distinct in-flight keys reach max_queue the
//                      request gets an explicit retry-after reply instead
//                      of joining an unbounded pileup (joining an existing
//                      key is always allowed — it adds no work).
//
// Shutdown (SIGTERM via RequestStop, a shutdown frame, or Stop) drains:
// the listener closes first, in-flight computations and busy requests
// finish and their replies are written, then connections are torn down.
// RequestStop is a single atomic store, safe from a signal handler.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "server/server_protocol.hpp"
#include "sim/sweep.hpp"
#include "store/result_store.hpp"

namespace vixnoc {

struct DaemonConfig {
  /// Unix-domain socket path; created on Start, unlinked on Stop. A stale
  /// file from a crashed daemon is unlinked before bind.
  std::string socket_path;
  /// Result store root directory.
  std::string store_dir;
  /// Store GC bound (0 = unbounded), see ResultStoreConfig::max_bytes.
  std::uint64_t store_max_bytes = 0;
  /// Compute pool size; ResolveThreadCount convention (0 = auto).
  int threads = 0;
  /// Bound on distinct in-flight computations before new misses are told
  /// to retry.
  std::size_t max_queue = 64;
  /// Hint returned with retry-after replies.
  double retry_after_seconds = 0.05;
  /// Test hook: sleep this long inside each computation's completion path
  /// (before the result is published), widening the single-flight window
  /// so coalescing and backpressure are deterministic to test. 0 in
  /// production.
  int test_compute_delay_ms = 0;
};

class SimDaemon {
 public:
  /// Validates the config and opens the store (throws SimError on an
  /// unusable store directory). The socket is not touched until Start.
  explicit SimDaemon(DaemonConfig config);
  ~SimDaemon();  ///< Stop()s if still running

  SimDaemon(const SimDaemon&) = delete;
  SimDaemon& operator=(const SimDaemon&) = delete;

  const DaemonConfig& config() const { return config_; }
  ResultStore& store() { return *store_; }

  /// Binds + listens on the socket and starts the accept thread. Throws
  /// SimError when the socket cannot be created.
  void Start();

  /// Graceful shutdown: stop accepting, drain in-flight computations and
  /// busy requests (their replies are still delivered), disconnect
  /// clients, join, unlink the socket. Idempotent; not called from
  /// connection threads (a shutdown frame uses RequestStop instead).
  void Stop();

  /// Flags the daemon to stop. Lock-free single atomic store — safe from
  /// a signal handler. Takes effect through Wait (or a manual Stop).
  void RequestStop() { stop_requested_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const {
    return stop_requested_.load(std::memory_order_relaxed);
  }

  /// Blocks until RequestStop fires (SIGTERM handler or shutdown frame),
  /// then runs the graceful Stop. Returns 0. This is vixnocd's main loop.
  int Wait();

  DaemonStats stats() const;

 private:
  struct Inflight {
    bool done = false;
    NetworkSimResult result;
  };
  struct ComputeHandle {
    std::shared_ptr<Inflight> inflight;  ///< null when not computing
    bool submitter = false;
  };

  void AcceptLoop();
  void ServeConnection(int fd);
  PointReply ServePoint(const NetworkSimConfig& config);
  std::vector<PointReply> ServeBatch(
      const std::vector<NetworkSimConfig>& configs);
  /// Probes the store and, on a miss, begins or joins a computation.
  /// Returns a handle to await, or none when *out is already final
  /// (hit / retry-after / error).
  ComputeHandle BeginPoint(const NetworkSimConfig& config, PointReply* out);
  void AwaitPoint(const ComputeHandle& handle, PointReply* out);

  DaemonConfig config_;
  std::shared_ptr<ResultStore> store_;
  std::unique_ptr<SweepRunner> runner_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stop_requested_{false};

  mutable std::mutex mu_;
  std::condition_variable cv_;  // inflight completion + drain + connection
  bool started_ = false;
  bool stopping_ = false;  // no new computations; misses get retry-after
  bool stopped_ = false;
  std::map<std::uint64_t, std::shared_ptr<Inflight>> inflight_;
  std::set<int> conn_fds_;
  std::size_t active_connections_ = 0;
  std::size_t busy_requests_ = 0;  // read off the wire, reply not yet sent

  // Counters (under mu_).
  DaemonStats counters_;
};

}  // namespace vixnoc
