#include "store/result_store.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <vector>

#include "common/error.hpp"
#include "snapshot/snapshot.hpp"

namespace vixnoc {

namespace fs = std::filesystem;

namespace {

std::string HexKey(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(key));
  return std::string(buf, 16);
}

bool IsEntryFile(const fs::path& p) {
  return p.extension() == ".res";
}

/// Staged-but-never-renamed tmp files (a writer crashed mid-Put). They
/// carry a ".tmp.<pid>.<n>" suffix, so they never collide with ".res"
/// entries; the GC sweeps ones old enough that no live writer owns them.
bool IsStaleTmpFile(const fs::path& p, fs::file_time_type now) {
  const std::string name = p.filename().string();
  if (name.find(".tmp.") == std::string::npos) return false;
  std::error_code ec;
  const auto mtime = fs::last_write_time(p, ec);
  if (ec) return false;
  return now - mtime > std::chrono::minutes(10);
}

}  // namespace

std::string StoreEntryRelPath(std::uint64_t key) {
  const std::string hex = HexKey(key);
  return hex.substr(0, 2) + "/" + hex + ".res";
}

ResultStore::ResultStore(ResultStoreConfig config)
    : config_(std::move(config)) {
  VIXNOC_REQUIRE(!config_.dir.empty(), "result store directory is empty");
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  VIXNOC_REQUIRE(!ec, "cannot create result store directory '%s': %s",
                 config_.dir.c_str(), ec.message().c_str());
  // Seed the size estimate from whatever a previous process left behind,
  // so max_bytes bounds the directory, not just this process's writes.
  for (auto it = fs::recursive_directory_iterator(
           config_.dir, fs::directory_options::skip_permission_denied, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (it->is_regular_file(ec) && IsEntryFile(it->path())) {
      approx_bytes_ += it->file_size(ec);
    }
  }
}

std::string ResultStore::EntryPath(std::uint64_t key) const {
  return config_.dir + "/" + StoreEntryRelPath(key);
}

std::string ResultStore::EntryPath(const NetworkSimConfig& config) const {
  return EntryPath(NetworkSimResultKey(config));
}

PointCacheStatus ResultStore::Load(const NetworkSimConfig& config,
                                   NetworkSimResult* out) {
  if (config.topology_factory || config.routing_factory) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return PointCacheStatus::kMiss;
  }
  const std::uint64_t key = NetworkSimResultKey(config);
  const std::string path = EntryPath(key);
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return PointCacheStatus::kMiss;
  }
  try {
    SnapshotReader r(ReadSnapshotFile(path));
    VIXNOC_REQUIRE(r.fingerprint() == key,
                   "store entry '%s' carries key %016llx but this config's "
                   "result key is %016llx",
                   path.c_str(),
                   static_cast<unsigned long long>(r.fingerprint()),
                   static_cast<unsigned long long>(key));
    r.OpenSection("result");
    *out = LoadNetworkSimResult(r);
    r.CloseSection();
  } catch (const SimError& e) {
    std::fprintf(stderr,
                 "vixnoc: warning: defective result store entry '%s' (%s); "
                 "re-running the point\n",
                 path.c_str(), e.what());
    // Unlink the damaged file so the recompute's Put (which skips
    // existing entries) repairs the store instead of leaving the defect
    // to be rediscovered on every future run.
    std::uint64_t size = 0;
    if (const auto s = fs::file_size(path, ec); !ec) size = s;
    fs::remove(path, ec);
    std::lock_guard<std::mutex> lock(mu_);
    if (!ec) approx_bytes_ -= std::min(approx_bytes_, size);
    ++stats_.defective;
    return PointCacheStatus::kDefective;
  }
  // Refresh recency so the LRU-ish GC evicts cold entries first. Best
  // effort: a read-only store directory still serves hits.
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.hits;
  return PointCacheStatus::kHit;
}

void ResultStore::Put(const NetworkSimConfig& config,
                      const NetworkSimResult& result) {
  // Error slots are not results — a crashed or invalid point must be
  // retried next time, never served from cache. Factory configs are
  // excluded because their key is ambiguous (presence-only hash).
  if (result.outcome.status == SimStatus::kInvariantViolation ||
      result.outcome.status == SimStatus::kExecFailure ||
      config.topology_factory || config.routing_factory) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.writes_skipped;
    return;
  }
  const std::uint64_t key = NetworkSimResultKey(config);
  const std::string path = EntryPath(key);
  std::error_code ec;
  if (fs::exists(path, ec) && !ec) {
    // Determinism makes a rewrite byte-identical; skipping it preserves
    // the entry's age and spares the I/O on warm re-runs.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.writes_skipped;
    return;
  }
  try {
    SnapshotWriter w;
    w.BeginSection("result");
    SaveNetworkSimResult(w, result);
    w.EndSection();
    const std::string bytes = w.Finish(key);
    fs::create_directories(fs::path(path).parent_path(), ec);
    VIXNOC_REQUIRE(!ec, "cannot create store shard directory for '%s': %s",
                   path.c_str(), ec.message().c_str());
    WriteSnapshotFile(path, bytes);
    bool gc = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.writes;
      stats_.bytes_written += bytes.size();
      approx_bytes_ += bytes.size();
      gc = config_.max_bytes > 0 && approx_bytes_ > config_.max_bytes;
    }
    if (gc) GarbageCollect();
  } catch (const SimError& e) {
    std::fprintf(stderr,
                 "vixnoc: warning: cannot write result store entry '%s' "
                 "(%s); continuing without caching this point\n",
                 path.c_str(), e.what());
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.write_failures;
  }
}

ResultStoreStats ResultStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::uint64_t ResultStore::approximate_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return approx_bytes_;
}

std::uint64_t ResultStore::GarbageCollect() {
  std::lock_guard<std::mutex> lock(mu_);
  return GarbageCollectLocked();
}

std::uint64_t ResultStore::GarbageCollectLocked() {
  struct Entry {
    fs::path path;
    std::uint64_t size;
    fs::file_time_type mtime;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  const auto now = fs::file_time_type::clock::now();
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(
           config_.dir, fs::directory_options::skip_permission_denied, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    std::error_code fec;
    if (!it->is_regular_file(fec) || fec) continue;
    const fs::path& p = it->path();
    if (IsStaleTmpFile(p, now)) {
      fs::remove(p, fec);
      continue;
    }
    if (!IsEntryFile(p)) continue;
    Entry e;
    e.path = p;
    e.size = it->file_size(fec);
    if (fec) continue;
    e.mtime = fs::last_write_time(p, fec);
    if (fec) continue;
    total += e.size;
    entries.push_back(std::move(e));
  }
  ++stats_.gc_runs;
  approx_bytes_ = total;  // rescan folds in other processes' writes
  if (config_.max_bytes == 0 || total <= config_.max_bytes) return 0;

  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  std::uint64_t evicted = 0;
  for (const Entry& e : entries) {
    if (approx_bytes_ <= config_.max_bytes) break;
    std::error_code rec;
    if (fs::remove(e.path, rec) && !rec) {
      approx_bytes_ -= std::min(approx_bytes_, e.size);
      ++evicted;
      ++stats_.gc_evicted_entries;
      stats_.gc_evicted_bytes += e.size;
    }
  }
  return evicted;
}

}  // namespace vixnoc
