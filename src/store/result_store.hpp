// Content-addressed simulation result store.
//
// Every finished NetworkSimResult is filed under its NetworkSimResultKey —
// a semantic content key derived from the config, not from where the point
// sat in some batch. That one change is what turns per-sweep checkpointing
// into a shared cache: a popular design point computed by any bench, any
// batch shape, any grid ordering, or any machine sharing the directory is
// a hit for every later consumer. The vixnocd daemon serves its hits
// straight from here.
//
// Layout: `<dir>/<key[0:2]>/<key>.res` where `key` is the 16-lowercase-hex
// result key — two-level sharding keeps directory fan-out bounded at 256.
// Entries are snapshot containers (section "result", container fingerprint
// = the key) written atomically via unique-tmp+rename, so concurrent
// writers racing the same key — even from different processes — each stage
// a complete file and the last rename wins with identical bytes (results
// are deterministic functions of the key).
//
// Trust model: the store is an accelerator, never a correctness input.
// Load re-validates the container key and checksums; a defective entry
// (truncated, corrupted, wrong key) warns on stderr, ticks a counter, and
// reports kDefective so the caller recomputes. Put never throws — a full
// disk degrades performance, not results.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "sim/network_sim.hpp"
#include "sim/sweep.hpp"

namespace vixnoc {

struct ResultStoreConfig {
  /// Root directory; created (with parents) by the constructor.
  std::string dir;
  /// When > 0, a Put that pushes the store's approximate on-disk size over
  /// this bound triggers a garbage collection that evicts least-recently
  /// used entries (by file mtime; hits refresh it) until under the bound.
  /// 0 disables GC.
  std::uint64_t max_bytes = 0;
};

/// Monotonic counters over the store's lifetime (this process only; the
/// directory itself may be shared with other processes).
struct ResultStoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Entries that existed but failed validation and were recomputed.
  std::uint64_t defective = 0;
  std::uint64_t writes = 0;
  /// Puts skipped by policy: error-slot results (kInvariantViolation /
  /// kExecFailure), factory-built configs, or an entry already present.
  std::uint64_t writes_skipped = 0;
  /// Puts that failed on I/O; the result was still returned to the caller.
  std::uint64_t write_failures = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t gc_evicted_entries = 0;
  std::uint64_t gc_evicted_bytes = 0;
};

class ResultStore : public PointCache {
 public:
  /// Creates `config.dir` (with parents) and sums any existing entries
  /// into the approximate size. Throws SimError when the directory cannot
  /// be created — an unusable store path is a caller error, unlike the
  /// per-entry I/O failures tolerated afterwards.
  explicit ResultStore(ResultStoreConfig config);
  explicit ResultStore(std::string dir)
      : ResultStore(ResultStoreConfig{std::move(dir), 0}) {}

  const ResultStoreConfig& config() const { return config_; }

  /// Absolute path the entry for `config` lives at (whether or not it
  /// exists yet). Exposed for tests and tooling that corrupt or count
  /// entries directly.
  std::string EntryPath(const NetworkSimConfig& config) const;
  std::string EntryPath(std::uint64_t key) const;

  // PointCache interface. Load validates the container key + checksums and
  // refreshes the entry's mtime on a hit (the GC's recency signal). Put is
  // non-throwing and skips error slots and factory configs (the key only
  // records factory presence — caching those would let two different
  // factories collide).
  PointCacheStatus Load(const NetworkSimConfig& config,
                        NetworkSimResult* out) override;
  void Put(const NetworkSimConfig& config,
           const NetworkSimResult& result) override;

  ResultStoreStats stats() const;

  /// Running estimate of the entry bytes on disk: seeded by a scan at
  /// construction, bumped by writes. Other processes' writes are only
  /// folded in when a GC rescans.
  std::uint64_t approximate_bytes() const;

  /// Forces a collection pass: rescans the directory, evicts oldest-mtime
  /// entries until under max_bytes (no-op when max_bytes == 0 or already
  /// under), and sweeps stale orphaned tmp files. Returns entries evicted.
  std::uint64_t GarbageCollect();

 private:
  std::uint64_t GarbageCollectLocked();

  ResultStoreConfig config_;
  mutable std::mutex mu_;
  ResultStoreStats stats_;
  std::uint64_t approx_bytes_ = 0;
};

/// Relative entry path for a result key: "ab/abcdef0123456789.res".
std::string StoreEntryRelPath(std::uint64_t key);

}  // namespace vixnoc
