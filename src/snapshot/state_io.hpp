// Snapshot encoders for the small value types of common/ (RNG streams and
// statistics accumulators). Header-only so any layer that already links
// vixnoc_snapshot can serialize them without new dependencies.
#pragma once

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "snapshot/snapshot.hpp"

namespace vixnoc {

inline void SaveRng(SnapshotWriter& w, const Rng& rng) {
  for (std::uint64_t s : rng.state()) w.U64(s);
}

inline void LoadRng(SnapshotReader& r, Rng* rng) {
  Rng::State s;
  for (auto& x : s) x = r.U64();
  rng->set_state(s);
}

inline void SaveRunningStat(SnapshotWriter& w, const RunningStat& stat) {
  const RunningStat::State s = stat.state();
  w.U64(s.n);
  w.F64(s.mean);
  w.F64(s.m2);
  w.F64(s.sum);
  w.F64(s.min);
  w.F64(s.max);
}

inline void LoadRunningStat(SnapshotReader& r, RunningStat* stat) {
  RunningStat::State s;
  s.n = r.U64();
  s.mean = r.F64();
  s.m2 = r.F64();
  s.sum = r.F64();
  s.min = r.F64();
  s.max = r.F64();
  stat->set_state(s);
}

inline void SaveHistogram(SnapshotWriter& w, const Histogram& h) {
  w.U64(h.TotalCount());
  w.VecU64(h.raw_counts());
}

inline void LoadHistogram(SnapshotReader& r, Histogram* h) {
  const std::uint64_t total = r.U64();
  h->set_state(r.VecU64(), total);
}

inline void SaveNodeCounters(SnapshotWriter& w, const NodeCounters& c) {
  w.U64(c.packets_injected);
  w.U64(c.packets_ejected);
  w.U64(c.flits_injected);
  w.U64(c.flits_ejected);
  w.U64(c.packets_delivered);
}

inline void LoadNodeCounters(SnapshotReader& r, NodeCounters* c) {
  c->packets_injected = r.U64();
  c->packets_ejected = r.U64();
  c->flits_injected = r.U64();
  c->flits_ejected = r.U64();
  c->packets_delivered = r.U64();
}

}  // namespace vixnoc
