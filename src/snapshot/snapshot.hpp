// Checkpoint serialization core: a versioned, checksummed, section-framed
// binary container for complete simulator state.
//
// Layout of a snapshot file (all integers little-endian):
//
//   magic     8 bytes  "VIXSNAP\0"
//   version   u32      kSnapshotFormatVersion; readers reject mismatches
//   fingerprint u64    caller-defined identity of the *producer* (for sim
//                      checkpoints: a hash of every evolution-relevant
//                      NetworkSimConfig field) — restoring under a different
//                      fingerprint is refused up front
//   sections  u32      section count, then per section:
//     name_len u32, name bytes        section name ("sim", "network", ...)
//     payload_len u64, payload bytes  primitive-encoded state
//     checksum u64                    FNV-1a 64 over the payload
//
// Error contract: every malformed input — truncation anywhere, a flipped
// bit in any section, an unknown version, a missing section — throws a
// recoverable SimError naming the failing section; nothing in this module
// aborts the process or silently misrestores. Writers publish atomically
// (write to "<path>.tmp", then rename) so a crash mid-save never leaves a
// torn file at the destination path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vixnoc {

/// Bumped whenever the encoded state layout changes incompatibly.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// FNV-1a 64-bit over a byte range (seedable for incremental hashing).
std::uint64_t Fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

/// Accumulates sections of primitive-encoded state, then assembles the
/// final framed byte string. Primitives append to the currently open
/// section; opening a section while one is open is a usage error (checked).
class SnapshotWriter {
 public:
  void BeginSection(const std::string& name);
  void EndSection();

  void U8(std::uint8_t v);
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I32(std::int32_t v) { U32(static_cast<std::uint32_t>(v)); }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F64(double v);
  void B(bool v) { U8(v ? 1 : 0); }
  void Str(const std::string& s);

  void VecU64(const std::vector<std::uint64_t>& v);
  void VecU32(const std::vector<std::uint32_t>& v);
  void VecI32(const std::vector<int>& v);
  void VecBool(const std::vector<bool>& v);

  /// Assembles header + all sections into the final file bytes.
  std::string Finish(std::uint64_t fingerprint) const;

 private:
  struct Section {
    std::string name;
    std::string payload;
  };
  std::vector<Section> sections_;
  bool open_ = false;
  std::string current_;  ///< payload of the open section
};

/// Parses and validates a framed snapshot; primitives read from the
/// currently open section. All failures throw SimError with the section
/// name and byte offset.
class SnapshotReader {
 public:
  /// Parses the frame; validates magic, version and every section checksum.
  explicit SnapshotReader(std::string bytes);

  std::uint64_t fingerprint() const { return fingerprint_; }

  bool HasSection(const std::string& name) const;
  void OpenSection(const std::string& name);
  /// Requires the open section to be fully consumed (guards against a
  /// reader/writer layout drift that happens to pass the checksum).
  void CloseSection();

  std::uint8_t U8();
  std::uint16_t U16();
  std::uint32_t U32();
  std::uint64_t U64();
  std::int32_t I32() { return static_cast<std::int32_t>(U32()); }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  double F64();
  bool B();
  std::string Str();

  std::vector<std::uint64_t> VecU64();
  std::vector<std::uint32_t> VecU32();
  std::vector<int> VecI32();
  std::vector<bool> VecBool();

  /// Reads a count written by a Vec*/Str length prefix and validates it
  /// against the bytes remaining in the section (so a corrupted length
  /// cannot drive a multi-gigabyte allocation).
  std::size_t Count(std::size_t elem_size);

 private:
  struct Section {
    std::string payload;
  };
  [[noreturn]] void Fail(const std::string& why) const;
  const std::string& Payload() const;

  std::vector<std::pair<std::string, Section>> sections_;
  std::uint64_t fingerprint_ = 0;
  int open_ = -1;       ///< index into sections_, -1 = none
  std::size_t pos_ = 0;  ///< cursor within the open section
};

/// Writes `bytes` to `path` atomically (tmp file + rename). Throws SimError
/// on any I/O failure.
void WriteSnapshotFile(const std::string& path, const std::string& bytes);

/// Reads a whole file. Throws SimError if the file cannot be opened/read.
std::string ReadSnapshotFile(const std::string& path);

}  // namespace vixnoc
