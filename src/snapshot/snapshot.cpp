#include "snapshot/snapshot.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "common/check.hpp"
#include "common/error.hpp"

namespace vixnoc {
namespace {

constexpr char kMagic[8] = {'V', 'I', 'X', 'S', 'N', 'A', 'P', '\0'};

void AppendU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

}  // namespace

std::uint64_t Fnv1a64(const void* data, std::size_t size, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void SnapshotWriter::BeginSection(const std::string& name) {
  VIXNOC_CHECK(!open_);
  open_ = true;
  current_.clear();
  sections_.push_back(Section{name, {}});
}

void SnapshotWriter::EndSection() {
  VIXNOC_CHECK(open_);
  sections_.back().payload = std::move(current_);
  current_.clear();
  open_ = false;
}

void SnapshotWriter::U8(std::uint8_t v) {
  VIXNOC_CHECK(open_);
  current_.push_back(static_cast<char>(v));
}

void SnapshotWriter::U16(std::uint16_t v) {
  U8(static_cast<std::uint8_t>(v));
  U8(static_cast<std::uint8_t>(v >> 8));
}

void SnapshotWriter::U32(std::uint32_t v) {
  VIXNOC_CHECK(open_);
  AppendU32(&current_, v);
}

void SnapshotWriter::U64(std::uint64_t v) {
  VIXNOC_CHECK(open_);
  AppendU64(&current_, v);
}

void SnapshotWriter::F64(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  U64(bits);
}

void SnapshotWriter::Str(const std::string& s) {
  U64(s.size());
  VIXNOC_CHECK(open_);
  current_.append(s);
}

void SnapshotWriter::VecU64(const std::vector<std::uint64_t>& v) {
  U64(v.size());
  for (std::uint64_t x : v) U64(x);
}

void SnapshotWriter::VecU32(const std::vector<std::uint32_t>& v) {
  U64(v.size());
  for (std::uint32_t x : v) U32(x);
}

void SnapshotWriter::VecI32(const std::vector<int>& v) {
  U64(v.size());
  for (int x : v) I32(x);
}

void SnapshotWriter::VecBool(const std::vector<bool>& v) {
  U64(v.size());
  for (bool x : v) B(x);
}

std::string SnapshotWriter::Finish(std::uint64_t fingerprint) const {
  VIXNOC_CHECK(!open_);
  std::string out(kMagic, sizeof kMagic);
  AppendU32(&out, kSnapshotFormatVersion);
  AppendU64(&out, fingerprint);
  AppendU32(&out, static_cast<std::uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    AppendU32(&out, static_cast<std::uint32_t>(s.name.size()));
    out.append(s.name);
    AppendU64(&out, s.payload.size());
    out.append(s.payload);
    AppendU64(&out, Fnv1a64(s.payload.data(), s.payload.size()));
  }
  return out;
}

namespace {

/// Frame-level cursor used only while parsing the container in the
/// constructor; section payload reads go through SnapshotReader's own
/// cursor so errors can name the section.
class FrameCursor {
 public:
  explicit FrameCursor(const std::string& bytes) : bytes_(bytes) {}

  std::size_t remaining() const { return bytes_.size() - pos_; }

  const char* Take(std::size_t n, const char* what) {
    if (remaining() < n) {
      throw SimError("checkpoint file truncated: expected " +
                     std::to_string(n) + " bytes for " + what + " at offset " +
                     std::to_string(pos_) + ", file has " +
                     std::to_string(bytes_.size()) + " bytes");
    }
    const char* p = bytes_.data() + pos_;
    pos_ += n;
    return p;
  }

  std::uint32_t U32(const char* what) {
    const unsigned char* p =
        reinterpret_cast<const unsigned char*>(Take(4, what));
    return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
  }

  std::uint64_t U64(const char* what) {
    const unsigned char* p =
        reinterpret_cast<const unsigned char*>(Take(8, what));
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }

 private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

SnapshotReader::SnapshotReader(std::string bytes) {
  FrameCursor cur(bytes);
  const char* magic = cur.Take(sizeof kMagic, "magic");
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw SimError("not a vixnoc checkpoint file (bad magic)");
  }
  const std::uint32_t version = cur.U32("format version");
  if (version != kSnapshotFormatVersion) {
    throw SimError("checkpoint format version " + std::to_string(version) +
                   " is not supported (this build reads version " +
                   std::to_string(kSnapshotFormatVersion) + ")");
  }
  fingerprint_ = cur.U64("config fingerprint");
  const std::uint32_t num_sections = cur.U32("section count");
  sections_.reserve(num_sections);
  for (std::uint32_t i = 0; i < num_sections; ++i) {
    const std::uint32_t name_len = cur.U32("section name length");
    if (name_len > cur.remaining()) {
      throw SimError("checkpoint file truncated inside section " +
                     std::to_string(i) + "'s name");
    }
    std::string name(cur.Take(name_len, "section name"), name_len);
    const std::uint64_t payload_len = cur.U64("section payload length");
    if (payload_len > cur.remaining()) {
      throw SimError("checkpoint section '" + name +
                     "' truncated: payload claims " +
                     std::to_string(payload_len) + " bytes, only " +
                     std::to_string(cur.remaining()) + " remain");
    }
    std::string payload(
        cur.Take(static_cast<std::size_t>(payload_len), "section payload"),
        static_cast<std::size_t>(payload_len));
    const std::uint64_t want = cur.U64("section checksum");
    const std::uint64_t got = Fnv1a64(payload.data(), payload.size());
    if (want != got) {
      throw SimError("checkpoint section '" + name +
                     "' failed its checksum (stored " + std::to_string(want) +
                     ", computed " + std::to_string(got) +
                     "): the file is corrupted");
    }
    sections_.emplace_back(std::move(name), Section{std::move(payload)});
  }
}

bool SnapshotReader::HasSection(const std::string& name) const {
  for (const auto& [n, s] : sections_) {
    if (n == name) return true;
  }
  return false;
}

void SnapshotReader::OpenSection(const std::string& name) {
  VIXNOC_CHECK(open_ < 0);
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    if (sections_[i].first == name) {
      open_ = static_cast<int>(i);
      pos_ = 0;
      return;
    }
  }
  throw SimError("checkpoint has no '" + name + "' section");
}

void SnapshotReader::CloseSection() {
  VIXNOC_CHECK(open_ >= 0);
  if (pos_ != Payload().size()) {
    Fail("has " + std::to_string(Payload().size() - pos_) +
         " unread trailing bytes (layout mismatch)");
  }
  open_ = -1;
  pos_ = 0;
}

const std::string& SnapshotReader::Payload() const {
  VIXNOC_CHECK(open_ >= 0);
  return sections_[open_].second.payload;
}

void SnapshotReader::Fail(const std::string& why) const {
  const std::string name = open_ >= 0 ? sections_[open_].first : "<none>";
  throw SimError("checkpoint section '" + name + "' at offset " +
                 std::to_string(pos_) + ": " + why);
}

std::uint8_t SnapshotReader::U8() {
  const std::string& p = Payload();
  if (pos_ + 1 > p.size()) Fail("truncated (need 1 byte)");
  return static_cast<std::uint8_t>(p[pos_++]);
}

std::uint16_t SnapshotReader::U16() {
  const std::uint16_t lo = U8();
  return static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(U8()) << 8));
}

std::uint32_t SnapshotReader::U32() {
  const std::string& p = Payload();
  if (pos_ + 4 > p.size()) Fail("truncated (need 4 bytes)");
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[pos_ + i]);
  }
  pos_ += 4;
  return v;
}

std::uint64_t SnapshotReader::U64() {
  const std::string& p = Payload();
  if (pos_ + 8 > p.size()) Fail("truncated (need 8 bytes)");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[pos_ + i]);
  }
  pos_ += 8;
  return v;
}

double SnapshotReader::F64() {
  const std::uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

bool SnapshotReader::B() {
  const std::uint8_t v = U8();
  if (v > 1) Fail("bool byte is " + std::to_string(v));
  return v != 0;
}

std::size_t SnapshotReader::Count(std::size_t elem_size) {
  const std::uint64_t n = U64();
  const std::size_t remaining = Payload().size() - pos_;
  if (elem_size > 0 && n > remaining / elem_size) {
    Fail("count " + std::to_string(n) + " exceeds the " +
         std::to_string(remaining) + " bytes left in the section");
  }
  return static_cast<std::size_t>(n);
}

std::string SnapshotReader::Str() {
  const std::size_t n = Count(1);
  const std::string& p = Payload();
  std::string s(p.data() + pos_, n);
  pos_ += n;
  return s;
}

std::vector<std::uint64_t> SnapshotReader::VecU64() {
  const std::size_t n = Count(8);
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = U64();
  return v;
}

std::vector<std::uint32_t> SnapshotReader::VecU32() {
  const std::size_t n = Count(4);
  std::vector<std::uint32_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = U32();
  return v;
}

std::vector<int> SnapshotReader::VecI32() {
  const std::size_t n = Count(4);
  std::vector<int> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = I32();
  return v;
}

std::vector<bool> SnapshotReader::VecBool() {
  const std::size_t n = Count(1);
  std::vector<bool> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = B();
  return v;
}

void WriteSnapshotFile(const std::string& path, const std::string& bytes) {
  // The tmp name is unique per process and per call: concurrent writers
  // racing the same destination (e.g. two store processes computing the
  // same content-addressed key) each stage their own complete file and
  // the final rename decides — neither can observe the other's torn
  // intermediate state.
  static std::atomic<std::uint64_t> tmp_counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(tmp_counter.fetch_add(1));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw SimError("cannot open checkpoint file " + tmp + " for writing");
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    throw SimError("short write to checkpoint file " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SimError("cannot publish checkpoint file " + path +
                   " (rename failed)");
  }
}

std::string ReadSnapshotFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw SimError("cannot open checkpoint file " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) throw SimError("read error on checkpoint file " + path);
  return bytes;
}

}  // namespace vixnoc
