// Iterative SLIP allocator (McKeown [14]) — extension beyond the paper's
// four headline schemes; the paper cites iSLIP as the canonical iterative
// improver of separable allocation, so we provide it for ablations.
//
// Each iteration runs request -> grant -> accept over the *unmatched* ports:
//   grant:  every free output picks one requesting free input (rotating ptr);
//   accept: every free input picks one granting output (rotating ptr).
// Pointers advance only when a grant is accepted in the FIRST iteration,
// which is the published starvation-freedom rule.
//
// The grant phase searches the word-AND of "inputs requesting this output"
// and "inputs still free" with a masked rotate, and the accept phase scans a
// per-input bitmask of granting outputs, so neither phase walks ports one
// element at a time.
#pragma once

#include "alloc/request_matrix.hpp"
#include "alloc/switch_allocator.hpp"

namespace vixnoc {

class IslipAllocator final : public SwitchAllocator {
 public:
  IslipAllocator(const SwitchGeometry& g, int iterations = 2);

  void Allocate(const std::vector<SaRequest>& requests,
                std::vector<SaGrant>* grants) override;
  void Reset() override;
  void SaveState(SnapshotWriter& w) const override;
  void LoadState(SnapshotReader& r) override;
  std::string Name() const override {
    return "islip-" + std::to_string(iterations_);
  }

 private:
  int iterations_;
  std::vector<int> grant_ptr_;   // per output
  std::vector<int> accept_ptr_;  // per input
  std::vector<int> vc_rr_;       // per (in,out)
  // Per-cycle scratch, dirty-row cleared.
  RequestMatrix out_req_;   // row out: requesting input bits
  RequestMatrix cell_vc_;   // row (in * num_outports + out): requesting VCs
  RequestMatrix grant_req_; // row in: outputs granting it this iteration
  BitWords free_in_;        // inputs not yet matched
  std::vector<int> match_in_;    // input -> matched output (-1 free)
  std::vector<int> match_out_;   // output -> matched input (-1 free)
};

}  // namespace vixnoc
