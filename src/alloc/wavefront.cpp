#include "alloc/wavefront.hpp"
#include "common/error.hpp"
#include "snapshot/snapshot.hpp"

#include <algorithm>

namespace vixnoc {

WavefrontAllocator::WavefrontAllocator(const SwitchGeometry& g)
    : SwitchAllocator(g), n_(std::max(g.num_inports, g.num_outports)) {
  VIXNOC_CHECK(g.num_vins == 1);
  vc_rr_.assign(static_cast<std::size_t>(geom_.num_inports) *
                    geom_.num_outports,
                0);
  out_req_.Resize(geom_.num_inports, geom_.num_outports);
  cell_vc_.Resize(geom_.num_inports * geom_.num_outports, geom_.num_vcs);
  row_free_.Resize(geom_.num_inports);
  col_free_.Resize(geom_.num_outports);
}

void WavefrontAllocator::Allocate(const std::vector<SaRequest>& requests,
                                  std::vector<SaGrant>* grants) {
  grants->clear();
  out_req_.ClearDirty();
  cell_vc_.ClearDirty();
  for (const SaRequest& r : requests) {
    out_req_.Set(r.in_port, r.out_port);
    cell_vc_.Set(r.in_port * geom_.num_outports + r.out_port, r.vc);
  }

  row_free_.SetAll();
  col_free_.SetAll();

  // Sweep all n diagonals starting at the rotating priority diagonal. Only
  // inputs that are still free AND have some request can grant, so each
  // diagonal walks the word-AND of those two masks (ascending input index,
  // the same visit order as the original element scan).
  const std::uint64_t* req_rows = out_req_.DirtyRows().data();
  const int row_words = row_free_.word_count();
  for (int d = 0; d < n_; ++d) {
    const int diag = (priority_diagonal_ + d) % n_;
    for (int w = 0; w < row_words; ++w) {
      std::uint64_t cur = row_free_.data()[w] & req_rows[w];
      while (cur != 0) {
        const int i = w * bits::kWordBits + std::countr_zero(cur);
        cur &= cur - 1;
        const int j = (diag + i) % n_;
        if (j >= geom_.num_outports) continue;
        if (!col_free_.Test(j)) continue;
        if (!out_req_.Row(i).Test(j)) continue;
        row_free_.Clear(i);
        col_free_.Clear(j);
        const std::size_t cell =
            static_cast<std::size_t>(i) * geom_.num_outports + j;
        // Round-robin VC pick: smallest requesting vc >= pointer, wrapping.
        int& ptr = vc_rr_[cell];
        const VcId best = cell_vc_.Row(static_cast<int>(cell)).FirstFrom(ptr);
        VIXNOC_DCHECK(best >= 0);
        ptr = (best + 1) % geom_.num_vcs;
        grants->push_back(SaGrant{i, 0, best, j});
      }
    }
  }
  priority_diagonal_ = (priority_diagonal_ + 1) % n_;
}

void WavefrontAllocator::Reset() {
  priority_diagonal_ = 0;
  std::fill(vc_rr_.begin(), vc_rr_.end(), 0);
}

void WavefrontAllocator::SaveState(SnapshotWriter& w) const {
  w.I32(priority_diagonal_);
  w.VecI32(vc_rr_);
}

void WavefrontAllocator::LoadState(SnapshotReader& r) {
  priority_diagonal_ = r.I32();
  std::vector<int> rr = r.VecI32();
  VIXNOC_REQUIRE(rr.size() == vc_rr_.size(),
                 "restored wavefront VC pointers have %zu entries, expected "
                 "%zu",
                 rr.size(), vc_rr_.size());
  vc_rr_ = std::move(rr);
}

}  // namespace vixnoc
