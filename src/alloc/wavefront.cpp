#include "alloc/wavefront.hpp"
#include "common/error.hpp"
#include "snapshot/snapshot.hpp"

#include <algorithm>

namespace vixnoc {

WavefrontAllocator::WavefrontAllocator(const SwitchGeometry& g)
    : SwitchAllocator(g), n_(std::max(g.num_inports, g.num_outports)) {
  VIXNOC_CHECK(g.num_vins == 1);
  vc_rr_.assign(static_cast<std::size_t>(geom_.num_inports) *
                    geom_.num_outports,
                0);
  cell_vcs_.resize(static_cast<std::size_t>(geom_.num_inports) *
                   geom_.num_outports);
  row_free_.resize(static_cast<std::size_t>(n_));
  col_free_.resize(static_cast<std::size_t>(n_));
}

void WavefrontAllocator::Allocate(const std::vector<SaRequest>& requests,
                                  std::vector<SaGrant>* grants) {
  grants->clear();
  for (auto& v : cell_vcs_) v.clear();
  for (const SaRequest& r : requests) {
    cell_vcs_[static_cast<std::size_t>(r.in_port) * geom_.num_outports +
              r.out_port]
        .push_back(r.vc);
  }

  std::vector<bool>& row_free = row_free_;
  std::vector<bool>& col_free = col_free_;
  std::fill(row_free.begin(), row_free.end(), true);
  std::fill(col_free.begin(), col_free.end(), true);

  // Sweep all n diagonals starting at the rotating priority diagonal.
  for (int d = 0; d < n_; ++d) {
    const int diag = (priority_diagonal_ + d) % n_;
    for (int i = 0; i < n_; ++i) {
      const int j = (diag + i) % n_;
      if (i >= geom_.num_inports || j >= geom_.num_outports) continue;
      if (!row_free[i] || !col_free[j]) continue;
      const std::size_t cell =
          static_cast<std::size_t>(i) * geom_.num_outports + j;
      const auto& vcs = cell_vcs_[cell];
      if (vcs.empty()) continue;
      row_free[i] = false;
      col_free[j] = false;
      // Round-robin VC pick: smallest requesting vc >= pointer, wrapping.
      int& ptr = vc_rr_[cell];
      VcId best = kInvalidVc;
      for (VcId vc : vcs) {
        if (vc >= ptr && (best == kInvalidVc || vc < best)) best = vc;
      }
      if (best == kInvalidVc) {
        for (VcId vc : vcs) {
          if (best == kInvalidVc || vc < best) best = vc;
        }
      }
      ptr = (best + 1) % geom_.num_vcs;
      grants->push_back(SaGrant{i, 0, best, j});
    }
  }
  priority_diagonal_ = (priority_diagonal_ + 1) % n_;
}

void WavefrontAllocator::Reset() {
  priority_diagonal_ = 0;
  std::fill(vc_rr_.begin(), vc_rr_.end(), 0);
}

void WavefrontAllocator::SaveState(SnapshotWriter& w) const {
  w.I32(priority_diagonal_);
  w.VecI32(vc_rr_);
}

void WavefrontAllocator::LoadState(SnapshotReader& r) {
  priority_diagonal_ = r.I32();
  std::vector<int> rr = r.VecI32();
  VIXNOC_REQUIRE(rr.size() == vc_rr_.size(),
                 "restored wavefront VC pointers have %zu entries, expected "
                 "%zu",
                 rr.size(), vc_rr_.size());
  vc_rr_ = std::move(rr);
}

}  // namespace vixnoc
