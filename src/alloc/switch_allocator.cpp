#include "alloc/switch_allocator.hpp"

#include <set>

#include "common/error.hpp"

#include "alloc/augmenting_path.hpp"
#include "alloc/islip.hpp"
#include "alloc/packet_chaining.hpp"
#include "alloc/separable.hpp"
#include "alloc/serenade.hpp"
#include "alloc/sparoflo.hpp"
#include "alloc/wavefront.hpp"

namespace vixnoc {

bool GrantsAreLegal(const SwitchGeometry& geom,
                    const std::vector<SaRequest>& requests,
                    const std::vector<SaGrant>& grants) {
  std::set<std::pair<PortId, VcId>> req_index;
  std::set<std::tuple<PortId, VcId, PortId>> req_full;
  for (const SaRequest& r : requests) {
    req_index.emplace(r.in_port, r.vc);
    req_full.emplace(r.in_port, r.vc, r.out_port);
  }
  std::set<PortId> outs_used;
  std::set<std::pair<PortId, VinId>> xins_used;
  for (const SaGrant& g : grants) {
    if (g.in_port < 0 || g.in_port >= geom.num_inports) return false;
    if (g.out_port < 0 || g.out_port >= geom.num_outports) return false;
    if (g.vc < 0 || g.vc >= geom.num_vcs) return false;
    if (g.vin != geom.VinOfVc(g.vc)) return false;
    if (!req_full.count({g.in_port, g.vc, g.out_port})) return false;
    if (!outs_used.insert(g.out_port).second) return false;
    if (!xins_used.insert({g.in_port, g.vin}).second) return false;
  }
  return true;
}

int VirtualInputsForScheme(AllocScheme scheme, int num_vcs) {
  switch (scheme) {
    case AllocScheme::kVix:
      return 2;
    case AllocScheme::kVixIdeal:
      return num_vcs;
    default:
      return 1;
  }
}

std::unique_ptr<SwitchAllocator> MakeSwitchAllocator(AllocScheme scheme,
                                                     const SwitchGeometry& g,
                                                     ArbiterKind kind,
                                                     std::uint64_t seed) {
  VIXNOC_REQUIRE(g.Valid(),
                 "invalid switch geometry: %d inports, %d outports, %d VCs, "
                 "%d virtual inputs (need positive sizes and num_vcs "
                 "divisible by num_vins)",
                 g.num_inports, g.num_outports, g.num_vcs, g.num_vins);
  // kVix admits any sub-group count in [2, num_vcs] (1:k crossbars); every
  // other scheme has a fixed virtual-input geometry.
  if (scheme == AllocScheme::kVix) {
    VIXNOC_REQUIRE(g.num_vins >= 2 && g.num_vins <= g.num_vcs,
                   "%s requires virtual inputs in [2, num_vcs=%d], got %d",
                   ToString(scheme).c_str(), g.num_vcs, g.num_vins);
  } else {
    VIXNOC_REQUIRE(g.num_vins == VirtualInputsForScheme(scheme, g.num_vcs),
                   "%s requires %d virtual input(s) for %d VCs, got %d",
                   ToString(scheme).c_str(),
                   VirtualInputsForScheme(scheme, g.num_vcs), g.num_vcs,
                   g.num_vins);
  }
  switch (scheme) {
    case AllocScheme::kInputFirst:
    case AllocScheme::kVix:
    case AllocScheme::kVixIdeal:
      return std::make_unique<SeparableInputFirstAllocator>(g, kind);
    case AllocScheme::kWavefront:
      return std::make_unique<WavefrontAllocator>(g);
    case AllocScheme::kAugmentingPath:
      return std::make_unique<AugmentingPathAllocator>(g);
    case AllocScheme::kPacketChaining:
      return std::make_unique<PacketChainingAllocator>(g, kind);
    case AllocScheme::kIslip:
      return std::make_unique<IslipAllocator>(g);
    case AllocScheme::kSparoflo:
      return std::make_unique<SparofloAllocator>(g, kind);
    case AllocScheme::kSerenade:
      return std::make_unique<SerenadeAllocator>(g, seed);
  }
  VIXNOC_CHECK(false);
  return nullptr;
}

}  // namespace vixnoc
