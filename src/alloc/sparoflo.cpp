#include "alloc/sparoflo.hpp"
#include "common/error.hpp"
#include "snapshot/snapshot.hpp"

#include <algorithm>

namespace vixnoc {

SparofloAllocator::SparofloAllocator(const SwitchGeometry& g,
                                     ArbiterKind kind, int max_exposed)
    : SwitchAllocator(g), max_exposed_(max_exposed) {
  VIXNOC_CHECK(g.num_vins == 1);
  VIXNOC_CHECK(max_exposed >= 1);
  for (int p = 0; p < g.num_inports; ++p) {
    input_arbiters_.push_back(MakeArbiter(kind, g.num_vcs));
    conflict_arbiters_.push_back(MakeArbiter(kind, g.num_outports));
  }
  for (int o = 0; o < g.num_outports; ++o) {
    output_arbiters_.push_back(MakeArbiter(kind, g.num_inports * g.num_vcs));
  }
  const std::size_t port_vcs =
      static_cast<std::size_t>(g.num_inports) * g.num_vcs;
  out_of_.resize(port_vcs);
  exposed_.resize(port_vcs);
  candidate_.resize(g.num_vcs);
  out_taken_.resize(g.num_outports);
  req_scratch_.resize(port_vcs);
  by_port_.resize(g.num_inports);
  outs_.resize(g.num_outports);
}

void SparofloAllocator::Allocate(const std::vector<SaRequest>& requests,
                                 std::vector<SaGrant>* grants) {
  grants->clear();
  last_killed_grants_ = 0;
  const int ports = geom_.num_inports;
  const int vcs = geom_.num_vcs;

  // Index requests: out_of[port*vcs + vc] = requested output.
  std::vector<PortId>& out_of = out_of_;
  std::fill(out_of.begin(), out_of.end(), kInvalidPort);
  for (const SaRequest& r : requests) {
    out_of[static_cast<std::size_t>(r.in_port) * vcs + r.vc] = r.out_port;
  }

  // Phase 1: each input port exposes up to max_exposed_ VCs requesting
  // *distinct* outputs, chosen by repeated rotating arbitration.
  std::vector<bool>& exposed = exposed_;
  std::fill(exposed.begin(), exposed.end(), false);
  for (PortId p = 0; p < ports; ++p) {
    std::vector<bool>& candidate = candidate_;
    std::vector<bool>& out_taken = out_taken_;
    std::fill(out_taken.begin(), out_taken.end(), false);
    for (int round = 0; round < max_exposed_; ++round) {
      bool any = false;
      for (VcId c = 0; c < vcs; ++c) {
        const PortId out = out_of[static_cast<std::size_t>(p) * vcs + c];
        candidate[c] = out != kInvalidPort && !exposed[p * vcs + c] &&
                       !out_taken[out];
        any |= candidate[c];
      }
      if (!any) break;
      const int winner = input_arbiters_[p]->Pick(candidate);
      VIXNOC_DCHECK(winner >= 0);
      input_arbiters_[p]->Commit(winner);
      exposed[static_cast<std::size_t>(p) * vcs + winner] = true;
      out_taken[out_of[static_cast<std::size_t>(p) * vcs + winner]] = true;
    }
  }

  // Phase 2: output arbitration over all exposed requests.
  std::vector<Tentative>& tentative = tentative_;
  tentative.clear();
  std::vector<bool>& req_scratch = req_scratch_;
  for (PortId o = 0; o < geom_.num_outports; ++o) {
    bool any = false;
    for (PortId p = 0; p < ports; ++p) {
      for (VcId c = 0; c < vcs; ++c) {
        const std::size_t idx = static_cast<std::size_t>(p) * vcs + c;
        req_scratch[idx] = exposed[idx] && out_of[idx] == o;
        any |= req_scratch[idx];
      }
    }
    if (!any) continue;
    const int winner = output_arbiters_[o]->Pick(req_scratch);
    VIXNOC_DCHECK(winner >= 0);
    output_arbiters_[o]->Commit(winner);
    tentative.push_back(
        Tentative{static_cast<PortId>(winner / vcs),
                  static_cast<VcId>(winner % vcs), o});
  }

  // Phase 3: conflict detection. A port that won several outputs can use
  // only one crossbar input; the conflict arbiter keeps one grant and the
  // rest are killed (their outputs stay idle this cycle).
  std::vector<std::vector<Tentative>>& by_port = by_port_;
  for (auto& wins : by_port) wins.clear();
  for (const Tentative& t : tentative) by_port[t.in_port].push_back(t);
  for (PortId p = 0; p < ports; ++p) {
    auto& wins = by_port[p];
    if (wins.empty()) continue;
    if (wins.size() == 1) {
      grants->push_back(SaGrant{p, 0, wins[0].vc, wins[0].out_port});
      continue;
    }
    std::vector<bool>& outs = outs_;
    std::fill(outs.begin(), outs.end(), false);
    for (const Tentative& t : wins) outs[t.out_port] = true;
    const int keep_out = conflict_arbiters_[p]->Pick(outs);
    VIXNOC_DCHECK(keep_out >= 0);
    conflict_arbiters_[p]->Commit(keep_out);
    for (const Tentative& t : wins) {
      if (t.out_port == keep_out) {
        grants->push_back(SaGrant{p, 0, t.vc, t.out_port});
      } else {
        ++last_killed_grants_;
      }
    }
  }
}

void SparofloAllocator::Reset() {
  for (auto& a : input_arbiters_) a->Reset();
  for (auto& a : output_arbiters_) a->Reset();
  for (auto& a : conflict_arbiters_) a->Reset();
  last_killed_grants_ = 0;
}

void SparofloAllocator::SaveState(SnapshotWriter& w) const {
  for (const auto& a : input_arbiters_) a->SaveState(w);
  for (const auto& a : output_arbiters_) a->SaveState(w);
  for (const auto& a : conflict_arbiters_) a->SaveState(w);
  w.I32(last_killed_grants_);
}

void SparofloAllocator::LoadState(SnapshotReader& r) {
  for (auto& a : input_arbiters_) a->LoadState(r);
  for (auto& a : output_arbiters_) a->LoadState(r);
  for (auto& a : conflict_arbiters_) a->LoadState(r);
  last_killed_grants_ = r.I32();
}

}  // namespace vixnoc
