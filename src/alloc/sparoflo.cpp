#include "alloc/sparoflo.hpp"
#include "common/error.hpp"
#include "snapshot/snapshot.hpp"

#include <algorithm>

namespace vixnoc {

SparofloAllocator::SparofloAllocator(const SwitchGeometry& g,
                                     ArbiterKind kind, int max_exposed)
    : SwitchAllocator(g), max_exposed_(max_exposed) {
  VIXNOC_CHECK(g.num_vins == 1);
  VIXNOC_CHECK(max_exposed >= 1);
  for (int p = 0; p < g.num_inports; ++p) {
    input_arbiters_.push_back(MakeArbiter(kind, g.num_vcs));
    conflict_arbiters_.push_back(MakeArbiter(kind, g.num_outports));
  }
  for (int o = 0; o < g.num_outports; ++o) {
    output_arbiters_.push_back(MakeArbiter(kind, g.num_inports * g.num_vcs));
  }
  out_of_.resize(static_cast<std::size_t>(g.num_inports) * g.num_vcs);
  port_req_.Resize(g.num_inports, g.num_vcs);
  out_req_.Resize(g.num_outports, g.num_inports * g.num_vcs);
  candidate_.Resize(g.num_vcs);
  by_port_.resize(g.num_inports);
  outs_.Resize(g.num_outports);
}

void SparofloAllocator::Allocate(const std::vector<SaRequest>& requests,
                                 std::vector<SaGrant>* grants) {
  grants->clear();
  last_killed_grants_ = 0;
  const int vcs = geom_.num_vcs;

  // Index requests: out_of[port*vcs + vc] = requested output, with the
  // presence bit in port_req_ (so no sentinel fill of out_of_ is needed).
  port_req_.ClearDirty();
  out_req_.ClearDirty();
  for (const SaRequest& r : requests) {
    port_req_.Set(r.in_port, r.vc);
    out_of_[static_cast<std::size_t>(r.in_port) * vcs + r.vc] = r.out_port;
  }

  // Phase 1: each input port exposes up to max_exposed_ VCs requesting
  // *distinct* outputs, chosen by repeated rotating arbitration. The
  // candidate set starts as the port's request mask and shrinks as winners
  // are exposed and their outputs become taken.
  port_req_.DirtyRows().ForEach([&](int p) {
    candidate_.CopyFrom(port_req_.Row(p));
    for (int round = 0; round < max_exposed_; ++round) {
      if (!candidate_.Any()) break;
      const int winner = input_arbiters_[p]->Pick(candidate_);
      VIXNOC_DCHECK(winner >= 0);
      input_arbiters_[p]->Commit(winner);
      const PortId taken =
          out_of_[static_cast<std::size_t>(p) * vcs + winner];
      out_req_.Set(taken, p * vcs + winner);
      candidate_.Clear(winner);
      candidate_.ForEach([&](int c) {
        if (out_of_[static_cast<std::size_t>(p) * vcs + c] == taken) {
          candidate_.Clear(c);
        }
      });
    }
  });

  // Phase 2: output arbitration over all exposed requests.
  tentative_.clear();
  out_req_.DirtyRows().ForEach([&](int o) {
    const int winner = output_arbiters_[o]->Pick(out_req_.Row(o));
    VIXNOC_DCHECK(winner >= 0);
    output_arbiters_[o]->Commit(winner);
    tentative_.push_back(
        Tentative{static_cast<PortId>(winner / vcs),
                  static_cast<VcId>(winner % vcs), o});
  });

  // Phase 3: conflict detection. A port that won several outputs can use
  // only one crossbar input; the conflict arbiter keeps one grant and the
  // rest are killed (their outputs stay idle this cycle).
  for (auto& wins : by_port_) wins.clear();
  for (const Tentative& t : tentative_) by_port_[t.in_port].push_back(t);
  for (PortId p = 0; p < geom_.num_inports; ++p) {
    auto& wins = by_port_[p];
    if (wins.empty()) continue;
    if (wins.size() == 1) {
      grants->push_back(SaGrant{p, 0, wins[0].vc, wins[0].out_port});
      continue;
    }
    outs_.ClearAll();
    for (const Tentative& t : wins) outs_.Set(t.out_port);
    const int keep_out = conflict_arbiters_[p]->Pick(outs_);
    VIXNOC_DCHECK(keep_out >= 0);
    conflict_arbiters_[p]->Commit(keep_out);
    for (const Tentative& t : wins) {
      if (t.out_port == keep_out) {
        grants->push_back(SaGrant{p, 0, t.vc, t.out_port});
      } else {
        ++last_killed_grants_;
      }
    }
  }
}

void SparofloAllocator::Reset() {
  for (auto& a : input_arbiters_) a->Reset();
  for (auto& a : output_arbiters_) a->Reset();
  for (auto& a : conflict_arbiters_) a->Reset();
  last_killed_grants_ = 0;
}

void SparofloAllocator::SaveState(SnapshotWriter& w) const {
  for (const auto& a : input_arbiters_) a->SaveState(w);
  for (const auto& a : output_arbiters_) a->SaveState(w);
  for (const auto& a : conflict_arbiters_) a->SaveState(w);
  w.I32(last_killed_grants_);
}

void SparofloAllocator::LoadState(SnapshotReader& r) {
  for (auto& a : input_arbiters_) a->LoadState(r);
  for (auto& a : output_arbiters_) a->LoadState(r);
  for (auto& a : conflict_arbiters_) a->LoadState(r);
  last_killed_grants_ = r.I32();
}

}  // namespace vixnoc
