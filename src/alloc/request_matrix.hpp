// Word-parallel bit-set primitives for the allocation hot path.
//
// The switch allocators and arbiters operate on dense boolean vectors and
// matrices (request vectors, priority matrices, per-cell VC sets). Storing
// them one `uint64_t` word per 64 entries turns the inner scans — "first
// requester at or after the priority pointer", "any requester present",
// "how many competitors" — into ctz/popcount instructions over a handful of
// words instead of element-at-a-time loops.
//
// Three layers:
//
//   * `bits::` free functions over raw words (FirstSet, FirstSetFrom, ...).
//     All scans are ascending-index, so a masked scan visits exactly the
//     indices a scalar `for (i = 0; ...)` loop would visit, in the same
//     order — this is what keeps the bitmask kernels grant-for-grant
//     identical to the scalar reference implementations in tests/.
//   * `BitSpan` / `BitWords`: a non-owning view and an owning fixed-size
//     bit vector. `BitWords` guarantees the unused tail bits of the last
//     word are zero after every mutation, so scans never need a tail mask.
//   * `RequestMatrix`: a rows x cols bit matrix with dirty-row tracking.
//     Allocators rebuild their request state every cycle; clearing only the
//     rows touched last cycle makes the per-cycle reset O(active requests)
//     instead of O(rows x cols).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace vixnoc {

namespace bits {

inline constexpr int kWordBits = 64;

inline constexpr int WordCount(int nbits) {
  return (nbits + kWordBits - 1) / kWordBits;
}

/// Mask selecting the valid bits of the last word of an `nbits`-bit vector
/// (all ones when nbits is a multiple of 64).
inline constexpr std::uint64_t TailMask(int nbits) {
  const int rem = nbits % kWordBits;
  return rem == 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << rem) - 1;
}

/// Lowest set bit index in `words[0..nwords)`, or -1 when empty.
inline int FirstSet(const std::uint64_t* words, int nwords) {
  for (int w = 0; w < nwords; ++w) {
    if (words[w] != 0) {
      return w * kWordBits + std::countr_zero(words[w]);
    }
  }
  return -1;
}

/// Lowest set bit at index >= `start`, NOT wrapping; -1 when none.
inline int FirstSetAtOrAfter(const std::uint64_t* words, int nwords,
                             int start) {
  int w = start / kWordBits;
  if (w >= nwords) return -1;
  std::uint64_t cur = words[w] & (~std::uint64_t{0} << (start % kWordBits));
  while (true) {
    if (cur != 0) return w * kWordBits + std::countr_zero(cur);
    if (++w >= nwords) return -1;
    cur = words[w];
  }
}

/// Rotating-priority scan: lowest set bit at index >= `start`, wrapping to
/// the lowest set bit overall when nothing at or after `start` is set.
/// Returns -1 when no bit is set. Equivalent to the scalar loop
/// `for (off = 0; off < n; ++off) if (req[(start + off) % n]) ...`.
inline int FirstSetFrom(const std::uint64_t* words, int nwords, int start) {
  const int hi = FirstSetAtOrAfter(words, nwords, start);
  if (hi >= 0) return hi;
  return FirstSet(words, nwords);
}

/// FirstSet / FirstSetAtOrAfter / FirstSetFrom over the AND of two word
/// arrays, without materializing the intersection.
inline int FirstSetAnd(const std::uint64_t* a, const std::uint64_t* b,
                       int nwords) {
  for (int w = 0; w < nwords; ++w) {
    const std::uint64_t cur = a[w] & b[w];
    if (cur != 0) return w * kWordBits + std::countr_zero(cur);
  }
  return -1;
}

inline int FirstSetAtOrAfterAnd(const std::uint64_t* a,
                                const std::uint64_t* b, int nwords,
                                int start) {
  int w = start / kWordBits;
  if (w >= nwords) return -1;
  std::uint64_t cur =
      (a[w] & b[w]) & (~std::uint64_t{0} << (start % kWordBits));
  while (true) {
    if (cur != 0) return w * kWordBits + std::countr_zero(cur);
    if (++w >= nwords) return -1;
    cur = a[w] & b[w];
  }
}

inline int FirstSetFromAnd(const std::uint64_t* a, const std::uint64_t* b,
                           int nwords, int start) {
  const int hi = FirstSetAtOrAfterAnd(a, b, nwords, start);
  if (hi >= 0) return hi;
  return FirstSetAnd(a, b, nwords);
}

/// Lowest set bit of `a & ~b`, or -1 when empty.
inline int FirstSetAndNot(const std::uint64_t* a, const std::uint64_t* b,
                          int nwords) {
  for (int w = 0; w < nwords; ++w) {
    const std::uint64_t cur = a[w] & ~b[w];
    if (cur != 0) return w * kWordBits + std::countr_zero(cur);
  }
  return -1;
}

inline bool AnySet(const std::uint64_t* words, int nwords) {
  for (int w = 0; w < nwords; ++w) {
    if (words[w] != 0) return true;
  }
  return false;
}

inline int CountSet(const std::uint64_t* words, int nwords) {
  int count = 0;
  for (int w = 0; w < nwords; ++w) {
    count += std::popcount(words[w]);
  }
  return count;
}

/// Invoke `f(index)` for every set bit with lo <= index < hi, ascending.
template <typename F>
inline void ForEachSetInRange(const std::uint64_t* words, int lo, int hi,
                              F&& f) {
  if (lo >= hi) return;
  const int wlo = lo / kWordBits;
  const int whi = (hi - 1) / kWordBits;
  for (int w = wlo; w <= whi; ++w) {
    std::uint64_t cur = words[w];
    if (w == wlo) cur &= ~std::uint64_t{0} << (lo % kWordBits);
    if (w == whi) {
      const int rem = hi - w * kWordBits;
      if (rem < kWordBits) cur &= (std::uint64_t{1} << rem) - 1;
    }
    while (cur != 0) {
      f(w * kWordBits + std::countr_zero(cur));
      cur &= cur - 1;
    }
  }
}

/// Invoke `f(index)` for every set bit in ascending order.
template <typename F>
inline void ForEachSet(const std::uint64_t* words, int nwords, F&& f) {
  for (int w = 0; w < nwords; ++w) {
    std::uint64_t cur = words[w];
    while (cur != 0) {
      f(w * kWordBits + std::countr_zero(cur));
      cur &= cur - 1;
    }
  }
}

}  // namespace bits

/// Non-owning view of an `nbits`-bit vector whose tail bits are zero.
class BitSpan {
 public:
  BitSpan() = default;
  BitSpan(const std::uint64_t* words, int nbits)
      : words_(words), nbits_(nbits) {}

  int size() const { return nbits_; }
  const std::uint64_t* words() const { return words_; }
  int word_count() const { return bits::WordCount(nbits_); }

  bool Test(int i) const {
    VIXNOC_DCHECK(i >= 0 && i < nbits_);
    return (words_[i / bits::kWordBits] >>
            (i % bits::kWordBits)) & std::uint64_t{1};
  }
  bool Any() const { return bits::AnySet(words_, word_count()); }
  int Count() const { return bits::CountSet(words_, word_count()); }
  int First() const { return bits::FirstSet(words_, word_count()); }
  int FirstFrom(int start) const {
    return bits::FirstSetFrom(words_, word_count(), start);
  }
  int FirstAtOrAfter(int start) const {
    return bits::FirstSetAtOrAfter(words_, word_count(), start);
  }
  template <typename F>
  void ForEach(F&& f) const {
    bits::ForEachSet(words_, word_count(), static_cast<F&&>(f));
  }

 private:
  const std::uint64_t* words_ = nullptr;
  int nbits_ = 0;
};

/// Owning fixed-size bit vector. Tail bits of the last word stay zero.
class BitWords {
 public:
  BitWords() = default;
  explicit BitWords(int nbits) { Resize(nbits); }

  void Resize(int nbits) {
    VIXNOC_CHECK(nbits >= 0);
    nbits_ = nbits;
    words_.assign(static_cast<std::size_t>(bits::WordCount(nbits)), 0);
  }

  int size() const { return nbits_; }
  int word_count() const { return static_cast<int>(words_.size()); }
  std::uint64_t* data() { return words_.data(); }
  const std::uint64_t* data() const { return words_.data(); }
  BitSpan Span() const { return BitSpan(words_.data(), nbits_); }
  operator BitSpan() const { return Span(); }

  void Set(int i) {
    VIXNOC_DCHECK(i >= 0 && i < nbits_);
    words_[i / bits::kWordBits] |= std::uint64_t{1} << (i % bits::kWordBits);
  }
  void Clear(int i) {
    VIXNOC_DCHECK(i >= 0 && i < nbits_);
    words_[i / bits::kWordBits] &=
        ~(std::uint64_t{1} << (i % bits::kWordBits));
  }
  void Assign(int i, bool value) { value ? Set(i) : Clear(i); }
  bool Test(int i) const { return Span().Test(i); }

  void ClearAll() {
    for (std::uint64_t& w : words_) w = 0;
  }
  /// Copy the bits of an equally-sized span into this vector.
  void CopyFrom(BitSpan other) {
    VIXNOC_DCHECK(other.size() == nbits_);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] = other.words()[w];
    }
  }
  /// Set every bit in [0, size()); tail bits stay zero.
  void SetAll() {
    if (words_.empty()) return;
    for (std::uint64_t& w : words_) w = ~std::uint64_t{0};
    words_.back() = bits::TailMask(nbits_);
  }

  bool Any() const { return Span().Any(); }
  int Count() const { return Span().Count(); }
  int First() const { return Span().First(); }
  int FirstFrom(int start) const { return Span().FirstFrom(start); }
  template <typename F>
  void ForEach(F&& f) const {
    Span().ForEach(static_cast<F&&>(f));
  }

 private:
  int nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Dense rows x cols bit matrix with dirty-row tracking. Built for state
/// that is rebuilt from a (usually sparse) request list every cycle: `Set`
/// marks the row dirty, `ClearDirty` zeroes only the dirty rows, and
/// `DirtyRows` exposes the set of non-empty rows for ascending iteration.
class RequestMatrix {
 public:
  RequestMatrix() = default;
  RequestMatrix(int rows, int cols) { Resize(rows, cols); }

  void Resize(int rows, int cols) {
    VIXNOC_CHECK(rows >= 0 && cols >= 0);
    rows_ = rows;
    cols_ = cols;
    words_per_row_ = bits::WordCount(cols);
    words_.assign(
        static_cast<std::size_t>(rows) * words_per_row_, 0);
    dirty_.Resize(rows);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  void Set(int r, int c) {
    VIXNOC_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    words_[static_cast<std::size_t>(r) * words_per_row_ +
           c / bits::kWordBits] |=
        std::uint64_t{1} << (c % bits::kWordBits);
    dirty_.Set(r);
  }

  bool Test(int r, int c) const { return Row(r).Test(c); }

  BitSpan Row(int r) const {
    VIXNOC_DCHECK(r >= 0 && r < rows_);
    return BitSpan(
        words_.data() + static_cast<std::size_t>(r) * words_per_row_, cols_);
  }

  /// Rows that received at least one Set since the last ClearDirty.
  const BitWords& DirtyRows() const { return dirty_; }

  /// Zero every dirty row (and the dirty set). O(set bits), not O(rows).
  void ClearDirty() {
    dirty_.ForEach([this](int r) {
      std::uint64_t* row =
          words_.data() + static_cast<std::size_t>(r) * words_per_row_;
      for (int w = 0; w < words_per_row_; ++w) row[w] = 0;
    });
    dirty_.ClearAll();
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  int words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
  BitWords dirty_;
};

}  // namespace vixnoc
