#include "alloc/serenade.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/state_io.hpp"

namespace vixnoc {

namespace {

/// Index of the k-th (0-based) set bit of `row`. k must be < row.Count().
int SelectNthSet(BitSpan row, int k) {
  const std::uint64_t* words = row.words();
  for (int w = 0; w < row.word_count(); ++w) {
    const int pc = std::popcount(words[w]);
    if (k < pc) {
      std::uint64_t cur = words[w];
      while (k-- > 0) cur &= cur - 1;
      return w * bits::kWordBits + std::countr_zero(cur);
    }
    k -= pc;
  }
  VIXNOC_DCHECK(false);
  return -1;
}

}  // namespace

SerenadeAllocator::SerenadeAllocator(const SwitchGeometry& g,
                                     std::uint64_t seed)
    : SwitchAllocator(g), seed_(seed), rng_(seed) {
  VIXNOC_CHECK(g.num_vins == 1);
  prev_match_.assign(g.num_inports, -1);
  vc_rr_.assign(static_cast<std::size_t>(g.num_inports) * g.num_outports, 0);
  request_.Resize(g.num_inports, g.num_outports);
  cell_vc_.Resize(g.num_inports * g.num_outports, g.num_vcs);
  prop_in_.resize(g.num_inports);
  prop_out_.resize(g.num_outports);
  prop_w_.resize(g.num_outports);
  prev_out_.resize(g.num_outports);
  match_in_.resize(g.num_inports);
  in_seen_.resize(g.num_inports);
  out_seen_.resize(g.num_outports);
  comp_in_.reserve(g.num_inports);
  stack_.reserve(g.num_inports + g.num_outports);
}

int SerenadeAllocator::EdgeWeight(int in, int out) const {
  if (out < 0 || !request_.Test(in, out)) return 0;
  return cell_vc_.Row(in * geom_.num_outports + out).Count();
}

void SerenadeAllocator::Allocate(const std::vector<SaRequest>& requests,
                                 std::vector<SaGrant>* grants) {
  grants->clear();
  request_.ClearDirty();
  cell_vc_.ClearDirty();
  for (const SaRequest& r : requests) {
    request_.Set(r.in_port, r.out_port);
    cell_vc_.Set(r.in_port * geom_.num_outports + r.out_port, r.vc);
  }

  // Phase 1 — randomized proposal matching R. Every requesting input picks
  // one of its requested outputs uniformly at random (one RNG draw per
  // requesting input, ascending input order — the determinism contract);
  // each output accepts its heaviest proposer, earliest input on ties.
  std::fill(prop_in_.begin(), prop_in_.end(), -1);
  std::fill(prop_out_.begin(), prop_out_.end(), -1);
  std::fill(prop_w_.begin(), prop_w_.end(), 0);
  request_.DirtyRows().ForEach([&](int in) {
    const BitSpan row = request_.Row(in);
    const int count = row.Count();
    const int out = SelectNthSet(
        row, static_cast<int>(rng_.NextBounded(
                 static_cast<std::uint64_t>(count))));
    const int w = EdgeWeight(in, out);
    const int incumbent = prop_out_[out];
    if (incumbent == -1 || w > prop_w_[out]) {
      if (incumbent != -1) prop_in_[incumbent] = -1;
      prop_in_[in] = out;
      prop_out_[out] = in;
      prop_w_[out] = w;
    }
  });

  // Phase 2 — knot decomposition of P (previous matching) union R. Every
  // vertex has at most one P edge and one R edge, so the union splits into
  // alternating paths and even cycles; each knot keeps whichever side
  // weighs more, preferring the fresh proposal on ties so zero-weight
  // stale knots dissolve rather than persist.
  std::fill(prev_out_.begin(), prev_out_.end(), -1);
  for (int in = 0; in < geom_.num_inports; ++in) {
    if (prev_match_[in] != -1) prev_out_[prev_match_[in]] = in;
  }
  std::fill(match_in_.begin(), match_in_.end(), -1);
  std::fill(in_seen_.begin(), in_seen_.end(), 0);
  std::fill(out_seen_.begin(), out_seen_.end(), 0);
  for (int start = 0; start < geom_.num_inports; ++start) {
    if (in_seen_[start]) continue;
    comp_in_.clear();
    stack_.clear();
    stack_.push_back(start);
    in_seen_[start] = 1;
    while (!stack_.empty()) {
      const int v = stack_.back();
      stack_.pop_back();
      if (v >= 0) {
        comp_in_.push_back(v);
        for (const int out : {prev_match_[v], prop_in_[v]}) {
          if (out != -1 && !out_seen_[out]) {
            out_seen_[out] = 1;
            stack_.push_back(-(out + 1));
          }
        }
      } else {
        const int out = -v - 1;
        for (const int in : {prev_out_[out], prop_out_[out]}) {
          if (in != -1 && !in_seen_[in]) {
            in_seen_[in] = 1;
            stack_.push_back(in);
          }
        }
      }
    }
    int sum_p = 0;
    int sum_r = 0;
    for (const int in : comp_in_) {
      sum_p += EdgeWeight(in, prev_match_[in]);
      sum_r += EdgeWeight(in, prop_in_[in]);
    }
    const bool keep_r = sum_r >= sum_p;
    for (const int in : comp_in_) {
      const int out = keep_r ? prop_in_[in] : prev_match_[in];
      if (out != -1) match_in_[in] = out;
    }
  }
  prev_match_ = match_in_;

  // Phase 3 — grants for matched pairs with a live request; VC chosen by
  // the per-(in,out) round-robin pointer, same idiom as iSLIP/AP.
  for (int in = 0; in < geom_.num_inports; ++in) {
    const int out = match_in_[in];
    if (out == -1 || !request_.Test(in, out)) continue;
    const std::size_t cell =
        static_cast<std::size_t>(in) * geom_.num_outports + out;
    int& ptr = vc_rr_[cell];
    const VcId best = cell_vc_.Row(static_cast<int>(cell)).FirstFrom(ptr);
    VIXNOC_DCHECK(best >= 0);
    ptr = (best + 1) % geom_.num_vcs;
    grants->push_back(SaGrant{in, 0, best, out});
  }
}

void SerenadeAllocator::Reset() {
  std::fill(prev_match_.begin(), prev_match_.end(), -1);
  std::fill(vc_rr_.begin(), vc_rr_.end(), 0);
  rng_.Reseed(seed_);
}

void SerenadeAllocator::SaveState(SnapshotWriter& w) const {
  w.VecI32(prev_match_);
  w.VecI32(vc_rr_);
  SaveRng(w, rng_);
}

void SerenadeAllocator::LoadState(SnapshotReader& r) {
  std::vector<int> match = r.VecI32();
  std::vector<int> rr = r.VecI32();
  VIXNOC_REQUIRE(match.size() == prev_match_.size() &&
                     rr.size() == vc_rr_.size(),
                 "restored SERENADE state does not match this allocator's "
                 "geometry");
  for (const int out : match) {
    VIXNOC_REQUIRE(out >= -1 && out < geom_.num_outports,
                   "restored SERENADE matching names output %d outside "
                   "[0, %d)",
                   out, geom_.num_outports);
  }
  prev_match_ = std::move(match);
  vc_rr_ = std::move(rr);
  LoadRng(r, &rng_);
}

}  // namespace vixnoc
