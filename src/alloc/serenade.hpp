// SERENADE-style randomized matching allocator (extension; PAPERS.md:
// "SERENADE: A Parallel Randomized Algorithm Suite for Crossbar Scheduling
// in Input-Queued Switches", the O-SERENADE variant).
//
// SERENA/SERENADE schedule a crossbar by *merging* the previous cycle's
// matching with a fresh randomized proposal matching: the union of two
// matchings decomposes into disjoint alternating paths and even cycles
// ("knots"), and within each knot the heavier sub-matching wins. SERENADE's
// contribution is computing that decomposition with O(log N) parallel
// knotting rounds instead of an O(N) serial walk; in hardware every
// input/output pair resolves its knot by halving/doubling pointer jumps.
// This model computes the identical result centrally (a linear walk over
// each knot) — the *outcome* is what the simulation needs, the O(log N)
// depth is what the delay model (`SerenadeDelayPs`) charges for it.
//
// Determinism contract: all randomness comes from the per-instance `Rng`
// seeded at construction. Each cycle draws exactly one bounded variate per
// input port that presents at least one request, in ascending input-port
// order, so the stream is a pure function of (seed, request history) —
// independent of thread count or process placement. The stream is new in
// this PR; no pre-existing configuration consumes it (same rule as the
// fault subsystem's kRandomFree stream: existing seeds keep their
// historical sequences).
//
// Edge weights are the number of distinct VCs requesting the (input,
// output) pair this cycle — a VOQ-occupancy proxy available to the switch
// allocator without new router plumbing. Carried-over edges whose request
// disappeared weigh zero, so stale pairings lose to any live proposal and
// decay out of the matching.
#pragma once

#include <cstdint>

#include "alloc/request_matrix.hpp"
#include "alloc/switch_allocator.hpp"
#include "common/rng.hpp"

namespace vixnoc {

class SerenadeAllocator final : public SwitchAllocator {
 public:
  SerenadeAllocator(const SwitchGeometry& g, std::uint64_t seed);

  void Allocate(const std::vector<SaRequest>& requests,
                std::vector<SaGrant>* grants) override;
  void Reset() override;
  void SaveState(SnapshotWriter& w) const override;
  void LoadState(SnapshotReader& r) override;
  std::string Name() const override { return "serenade"; }

 private:
  /// Live weight of edge (in, out): distinct requesting VCs, 0 if the pair
  /// has no request this cycle.
  int EdgeWeight(int in, int out) const;

  std::uint64_t seed_;
  Rng rng_;
  // Persistent across cycles (checkpointed).
  std::vector<int> prev_match_;  // input -> output carried over (-1 free)
  std::vector<int> vc_rr_;       // per (in,out): VC round-robin pointer
  // Per-cycle scratch, dirty-row cleared / refilled every Allocate.
  RequestMatrix request_;   // row in: requested output bits
  RequestMatrix cell_vc_;   // row (in * num_outports + out): requesting VCs
  std::vector<int> prop_in_;    // proposal matching, input -> output
  std::vector<int> prop_out_;   // proposal matching, output -> input
  std::vector<int> prop_w_;     // per output: weight of accepted proposal
  std::vector<int> prev_out_;   // inverse of prev_match_
  std::vector<int> match_in_;   // merged matching under construction
  std::vector<signed char> in_seen_, out_seen_;  // knot-walk visited flags
  std::vector<int> comp_in_;    // inputs of the knot being walked
  std::vector<int> stack_;      // DFS stack: input i encoded i, output o
                                // encoded -(o + 1)
};

}  // namespace vixnoc
