// Maximum-matching switch allocator via augmenting paths (paper's "AP"
// scheme; Ford & Fulkerson [8]).
//
// The port-level request matrix defines a bipartite graph between input and
// output ports. Kuhn's algorithm seeds a greedy matching in fixed input-port
// order and then augments it with DFS paths until no augmenting path exists,
// which yields a matching of maximum cardinality — the paper's definition of
// optimal *matching* (but not optimal *allocation*: the one-crossbar-input-
// per-port constraint still applies).
//
// Determinism is intentional and faithful: the paper attributes AP's poor
// network-level behaviour (Fig 8, Fig 9) to its locally-greedy decisions
// causing severe unfairness; a fixed exploration order is exactly what a
// combinational maximum-matching circuit would commit to every cycle.
// VC selection within a matched pair uses per-pair round-robin so VCs of a
// port cannot starve each other.
#pragma once

#include "alloc/request_matrix.hpp"
#include "alloc/switch_allocator.hpp"

namespace vixnoc {

class AugmentingPathAllocator final : public SwitchAllocator {
 public:
  /// `rotate_vcs`: when true, VC selection within a matched (input, output)
  /// pair round-robins so VCs of a port cannot starve each other; when
  /// false the allocator is fully combinational-deterministic (lowest VC
  /// wins), matching a hardware maximum-matching circuit with no fairness
  /// state at all.
  explicit AugmentingPathAllocator(const SwitchGeometry& g,
                                   bool rotate_vcs = true);

  void Allocate(const std::vector<SaRequest>& requests,
                std::vector<SaGrant>* grants) override;
  void Reset() override;
  void SaveState(SnapshotWriter& w) const override;
  void LoadState(SnapshotReader& r) override;
  std::string Name() const override { return "augmenting-path"; }

  /// Number of augmenting-path iterations executed on the last Allocate
  /// call; exposed for the timing model (AP delay grows with iterations).
  int last_iterations() const { return last_iterations_; }

  /// Upper bound on DFS probes per Allocate call. Kuhn's algorithm is
  /// worst-case P augmentations x P^2 probes each, so the default
  /// (P^3 + P^2) can never trip on a correct run; lowering it turns a
  /// pathological large-radix blow-up into a recoverable SimError instead
  /// of an apparent hang wedging a sweep point. Must be positive.
  void set_work_limit(std::int64_t limit);
  std::int64_t work_limit() const { return work_limit_; }

 private:
  bool TryAugment(int in);

  bool rotate_vcs_;
  std::int64_t work_limit_ = 0;

  // request_ row `in`: bit `out` set if any VC at `in` requests `out`.
  RequestMatrix request_;
  std::vector<int> match_of_out_;  // output -> matched input (-1 free)
  std::vector<int> match_of_in_;   // input -> matched output (-1 free)
  std::vector<int> vc_rr_;         // per (in,out) vc round-robin pointer
  RequestMatrix cell_vc_;  // row (in * num_outports + out): requesting VCs
  BitWords visited_;       // per-augment DFS scratch, num_outports bits
  int last_iterations_ = 0;
};

}  // namespace vixnoc
