#include "alloc/augmenting_path.hpp"
#include "common/error.hpp"
#include "snapshot/snapshot.hpp"

#include <algorithm>

namespace vixnoc {

AugmentingPathAllocator::AugmentingPathAllocator(const SwitchGeometry& g,
                                                 bool rotate_vcs)
    : SwitchAllocator(g), rotate_vcs_(rotate_vcs) {
  VIXNOC_CHECK(g.num_vins == 1);
  request_.assign(
      static_cast<std::size_t>(g.num_inports) * g.num_outports, false);
  match_of_out_.assign(g.num_outports, -1);
  match_of_in_.assign(g.num_inports, -1);
  vc_rr_.assign(static_cast<std::size_t>(g.num_inports) * g.num_outports, 0);
  cell_vcs_.resize(static_cast<std::size_t>(g.num_inports) * g.num_outports);
  visited_.resize(static_cast<std::size_t>(g.num_outports));
}

bool AugmentingPathAllocator::TryAugment(int in, std::vector<bool>* visited) {
  for (int out = 0; out < geom_.num_outports; ++out) {
    if (!request_[static_cast<std::size_t>(in) * geom_.num_outports + out] ||
        (*visited)[out]) {
      continue;
    }
    (*visited)[out] = true;
    ++last_iterations_;
    if (match_of_out_[out] == -1 ||
        TryAugment(match_of_out_[out], visited)) {
      match_of_out_[out] = in;
      match_of_in_[in] = out;
      return true;
    }
  }
  return false;
}

void AugmentingPathAllocator::Allocate(const std::vector<SaRequest>& requests,
                                       std::vector<SaGrant>* grants) {
  grants->clear();
  last_iterations_ = 0;
  std::fill(request_.begin(), request_.end(), false);
  std::fill(match_of_out_.begin(), match_of_out_.end(), -1);
  std::fill(match_of_in_.begin(), match_of_in_.end(), -1);
  for (auto& v : cell_vcs_) v.clear();

  for (const SaRequest& r : requests) {
    const std::size_t cell =
        static_cast<std::size_t>(r.in_port) * geom_.num_outports + r.out_port;
    request_[cell] = true;
    cell_vcs_[cell].push_back(r.vc);
  }

  // Kuhn's algorithm: process inputs in fixed ascending order.
  for (int in = 0; in < geom_.num_inports; ++in) {
    std::fill(visited_.begin(), visited_.end(), false);
    TryAugment(in, &visited_);
  }

  for (int in = 0; in < geom_.num_inports; ++in) {
    const int out = match_of_in_[in];
    if (out == -1) continue;
    const std::size_t cell =
        static_cast<std::size_t>(in) * geom_.num_outports + out;
    const auto& vcs = cell_vcs_[cell];
    VIXNOC_DCHECK(!vcs.empty());
    int& ptr = vc_rr_[cell];
    VcId best = kInvalidVc;
    if (rotate_vcs_) {
      for (VcId vc : vcs) {
        if (vc >= ptr && (best == kInvalidVc || vc < best)) best = vc;
      }
    }
    if (best == kInvalidVc) {
      for (VcId vc : vcs) {
        if (best == kInvalidVc || vc < best) best = vc;
      }
    }
    ptr = (best + 1) % geom_.num_vcs;
    grants->push_back(SaGrant{in, 0, best, out});
  }
}

void AugmentingPathAllocator::Reset() {
  std::fill(vc_rr_.begin(), vc_rr_.end(), 0);
  last_iterations_ = 0;
}

void AugmentingPathAllocator::SaveState(SnapshotWriter& w) const {
  w.VecI32(vc_rr_);
  w.I32(last_iterations_);
}

void AugmentingPathAllocator::LoadState(SnapshotReader& r) {
  std::vector<int> rr = r.VecI32();
  VIXNOC_REQUIRE(rr.size() == vc_rr_.size(),
                 "restored AP VC pointers have %zu entries, expected %zu",
                 rr.size(), vc_rr_.size());
  vc_rr_ = std::move(rr);
  last_iterations_ = r.I32();
}

}  // namespace vixnoc
