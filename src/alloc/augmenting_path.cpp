#include "alloc/augmenting_path.hpp"
#include "common/error.hpp"
#include "snapshot/snapshot.hpp"

#include <algorithm>

namespace vixnoc {

AugmentingPathAllocator::AugmentingPathAllocator(const SwitchGeometry& g,
                                                 bool rotate_vcs)
    : SwitchAllocator(g), rotate_vcs_(rotate_vcs) {
  VIXNOC_CHECK(g.num_vins == 1);
  request_.Resize(g.num_inports, g.num_outports);
  match_of_out_.assign(g.num_outports, -1);
  match_of_in_.assign(g.num_inports, -1);
  vc_rr_.assign(static_cast<std::size_t>(g.num_inports) * g.num_outports, 0);
  cell_vc_.Resize(g.num_inports * g.num_outports, g.num_vcs);
  visited_.Resize(g.num_outports);
  const std::int64_t p = std::max(g.num_inports, g.num_outports);
  work_limit_ = p * p * (p + 1);
}

void AugmentingPathAllocator::set_work_limit(std::int64_t limit) {
  VIXNOC_CHECK(limit > 0);
  work_limit_ = limit;
}

bool AugmentingPathAllocator::TryAugment(int in) {
  // DFS over this input's requested outputs in ascending order, skipping
  // outputs already visited on this augmenting path. The visited mask can
  // gain bits during the recursive call, so re-AND against it after every
  // probe rather than snapshotting the row once.
  const std::uint64_t* row = request_.Row(in).words();
  const std::uint64_t* seen = visited_.data();
  const int nwords = visited_.word_count();
  while (true) {
    const int out = bits::FirstSetAndNot(row, seen, nwords);
    if (out < 0) return false;
    visited_.Set(out);
    ++last_iterations_;
    VIXNOC_REQUIRE(last_iterations_ <= work_limit_,
                   "augmenting-path allocator exceeded its work bound "
                   "(%d probes, limit %lld) on a %dx%d switch",
                   last_iterations_,
                   static_cast<long long>(work_limit_),
                   geom_.num_inports, geom_.num_outports);
    if (match_of_out_[out] == -1 || TryAugment(match_of_out_[out])) {
      match_of_out_[out] = in;
      match_of_in_[in] = out;
      return true;
    }
  }
}

void AugmentingPathAllocator::Allocate(const std::vector<SaRequest>& requests,
                                       std::vector<SaGrant>* grants) {
  grants->clear();
  last_iterations_ = 0;
  std::fill(match_of_out_.begin(), match_of_out_.end(), -1);
  std::fill(match_of_in_.begin(), match_of_in_.end(), -1);
  request_.ClearDirty();
  cell_vc_.ClearDirty();

  for (const SaRequest& r : requests) {
    request_.Set(r.in_port, r.out_port);
    cell_vc_.Set(r.in_port * geom_.num_outports + r.out_port, r.vc);
  }

  // Kuhn's algorithm: process inputs in fixed ascending order. Inputs with
  // no requests cannot augment, so only dirty rows are visited.
  request_.DirtyRows().ForEach([&](int in) {
    visited_.ClearAll();
    TryAugment(in);
  });

  for (int in = 0; in < geom_.num_inports; ++in) {
    const int out = match_of_in_[in];
    if (out == -1) continue;
    const std::size_t cell =
        static_cast<std::size_t>(in) * geom_.num_outports + out;
    const BitSpan vcs = cell_vc_.Row(static_cast<int>(cell));
    int& ptr = vc_rr_[cell];
    const VcId best = rotate_vcs_ ? vcs.FirstFrom(ptr) : vcs.First();
    VIXNOC_DCHECK(best >= 0);
    ptr = (best + 1) % geom_.num_vcs;
    grants->push_back(SaGrant{in, 0, best, out});
  }
}

void AugmentingPathAllocator::Reset() {
  std::fill(vc_rr_.begin(), vc_rr_.end(), 0);
  last_iterations_ = 0;
}

void AugmentingPathAllocator::SaveState(SnapshotWriter& w) const {
  w.VecI32(vc_rr_);
  w.I32(last_iterations_);
}

void AugmentingPathAllocator::LoadState(SnapshotReader& r) {
  std::vector<int> rr = r.VecI32();
  VIXNOC_REQUIRE(rr.size() == vc_rr_.size(),
                 "restored AP VC pointers have %zu entries, expected %zu",
                 rr.size(), vc_rr_.size());
  vc_rr_ = std::move(rr);
  last_iterations_ = r.I32();
}

}  // namespace vixnoc
