// Packet Chaining allocator, SameInput/anyVC scheme (Michelogiannakis et
// al., MICRO-44 [15]; paper §4.4).
//
// The allocator remembers last cycle's granted (input port -> output port)
// connections. At the start of a cycle, every remembered connection whose
// input port still has *any* VC requesting the same output port is renewed
// without arbitration ("chained"). Chained input and output ports are then
// masked out of a conventional separable input-first pass that allocates the
// remaining ports. Newly formed grants seed next cycle's chains.
//
// By eliminating requests from the matrix, chaining reduces the chance that
// independent input arbiters collide on one output — the "elimination"
// strategy the paper contrasts with VIX's "exposure" strategy.
#pragma once

#include "alloc/separable.hpp"
#include "alloc/switch_allocator.hpp"

namespace vixnoc {

class PacketChainingAllocator final : public SwitchAllocator {
 public:
  PacketChainingAllocator(const SwitchGeometry& g, ArbiterKind kind);

  void Allocate(const std::vector<SaRequest>& requests,
                std::vector<SaGrant>* grants) override;
  void Reset() override;
  void SaveState(SnapshotWriter& w) const override;
  void LoadState(SnapshotReader& r) override;
  std::string Name() const override { return "packet-chaining"; }

  /// Grants made by renewing a previous-cycle connection (diagnostics).
  std::uint64_t chained_grants() const { return chained_grants_; }

 private:
  // chain_[out] = input port chained to this output last cycle, or -1.
  std::vector<int> chain_;
  // Per (in,out) round-robin over VCs continuing a chain.
  std::vector<int> chain_vc_rr_;
  SeparableInputFirstAllocator separable_;
  std::vector<SaRequest> residual_requests_;
  std::vector<SaGrant> residual_grants_;
  std::uint64_t chained_grants_ = 0;
};

}  // namespace vixnoc
