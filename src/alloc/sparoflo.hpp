// SPAROFLO-style allocator (Kumar et al., ICCD'07; paper §5 related work).
//
// Like VIX, SPAROFLO exposes more than one request per input port to the
// output arbiters. Unlike VIX there are no extra crossbar inputs, so when
// two of a port's exposed requests both win their output arbiters, only
// one can actually traverse — the other grant is killed *after* output
// arbitration, leaving that output idle for the cycle. The paper argues
// this post-arbitration conflict is what limits SPAROFLO relative to VIX;
// this implementation exists to make that comparison measurable.
//
// Exposure policy: each input port exposes up to `max_exposed` requests to
// distinct output ports (the published design varies this with load; a
// fixed budget of 2 matches the regime where SPAROFLO is most effective
// and mirrors VIX's two virtual inputs). Older-request prioritization is
// approximated by the rotating input arbiter.
#pragma once

#include "alloc/request_matrix.hpp"
#include "alloc/switch_allocator.hpp"

namespace vixnoc {

class SparofloAllocator final : public SwitchAllocator {
 public:
  SparofloAllocator(const SwitchGeometry& g, ArbiterKind kind,
                    int max_exposed = 2);

  void Allocate(const std::vector<SaRequest>& requests,
                std::vector<SaGrant>* grants) override;
  void Reset() override;
  void SaveState(SnapshotWriter& w) const override;
  void LoadState(SnapshotReader& r) override;
  std::string Name() const override { return "sparoflo"; }

  /// Output grants killed by the one-crossbar-input-per-port constraint on
  /// the last Allocate call (the mechanism VIX removes).
  int last_killed_grants() const { return last_killed_grants_; }

 private:
  struct Tentative {
    PortId in_port;
    VcId vc;
    PortId out_port;
  };

  int max_exposed_;
  std::vector<std::unique_ptr<Arbiter>> input_arbiters_;   // per port
  std::vector<std::unique_ptr<Arbiter>> output_arbiters_;  // per out port
  std::vector<std::unique_ptr<Arbiter>> conflict_arbiters_;  // per in port
  int last_killed_grants_ = 0;

  // Per-cycle scratch, sized once at construction. out_of_ entries are
  // valid only where port_req_ has the request bit set.
  std::vector<PortId> out_of_;        // (port, vc) -> requested output
  RequestMatrix port_req_;   // row port: requesting VC bits
  RequestMatrix out_req_;    // row out: exposed (port * vcs + vc) bits
  BitWords candidate_;       // per-VC exposure candidates
  std::vector<Tentative> tentative_;  // phase-2 winners
  std::vector<std::vector<Tentative>> by_port_;  // phase-3 grouping
  BitWords outs_;            // conflict-arbiter request vector
};

}  // namespace vixnoc
