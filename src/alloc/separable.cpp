#include "alloc/separable.hpp"
#include "common/error.hpp"
#include "snapshot/snapshot.hpp"

#include <algorithm>

namespace vixnoc {

SeparableInputFirstAllocator::SeparableInputFirstAllocator(
    const SwitchGeometry& g, ArbiterKind kind, bool update_on_grant_only)
    : SwitchAllocator(g), update_on_grant_only_(update_on_grant_only) {
  input_arbiters_.reserve(g.NumCrossbarInputs());
  for (int i = 0; i < g.NumCrossbarInputs(); ++i) {
    input_arbiters_.push_back(MakeArbiter(kind, g.VcsPerVin()));
  }
  output_arbiters_.reserve(g.num_outports);
  for (int o = 0; o < g.num_outports; ++o) {
    output_arbiters_.push_back(MakeArbiter(kind, g.NumCrossbarInputs()));
  }
  vc_request_scratch_.resize(g.VcsPerVin());
  phase1_vc_.resize(g.NumCrossbarInputs());
  phase1_out_.resize(g.NumCrossbarInputs());
  out_request_scratch_.resize(g.NumCrossbarInputs());
  out_port_of_.resize(static_cast<std::size_t>(g.NumCrossbarInputs()) *
                      g.VcsPerVin());
}

void SeparableInputFirstAllocator::Allocate(
    const std::vector<SaRequest>& requests, std::vector<SaGrant>* grants) {
  grants->clear();
  const int xin_count = geom_.NumCrossbarInputs();
  const int vpv = geom_.VcsPerVin();

  // Index requests by (crossbar input, vc-within-vin) for phase 1.
  // out_port_of_[xin * vpv + sub_vc] = requested output, or kInvalidPort.
  // A flat scratch sized P*k*vpv = P*v.
  std::vector<PortId>& out_port_of = out_port_of_;
  std::fill(out_port_of.begin(), out_port_of.end(), kInvalidPort);
  for (const SaRequest& r : requests) {
    VIXNOC_DCHECK(r.in_port >= 0 && r.in_port < geom_.num_inports);
    VIXNOC_DCHECK(r.vc >= 0 && r.vc < geom_.num_vcs);
    VIXNOC_DCHECK(r.out_port >= 0 && r.out_port < geom_.num_outports);
    const VinId vin = geom_.VinOfVc(r.vc);
    const int xin = r.in_port * geom_.num_vins + vin;
    const int sub = geom_.SubIndexOfVc(r.vc);
    VIXNOC_DCHECK(out_port_of[static_cast<std::size_t>(xin) * vpv + sub] ==
                  kInvalidPort);
    out_port_of[static_cast<std::size_t>(xin) * vpv + sub] = r.out_port;
  }

  // Phase 1: each crossbar input's arbiter picks one requesting VC.
  for (int xin = 0; xin < xin_count; ++xin) {
    bool any = false;
    int req_count = 0;
    for (int sub = 0; sub < vpv; ++sub) {
      const bool req =
          out_port_of[static_cast<std::size_t>(xin) * vpv + sub] !=
          kInvalidPort;
      vc_request_scratch_[sub] = req;
      any |= req;
      req_count += req ? 1 : 0;
    }
    if (telemetry_ != nullptr) {
      telemetry_->input_requests[xin] += static_cast<std::uint64_t>(req_count);
    }
    if (!any) {
      phase1_vc_[xin] = -1;
      continue;
    }
    const int sub = input_arbiters_[xin]->Pick(vc_request_scratch_);
    VIXNOC_DCHECK(sub >= 0);
    phase1_vc_[xin] = sub;
    phase1_out_[xin] = out_port_of[static_cast<std::size_t>(xin) * vpv + sub];
    if (!update_on_grant_only_) {
      input_arbiters_[xin]->Commit(sub);
    }
  }

  // Phase 2: each output arbiter picks one crossbar input among phase-1
  // winners requesting it.
  bool any_output_conflict = false;
  for (PortId o = 0; o < geom_.num_outports; ++o) {
    bool any = false;
    int competitor_count = 0;
    for (int xin = 0; xin < xin_count; ++xin) {
      const bool req = phase1_vc_[xin] >= 0 && phase1_out_[xin] == o;
      out_request_scratch_[xin] = req;
      any |= req;
      competitor_count += req ? 1 : 0;
    }
    if (!any) continue;
    if (telemetry_ != nullptr) {
      telemetry_->output_requests[o] +=
          static_cast<std::uint64_t>(competitor_count);
      any_output_conflict |= competitor_count >= 2;
    }
    const int xin = output_arbiters_[o]->Pick(out_request_scratch_);
    VIXNOC_DCHECK(xin >= 0);
    output_arbiters_[o]->Commit(xin);
    const int sub = phase1_vc_[xin];
    if (update_on_grant_only_) {
      input_arbiters_[xin]->Commit(sub);
    }
    if (telemetry_ != nullptr) {
      ++telemetry_->input_grants[xin];
      ++telemetry_->output_grants[o];
    }
    SaGrant grant;
    grant.in_port = xin / geom_.num_vins;
    grant.vin = xin % geom_.num_vins;
    grant.vc = geom_.VcOf(grant.vin, sub);
    grant.out_port = o;
    grants->push_back(grant);
  }
  if (telemetry_ != nullptr && any_output_conflict) {
    ++telemetry_->output_conflict_cycles;
  }
}

void SeparableInputFirstAllocator::Reset() {
  for (auto& a : input_arbiters_) a->Reset();
  for (auto& a : output_arbiters_) a->Reset();
}

std::string SeparableInputFirstAllocator::Name() const {
  if (geom_.num_vins == 1) return "separable-input-first";
  if (geom_.num_vins == geom_.num_vcs) return "separable-vix-ideal";
  return "separable-vix-" + std::to_string(geom_.num_vins);
}

void SeparableInputFirstAllocator::SaveState(SnapshotWriter& w) const {
  for (const auto& a : input_arbiters_) a->SaveState(w);
  for (const auto& a : output_arbiters_) a->SaveState(w);
}

void SeparableInputFirstAllocator::LoadState(SnapshotReader& r) {
  for (auto& a : input_arbiters_) a->LoadState(r);
  for (auto& a : output_arbiters_) a->LoadState(r);
}

}  // namespace vixnoc
