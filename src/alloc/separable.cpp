#include "alloc/separable.hpp"
#include "common/error.hpp"
#include "snapshot/snapshot.hpp"

namespace vixnoc {

SeparableInputFirstAllocator::SeparableInputFirstAllocator(
    const SwitchGeometry& g, ArbiterKind kind, bool update_on_grant_only)
    : SwitchAllocator(g), update_on_grant_only_(update_on_grant_only) {
  input_arbiters_.reserve(g.NumCrossbarInputs());
  for (int i = 0; i < g.NumCrossbarInputs(); ++i) {
    input_arbiters_.push_back(MakeArbiter(kind, g.VcsPerVin()));
  }
  output_arbiters_.reserve(g.num_outports);
  for (int o = 0; o < g.num_outports; ++o) {
    output_arbiters_.push_back(MakeArbiter(kind, g.NumCrossbarInputs()));
  }
  vc_req_.Resize(g.NumCrossbarInputs(), g.VcsPerVin());
  out_req_.Resize(g.num_outports, g.NumCrossbarInputs());
  phase1_vc_.resize(g.NumCrossbarInputs());
  out_port_of_.resize(static_cast<std::size_t>(g.NumCrossbarInputs()) *
                      g.VcsPerVin());
}

void SeparableInputFirstAllocator::Allocate(
    const std::vector<SaRequest>& requests, std::vector<SaGrant>* grants) {
  grants->clear();
  const int vpv = geom_.VcsPerVin();

  // Index requests by (crossbar input, vc-within-vin) for phase 1. Only the
  // rows touched last cycle need clearing; out_port_of_ entries are read
  // only under a set request bit, so they never need a sentinel fill.
  vc_req_.ClearDirty();
  out_req_.ClearDirty();
  for (const SaRequest& r : requests) {
    VIXNOC_DCHECK(r.in_port >= 0 && r.in_port < geom_.num_inports);
    VIXNOC_DCHECK(r.vc >= 0 && r.vc < geom_.num_vcs);
    VIXNOC_DCHECK(r.out_port >= 0 && r.out_port < geom_.num_outports);
    const VinId vin = geom_.VinOfVc(r.vc);
    const int xin = r.in_port * geom_.num_vins + vin;
    const int sub = geom_.SubIndexOfVc(r.vc);
    VIXNOC_DCHECK(!vc_req_.Test(xin, sub));
    vc_req_.Set(xin, sub);
    out_port_of_[static_cast<std::size_t>(xin) * vpv + sub] = r.out_port;
  }

  // Phase 1: each requesting crossbar input's arbiter picks one VC. Dirty
  // rows are exactly the xins with at least one request, visited ascending
  // like the original full scan (empty xins contributed nothing there).
  vc_req_.DirtyRows().ForEach([&](int xin) {
    const BitSpan row = vc_req_.Row(xin);
    if (telemetry_ != nullptr) {
      telemetry_->input_requests[xin] +=
          static_cast<std::uint64_t>(row.Count());
    }
    const int sub = input_arbiters_[xin]->Pick(row);
    VIXNOC_DCHECK(sub >= 0);
    phase1_vc_[xin] = sub;
    if (!update_on_grant_only_) {
      input_arbiters_[xin]->Commit(sub);
    }
    out_req_.Set(out_port_of_[static_cast<std::size_t>(xin) * vpv + sub],
                 xin);
  });

  // Phase 2: each requested output's arbiter picks one crossbar input among
  // phase-1 winners.
  bool any_output_conflict = false;
  out_req_.DirtyRows().ForEach([&](int o) {
    const BitSpan row = out_req_.Row(o);
    if (telemetry_ != nullptr) {
      const int competitor_count = row.Count();
      telemetry_->output_requests[o] +=
          static_cast<std::uint64_t>(competitor_count);
      any_output_conflict |= competitor_count >= 2;
    }
    const int xin = output_arbiters_[o]->Pick(row);
    VIXNOC_DCHECK(xin >= 0);
    output_arbiters_[o]->Commit(xin);
    const int sub = phase1_vc_[xin];
    if (update_on_grant_only_) {
      input_arbiters_[xin]->Commit(sub);
    }
    if (telemetry_ != nullptr) {
      ++telemetry_->input_grants[xin];
      ++telemetry_->output_grants[o];
    }
    SaGrant grant;
    grant.in_port = xin / geom_.num_vins;
    grant.vin = xin % geom_.num_vins;
    grant.vc = geom_.VcOf(grant.vin, sub);
    grant.out_port = o;
    grants->push_back(grant);
  });
  if (telemetry_ != nullptr && any_output_conflict) {
    ++telemetry_->output_conflict_cycles;
  }
}

void SeparableInputFirstAllocator::Reset() {
  for (auto& a : input_arbiters_) a->Reset();
  for (auto& a : output_arbiters_) a->Reset();
}

std::string SeparableInputFirstAllocator::Name() const {
  if (geom_.num_vins == 1) return "separable-input-first";
  if (geom_.num_vins == geom_.num_vcs) return "separable-vix-ideal";
  return "separable-vix-" + std::to_string(geom_.num_vins);
}

void SeparableInputFirstAllocator::SaveState(SnapshotWriter& w) const {
  for (const auto& a : input_arbiters_) a->SaveState(w);
  for (const auto& a : output_arbiters_) a->SaveState(w);
}

void SeparableInputFirstAllocator::LoadState(SnapshotReader& r) {
  for (auto& a : input_arbiters_) a->LoadState(r);
  for (auto& a : output_arbiters_) a->LoadState(r);
}

}  // namespace vixnoc
