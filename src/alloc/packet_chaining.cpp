#include "alloc/packet_chaining.hpp"
#include "common/error.hpp"
#include "snapshot/snapshot.hpp"

#include <algorithm>

namespace vixnoc {

PacketChainingAllocator::PacketChainingAllocator(const SwitchGeometry& g,
                                                 ArbiterKind kind)
    : SwitchAllocator(g),
      chain_(g.num_outports, -1),
      chain_vc_rr_(static_cast<std::size_t>(g.num_inports) * g.num_outports,
                   0),
      separable_(g, kind) {
  VIXNOC_CHECK(g.num_vins == 1);
}

void PacketChainingAllocator::Allocate(const std::vector<SaRequest>& requests,
                                       std::vector<SaGrant>* grants) {
  grants->clear();

  std::vector<bool> in_busy(static_cast<std::size_t>(geom_.num_inports),
                            false);
  std::vector<bool> out_busy(static_cast<std::size_t>(geom_.num_outports),
                             false);

  // Phase A: renew chains. A chain (in -> out) survives if any VC at `in`
  // requests `out` this cycle; "anyVC" means the continuing flit may come
  // from a different VC than the one that formed the chain.
  std::vector<int> new_chain(static_cast<std::size_t>(geom_.num_outports),
                             -1);
  for (PortId out = 0; out < geom_.num_outports; ++out) {
    const int in = chain_[out];
    if (in == -1) continue;
    if (in_busy[in]) continue;  // another output's chain already took `in`
    // Collect this cycle's VCs at (in, out).
    VcId best = kInvalidVc;
    const std::size_t cell =
        static_cast<std::size_t>(in) * geom_.num_outports + out;
    int& ptr = chain_vc_rr_[cell];
    VcId wrap_best = kInvalidVc;
    for (const SaRequest& r : requests) {
      if (r.in_port != in || r.out_port != out) continue;
      if (r.vc >= ptr && (best == kInvalidVc || r.vc < best)) best = r.vc;
      if (wrap_best == kInvalidVc || r.vc < wrap_best) wrap_best = r.vc;
    }
    if (best == kInvalidVc) best = wrap_best;
    if (best == kInvalidVc) continue;  // chain broken: no request this cycle
    ptr = (best + 1) % geom_.num_vcs;
    in_busy[in] = true;
    out_busy[out] = true;
    new_chain[out] = in;
    ++chained_grants_;
    grants->push_back(SaGrant{in, 0, best, out});
  }

  // Phase B: separable IF over the residual request matrix (unchained
  // inputs requesting unchained outputs).
  residual_requests_.clear();
  for (const SaRequest& r : requests) {
    if (in_busy[r.in_port] || out_busy[r.out_port]) continue;
    residual_requests_.push_back(r);
  }
  separable_.Allocate(residual_requests_, &residual_grants_);
  for (const SaGrant& g : residual_grants_) {
    new_chain[g.out_port] = g.in_port;
    grants->push_back(g);
  }

  chain_ = std::move(new_chain);
}

void PacketChainingAllocator::Reset() {
  std::fill(chain_.begin(), chain_.end(), -1);
  std::fill(chain_vc_rr_.begin(), chain_vc_rr_.end(), 0);
  separable_.Reset();
  chained_grants_ = 0;
}

void PacketChainingAllocator::SaveState(SnapshotWriter& w) const {
  w.VecI32(chain_);
  w.VecI32(chain_vc_rr_);
  separable_.SaveState(w);
  w.U64(chained_grants_);
}

void PacketChainingAllocator::LoadState(SnapshotReader& r) {
  std::vector<int> chain = r.VecI32();
  std::vector<int> rr = r.VecI32();
  VIXNOC_REQUIRE(chain.size() == chain_.size() &&
                     rr.size() == chain_vc_rr_.size(),
                 "restored packet-chaining state does not match this "
                 "allocator's geometry");
  chain_ = std::move(chain);
  chain_vc_rr_ = std::move(rr);
  separable_.LoadState(r);
  chained_grants_ = r.U64();
}

}  // namespace vixnoc
