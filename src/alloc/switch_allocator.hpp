// Switch-allocator interface.
//
// Every cycle the router presents the *request matrix*: for each input VC
// whose head-of-line flit is ready (route computed, output VC assigned,
// downstream credit available), one request naming its output port. The
// allocator returns a set of grants subject to the crossbar's structural
// constraints:
//
//   * at most one grant per output port, and
//   * at most one grant per crossbar input, where a crossbar input is a
//     (input port, virtual input) pair.
//
// The baseline crossbar has one virtual input per port; a 1:2 VIX crossbar
// has two; the "ideal VIX" crossbar has one per VC. VCs are statically
// partitioned across virtual inputs in contiguous sub-groups (paper §2.1):
// vc's virtual input is vc / (num_vcs / num_vins).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arbiter/arbiter.hpp"
#include "common/check.hpp"
#include "common/types.hpp"

namespace vixnoc {

class SnapshotReader;
class SnapshotWriter;

/// Static shape of one router's switch.
struct SwitchGeometry {
  int num_inports = 0;   ///< physical input ports (P)
  int num_outports = 0;  ///< physical output ports (P)
  int num_vcs = 0;       ///< virtual channels per input port (v)
  int num_vins = 1;      ///< virtual inputs (crossbar inputs) per port (k)
  /// VC -> virtual-input mapping: contiguous blocks (vc / (v/k), the
  /// paper's Fig 2 wiring) or interleaved (vc % k). Interleaving keeps
  /// every virtual input reachable from within any contiguous VC subset,
  /// which matters when VCs are also partitioned by message class or
  /// dateline state.
  bool interleaved_vins = false;

  int VcsPerVin() const { return num_vcs / num_vins; }
  VinId VinOfVc(VcId vc) const {
    return interleaved_vins ? vc % num_vins : vc / VcsPerVin();
  }
  /// Position of `vc` within its virtual input's sub-group.
  int SubIndexOfVc(VcId vc) const {
    return interleaved_vins ? vc / num_vins : vc % VcsPerVin();
  }
  /// Inverse of (VinOfVc, SubIndexOfVc).
  VcId VcOf(VinId vin, int sub) const {
    return interleaved_vins ? sub * num_vins + vin : vin * VcsPerVin() + sub;
  }
  int NumCrossbarInputs() const { return num_inports * num_vins; }

  bool Valid() const {
    return num_inports > 0 && num_outports > 0 && num_vcs > 0 &&
           num_vins > 0 && num_vins <= num_vcs &&
           num_vcs % num_vins == 0;
  }
};

/// One input VC's request for an output port. At most one request per
/// (in_port, vc) pair may be presented per cycle.
struct SaRequest {
  PortId in_port = kInvalidPort;
  VcId vc = kInvalidVc;
  PortId out_port = kInvalidPort;
};

/// A granted crossbar connection for this cycle.
struct SaGrant {
  PortId in_port = kInvalidPort;
  VinId vin = 0;
  VcId vc = kInvalidVc;
  PortId out_port = kInvalidPort;
};

/// Per-arbiter telemetry counters exposed by separable allocators (the
/// schemes built from Arbiter instances). Filled only while a telemetry
/// sink is attached via SwitchAllocator::set_telemetry; the hot path pays
/// one pointer test per Allocate otherwise.
struct AllocTelemetry {
  /// Per crossbar input (in_port * num_vins + vin): VCs presented to the
  /// input arbiter, and picks that were ultimately granted by an output
  /// arbiter. requests >> grants means head-of-line serialization at this
  /// virtual input.
  std::vector<std::uint64_t> input_requests;
  std::vector<std::uint64_t> input_grants;
  /// Per output port: phase-1 winners presented to the output arbiter, and
  /// grants it issued. The gap is output-side conflict loss.
  std::vector<std::uint64_t> output_requests;
  std::vector<std::uint64_t> output_grants;
  /// Cycles in which some output arbiter saw two or more competing
  /// crossbar inputs.
  std::uint64_t output_conflict_cycles = 0;

  void Resize(const SwitchGeometry& g) {
    input_requests.assign(g.NumCrossbarInputs(), 0);
    input_grants.assign(g.NumCrossbarInputs(), 0);
    output_requests.assign(g.num_outports, 0);
    output_grants.assign(g.num_outports, 0);
    output_conflict_cycles = 0;
  }
  void Clear() {
    std::fill(input_requests.begin(), input_requests.end(), 0);
    std::fill(input_grants.begin(), input_grants.end(), 0);
    std::fill(output_requests.begin(), output_requests.end(), 0);
    std::fill(output_grants.begin(), output_grants.end(), 0);
    output_conflict_cycles = 0;
  }
};

/// Abstract switch allocator. Implementations are stateful (rotating
/// priorities, chains); Reset() restores the post-construction state.
class SwitchAllocator {
 public:
  explicit SwitchAllocator(const SwitchGeometry& g) : geom_(g) {
    VIXNOC_CHECK(g.Valid());
  }
  virtual ~SwitchAllocator() = default;

  SwitchAllocator(const SwitchAllocator&) = delete;
  SwitchAllocator& operator=(const SwitchAllocator&) = delete;

  const SwitchGeometry& geometry() const { return geom_; }

  /// Compute this cycle's grants. `grants` is cleared first.
  virtual void Allocate(const std::vector<SaRequest>& requests,
                        std::vector<SaGrant>* grants) = 0;

  virtual void Reset() = 0;

  virtual std::string Name() const = 0;

  /// Checkpoint/restore of the allocator's mutable priority state
  /// (rotating pointers, matrix arbiters, chains); geometry and scratch are
  /// construction-time and excluded. Restoring into an allocator built with
  /// the same configuration makes subsequent Allocate calls bitwise
  /// identical to one that never stopped.
  virtual void SaveState(SnapshotWriter& w) const = 0;
  virtual void LoadState(SnapshotReader& r) = 0;

  /// Attach (or detach, with nullptr) a per-arbiter telemetry sink. Only
  /// the separable allocators fill it; matching-based schemes (WF, AP)
  /// have no per-arbiter structure and leave it untouched. The sink must
  /// be sized for this allocator's geometry and outlive the attachment.
  void set_telemetry(AllocTelemetry* sink) { telemetry_ = sink; }

 protected:
  SwitchGeometry geom_;
  AllocTelemetry* telemetry_ = nullptr;
};

/// Returns true iff `grants` is structurally legal for `geom` against
/// `requests`: every grant matches a presented request, no output port is
/// granted twice, and no (in_port, vin) crossbar input is granted twice.
/// Used by tests and by the router's debug checks.
bool GrantsAreLegal(const SwitchGeometry& geom,
                    const std::vector<SaRequest>& requests,
                    const std::vector<SaGrant>& grants);

/// Factory covering every scheme in the paper's evaluation (§4.1) plus the
/// extension arms. The geometry's num_vins must agree with the scheme (1
/// for IF/WF/AP/PC/iSLIP/SERENADE, 2 for kVix, num_vcs for kVixIdeal).
/// `seed` feeds the per-instance RNG stream of randomized allocators
/// (currently only kSerenade); deterministic schemes ignore it.
std::unique_ptr<SwitchAllocator> MakeSwitchAllocator(
    AllocScheme scheme, const SwitchGeometry& geom,
    ArbiterKind arbiter_kind = ArbiterKind::kRoundRobin,
    std::uint64_t seed = 0);

/// Number of virtual inputs the scheme requires per physical port.
int VirtualInputsForScheme(AllocScheme scheme, int num_vcs);

}  // namespace vixnoc
