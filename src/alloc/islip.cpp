#include "alloc/islip.hpp"
#include "common/error.hpp"
#include "snapshot/snapshot.hpp"

#include <algorithm>

namespace vixnoc {

IslipAllocator::IslipAllocator(const SwitchGeometry& g, int iterations)
    : SwitchAllocator(g), iterations_(iterations) {
  VIXNOC_CHECK(g.num_vins == 1);
  VIXNOC_CHECK(iterations >= 1);
  grant_ptr_.assign(g.num_outports, 0);
  accept_ptr_.assign(g.num_inports, 0);
  vc_rr_.assign(static_cast<std::size_t>(g.num_inports) * g.num_outports, 0);
  out_req_.Resize(g.num_outports, g.num_inports);
  cell_vc_.Resize(g.num_inports * g.num_outports, g.num_vcs);
  grant_req_.Resize(g.num_inports, g.num_outports);
  free_in_.Resize(g.num_inports);
  match_in_.resize(g.num_inports);
  match_out_.resize(g.num_outports);
}

void IslipAllocator::Allocate(const std::vector<SaRequest>& requests,
                              std::vector<SaGrant>* grants) {
  grants->clear();
  out_req_.ClearDirty();
  cell_vc_.ClearDirty();
  for (const SaRequest& r : requests) {
    out_req_.Set(r.out_port, r.in_port);
    cell_vc_.Set(r.in_port * geom_.num_outports + r.out_port, r.vc);
  }

  std::fill(match_in_.begin(), match_in_.end(), -1);
  std::fill(match_out_.begin(), match_out_.end(), -1);
  free_in_.SetAll();

  const int in_words = free_in_.word_count();
  for (int iter = 0; iter < iterations_; ++iter) {
    // Grant phase: each free output picks the first requesting free input
    // at or after its rotating pointer.
    grant_req_.ClearDirty();
    for (int out = 0; out < geom_.num_outports; ++out) {
      if (match_out_[out] != -1) continue;
      const int in = bits::FirstSetFromAnd(out_req_.Row(out).words(),
                                           free_in_.data(), in_words,
                                           grant_ptr_[out]);
      if (in >= 0) grant_req_.Set(in, out);
    }
    // Accept phase: each free input picks the first granting output at or
    // after its rotating pointer.
    bool progress = false;
    for (int w = 0; w < in_words; ++w) {
      std::uint64_t cur = free_in_.data()[w] & grant_req_.DirtyRows().data()[w];
      while (cur != 0) {
        const int in = w * bits::kWordBits + std::countr_zero(cur);
        cur &= cur - 1;
        const int chosen = grant_req_.Row(in).FirstFrom(accept_ptr_[in]);
        VIXNOC_DCHECK(chosen >= 0);
        match_in_[in] = chosen;
        match_out_[chosen] = in;
        free_in_.Clear(in);
        progress = true;
        if (iter == 0) {
          grant_ptr_[chosen] = (in + 1) % geom_.num_inports;
          accept_ptr_[in] = (chosen + 1) % geom_.num_outports;
        }
      }
    }
    if (!progress) break;
  }

  for (int in = 0; in < geom_.num_inports; ++in) {
    const int out = match_in_[in];
    if (out == -1) continue;
    const std::size_t cell =
        static_cast<std::size_t>(in) * geom_.num_outports + out;
    int& ptr = vc_rr_[cell];
    const VcId best = cell_vc_.Row(static_cast<int>(cell)).FirstFrom(ptr);
    VIXNOC_DCHECK(best >= 0);
    ptr = (best + 1) % geom_.num_vcs;
    grants->push_back(SaGrant{in, 0, best, out});
  }
}

void IslipAllocator::Reset() {
  std::fill(grant_ptr_.begin(), grant_ptr_.end(), 0);
  std::fill(accept_ptr_.begin(), accept_ptr_.end(), 0);
  std::fill(vc_rr_.begin(), vc_rr_.end(), 0);
}

void IslipAllocator::SaveState(SnapshotWriter& w) const {
  w.VecI32(grant_ptr_);
  w.VecI32(accept_ptr_);
  w.VecI32(vc_rr_);
}

void IslipAllocator::LoadState(SnapshotReader& r) {
  std::vector<int> grant = r.VecI32();
  std::vector<int> accept = r.VecI32();
  std::vector<int> rr = r.VecI32();
  VIXNOC_REQUIRE(grant.size() == grant_ptr_.size() &&
                     accept.size() == accept_ptr_.size() &&
                     rr.size() == vc_rr_.size(),
                 "restored iSLIP pointer state does not match this "
                 "allocator's geometry");
  grant_ptr_ = std::move(grant);
  accept_ptr_ = std::move(accept);
  vc_rr_ = std::move(rr);
}

}  // namespace vixnoc
