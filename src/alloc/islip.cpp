#include "alloc/islip.hpp"
#include "common/error.hpp"
#include "snapshot/snapshot.hpp"

#include <algorithm>

namespace vixnoc {

IslipAllocator::IslipAllocator(const SwitchGeometry& g, int iterations)
    : SwitchAllocator(g), iterations_(iterations) {
  VIXNOC_CHECK(g.num_vins == 1);
  VIXNOC_CHECK(iterations >= 1);
  grant_ptr_.assign(g.num_outports, 0);
  accept_ptr_.assign(g.num_inports, 0);
  vc_rr_.assign(static_cast<std::size_t>(g.num_inports) * g.num_outports, 0);
  cell_vcs_.resize(static_cast<std::size_t>(g.num_inports) * g.num_outports);
  match_in_.resize(g.num_inports);
  match_out_.resize(g.num_outports);
  granted_to_.resize(g.num_outports);
}

void IslipAllocator::Allocate(const std::vector<SaRequest>& requests,
                              std::vector<SaGrant>* grants) {
  grants->clear();
  for (auto& v : cell_vcs_) v.clear();
  for (const SaRequest& r : requests) {
    cell_vcs_[static_cast<std::size_t>(r.in_port) * geom_.num_outports +
              r.out_port]
        .push_back(r.vc);
  }

  std::vector<int>& match_in = match_in_;
  std::vector<int>& match_out = match_out_;
  std::fill(match_in.begin(), match_in.end(), -1);
  std::fill(match_out.begin(), match_out.end(), -1);

  for (int iter = 0; iter < iterations_; ++iter) {
    // Grant phase: each free output picks a requesting free input.
    std::vector<int>& granted_to = granted_to_;
    std::fill(granted_to.begin(), granted_to.end(), -1);
    for (int out = 0; out < geom_.num_outports; ++out) {
      if (match_out[out] != -1) continue;
      for (int off = 0; off < geom_.num_inports; ++off) {
        const int in = (grant_ptr_[out] + off) % geom_.num_inports;
        if (match_in[in] != -1) continue;
        if (cell_vcs_[static_cast<std::size_t>(in) * geom_.num_outports + out]
                .empty()) {
          continue;
        }
        granted_to[out] = in;
        break;
      }
    }
    // Accept phase: each free input picks one granting output.
    bool progress = false;
    for (int in = 0; in < geom_.num_inports; ++in) {
      if (match_in[in] != -1) continue;
      int chosen = -1;
      for (int off = 0; off < geom_.num_outports; ++off) {
        const int out = (accept_ptr_[in] + off) % geom_.num_outports;
        if (granted_to[out] == in) {
          chosen = out;
          break;
        }
      }
      if (chosen == -1) continue;
      match_in[in] = chosen;
      match_out[chosen] = in;
      progress = true;
      if (iter == 0) {
        grant_ptr_[chosen] = (in + 1) % geom_.num_inports;
        accept_ptr_[in] = (chosen + 1) % geom_.num_outports;
      }
    }
    if (!progress) break;
  }

  for (int in = 0; in < geom_.num_inports; ++in) {
    const int out = match_in[in];
    if (out == -1) continue;
    const std::size_t cell =
        static_cast<std::size_t>(in) * geom_.num_outports + out;
    const auto& vcs = cell_vcs_[cell];
    int& ptr = vc_rr_[cell];
    VcId best = kInvalidVc;
    for (VcId vc : vcs) {
      if (vc >= ptr && (best == kInvalidVc || vc < best)) best = vc;
    }
    if (best == kInvalidVc) {
      for (VcId vc : vcs) {
        if (best == kInvalidVc || vc < best) best = vc;
      }
    }
    ptr = (best + 1) % geom_.num_vcs;
    grants->push_back(SaGrant{in, 0, best, out});
  }
}

void IslipAllocator::Reset() {
  std::fill(grant_ptr_.begin(), grant_ptr_.end(), 0);
  std::fill(accept_ptr_.begin(), accept_ptr_.end(), 0);
  std::fill(vc_rr_.begin(), vc_rr_.end(), 0);
}

void IslipAllocator::SaveState(SnapshotWriter& w) const {
  w.VecI32(grant_ptr_);
  w.VecI32(accept_ptr_);
  w.VecI32(vc_rr_);
}

void IslipAllocator::LoadState(SnapshotReader& r) {
  std::vector<int> grant = r.VecI32();
  std::vector<int> accept = r.VecI32();
  std::vector<int> rr = r.VecI32();
  VIXNOC_REQUIRE(grant.size() == grant_ptr_.size() &&
                     accept.size() == accept_ptr_.size() &&
                     rr.size() == vc_rr_.size(),
                 "restored iSLIP pointer state does not match this "
                 "allocator's geometry");
  grant_ptr_ = std::move(grant);
  accept_ptr_ = std::move(accept);
  vc_rr_ = std::move(rr);
}

}  // namespace vixnoc
