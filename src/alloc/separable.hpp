// Input-first separable switch allocator (paper §2.2, Fig 3).
//
// Phase 1: one input arbiter per crossbar input (per (port, virtual input)
// pair) selects a winning VC among the sub-group's requesting VCs.
// Phase 2: one output arbiter per output port selects a winning crossbar
// input among those whose phase-1 winner requests it.
//
// With num_vins == 1 this is the paper's baseline IF allocator (P input
// arbiters of size v:1, P output arbiters of size P:1). With num_vins == 2
// it is the VIX allocator (2P input arbiters of size v/2:1, P output
// arbiters of size 2P:1). With num_vins == v it degenerates to pure output
// arbitration, the paper's "ideal" allocator.
//
// Requests are held in bitmask matrices (alloc/request_matrix.hpp): one
// row of VC-request bits per crossbar input for phase 1 and one row of
// crossbar-input bits per output port for phase 2, so both phases iterate
// only over populated rows and hand the arbiters word masks directly.
#pragma once

#include "alloc/request_matrix.hpp"
#include "alloc/switch_allocator.hpp"

namespace vixnoc {

class SeparableInputFirstAllocator final : public SwitchAllocator {
 public:
  /// `update_on_grant_only`: when true (default), an arbiter's rotating
  /// priority advances only if its pick was ultimately granted, the
  /// starvation-free pointer-update rule from iSLIP that NoC separable
  /// allocators commonly adopt. When false, pointers advance on every pick.
  SeparableInputFirstAllocator(const SwitchGeometry& g, ArbiterKind kind,
                               bool update_on_grant_only = true);

  void Allocate(const std::vector<SaRequest>& requests,
                std::vector<SaGrant>* grants) override;
  void Reset() override;
  void SaveState(SnapshotWriter& w) const override;
  void LoadState(SnapshotReader& r) override;
  std::string Name() const override;

 private:
  bool update_on_grant_only_;
  // Indexed by crossbar input = in_port * num_vins + vin.
  std::vector<std::unique_ptr<Arbiter>> input_arbiters_;
  // Indexed by output port.
  std::vector<std::unique_ptr<Arbiter>> output_arbiters_;

  // Scratch, reused across cycles; the matrices clear dirty rows only.
  RequestMatrix vc_req_;       // row xin: requesting sub-VC bits
  RequestMatrix out_req_;      // row out: phase-1 winner xin bits
  std::vector<int> phase1_vc_;      // winning sub-vc per xin (valid if won)
  std::vector<PortId> out_port_of_; // requested output per (xin, sub-vc);
                                    // valid only where vc_req_ has the bit
};

}  // namespace vixnoc
