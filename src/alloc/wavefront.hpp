// Wavefront allocator (Tamir & Chi [21]; paper §4.1).
//
// Operates on the P x P port-level request matrix. A rotating priority
// diagonal sweeps the matrix; all cells on one diagonal touch distinct rows
// and columns, so conflict-free grants on a diagonal are made in parallel.
// Later diagonals only grant cells whose row and column are still free, so
// the result is a maximal (not necessarily maximum) matching. Matching
// quality is better than separable IF because *all* port-level requests are
// visible, not only the per-port phase-1 winners — at the cost of a 39%
// longer critical path (paper Table 3).
//
// The request matrix is held as bitmask rows (one word of output bits per
// input) and the per-cell VC sets as bitmask rows of a (in x out) x vcs
// matrix, so the diagonal sweep only visits inputs that still have requests
// and the VC pick is a masked rotate instead of a list scan.
//
// VC selection within a granted (input, output) pair uses a per-pair
// round-robin pointer, matching the reference implementation's behaviour of
// rotating among the VCs that request the same output.
#pragma once

#include "alloc/request_matrix.hpp"
#include "alloc/switch_allocator.hpp"

namespace vixnoc {

class WavefrontAllocator final : public SwitchAllocator {
 public:
  explicit WavefrontAllocator(const SwitchGeometry& g);

  void Allocate(const std::vector<SaRequest>& requests,
                std::vector<SaGrant>* grants) override;
  void Reset() override;
  void SaveState(SnapshotWriter& w) const override;
  void LoadState(SnapshotReader& r) override;
  std::string Name() const override { return "wavefront"; }

 private:
  int n_;                    // square matrix dimension
  int priority_diagonal_ = 0;
  // Per (in, out) round-robin pointer over VCs.
  std::vector<int> vc_rr_;
  // Scratch, rebuilt each cycle with dirty-row clearing.
  RequestMatrix out_req_;   // row in: requested output bits
  RequestMatrix cell_vc_;   // row (in * num_outports + out): requesting VCs
  BitWords row_free_;       // inputs not yet granted this cycle
  BitWords col_free_;       // outputs not yet granted this cycle
};

}  // namespace vixnoc
