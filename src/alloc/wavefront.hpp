// Wavefront allocator (Tamir & Chi [21]; paper §4.1).
//
// Operates on the P x P port-level request matrix. A rotating priority
// diagonal sweeps the matrix; all cells on one diagonal touch distinct rows
// and columns, so conflict-free grants on a diagonal are made in parallel.
// Later diagonals only grant cells whose row and column are still free, so
// the result is a maximal (not necessarily maximum) matching. Matching
// quality is better than separable IF because *all* port-level requests are
// visible, not only the per-port phase-1 winners — at the cost of a 39%
// longer critical path (paper Table 3).
//
// VC selection within a granted (input, output) pair uses a per-pair
// round-robin pointer, matching the reference implementation's behaviour of
// rotating among the VCs that request the same output.
#pragma once

#include "alloc/switch_allocator.hpp"

namespace vixnoc {

class WavefrontAllocator final : public SwitchAllocator {
 public:
  explicit WavefrontAllocator(const SwitchGeometry& g);

  void Allocate(const std::vector<SaRequest>& requests,
                std::vector<SaGrant>* grants) override;
  void Reset() override;
  void SaveState(SnapshotWriter& w) const override;
  void LoadState(SnapshotReader& r) override;
  std::string Name() const override { return "wavefront"; }

 private:
  int n_;                    // square matrix dimension
  int priority_diagonal_ = 0;
  // Per (in, out) round-robin pointer over VCs.
  std::vector<int> vc_rr_;
  // Scratch: vc list per (in,out) cell rebuilt each cycle.
  std::vector<std::vector<VcId>> cell_vcs_;
  std::vector<bool> row_free_;  // per-cycle scratch, n_ entries
  std::vector<bool> col_free_;
};

}  // namespace vixnoc
