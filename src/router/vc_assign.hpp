// Output-VC assignment policies (the VA stage's selection rule).
//
// Baseline (paper §2.3): "the output VC with maximum number of free
// flit-buffers is assigned".
//
// VIX adds sub-group steering: output VCs map to virtual inputs of the
// downstream crossbar, so the upstream router chooses which virtual input a
// packet will occupy. Steering by the packet's output-port *dimension at the
// downstream router* puts requests that will head to different outputs into
// different sub-groups, and load balancing keeps every virtual input fed.
//
// The candidate set may be a sub-range of the downstream port's VCs
// (message class or dateline restrictions); VinLayout tells the policy
// which virtual input each candidate belongs to, for both the contiguous
// (vc / (v/k)) and interleaved (vc % k) crossbar wirings.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "routing/routing_algorithm.hpp"

namespace vixnoc {

enum class VcAssignPolicy {
  kMaxCredits,    ///< baseline: free VC with most credits
  kVixDimension,  ///< VIX: dimension-preferred sub-group, balance fallback
  kVixBalance,    ///< VIX ablation: pure load balancing across sub-groups
  kRandomFree,    ///< control arm: uniform over free VCs, ignoring sub-groups
};

/// Snapshot of one output VC's allocation state, provided by the router.
struct OutputVcView {
  bool allocated = false;  ///< currently owned by another packet
  int credits = 0;         ///< free flit-buffers downstream
};

/// How candidate VCs map onto the downstream router's virtual inputs.
struct VinLayout {
  int num_vins = 1;         ///< virtual inputs at the downstream router
  int total_vcs = 1;        ///< VCs per port at the downstream router
  bool interleaved = false; ///< vc % k wiring instead of vc / (v/k)
  VcId first_vc = 0;        ///< actual VC id of candidate views[0]

  VinId VinOfView(int view_index) const {
    const VcId vc = first_vc + view_index;
    return interleaved ? vc % num_vins : vc / (total_vcs / num_vins);
  }
};

class Rng;

/// Picks a candidate index (into `views`), or -1 if none is free.
/// `downstream_dim` is the dimension of the port the packet will request at
/// the downstream router (kLocal when the next hop ejects or is unknown).
/// `rng` is consulted only by kRandomFree (the others never draw from it,
/// so deterministic policies stay bitwise reproducible regardless of what
/// stream is passed); it must be non-null for that policy.
int PickOutputVc(VcAssignPolicy policy,
                 const std::vector<OutputVcView>& views,
                 const VinLayout& layout, PortDimension downstream_dim,
                 Rng* rng = nullptr);

}  // namespace vixnoc
