// Routing-function interface. Topologies implement it; routers use it for
// lookahead route computation (determining the output port a packet will
// take at the *next* router, needed both to stamp flits and to drive VIX's
// dimension-aware VC assignment, paper §2.3).
#pragma once

#include "common/types.hpp"

namespace vixnoc {

/// Dimension class of an output port, used by the VIX VC-assignment policy
/// to spread requests across virtual-input sub-groups.
enum class PortDimension {
  kX,     ///< port moves packets along the X dimension
  kY,     ///< port moves packets along the Y dimension
  kLocal, ///< ejection port towards a network interface
};

/// A sub-range [lo, hi) of the per-message-class VC partition that a packet
/// is allowed to occupy at its next hop.
struct VcRange {
  int lo = 0;
  int hi = 0;
};

class RoutingFunction {
 public:
  virtual ~RoutingFunction() = default;

  /// Deterministic route: the output port at `router` for a packet headed to
  /// node `dst`. Must be a local ejection port when `dst` is attached to
  /// `router`.
  virtual PortId Route(RouterId router, NodeId dst) const = 0;

  /// Dimension classification of `port` (ports have uniform meaning across
  /// routers in all supported topologies).
  virtual PortDimension DimensionOf(PortId port) const = 0;

  /// Dateline state the packet carries after leaving `router` through
  /// `out_port` with current state `state`. Acyclic topologies keep it 0;
  /// torus routing flips a per-dimension bit at the wrap links.
  virtual std::uint8_t NextDatelineState(RouterId router, PortId out_port,
                                         std::uint8_t state) const {
    (void)router;
    (void)out_port;
    return state;
  }

  /// VCs (as indices within one message class's partition of
  /// `vcs_per_class` VCs) a packet with dateline state `state` may use on
  /// the channel leaving through `out_port`. The default is unrestricted;
  /// torus routing confines pre-/post-dateline packets to disjoint halves
  /// so the ring's channel-dependency cycle is broken.
  virtual VcRange AllowedVcRange(PortId out_port, std::uint8_t state,
                                 int vcs_per_class) const {
    (void)out_port;
    (void)state;
    return VcRange{0, vcs_per_class};
  }
};

}  // namespace vixnoc
