#include "router/router.hpp"

#include <algorithm>

#include "alloc/augmenting_path.hpp"
#include "common/error.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/state_io.hpp"
#include "telemetry/telemetry.hpp"

namespace vixnoc {

Router::Router(RouterId id, const RouterConfig& config,
               std::vector<OutputLinkInfo> links,
               const RoutingAlgorithm* routing)
    : id_(id), config_(config), routing_(routing), links_(std::move(links)) {
  VIXNOC_REQUIRE(static_cast<int>(links_.size()) == config_.radix,
                 "router %d: %zu output links for radix %d", id_,
                 links_.size(), config_.radix);
  VIXNOC_REQUIRE(config_.num_vcs >= 1, "num_vcs must be >= 1, got %d",
                 config_.num_vcs);
  VIXNOC_REQUIRE(config_.buffer_depth >= 1,
                 "buffer_depth must be >= 1, got %d", config_.buffer_depth);
  VIXNOC_CHECK(routing_ != nullptr);
  VIXNOC_REQUIRE(config_.num_message_classes >= 1,
                 "num_message_classes must be >= 1, got %d",
                 config_.num_message_classes);
  VIXNOC_REQUIRE(config_.num_vcs % config_.num_message_classes == 0,
                 "num_vcs (%d) must be divisible by num_message_classes (%d)",
                 config_.num_vcs, config_.num_message_classes);

  const std::size_t total =
      static_cast<std::size_t>(config_.radix) * config_.num_vcs;
  flit_store_.resize(total * config_.buffer_depth);
  buf_head_.assign(total, 0);
  buf_count_.assign(total, 0);
  in_active_.assign(total, 0);
  in_out_port_.assign(total, kInvalidPort);
  in_out_vc_.assign(total, kInvalidVc);
  in_lookahead_.assign(total, kInvalidPort);
  in_next_dateline_.assign(total, 0);
  credits_.assign(total, config_.buffer_depth);
  out_allocated_.assign(total, 0);
  va_cand_.Resize(static_cast<int>(total));
  sa_cand_.Resize(static_cast<int>(total));

  SwitchGeometry geom;
  geom.num_inports = config_.radix;
  geom.num_outports = config_.radix;
  geom.num_vcs = config_.num_vcs;
  geom.num_vins = config_.NumVins();
  geom.interleaved_vins = config_.interleaved_vins;
  if (config_.scheme == AllocScheme::kAugmentingPath &&
      !config_.ap_rotate_vcs) {
    allocator_ = std::make_unique<AugmentingPathAllocator>(geom, false);
  } else {
    // Randomized allocators get a distinct per-router stream derived from
    // the VC seed with a mixing constant different from the vc_rng_ one
    // below, so neither stream aliases the other. Deterministic schemes
    // ignore the seed, keeping their historical behaviour bit-for-bit.
    const std::uint64_t alloc_seed =
        config_.vc_rng_seed +
        0xd1b54a32d192ed03ull * (static_cast<std::uint64_t>(id_) + 1);
    allocator_ = MakeSwitchAllocator(config_.scheme, geom,
                                     config_.arbiter_kind, alloc_seed);
  }
  vc_view_scratch_.resize(config_.num_vcs);
  va_prefs_.reserve(total);
  nonspec_wants_.assign(config_.radix, false);
  just_activated_.assign(total, false);
  output_blocked_.assign(config_.radix, false);
  flits_per_out_.assign(config_.radix, 0);
  out_used_scratch_.assign(config_.radix, false);
  xin_used_scratch_.assign(
      static_cast<std::size_t>(config_.radix) * config_.NumVins(), false);
  // Distinct stream per router: mix the id into the base seed before the
  // SplitMix expansion inside Reseed.
  vc_rng_.Reseed(config_.vc_rng_seed +
                 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(id_) + 1));
}

void Router::SetTelemetry(TelemetryCollector* collector) {
  tcol_ = collector;
  rt_ = collector != nullptr ? &collector->router(id_) : nullptr;
  allocator_->set_telemetry(rt_ != nullptr ? &rt_->alloc : nullptr);
}

void Router::ClearActivity() {
  activity_.Clear();
  std::fill(flits_per_out_.begin(), flits_per_out_.end(), 0);
}

void Router::AcceptFlit(PortId in_port, const Flit& flit) {
  VIXNOC_CHECK(in_port >= 0 && in_port < config_.radix);
  VIXNOC_CHECK(flit.vc >= 0 && flit.vc < config_.num_vcs);
  VIXNOC_CHECK(flit.route_out >= 0 && flit.route_out < config_.radix);
  const int idx = IvcIndex(in_port, flit.vc);
  // Credit protocol guarantees space; overflow means lost credits upstream.
  VIXNOC_CHECK(buf_count_[idx] < config_.buffer_depth);
  PushFlit(idx, flit);
  if (in_active_[idx]) {
    sa_cand_.Set(idx);
  } else {
    va_cand_.Set(idx);
  }
  ++activity_.buffer_writes;
}

void Router::AcceptCredit(PortId out_port, VcId out_vc) {
  VIXNOC_CHECK(out_port >= 0 && out_port < config_.radix);
  VIXNOC_CHECK(out_vc >= 0 && out_vc < config_.num_vcs);
  const int ovc = OvcIndex(out_port, out_vc);
  ++credits_[ovc];
  VIXNOC_CHECK(credits_[ovc] <= config_.buffer_depth);
}

void Router::ConsiderVaCandidate(int idx, bool separable) {
  const VcId c = static_cast<VcId>(idx % config_.num_vcs);
  const Flit& head = HeadFlit(idx);
  VIXNOC_CHECK(head.IsHead());
  ++activity_.va_requests;

  const PortId out_port = head.route_out;
  const OutputLinkInfo& link = links_[out_port];
  // Routing functions must never steer a packet to an unconnected port.
  VIXNOC_CHECK(link.IsConnected());
  // Down link: the packet waits in its buffer without claiming a VC.
  if (num_blocked_ > 0 && output_blocked_[out_port]) return;

  // Lookahead route computation for the downstream router; ejection ports
  // terminate at an NI, so there is no next hop.
  PortId lookahead = kInvalidPort;
  PortDimension downstream_dim = PortDimension::kLocal;
  if (!link.IsEjection()) {
    lookahead = routing_->Route(link.neighbor, head.dst);
    downstream_dim = routing_->DimensionOf(lookahead);
  }

  if (link.IsEjection()) {
    // NIs accept any VC and reassemble; no allocation state is needed and
    // interleaving packets on the ejection port is harmless.
    in_next_dateline_[idx] = head.dateline;
    in_active_[idx] = 1;
    in_out_port_[idx] = out_port;
    in_out_vc_[idx] = c % config_.num_vcs;
    in_lookahead_[idx] = lookahead;
    just_activated_[idx] = true;
    va_cand_.Clear(idx);
    sa_cand_.Set(idx);
    ++activity_.va_grants;
    return;
  }

  // Virtual networks: a packet may only use VCs of its message class.
  const int cls = head.msg_class;
  VIXNOC_CHECK(cls < config_.num_message_classes);
  const int vpc = config_.VcsPerClass();
  const VcId cls_base = cls * vpc;
  // Dateline restriction: the packet's state after traversing this
  // output's channel selects which part of the class partition it may
  // occupy downstream (torus deadlock avoidance; full range elsewhere).
  const std::uint8_t next_state =
      routing_->NextDatelineState(id_, out_port, head.dateline);
  const VcRange range = routing_->AllowedVcRange(out_port, next_state, vpc);
  VIXNOC_DCHECK(range.lo >= 0 && range.lo < range.hi && range.hi <= vpc);
  const int span = range.hi - range.lo;
  const int ovc_base = OvcIndex(out_port, cls_base + range.lo);
  vc_view_scratch_.resize(span);
  for (VcId i = 0; i < span; ++i) {
    bool busy = out_allocated_[ovc_base + i] != 0;
    if (config_.atomic_vc_alloc &&
        credits_[ovc_base + i] < config_.buffer_depth) {
      busy = true;  // downstream buffer not empty: VC not reallocatable
    }
    vc_view_scratch_[i].allocated = busy;
    vc_view_scratch_[i].credits = credits_[ovc_base + i];
  }
  VinLayout layout;
  layout.num_vins = config_.NumVins();
  layout.total_vcs = config_.num_vcs;
  layout.interleaved = config_.interleaved_vins;
  layout.first_vc = cls_base + range.lo;
  const int pick = PickOutputVc(config_.vc_policy, vc_view_scratch_,
                                layout, downstream_dim, &vc_rng_);
  if (pick < 0) return;  // all usable VCs busy: stall
  const VcId out_vc = cls_base + range.lo + pick;

  if (separable) {
    va_prefs_.push_back(
        VaPreference{idx, out_port, out_vc, lookahead, next_state});
    return;
  }

  out_allocated_[OvcIndex(out_port, out_vc)] = 1;
  in_next_dateline_[idx] = next_state;
  in_active_[idx] = 1;
  in_out_port_[idx] = out_port;
  in_out_vc_[idx] = out_vc;
  in_lookahead_[idx] = lookahead;
  just_activated_[idx] = true;
  va_cand_.Clear(idx);
  sa_cand_.Set(idx);
  ++activity_.va_grants;
}

void Router::ConsiderVaCandidateAdaptive(int idx, bool separable) {
  const VcId c = static_cast<VcId>(idx % config_.num_vcs);
  const Flit& head = HeadFlit(idx);
  VIXNOC_CHECK(head.IsHead());
  ++activity_.va_requests;

  const int cls = head.msg_class;
  VIXNOC_CHECK(cls < config_.num_message_classes);
  const int vpc = config_.VcsPerClass();
  const VcId cls_base = cls * vpc;
  RouteCandidate cands[kMaxRouteCandidates];
  const int n = routing_->Candidates(id_, head.dst, head.dateline, vpc, cands);
  VIXNOC_DCHECK(n >= 1 && n <= kMaxRouteCandidates);

  // Ejection (single local candidate): NIs accept any VC and reassemble;
  // no allocation state is needed and interleaving packets on the ejection
  // port is harmless.
  if (links_[cands[0].out_port].IsEjection()) {
    in_next_dateline_[idx] = head.dateline;
    in_active_[idx] = 1;
    in_out_port_[idx] = cands[0].out_port;
    in_out_vc_[idx] = c % config_.num_vcs;
    in_lookahead_[idx] = kInvalidPort;
    just_activated_[idx] = true;
    va_cand_.Clear(idx);
    sa_cand_.Set(idx);
    ++activity_.va_grants;
    return;
  }

  // Select which candidate to request this cycle: the adaptive candidate
  // whose best usable VC has the most downstream credits (ties keep
  // candidate order, i.e. the DOR direction); the escape candidate — by
  // contract last — whenever no adaptive VC is usable, so a blocked packet
  // always requests the deadlock-free sub-network (Duato's protocol).
  const RouteCandidate* best_adaptive = nullptr;
  const RouteCandidate* escape = nullptr;
  int best_credits = -1;
  for (int i = 0; i < n; ++i) {
    const RouteCandidate& cand = cands[i];
    // Routing algorithms must never emit a candidate on an unconnected port.
    VIXNOC_CHECK(links_[cand.out_port].IsConnected());
    // Down link: this candidate is not usable while the fault is active.
    if (num_blocked_ > 0 && output_blocked_[cand.out_port]) continue;
    if (cand.escape) {
      if (escape == nullptr) escape = &cand;
      continue;
    }
    const int ovc_base = OvcIndex(cand.out_port, cls_base + cand.vc_range.lo);
    const int span = cand.vc_range.hi - cand.vc_range.lo;
    int usable_credits = -1;
    for (int v = 0; v < span; ++v) {
      // Adaptive routing always reallocates VCs atomically (only when the
      // downstream buffer is empty), regardless of atomic_vc_alloc: a
      // buffer mixing two packets' flits creates indirect dependencies
      // from the escape channels into the (cyclic) adaptive ones, voiding
      // Duato's deadlock-freedom argument.
      const bool busy = out_allocated_[ovc_base + v] != 0 ||
                        credits_[ovc_base + v] < config_.buffer_depth;
      if (!busy && credits_[ovc_base + v] > usable_credits) {
        usable_credits = credits_[ovc_base + v];
      }
    }
    if (usable_credits > best_credits) {
      best_credits = usable_credits;
      best_adaptive = &cand;
    }
  }
  const RouteCandidate* chosen =
      best_adaptive != nullptr && best_credits >= 0 ? best_adaptive : escape;
  if (chosen == nullptr) return;  // every candidate's link is down: wait

  const PortId out_port = chosen->out_port;
  const OutputLinkInfo& link = links_[out_port];
  // Advisory lookahead stamp: the downstream router re-runs candidate
  // selection, but the stamp drives VIX's dimension-aware VC steering.
  const PortId lookahead = routing_->Route(link.neighbor, head.dst);
  const PortDimension downstream_dim = routing_->DimensionOf(lookahead);
  const std::uint8_t next_state = chosen->next_dateline;
  const VcRange range = chosen->vc_range;
  VIXNOC_DCHECK(range.lo >= 0 && range.lo < range.hi && range.hi <= vpc);
  const int span = range.hi - range.lo;
  const int ovc_base = OvcIndex(out_port, cls_base + range.lo);
  vc_view_scratch_.resize(span);
  for (VcId i = 0; i < span; ++i) {
    // Same atomic-reallocation rule as candidate scoring above.
    vc_view_scratch_[i].allocated = out_allocated_[ovc_base + i] != 0 ||
                                    credits_[ovc_base + i] < config_.buffer_depth;
    vc_view_scratch_[i].credits = credits_[ovc_base + i];
  }
  VinLayout layout;
  layout.num_vins = config_.NumVins();
  layout.total_vcs = config_.num_vcs;
  layout.interleaved = config_.interleaved_vins;
  layout.first_vc = cls_base + range.lo;
  const int pick = PickOutputVc(config_.vc_policy, vc_view_scratch_, layout,
                                downstream_dim, &vc_rng_);
  if (pick < 0) return;  // all usable VCs busy: stall
  const VcId out_vc = cls_base + range.lo + pick;

  if (separable) {
    va_prefs_.push_back(
        VaPreference{idx, out_port, out_vc, lookahead, next_state});
    return;
  }

  out_allocated_[OvcIndex(out_port, out_vc)] = 1;
  in_next_dateline_[idx] = next_state;
  in_active_[idx] = 1;
  in_out_port_[idx] = out_port;
  in_out_vc_[idx] = out_vc;
  in_lookahead_[idx] = lookahead;
  just_activated_[idx] = true;
  va_cand_.Clear(idx);
  sa_cand_.Set(idx);
  ++activity_.va_grants;
}

void Router::RunVcAllocation() {
  // Head packets request an output VC; candidates are visited in an order
  // that rotates across cycles so no input VC systematically wins ties.
  //
  // Two VA organizations:
  //  * kGreedyRotating (default): candidates are served sequentially, each
  //    seeing the allocations made earlier the same cycle — an idealized
  //    allocator where a blocked preference immediately falls back to the
  //    next-best free VC.
  //  * kSeparableArbitrated: every candidate states one preference against
  //    the cycle-start state, then one arbiter per output VC picks a
  //    winner; losers retry next cycle — the behaviour of a real separable
  //    VC allocator (Becker & Dally).
  //
  // The rotating scan walks only the candidate mask. Granting a candidate
  // never changes another VC's candidacy (it only claims output VCs, which
  // the remaining candidates re-read live), so the masked visit — indices
  // >= va_rr_ptr_ ascending, then wrap — sees exactly the candidates the
  // full `(va_rr_ptr_ + off) % total` scan would, in the same order.
  const bool separable = config_.va_organization ==
                         VaOrganization::kSeparableArbitrated;
  va_prefs_.clear();

  const int total = config_.radix * config_.num_vcs;
  const bool adaptive = routing_->IsAdaptive();
  const auto consider = [&](int idx) {
    if (adaptive) {
      ConsiderVaCandidateAdaptive(idx, separable);
    } else {
      ConsiderVaCandidate(idx, separable);
    }
  };
  bits::ForEachSetInRange(va_cand_.data(), va_rr_ptr_, total, consider);
  bits::ForEachSetInRange(va_cand_.data(), 0, va_rr_ptr_, consider);

  if (separable && !va_prefs_.empty()) {
    // Output-side arbitration: one winner per (out_port, out_vc). The
    // rotating visit order above doubles as the arbitration priority,
    // which rotates every cycle, so losers cannot starve.
    for (const VaPreference& pref : va_prefs_) {
      const int ovc = OvcIndex(pref.out_port, pref.out_vc);
      if (out_allocated_[ovc]) continue;  // lost this cycle
      out_allocated_[ovc] = 1;
      const int idx = pref.idx;
      in_next_dateline_[idx] = pref.next_dateline;
      in_active_[idx] = 1;
      in_out_port_[idx] = pref.out_port;
      in_out_vc_[idx] = pref.out_vc;
      in_lookahead_[idx] = pref.lookahead;
      just_activated_[idx] = true;
      va_cand_.Clear(idx);
      sa_cand_.Set(idx);
      ++activity_.va_grants;
    }
  }

  va_rr_ptr_ = (va_rr_ptr_ + 1) % total;
}

void Router::BuildSaRequests() {
  // sa_cand_ holds exactly the VCs with `active && buffer non-empty`, and
  // ascending mask order equals the (port, vc) nested-loop order.
  sa_requests_.clear();
  sa_cand_.ForEach([&](int idx) {
    const PortId p = static_cast<PortId>(idx / config_.num_vcs);
    const VcId c = static_cast<VcId>(idx % config_.num_vcs);
    if (!config_.speculative_sa && just_activated_[idx]) {
      return;  // VA this cycle, SA earliest next cycle (Fig 6a)
    }
    const PortId out = in_out_port_[idx];
    // Down link: established packets hold their VC but send nothing until
    // the link is repaired.
    if (num_blocked_ > 0 && output_blocked_[out]) return;
    // Ejection consumes flits unconditionally (the NI drains one flit per
    // ejection port per cycle by construction of the crossbar).
    if (!links_[out].IsEjection() &&
        credits_[OvcIndex(out, in_out_vc_[idx])] == 0) {
      return;
    }
    sa_requests_.push_back(SaRequest{p, c, out});
  });

  if (config_.prioritize_nonspeculative && config_.speculative_sa) {
    // Becker-style pessimistic masking: drop speculative requests whose
    // output port is also wanted by an established (non-speculative)
    // packet this cycle.
    std::vector<bool>& nonspec_wants = nonspec_wants_;
    std::fill(nonspec_wants.begin(), nonspec_wants.end(), false);
    for (const SaRequest& r : sa_requests_) {
      if (!just_activated_[r.in_port * config_.num_vcs + r.vc]) {
        nonspec_wants[r.out_port] = true;
      }
    }
    std::erase_if(sa_requests_, [&](const SaRequest& r) {
      return just_activated_[r.in_port * config_.num_vcs + r.vc] &&
             nonspec_wants[r.out_port];
    });
  }

  activity_.sa_requests += sa_requests_.size();
  if (!sa_requests_.empty()) ++activity_.cycles_with_requests;
}

void Router::CommitGrants(Cycle now, std::vector<SentFlit>* sent_flits,
                          std::vector<SentCredit>* sent_credits) {
  (void)now;
  std::fill(out_used_scratch_.begin(), out_used_scratch_.end(), false);
  std::fill(xin_used_scratch_.begin(), xin_used_scratch_.end(), false);
  for (const SaGrant& g : sa_grants_) {
    const int idx = IvcIndex(g.in_port, g.vc);
    // Structural legality: one grant per output port, one per crossbar
    // input, granted VC actually ready. Cheap enough to keep in release.
    VIXNOC_CHECK(!out_used_scratch_[g.out_port]);
    out_used_scratch_[g.out_port] = true;
    const std::size_t xin =
        static_cast<std::size_t>(g.in_port) * config_.NumVins() + g.vin;
    VIXNOC_CHECK(!xin_used_scratch_[xin]);
    xin_used_scratch_[xin] = true;
    VIXNOC_CHECK(in_active_[idx] && buf_count_[idx] > 0);
    VIXNOC_CHECK(in_out_port_[idx] == g.out_port);

    Flit flit = HeadFlit(idx);
    PopFlit(idx);
    ++activity_.buffer_reads;
    ++activity_.xbar_traversals;
    ++flits_per_out_[g.out_port];

    flit.vc = in_out_vc_[idx];
    flit.route_out = in_lookahead_[idx];
    flit.dateline = in_next_dateline_[idx];

    if (!links_[g.out_port].IsEjection()) {
      const int ovc = OvcIndex(g.out_port, in_out_vc_[idx]);
      VIXNOC_DCHECK(credits_[ovc] > 0);
      --credits_[ovc];
      ++activity_.link_flits;
      if (flit.IsTail()) out_allocated_[ovc] = 0;
    }

    if (flit.IsTail()) {
      in_active_[idx] = 0;
      in_out_port_[idx] = kInvalidPort;
      in_out_vc_[idx] = kInvalidVc;
      in_lookahead_[idx] = kInvalidPort;
      sa_cand_.Clear(idx);
      if (buf_count_[idx] > 0) va_cand_.Set(idx);
    } else if (buf_count_[idx] == 0) {
      sa_cand_.Clear(idx);
    }

    sent_flits->push_back(SentFlit{g.out_port, flit});
    sent_credits->push_back(SentCredit{g.in_port, g.vc});
  }
  activity_.sa_grants += sa_grants_.size();
}

void Router::Step(Cycle now, std::vector<SentFlit>* sent_flits,
                  std::vector<SentCredit>* sent_credits) {
  ++activity_.cycles;
  std::fill(just_activated_.begin(), just_activated_.end(), false);
  RunVcAllocation();
  BuildSaRequests();
  allocator_->Allocate(sa_requests_, &sa_grants_);
  VIXNOC_DCHECK(GrantsAreLegal(allocator_->geometry(), sa_requests_,
                               sa_grants_));
  if (rt_ != nullptr) CollectCycleTelemetry(now);
  CommitGrants(now, sent_flits, sent_credits);
}

void Router::CollectCycleTelemetry(Cycle now) {
  rt_->RecordAllocationCycle(sa_requests_, sa_grants_);

  for (PortId p = 0; p < config_.radix; ++p) {
    int occupancy = 0;
    for (VcId c = 0; c < config_.num_vcs; ++c) {
      const int idx = IvcIndex(p, c);
      occupancy += buf_count_[idx];
      RouterTelemetry::VcState s;
      if (buf_count_[idx] == 0) {
        s = RouterTelemetry::VcState::kEmpty;
      } else if (!in_active_[idx]) {
        s = RouterTelemetry::VcState::kVaStall;
      } else if (rt_->WasGranted(p, c)) {
        s = RouterTelemetry::VcState::kMoving;
      } else {
        const PortId out = in_out_port_[idx];
        const bool link_down = num_blocked_ > 0 && output_blocked_[out];
        const bool no_credit =
            !links_[out].IsEjection() &&
            credits_[OvcIndex(out, in_out_vc_[idx])] == 0;
        s = (link_down || no_credit) ? RouterTelemetry::VcState::kCreditStall
                                     : RouterTelemetry::VcState::kSaStall;
      }
      rt_->RecordVcState(p, c, s);
    }
    rt_->RecordPortOccupancy(p, occupancy);
  }

  if (tcol_->tracing()) {
    // VA and SA milestones for sampled packets. Grants have not been
    // committed yet, so every granted VC's moving flit is still at the
    // front of its buffer.
    const int total = config_.radix * config_.num_vcs;
    for (int idx = 0; idx < total; ++idx) {
      if (!just_activated_[idx]) continue;
      if (buf_count_[idx] == 0) continue;
      const Flit& head = HeadFlit(idx);
      if (!tcol_->SampleTrace(head.packet_id)) continue;
      tcol_->RecordTraceEvent(PacketTraceEvent{
          head.packet_id, PacketTraceEvent::Kind::kVcAlloc, now, id_,
          head.src, head.dst});
    }
    for (const SaGrant& g : sa_grants_) {
      const Flit& f = HeadFlit(IvcIndex(g.in_port, g.vc));
      if (!f.IsHead() || !tcol_->SampleTrace(f.packet_id)) continue;
      tcol_->RecordTraceEvent(PacketTraceEvent{
          f.packet_id, PacketTraceEvent::Kind::kSaGrant, now, id_, f.src,
          f.dst});
    }
  }
}

bool Router::Quiescent() const {
  for (std::size_t idx = 0; idx < buf_count_.size(); ++idx) {
    if (buf_count_[idx] != 0 || in_active_[idx]) return false;
  }
  return true;
}

int Router::BufferOccupancy(PortId in_port, VcId vc) const {
  return buf_count_[IvcIndex(in_port, vc)];
}

int Router::TotalBufferedFlits() const {
  int total = 0;
  for (const std::int32_t n : buf_count_) total += n;
  return total;
}

void Router::SetOutputBlocked(PortId out_port, bool blocked) {
  VIXNOC_CHECK(out_port >= 0 && out_port < config_.radix);
  if (output_blocked_[out_port] == blocked) return;
  output_blocked_[out_port] = blocked;
  num_blocked_ += blocked ? 1 : -1;
}

int Router::CreditsFor(PortId out_port, VcId out_vc) const {
  return credits_[OvcIndex(out_port, out_vc)];
}

void SaveFlit(SnapshotWriter& w, const Flit& f) {
  w.U64(f.packet_id);
  w.I32(f.src);
  w.I32(f.dst);
  w.U8(static_cast<std::uint8_t>(f.type));
  w.U16(f.seq);
  w.U16(f.packet_size);
  w.U64(f.created);
  w.U64(f.injected);
  w.I32(f.vc);
  w.I32(f.route_out);
  w.U64(f.user_tag);
  w.U8(f.msg_class);
  w.U8(f.dateline);
  w.B(f.corrupted);
}

Flit LoadFlit(SnapshotReader& r) {
  Flit f;
  f.packet_id = r.U64();
  f.src = r.I32();
  f.dst = r.I32();
  const std::uint8_t type = r.U8();
  VIXNOC_REQUIRE(type <= static_cast<std::uint8_t>(FlitType::kHeadTail),
                 "restored flit has invalid type %u", type);
  f.type = static_cast<FlitType>(type);
  f.seq = r.U16();
  f.packet_size = r.U16();
  f.created = r.U64();
  f.injected = r.U64();
  f.vc = r.I32();
  f.route_out = r.I32();
  f.user_tag = r.U64();
  f.msg_class = r.U8();
  f.dateline = r.U8();
  f.corrupted = r.B();
  return f;
}

void SaveRouterActivity(SnapshotWriter& w, const RouterActivity& a) {
  w.U64(a.buffer_writes);
  w.U64(a.buffer_reads);
  w.U64(a.xbar_traversals);
  w.U64(a.link_flits);
  w.U64(a.sa_requests);
  w.U64(a.sa_grants);
  w.U64(a.va_requests);
  w.U64(a.va_grants);
  w.U64(a.cycles);
  w.U64(a.cycles_with_requests);
}

RouterActivity LoadRouterActivity(SnapshotReader& r) {
  RouterActivity a;
  a.buffer_writes = r.U64();
  a.buffer_reads = r.U64();
  a.xbar_traversals = r.U64();
  a.link_flits = r.U64();
  a.sa_requests = r.U64();
  a.sa_grants = r.U64();
  a.va_requests = r.U64();
  a.va_grants = r.U64();
  a.cycles = r.U64();
  a.cycles_with_requests = r.U64();
  return a;
}

void Router::SaveState(SnapshotWriter& w) const {
  // Input VCs: buffered flits plus the per-packet VC-allocation state. The
  // byte layout predates the SoA storage and is kept bit-identical.
  const int total = config_.radix * config_.num_vcs;
  for (int idx = 0; idx < total; ++idx) {
    w.U32(static_cast<std::uint32_t>(buf_count_[idx]));
    for (int i = 0; i < buf_count_[idx]; ++i) {
      SaveFlit(w, BufferedFlit(idx, i));
    }
    w.B(in_active_[idx] != 0);
    w.I32(in_out_port_[idx]);
    w.I32(in_out_vc_[idx]);
    w.I32(in_lookahead_[idx]);
    w.U8(in_next_dateline_[idx]);
  }
  // Output VCs: credit counters and allocation flags.
  for (int ovc = 0; ovc < total; ++ovc) {
    w.I32(credits_[ovc]);
    w.B(out_allocated_[ovc] != 0);
  }
  w.I32(va_rr_ptr_);
  w.VecBool(just_activated_);
  allocator_->SaveState(w);
  SaveRouterActivity(w, activity_);
  w.VecU64(flits_per_out_);
  SaveRng(w, vc_rng_);
}

void Router::LoadState(SnapshotReader& r) {
  const int depth = config_.buffer_depth;
  const int total = config_.radix * config_.num_vcs;
  for (int idx = 0; idx < total; ++idx) {
    const std::uint32_t n = r.U32();
    VIXNOC_REQUIRE(n <= static_cast<std::uint32_t>(depth),
                   "restored input VC holds %u flits, buffer depth is %d", n,
                   depth);
    buf_head_[idx] = 0;
    buf_count_[idx] = 0;
    for (std::uint32_t i = 0; i < n; ++i) PushFlit(idx, LoadFlit(r));
    in_active_[idx] = r.B() ? 1 : 0;
    in_out_port_[idx] = r.I32();
    in_out_vc_[idx] = r.I32();
    in_lookahead_[idx] = r.I32();
    in_next_dateline_[idx] = r.U8();
  }
  for (int ovc = 0; ovc < total; ++ovc) {
    const int credits = r.I32();
    VIXNOC_REQUIRE(credits >= 0 && credits <= depth,
                   "restored credit count %d outside [0, %d]", credits,
                   depth);
    credits_[ovc] = credits;
    out_allocated_[ovc] = r.B() ? 1 : 0;
  }
  const int ptr = r.I32();
  VIXNOC_REQUIRE(ptr >= 0 && ptr < total,
                 "restored VA pointer %d outside [0, %d)", ptr, total);
  va_rr_ptr_ = ptr;
  std::vector<bool> just = r.VecBool();
  VIXNOC_REQUIRE(just.size() == just_activated_.size(),
                 "restored VA-grant mask has %zu entries, expected %zu",
                 just.size(), just_activated_.size());
  just_activated_ = std::move(just);
  allocator_->LoadState(r);
  activity_ = LoadRouterActivity(r);
  std::vector<std::uint64_t> per_out = r.VecU64();
  VIXNOC_REQUIRE(per_out.size() == flits_per_out_.size(),
                 "restored per-output flit counters have %zu entries, "
                 "expected %zu",
                 per_out.size(), flits_per_out_.size());
  flits_per_out_ = std::move(per_out);
  LoadRng(r, &vc_rng_);

  // Candidate masks are derived state; rebuild from the restored buffers.
  va_cand_.ClearAll();
  sa_cand_.ClearAll();
  for (int idx = 0; idx < total; ++idx) {
    if (buf_count_[idx] == 0) continue;
    if (in_active_[idx]) {
      sa_cand_.Set(idx);
    } else {
      va_cand_.Set(idx);
    }
  }
}

}  // namespace vixnoc
