#include "router/router.hpp"

#include <algorithm>

#include "alloc/augmenting_path.hpp"
#include "common/error.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/state_io.hpp"
#include "telemetry/telemetry.hpp"

namespace vixnoc {

Router::Router(RouterId id, const RouterConfig& config,
               std::vector<OutputLinkInfo> links,
               const RoutingFunction* routing)
    : id_(id), config_(config), routing_(routing), links_(std::move(links)) {
  VIXNOC_REQUIRE(static_cast<int>(links_.size()) == config_.radix,
                 "router %d: %zu output links for radix %d", id_,
                 links_.size(), config_.radix);
  VIXNOC_REQUIRE(config_.num_vcs >= 1, "num_vcs must be >= 1, got %d",
                 config_.num_vcs);
  VIXNOC_REQUIRE(config_.buffer_depth >= 1,
                 "buffer_depth must be >= 1, got %d", config_.buffer_depth);
  VIXNOC_CHECK(routing_ != nullptr);
  VIXNOC_REQUIRE(config_.num_message_classes >= 1,
                 "num_message_classes must be >= 1, got %d",
                 config_.num_message_classes);
  VIXNOC_REQUIRE(config_.num_vcs % config_.num_message_classes == 0,
                 "num_vcs (%d) must be divisible by num_message_classes (%d)",
                 config_.num_vcs, config_.num_message_classes);

  input_vcs_.resize(static_cast<std::size_t>(config_.radix) *
                    config_.num_vcs);
  outputs_.resize(config_.radix);
  for (PortId o = 0; o < config_.radix; ++o) {
    outputs_[o].link = links_[o];
    outputs_[o].vcs.resize(config_.num_vcs);
    for (auto& ovc : outputs_[o].vcs) {
      ovc.credits = config_.buffer_depth;
    }
  }

  SwitchGeometry geom;
  geom.num_inports = config_.radix;
  geom.num_outports = config_.radix;
  geom.num_vcs = config_.num_vcs;
  geom.num_vins = config_.NumVins();
  geom.interleaved_vins = config_.interleaved_vins;
  if (config_.scheme == AllocScheme::kAugmentingPath &&
      !config_.ap_rotate_vcs) {
    allocator_ = std::make_unique<AugmentingPathAllocator>(geom, false);
  } else {
    allocator_ =
        MakeSwitchAllocator(config_.scheme, geom, config_.arbiter_kind);
  }
  vc_view_scratch_.resize(config_.num_vcs);
  va_prefs_.reserve(input_vcs_.size());
  nonspec_wants_.assign(config_.radix, false);
  just_activated_.assign(input_vcs_.size(), false);
  output_blocked_.assign(config_.radix, false);
  flits_per_out_.assign(config_.radix, 0);
  out_used_scratch_.assign(config_.radix, false);
  xin_used_scratch_.assign(
      static_cast<std::size_t>(config_.radix) * config_.NumVins(), false);
  // Distinct stream per router: mix the id into the base seed before the
  // SplitMix expansion inside Reseed.
  vc_rng_.Reseed(config_.vc_rng_seed +
                 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(id_) + 1));
}

void Router::SetTelemetry(TelemetryCollector* collector) {
  tcol_ = collector;
  rt_ = collector != nullptr ? &collector->router(id_) : nullptr;
  allocator_->set_telemetry(rt_ != nullptr ? &rt_->alloc : nullptr);
}

void Router::ClearActivity() {
  activity_.Clear();
  std::fill(flits_per_out_.begin(), flits_per_out_.end(), 0);
}

void Router::AcceptFlit(PortId in_port, const Flit& flit) {
  VIXNOC_CHECK(in_port >= 0 && in_port < config_.radix);
  VIXNOC_CHECK(flit.vc >= 0 && flit.vc < config_.num_vcs);
  VIXNOC_CHECK(flit.route_out >= 0 && flit.route_out < config_.radix);
  InputVc& v = ivc(in_port, flit.vc);
  // Credit protocol guarantees space; overflow means lost credits upstream.
  VIXNOC_CHECK(static_cast<int>(v.buffer.size()) < config_.buffer_depth);
  v.buffer.push_back(flit);
  ++activity_.buffer_writes;
}

void Router::AcceptCredit(PortId out_port, VcId out_vc) {
  VIXNOC_CHECK(out_port >= 0 && out_port < config_.radix);
  VIXNOC_CHECK(out_vc >= 0 && out_vc < config_.num_vcs);
  OutputVc& ovc = outputs_[out_port].vcs[out_vc];
  ++ovc.credits;
  VIXNOC_CHECK(ovc.credits <= config_.buffer_depth);
}

void Router::RunVcAllocation() {
  // Head packets request an output VC; candidates are visited in an order
  // that rotates across cycles so no input VC systematically wins ties.
  //
  // Two VA organizations:
  //  * kGreedyRotating (default): candidates are served sequentially, each
  //    seeing the allocations made earlier the same cycle — an idealized
  //    allocator where a blocked preference immediately falls back to the
  //    next-best free VC.
  //  * kSeparableArbitrated: every candidate states one preference against
  //    the cycle-start state, then one arbiter per output VC picks a
  //    winner; losers retry next cycle — the behaviour of a real separable
  //    VC allocator (Becker & Dally).
  const bool separable = config_.va_organization ==
                         VaOrganization::kSeparableArbitrated;
  std::vector<VaPreference>& preferences = va_prefs_;
  preferences.clear();

  const int total = config_.radix * config_.num_vcs;
  for (int off = 0; off < total; ++off) {
    const int idx = (va_rr_ptr_ + off) % total;
    const PortId p = idx / config_.num_vcs;
    const VcId c = idx % config_.num_vcs;
    InputVc& v = ivc(p, c);
    if (v.active || v.buffer.empty()) continue;
    const Flit& head = v.buffer.front();
    VIXNOC_CHECK(head.IsHead());
    ++activity_.va_requests;

    const PortId out_port = head.route_out;
    OutputPort& op = outputs_[out_port];
    // Routing functions must never steer a packet to an unconnected port.
    VIXNOC_CHECK(op.link.IsConnected());
    // Down link: the packet waits in its buffer without claiming a VC.
    if (num_blocked_ > 0 && output_blocked_[out_port]) continue;

    // Lookahead route computation for the downstream router; ejection ports
    // terminate at an NI, so there is no next hop.
    PortId lookahead = kInvalidPort;
    PortDimension downstream_dim = PortDimension::kLocal;
    if (!op.link.IsEjection()) {
      lookahead = routing_->Route(op.link.neighbor, head.dst);
      downstream_dim = routing_->DimensionOf(lookahead);
    }

    if (op.link.IsEjection()) {
      // NIs accept any VC and reassemble; no allocation state is needed and
      // interleaving packets on the ejection port is harmless.
      v.next_dateline = head.dateline;
      v.active = true;
      v.out_port = out_port;
      v.out_vc = c % config_.num_vcs;
      v.lookahead_out = lookahead;
      just_activated_[idx] = true;
      ++activity_.va_grants;
      continue;
    }

    // Virtual networks: a packet may only use VCs of its message class.
    const int cls = head.msg_class;
    VIXNOC_CHECK(cls < config_.num_message_classes);
    const int vpc = config_.VcsPerClass();
    const VcId cls_base = cls * vpc;
    // Dateline restriction: the packet's state after traversing this
    // output's channel selects which part of the class partition it may
    // occupy downstream (torus deadlock avoidance; full range elsewhere).
    const std::uint8_t next_state =
        routing_->NextDatelineState(id_, out_port, head.dateline);
    const VcRange range = routing_->AllowedVcRange(out_port, next_state, vpc);
    VIXNOC_DCHECK(range.lo >= 0 && range.lo < range.hi && range.hi <= vpc);
    const int span = range.hi - range.lo;
    vc_view_scratch_.resize(span);
    for (VcId i = 0; i < span; ++i) {
      const VcId ovc = cls_base + range.lo + i;
      bool busy = op.vcs[ovc].allocated;
      if (config_.atomic_vc_alloc &&
          op.vcs[ovc].credits < config_.buffer_depth) {
        busy = true;  // downstream buffer not empty: VC not reallocatable
      }
      vc_view_scratch_[i].allocated = busy;
      vc_view_scratch_[i].credits = op.vcs[ovc].credits;
    }
    VinLayout layout;
    layout.num_vins = config_.NumVins();
    layout.total_vcs = config_.num_vcs;
    layout.interleaved = config_.interleaved_vins;
    layout.first_vc = cls_base + range.lo;
    const int pick = PickOutputVc(config_.vc_policy, vc_view_scratch_,
                                  layout, downstream_dim, &vc_rng_);
    if (pick < 0) continue;  // all usable VCs busy: stall
    const VcId out_vc = cls_base + range.lo + pick;

    if (separable) {
      preferences.push_back(
          VaPreference{idx, out_port, out_vc, lookahead, next_state});
      continue;
    }

    op.vcs[out_vc].allocated = true;
    v.next_dateline = next_state;
    v.active = true;
    v.out_port = out_port;
    v.out_vc = out_vc;
    v.lookahead_out = lookahead;
    just_activated_[idx] = true;
    ++activity_.va_grants;
  }

  if (separable && !preferences.empty()) {
    // Output-side arbitration: one winner per (out_port, out_vc). The
    // rotating visit order above doubles as the arbitration priority,
    // which rotates every cycle, so losers cannot starve.
    for (const VaPreference& pref : preferences) {
      OutputPort& op = outputs_[pref.out_port];
      if (op.vcs[pref.out_vc].allocated) continue;  // lost this cycle
      op.vcs[pref.out_vc].allocated = true;
      InputVc& v = input_vcs_[pref.idx];
      v.next_dateline = pref.next_dateline;
      v.active = true;
      v.out_port = pref.out_port;
      v.out_vc = pref.out_vc;
      v.lookahead_out = pref.lookahead;
      just_activated_[pref.idx] = true;
      ++activity_.va_grants;
    }
  }

  va_rr_ptr_ = (va_rr_ptr_ + 1) % total;
}

void Router::BuildSaRequests() {
  sa_requests_.clear();
  for (PortId p = 0; p < config_.radix; ++p) {
    for (VcId c = 0; c < config_.num_vcs; ++c) {
      const InputVc& v = ivc(p, c);
      if (!v.active || v.buffer.empty()) continue;
      if (!config_.speculative_sa &&
          just_activated_[p * config_.num_vcs + c]) {
        continue;  // VA this cycle, SA earliest next cycle (Fig 6a)
      }
      const OutputPort& op = outputs_[v.out_port];
      // Down link: established packets hold their VC but send nothing until
      // the link is repaired.
      if (num_blocked_ > 0 && output_blocked_[v.out_port]) continue;
      // Ejection consumes flits unconditionally (the NI drains one flit per
      // ejection port per cycle by construction of the crossbar).
      if (!op.link.IsEjection() && op.vcs[v.out_vc].credits == 0) continue;
      sa_requests_.push_back(SaRequest{p, c, v.out_port});
    }
  }

  if (config_.prioritize_nonspeculative && config_.speculative_sa) {
    // Becker-style pessimistic masking: drop speculative requests whose
    // output port is also wanted by an established (non-speculative)
    // packet this cycle.
    std::vector<bool>& nonspec_wants = nonspec_wants_;
    std::fill(nonspec_wants.begin(), nonspec_wants.end(), false);
    for (const SaRequest& r : sa_requests_) {
      if (!just_activated_[r.in_port * config_.num_vcs + r.vc]) {
        nonspec_wants[r.out_port] = true;
      }
    }
    std::erase_if(sa_requests_, [&](const SaRequest& r) {
      return just_activated_[r.in_port * config_.num_vcs + r.vc] &&
             nonspec_wants[r.out_port];
    });
  }

  activity_.sa_requests += sa_requests_.size();
  if (!sa_requests_.empty()) ++activity_.cycles_with_requests;
}

void Router::CommitGrants(Cycle now, std::vector<SentFlit>* sent_flits,
                          std::vector<SentCredit>* sent_credits) {
  (void)now;
  std::fill(out_used_scratch_.begin(), out_used_scratch_.end(), false);
  std::fill(xin_used_scratch_.begin(), xin_used_scratch_.end(), false);
  for (const SaGrant& g : sa_grants_) {
    InputVc& v = ivc(g.in_port, g.vc);
    // Structural legality: one grant per output port, one per crossbar
    // input, granted VC actually ready. Cheap enough to keep in release.
    VIXNOC_CHECK(!out_used_scratch_[g.out_port]);
    out_used_scratch_[g.out_port] = true;
    const std::size_t xin =
        static_cast<std::size_t>(g.in_port) * config_.NumVins() + g.vin;
    VIXNOC_CHECK(!xin_used_scratch_[xin]);
    xin_used_scratch_[xin] = true;
    VIXNOC_CHECK(v.active && !v.buffer.empty());
    VIXNOC_CHECK(v.out_port == g.out_port);

    Flit flit = v.buffer.front();
    v.buffer.pop_front();
    ++activity_.buffer_reads;
    ++activity_.xbar_traversals;
    ++flits_per_out_[g.out_port];

    OutputPort& op = outputs_[g.out_port];
    flit.vc = v.out_vc;
    flit.route_out = v.lookahead_out;
    flit.dateline = v.next_dateline;

    if (!op.link.IsEjection()) {
      OutputVc& ovc = op.vcs[v.out_vc];
      VIXNOC_DCHECK(ovc.credits > 0);
      --ovc.credits;
      ++activity_.link_flits;
      if (flit.IsTail()) ovc.allocated = false;
    }

    if (flit.IsTail()) {
      v.active = false;
      v.out_port = kInvalidPort;
      v.out_vc = kInvalidVc;
      v.lookahead_out = kInvalidPort;
    }

    sent_flits->push_back(SentFlit{g.out_port, flit});
    sent_credits->push_back(SentCredit{g.in_port, g.vc});
  }
  activity_.sa_grants += sa_grants_.size();
}

void Router::Step(Cycle now, std::vector<SentFlit>* sent_flits,
                  std::vector<SentCredit>* sent_credits) {
  ++activity_.cycles;
  std::fill(just_activated_.begin(), just_activated_.end(), false);
  RunVcAllocation();
  BuildSaRequests();
  allocator_->Allocate(sa_requests_, &sa_grants_);
  VIXNOC_DCHECK(GrantsAreLegal(allocator_->geometry(), sa_requests_,
                               sa_grants_));
  if (rt_ != nullptr) CollectCycleTelemetry(now);
  CommitGrants(now, sent_flits, sent_credits);
}

void Router::CollectCycleTelemetry(Cycle now) {
  rt_->RecordAllocationCycle(sa_requests_, sa_grants_);

  for (PortId p = 0; p < config_.radix; ++p) {
    int occupancy = 0;
    for (VcId c = 0; c < config_.num_vcs; ++c) {
      const InputVc& v = ivc(p, c);
      occupancy += static_cast<int>(v.buffer.size());
      RouterTelemetry::VcState s;
      if (v.buffer.empty()) {
        s = RouterTelemetry::VcState::kEmpty;
      } else if (!v.active) {
        s = RouterTelemetry::VcState::kVaStall;
      } else if (rt_->WasGranted(p, c)) {
        s = RouterTelemetry::VcState::kMoving;
      } else {
        const OutputPort& op = outputs_[v.out_port];
        const bool link_down =
            num_blocked_ > 0 && output_blocked_[v.out_port];
        const bool no_credit =
            !op.link.IsEjection() && op.vcs[v.out_vc].credits == 0;
        s = (link_down || no_credit) ? RouterTelemetry::VcState::kCreditStall
                                     : RouterTelemetry::VcState::kSaStall;
      }
      rt_->RecordVcState(p, c, s);
    }
    rt_->RecordPortOccupancy(p, occupancy);
  }

  if (tcol_->tracing()) {
    // VA and SA milestones for sampled packets. Grants have not been
    // committed yet, so every granted VC's moving flit is still at the
    // front of its buffer.
    const int total = config_.radix * config_.num_vcs;
    for (int idx = 0; idx < total; ++idx) {
      if (!just_activated_[idx]) continue;
      const InputVc& v = input_vcs_[idx];
      if (v.buffer.empty()) continue;
      const Flit& head = v.buffer.front();
      if (!tcol_->SampleTrace(head.packet_id)) continue;
      tcol_->RecordTraceEvent(PacketTraceEvent{
          head.packet_id, PacketTraceEvent::Kind::kVcAlloc, now, id_,
          head.src, head.dst});
    }
    for (const SaGrant& g : sa_grants_) {
      const Flit& f = ivc(g.in_port, g.vc).buffer.front();
      if (!f.IsHead() || !tcol_->SampleTrace(f.packet_id)) continue;
      tcol_->RecordTraceEvent(PacketTraceEvent{
          f.packet_id, PacketTraceEvent::Kind::kSaGrant, now, id_, f.src,
          f.dst});
    }
  }
}

bool Router::Quiescent() const {
  for (const InputVc& v : input_vcs_) {
    if (!v.buffer.empty() || v.active) return false;
  }
  return true;
}

int Router::BufferOccupancy(PortId in_port, VcId vc) const {
  return static_cast<int>(ivc(in_port, vc).buffer.size());
}

int Router::TotalBufferedFlits() const {
  int total = 0;
  for (const InputVc& v : input_vcs_) {
    total += static_cast<int>(v.buffer.size());
  }
  return total;
}

void Router::SetOutputBlocked(PortId out_port, bool blocked) {
  VIXNOC_CHECK(out_port >= 0 && out_port < config_.radix);
  if (output_blocked_[out_port] == blocked) return;
  output_blocked_[out_port] = blocked;
  num_blocked_ += blocked ? 1 : -1;
}

int Router::CreditsFor(PortId out_port, VcId out_vc) const {
  return outputs_[out_port].vcs[out_vc].credits;
}

void SaveFlit(SnapshotWriter& w, const Flit& f) {
  w.U64(f.packet_id);
  w.I32(f.src);
  w.I32(f.dst);
  w.U8(static_cast<std::uint8_t>(f.type));
  w.U16(f.seq);
  w.U16(f.packet_size);
  w.U64(f.created);
  w.U64(f.injected);
  w.I32(f.vc);
  w.I32(f.route_out);
  w.U64(f.user_tag);
  w.U8(f.msg_class);
  w.U8(f.dateline);
  w.B(f.corrupted);
}

Flit LoadFlit(SnapshotReader& r) {
  Flit f;
  f.packet_id = r.U64();
  f.src = r.I32();
  f.dst = r.I32();
  const std::uint8_t type = r.U8();
  VIXNOC_REQUIRE(type <= static_cast<std::uint8_t>(FlitType::kHeadTail),
                 "restored flit has invalid type %u", type);
  f.type = static_cast<FlitType>(type);
  f.seq = r.U16();
  f.packet_size = r.U16();
  f.created = r.U64();
  f.injected = r.U64();
  f.vc = r.I32();
  f.route_out = r.I32();
  f.user_tag = r.U64();
  f.msg_class = r.U8();
  f.dateline = r.U8();
  f.corrupted = r.B();
  return f;
}

void SaveRouterActivity(SnapshotWriter& w, const RouterActivity& a) {
  w.U64(a.buffer_writes);
  w.U64(a.buffer_reads);
  w.U64(a.xbar_traversals);
  w.U64(a.link_flits);
  w.U64(a.sa_requests);
  w.U64(a.sa_grants);
  w.U64(a.va_requests);
  w.U64(a.va_grants);
  w.U64(a.cycles);
  w.U64(a.cycles_with_requests);
}

RouterActivity LoadRouterActivity(SnapshotReader& r) {
  RouterActivity a;
  a.buffer_writes = r.U64();
  a.buffer_reads = r.U64();
  a.xbar_traversals = r.U64();
  a.link_flits = r.U64();
  a.sa_requests = r.U64();
  a.sa_grants = r.U64();
  a.va_requests = r.U64();
  a.va_grants = r.U64();
  a.cycles = r.U64();
  a.cycles_with_requests = r.U64();
  return a;
}

void Router::SaveState(SnapshotWriter& w) const {
  // Input VCs: buffered flits plus the per-packet VC-allocation state.
  for (const InputVc& iv : input_vcs_) {
    w.U32(static_cast<std::uint32_t>(iv.buffer.size()));
    for (const Flit& f : iv.buffer) SaveFlit(w, f);
    w.B(iv.active);
    w.I32(iv.out_port);
    w.I32(iv.out_vc);
    w.I32(iv.lookahead_out);
    w.U8(iv.next_dateline);
  }
  // Output VCs: credit counters and allocation flags.
  for (const OutputPort& op : outputs_) {
    for (const OutputVc& ov : op.vcs) {
      w.I32(ov.credits);
      w.B(ov.allocated);
    }
  }
  w.I32(va_rr_ptr_);
  w.VecBool(just_activated_);
  allocator_->SaveState(w);
  SaveRouterActivity(w, activity_);
  w.VecU64(flits_per_out_);
  SaveRng(w, vc_rng_);
}

void Router::LoadState(SnapshotReader& r) {
  const int depth = config_.buffer_depth;
  for (InputVc& iv : input_vcs_) {
    const std::uint32_t n = r.U32();
    VIXNOC_REQUIRE(n <= static_cast<std::uint32_t>(depth),
                   "restored input VC holds %u flits, buffer depth is %d", n,
                   depth);
    iv.buffer.clear();
    for (std::uint32_t i = 0; i < n; ++i) iv.buffer.push_back(LoadFlit(r));
    iv.active = r.B();
    iv.out_port = r.I32();
    iv.out_vc = r.I32();
    iv.lookahead_out = r.I32();
    iv.next_dateline = r.U8();
  }
  for (OutputPort& op : outputs_) {
    for (OutputVc& ov : op.vcs) {
      const int credits = r.I32();
      VIXNOC_REQUIRE(credits >= 0 && credits <= depth,
                     "restored credit count %d outside [0, %d]", credits,
                     depth);
      ov.credits = credits;
      ov.allocated = r.B();
    }
  }
  const int ptr = r.I32();
  VIXNOC_REQUIRE(ptr >= 0 && ptr < static_cast<int>(input_vcs_.size()),
                 "restored VA pointer %d outside [0, %zu)", ptr,
                 input_vcs_.size());
  va_rr_ptr_ = ptr;
  std::vector<bool> just = r.VecBool();
  VIXNOC_REQUIRE(just.size() == just_activated_.size(),
                 "restored VA-grant mask has %zu entries, expected %zu",
                 just.size(), just_activated_.size());
  just_activated_ = std::move(just);
  allocator_->LoadState(r);
  activity_ = LoadRouterActivity(r);
  std::vector<std::uint64_t> per_out = r.VecU64();
  VIXNOC_REQUIRE(per_out.size() == flits_per_out_.size(),
                 "restored per-output flit counters have %zu entries, "
                 "expected %zu",
                 per_out.size(), flits_per_out_.size());
  flits_per_out_ = std::move(per_out);
  LoadRng(r, &vc_rng_);
}

}  // namespace vixnoc
