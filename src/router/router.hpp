// Cycle-accurate virtual-channel wormhole router with the paper's optimized
// 3-stage pipeline (Fig 6b): lookahead routing + VA/SA in one stage, switch
// traversal, link traversal. Credit-based VC flow control; non-atomic VC
// buffers (multiple packets may queue back-to-back in one VC FIFO).
//
// The router is topology-agnostic: a per-output-port link table names the
// downstream router (or the network interface for ejection ports), and a
// RoutingAlgorithm supplies lookahead route computation.
//
// Data layout: per-VC state lives in parallel arrays indexed by
// idx = in_port * num_vcs + vc (structure-of-arrays), with flit buffers in
// one contiguous ring-buffer pool. Two bit masks — VA candidates (head flit
// waiting, no output VC yet) and SA candidates (output VC held, buffer
// non-empty) — are maintained incrementally at every state transition, so
// the per-cycle VA/SA scans visit only live VCs via ctz instead of walking
// all radix * num_vcs slots. Both scans visit candidates in exactly the
// order the straightforward full scans would, keeping behaviour bitwise
// identical.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/request_matrix.hpp"
#include "alloc/switch_allocator.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "router/flit.hpp"
#include "routing/routing_algorithm.hpp"
#include "router/vc_assign.hpp"

namespace vixnoc {

class RouterTelemetry;
class TelemetryCollector;

/// How the VA stage resolves competition for output VCs.
enum class VaOrganization {
  /// Candidates served sequentially (rotating start); a blocked preference
  /// immediately falls back to the next free VC — an idealized allocator.
  kGreedyRotating,
  /// Every candidate states one preference against cycle-start state; one
  /// winner per output VC, losers retry next cycle — a real separable VC
  /// allocator's behaviour.
  kSeparableArbitrated,
};

/// Static configuration for one router (all routers in a network share it).
struct RouterConfig {
  int radix = 5;          ///< physical input = output ports
  int num_vcs = 6;        ///< virtual channels per input port
  int buffer_depth = 5;   ///< flit-buffers per VC
  AllocScheme scheme = AllocScheme::kInputFirst;
  ArbiterKind arbiter_kind = ArbiterKind::kRoundRobin;
  VcAssignPolicy vc_policy = VcAssignPolicy::kMaxCredits;
  /// For kVix only: overrides the number of virtual inputs per port
  /// (0 = the scheme default of 2). Must divide num_vcs. Lets ablations
  /// sweep 1:3, 1:6, ... crossbars.
  int vix_virtual_inputs = 0;
  /// VC -> virtual-input wiring: false = contiguous blocks (the paper's
  /// Fig 2), true = interleaved (vc % k), which keeps every virtual input
  /// reachable inside any message-class or dateline VC subset.
  bool interleaved_vins = false;
  /// Ablation knob for the AP allocator: false makes its VC selection fully
  /// combinational-deterministic (no round-robin), the paper's stateless
  /// maximum-matching circuit.
  bool ap_rotate_vcs = true;
  /// Speculative switch allocation (Peh & Dally [19], Fig 6b): a head flit
  /// may win VA and SA in the same cycle. When false, a packet that wins
  /// VA first competes in SA the following cycle — the conservative 5-stage
  /// pipeline of Fig 6a.
  bool speculative_sa = true;
  /// VA stage organization (see VaOrganization).
  VaOrganization va_organization = VaOrganization::kGreedyRotating;
  /// Becker & Dally's priority rule (paper §5): when true, speculative
  /// requests (head flits that won VA this very cycle) are masked out of
  /// switch allocation whenever any non-speculative request targets the
  /// same output port, so established packets never lose bandwidth to
  /// speculation. Only meaningful with speculative_sa.
  bool prioritize_nonspeculative = false;
  /// Atomic VC reallocation (BookSim-style): an output VC is assignable
  /// only when the downstream buffer is completely empty (all credits
  /// present), so packets never queue back-to-back in one VC. Default is
  /// the non-atomic (Garnet-style) policy the evaluation uses.
  bool atomic_vc_alloc = false;
  /// Virtual networks: VCs are partitioned into this many equal message
  /// classes and packets only use VCs of their own class. Must divide
  /// num_vcs. With VIX, each class's VCs are further split across virtual
  /// inputs, so num_vcs must also be divisible by classes * virtual inputs
  /// for an even mapping (checked at construction).
  int num_message_classes = 1;
  /// Base seed for the VA-stage RNG (each router derives a per-id stream
  /// from it). Drawn from only under VcAssignPolicy::kRandomFree, so every
  /// deterministic policy is bitwise independent of this value.
  std::uint64_t vc_rng_seed = 0;

  int VcsPerClass() const { return num_vcs / num_message_classes; }

  int NumVins() const {
    if (scheme == AllocScheme::kVix && vix_virtual_inputs > 0) {
      return vix_virtual_inputs;
    }
    return VirtualInputsForScheme(scheme, num_vcs);
  }

  /// Default VC policy for a scheme: VIX schemes use dimension steering.
  static VcAssignPolicy DefaultPolicyFor(AllocScheme scheme) {
    return (scheme == AllocScheme::kVix || scheme == AllocScheme::kVixIdeal)
               ? VcAssignPolicy::kVixDimension
               : VcAssignPolicy::kMaxCredits;
  }
};

/// What an output port connects to. Mesh-edge ports may be unconnected
/// (present for a uniform radix, but never routed to).
struct OutputLinkInfo {
  RouterId neighbor = -1;                 ///< downstream router; -1 = none
  PortId neighbor_in_port = kInvalidPort; ///< input port at the neighbor
  NodeId eject_node = kInvalidNode;       ///< NI node for ejection ports

  bool IsEjection() const { return neighbor < 0 && eject_node >= 0; }
  bool IsConnected() const { return neighbor >= 0 || eject_node >= 0; }
};

/// Activity counters consumed by the statistics and energy models.
struct RouterActivity {
  std::uint64_t buffer_writes = 0;     ///< flits written into input buffers
  std::uint64_t buffer_reads = 0;      ///< flits read out (switch traversal)
  std::uint64_t xbar_traversals = 0;   ///< flits through the crossbar
  std::uint64_t link_flits = 0;        ///< flits sent on inter-router links
  std::uint64_t sa_requests = 0;       ///< switch-allocation requests seen
  std::uint64_t sa_grants = 0;         ///< switch-allocation grants made
  std::uint64_t va_requests = 0;
  std::uint64_t va_grants = 0;
  std::uint64_t cycles = 0;
  std::uint64_t cycles_with_requests = 0;

  void Clear() { *this = RouterActivity{}; }
};

/// Checkpoint encoding of an activity block (implemented in router.cpp).
void SaveRouterActivity(SnapshotWriter& w, const RouterActivity& a);
RouterActivity LoadRouterActivity(SnapshotReader& r);

class Router {
 public:
  /// `links[o]` describes output port o. `routing` may be shared across all
  /// routers; it must outlive the router.
  Router(RouterId id, const RouterConfig& config,
         std::vector<OutputLinkInfo> links, const RoutingAlgorithm* routing);

  RouterId id() const { return id_; }
  const RouterConfig& config() const { return config_; }
  const SwitchGeometry& geometry() const { return allocator_->geometry(); }
  const OutputLinkInfo& link(PortId out) const { return links_[out]; }

  /// Deliver a flit into input buffer (in_port, flit.vc). The caller (the
  /// network's link model or an NI) must have held a credit; overflowing a
  /// buffer is a checked invariant violation.
  void AcceptFlit(PortId in_port, const Flit& flit);

  /// Return a credit for (out_port, out_vc) from the downstream router.
  void AcceptCredit(PortId out_port, VcId out_vc);

  /// A flit leaving on an output port this cycle (switch traversal done;
  /// the network schedules its arrival downstream after link traversal).
  struct SentFlit {
    PortId out_port = kInvalidPort;
    Flit flit;
  };
  /// A credit freed on an input port this cycle, to be returned upstream.
  struct SentCredit {
    PortId in_port = kInvalidPort;
    VcId vc = kInvalidVc;
  };

  /// Advance one cycle: VA, then (speculative, same-cycle) SA, then switch
  /// traversal. Appends emitted flits/credits; does not clear the vectors.
  void Step(Cycle now, std::vector<SentFlit>* sent_flits,
            std::vector<SentCredit>* sent_credits);

  /// True when every buffer is empty and no packet holds VC state — used by
  /// drain phases and the no-flit-loss property tests.
  bool Quiescent() const;

  /// Occupancy of input VC buffer (in_port, vc), in flits.
  int BufferOccupancy(PortId in_port, VcId vc) const;
  /// Total flits buffered across every input VC — the per-router occupancy
  /// snapshot reported by the forward-progress watchdog.
  int TotalBufferedFlits() const;
  /// Free credits the router believes exist for (out_port, out_vc).
  int CreditsFor(PortId out_port, VcId out_vc) const;

  /// Fault hook: while an output port is blocked (its link is down), no VA
  /// grant targets it and no SA request leaves through it. Flits wait in
  /// their buffers and credits are untouched, so a later unblock resumes
  /// cleanly. Zero cost while nothing is blocked.
  void SetOutputBlocked(PortId out_port, bool blocked);
  bool OutputBlocked(PortId out_port) const { return output_blocked_[out_port]; }

  /// Attach this router to a telemetry collector (nullptr detaches). The
  /// router records into collector->router(id()); with no collector the
  /// per-cycle cost is one pointer test and simulation results are bitwise
  /// identical (telemetry never mutates router state or draws randomness).
  void SetTelemetry(TelemetryCollector* collector);

  const RouterActivity& activity() const { return activity_; }
  void ClearActivity();

  /// Checkpoint/restore of all mutable state: input VC buffers and packet
  /// state, output VC credits/allocation, allocator and VA priorities,
  /// activity counters, the VA RNG stream. Fault masks (SetOutputBlocked)
  /// and the telemetry attachment are owner-managed and excluded — the
  /// network re-derives them after restore. Restoring into a router built
  /// with the same RouterConfig and links makes subsequent Step calls
  /// bitwise identical to a router that never stopped.
  void SaveState(SnapshotWriter& w) const;
  void LoadState(SnapshotReader& r);

  /// Flits sent on output port `out` since the last ClearActivity() —
  /// per-link utilization for hotspot analysis.
  std::uint64_t FlitsSentOn(PortId out) const { return flits_per_out_[out]; }

 private:
  /// A VA candidate's stated preference under kSeparableArbitrated.
  struct VaPreference {
    int idx;  // input VC index p * num_vcs + c
    PortId out_port;
    VcId out_vc;
    PortId lookahead;
    std::uint8_t next_dateline;
  };

  int IvcIndex(PortId p, VcId c) const { return p * config_.num_vcs + c; }
  int OvcIndex(PortId o, VcId c) const { return o * config_.num_vcs + c; }

  /// Ring-buffer slot of flit number `i` (0 = head) in input VC `idx`.
  const Flit& BufferedFlit(int idx, int i) const {
    int pos = buf_head_[idx] + i;
    if (pos >= config_.buffer_depth) pos -= config_.buffer_depth;
    return flit_store_[static_cast<std::size_t>(idx) * config_.buffer_depth +
                       pos];
  }
  const Flit& HeadFlit(int idx) const {
    return flit_store_[static_cast<std::size_t>(idx) * config_.buffer_depth +
                       buf_head_[idx]];
  }
  void PushFlit(int idx, const Flit& flit) {
    int pos = buf_head_[idx] + buf_count_[idx];
    if (pos >= config_.buffer_depth) pos -= config_.buffer_depth;
    flit_store_[static_cast<std::size_t>(idx) * config_.buffer_depth + pos] =
        flit;
    ++buf_count_[idx];
  }
  /// Drops the head flit (callers copy it out first).
  void PopFlit(int idx) {
    int head = buf_head_[idx] + 1;
    if (head >= config_.buffer_depth) head = 0;
    buf_head_[idx] = head;
    --buf_count_[idx];
  }

  void RunVcAllocation();
  /// One VA candidate (see RunVcAllocation); returns via the same logic a
  /// full scan would.
  void ConsiderVaCandidate(int idx, bool separable);
  /// VA candidate under an adaptive routing algorithm: enumerates the
  /// candidate set at THIS router (the lookahead stamp is advisory) and
  /// selects an output by local credit/occupancy state, falling back to
  /// the escape candidate so deadlock freedom is preserved.
  void ConsiderVaCandidateAdaptive(int idx, bool separable);
  void BuildSaRequests();
  void CommitGrants(Cycle now, std::vector<SentFlit>* sent_flits,
                    std::vector<SentCredit>* sent_credits);
  /// Records this cycle's counters and trace events into rt_/tcol_. Runs
  /// between Allocate and CommitGrants, while requests, grants and buffer
  /// heads are all still observable.
  void CollectCycleTelemetry(Cycle now);

  RouterId id_;
  RouterConfig config_;
  const RoutingAlgorithm* routing_;

  // Input-VC state (SoA), indexed idx = in_port * num_vcs + vc. Flit
  // buffers are fixed-capacity rings of buffer_depth slots carved out of
  // one contiguous pool.
  std::vector<Flit> flit_store_;            // (radix * num_vcs) * depth
  std::vector<std::int32_t> buf_head_;      // ring read position
  std::vector<std::int32_t> buf_count_;     // flits buffered
  std::vector<std::uint8_t> in_active_;     // current packet holds a VC
  std::vector<PortId> in_out_port_;
  std::vector<VcId> in_out_vc_;
  std::vector<PortId> in_lookahead_;        // route at the downstream router
  std::vector<std::uint8_t> in_next_dateline_;  // packet state after this hop

  // Output-VC state (SoA), indexed o * num_vcs + vc.
  std::vector<std::int32_t> credits_;
  std::vector<std::uint8_t> out_allocated_;  // owned by one input VC here

  // Incremental candidate masks over input-VC indices:
  //  va_cand_: !active && buffer non-empty (head flit awaits VC allocation)
  //  sa_cand_:  active && buffer non-empty (may request switch traversal)
  BitWords va_cand_;
  BitWords sa_cand_;

  std::vector<OutputLinkInfo> links_;
  std::unique_ptr<SwitchAllocator> allocator_;
  int va_rr_ptr_ = 0;  ///< rotating start for VA fairness
  /// Input VCs granted VA this cycle; excluded from SA when the router is
  /// configured non-speculative.
  std::vector<bool> just_activated_;
  /// Fault masks (see SetOutputBlocked). num_blocked_ keeps the hot path
  /// free of per-candidate checks while no fault is active.
  std::vector<bool> output_blocked_;  // radix
  int num_blocked_ = 0;

  // Per-cycle scratch, sized once at construction so the hot loop never
  // touches the allocator.
  std::vector<SaRequest> sa_requests_;
  std::vector<SaGrant> sa_grants_;
  std::vector<OutputVcView> vc_view_scratch_;
  std::vector<VaPreference> va_prefs_;
  std::vector<bool> nonspec_wants_;  // radix
  // Always-on cheap structural checks on grants (the full GrantsAreLegal
  // validation only runs in debug builds).
  std::vector<bool> out_used_scratch_;
  std::vector<bool> xin_used_scratch_;

  RouterActivity activity_;
  std::vector<std::uint64_t> flits_per_out_;  // radix

  /// VA-stage randomness (kRandomFree only); per-router stream derived from
  /// config_.vc_rng_seed and id_ so results are thread-count independent.
  Rng vc_rng_;
  TelemetryCollector* tcol_ = nullptr;
  RouterTelemetry* rt_ = nullptr;  ///< == &tcol_->router(id_)
};

}  // namespace vixnoc
