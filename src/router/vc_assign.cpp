#include "router/vc_assign.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

namespace vixnoc {

namespace {

/// Free candidate with max credits whose virtual input is `group`
/// (group < 0 matches every group); ties go to the lowest index.
int BestInGroup(const std::vector<OutputVcView>& views,
                const VinLayout& layout, int group) {
  int best = -1;
  int best_credits = -1;
  for (int i = 0; i < static_cast<int>(views.size()); ++i) {
    if (views[i].allocated) continue;
    if (group >= 0 && layout.VinOfView(i) != group) continue;
    if (views[i].credits > best_credits) {
      best = i;
      best_credits = views[i].credits;
    }
  }
  return best;
}

int AllocatedInGroup(const std::vector<OutputVcView>& views,
                     const VinLayout& layout, int group) {
  int n = 0;
  for (int i = 0; i < static_cast<int>(views.size()); ++i) {
    if (layout.VinOfView(i) == group && views[i].allocated) ++n;
  }
  return n;
}

bool GroupPresent(const std::vector<OutputVcView>& views,
                  const VinLayout& layout, int group) {
  for (int i = 0; i < static_cast<int>(views.size()); ++i) {
    if (layout.VinOfView(i) == group) return true;
  }
  return false;
}

}  // namespace

int PickOutputVc(VcAssignPolicy policy,
                 const std::vector<OutputVcView>& views,
                 const VinLayout& layout, PortDimension downstream_dim,
                 Rng* rng) {
  VIXNOC_DCHECK(!views.empty());
  VIXNOC_DCHECK(layout.num_vins >= 1 &&
                layout.total_vcs % layout.num_vins == 0);

  if (policy == VcAssignPolicy::kRandomFree) {
    // Control arm for steering-policy studies: uniform over the free
    // candidates, blind to virtual inputs. One NextBounded draw per free
    // choice; no draw when zero or one candidate is free.
    VIXNOC_DCHECK(rng != nullptr);
    int free_count = 0;
    for (const OutputVcView& v : views) free_count += v.allocated ? 0 : 1;
    if (free_count == 0) return -1;
    int target = free_count == 1
                     ? 0
                     : static_cast<int>(rng->NextBounded(
                           static_cast<std::uint64_t>(free_count)));
    for (int i = 0; i < static_cast<int>(views.size()); ++i) {
      if (views[i].allocated) continue;
      if (target-- == 0) return i;
    }
    return -1;  // unreachable
  }

  if (policy == VcAssignPolicy::kMaxCredits || layout.num_vins == 1) {
    return BestInGroup(views, layout, -1);
  }

  // Determine the preferred sub-group.
  int preferred = -1;
  if (policy == VcAssignPolicy::kVixDimension) {
    switch (downstream_dim) {
      case PortDimension::kX:
        preferred = 0;
        break;
      case PortDimension::kY:
        preferred = 1 % layout.num_vins;
        break;
      case PortDimension::kLocal:
        preferred = -1;  // no dimension info: fall through to balancing
        break;
    }
  }

  if (preferred < 0) {
    // Load balance: the candidate-set group with the fewest allocated VCs.
    int best_group = -1;
    int best_load = 0;
    for (int g = 0; g < layout.num_vins; ++g) {
      if (!GroupPresent(views, layout, g)) continue;
      const int load = AllocatedInGroup(views, layout, g);
      if (best_group < 0 || load < best_load) {
        best_group = g;
        best_load = load;
      }
    }
    preferred = best_group;
  }

  // Try the preferred sub-group first; fall back to any free VC so the
  // steering heuristic never blocks a packet a baseline router would admit.
  const int in_group = BestInGroup(views, layout, preferred);
  if (in_group >= 0) return in_group;
  return BestInGroup(views, layout, -1);
}

}  // namespace vixnoc
