// Flits and packets: the units of flow control and of routing (paper §2.1).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace vixnoc {

class SnapshotReader;
class SnapshotWriter;

enum class FlitType : std::uint8_t {
  kHead,      ///< first flit of a multi-flit packet; carries routing info
  kBody,      ///< middle flit
  kTail,      ///< last flit; releases VC state downstream
  kHeadTail,  ///< single-flit packet (head and tail at once)
};

/// A flit in flight. The simulator models control state only; payload bits
/// are represented by the configured datapath width when computing energy.
struct Flit {
  PacketId packet_id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  FlitType type = FlitType::kHeadTail;
  std::uint16_t seq = 0;          ///< position within the packet [0, size)
  std::uint16_t packet_size = 1;  ///< flits in the packet
  Cycle created = 0;              ///< cycle the packet entered the source queue
  Cycle injected = kNeverCycle;   ///< cycle the head flit left the NI

  /// Input VC at the *receiving* router: assigned by the upstream router's
  /// VA stage (or by the NI for injected flits).
  VcId vc = kInvalidVc;

  /// Output port at the *receiving* router: lookahead route computation is
  /// performed one hop upstream (Galles [9]), so a flit arrives with its
  /// route already determined.
  PortId route_out = kInvalidPort;

  /// Opaque tag threaded through the network untouched; the application
  /// model uses it to match replies to outstanding requests.
  std::uint64_t user_tag = 0;

  /// Message class (virtual network). Routers with num_message_classes > 1
  /// partition their VCs among classes and never assign a packet to a VC
  /// of another class, giving protocol-level traffic (request vs reply)
  /// disjoint buffer resources.
  std::uint8_t msg_class = 0;

  /// Routing-function-defined state, updated hop by hop (see
  /// RoutingAlgorithm::NextDatelineState). Torus routing uses it to switch
  /// VC classes after crossing a dateline, breaking ring deadlock cycles.
  std::uint8_t dateline = 0;

  /// Payload-corruption marker set by fault injection (fault/fault_model.hpp)
  /// when the flit traverses a faulty link. Control state stays intact —
  /// the flit flows and is delivered — and the destination NI surfaces the
  /// corruption in the packet's PacketRecord (end-to-end detection).
  bool corrupted = false;

  bool IsHead() const {
    return type == FlitType::kHead || type == FlitType::kHeadTail;
  }
  bool IsTail() const {
    return type == FlitType::kTail || type == FlitType::kHeadTail;
  }
};

/// Checkpoint encoding of a flit, field by field in declaration order
/// (implemented in router.cpp).
void SaveFlit(SnapshotWriter& w, const Flit& f);
Flit LoadFlit(SnapshotReader& r);

/// Helper: flit type for position `seq` within a packet of `size` flits.
inline FlitType FlitTypeFor(int seq, int size) {
  if (size == 1) return FlitType::kHeadTail;
  if (seq == 0) return FlitType::kHead;
  if (seq == size - 1) return FlitType::kTail;
  return FlitType::kBody;
}

}  // namespace vixnoc
