// Wire protocol between the SweepCoordinator and vixnoc_sweep_worker.
//
// A worker subprocess reads length-prefixed *point frames* on stdin and
// writes length-prefixed *result frames* on stdout. Each frame payload is
// a snapshot container (snapshot/snapshot.hpp) — magic, version and
// per-section checksums come for free, so a torn or corrupted frame is
// detected by the normal SnapshotReader validation, and the container's
// fingerprint slot carries NetworkSimConfigFingerprint(config) in both
// directions: the worker proves which point a result belongs to, and the
// coordinator refuses a result whose fingerprint or index does not match
// the point it dispatched.
//
//   frame    := length u64 LE, payload bytes (a snapshot container)
//   point    := section "point"  { index u64, attempt u32, config ... }
//   result   := section "result" { index u64 } + SaveNetworkSimResult
//
// Framing I/O is deliberately non-throwing on the read side: every way a
// frame can fail to arrive (clean EOF at a frame boundary, a short frame
// from a dying worker, a wall-clock deadline, an I/O error) is a
// *classification input* for the coordinator, not an exception.
#pragma once

#include <cstdint>
#include <string>

#include "sim/network_sim.hpp"

namespace vixnoc {

class SnapshotReader;
class SnapshotWriter;

/// Serializes every wire-transportable NetworkSimConfig field. Throws
/// SimError when the config cannot cross a process boundary: a
/// topology_factory is a live std::function and has no serialized form
/// (the coordinator runs such points in-process instead).
void SaveNetworkSimConfig(SnapshotWriter& w, const NetworkSimConfig& c);
NetworkSimConfig LoadNetworkSimConfig(SnapshotReader& r);

/// One dispatched sweep point. `attempt` counts subprocess tries (0 = the
/// first); it rides along so the worker's deterministic test-failure hooks
/// (crash on attempts < n) can exercise retry-then-succeed paths.
struct PointFrame {
  std::uint64_t index = 0;
  std::uint32_t attempt = 0;
  NetworkSimConfig config;
};

std::string EncodePointFrame(const PointFrame& frame);
PointFrame DecodePointFrame(const std::string& bytes);  ///< throws SimError

struct ResultFrame {
  std::uint64_t index = 0;
  std::uint64_t config_fingerprint = 0;
  NetworkSimResult result;
};

std::string EncodeResultFrame(std::uint64_t index,
                              std::uint64_t config_fingerprint,
                              const NetworkSimResult& result);
ResultFrame DecodeResultFrame(const std::string& bytes);  ///< throws SimError

/// Outcome of reading one frame from a file descriptor.
struct FrameRead {
  enum class Status {
    kOk,       ///< payload holds a complete frame
    kEof,      ///< clean end-of-stream at a frame boundary
    kShort,    ///< stream ended mid-frame (worker died while writing)
    kTimeout,  ///< deadline expired before the frame completed
    kError,    ///< hard I/O error (detail holds errno text)
  };
  Status status = Status::kError;
  std::string payload;
  std::string detail;  ///< human-readable cause for non-kOk statuses
};

/// Reads one length-prefixed frame. `timeout_seconds` bounds the wall
/// clock for the *whole* frame (negative = block forever); the fd does not
/// need to be non-blocking — readiness is polled before every read.
FrameRead ReadFrame(int fd, double timeout_seconds);

/// Writes one length-prefixed frame, retrying short writes. Returns false
/// on failure (e.g. EPIPE from a dead peer) with `*error` describing why.
/// Callers must have SIGPIPE blocked or ignored so a dead peer surfaces
/// as EPIPE instead of killing the process.
bool WriteFrame(int fd, const std::string& payload, std::string* error);

/// Hard upper bound on an accepted frame payload (a garbage length prefix
/// must not drive a multi-gigabyte allocation).
inline constexpr std::uint64_t kMaxFrameBytes = 1ull << 30;

}  // namespace vixnoc
