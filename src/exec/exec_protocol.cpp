#include "exec/exec_protocol.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <unistd.h>

#include "common/check.hpp"
#include "common/error.hpp"
#include "snapshot/snapshot.hpp"

namespace vixnoc {

namespace {

template <typename E>
E CheckedEnum(std::uint8_t raw, E max, const char* what) {
  VIXNOC_REQUIRE(raw <= static_cast<std::uint8_t>(max),
                 "point frame has invalid %s value %u", what, raw);
  return static_cast<E>(raw);
}

std::string ErrnoText(const char* op) {
  return std::string(op) + ": " + std::strerror(errno);
}

}  // namespace

void SaveNetworkSimConfig(SnapshotWriter& w, const NetworkSimConfig& c) {
  VIXNOC_REQUIRE(!c.topology_factory,
                 "a config with a topology_factory cannot cross a process "
                 "boundary (std::function has no serialized form); run such "
                 "points in-process");
  VIXNOC_REQUIRE(!c.routing_factory,
                 "a config with a routing_factory cannot cross a process "
                 "boundary (std::function has no serialized form); run such "
                 "points in-process");
  w.U8(static_cast<std::uint8_t>(c.topology));
  w.U8(static_cast<std::uint8_t>(c.scheme));
  w.I32(c.num_vcs);
  w.I32(c.buffer_depth);
  w.I32(c.packet_size);
  w.F64(c.injection_rate);
  w.U8(static_cast<std::uint8_t>(c.pattern));
  w.U8(static_cast<std::uint8_t>(c.arbiter));
  w.B(c.vc_policy.has_value());
  w.U8(static_cast<std::uint8_t>(c.vc_policy.value_or(VcAssignPolicy::kMaxCredits)));
  w.B(c.ap_rotate_vcs);
  w.I32(c.pipeline_stages);
  w.I32(c.vix_virtual_inputs);
  w.B(c.interleaved_vins);
  w.B(c.prioritize_nonspeculative);
  w.U8(static_cast<std::uint8_t>(c.va_organization));
  w.B(c.atomic_vc_alloc);
  w.B(c.bursty);
  w.F64(c.burst_on_rate);
  w.F64(c.mean_burst_cycles);
  w.U64(c.sample_interval);
  w.F64(c.faults.link_down_rate);
  w.F64(c.faults.transient_rate);
  w.U64(c.faults.transient_period);
  w.U64(c.faults.transient_duration);
  w.F64(c.faults.router_stall_rate);
  w.U64(c.faults.stall_period);
  w.U64(c.faults.stall_duration);
  w.F64(c.faults.corruption_rate);
  w.U32(static_cast<std::uint32_t>(c.faults.forced_link_down.size()));
  for (const auto& [router, port] : c.faults.forced_link_down) {
    w.I32(router);
    w.I32(port);
  }
  w.U64(c.faults.seed);
  w.U64(c.watchdog_cycles);
  w.B(c.telemetry.enabled);
  w.U64(c.telemetry.window_cycles);
  w.U64(c.telemetry.max_windows);
  w.U64(c.telemetry.trace_sample_period);
  w.U64(c.telemetry.max_trace_events);
  w.Str(c.checkpoint_path);
  w.U64(c.checkpoint_every);
  w.Str(c.restore_path);
  w.Str(c.deadlock_checkpoint_path);
  w.U64(c.seed);
  w.U64(c.warmup);
  w.U64(c.measure);
  w.U64(c.drain);
  w.Str(c.routing);
  w.I32(c.hotspot_node);
  w.I32(c.incast_fanin);
}

NetworkSimConfig LoadNetworkSimConfig(SnapshotReader& r) {
  NetworkSimConfig c;
  c.topology = CheckedEnum(r.U8(), TopologyKind::kTorus, "topology");
  c.scheme = CheckedEnum(r.U8(), AllocScheme::kSerenade, "scheme");
  c.num_vcs = r.I32();
  c.buffer_depth = r.I32();
  c.packet_size = r.I32();
  c.injection_rate = r.F64();
  c.pattern = CheckedEnum(r.U8(), PatternKind::kIncast, "pattern");
  c.arbiter = CheckedEnum(r.U8(), ArbiterKind::kMatrix, "arbiter");
  const bool has_policy = r.B();
  const VcAssignPolicy policy =
      CheckedEnum(r.U8(), VcAssignPolicy::kRandomFree, "vc_policy");
  if (has_policy) c.vc_policy = policy;
  c.ap_rotate_vcs = r.B();
  c.pipeline_stages = r.I32();
  c.vix_virtual_inputs = r.I32();
  c.interleaved_vins = r.B();
  c.prioritize_nonspeculative = r.B();
  c.va_organization = CheckedEnum(
      r.U8(), VaOrganization::kSeparableArbitrated, "va_organization");
  c.atomic_vc_alloc = r.B();
  c.bursty = r.B();
  c.burst_on_rate = r.F64();
  c.mean_burst_cycles = r.F64();
  c.sample_interval = r.U64();
  c.faults.link_down_rate = r.F64();
  c.faults.transient_rate = r.F64();
  c.faults.transient_period = r.U64();
  c.faults.transient_duration = r.U64();
  c.faults.router_stall_rate = r.F64();
  c.faults.stall_period = r.U64();
  c.faults.stall_duration = r.U64();
  c.faults.corruption_rate = r.F64();
  const std::uint32_t forced = r.U32();
  c.faults.forced_link_down.reserve(forced);
  for (std::uint32_t i = 0; i < forced; ++i) {
    const RouterId router = r.I32();
    const PortId port = r.I32();
    c.faults.forced_link_down.emplace_back(router, port);
  }
  c.faults.seed = r.U64();
  c.watchdog_cycles = r.U64();
  c.telemetry.enabled = r.B();
  c.telemetry.window_cycles = r.U64();
  c.telemetry.max_windows = static_cast<std::size_t>(r.U64());
  c.telemetry.trace_sample_period = r.U64();
  c.telemetry.max_trace_events = static_cast<std::size_t>(r.U64());
  c.checkpoint_path = r.Str();
  c.checkpoint_every = r.U64();
  c.restore_path = r.Str();
  c.deadlock_checkpoint_path = r.Str();
  c.seed = r.U64();
  c.warmup = r.U64();
  c.measure = r.U64();
  c.drain = r.U64();
  c.routing = r.Str();
  c.hotspot_node = r.I32();
  c.incast_fanin = r.I32();
  return c;
}

std::string EncodePointFrame(const PointFrame& frame) {
  SnapshotWriter w;
  w.BeginSection("point");
  w.U64(frame.index);
  w.U32(frame.attempt);
  SaveNetworkSimConfig(w, frame.config);
  w.EndSection();
  return w.Finish(NetworkSimConfigFingerprint(frame.config));
}

PointFrame DecodePointFrame(const std::string& bytes) {
  SnapshotReader r(bytes);
  r.OpenSection("point");
  PointFrame frame;
  frame.index = r.U64();
  frame.attempt = r.U32();
  frame.config = LoadNetworkSimConfig(r);
  r.CloseSection();
  VIXNOC_REQUIRE(r.fingerprint() == NetworkSimConfigFingerprint(frame.config),
                 "point frame fingerprint %016llx does not match its "
                 "config's %016llx",
                 static_cast<unsigned long long>(r.fingerprint()),
                 static_cast<unsigned long long>(
                     NetworkSimConfigFingerprint(frame.config)));
  return frame;
}

std::string EncodeResultFrame(std::uint64_t index,
                              std::uint64_t config_fingerprint,
                              const NetworkSimResult& result) {
  SnapshotWriter w;
  w.BeginSection("result");
  w.U64(index);
  SaveNetworkSimResult(w, result);
  w.EndSection();
  return w.Finish(config_fingerprint);
}

ResultFrame DecodeResultFrame(const std::string& bytes) {
  SnapshotReader r(bytes);
  r.OpenSection("result");
  ResultFrame frame;
  frame.index = r.U64();
  frame.result = LoadNetworkSimResult(r);
  r.CloseSection();
  frame.config_fingerprint = r.fingerprint();
  return frame;
}

FrameRead ReadFrame(int fd, double timeout_seconds) {
  FrameRead out;
  const bool bounded = timeout_seconds >= 0;
  // Millisecond budget for poll(); recomputed from the remaining total
  // each iteration so slow dribbles cannot extend the deadline.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(bounded ? timeout_seconds : 0));

  std::string buffer;
  std::uint64_t want = 8;  // length prefix first
  bool have_length = false;
  for (;;) {
    if (bounded) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        out.status = FrameRead::Status::kTimeout;
        out.detail = "deadline expired mid-frame";
        return out;
      }
      struct pollfd pfd = {fd, POLLIN, 0};
      const int remaining_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
              .count() + 1);
      const int pr = ::poll(&pfd, 1, remaining_ms);
      if (pr == 0) continue;  // loop re-checks the deadline
      if (pr < 0) {
        if (errno == EINTR) continue;
        out.status = FrameRead::Status::kError;
        out.detail = ErrnoText("poll");
        return out;
      }
    }
    char chunk[65536];
    const std::size_t to_read =
        std::min<std::uint64_t>(want - buffer.size(), sizeof chunk);
    const ssize_t n = ::read(fd, chunk, to_read);
    if (n < 0) {
      if (errno == EINTR) continue;
      out.status = FrameRead::Status::kError;
      out.detail = ErrnoText("read");
      return out;
    }
    if (n == 0) {
      if (buffer.empty() && !have_length) {
        out.status = FrameRead::Status::kEof;
      } else {
        out.status = FrameRead::Status::kShort;
        out.detail = "stream ended mid-frame (" +
                     std::to_string(buffer.size()) + " of " +
                     std::to_string(want) + " bytes)";
      }
      return out;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (!have_length && buffer.size() == 8) {
      std::uint64_t length = 0;
      for (int i = 7; i >= 0; --i) {
        length = (length << 8) | static_cast<std::uint8_t>(buffer[i]);
      }
      if (length == 0 || length > kMaxFrameBytes) {
        out.status = FrameRead::Status::kError;
        out.detail = "implausible frame length " + std::to_string(length);
        return out;
      }
      have_length = true;
      want = length;
      buffer.clear();
      buffer.reserve(length);
    } else if (have_length && buffer.size() == want) {
      out.status = FrameRead::Status::kOk;
      out.payload = std::move(buffer);
      return out;
    }
  }
}

bool WriteFrame(int fd, const std::string& payload, std::string* error) {
  VIXNOC_CHECK(!payload.empty() && payload.size() <= kMaxFrameBytes);
  char prefix[8];
  std::uint64_t length = payload.size();
  for (int i = 0; i < 8; ++i) {
    prefix[i] = static_cast<char>(length & 0xff);
    length >>= 8;
  }
  const auto write_all = [&](const char* data, std::size_t size) {
    std::size_t written = 0;
    while (written < size) {
      const ssize_t n = ::write(fd, data + written, size - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (error != nullptr) *error = ErrnoText("write");
        return false;
      }
      written += static_cast<std::size_t>(n);
    }
    return true;
  };
  return write_all(prefix, sizeof prefix) &&
         write_all(payload.data(), payload.size());
}

}  // namespace vixnoc
