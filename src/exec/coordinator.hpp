// SweepCoordinator: crash-isolated multi-process execution of sweeps.
//
// SweepRunner (sim/sweep.hpp) already survives *exceptions* in a point,
// but a hard crash — a segfault, an abort, an OOM kill — or a runaway
// simulation still takes down the whole orchestrating process. The
// coordinator closes that gap by running points in a pool of
// vixnoc_sweep_worker subprocesses (exec/exec_protocol.hpp wire format):
//
//  * one point in flight per worker (natural backpressure);
//  * a per-point wall-clock deadline enforced by the coordinator — an
//    overrunning worker is SIGKILLed and the point classified kTimeout;
//  * worker failure detected and classified (nonzero exit, death by
//    signal, malformed/short result frame, deadline exceeded, spawn
//    failure) into a structured per-point ExecStatus;
//  * failed points retried with bounded exponential backoff on a
//    respawned worker, up to ExecPolicy::max_retries times;
//  * already-completed points served from the PR-5 per-point checkpoint
//    cache (same point_<i>.ckpt files SweepRunner writes), so restarting
//    a partially finished sweep — or a straggler retry after a crash —
//    never re-simulates healthy work;
//  * graceful degradation: when subprocess spawning is unavailable (no
//    worker binary, fork failure) the remaining points run on the
//    in-process SweepRunner path; a point that exhausts its retries gets
//    a final error slot (SimStatus::kExecFailure) instead of wedging the
//    batch.
//
// Determinism contract: results are merged in submission order, and every
// point that completes — in a worker, from cache, or via the in-process
// fallback — is the output of the same deterministic RunNetworkSim, so a
// batch's surviving results are bitwise identical to a serial in-process
// sweep at any worker count. exec_test.cpp pins this, with injected
// crashes and hangs in the mix.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/network_sim.hpp"
#include "sim/sweep.hpp"

namespace vixnoc {

/// Classification of the most recent subprocess-level failure of a point.
enum class ExecFailure : std::uint8_t {
  kNone,      ///< never failed at the process level
  kExit,      ///< worker exited with a nonzero status
  kSignal,    ///< worker died by signal (segfault, abort, OOM kill)
  kBadFrame,  ///< worker produced a malformed, short or mismatched frame
  kTimeout,   ///< point exceeded its wall-clock deadline (worker killed)
  kSpawn,     ///< a worker subprocess could not be spawned at all
};

std::string ToString(ExecFailure failure);

/// Per-point execution record, parallel to the results vector. This is
/// provenance the SimOutcome cannot carry: *how* the point was executed,
/// how many process-level attempts it took, and what the last failure was.
struct ExecStatus {
  bool isolated = false;     ///< completed inside a worker subprocess
  bool from_cache = false;   ///< served from the point cache / result store
  bool in_process_fallback = false;  ///< ran on the in-process path
  /// Within-batch duplicate of an earlier point (same NetworkSimResultKey):
  /// its slot was fanned out from the canonical point's result.
  bool deduped = false;
  int attempts = 0;          ///< subprocess attempts dispatched
  ExecFailure last_failure = ExecFailure::kNone;
  std::string failure_detail;       ///< e.g. "signal 11 (Segmentation fault)"
  double backoff_seconds = 0.0;     ///< total retry backoff scheduled
};

/// Worker lifecycle event, recorded for provenance (bench_results.json).
struct WorkerEvent {
  enum class Kind : std::uint8_t {
    kSpawn,  ///< a worker subprocess started
    kExit,   ///< a worker was reaped after dying on its own
    kKill,   ///< the coordinator killed a worker (timeout / bad frame)
  };
  Kind kind = Kind::kSpawn;
  int slot = 0;       ///< worker slot (0..num_workers-1)
  long pid = 0;
  std::string detail; ///< cause ("point 3 timeout after 0.5s", exit status)
};

std::string ToString(WorkerEvent::Kind kind);

struct ExecPolicy {
  /// Worker subprocess count; ResolveThreadCount convention (0 = auto).
  int num_workers = 0;
  /// Worker binary; empty = DefaultWorkerPath() resolution.
  std::string worker_path;
  /// Per-attempt wall-clock deadline for one point; 0 disables.
  double point_timeout_seconds = 0.0;
  /// Process-level retries after the first attempt before the point is
  /// given a final error slot.
  int max_retries = 2;
  /// Exponential backoff before retry k: initial * multiplier^k, capped.
  double backoff_initial_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double backoff_max_seconds = 2.0;
  /// Per-point result cache shared with SweepRunner (normally a
  /// content-addressed ResultStore, store/result_store.hpp). Consulted in
  /// a pre-pass before any worker dispatch; completed points are written
  /// back best-effort. Null disables caching (unless checkpoint_dir is
  /// set).
  std::shared_ptr<PointCache> cache;
  /// Compatibility shim for the pre-store `checkpoint_dir=` surface: when
  /// set and `cache` is null, Run constructs a ResultStore rooted here.
  /// Entries are content-keyed (`<fp[0:2]>/<fp>.res`), not the old
  /// point_<i>.ckpt index files.
  std::string checkpoint_dir;
};

struct SweepExecResult {
  std::vector<NetworkSimResult> results;  ///< submission order
  std::vector<ExecStatus> points;         ///< parallel to results
  std::vector<WorkerEvent> events;

  // Batch-level tallies (sums over points/events).
  std::uint64_t crashes = 0;        ///< kExit + kSignal failures observed
  std::uint64_t timeouts = 0;
  std::uint64_t bad_frames = 0;
  std::uint64_t spawn_failures = 0;
  std::uint64_t retries = 0;        ///< re-dispatches after a failure
  std::uint64_t workers_spawned = 0;
  std::uint64_t exhausted_points = 0;  ///< final kExecFailure error slots
  std::uint64_t fallback_points = 0;   ///< completed in-process
  std::uint64_t cached_points = 0;     ///< served from the point cache
  std::uint64_t defective_cache_points = 0;
  std::uint64_t deduped_points = 0;    ///< within-batch duplicate slots
};

/// Resolves the worker binary: $VIXNOC_SWEEP_WORKER if set, else a
/// vixnoc_sweep_worker next to the current executable or in the build
/// tree's src/app/ relative to it. Returns "" when nothing executable is
/// found (the coordinator then degrades to the in-process path).
std::string DefaultWorkerPath();

class SweepCoordinator {
 public:
  explicit SweepCoordinator(ExecPolicy policy);

  /// Resolved policy (worker count and worker path filled in).
  const ExecPolicy& policy() const { return policy_; }

  /// Runs every point and blocks until all have a result slot. Never
  /// throws for per-point or per-worker failures; only for coordinator
  /// bugs (VIXNOC_CHECK) or an unusable checkpoint_dir.
  SweepExecResult Run(const std::vector<NetworkSimConfig>& configs);

 private:
  ExecPolicy policy_;
};

}  // namespace vixnoc
