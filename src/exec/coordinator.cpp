#include "exec/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <mutex>
#include <thread>

#include <fcntl.h>
#include <pthread.h>
#include <sys/wait.h>
#include <unistd.h>

#include <unordered_map>

#include "common/check.hpp"
#include "common/error.hpp"
#include "exec/exec_protocol.hpp"
#include "sim/sweep.hpp"
#include "store/result_store.hpp"

namespace vixnoc {

std::string ToString(ExecFailure failure) {
  switch (failure) {
    case ExecFailure::kNone:
      return "none";
    case ExecFailure::kExit:
      return "exit";
    case ExecFailure::kSignal:
      return "signal";
    case ExecFailure::kBadFrame:
      return "bad-frame";
    case ExecFailure::kTimeout:
      return "timeout";
    case ExecFailure::kSpawn:
      return "spawn";
  }
  return "unknown";
}

std::string ToString(WorkerEvent::Kind kind) {
  switch (kind) {
    case WorkerEvent::Kind::kSpawn:
      return "spawn";
    case WorkerEvent::Kind::kExit:
      return "exit";
    case WorkerEvent::Kind::kKill:
      return "kill";
  }
  return "unknown";
}

namespace {

using Clock = std::chrono::steady_clock;

/// One worker subprocess owned by a coordinator slot thread.
struct Worker {
  pid_t pid = -1;
  int in_fd = -1;   ///< coordinator writes point frames (worker stdin)
  int out_fd = -1;  ///< coordinator reads result frames (worker stdout)
  bool alive() const { return pid > 0; }
};

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

std::string DescribeWaitStatus(int status) {
  if (WIFEXITED(status)) {
    return "exit status " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    const char* name = strsignal(sig);
    return "signal " + std::to_string(sig) + " (" +
           (name != nullptr ? name : "unknown") + ")";
  }
  return "unrecognized wait status " + std::to_string(status);
}

/// Reaps a (dead or dying) worker and returns its wait-status description.
std::string ReapWorker(Worker* w) {
  CloseFd(&w->in_fd);
  CloseFd(&w->out_fd);
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(w->pid, &status, 0);
  } while (r < 0 && errno == EINTR);
  w->pid = -1;
  if (r < 0) return std::string("waitpid: ") + std::strerror(errno);
  return DescribeWaitStatus(status);
}

/// SIGKILLs and reaps a live worker (deadline overrun or untrusted state).
std::string KillWorker(Worker* w) {
  ::kill(w->pid, SIGKILL);
  return ReapWorker(w);
}

/// fork/execs one worker with stdin/stdout pipes. An exec failure in the
/// child (bad path, not executable) is reported through a CLOEXEC status
/// pipe, so the caller can distinguish "could not spawn" from a worker
/// that launched and then died. All pipe fds are O_CLOEXEC so workers do
/// not inherit each other's channel ends (a leaked write end would defeat
/// EOF-based shutdown).
bool SpawnWorker(const std::string& path, Worker* w, std::string* error) {
  int in_pipe[2] = {-1, -1}, out_pipe[2] = {-1, -1}, st_pipe[2] = {-1, -1};
  if (::pipe2(in_pipe, O_CLOEXEC) < 0 || ::pipe2(out_pipe, O_CLOEXEC) < 0 ||
      ::pipe2(st_pipe, O_CLOEXEC) < 0) {
    *error = std::string("pipe2: ") + std::strerror(errno);
    for (int* fd : {&in_pipe[0], &in_pipe[1], &out_pipe[0], &out_pipe[1],
                    &st_pipe[0], &st_pipe[1]}) {
      CloseFd(fd);
    }
    return false;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    *error = std::string("fork: ") + std::strerror(errno);
    for (int* fd : {&in_pipe[0], &in_pipe[1], &out_pipe[0], &out_pipe[1],
                    &st_pipe[0], &st_pipe[1]}) {
      CloseFd(fd);
    }
    return false;
  }
  if (pid == 0) {
    // Child: wire the protocol pipes to stdin/stdout (dup2 clears
    // O_CLOEXEC on the duplicates) and exec the worker.
    if (::dup2(in_pipe[0], STDIN_FILENO) < 0 ||
        ::dup2(out_pipe[1], STDOUT_FILENO) < 0) {
      _exit(127);
    }
    ::execl(path.c_str(), path.c_str(), static_cast<char*>(nullptr));
    const int err = errno;
    [[maybe_unused]] ssize_t n = ::write(st_pipe[1], &err, sizeof err);
    _exit(127);
  }
  // Parent.
  CloseFd(&in_pipe[0]);
  CloseFd(&out_pipe[1]);
  CloseFd(&st_pipe[1]);
  int exec_errno = 0;
  ssize_t n;
  do {
    n = ::read(st_pipe[0], &exec_errno, sizeof exec_errno);
  } while (n < 0 && errno == EINTR);
  CloseFd(&st_pipe[0]);
  if (n > 0) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    CloseFd(&in_pipe[1]);
    CloseFd(&out_pipe[0]);
    *error = "exec '" + path + "': " + std::strerror(exec_errno);
    return false;
  }
  w->pid = pid;
  w->in_fd = in_pipe[1];
  w->out_fd = out_pipe[0];
  return true;
}

/// A queued dispatch: point `index`, subprocess attempt number, and the
/// earliest time it may run (backoff gates retries without parking a
/// worker slot on a sleep).
struct Item {
  std::size_t index = 0;
  int attempt = 0;
  Clock::time_point ready_at;
};

}  // namespace

std::string DefaultWorkerPath() {
  if (const char* env = std::getenv("VIXNOC_SWEEP_WORKER")) {
    // An explicit setting is honored verbatim: if it is wrong, the spawn
    // failure is classified and surfaced rather than silently replaced.
    if (*env != '\0') return env;
  }
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  const std::string dir =
      std::filesystem::path(buf).parent_path().string();
  for (const std::string& candidate :
       {dir + "/vixnoc_sweep_worker", dir + "/../src/app/vixnoc_sweep_worker",
        dir + "/../../src/app/vixnoc_sweep_worker"}) {
    if (::access(candidate.c_str(), X_OK) == 0) return candidate;
  }
  return {};
}

SweepCoordinator::SweepCoordinator(ExecPolicy policy)
    : policy_(std::move(policy)) {
  policy_.num_workers = ResolveThreadCount(policy_.num_workers);
  if (policy_.worker_path.empty()) policy_.worker_path = DefaultWorkerPath();
  policy_.max_retries = std::max(policy_.max_retries, 0);
  policy_.backoff_initial_seconds =
      std::max(policy_.backoff_initial_seconds, 0.0);
  policy_.backoff_multiplier = std::max(policy_.backoff_multiplier, 1.0);
  policy_.backoff_max_seconds =
      std::max(policy_.backoff_max_seconds, policy_.backoff_initial_seconds);
}

SweepExecResult SweepCoordinator::Run(
    const std::vector<NetworkSimConfig>& configs) {
  SweepExecResult out;
  const std::size_t n = configs.size();
  out.results.resize(n);
  out.points.resize(n);
  if (n == 0) return out;

  // checkpoint_dir= compatibility shim: mount a content-addressed
  // ResultStore at the named directory. The ResultStore constructor throws
  // SimError when the directory is unusable — same contract the old
  // index-keyed cache had.
  if (!policy_.cache && !policy_.checkpoint_dir.empty()) {
    policy_.cache = std::make_shared<ResultStore>(policy_.checkpoint_dir);
  }
  PointCache* const cache = policy_.cache.get();

  // Shared scheduler state. Result slots are per-index so writes never
  // alias, but everything is mutated under one lock anyway — the costs
  // here are process spawns and multi-millisecond simulations, not lock
  // contention.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Item> queue;
  std::size_t outstanding = 0;  // queued + in-flight, not yet finalized
  bool spawn_broken = false;
  std::vector<std::size_t> fallback;  // runs in-process after the pool

  // Pre-pass: serve cached points, route points a worker cannot execute
  // (a live topology_factory has no wire form) straight to the in-process
  // path, and collapse within-batch duplicates (same NetworkSimResultKey)
  // onto one canonical dispatch each — the duplicates' slots are fanned
  // out from the canonical result once everything completes.
  std::vector<std::pair<std::size_t, std::size_t>> dups;  // (dup, canonical)
  {
    std::unordered_map<std::uint64_t, std::size_t> first_by_key;
    for (std::size_t i = 0; i < n; ++i) {
      if (cache != nullptr) {
        const PointCacheStatus status = cache->Load(configs[i], &out.results[i]);
        if (status == PointCacheStatus::kHit) {
          out.points[i].from_cache = true;
          ++out.cached_points;
          continue;
        }
        if (status == PointCacheStatus::kDefective) {
          ++out.defective_cache_points;
        }
      }
      if (configs[i].topology_factory) {
        out.points[i].failure_detail =
            "topology_factory cannot cross a process boundary";
        fallback.push_back(i);
        continue;
      }
      // Factory-free configs are safe to dedupe; routing_factory configs
      // are not (the key only hashes factory presence).
      if (!configs[i].routing_factory) {
        const auto [it, inserted] =
            first_by_key.try_emplace(NetworkSimResultKey(configs[i]), i);
        if (!inserted) {
          dups.emplace_back(i, it->second);
          out.points[i].deduped = true;
          ++out.deduped_points;
          continue;
        }
      }
      queue.push_back(Item{i, 0, Clock::now()});
      ++outstanding;
    }
  }

  if (policy_.worker_path.empty()) {
    // No worker binary anywhere: degrade the whole batch to in-process
    // execution rather than wedging or throwing.
    std::fprintf(stderr,
                 "vixnoc: warning: no vixnoc_sweep_worker binary found "
                 "(set VIXNOC_SWEEP_WORKER); running sweep in-process "
                 "without crash isolation\n");
    for (const Item& item : queue) {
      out.points[item.index].last_failure = ExecFailure::kSpawn;
      out.points[item.index].failure_detail = "no worker binary found";
      fallback.push_back(item.index);
    }
    queue.clear();
    outstanding = 0;
  }

  const int num_workers =
      static_cast<int>(std::min<std::size_t>(policy_.num_workers,
                                             std::max<std::size_t>(n, 1)));

  const auto backoff_for = [this](int attempt) {
    const double raw = policy_.backoff_initial_seconds *
                       std::pow(policy_.backoff_multiplier, attempt);
    return std::min(raw, policy_.backoff_max_seconds);
  };

  // Finalization helpers; all called with `mu` held.
  const auto finalize = [&]() {
    --outstanding;
    if (outstanding == 0) cv.notify_all();
  };
  const auto tally_failure = [&](ExecFailure kind) {
    switch (kind) {
      case ExecFailure::kExit:
      case ExecFailure::kSignal:
        ++out.crashes;
        break;
      case ExecFailure::kTimeout:
        ++out.timeouts;
        break;
      case ExecFailure::kBadFrame:
        ++out.bad_frames;
        break;
      case ExecFailure::kSpawn:
        ++out.spawn_failures;
        break;
      case ExecFailure::kNone:
        break;
    }
  };

  const auto slot_loop = [&](int slot) {
    // A dead peer must surface as EPIPE from write(), not SIGPIPE.
    sigset_t sigpipe;
    sigemptyset(&sigpipe);
    sigaddset(&sigpipe, SIGPIPE);
    pthread_sigmask(SIG_BLOCK, &sigpipe, nullptr);

    Worker w;
    for (;;) {
      Item item;
      bool done = false;
      bool route_to_fallback = false;
      {
        std::unique_lock<std::mutex> lock(mu);
        for (;;) {
          if (outstanding == 0) {
            done = true;
            break;
          }
          const auto now = Clock::now();
          auto ready = queue.end();
          auto earliest = queue.end();
          for (auto it = queue.begin(); it != queue.end(); ++it) {
            if (it->ready_at <= now) {
              ready = it;
              break;
            }
            if (earliest == queue.end() ||
                it->ready_at < earliest->ready_at) {
              earliest = it;
            }
          }
          if (ready != queue.end()) {
            item = *ready;
            queue.erase(ready);
            break;
          }
          if (earliest != queue.end()) {
            cv.wait_until(lock, earliest->ready_at);
          } else {
            cv.wait(lock);  // everything in flight elsewhere
          }
        }
        if (!done && spawn_broken) {
          // A slot already proved subprocesses cannot be spawned; route
          // everything else to the in-process path without more attempts.
          out.points[item.index].last_failure = ExecFailure::kSpawn;
          out.points[item.index].failure_detail =
              "subprocess spawning unavailable";
          fallback.push_back(item.index);
          finalize();
          route_to_fallback = true;
        }
      }
      if (route_to_fallback) continue;
      if (done) {
        // Batch complete: shut the worker down by closing its stdin (it
        // exits on EOF) and reap it.
        if (w.alive()) {
          const pid_t pid = w.pid;
          const std::string wait = ReapWorker(&w);
          std::lock_guard<std::mutex> lock(mu);
          out.events.push_back(WorkerEvent{WorkerEvent::Kind::kExit, slot,
                                           static_cast<long>(pid),
                                           "shutdown: " + wait});
        }
        return;
      }

      // ---- dispatch one attempt, unlocked ----
      if (!w.alive()) {
        std::string err;
        if (!SpawnWorker(policy_.worker_path, &w, &err)) {
          std::lock_guard<std::mutex> lock(mu);
          spawn_broken = true;
          tally_failure(ExecFailure::kSpawn);
          out.points[item.index].last_failure = ExecFailure::kSpawn;
          out.points[item.index].failure_detail = err;
          fallback.push_back(item.index);
          finalize();
          cv.notify_all();  // wake slots so they drain via spawn_broken
          continue;
        }
        std::lock_guard<std::mutex> lock(mu);
        ++out.workers_spawned;
        out.events.push_back(WorkerEvent{WorkerEvent::Kind::kSpawn, slot,
                                         static_cast<long>(w.pid), ""});
      }
      const pid_t worker_pid = w.pid;

      PointFrame pf;
      pf.index = item.index;
      pf.attempt = static_cast<std::uint32_t>(item.attempt);
      pf.config = configs[item.index];
      const std::uint64_t fp = NetworkSimConfigFingerprint(pf.config);

      ExecFailure failure = ExecFailure::kNone;
      std::string detail;
      WorkerEvent::Kind event_kind = WorkerEvent::Kind::kExit;
      NetworkSimResult result;

      std::string werr;
      if (!WriteFrame(w.in_fd, EncodePointFrame(pf), &werr)) {
        // The worker died before (or while) reading the point.
        detail = ReapWorker(&w) + " before accepting the point";
        failure = detail.rfind("signal", 0) == 0 ? ExecFailure::kSignal
                                                 : ExecFailure::kExit;
      } else {
        const FrameRead rr =
            ReadFrame(w.out_fd, policy_.point_timeout_seconds > 0
                                    ? policy_.point_timeout_seconds
                                    : -1.0);
        switch (rr.status) {
          case FrameRead::Status::kOk:
            try {
              ResultFrame rf = DecodeResultFrame(rr.payload);
              if (rf.index != item.index || rf.config_fingerprint != fp) {
                failure = ExecFailure::kBadFrame;
                detail = "result frame for point " +
                         std::to_string(rf.index) + " (expected " +
                         std::to_string(item.index) +
                         ") or mismatched fingerprint; " + KillWorker(&w);
                event_kind = WorkerEvent::Kind::kKill;
              } else {
                result = std::move(rf.result);
              }
            } catch (const SimError& e) {
              // Right length, rotten bytes: the worker's stream state is
              // untrustworthy, so it is replaced.
              failure = ExecFailure::kBadFrame;
              detail = std::string("undecodable result frame: ") + e.what() +
                       "; " + KillWorker(&w);
              event_kind = WorkerEvent::Kind::kKill;
            }
            break;
          case FrameRead::Status::kTimeout: {
            char buf[128];
            std::snprintf(buf, sizeof buf,
                          "point exceeded its %.3fs deadline; worker killed",
                          policy_.point_timeout_seconds);
            failure = ExecFailure::kTimeout;
            detail = std::string(buf) + " (" + KillWorker(&w) + ")";
            event_kind = WorkerEvent::Kind::kKill;
            break;
          }
          case FrameRead::Status::kEof:
          case FrameRead::Status::kShort: {
            const std::string wait = ReapWorker(&w);
            if (wait.rfind("signal", 0) == 0) {
              failure = ExecFailure::kSignal;
              detail = wait;
            } else if (wait == "exit status 0") {
              failure = ExecFailure::kBadFrame;
              detail = "worker exited cleanly mid-point";
              if (rr.status == FrameRead::Status::kShort) {
                detail += " (" + rr.detail + ")";
              }
            } else {
              failure = ExecFailure::kExit;
              detail = wait;
            }
            break;
          }
          case FrameRead::Status::kError:
            failure = ExecFailure::kBadFrame;
            detail = "frame read failed: " + rr.detail + "; " + KillWorker(&w);
            event_kind = WorkerEvent::Kind::kKill;
            break;
        }
      }

      if (failure == ExecFailure::kNone) {
        // Success. Cache best-effort (the cache is an accelerator, never a
        // correctness input; Put is non-throwing), then publish the slot.
        if (cache != nullptr) cache->Put(pf.config, result);
        std::lock_guard<std::mutex> lock(mu);
        out.results[item.index] = std::move(result);
        out.points[item.index].isolated = true;
        out.points[item.index].attempts = item.attempt + 1;
        finalize();
        continue;
      }

      // Failure: classify, then retry with backoff or give the point its
      // final error slot. The worker (if any survived classification) is
      // already dead — the next dispatch on this slot respawns one.
      std::lock_guard<std::mutex> lock(mu);
      tally_failure(failure);
      ExecStatus& st = out.points[item.index];
      st.attempts = item.attempt + 1;
      st.last_failure = failure;
      st.failure_detail = detail;
      out.events.push_back(WorkerEvent{
          event_kind, slot, static_cast<long>(worker_pid),
          "point " + std::to_string(item.index) + ": " + detail});
      if (item.attempt < policy_.max_retries) {
        const double backoff = backoff_for(item.attempt);
        st.backoff_seconds += backoff;
        ++out.retries;
        queue.push_back(Item{
            item.index, item.attempt + 1,
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(backoff))});
        cv.notify_all();
      } else {
        ++out.exhausted_points;
        NetworkSimResult& slot_result = out.results[item.index];
        slot_result = NetworkSimResult{};
        slot_result.outcome.status = SimStatus::kExecFailure;
        slot_result.outcome.message =
            "worker " + ToString(failure) + " failure: " + detail + " (" +
            std::to_string(item.attempt + 1) + " attempts)";
        finalize();
      }
    }
  };

  std::vector<std::thread> slots;
  slots.reserve(num_workers);
  for (int s = 0; s < num_workers; ++s) {
    slots.emplace_back(slot_loop, s);
  }
  for (std::thread& t : slots) t.join();

  // Graceful degradation: everything routed to the in-process path runs
  // on a SweepRunner (which converts exceptions into error slots, exactly
  // like a non-isolated sweep would).
  if (!fallback.empty()) {
    std::vector<NetworkSimConfig> cfgs;
    cfgs.reserve(fallback.size());
    for (const std::size_t index : fallback) cfgs.push_back(configs[index]);
    const std::vector<NetworkSimResult> res =
        RunSweep(cfgs, policy_.num_workers);
    for (std::size_t k = 0; k < fallback.size(); ++k) {
      const std::size_t index = fallback[k];
      out.results[index] = res[k];
      out.points[index].in_process_fallback = true;
      ++out.fallback_points;
      // Put itself skips exception slots and factory configs.
      if (cache != nullptr) cache->Put(configs[index], out.results[index]);
    }
  }

  // Fan deduplicated slots out from their canonical results (which by now
  // all exist — worker, fallback, or final error slot alike).
  for (const auto& [dup, canon] : dups) {
    out.results[dup] = out.results[canon];
  }
  return out;
}

}  // namespace vixnoc
