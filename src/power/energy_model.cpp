#include "power/energy_model.hpp"

#include "common/check.hpp"

namespace vixnoc::power {

double XbarEnergyScale(int inputs, int outputs) {
  VIXNOC_CHECK(inputs >= outputs && outputs > 0);
  // Row (input) wires span O columns in both designs; column (output)
  // wires span I rows. A traversal drives one of each.
  const double ratio = static_cast<double>(inputs) / outputs;
  return 0.5 + 0.5 * ratio;
}

EnergyBreakdown NetworkEnergy(const EnergyParams& params,
                              const RouterConfig& router, int num_routers,
                              const RouterActivity& activity, Cycle cycles) {
  EnergyBreakdown e;
  const int vins = router.NumVins();
  const int xbar_inputs = router.radix * vins;
  const int xbar_outputs = router.radix;

  e.buffer_pj =
      params.buffer_write_per_flit_pj * activity.buffer_writes +
      params.buffer_read_per_flit_pj * activity.buffer_reads;
  e.xbar_pj = params.xbar_traversal_base_pj *
              XbarEnergyScale(xbar_inputs, xbar_outputs) *
              activity.xbar_traversals;
  e.link_pj = params.link_traversal_per_flit_pj * activity.link_flits;

  const double buffer_bits = static_cast<double>(router.radix) *
                             router.num_vcs * router.buffer_depth *
                             params.flit_bits;
  const double router_cycles =
      static_cast<double>(num_routers) * static_cast<double>(cycles);
  e.clock_pj = (params.clock_per_buffer_bit_pj * buffer_bits +
                params.clock_fixed_per_router_pj) *
               router_cycles;
  e.leakage_pj = (params.leak_per_buffer_bit_pj * buffer_bits +
                  params.leak_per_xbar_crosspoint_pj * xbar_inputs *
                      xbar_outputs) *
                 router_cycles;
  return e;
}

double EnergyPerBitPj(const EnergyBreakdown& breakdown,
                      std::uint64_t bits_delivered) {
  VIXNOC_CHECK(bits_delivered > 0);
  return breakdown.TotalPj() / static_cast<double>(bits_delivered);
}

}  // namespace vixnoc::power
