// Network energy model (paper §3, §4.5, Fig 11).
//
// The paper drives SPICE-derived per-event energy models with activity
// factors collected from cycle-accurate simulation. We do the same, with
// 45nm-class per-event constants in place of the SPICE netlists:
//
//   dynamic:  buffer write/read per flit, crossbar traversal per flit
//             (scaled by crossbar geometry: a 2P x P VIX crossbar has
//             ~1.5x the switched wire capacitance per traversal of a
//             P x P one), link traversal per flit per hop;
//   static:   clock tree energy per router-cycle (dominated by the buffer
//             flops) and leakage per router-cycle (buffer bits + crossbar
//             area, the latter doubling under VIX).
//
// Constants are calibrated so the baseline mesh breakdown at 0.1
// packets/cycle/node matches Fig 11's qualitative shares and the VIX
// total lands ~4% above the separable baseline (§4.5).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "router/router.hpp"

namespace vixnoc::power {

/// Per-event and per-cycle energy constants (picojoules). Defaults are the
/// calibrated 45nm-class values; individual studies may override.
struct EnergyParams {
  double buffer_write_per_flit_pj = 2.5;
  double buffer_read_per_flit_pj = 1.5;
  double xbar_traversal_base_pj = 0.8;   ///< for a square P x P crossbar
  double link_traversal_per_flit_pj = 5.0;
  double clock_per_buffer_bit_pj = 2.0e-4;    ///< per router-cycle
  double clock_fixed_per_router_pj = 0.5;     ///< per router-cycle
  double leak_per_buffer_bit_pj = 1.5e-4;     ///< per router-cycle
  double leak_per_xbar_crosspoint_pj = 0.012; ///< per router-cycle
  int flit_bits = 128;
};

struct EnergyBreakdown {
  double buffer_pj = 0.0;
  double xbar_pj = 0.0;
  double link_pj = 0.0;
  double clock_pj = 0.0;
  double leakage_pj = 0.0;

  double TotalPj() const {
    return buffer_pj + xbar_pj + link_pj + clock_pj + leakage_pj;
  }
};

/// Crossbar traversal energy multiplier for an I x O crossbar relative to a
/// square O x O one: longer output columns raise switched capacitance
/// linearly in I/O.
double XbarEnergyScale(int inputs, int outputs);

/// Total network energy over a measurement window: `activity` summed over
/// all routers, `cycles` the window length, `num_routers` the network size.
EnergyBreakdown NetworkEnergy(const EnergyParams& params,
                              const RouterConfig& router, int num_routers,
                              const RouterActivity& activity, Cycle cycles);

/// Fig 11's metric: energy divided by payload bits delivered.
double EnergyPerBitPj(const EnergyBreakdown& breakdown,
                      std::uint64_t bits_delivered);

}  // namespace vixnoc::power
