// vixnoc_sweep_worker: the subprocess half of crash-isolated sweeps.
//
// Reads length-prefixed point frames on stdin, runs each point through
// the same deterministic RunNetworkSim the in-process path uses, and
// writes length-prefixed result frames on stdout (exec/exec_protocol.hpp
// describes the wire format). Exits 0 on clean EOF. stdout carries
// nothing but result frames — all diagnostics go to stderr.
//
// The coordinator (exec/coordinator.hpp) treats any deviation — nonzero
// exit, death by signal, a short or undecodable frame, or silence past
// the per-point deadline — as a classified failure of the *point*, never
// of the batch. A SimError inside the simulation is not a process
// failure: like SweepRunner, the worker converts it into a result slot
// with SimStatus::kInvariantViolation and keeps serving points.
//
// Deterministic failure injection for tests (exec_test.cpp, tier1.sh):
//
//   VIXNOC_TEST_CRASH_POINT=<i>[:<n>]     abort() on point i
//   VIXNOC_TEST_HANG_POINT=<i>[:<n>]      hang forever on point i
//   VIXNOC_TEST_EXIT_POINT=<i>[:<n>]      _exit(41) on point i
//   VIXNOC_TEST_BADFRAME_POINT=<i>[:<n>]  write a truncated result frame
//                                         for point i, then exit 0
//
// With the ":<n>" suffix the hook only fires while the frame's attempt
// counter is below n, so a "crash twice, then succeed" retry path is a
// one-variable setup. Without it the hook fires on every attempt.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "common/error.hpp"
#include "exec/exec_protocol.hpp"
#include "sim/network_sim.hpp"

namespace vixnoc {
namespace {

/// Parses "<index>[:<max_attempt>]" hooks; fires when `index` matches and
/// attempt < max_attempt (max_attempt defaults to "always").
bool HookFires(const char* env_name, std::uint64_t index,
               std::uint32_t attempt) {
  const char* env = std::getenv(env_name);
  if (env == nullptr || *env == '\0') return false;
  char* end = nullptr;
  const unsigned long long hook_index = std::strtoull(env, &end, 10);
  if (end == env) return false;
  unsigned long long max_attempt = ~0ull;
  if (*end == ':') {
    max_attempt = std::strtoull(end + 1, nullptr, 10);
  } else if (*end != '\0') {
    return false;
  }
  return hook_index == index && attempt < max_attempt;
}

void ApplyTestHooks(const PointFrame& point) {
  if (HookFires("VIXNOC_TEST_CRASH_POINT", point.index, point.attempt)) {
    std::fprintf(stderr,
                 "vixnoc_sweep_worker: injected crash on point %llu "
                 "(attempt %u)\n",
                 static_cast<unsigned long long>(point.index), point.attempt);
    std::abort();
  }
  if (HookFires("VIXNOC_TEST_HANG_POINT", point.index, point.attempt)) {
    std::fprintf(stderr,
                 "vixnoc_sweep_worker: injected hang on point %llu "
                 "(attempt %u)\n",
                 static_cast<unsigned long long>(point.index), point.attempt);
    for (;;) ::pause();  // no CPU burn; the coordinator's watchdog kills us
  }
  if (HookFires("VIXNOC_TEST_EXIT_POINT", point.index, point.attempt)) {
    std::fprintf(stderr,
                 "vixnoc_sweep_worker: injected exit(41) on point %llu "
                 "(attempt %u)\n",
                 static_cast<unsigned long long>(point.index), point.attempt);
    std::_Exit(41);
  }
  if (HookFires("VIXNOC_TEST_BADFRAME_POINT", point.index, point.attempt)) {
    std::fprintf(stderr,
                 "vixnoc_sweep_worker: injected short frame on point %llu "
                 "(attempt %u)\n",
                 static_cast<unsigned long long>(point.index), point.attempt);
    // A length prefix promising 64 bytes, followed by only 8: the
    // coordinator sees the stream end mid-frame with exit status 0.
    const unsigned char bytes[16] = {64, 0, 0, 0, 0, 0, 0, 0,
                                     'g', 'a', 'r', 'b', 'a', 'g', 'e', '!'};
    [[maybe_unused]] ssize_t n = ::write(STDOUT_FILENO, bytes, sizeof bytes);
    std::_Exit(0);
  }
}

int WorkerMain() {
  for (;;) {
    const FrameRead in = ReadFrame(STDIN_FILENO, -1.0);
    if (in.status == FrameRead::Status::kEof) return 0;  // clean shutdown
    if (in.status != FrameRead::Status::kOk) {
      std::fprintf(stderr, "vixnoc_sweep_worker: bad input frame: %s\n",
                   in.detail.c_str());
      return 3;
    }
    PointFrame point;
    try {
      point = DecodePointFrame(in.payload);
    } catch (const SimError& e) {
      std::fprintf(stderr, "vixnoc_sweep_worker: undecodable point: %s\n",
                   e.what());
      return 4;
    }
    ApplyTestHooks(point);

    // Same per-point error contract as SweepRunner's worker threads: a
    // recoverable simulation error becomes a failed result slot, and the
    // worker stays alive for the next point.
    NetworkSimResult result;
    try {
      result = RunNetworkSim(point.config);
    } catch (const SimError& e) {
      result = NetworkSimResult{};
      result.outcome.status = SimStatus::kInvariantViolation;
      result.outcome.message = e.what();
    } catch (const std::exception& e) {
      result = NetworkSimResult{};
      result.outcome.status = SimStatus::kInvariantViolation;
      result.outcome.message =
          std::string("unexpected exception: ") + e.what();
    }

    std::string error;
    if (!WriteFrame(STDOUT_FILENO,
                    EncodeResultFrame(point.index,
                                      NetworkSimConfigFingerprint(point.config),
                                      result),
                    &error)) {
      std::fprintf(stderr, "vixnoc_sweep_worker: cannot write result: %s\n",
                   error.c_str());
      return 5;
    }
  }
}

}  // namespace
}  // namespace vixnoc

int main() { return vixnoc::WorkerMain(); }
