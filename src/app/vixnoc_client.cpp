// vixnoc_client: CLI client for the vixnocd daemon.
//
//   $ vixnoc_client point socket=/run/vixnocd.sock scheme=vix rate=0.1
//   $ vixnoc_client sweep socket=/run/vixnocd.sock scheme=vix json=out.json
//   $ vixnoc_client stats socket=/run/vixnocd.sock
//   $ vixnoc_client shutdown socket=/run/vixnocd.sock
//
// point: one simulation point, same config keys as noc_explorer
//   (topology= scheme= pattern= routing= rate= vcs= depth= packet= seed=
//   warmup= measure= drain= pipeline= hotspot= fanin=).
// sweep: the standard rate sweep (0.02 .. saturation step 0.01) over those
//   keys, sent as one batch; json= writes per-point results with their
//   serve source (store/computed/coalesced) plus summary counters — the
//   tier1 service gate diffs two of these files field by field.
// stats / shutdown: daemon introspection and graceful drain.
//
// connect_timeout=S retries the initial connect (covers daemon startup).
// Exit codes: 0 success, 1 transport/daemon error, 2 usage.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "app/sim_config_args.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "server/client.hpp"

using namespace vixnoc;

namespace {

void PrintPoint(const NetworkSimConfig& config, const PointReply& reply) {
  if (reply.status != ServeStatus::kOk) {
    std::printf("rate=%.3f %s: %s\n", config.injection_rate,
                ToString(reply.status).c_str(), reply.message.c_str());
    return;
  }
  const NetworkSimResult& r = reply.result;
  std::printf(
      "%-6s %-9s rate=%.3f | accepted=%.4f ppc lat=%.1f p99=%.0f "
      "maxmin=%.2f%s  [%s]\n",
      ToString(config.topology).c_str(), ToString(config.scheme).c_str(),
      config.injection_rate, r.accepted_ppc, r.avg_latency, r.p99_latency,
      r.max_min_ratio, r.saturated ? " [saturated]" : "",
      ToString(reply.source).c_str());
}

void WriteSweepJson(const std::string& path, const std::string& socket,
                    const std::vector<NetworkSimConfig>& points,
                    const std::vector<PointReply>& replies,
                    std::uint64_t retries) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "vixnoc_client: cannot write %s\n", path.c_str());
    return;
  }
  std::uint64_t store_hits = 0, computed = 0, coalesced = 0, errors = 0;
  for (const PointReply& r : replies) {
    if (r.status != ServeStatus::kOk) {
      ++errors;
    } else if (r.source == ServeSource::kStore) {
      ++store_hits;
    } else if (r.source == ServeSource::kComputed) {
      ++computed;
    } else if (r.source == ServeSource::kCoalesced) {
      ++coalesced;
    }
  }
  std::fprintf(f, "{\n  \"bench\": \"vixnoc_client_sweep\",\n");
  std::fprintf(f, "  \"socket\": \"%s\",\n", socket.c_str());
  std::fprintf(f, "  \"points\": %zu,\n", points.size());
  std::fprintf(f, "  \"store_hits\": %" PRIu64 ",\n", store_hits);
  std::fprintf(f, "  \"computed\": %" PRIu64 ",\n", computed);
  std::fprintf(f, "  \"coalesced\": %" PRIu64 ",\n", coalesced);
  std::fprintf(f, "  \"errors\": %" PRIu64 ",\n", errors);
  std::fprintf(f, "  \"retries\": %" PRIu64 ",\n", retries);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const NetworkSimConfig& c = points[i];
    const PointReply& r = replies[i];
    std::fprintf(f,
                 "    {\"topology\": \"%s\", \"scheme\": \"%s\", "
                 "\"injection_rate\": %.17g, \"seed\": %" PRIu64
                 ", \"status\": \"%s\", \"source\": \"%s\"",
                 ToString(c.topology).c_str(), ToString(c.scheme).c_str(),
                 c.injection_rate, c.seed, ToString(r.status).c_str(),
                 ToString(r.source).c_str());
    if (r.status == ServeStatus::kOk) {
      const NetworkSimResult& m = r.result;
      std::fprintf(f,
                   ", \"accepted_ppc\": %.17g, \"accepted_fpc\": %.17g, "
                   "\"avg_latency\": %.17g, \"p99_latency\": %.17g, "
                   "\"max_min_ratio\": %.17g, \"packets_measured\": %" PRIu64
                   ", \"saturated\": %s",
                   m.accepted_ppc, m.accepted_fpc, m.avg_latency,
                   m.p99_latency, m.max_min_ratio, m.packets_measured,
                   m.saturated ? "true" : "false");
    }
    std::fprintf(f, "}%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int RunPoint(SimClient& client, const ArgMap& args) {
  NetworkSimConfig config;
  if (!SimConfigFromArgs(args, &config)) return 2;
  args.CheckAllConsumed();
  const PointReply reply = client.PointWithRetry(config);
  PrintPoint(config, reply);
  return reply.status == ServeStatus::kOk ? 0 : 1;
}

int RunSweep(SimClient& client, const ArgMap& args) {
  NetworkSimConfig config;
  if (!SimConfigFromArgs(args, &config)) return 2;
  const std::string json = args.GetString("json", "");
  args.CheckAllConsumed();

  std::vector<NetworkSimConfig> points;
  for (double rate = 0.02; rate <= config.MaxInjectionRate() + 1e-9;
       rate += 0.01) {
    config.injection_rate = rate;
    points.push_back(config);
  }

  // Batch first; any retry-after slots (daemon at capacity) are re-asked
  // individually with the daemon's own backoff hint.
  std::vector<PointReply> replies = client.Batch(points);
  std::uint64_t retries = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    while (replies[i].status == ServeStatus::kRetryAfter) {
      ++retries;
      replies[i] = client.PointWithRetry(points[i]);
      if (retries > 10'000) break;  // daemon permanently saturated
    }
  }

  bool ok = true;
  for (std::size_t i = 0; i < points.size(); ++i) {
    PrintPoint(points[i], replies[i]);
    if (replies[i].status != ServeStatus::kOk) ok = false;
  }
  if (!json.empty()) WriteSweepJson(json, client.socket_path(), points,
                                    replies, retries);
  return ok ? 0 : 1;
}

int RunStats(SimClient& client, const ArgMap& args) {
  args.CheckAllConsumed();
  const DaemonStats s = client.Stats();
  std::printf("requests:            %" PRIu64 " (%" PRIu64 " point, %" PRIu64
              " batch)\n",
              s.requests, s.point_requests, s.batch_requests);
  std::printf("points served:       %" PRIu64 "\n", s.points_served);
  std::printf("  store hits:        %" PRIu64 "\n", s.store_hits);
  std::printf("  computed:          %" PRIu64 "\n", s.computed_points);
  std::printf("  coalesced:         %" PRIu64 "\n", s.coalesced_points);
  std::printf("retry-after replies: %" PRIu64 "\n", s.retry_after_replies);
  std::printf("error replies:       %" PRIu64 "\n", s.error_replies);
  std::printf("in flight now:       %" PRIu64 "\n", s.inflight);
  std::printf("connections:         %" PRIu64 " accepted, %" PRIu64
              " active\n",
              s.connections_accepted, s.active_connections);
  std::printf("store writes:        %" PRIu64 " entries, %" PRIu64
              " bytes\n",
              s.store_entries_written, s.store_bytes_written);
  std::printf("store defective:     %" PRIu64 "\n", s.store_defective);
  std::printf("store GC evicted:    %" PRIu64 "\n", s.store_gc_evicted);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: vixnoc_client point|sweep|stats|shutdown "
                 "socket=PATH [keys...]\n");
    return 2;
  }
  const std::string command = argv[1];
  ArgMap args = ArgMap::Parse(argc - 1, argv + 1);
  const std::string socket = args.GetString("socket", "");
  const double connect_timeout = args.GetDouble("connect_timeout", 10.0);
  if (socket.empty()) {
    std::fprintf(stderr, "vixnoc_client: socket=PATH is required\n");
    return 2;
  }
  try {
    SimClient client(socket, connect_timeout);
    if (command == "point") return RunPoint(client, args);
    if (command == "sweep") return RunSweep(client, args);
    if (command == "stats") return RunStats(client, args);
    if (command == "shutdown") {
      args.CheckAllConsumed();
      client.Shutdown();
      std::printf("daemon at %s acknowledged shutdown\n", socket.c_str());
      return 0;
    }
    std::fprintf(stderr, "vixnoc_client: unknown command '%s'\n",
                 command.c_str());
    return 2;
  } catch (const SimError& e) {
    std::fprintf(stderr, "vixnoc_client: %s\n", e.what());
    return 1;
  }
}
