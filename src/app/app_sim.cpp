#include "app/app_sim.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "common/rng.hpp"
#include "network/network.hpp"
#include "sim/network_sim.hpp"

namespace vixnoc::app {

namespace {

// Message kinds threaded through Flit::user_tag.
enum class MsgKind : std::uint64_t {
  kCoreToL2 = 1,   ///< miss request, core -> L2 bank
  kL2ToCore = 2,   ///< data reply, L2 bank -> core
  kL2ToMc = 3,     ///< fill request, L2 bank -> memory controller
  kMcToL2 = 4,     ///< fill data, memory controller -> L2 bank
  kWriteback = 5,  ///< dirty-eviction data; consumed on arrival, no reply
};

// Tag layout: kind[63:60] | core[59:52] | bank[51:44] | issue cycle[43:0].
std::uint64_t PackTag(MsgKind kind, int core, int bank, Cycle issue) {
  return (static_cast<std::uint64_t>(kind) << 60) |
         (static_cast<std::uint64_t>(core & 0xff) << 52) |
         (static_cast<std::uint64_t>(bank & 0xff) << 44) |
         (issue & 0xfffffffffffull);
}
MsgKind KindOf(std::uint64_t tag) {
  return static_cast<MsgKind>(tag >> 60);
}
int CoreOf(std::uint64_t tag) { return static_cast<int>((tag >> 52) & 0xff); }
int BankOf(std::uint64_t tag) { return static_cast<int>((tag >> 44) & 0xff); }
Cycle IssueOf(std::uint64_t tag) { return tag & 0xfffffffffffull; }

struct Core {
  double miss_prob = 0.0;       ///< network_mpki / 1000
  double l2_miss_rate = 0.0;
  int outstanding = 0;
  bool miss_pending = false;    ///< stalled: miss due but MLP window full
  std::int64_t gap = 0;         ///< instructions until the next miss
  std::uint64_t retired = 0;
  std::uint64_t retired_at_measure_start = 0;
  std::uint64_t misses = 0;
  std::uint64_t misses_at_measure_start = 0;
  /// Retired-instruction count at issue time of each outstanding miss,
  /// oldest first; bounds how far the core can run ahead (ROB model).
  std::deque<std::uint64_t> issue_points;
};

struct Mc {
  NodeId node = kInvalidNode;
  Cycle busy_until = 0;
};

std::int64_t DrawGap(Rng& rng, double miss_prob) {
  // Geometric(miss_prob) instruction gap between misses, >= 1.
  if (miss_prob <= 0.0) return std::numeric_limits<std::int64_t>::max() / 2;
  const double u = std::max(rng.NextDouble(), 1e-12);
  const auto gap = static_cast<std::int64_t>(
      std::ceil(std::log(u) / std::log(1.0 - miss_prob)));
  return std::max<std::int64_t>(gap, 1);
}

}  // namespace

double WeightedSpeedup(const AppSimResult& a, const AppSimResult& b) {
  VIXNOC_CHECK(a.core_ipc.size() == b.core_ipc.size());
  VIXNOC_CHECK(!a.core_ipc.empty());
  double sum = 0.0;
  int counted = 0;
  for (std::size_t i = 0; i < a.core_ipc.size(); ++i) {
    if (a.core_ipc[i] <= 0.0) continue;  // idle core: no meaningful ratio
    sum += b.core_ipc[i] / a.core_ipc[i];
    ++counted;
  }
  return counted > 0 ? sum / counted : 1.0;
}

AppSimResult RunAppSim(const AppSimConfig& config,
                       const std::vector<BenchmarkProfile>& core_profiles) {
  auto topology = MakeTopology64(config.topology);
  const int num_nodes = topology->NumNodes();
  VIXNOC_CHECK(static_cast<int>(core_profiles.size()) == num_nodes);

  NetworkParams params;
  params.router.radix = topology->Radix();
  params.router.num_vcs = config.num_vcs;
  params.router.buffer_depth = config.buffer_depth;
  params.router.scheme = config.scheme;
  params.router.arbiter_kind = config.arbiter;
  params.router.vc_policy =
      config.vc_policy.value_or(RouterConfig::DefaultPolicyFor(config.scheme));
  params.router.num_message_classes = config.num_message_classes;
  Network net(std::shared_ptr<Topology>(std::move(topology)), params);
  // Virtual networks: requests and writebacks on class 0, data replies on
  // the highest class (identical when num_message_classes == 1).
  const int kReqClass = 0;
  const int kReplyClass = config.num_message_classes - 1;

  Rng rng(config.seed);
  std::vector<Core> cores(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) {
    cores[n].miss_prob = core_profiles[n].network_mpki / 1000.0;
    cores[n].l2_miss_rate = core_profiles[n].l2_miss_rate;
    cores[n].gap = DrawGap(rng, cores[n].miss_prob);
  }

  // Memory controllers spread along the mesh edges (Table 2: 8 MCs).
  std::vector<Mc> mcs(config.num_mcs);
  for (int m = 0; m < config.num_mcs; ++m) {
    mcs[m].node = static_cast<NodeId>(
        (static_cast<std::int64_t>(m) * num_nodes) / config.num_mcs);
  }

  // Deferred local actions (L2 lookups, MC completions) by due cycle.
  struct Action {
    MsgKind kind;
    int core;
    int bank;
    Cycle issue;
    NodeId mc_node = kInvalidNode;
  };
  std::map<Cycle, std::vector<Action>> pending;

  RunningStat miss_latency;
  const Cycle measure_start = config.warmup;
  const Cycle measure_end = config.warmup + config.measure;

  auto issue_miss = [&](NodeId core_id, Cycle now) {
    Core& core = cores[core_id];
    ++core.outstanding;
    ++core.misses;
    core.issue_points.push_back(core.retired);
    const int bank = static_cast<int>(rng.NextBounded(num_nodes));
    net.EnqueuePacket(core_id, bank, config.request_flits,
                      PackTag(MsgKind::kCoreToL2, core_id, bank, now),
                      kReqClass);
    if (rng.NextBool(config.writeback_prob)) {
      // Dirty eviction accompanies the miss: a fire-and-forget data packet
      // to the (address-interleaved, hence independent) home L2 bank.
      const int wb_bank = static_cast<int>(rng.NextBounded(num_nodes));
      net.EnqueuePacket(core_id, wb_bank, config.data_flits,
                        PackTag(MsgKind::kWriteback, core_id, wb_bank, now),
                        kReqClass);
    }
  };

  net.SetEjectCallback([&](const PacketRecord& rec) {
    const std::uint64_t tag = rec.user_tag;
    const Cycle now = rec.ejected;
    switch (KindOf(tag)) {
      case MsgKind::kCoreToL2: {
        // L2 bank lookup completes after the access latency.
        pending[now + config.l2_latency].push_back(
            Action{MsgKind::kCoreToL2, CoreOf(tag), BankOf(tag),
                   IssueOf(tag)});
        break;
      }
      case MsgKind::kL2ToCore: {
        Core& core = cores[CoreOf(tag)];
        VIXNOC_CHECK(core.outstanding > 0);
        --core.outstanding;
        // Replies complete approximately oldest-first; retiring the front
        // issue point releases the ROB headroom it was holding.
        core.issue_points.pop_front();
        miss_latency.Add(static_cast<double>(now - IssueOf(tag)));
        break;
      }
      case MsgKind::kL2ToMc: {
        // Queue at the memory controller attached to this node.
        Mc* mc = nullptr;
        for (Mc& candidate : mcs) {
          if (candidate.node == rec.dst) {
            mc = &candidate;
            break;
          }
        }
        VIXNOC_CHECK(mc != nullptr);
        const Cycle start = std::max(now, mc->busy_until);
        mc->busy_until = start + config.mc_service_interval;
        pending[start + config.mc_latency].push_back(
            Action{MsgKind::kL2ToMc, CoreOf(tag), BankOf(tag), IssueOf(tag),
                   rec.dst});
        break;
      }
      case MsgKind::kMcToL2: {
        // Fill arrives at the bank; forward the block to the core after
        // the bank write/read latency.
        pending[now + config.l2_latency].push_back(Action{
            MsgKind::kMcToL2, CoreOf(tag), BankOf(tag), IssueOf(tag),
            kInvalidNode});
        break;
      }
      case MsgKind::kWriteback:
        // Dirty data absorbed by the bank (or MC); nothing to send back.
        break;
    }
  });

  for (Cycle t = 0; t < measure_end; ++t) {
    if (t == measure_start) {
      for (Core& core : cores) {
        core.retired_at_measure_start = core.retired;
        core.misses_at_measure_start = core.misses;
      }
    }

    // Resolve deferred actions due now.
    while (!pending.empty() && pending.begin()->first <= t) {
      const auto it = pending.begin();
      for (const Action& act : it->second) {
        switch (act.kind) {
          case MsgKind::kCoreToL2: {
            // Bank lookup done: hit returns data; miss goes to memory.
            if (rng.NextBool(cores[act.core].l2_miss_rate)) {
              const int mc_idx =
                  static_cast<int>(rng.NextBounded(mcs.size()));
              net.EnqueuePacket(
                  act.bank, mcs[mc_idx].node, config.request_flits,
                  PackTag(MsgKind::kL2ToMc, act.core, act.bank, act.issue),
                  kReqClass);
              if (rng.NextBool(config.writeback_prob)) {
                // The fill will evict a dirty L2 block to memory.
                const int wb_mc =
                    static_cast<int>(rng.NextBounded(mcs.size()));
                net.EnqueuePacket(act.bank, mcs[wb_mc].node,
                                  config.data_flits,
                                  PackTag(MsgKind::kWriteback, act.core,
                                          act.bank, act.issue),
                                  kReqClass);
              }
            } else {
              net.EnqueuePacket(
                  act.bank, act.core, config.data_flits,
                  PackTag(MsgKind::kL2ToCore, act.core, act.bank, act.issue),
                  kReplyClass);
            }
            break;
          }
          case MsgKind::kL2ToMc: {
            // MC service done: send the block back to the L2 bank.
            VIXNOC_CHECK(act.mc_node != kInvalidNode);
            net.EnqueuePacket(
                act.mc_node, act.bank, config.data_flits,
                PackTag(MsgKind::kMcToL2, act.core, act.bank, act.issue),
                kReplyClass);
            break;
          }
          case MsgKind::kMcToL2: {
            net.EnqueuePacket(
                act.bank, act.core, config.data_flits,
                PackTag(MsgKind::kL2ToCore, act.core, act.bank, act.issue),
                kReplyClass);
            break;
          }
          case MsgKind::kL2ToCore:
            break;
        }
      }
      pending.erase(it);
    }

    // Core execution.
    for (NodeId n = 0; n < num_nodes; ++n) {
      Core& core = cores[n];
      if (core.miss_pending) {
        if (core.outstanding < config.mlp_limit) {
          issue_miss(n, t);
          core.miss_pending = false;
        } else {
          continue;  // stalled on a full MLP window
        }
      }
      // ROB model: cannot retire further than rob_window instructions past
      // the oldest outstanding miss.
      if (!core.issue_points.empty() &&
          core.retired - core.issue_points.front() >=
              static_cast<std::uint64_t>(config.rob_window)) {
        continue;  // stalled waiting for the oldest miss
      }
      ++core.retired;
      if (--core.gap <= 0) {
        core.gap = DrawGap(rng, core.miss_prob);
        if (core.outstanding < config.mlp_limit) {
          issue_miss(n, t);
        } else {
          core.miss_pending = true;
        }
      }
    }

    net.Step();
  }

  AppSimResult result;
  result.core_ipc.resize(num_nodes);
  std::uint64_t total_retired = 0;
  std::uint64_t total_misses = 0;
  for (NodeId n = 0; n < num_nodes; ++n) {
    const std::uint64_t retired =
        cores[n].retired - cores[n].retired_at_measure_start;
    total_retired += retired;
    total_misses += cores[n].misses - cores[n].misses_at_measure_start;
    result.core_ipc[n] =
        static_cast<double>(retired) / static_cast<double>(config.measure);
    result.aggregate_ipc += result.core_ipc[n];
  }
  result.avg_mpki = total_retired > 0
                        ? 1000.0 * static_cast<double>(total_misses) /
                              static_cast<double>(total_retired)
                        : 0.0;
  result.avg_miss_latency = miss_latency.Mean();
  result.total_requests = total_misses;
  return result;
}

}  // namespace vixnoc::app
