// Shared key=value -> NetworkSimConfig parsing for the CLI surfaces
// (examples/noc_explorer and src/app/vixnoc_client), so "scheme=vix
// rate=0.1" means byte-for-byte the same simulation point everywhere —
// which is what makes content-addressed result sharing between the tools
// actually hit.
#pragma once

#include "common/cli.hpp"
#include "sim/network_sim.hpp"

namespace vixnoc {

/// Consumes the simulation-point keys from `args` into `*config`:
///
///   topology=mesh|cmesh|fbfly scheme=if|wf|ap|vix|ideal|pc|islip|
///   sparoflo|serenade pattern=uniform|transpose|bitcomp|bitrev|tornado|
///   hotspot|incast routing=<registered plugin> hotspot=<node> fanin=<M>
///   vcs= depth= packet= rate= seed= warmup= measure= drain= pipeline=3|5
///
/// Defaults match the historical noc_explorer ones (mesh/vix/uniform/dor,
/// rate=0.1, vcs=6, depth=5, packet=4, seed=1, warmup=5000, measure=15000,
/// drain=2000, pipeline=3). Returns false after printing a diagnostic to
/// stderr when a name is unrecognized (caller exits 2); deeper validation
/// stays with ValidateNetworkSimConfig at run time.
bool SimConfigFromArgs(const ArgMap& args, NetworkSimConfig* config);

}  // namespace vixnoc
