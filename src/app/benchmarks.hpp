// Benchmark profiles and the paper's multiprogrammed workload mixes
// (Table 4).
//
// The paper drives a trace-driven 64-core simulator with SPEC CPU2006 and
// commercial traces. The traces are proprietary, so each benchmark is
// represented by a synthetic profile: its network MPKI (L1-MPKI + L2-MPKI,
// the quantity Table 4 reports) and its L2 miss ratio. Per-benchmark MPKI
// values were solved (least squares, exact) so that every mix's
// instance-weighted average MPKI reproduces Table 4's "avg. MPKI" column.
// Values at the 0.3 floor (gcc, gromacs, sjeng) are artifacts of fitting
// the published averages exactly, not measurements.
//
// Note: Table 4's Mix8 instance counts sum to 63; we pad sap to 11
// instances to fill the 64-core processor.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace vixnoc::app {

struct BenchmarkProfile {
  std::string name;
  double network_mpki = 0.0;  ///< L1-MPKI + L2-MPKI per core (Table 4 note)
  double l2_miss_rate = 0.0;  ///< fraction of L2 accesses going to memory
};

/// All 35 benchmarks the paper draws from (§3): SPEC CPU2006, scientific
/// and desktop applications, plus the four commercial traces.
const std::vector<BenchmarkProfile>& BenchmarkCatalogue();

/// Catalogue lookup by name; checks the benchmark exists.
const BenchmarkProfile& FindBenchmark(const std::string& name);

struct WorkloadMix {
  std::string name;
  /// (benchmark, instance count); counts sum to 64.
  std::vector<std::pair<std::string, int>> apps;
  double paper_avg_mpki = 0.0;     ///< Table 4 "avg. MPKI" column
  double paper_vix_speedup = 0.0;  ///< Table 4 "Speedup" column
};

/// Table 4's Mix1..Mix8.
const std::vector<WorkloadMix>& PaperMixes();

/// Expand a mix into one profile per core (64 entries), assigning instances
/// to consecutive cores in catalogue order.
std::vector<BenchmarkProfile> ExpandMix(const WorkloadMix& mix,
                                        int num_cores = 64);

/// Instance-weighted average network MPKI of a mix.
double MixAverageMpki(const WorkloadMix& mix);

}  // namespace vixnoc::app
