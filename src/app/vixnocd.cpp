// vixnocd: the simulation-as-a-service daemon.
//
//   $ vixnocd socket=/run/vixnocd.sock store=/var/cache/vixnoc
//
// Keys: socket=PATH (required)   Unix-domain socket to listen on
//       store=DIR   (required)   content-addressed result store root
//       threads=N                compute pool size (0 = auto)
//       queue=N                  max distinct in-flight computations
//                                before misses get retry-after (default 64)
//       max_store_bytes=B        store GC bound (0 = unbounded)
//       retry_after=S            backpressure retry hint in seconds
//       test_compute_delay_ms=MS test-only compute slowdown (see daemon.hpp)
//
// The daemon serves store hits immediately, coalesces concurrent identical
// requests (single-flight), and computes misses on a SweepRunner pool.
// SIGTERM/SIGINT drain in-flight points — their replies are still
// delivered — before the process exits 0. `vixnoc_client shutdown` does
// the same over the socket.
#include <csignal>
#include <cstdio>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "server/daemon.hpp"

using namespace vixnoc;

namespace {

SimDaemon* g_daemon = nullptr;

// Async-signal-safe: RequestStop is a single relaxed atomic store.
void OnTerminate(int) {
  if (g_daemon != nullptr) g_daemon->RequestStop();
}

}  // namespace

int main(int argc, char** argv) {
  ArgMap args = ArgMap::Parse(argc, argv);
  DaemonConfig config;
  config.socket_path = args.GetString("socket", "");
  config.store_dir = args.GetString("store", "");
  config.threads = static_cast<int>(args.GetInt("threads", 0));
  config.max_queue = static_cast<std::size_t>(args.GetInt("queue", 64));
  config.store_max_bytes =
      static_cast<std::uint64_t>(args.GetInt("max_store_bytes", 0));
  config.retry_after_seconds = args.GetDouble("retry_after", 0.05);
  config.test_compute_delay_ms =
      static_cast<int>(args.GetInt("test_compute_delay_ms", 0));
  args.CheckAllConsumed();
  if (config.socket_path.empty() || config.store_dir.empty()) {
    std::fprintf(stderr,
                 "usage: vixnocd socket=PATH store=DIR [threads=N] [queue=N] "
                 "[max_store_bytes=B] [retry_after=S]\n");
    return 2;
  }

  std::signal(SIGPIPE, SIG_IGN);  // dead clients surface as EPIPE

  try {
    SimDaemon daemon(config);
    g_daemon = &daemon;
    std::signal(SIGTERM, OnTerminate);
    std::signal(SIGINT, OnTerminate);
    daemon.Start();
    std::fprintf(stderr,
                 "vixnocd: serving on %s (store %s, %d threads, queue %zu)\n",
                 config.socket_path.c_str(), config.store_dir.c_str(),
                 daemon.config().threads > 0 ? daemon.config().threads
                                             : ResolveThreadCount(0),
                 config.max_queue);
    daemon.Wait();
    const DaemonStats s = daemon.stats();
    std::fprintf(stderr,
                 "vixnocd: drained and exiting (%llu requests, %llu served: "
                 "%llu store hits / %llu computed / %llu coalesced)\n",
                 static_cast<unsigned long long>(s.requests),
                 static_cast<unsigned long long>(s.points_served),
                 static_cast<unsigned long long>(s.store_hits),
                 static_cast<unsigned long long>(s.computed_points),
                 static_cast<unsigned long long>(s.coalesced_points));
    g_daemon = nullptr;
  } catch (const SimError& e) {
    std::fprintf(stderr, "vixnocd: %s\n", e.what());
    return 1;
  }
  return 0;
}
