#include "app/sim_config_args.hpp"

#include <cstdio>

#include "common/types.hpp"
#include "routing/registry.hpp"
#include "traffic/patterns.hpp"

namespace vixnoc {

bool SimConfigFromArgs(const ArgMap& args, NetworkSimConfig* config) {
  if (!ParseTopologyKind(args.GetString("topology", "mesh"),
                         &config->topology) ||
      !ParseAllocScheme(args.GetString("scheme", "vix"), &config->scheme) ||
      !ParsePatternKind(args.GetString("pattern", "uniform"),
                        &config->pattern)) {
    std::fprintf(stderr, "unrecognized topology/scheme/pattern name\n");
    return false;
  }
  config->routing = args.GetString("routing", "dor");
  if (!IsRegisteredRouting(config->routing)) {
    std::fprintf(stderr, "routing=%s is not a registered plugin (%s)\n",
                 config->routing.c_str(),
                 RegisteredRoutingNamesJoined().c_str());
    return false;
  }
  config->hotspot_node =
      static_cast<NodeId>(args.GetInt("hotspot", kInvalidNode));
  config->incast_fanin = static_cast<int>(args.GetInt("fanin", 0));
  config->num_vcs = static_cast<int>(args.GetInt("vcs", 6));
  config->buffer_depth = static_cast<int>(args.GetInt("depth", 5));
  config->packet_size = static_cast<int>(args.GetInt("packet", 4));
  config->injection_rate = args.GetDouble("rate", 0.1);
  config->seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));
  config->warmup = static_cast<Cycle>(args.GetInt("warmup", 5'000));
  config->measure = static_cast<Cycle>(args.GetInt("measure", 15'000));
  config->drain = static_cast<Cycle>(args.GetInt("drain", 2'000));
  config->pipeline_stages = static_cast<int>(args.GetInt("pipeline", 3));
  return true;
}

}  // namespace vixnoc
