#include "app/benchmarks.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace vixnoc::app {

namespace {

double L2MissRateFor(double mpki) {
  // Heavier network users tend to be memory-bound: correlate the L2 miss
  // ratio with MPKI, clamped to a plausible 45nm-era CMP range.
  return std::clamp(0.15 + mpki / 250.0, 0.15, 0.65);
}

BenchmarkProfile Make(const char* name, double mpki) {
  return BenchmarkProfile{name, mpki, L2MissRateFor(mpki)};
}

}  // namespace

const std::vector<BenchmarkProfile>& BenchmarkCatalogue() {
  static const std::vector<BenchmarkProfile> catalogue = {
      // Benchmarks appearing in Table 4's mixes; MPKI solved to reproduce
      // the published per-mix averages exactly (see header comment).
      Make("milc", 16.0),
      Make("applu", 13.0),
      Make("astar", 21.6),
      Make("sjeng", 0.3),
      Make("tonto", 7.5),
      Make("hmmer", 33.8),
      Make("sjas", 42.0),
      Make("gcc", 0.3),
      Make("sjbb", 38.0),
      Make("gromacs", 0.3),
      Make("xalan", 47.4),
      Make("libquantum", 32.7),
      Make("barnes", 38.5),
      Make("tpcw", 58.2),
      Make("povray", 32.7),
      Make("swim", 53.7),
      Make("leslie", 33.7),
      Make("omnet", 51.1),
      Make("art", 29.0),
      Make("lbm", 40.2),
      Make("Gems", 81.1),
      Make("mcf", 107.7),
      Make("ocean", 33.8),
      Make("deal", 34.6),
      Make("sap", 90.3),
      Make("namd", 49.7),
      // Remaining benchmarks of the 35-application suite (§3); MPKI values
      // are representative, they do not constrain Table 4.
      Make("bzip2", 6.2),
      Make("h264ref", 2.1),
      Make("perlbench", 3.4),
      Make("gobmk", 4.0),
      Make("soplex", 26.9),
      Make("calculix", 1.6),
      Make("wrf", 8.1),
      Make("zeusmp", 11.4),
      Make("cactusADM", 14.9),
  };
  return catalogue;
}

const BenchmarkProfile& FindBenchmark(const std::string& name) {
  const auto& catalogue = BenchmarkCatalogue();
  const auto it =
      std::find_if(catalogue.begin(), catalogue.end(),
                   [&](const BenchmarkProfile& b) { return b.name == name; });
  VIXNOC_CHECK(it != catalogue.end());
  return *it;
}

const std::vector<WorkloadMix>& PaperMixes() {
  static const std::vector<WorkloadMix> mixes = {
      {"Mix1",
       {{"milc", 11}, {"applu", 11}, {"astar", 10}, {"sjeng", 11},
        {"tonto", 11}, {"hmmer", 10}},
       15.0,
       1.03},
      {"Mix2",
       {{"sjas", 11}, {"gcc", 11}, {"sjbb", 11}, {"gromacs", 11},
        {"sjeng", 10}, {"xalan", 10}},
       21.3,
       1.03},
      {"Mix3",
       {{"milc", 11}, {"libquantum", 10}, {"astar", 11}, {"barnes", 11},
        {"tpcw", 11}, {"povray", 10}},
       33.3,
       1.04},
      {"Mix4",
       {{"astar", 11}, {"swim", 11}, {"leslie", 10}, {"omnet", 10},
        {"sjas", 11}, {"art", 11}},
       38.4,
       1.05},
      {"Mix5",
       {{"applu", 11}, {"lbm", 11}, {"Gems", 11}, {"barnes", 10},
        {"xalan", 11}, {"leslie", 10}},
       42.5,
       1.05},
      {"Mix6",
       {{"mcf", 11}, {"ocean", 10}, {"gromacs", 10}, {"lbm", 11},
        {"deal", 11}, {"sap", 11}},
       52.2,
       1.05},
      {"Mix7",
       {{"mcf", 10}, {"namd", 11}, {"hmmer", 11}, {"tpcw", 11},
        {"omnet", 10}, {"swim", 11}},
       58.4,
       1.06},
      // Mix8 is published with counts summing to 63; sap padded to 11.
      {"Mix8",
       {{"Gems", 10}, {"sjbb", 11}, {"sjas", 11}, {"mcf", 10}, {"xalan", 11},
        {"sap", 11}},
       66.9,
       1.07},
  };
  return mixes;
}

std::vector<BenchmarkProfile> ExpandMix(const WorkloadMix& mix,
                                        int num_cores) {
  std::vector<BenchmarkProfile> cores;
  cores.reserve(num_cores);
  for (const auto& [name, count] : mix.apps) {
    const BenchmarkProfile& profile = FindBenchmark(name);
    for (int i = 0; i < count; ++i) cores.push_back(profile);
  }
  VIXNOC_CHECK(static_cast<int>(cores.size()) == num_cores);
  return cores;
}

double MixAverageMpki(const WorkloadMix& mix) {
  double sum = 0.0;
  int total = 0;
  for (const auto& [name, count] : mix.apps) {
    sum += FindBenchmark(name).network_mpki * count;
    total += count;
  }
  return sum / total;
}

}  // namespace vixnoc::app
