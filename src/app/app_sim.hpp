// Trace-driven-equivalent manycore model (paper §3, Table 2; results in
// Table 4).
//
// 64 cores (one per network node) execute synthetic instruction streams
// characterized by each benchmark's network MPKI. A core retires one
// instruction per cycle until its next L1 miss falls due; misses issue a
// one-flit request to an address-interleaved shared L2 bank and return a
// five-flit data reply (64B block + header on a 128-bit datapath). L2
// misses add a round trip to one of eight memory controllers (80ns plus
// queuing under a bandwidth cap). A core stalls when its memory-level
// parallelism window (outstanding misses) is full — the mechanism through
// which network latency translates into lost IPC, and hence through which
// a better switch allocator produces application speedup.
#pragma once

#include <optional>
#include <vector>

#include "app/benchmarks.hpp"
#include "arbiter/arbiter.hpp"
#include "common/types.hpp"
#include "router/vc_assign.hpp"

namespace vixnoc::app {

struct AppSimConfig {
  AllocScheme scheme = AllocScheme::kInputFirst;
  TopologyKind topology = TopologyKind::kMesh;
  int num_vcs = 6;
  int buffer_depth = 5;
  ArbiterKind arbiter = ArbiterKind::kRoundRobin;
  std::optional<VcAssignPolicy> vc_policy;
  std::uint64_t seed = 1;
  Cycle warmup = 20'000;
  Cycle measure = 60'000;

  int mlp_limit = 16;      ///< Table 2: up to 16 outstanding requests/core
  /// Reorder-buffer headroom: the core retires at most this many
  /// instructions past its oldest outstanding miss before stalling (the
  /// first-order model of a 2-way out-of-order core, Table 2). Miss
  /// latency beyond the window is exposed as lost cycles — the channel
  /// through which network latency becomes application slowdown.
  int rob_window = 64;
  int l2_latency = 6;      ///< Table 2: 6-cycle L2 bank access
  int mc_latency = 160;    ///< Table 2: 80ns at 2 GHz
  int mc_service_interval = 2;  ///< cycles per 64B block (4ch x 16GB/s)
  int request_flits = 1;   ///< address/control packet
  int data_flits = 5;      ///< 64B block + header on a 128-bit datapath
  int num_mcs = 8;         ///< Table 2: 8 on-chip memory controllers
  /// Probability a miss evicts a dirty block, generating writeback traffic
  /// (a data packet core->L2 on L1 misses, L2->MC on L2 misses) with no
  /// reply. Raises network load the way real cache-miss traffic does.
  double writeback_prob = 0.3;
  /// 2 = separate request/reply virtual networks (VCs split between the
  /// two message classes); 1 = the paper's single-network configuration
  /// (protocol deadlock is impossible here regardless, because NIs sink
  /// ejected packets unconditionally).
  int num_message_classes = 1;
};

struct AppSimResult {
  std::vector<double> core_ipc;   ///< per-core IPC over the measured window
  double aggregate_ipc = 0.0;     ///< sum of core IPCs
  double avg_mpki = 0.0;          ///< measured misses per kilo-instruction
  double avg_miss_latency = 0.0;  ///< issue -> data-back, cycles
  std::uint64_t total_requests = 0;
};

/// Weighted speedup of `b` over `a` (same workload, same seed): the
/// arithmetic mean of per-core IPC ratios — the standard multiprogrammed
/// metric, robust to one core dominating the aggregate.
double WeightedSpeedup(const AppSimResult& a, const AppSimResult& b);

/// Run one workload (one profile per core) under one allocator scheme.
AppSimResult RunAppSim(const AppSimConfig& config,
                       const std::vector<BenchmarkProfile>& core_profiles);

}  // namespace vixnoc::app
