#include "sim/trace_sim.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/state_io.hpp"

namespace vixnoc {

PacketTrace GeneratePatternTrace(PatternKind pattern, double rate,
                                 int num_nodes, Cycle cycles,
                                 int packet_size, std::uint64_t seed) {
  auto pat = MakePattern(pattern);
  Rng rng(seed);
  PacketTrace trace;
  for (Cycle t = 0; t < cycles; ++t) {
    for (NodeId n = 0; n < num_nodes; ++n) {
      if (rng.NextBool(rate)) {
        trace.Add(TraceRecord{t, n, pat->Dest(n, num_nodes, rng),
                              packet_size});
      }
    }
  }
  return trace;
}

NetworkSimResult RunTraceSim(const NetworkSimConfig& config,
                             const PacketTrace& trace) {
  VIXNOC_REQUIRE(config.checkpoint_every == 0 ||
                     !config.checkpoint_path.empty(),
                 "checkpoint_every=%llu needs a checkpoint_path",
                 static_cast<unsigned long long>(config.checkpoint_every));
  auto topology = MakeTopology64(config.topology);
  NetworkParams params;
  params.router.radix = topology->Radix();
  params.router.num_vcs = config.num_vcs;
  params.router.buffer_depth = config.buffer_depth;
  params.router.scheme = config.scheme;
  params.router.arbiter_kind = config.arbiter;
  params.router.vc_policy =
      config.vc_policy.value_or(RouterConfig::DefaultPolicyFor(config.scheme));
  params.router.ap_rotate_vcs = config.ap_rotate_vcs;

  Network net(std::shared_ptr<Topology>(std::move(topology)), params);
  const int num_nodes = net.NumNodes();

  const Cycle measure_start = config.warmup;
  const Cycle measure_end = config.warmup + config.measure;
  const Cycle sim_end = trace.LastCycle() + config.drain + 1;

  RunningStat latency, net_latency;
  Histogram latency_hist(4.0, 4096);
  net.SetEjectCallback([&](const PacketRecord& rec) {
    if (rec.created >= measure_start && rec.created < measure_end) {
      latency.Add(static_cast<double>(rec.ejected - rec.created));
      net_latency.Add(static_cast<double>(rec.ejected - rec.injected));
      latency_hist.Add(static_cast<double>(rec.ejected - rec.created));
    }
  });

  std::vector<NodeCounters> at_start(num_nodes), at_end(num_nodes);
  RouterActivity activity_snapshot;
  std::uint64_t offered = 0;
  TraceReplayer replayer(trace);

  // --- Checkpoint/restore ------------------------------------------------
  // Same contract as RunNetworkSim: a checkpoint captures the state before
  // any work of cycle `next`, so a restored run replays bitwise
  // identically. The fingerprint folds the trace text into the config
  // fingerprint: the trace *is* the injection process here, so restoring
  // against different records must be rejected, not silently resumed.
  const bool snapshots_wanted =
      config.checkpoint_every > 0 || !config.restore_path.empty();
  std::uint64_t trace_fp = 0;
  if (snapshots_wanted) {
    const std::string text = trace.ToText();
    trace_fp = Fnv1a64(text.data(), text.size(),
                       NetworkSimConfigFingerprint(config));
  }
  const auto serialize_sim = [&](Cycle next) {
    SnapshotWriter w;
    w.BeginSection("trace_sim");
    w.U64(next);
    w.U64(static_cast<std::uint64_t>(replayer.position()));
    SaveRunningStat(w, latency);
    SaveRunningStat(w, net_latency);
    SaveHistogram(w, latency_hist);
    w.U64(offered);
    for (const NodeCounters& c : at_start) SaveNodeCounters(w, c);
    for (const NodeCounters& c : at_end) SaveNodeCounters(w, c);
    SaveRouterActivity(w, activity_snapshot);
    w.EndSection();
    w.BeginSection("network");
    net.SaveState(w);
    w.EndSection();
    return w.Finish(trace_fp);
  };

  Cycle start_cycle = 0;
  if (!config.restore_path.empty()) {
    SnapshotReader r(ReadSnapshotFile(config.restore_path));
    VIXNOC_REQUIRE(r.fingerprint() == trace_fp,
                   "checkpoint '%s' was taken under a different trace-sim "
                   "config or trace (fingerprint %016llx, this run is "
                   "%016llx)",
                   config.restore_path.c_str(),
                   static_cast<unsigned long long>(r.fingerprint()),
                   static_cast<unsigned long long>(trace_fp));
    r.OpenSection("trace_sim");
    start_cycle = r.U64();
    VIXNOC_REQUIRE(start_cycle <= sim_end,
                   "checkpoint resumes at cycle %llu, past the end of this "
                   "run (%llu)",
                   static_cast<unsigned long long>(start_cycle),
                   static_cast<unsigned long long>(sim_end));
    replayer.set_position(static_cast<std::size_t>(r.U64()));
    LoadRunningStat(r, &latency);
    LoadRunningStat(r, &net_latency);
    LoadHistogram(r, &latency_hist);
    offered = r.U64();
    for (NodeCounters& c : at_start) LoadNodeCounters(r, &c);
    for (NodeCounters& c : at_end) LoadNodeCounters(r, &c);
    activity_snapshot = LoadRouterActivity(r);
    r.CloseSection();
    r.OpenSection("network");
    net.LoadState(r);
    r.CloseSection();
  }

  for (Cycle t = start_cycle; t < sim_end; ++t) {
    if (config.checkpoint_every > 0 && t > 0 && t != start_cycle &&
        t % config.checkpoint_every == 0) {
      WriteSnapshotFile(config.checkpoint_path, serialize_sim(t));
    }
    if (t == measure_start) {
      for (NodeId n = 0; n < num_nodes; ++n) at_start[n] = net.counters(n);
      net.ClearActivity();
    }
    if (t == measure_end) {
      for (NodeId n = 0; n < num_nodes; ++n) at_end[n] = net.counters(n);
      activity_snapshot = net.TotalActivity();
    }
    for (const TraceRecord& r : replayer.TakeDue(t)) {
      net.EnqueuePacket(r.src, r.dst, r.size_flits);
      if (t >= measure_start && t < measure_end) ++offered;
    }
    net.Step();
    if (replayer.Exhausted() && net.Quiescent()) break;
  }
  if (net.now() <= measure_end) {
    // Trace (plus drain) ended inside the measurement window; snapshot now.
    for (NodeId n = 0; n < num_nodes; ++n) at_end[n] = net.counters(n);
    activity_snapshot = net.TotalActivity();
  }

  NetworkSimResult result;
  result.num_nodes = num_nodes;
  result.measure_cycles = config.measure;
  result.offered_ppc = static_cast<double>(offered) /
                       (static_cast<double>(config.measure) * num_nodes);

  std::uint64_t delivered = 0, flits = 0;
  double min_node = 1e300, max_node = 0.0;
  for (NodeId n = 0; n < num_nodes; ++n) {
    const std::uint64_t d =
        at_end[n].packets_delivered - at_start[n].packets_delivered;
    delivered += d;
    flits += at_end[n].flits_ejected - at_start[n].flits_ejected;
    const double ppc =
        static_cast<double>(d) / static_cast<double>(config.measure);
    min_node = std::min(min_node, ppc);
    max_node = std::max(max_node, ppc);
  }
  result.accepted_ppc = static_cast<double>(delivered) /
                        (static_cast<double>(config.measure) * num_nodes);
  result.accepted_fpc =
      static_cast<double>(flits) / static_cast<double>(config.measure);
  result.min_node_ppc = min_node;
  result.max_node_ppc = max_node;
  result.max_min_ratio = min_node > 0.0 ? max_node / min_node : 0.0;
  result.avg_latency = latency.Mean();
  result.avg_net_latency = net_latency.Mean();
  result.p99_latency = latency_hist.Quantile(0.99);
  result.packets_measured = latency.Count();
  result.saturated = result.accepted_ppc < 0.95 * result.offered_ppc;
  result.activity = activity_snapshot;
  return result;
}

}  // namespace vixnoc
