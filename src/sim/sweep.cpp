#include "sim/sweep.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "common/error.hpp"

namespace vixnoc {

int ResolveThreadCount(int requested) {
  VIXNOC_CHECK(requested >= 0);
  if (requested > kMaxThreadCount) {
    std::fprintf(stderr,
                 "vixnoc: warning: requested %d workers; capping at %d\n",
                 requested, kMaxThreadCount);
    return kMaxThreadCount;
  }
  if (requested > 0) return requested;
  if (const char* env = std::getenv("VIXNOC_THREADS")) {
    // Strict parse: the whole string must be a positive decimal integer
    // within the cap. Every malformed form is called out — a typo'd
    // VIXNOC_THREADS silently meaning "all cores" has burned people.
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0') {
      std::fprintf(stderr,
                   "vixnoc: warning: VIXNOC_THREADS='%s' is not an integer; "
                   "using hardware concurrency\n",
                   env);
    } else if (errno == ERANGE || v > kMaxThreadCount) {
      std::fprintf(stderr,
                   "vixnoc: warning: VIXNOC_THREADS='%s' exceeds the %d "
                   "worker cap; using %d\n",
                   env, kMaxThreadCount, kMaxThreadCount);
      return kMaxThreadCount;
    } else if (v <= 0) {
      std::fprintf(stderr,
                   "vixnoc: warning: VIXNOC_THREADS='%s' is not positive; "
                   "using hardware concurrency\n",
                   env);
    } else {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepRunner::SweepRunner(int num_threads) {
  const int n = ResolveThreadCount(num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SweepRunner::~SweepRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void SweepRunner::SetCache(std::shared_ptr<PointCache> cache) {
  std::lock_guard<std::mutex> lock(mu_);
  VIXNOC_CHECK(batch_ == nullptr);  // not against a batch in flight
  cache_ = std::move(cache);
}

NetworkSimResult SweepRunner::ExecutePoint(const NetworkSimConfig& config) {
  // A throwing point (invalid config, SimError) must not escape the
  // worker thread — that would std::terminate the process and wedge
  // Run() waiting on a slot that never completes. It becomes a failed
  // result instead, and the pool stays usable for later work.
  try {
    return RunNetworkSim(config);
  } catch (const SimError& e) {
    NetworkSimResult result;
    result.outcome.status = SimStatus::kInvariantViolation;
    result.outcome.message = e.what();
    return result;
  } catch (const std::exception& e) {
    NetworkSimResult result;
    result.outcome.status = SimStatus::kInvariantViolation;
    result.outcome.message = std::string("unexpected exception: ") + e.what();
    return result;
  }
}

void SweepRunner::WorkerLoop() {
  for (;;) {
    std::size_t pos = 0;
    Job job;
    bool have_job = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stop_ || !jobs_.empty() ||
               (batch_ != nullptr && next_ < work_.size());
      });
      if (batch_ != nullptr && next_ < work_.size()) {
        pos = next_++;
      } else if (!jobs_.empty()) {
        job = std::move(jobs_.front());
        jobs_.pop_front();
        have_job = true;
      } else if (stop_) {
        // Pending Submit jobs were drained above before honoring stop.
        return;
      } else {
        continue;
      }
    }

    if (have_job) {
      // The job runs unlocked; its callback owns whatever synchronization
      // the submitter needs.
      job.done(ExecutePoint(job.config));
      continue;
    }

    const std::size_t index = work_[pos];
    const NetworkSimConfig& config = (*batch_)[index];

    // With a cache attached, a result stored by any earlier run of the
    // same point satisfies it without simulating. Any defect in the
    // entry — truncated, corrupted, or written under a different key —
    // falls through to a normal run with a warning and a
    // defective_cache_points() tick; the cache is an accelerator, never
    // a correctness input.
    bool from_cache = false;
    NetworkSimResult result;
    if (cache_) {
      const PointCacheStatus cache = cache_->Load(config, &result);
      if (cache == PointCacheStatus::kHit) {
        from_cache = true;
      } else if (cache == PointCacheStatus::kDefective) {
        std::lock_guard<std::mutex> lock(mu_);
        ++defective_;
      }
    }

    if (!from_cache) {
      // The point runs unlocked: RunNetworkSim touches only its own state.
      result = ExecutePoint(config);
      if (cache_) cache_->Put(config, result);  // non-throwing by contract
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      (*results_)[index] = std::move(result);
      if (from_cache) ++resumed_;
      ++done_;
      done_points_ += satisfies_[pos];
      if (progress_) progress_(done_points_, batch_->size());
      if (done_ == work_.size()) done_cv_.notify_all();
    }
  }
}

std::vector<NetworkSimResult> SweepRunner::Run(
    const std::vector<NetworkSimConfig>& configs) {
  std::vector<NetworkSimResult> results(configs.size());
  if (configs.empty()) return results;

  // Within-batch dedup: identical points (same NetworkSimResultKey) are
  // simulated once and fanned out to every slot afterwards. Configs with
  // live factory callbacks are exempt — the key only hashes factory
  // *presence*, so two different factories would collide.
  const std::size_t n = configs.size();
  std::vector<std::size_t> canonical(n);
  std::vector<std::size_t> work;
  std::vector<std::size_t> satisfies;
  std::vector<std::size_t> work_pos(n, n);
  {
    std::unordered_map<std::uint64_t, std::size_t> first_by_key;
    first_by_key.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      canonical[i] = i;
      if (!configs[i].topology_factory && !configs[i].routing_factory) {
        const auto [it, inserted] =
            first_by_key.try_emplace(NetworkSimResultKey(configs[i]), i);
        if (!inserted) {
          canonical[i] = it->second;
          continue;
        }
      }
      work_pos[i] = work.size();
      work.push_back(i);
      satisfies.push_back(1);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (canonical[i] != i) ++satisfies[work_pos[canonical[i]]];
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    VIXNOC_CHECK(batch_ == nullptr);  // one batch at a time
    batch_ = &configs;
    results_ = &results;
    work_ = std::move(work);
    satisfies_ = std::move(satisfies);
    next_ = 0;
    done_ = 0;
    done_points_ = 0;
    resumed_ = 0;
    defective_ = 0;
    deduped_ = n - work_.size();
  }
  work_cv_.notify_all();

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return done_ == work_.size(); });
    batch_ = nullptr;
    results_ = nullptr;
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (canonical[i] != i) results[i] = results[canonical[i]];
  }
  return results;
}

void SweepRunner::Submit(NetworkSimConfig config,
                         std::function<void(NetworkSimResult)> done) {
  VIXNOC_CHECK(done != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(Job{std::move(config), std::move(done)});
  }
  work_cv_.notify_one();
}

std::vector<NetworkSimResult> RunSweep(
    const std::vector<NetworkSimConfig>& configs, int num_threads) {
  if (num_threads == 0) {
    // The common auto-threaded call reuses one process-wide pool: callers
    // that loop over RunSweep (benches, the coordinator's in-process
    // fallback) stop paying a full thread spawn/join per call. Run() takes
    // one batch at a time, so concurrent callers are serialized here. The
    // pool joins its workers in its static destructor at exit.
    static SweepRunner shared(0);
    static std::mutex shared_mu;
    std::lock_guard<std::mutex> lock(shared_mu);
    return shared.Run(configs);
  }
  SweepRunner runner(num_threads);
  return runner.Run(configs);
}

}  // namespace vixnoc
