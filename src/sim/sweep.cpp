#include "sim/sweep.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/check.hpp"
#include "common/error.hpp"
#include "snapshot/snapshot.hpp"

namespace vixnoc {

int ResolveThreadCount(int requested) {
  VIXNOC_CHECK(requested >= 0);
  if (requested > kMaxThreadCount) {
    std::fprintf(stderr,
                 "vixnoc: warning: requested %d workers; capping at %d\n",
                 requested, kMaxThreadCount);
    return kMaxThreadCount;
  }
  if (requested > 0) return requested;
  if (const char* env = std::getenv("VIXNOC_THREADS")) {
    // Strict parse: the whole string must be a positive decimal integer
    // within the cap. Every malformed form is called out — a typo'd
    // VIXNOC_THREADS silently meaning "all cores" has burned people.
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0') {
      std::fprintf(stderr,
                   "vixnoc: warning: VIXNOC_THREADS='%s' is not an integer; "
                   "using hardware concurrency\n",
                   env);
    } else if (errno == ERANGE || v > kMaxThreadCount) {
      std::fprintf(stderr,
                   "vixnoc: warning: VIXNOC_THREADS='%s' exceeds the %d "
                   "worker cap; using %d\n",
                   env, kMaxThreadCount, kMaxThreadCount);
      return kMaxThreadCount;
    } else if (v <= 0) {
      std::fprintf(stderr,
                   "vixnoc: warning: VIXNOC_THREADS='%s' is not positive; "
                   "using hardware concurrency\n",
                   env);
    } else {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

PointCacheStatus TryLoadPointCache(const std::string& path,
                                   const NetworkSimConfig& config,
                                   NetworkSimResult* out) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return PointCacheStatus::kMiss;
  try {
    SnapshotReader r(ReadSnapshotFile(path));
    if (r.fingerprint() != NetworkSimConfigFingerprint(config)) {
      std::fprintf(stderr,
                   "vixnoc: warning: sweep cache entry '%s' was written "
                   "under a different config (fingerprint %016llx, this "
                   "point is %016llx); re-running the point\n",
                   path.c_str(),
                   static_cast<unsigned long long>(r.fingerprint()),
                   static_cast<unsigned long long>(
                       NetworkSimConfigFingerprint(config)));
      return PointCacheStatus::kDefective;
    }
    r.OpenSection("result");
    *out = LoadNetworkSimResult(r);
    r.CloseSection();
    return PointCacheStatus::kHit;
  } catch (const SimError& e) {
    std::fprintf(stderr,
                 "vixnoc: warning: defective sweep cache entry '%s' (%s); "
                 "re-running the point\n",
                 path.c_str(), e.what());
    return PointCacheStatus::kDefective;
  }
}

void WritePointCache(const std::string& path, const NetworkSimConfig& config,
                     const NetworkSimResult& result) {
  SnapshotWriter w;
  w.BeginSection("result");
  SaveNetworkSimResult(w, result);
  w.EndSection();
  WriteSnapshotFile(path, w.Finish(NetworkSimConfigFingerprint(config)));
}

SweepRunner::SweepRunner(int num_threads) {
  const int n = ResolveThreadCount(num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SweepRunner::~SweepRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void SweepRunner::WorkerLoop() {
  for (;;) {
    std::size_t index;
    const NetworkSimConfig* config;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stop_ || (batch_ != nullptr && next_ < batch_->size());
      });
      if (stop_) return;
      index = next_++;
      config = &(*batch_)[index];
    }

    // With a checkpoint directory, a cached result from an earlier
    // (interrupted) run of the same batch satisfies the point without
    // simulating. Any defect in the cache file — truncated, corrupted, or
    // written under a different config — falls through to a normal run
    // with a warning and a defective_cache_points() tick; the cache is an
    // accelerator, never a correctness input.
    const std::string cache_path = PointCachePath(index);
    if (!cache_path.empty()) {
      NetworkSimResult cached;
      const PointCacheStatus cache =
          TryLoadPointCache(cache_path, *config, &cached);
      if (cache == PointCacheStatus::kHit) {
        std::lock_guard<std::mutex> lock(mu_);
        (*results_)[index] = std::move(cached);
        ++resumed_;
        ++done_;
        if (progress_) progress_(done_, batch_->size());
        if (done_ == batch_->size()) done_cv_.notify_all();
        continue;
      }
      if (cache == PointCacheStatus::kDefective) {
        std::lock_guard<std::mutex> lock(mu_);
        ++defective_;
      }
    }

    // The point runs unlocked: RunNetworkSim touches only its own state.
    // A throwing point (invalid config, SimError) must not escape the
    // worker thread — that would std::terminate the process and wedge
    // Run() waiting on a slot that never completes. It becomes a failed
    // result instead, and the pool stays usable for later batches.
    NetworkSimResult result;
    try {
      result = RunNetworkSim(*config);
      if (!cache_path.empty()) WritePointCache(cache_path, *config, result);
    } catch (const SimError& e) {
      result = NetworkSimResult{};
      result.outcome.status = SimStatus::kInvariantViolation;
      result.outcome.message = e.what();
    } catch (const std::exception& e) {
      result = NetworkSimResult{};
      result.outcome.status = SimStatus::kInvariantViolation;
      result.outcome.message = std::string("unexpected exception: ") + e.what();
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      (*results_)[index] = std::move(result);
      ++done_;
      if (progress_) progress_(done_, batch_->size());
      if (done_ == batch_->size()) done_cv_.notify_all();
    }
  }
}

void SweepRunner::SetCheckpointDir(std::string dir) {
  VIXNOC_CHECK(!dir.empty());
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  VIXNOC_REQUIRE(!ec, "cannot create sweep checkpoint directory '%s': %s",
                 dir.c_str(), ec.message().c_str());
  checkpoint_dir_ = std::move(dir);
}

std::string SweepRunner::PointCachePath(std::size_t index) const {
  if (checkpoint_dir_.empty()) return {};
  return checkpoint_dir_ + "/point_" + std::to_string(index) + ".ckpt";
}

std::vector<NetworkSimResult> SweepRunner::Run(
    const std::vector<NetworkSimConfig>& configs) {
  std::vector<NetworkSimResult> results(configs.size());
  if (configs.empty()) return results;

  {
    std::lock_guard<std::mutex> lock(mu_);
    VIXNOC_CHECK(batch_ == nullptr);  // one batch at a time
    batch_ = &configs;
    results_ = &results;
    next_ = 0;
    done_ = 0;
    resumed_ = 0;
    defective_ = 0;
  }
  work_cv_.notify_all();

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return done_ == configs.size(); });
    batch_ = nullptr;
    results_ = nullptr;
  }
  return results;
}

std::vector<NetworkSimResult> RunSweep(
    const std::vector<NetworkSimConfig>& configs, int num_threads) {
  SweepRunner runner(num_threads);
  return runner.Run(configs);
}

}  // namespace vixnoc
