#include "sim/sweep.hpp"

#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/check.hpp"
#include "common/error.hpp"
#include "snapshot/snapshot.hpp"

namespace vixnoc {

int ResolveThreadCount(int requested) {
  VIXNOC_CHECK(requested >= 0);
  if (requested > 0) return requested;
  if (const char* env = std::getenv("VIXNOC_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepRunner::SweepRunner(int num_threads) {
  const int n = ResolveThreadCount(num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SweepRunner::~SweepRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void SweepRunner::WorkerLoop() {
  for (;;) {
    std::size_t index;
    const NetworkSimConfig* config;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stop_ || (batch_ != nullptr && next_ < batch_->size());
      });
      if (stop_) return;
      index = next_++;
      config = &(*batch_)[index];
    }

    // With a checkpoint directory, a cached result from an earlier
    // (interrupted) run of the same batch satisfies the point without
    // simulating. Any defect in the cache file — missing, truncated,
    // corrupted, or written under a different config — falls through to a
    // normal run; the cache is an accelerator, never a correctness input.
    const std::string cache_path = PointCachePath(index);
    if (!cache_path.empty()) {
      try {
        SnapshotReader r(ReadSnapshotFile(cache_path));
        if (r.fingerprint() == NetworkSimConfigFingerprint(*config)) {
          r.OpenSection("result");
          NetworkSimResult cached = LoadNetworkSimResult(r);
          r.CloseSection();
          std::lock_guard<std::mutex> lock(mu_);
          (*results_)[index] = std::move(cached);
          ++resumed_;
          ++done_;
          if (progress_) progress_(done_, batch_->size());
          if (done_ == batch_->size()) done_cv_.notify_all();
          continue;
        }
      } catch (const SimError&) {
        // Unreadable or corrupted cache entry: re-run the point below.
      }
    }

    // The point runs unlocked: RunNetworkSim touches only its own state.
    // A throwing point (invalid config, SimError) must not escape the
    // worker thread — that would std::terminate the process and wedge
    // Run() waiting on a slot that never completes. It becomes a failed
    // result instead, and the pool stays usable for later batches.
    NetworkSimResult result;
    try {
      result = RunNetworkSim(*config);
      if (!cache_path.empty()) {
        SnapshotWriter w;
        w.BeginSection("result");
        SaveNetworkSimResult(w, result);
        w.EndSection();
        WriteSnapshotFile(cache_path,
                          w.Finish(NetworkSimConfigFingerprint(*config)));
      }
    } catch (const SimError& e) {
      result = NetworkSimResult{};
      result.outcome.status = SimStatus::kInvariantViolation;
      result.outcome.message = e.what();
    } catch (const std::exception& e) {
      result = NetworkSimResult{};
      result.outcome.status = SimStatus::kInvariantViolation;
      result.outcome.message = std::string("unexpected exception: ") + e.what();
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      (*results_)[index] = std::move(result);
      ++done_;
      if (progress_) progress_(done_, batch_->size());
      if (done_ == batch_->size()) done_cv_.notify_all();
    }
  }
}

void SweepRunner::SetCheckpointDir(std::string dir) {
  VIXNOC_CHECK(!dir.empty());
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  VIXNOC_REQUIRE(!ec, "cannot create sweep checkpoint directory '%s': %s",
                 dir.c_str(), ec.message().c_str());
  checkpoint_dir_ = std::move(dir);
}

std::string SweepRunner::PointCachePath(std::size_t index) const {
  if (checkpoint_dir_.empty()) return {};
  return checkpoint_dir_ + "/point_" + std::to_string(index) + ".ckpt";
}

std::vector<NetworkSimResult> SweepRunner::Run(
    const std::vector<NetworkSimConfig>& configs) {
  std::vector<NetworkSimResult> results(configs.size());
  if (configs.empty()) return results;

  {
    std::lock_guard<std::mutex> lock(mu_);
    VIXNOC_CHECK(batch_ == nullptr);  // one batch at a time
    batch_ = &configs;
    results_ = &results;
    next_ = 0;
    done_ = 0;
    resumed_ = 0;
  }
  work_cv_.notify_all();

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return done_ == configs.size(); });
    batch_ = nullptr;
    results_ = nullptr;
  }
  return results;
}

std::vector<NetworkSimResult> RunSweep(
    const std::vector<NetworkSimConfig>& configs, int num_threads) {
  SweepRunner runner(num_threads);
  return runner.Run(configs);
}

}  // namespace vixnoc
