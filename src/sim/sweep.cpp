#include "sim/sweep.hpp"

#include <cstdlib>
#include <string>

#include "common/check.hpp"
#include "common/error.hpp"

namespace vixnoc {

int ResolveThreadCount(int requested) {
  VIXNOC_CHECK(requested >= 0);
  if (requested > 0) return requested;
  if (const char* env = std::getenv("VIXNOC_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepRunner::SweepRunner(int num_threads) {
  const int n = ResolveThreadCount(num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SweepRunner::~SweepRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void SweepRunner::WorkerLoop() {
  for (;;) {
    std::size_t index;
    const NetworkSimConfig* config;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stop_ || (batch_ != nullptr && next_ < batch_->size());
      });
      if (stop_) return;
      index = next_++;
      config = &(*batch_)[index];
    }

    // The point runs unlocked: RunNetworkSim touches only its own state.
    // A throwing point (invalid config, SimError) must not escape the
    // worker thread — that would std::terminate the process and wedge
    // Run() waiting on a slot that never completes. It becomes a failed
    // result instead, and the pool stays usable for later batches.
    NetworkSimResult result;
    try {
      result = RunNetworkSim(*config);
    } catch (const SimError& e) {
      result = NetworkSimResult{};
      result.outcome.status = SimStatus::kInvariantViolation;
      result.outcome.message = e.what();
    } catch (const std::exception& e) {
      result = NetworkSimResult{};
      result.outcome.status = SimStatus::kInvariantViolation;
      result.outcome.message = std::string("unexpected exception: ") + e.what();
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      (*results_)[index] = std::move(result);
      ++done_;
      if (progress_) progress_(done_, batch_->size());
      if (done_ == batch_->size()) done_cv_.notify_all();
    }
  }
}

std::vector<NetworkSimResult> SweepRunner::Run(
    const std::vector<NetworkSimConfig>& configs) {
  std::vector<NetworkSimResult> results(configs.size());
  if (configs.empty()) return results;

  {
    std::lock_guard<std::mutex> lock(mu_);
    VIXNOC_CHECK(batch_ == nullptr);  // one batch at a time
    batch_ = &configs;
    results_ = &results;
    next_ = 0;
    done_ = 0;
  }
  work_cv_.notify_all();

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return done_ == configs.size(); });
    batch_ = nullptr;
    results_ = nullptr;
  }
  return results;
}

std::vector<NetworkSimResult> RunSweep(
    const std::vector<NetworkSimConfig>& configs, int num_threads) {
  SweepRunner runner(num_threads);
  return runner.Run(configs);
}

}  // namespace vixnoc
