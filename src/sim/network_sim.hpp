// Experiment driver: open-loop statistical-traffic simulations with the
// standard warmup / measurement / drain methodology. This is the engine
// behind the paper's Figures 8, 9, 10 and 12.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "network/network.hpp"
#include "router/vc_assign.hpp"
#include "traffic/patterns.hpp"

namespace vixnoc {

struct NetworkSimConfig {
  TopologyKind topology = TopologyKind::kMesh;
  AllocScheme scheme = AllocScheme::kInputFirst;
  int num_vcs = 6;        ///< paper §3: 6 VCs per port
  int buffer_depth = 5;   ///< paper §3: 5 flits per VC
  int packet_size = 4;    ///< paper §4.1: 512-bit packets on a 128-bit path
  double injection_rate = 0.05;  ///< packets/cycle/node (Bernoulli process)
  PatternKind pattern = PatternKind::kUniform;
  ArbiterKind arbiter = ArbiterKind::kRoundRobin;
  /// Overrides the scheme's default VC-assignment policy when set.
  std::optional<VcAssignPolicy> vc_policy;
  /// AP ablation: disable the allocator's VC round-robin (see RouterConfig).
  bool ap_rotate_vcs = true;
  /// Router pipeline depth (Fig 6): 3 = optimized (lookahead routing +
  /// speculative VA/SA in one stage); 5 = conservative (separate RC and VA
  /// stages, non-speculative SA). Affects per-hop latency, not throughput
  /// mechanics.
  int pipeline_stages = 3;
  /// kVix only: virtual inputs per port (0 = the default of 2).
  int vix_virtual_inputs = 0;
  /// Interleaved (vc % k) VC-to-virtual-input wiring (see RouterConfig).
  bool interleaved_vins = false;
  /// Becker-style masking of speculative SA requests (see RouterConfig).
  bool prioritize_nonspeculative = false;
  /// VA organization ablation (see VaOrganization).
  VaOrganization va_organization = VaOrganization::kGreedyRotating;
  /// Atomic VC reallocation ablation (see RouterConfig::atomic_vc_alloc).
  bool atomic_vc_alloc = false;
  /// Bursty (on-off Markov) injection instead of Bernoulli, keeping the
  /// same average rate: while ON a node injects at `burst_on_rate`, bursts
  /// last `mean_burst_cycles` on average.
  bool bursty = false;
  double burst_on_rate = 0.5;
  double mean_burst_cycles = 32.0;
  /// Overrides the 64-node topology when set (e.g. for scaling studies on
  /// other mesh sizes). Must agree with `topology`'s router conventions.
  std::function<std::unique_ptr<Topology>()> topology_factory;
  /// When > 0, record a throughput/latency time series with one sample per
  /// `sample_interval` cycles over the whole run (including warmup) — for
  /// convergence checks and transient studies.
  Cycle sample_interval = 0;
  std::uint64_t seed = 1;
  Cycle warmup = 10'000;
  Cycle measure = 30'000;
  Cycle drain = 10'000;

  /// Injection rate that saturates the NI link for this packet size; used
  /// by benches as "maximum injection rate".
  double MaxInjectionRate() const { return 1.0 / packet_size; }
};

/// One point of the optional time series (see sample_interval).
struct IntervalSample {
  Cycle start = 0;             ///< first cycle of the interval
  double accepted_ppc = 0.0;   ///< packets delivered per node per cycle
  double avg_latency = 0.0;    ///< mean latency of packets ejected inside
  std::uint64_t packets = 0;   ///< deliveries in the interval
};

struct NetworkSimResult {
  double offered_ppc = 0.0;      ///< offered load, packets/cycle/node
  double accepted_ppc = 0.0;     ///< delivered throughput, packets/cycle/node
  double accepted_fpc = 0.0;     ///< delivered throughput, flits/cycle (whole network)
  double avg_latency = 0.0;      ///< packet latency incl. source queueing
  double avg_net_latency = 0.0;  ///< injection -> ejection latency
  double p99_latency = 0.0;
  double min_node_ppc = 0.0;     ///< slowest source's delivered throughput
  double max_node_ppc = 0.0;     ///< fastest source's delivered throughput
  double max_min_ratio = 0.0;    ///< fairness metric of Fig 9
  std::uint64_t packets_measured = 0;  ///< latency sample count
  bool saturated = false;        ///< accepted < 95% of offered
  RouterActivity activity;       ///< summed over measurement window
  Cycle measure_cycles = 0;
  int num_nodes = 0;
  /// Populated when sample_interval > 0.
  std::vector<IntervalSample> timeline;
};

NetworkSimResult RunNetworkSim(const NetworkSimConfig& config);

}  // namespace vixnoc
