// Experiment driver: open-loop statistical-traffic simulations with the
// standard warmup / measurement / drain methodology. This is the engine
// behind the paper's Figures 8, 9, 10 and 12.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "fault/fault_model.hpp"
#include "network/network.hpp"
#include "router/vc_assign.hpp"
#include "telemetry/telemetry.hpp"
#include "traffic/patterns.hpp"

namespace vixnoc {

class SnapshotReader;
class SnapshotWriter;

/// How a simulation point ended. Anything but kOk means the metric fields
/// of the result must not be trusted as steady-state measurements.
enum class SimStatus {
  kOk,
  /// The forward-progress watchdog fired: flits in flight but none moved
  /// for watchdog_cycles. SimOutcome carries the cycle and a per-router
  /// occupancy snapshot.
  kDeadlock,
  /// The run completed but traffic could not be delivered: destinations
  /// unreachable over the surviving (fault-degraded) link graph, or no
  /// packet delivered for a whole watchdog window at the end of the drain
  /// with flits still in flight (livelock).
  kUndeliverable,
  /// The point failed with a recoverable error (SimError): invalid
  /// configuration or a validation failure. Set by SweepRunner when a
  /// worker catches the exception.
  kInvariantViolation,
  /// The point could not be executed at the process level: its isolated
  /// worker subprocess kept failing (crash, hang past the deadline,
  /// malformed frames) until retries were exhausted. Set by
  /// SweepCoordinator (exec/coordinator.hpp); the per-point ExecStatus
  /// carries the failure classification and attempt history.
  kExecFailure,
};

std::string ToString(SimStatus status);

/// Structured verdict attached to every NetworkSimResult — the alternative
/// to silently reporting bogus throughput for a degraded or wedged run.
struct SimOutcome {
  SimStatus status = SimStatus::kOk;
  std::string message;  ///< empty for kOk
  /// Cycle at which the problem was detected (kDeadlock and kUndeliverable).
  Cycle cycle = 0;
  /// Flits buffered in each router when the problem was detected: the
  /// watchdog's snapshot for kDeadlock, the end-of-drain snapshot for
  /// kUndeliverable (a livelocked run's wedged traffic is visible here).
  std::vector<std::uint32_t> router_occupancy;
  /// Packets whose destination was unreachable over surviving links; they
  /// are counted, not injected (they could only hang forever).
  std::uint64_t unreachable_packets = 0;
  /// Path of the rolling pre-deadlock checkpoint written when the watchdog
  /// fired (kDeadlock with deadlock_checkpoint_path configured); empty
  /// otherwise. Restore from it with tracing enabled to replay the final
  /// cycles leading into the deadlock.
  std::string checkpoint_path;

  bool ok() const { return status == SimStatus::kOk; }
};

struct NetworkSimConfig {
  TopologyKind topology = TopologyKind::kMesh;
  AllocScheme scheme = AllocScheme::kInputFirst;
  int num_vcs = 6;        ///< paper §3: 6 VCs per port
  int buffer_depth = 5;   ///< paper §3: 5 flits per VC
  int packet_size = 4;    ///< paper §4.1: 512-bit packets on a 128-bit path
  double injection_rate = 0.05;  ///< packets/cycle/node (Bernoulli process)
  PatternKind pattern = PatternKind::kUniform;
  /// kHotspot: the hot node; kIncast: the receiver. kInvalidNode (the
  /// default) derives the off-center node from the topology — node 27 on
  /// the 64-node layouts, preserving the historical sequences.
  NodeId hotspot_node = kInvalidNode;
  /// kIncast only: sender count (<= 0 = every node but the receiver).
  int incast_fanin = 0;
  ArbiterKind arbiter = ArbiterKind::kRoundRobin;
  /// Overrides the scheme's default VC-assignment policy when set.
  std::optional<VcAssignPolicy> vc_policy;
  /// AP ablation: disable the allocator's VC round-robin (see RouterConfig).
  bool ap_rotate_vcs = true;
  /// Router pipeline depth (Fig 6): 3 = optimized (lookahead routing +
  /// speculative VA/SA in one stage); 5 = conservative (separate RC and VA
  /// stages, non-speculative SA). Affects per-hop latency, not throughput
  /// mechanics.
  int pipeline_stages = 3;
  /// kVix only: virtual inputs per port (0 = the default of 2).
  int vix_virtual_inputs = 0;
  /// Interleaved (vc % k) VC-to-virtual-input wiring (see RouterConfig).
  bool interleaved_vins = false;
  /// Becker-style masking of speculative SA requests (see RouterConfig).
  bool prioritize_nonspeculative = false;
  /// VA organization ablation (see VaOrganization).
  VaOrganization va_organization = VaOrganization::kGreedyRotating;
  /// Atomic VC reallocation ablation (see RouterConfig::atomic_vc_alloc).
  bool atomic_vc_alloc = false;
  /// Bursty (on-off Markov) injection instead of Bernoulli, keeping the
  /// same average rate: while ON a node injects at `burst_on_rate`, bursts
  /// last `mean_burst_cycles` on average.
  bool bursty = false;
  double burst_on_rate = 0.5;
  double mean_burst_cycles = 32.0;
  /// Overrides the 64-node topology when set (e.g. for scaling studies on
  /// other mesh sizes). Must agree with `topology`'s router conventions.
  std::function<std::unique_ptr<Topology>()> topology_factory;
  /// Routing plugin by registry name (routing/registry.hpp): "dor" (the
  /// default), "adaptive_min", or "fault_aware". Unknown names fail
  /// validation with a SimError listing the registered plugins. With
  /// permanent link faults, "dor" silently upgrades to "fault_aware"
  /// (the legacy behavior); other names must be fault-compatible.
  std::string routing = "dor";
  /// Overrides `routing` with an arbitrary algorithm built for the sim's
  /// topology — the test escape hatch mirroring topology_factory. Like it,
  /// the factory cannot be hashed: only its presence enters the
  /// fingerprint, and exec-frame serialization rejects it.
  std::function<std::unique_ptr<RoutingAlgorithm>(const Topology&)>
      routing_factory;
  /// When > 0, record a throughput/latency time series with one sample per
  /// `sample_interval` cycles over the whole run (including warmup) — for
  /// convergence checks and transient studies.
  Cycle sample_interval = 0;
  /// Fault-injection schedule (see fault/fault_model.hpp). Default-constructed
  /// = disabled, and the sim takes none of the fault code paths (results are
  /// bitwise identical to builds without the subsystem). The schedule is
  /// seeded from `faults.seed`, falling back to `seed` when zero, so it is
  /// a pure function of the config — independent of thread count.
  FaultConfig faults;
  /// Forward-progress watchdog: abort the run with SimStatus::kDeadlock when
  /// flits are in flight but none has moved for this many cycles. 0 disables.
  /// Keep this above faults.transient_period, or a transient outage that
  /// parks all traffic can masquerade as deadlock.
  Cycle watchdog_cycles = 5'000;
  /// Router/allocator observability (telemetry/telemetry.hpp). Disabled by
  /// default; enabling it never changes simulation results, only records
  /// them. Counter aggregates cover the measurement window; the time series
  /// and packet trace cover the whole run.
  TelemetryConfig telemetry;
  /// Checkpoint/restore (snapshot/snapshot.hpp). When `checkpoint_every`
  /// is > 0, the full simulation state is written to `checkpoint_path`
  /// (atomic overwrite) every `checkpoint_every` cycles. Setting
  /// `restore_path` resumes a run from such a checkpoint instead of
  /// starting at cycle 0; the resumed run is bitwise identical to one that
  /// never stopped. Checkpoints carry a fingerprint of the
  /// evolution-relevant config fields (see NetworkSimConfigFingerprint);
  /// restoring under a config that would evolve differently throws
  /// SimError. Telemetry and checkpoint knobs themselves are excluded from
  /// the fingerprint, so a post-mortem replay may switch tracing on.
  std::string checkpoint_path;
  Cycle checkpoint_every = 0;
  std::string restore_path;
  /// When set (and the watchdog is enabled), keeps a rolling in-memory
  /// snapshot refreshed every watchdog_cycles; if the watchdog fires, the
  /// snapshot from at least one full watchdog window before detection is
  /// written here and recorded in SimOutcome::checkpoint_path. Zero cost
  /// when empty (the default).
  std::string deadlock_checkpoint_path;
  std::uint64_t seed = 1;
  Cycle warmup = 10'000;
  Cycle measure = 30'000;
  Cycle drain = 10'000;

  /// Injection rate that saturates the NI link for this packet size; used
  /// by benches as "maximum injection rate".
  double MaxInjectionRate() const { return 1.0 / packet_size; }
};

/// One point of the optional time series (see sample_interval).
struct IntervalSample {
  Cycle start = 0;             ///< first cycle of the interval
  double accepted_ppc = 0.0;   ///< packets delivered per node per cycle
  double avg_latency = 0.0;    ///< mean latency of packets ejected inside
  std::uint64_t packets = 0;   ///< deliveries in the interval
};

struct NetworkSimResult {
  double offered_ppc = 0.0;      ///< offered load, packets/cycle/node
  double accepted_ppc = 0.0;     ///< delivered throughput, packets/cycle/node
  double accepted_fpc = 0.0;     ///< delivered throughput, flits/cycle (whole network)
  double avg_latency = 0.0;      ///< packet latency incl. source queueing
  double avg_net_latency = 0.0;  ///< injection -> ejection latency
  double p99_latency = 0.0;
  double min_node_ppc = 0.0;     ///< slowest source's delivered throughput
  double max_node_ppc = 0.0;     ///< fastest source's delivered throughput
  double max_min_ratio = 0.0;    ///< fairness metric of Fig 9
  std::uint64_t packets_measured = 0;  ///< latency sample count
  bool saturated = false;        ///< accepted < 95% of offered
  RouterActivity activity;       ///< summed over measurement window
  Cycle measure_cycles = 0;
  int num_nodes = 0;
  /// Packets delivered (any time) with at least one payload-corrupted flit.
  std::uint64_t packets_corrupted = 0;
  /// How the run ended; check outcome.ok() before trusting the metrics.
  SimOutcome outcome;
  /// Populated when sample_interval > 0.
  std::vector<IntervalSample> timeline;
  /// Populated when config.telemetry.enabled (telemetry.enabled mirrors it).
  TelemetrySummary telemetry;
};

/// Throws SimError with an actionable message when the config cannot run:
/// rates outside [0,1], non-positive VC/buffer/packet sizes, unsupported
/// pipeline depth, VIX virtual inputs not dividing num_vcs, degenerate
/// bursty parameters, or permanent link faults on a torus (the dateline
/// VC-partitioning proof does not survive detours). RunNetworkSim calls
/// this itself; it is exported so sweep builders can fail fast.
void ValidateNetworkSimConfig(const NetworkSimConfig& config);

NetworkSimResult RunNetworkSim(const NetworkSimConfig& config);

/// FNV-1a fingerprint over the config fields that determine how the
/// simulation evolves. Stamped into checkpoint files and checked on
/// restore. Telemetry settings are excluded (observability never changes
/// simulated state — the contract pinned by telemetry_test), as are the
/// checkpoint knobs themselves, so a replay run may re-point paths or
/// enable tracing without invalidating the checkpoint. A topology_factory
/// cannot be hashed; only its presence is, so factory users must ensure
/// the factory builds the same topology on both sides (the network-level
/// geometry checks catch most mismatches).
std::uint64_t NetworkSimConfigFingerprint(const NetworkSimConfig& config);

/// Content key identifying the *result* a config produces, used by the
/// content-addressed ResultStore and for request dedup/coalescing. It is
/// the evolution fingerprint folded with the observation knobs that change
/// the result payload without changing simulated state: the telemetry
/// config (a telemetry-on run carries a populated TelemetrySummary) and
/// deadlock_checkpoint_path (recorded in SimOutcome::checkpoint_path).
/// checkpoint_path/checkpoint_every/restore_path stay excluded — the
/// restore contract guarantees a resumed run's result is bitwise identical
/// to an uninterrupted one. Same factory caveat as the fingerprint.
std::uint64_t NetworkSimResultKey(const NetworkSimConfig& config);

/// Full-fidelity (de)serialization of a finished result — metrics,
/// outcome, timeline and telemetry — used by SweepRunner's per-point
/// result cache to resume partially completed sweeps.
void SaveNetworkSimResult(SnapshotWriter& w, const NetworkSimResult& result);
NetworkSimResult LoadNetworkSimResult(SnapshotReader& r);

}  // namespace vixnoc
