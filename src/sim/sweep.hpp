// SweepRunner: multi-threaded execution of independent simulation points.
//
// Every figure in the paper is a sweep over (scheme x rate x topology)
// points, and each point is one self-contained RunNetworkSim call: the
// config carries its own seed, the simulation builds its own Network, and
// nothing escapes but the returned NetworkSimResult. That makes sweeps
// embarrassingly parallel — SweepRunner runs them on a fixed-size thread
// pool and returns results in submission order.
//
// Determinism: results are bitwise identical to calling RunNetworkSim
// serially on each point, regardless of thread count or completion order.
// This holds because (a) each point's RNG is seeded only from its config,
// (b) the simulation core keeps no shared mutable state (allocator and
// router scratch are per-instance members), and (c) results are written
// into a preallocated slot indexed by submission position. sweep_test.cpp
// and the TSAN build (-DVIXNOC_SANITIZE=thread) enforce this.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/network_sim.hpp"

namespace vixnoc {

/// Largest worker count ResolveThreadCount will ever return: a fat-finger
/// guard (VIXNOC_THREADS=80000 would fork-bomb the host with threads or
/// worker subprocesses, not speed anything up).
inline constexpr int kMaxThreadCount = 1024;

/// Resolves a requested worker count to an actual one:
///  * requested >= 1: use exactly that many workers (capped, with a
///    warning, at kMaxThreadCount);
///  * requested == 0: use $VIXNOC_THREADS if set to a positive integer,
///    else std::thread::hardware_concurrency() (at least 1).
/// A malformed $VIXNOC_THREADS — trailing garbage, overflow, zero or
/// negative — is rejected with a warning on stderr naming the bad value
/// (never silently honored or silently ignored) before falling back to
/// hardware concurrency; values above kMaxThreadCount are capped with a
/// warning.
int ResolveThreadCount(int requested = 0);

/// Outcome of probing a per-point result cache.
enum class PointCacheStatus {
  kMiss,       ///< no cache entry: run the point
  kHit,        ///< *out holds the cached result
  kDefective,  ///< entry exists but is unreadable, corrupt, or was written
               ///< under a different result key — re-run the point
};

/// Abstract per-point result cache consulted by SweepRunner and the
/// process-isolation SweepCoordinator (exec/coordinator.hpp). The one
/// production implementation is the content-addressed ResultStore
/// (store/result_store.hpp); the interface lives here so the sim layer
/// does not depend on the store library.
///
/// Contract: Load returns kHit only when the cached result is the exact
/// result `config` would produce (implementations key on
/// NetworkSimResultKey and must validate on read — a defective entry
/// warns and reports kDefective, never poisons). Put must not throw: a
/// cache is an accelerator, and a full disk must not fail a sweep.
/// Implementations must be safe for concurrent calls from many threads.
class PointCache {
 public:
  virtual ~PointCache() = default;
  virtual PointCacheStatus Load(const NetworkSimConfig& config,
                                NetworkSimResult* out) = 0;
  virtual void Put(const NetworkSimConfig& config,
                   const NetworkSimResult& result) = 0;
};

class SweepRunner {
 public:
  /// Starts the worker pool. `num_threads` follows ResolveThreadCount's
  /// convention (0 = auto).
  explicit SweepRunner(int num_threads = 0);
  ~SweepRunner();

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Called after each point completes, with the number of finished points
  /// and the batch size. Invoked from worker threads under the runner's
  /// lock: keep it cheap (progress printing is fine). A deduplicated
  /// group of identical points reports all its slots the moment its one
  /// simulation completes.
  using ProgressFn = std::function<void(std::size_t done, std::size_t total)>;
  void SetProgress(ProgressFn fn) { progress_ = std::move(fn); }

  /// Per-point result caching, making a killed sweep resumable and letting
  /// independent sweeps share work. Set before Run (not thread-safe against
  /// a batch in flight). Every completed point stores its NetworkSimResult
  /// under its content key; a later Run over any batch containing the same
  /// point — same batch re-run, reordered grid, a different bench entirely
  /// — loads it instead of re-simulating. Because cached results were
  /// produced by the same deterministic RunNetworkSim, a resumed sweep's
  /// results are bitwise identical to an uninterrupted one. A defective
  /// cache entry falls back to running the point, with a warning and a
  /// tick of defective_cache_points().
  void SetCache(std::shared_ptr<PointCache> cache);

  /// Points of the most recent Run that were satisfied from the cache
  /// instead of being simulated.
  std::size_t resumed_points() const { return resumed_; }

  /// Points of the most recent Run whose cache entry existed but was
  /// defective (unreadable, corrupt, or key-mismatched) and was therefore
  /// ignored. A nonzero count means the cache is stale or damaged —
  /// results are still correct (the points re-ran), but the resume was
  /// not as cheap as it looked.
  std::size_t defective_cache_points() const { return defective_; }

  /// Points of the most recent Run that were within-batch duplicates of an
  /// earlier point (same NetworkSimResultKey): simulated once, with the
  /// result fanned out to every duplicate slot. Configs carrying live
  /// factory callbacks never dedupe (the key only records factory
  /// presence, not identity).
  std::size_t deduped_points() const { return deduped_; }

  /// Runs every point and blocks until all complete. results[i] is the
  /// point configs[i] would produce through a direct RunNetworkSim call.
  /// A point that throws (SimError from an invalid config, or any other
  /// std::exception) does not kill the worker or wedge the batch: its slot
  /// comes back with outcome.status == SimStatus::kInvariantViolation and
  /// the exception message, the remaining points run normally, and the
  /// pool accepts further batches. Only one Run may be in flight at a
  /// time; async Submit jobs interleave freely with a running batch.
  std::vector<NetworkSimResult> Run(
      const std::vector<NetworkSimConfig>& configs);

  /// Asynchronous single-point execution on the same pool, for callers
  /// (the vixnocd daemon) that schedule points one at a time rather than
  /// in batches. `done` is invoked exactly once from a worker thread with
  /// the point's result (error slots follow Run's convention); it must not
  /// block the worker for long and must not re-enter Run on the same
  /// thread. Submitted jobs do not consult the cache — single-point
  /// callers manage their own store probe (the daemon serves hits without
  /// touching the pool). Jobs still pending at destruction are drained,
  /// not dropped: the destructor completes all submitted work first.
  void Submit(NetworkSimConfig config,
              std::function<void(NetworkSimResult)> done);

 private:
  struct Job {
    NetworkSimConfig config;
    std::function<void(NetworkSimResult)> done;
  };

  void WorkerLoop();
  /// RunNetworkSim with Run's exception-to-error-slot convention.
  static NetworkSimResult ExecutePoint(const NetworkSimConfig& config);

  std::vector<std::thread> workers_;
  std::shared_ptr<PointCache> cache_;
  std::size_t resumed_ = 0;
  std::size_t defective_ = 0;
  std::size_t deduped_ = 0;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for work / shutdown
  std::condition_variable done_cv_;  // Run waits for batch completion
  bool stop_ = false;

  // Current batch (valid while batch_ != nullptr). work_ holds the indices
  // actually simulated (one per dedup group, in submission order);
  // satisfies_[pos] is how many batch slots work_[pos] stands for.
  const std::vector<NetworkSimConfig>* batch_ = nullptr;
  std::vector<NetworkSimResult>* results_ = nullptr;
  std::vector<std::size_t> work_;
  std::vector<std::size_t> satisfies_;
  std::size_t next_ = 0;         // next unclaimed position in work_
  std::size_t done_ = 0;         // completed work items
  std::size_t done_points_ = 0;  // batch slots satisfied (for progress)

  std::deque<Job> jobs_;  // pending async Submit work

  ProgressFn progress_;
};

/// One-shot convenience. With `num_threads` == 0 (the default) the batch
/// runs on a lazily created process-wide shared pool — callers that loop
/// over RunSweep no longer pay a thread-pool spawn/join per call. An
/// explicit thread count still gets a dedicated pool of exactly that size
/// (the determinism tests pin results across specific counts).
std::vector<NetworkSimResult> RunSweep(
    const std::vector<NetworkSimConfig>& configs, int num_threads = 0);

}  // namespace vixnoc
