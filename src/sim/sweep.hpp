// SweepRunner: multi-threaded execution of independent simulation points.
//
// Every figure in the paper is a sweep over (scheme x rate x topology)
// points, and each point is one self-contained RunNetworkSim call: the
// config carries its own seed, the simulation builds its own Network, and
// nothing escapes but the returned NetworkSimResult. That makes sweeps
// embarrassingly parallel — SweepRunner runs them on a fixed-size thread
// pool and returns results in submission order.
//
// Determinism: results are bitwise identical to calling RunNetworkSim
// serially on each point, regardless of thread count or completion order.
// This holds because (a) each point's RNG is seeded only from its config,
// (b) the simulation core keeps no shared mutable state (allocator and
// router scratch are per-instance members), and (c) results are written
// into a preallocated slot indexed by submission position. sweep_test.cpp
// and the TSAN build (-DVIXNOC_SANITIZE=thread) enforce this.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/network_sim.hpp"

namespace vixnoc {

/// Largest worker count ResolveThreadCount will ever return: a fat-finger
/// guard (VIXNOC_THREADS=80000 would fork-bomb the host with threads or
/// worker subprocesses, not speed anything up).
inline constexpr int kMaxThreadCount = 1024;

/// Resolves a requested worker count to an actual one:
///  * requested >= 1: use exactly that many workers (capped, with a
///    warning, at kMaxThreadCount);
///  * requested == 0: use $VIXNOC_THREADS if set to a positive integer,
///    else std::thread::hardware_concurrency() (at least 1).
/// A malformed $VIXNOC_THREADS — trailing garbage, overflow, zero or
/// negative — is rejected with a warning on stderr naming the bad value
/// (never silently honored or silently ignored) before falling back to
/// hardware concurrency; values above kMaxThreadCount are capped with a
/// warning.
int ResolveThreadCount(int requested = 0);

/// Shared per-point result-cache access, used by SweepRunner and the
/// process-isolation SweepCoordinator (exec/coordinator.hpp) so both
/// speak the same point_<i>.ckpt format.
enum class PointCacheStatus {
  kMiss,       ///< no cache file: run the point
  kHit,        ///< *out holds the cached result
  kDefective,  ///< file exists but is unreadable, corrupt, or was written
               ///< under a different config fingerprint — re-run the point
};

/// Loads `path` if it exists and matches `config`'s fingerprint. A
/// defective entry logs one warning on stderr naming the file and the
/// defect; the caller decides whether to count it (SweepRunner and
/// SweepCoordinator both surface the tally as provenance).
PointCacheStatus TryLoadPointCache(const std::string& path,
                                   const NetworkSimConfig& config,
                                   NetworkSimResult* out);

/// Writes `result` to `path` (atomic tmp+rename), stamped with `config`'s
/// fingerprint. Throws SimError on I/O failure.
void WritePointCache(const std::string& path, const NetworkSimConfig& config,
                     const NetworkSimResult& result);

class SweepRunner {
 public:
  /// Starts the worker pool. `num_threads` follows ResolveThreadCount's
  /// convention (0 = auto).
  explicit SweepRunner(int num_threads = 0);
  ~SweepRunner();

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Called after each point completes, with the number of finished points
  /// and the batch size. Invoked from worker threads under the runner's
  /// lock: keep it cheap (progress printing is fine).
  using ProgressFn = std::function<void(std::size_t done, std::size_t total)>;
  void SetProgress(ProgressFn fn) { progress_ = std::move(fn); }

  /// Per-point result caching, making a killed sweep resumable. When set
  /// (before Run; creates the directory), every completed point i writes
  /// its full NetworkSimResult to `<dir>/point_<i>.ckpt`, stamped with
  /// that point's config fingerprint. On a later Run over the same batch,
  /// a point whose cache file exists and matches its config's fingerprint
  /// is loaded instead of re-run — and because cached results were
  /// produced by the same deterministic RunNetworkSim, a resumed sweep's
  /// results are bitwise identical to an uninterrupted one. An unreadable
  /// or mismatched cache file falls back to running the point, with a
  /// warning naming the file and a tick of defective_cache_points().
  void SetCheckpointDir(std::string dir);

  /// Points of the most recent Run that were satisfied from the checkpoint
  /// directory's cache instead of being simulated.
  std::size_t resumed_points() const { return resumed_; }

  /// Points of the most recent Run whose cache entry existed but was
  /// defective (unreadable, corrupt, or fingerprint-mismatched) and was
  /// therefore ignored. A nonzero count means the cache directory is
  /// stale or damaged — results are still correct (the points re-ran),
  /// but the resume was not as cheap as it looked.
  std::size_t defective_cache_points() const { return defective_; }

  /// Runs every point and blocks until all complete. results[i] is the
  /// point configs[i] would produce through a direct RunNetworkSim call.
  /// A point that throws (SimError from an invalid config, or any other
  /// std::exception) does not kill the worker or wedge the batch: its slot
  /// comes back with outcome.status == SimStatus::kInvariantViolation and
  /// the exception message, the remaining points run normally, and the
  /// pool accepts further batches.
  std::vector<NetworkSimResult> Run(
      const std::vector<NetworkSimConfig>& configs);

 private:
  void WorkerLoop();
  /// Cache path for point `index`; empty when caching is off.
  std::string PointCachePath(std::size_t index) const;

  std::vector<std::thread> workers_;
  std::string checkpoint_dir_;
  std::size_t resumed_ = 0;
  std::size_t defective_ = 0;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a batch / shutdown
  std::condition_variable done_cv_;  // Run waits for batch completion
  bool stop_ = false;

  // Current batch (valid while batch_ != nullptr).
  const std::vector<NetworkSimConfig>* batch_ = nullptr;
  std::vector<NetworkSimResult>* results_ = nullptr;
  std::size_t next_ = 0;  // next unclaimed point index
  std::size_t done_ = 0;  // completed points

  ProgressFn progress_;
};

/// One-shot convenience: construct a SweepRunner, run the batch, tear the
/// pool down. `num_threads` follows ResolveThreadCount's convention.
std::vector<NetworkSimResult> RunSweep(
    const std::vector<NetworkSimConfig>& configs, int num_threads = 0);

}  // namespace vixnoc
