#include "sim/single_router.hpp"

#include <vector>

namespace vixnoc {

namespace {

/// Per-cycle upper bound on grants: one grant per requested output port
/// (every output with at least one requesting VC can be served when inputs
/// are unconstrained — the paper's definition of ideal switch allocation).
int IdealGrants(const std::vector<SaRequest>& requests, int num_outports) {
  std::vector<bool> requested(static_cast<std::size_t>(num_outports), false);
  int count = 0;
  for (const SaRequest& r : requests) {
    if (!requested[r.out_port]) {
      requested[r.out_port] = true;
      ++count;
    }
  }
  return count;
}

}  // namespace

SingleRouterResult RunSingleRouter(const SingleRouterConfig& config) {
  SwitchGeometry geom;
  geom.num_inports = config.radix;
  geom.num_outports = config.radix;
  geom.num_vcs = config.num_vcs;
  geom.num_vins = VirtualInputsForScheme(config.scheme, config.num_vcs);
  // Randomized allocators draw from a stream distinct from the traffic
  // RNG below (same base seed, different mixing constant).
  auto allocator =
      MakeSwitchAllocator(config.scheme, geom, config.arbiter,
                          config.seed + 0xd1b54a32d192ed03ull);

  Rng rng(config.seed);

  // VC state: remaining flits and destination output of the current packet.
  struct VcState {
    int remaining = 0;
    PortId out = kInvalidPort;
  };
  std::vector<VcState> vcs(static_cast<std::size_t>(config.radix) *
                           config.num_vcs);
  auto refill = [&](VcState& vc) {
    vc.remaining = config.packet_size;
    vc.out = static_cast<PortId>(rng.NextBounded(config.radix));
  };
  for (auto& vc : vcs) refill(vc);

  std::vector<SaRequest> requests;
  std::vector<SaGrant> grants;
  SingleRouterResult result;

  for (Cycle t = 0; t < config.cycles; ++t) {
    requests.clear();
    for (PortId p = 0; p < config.radix; ++p) {
      for (VcId c = 0; c < config.num_vcs; ++c) {
        const VcState& vc = vcs[static_cast<std::size_t>(p) * config.num_vcs +
                                c];
        requests.push_back(SaRequest{p, c, vc.out});
      }
    }
    result.total_ideal +=
        static_cast<std::uint64_t>(IdealGrants(requests, config.radix));

    allocator->Allocate(requests, &grants);
    VIXNOC_DCHECK(GrantsAreLegal(geom, requests, grants));
    result.total_grants += grants.size();
    for (const SaGrant& g : grants) {
      VcState& vc =
          vcs[static_cast<std::size_t>(g.in_port) * config.num_vcs + g.vc];
      if (--vc.remaining == 0) refill(vc);
    }
  }

  result.flits_per_cycle = static_cast<double>(result.total_grants) /
                           static_cast<double>(config.cycles);
  result.matching_efficiency =
      result.total_ideal > 0
          ? static_cast<double>(result.total_grants) /
                static_cast<double>(result.total_ideal)
          : 0.0;
  return result;
}

}  // namespace vixnoc
