#include "sim/network_sim.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/error.hpp"
#include "fault/fault_routing.hpp"
#include "traffic/injection.hpp"

namespace vixnoc {

std::string ToString(SimStatus status) {
  switch (status) {
    case SimStatus::kOk:
      return "ok";
    case SimStatus::kDeadlock:
      return "deadlock";
    case SimStatus::kUndeliverable:
      return "undeliverable";
    case SimStatus::kInvariantViolation:
      return "invariant-violation";
  }
  return "unknown";
}

void ValidateNetworkSimConfig(const NetworkSimConfig& config) {
  VIXNOC_REQUIRE(
      config.injection_rate >= 0.0 && config.injection_rate <= 1.0,
      "injection_rate must be in [0, 1], got %g", config.injection_rate);
  VIXNOC_REQUIRE(config.num_vcs >= 1, "num_vcs must be >= 1, got %d",
                 config.num_vcs);
  VIXNOC_REQUIRE(config.buffer_depth >= 1, "buffer_depth must be >= 1, got %d",
                 config.buffer_depth);
  VIXNOC_REQUIRE(config.packet_size >= 1, "packet_size must be >= 1, got %d",
                 config.packet_size);
  VIXNOC_REQUIRE(config.pipeline_stages == 3 || config.pipeline_stages == 5,
                 "pipeline_stages must be 3 or 5, got %d",
                 config.pipeline_stages);
  if (config.scheme == AllocScheme::kVix) {
    const int vins =
        config.vix_virtual_inputs > 0 ? config.vix_virtual_inputs : 2;
    VIXNOC_REQUIRE(vins >= 2 && vins <= config.num_vcs,
                   "VIX virtual inputs must be in [2, num_vcs=%d], got %d",
                   config.num_vcs, vins);
    VIXNOC_REQUIRE(config.num_vcs % vins == 0,
                   "num_vcs (%d) must be divisible by VIX virtual inputs (%d)",
                   config.num_vcs, vins);
  }
  if (config.bursty) {
    VIXNOC_REQUIRE(config.burst_on_rate > 0.0 && config.burst_on_rate <= 1.0,
                   "burst_on_rate must be in (0, 1], got %g",
                   config.burst_on_rate);
    VIXNOC_REQUIRE(
        config.burst_on_rate >= config.injection_rate,
        "burst_on_rate (%g) must be >= the average injection_rate (%g)",
        config.burst_on_rate, config.injection_rate);
    VIXNOC_REQUIRE(config.mean_burst_cycles >= 1.0,
                   "mean_burst_cycles must be >= 1, got %g",
                   config.mean_burst_cycles);
  }

  const FaultConfig& f = config.faults;
  VIXNOC_REQUIRE(f.link_down_rate >= 0.0 && f.link_down_rate <= 1.0,
                 "faults.link_down_rate must be in [0, 1], got %g",
                 f.link_down_rate);
  VIXNOC_REQUIRE(f.transient_rate >= 0.0 && f.transient_rate <= 1.0,
                 "faults.transient_rate must be in [0, 1], got %g",
                 f.transient_rate);
  VIXNOC_REQUIRE(f.router_stall_rate >= 0.0 && f.router_stall_rate <= 1.0,
                 "faults.router_stall_rate must be in [0, 1], got %g",
                 f.router_stall_rate);
  VIXNOC_REQUIRE(f.corruption_rate >= 0.0 && f.corruption_rate <= 1.0,
                 "faults.corruption_rate must be in [0, 1], got %g",
                 f.corruption_rate);
  const bool permanent_faults =
      f.link_down_rate > 0.0 || !f.forced_link_down.empty();
  if (permanent_faults && !config.topology_factory) {
    VIXNOC_REQUIRE(config.topology != TopologyKind::kTorus,
                   "permanent link faults are unsupported on the torus: "
                   "detour routing breaks the dateline VC deadlock-freedom "
                   "argument");
  }
  if (config.telemetry.enabled) {
    VIXNOC_REQUIRE(config.telemetry.window_cycles >= 1,
                   "telemetry.window_cycles must be >= 1, got %llu",
                   static_cast<unsigned long long>(
                       config.telemetry.window_cycles));
    VIXNOC_REQUIRE(config.telemetry.max_windows >= 2,
                   "telemetry.max_windows must be >= 2, got %zu",
                   config.telemetry.max_windows);
    if (config.telemetry.trace_sample_period > 0) {
      VIXNOC_REQUIRE(config.telemetry.max_trace_events >= 1,
                     "telemetry.max_trace_events must be >= 1 when tracing, "
                     "got %zu",
                     config.telemetry.max_trace_events);
    }
  }

  // A transient outage or stall window parks all affected traffic for its
  // whole duration; the watchdog must outlast it or a healthy run is
  // misreported as deadlocked.
  if (config.watchdog_cycles > 0) {
    if (f.transient_rate > 0.0) {
      VIXNOC_REQUIRE(config.watchdog_cycles > f.transient_duration,
                     "watchdog_cycles (%lld) must exceed "
                     "faults.transient_duration (%lld)",
                     static_cast<long long>(config.watchdog_cycles),
                     static_cast<long long>(f.transient_duration));
    }
    if (f.router_stall_rate > 0.0) {
      VIXNOC_REQUIRE(config.watchdog_cycles > f.stall_duration,
                     "watchdog_cycles (%lld) must exceed "
                     "faults.stall_duration (%lld)",
                     static_cast<long long>(config.watchdog_cycles),
                     static_cast<long long>(f.stall_duration));
    }
  }
}

NetworkSimResult RunNetworkSim(const NetworkSimConfig& config) {
  // Attributes any abort or SimError below to the offending sim point.
  ScopedSimContext sim_ctx(
      "scheme=%s topology=%s rate=%g seed=%llu",
      ToString(config.scheme).c_str(), ToString(config.topology).c_str(),
      config.injection_rate,
      static_cast<unsigned long long>(config.seed));
  ValidateNetworkSimConfig(config);

  std::shared_ptr<Topology> topology =
      config.topology_factory ? config.topology_factory()
                              : MakeTopology64(config.topology);
  NetworkParams params;
  params.router.radix = topology->Radix();
  params.router.num_vcs = config.num_vcs;
  params.router.buffer_depth = config.buffer_depth;
  params.router.scheme = config.scheme;
  params.router.arbiter_kind = config.arbiter;
  params.router.vc_policy =
      config.vc_policy.value_or(RouterConfig::DefaultPolicyFor(config.scheme));
  params.router.ap_rotate_vcs = config.ap_rotate_vcs;
  params.router.vix_virtual_inputs = config.vix_virtual_inputs;
  params.router.interleaved_vins = config.interleaved_vins;
  params.router.atomic_vc_alloc = config.atomic_vc_alloc;
  params.router.prioritize_nonspeculative = config.prioritize_nonspeculative;
  params.router.va_organization = config.va_organization;
  // Only kRandomFree ever draws from the VA RNG, so seeding it is free for
  // every deterministic policy.
  params.router.vc_rng_seed = config.seed;
  if (config.pipeline_stages == 5) {
    params.router.speculative_sa = false;  // VA and SA in separate stages
    params.flit_delay = 4;                 // ST + LT + RC at the next hop
  }

  // Fault schedule and detour routing are pure functions of the config, so
  // results are identical regardless of how a sweep is threaded. The
  // routing override must outlive the network (raw pointer in params).
  std::unique_ptr<FaultAwareRouting> fault_routing;
  if (config.faults.Enabled()) {
    const std::uint64_t fault_seed =
        config.faults.seed != 0 ? config.faults.seed : config.seed;
    auto faults =
        std::make_shared<const FaultModel>(*topology, config.faults,
                                           fault_seed);
    if (!faults->permanent_down().empty()) {
      fault_routing = std::make_unique<FaultAwareRouting>(
          *topology, faults->permanent_down());
    }
    params.routing_override = fault_routing.get();
    params.faults = std::move(faults);
  }

  std::unique_ptr<TelemetryCollector> telemetry;
  if (config.telemetry.enabled) {
    telemetry = std::make_unique<TelemetryCollector>(config.telemetry);
    params.telemetry = telemetry.get();
  }

  Network net(topology, params);
  const int num_nodes = net.NumNodes();

  auto pattern = MakePattern(config.pattern);
  Rng rng(config.seed);
  std::unique_ptr<InjectionProcess> injector;
  if (config.bursty) {
    injector = std::make_unique<OnOffInjection>(
        num_nodes, config.injection_rate, config.burst_on_rate,
        config.mean_burst_cycles);
  } else {
    injector = std::make_unique<BernoulliInjection>(config.injection_rate);
  }

  const Cycle measure_start = config.warmup;
  const Cycle measure_end = config.warmup + config.measure;
  const Cycle sim_end = measure_end + config.drain;

  RunningStat latency;
  RunningStat net_latency;
  Histogram latency_hist(/*bucket_width=*/4.0, /*num_buckets=*/4096);
  RunningStat interval_latency;  // latency of packets ejected this interval
  std::uint64_t interval_packets = 0;
  std::uint64_t packets_corrupted = 0;
  Cycle last_delivery = 0;
  net.SetEjectCallback([&](const PacketRecord& rec) {
    last_delivery = rec.ejected;
    if (rec.corrupted) ++packets_corrupted;
    if (rec.created >= measure_start && rec.created < measure_end) {
      latency.Add(static_cast<double>(rec.ejected - rec.created));
      net_latency.Add(static_cast<double>(rec.ejected - rec.injected));
      latency_hist.Add(static_cast<double>(rec.ejected - rec.created));
    }
    if (config.sample_interval > 0) {
      interval_latency.Add(static_cast<double>(rec.ejected - rec.created));
      ++interval_packets;
    }
  });

  std::vector<NodeCounters> at_measure_start(num_nodes);
  std::vector<NodeCounters> at_measure_end(num_nodes);
  bool measure_window_closed = false;
  RouterActivity activity_snapshot;
  std::uint64_t offered_packets = 0;

  NetworkSimResult result;
  SimOutcome outcome;
  for (Cycle t = 0; t < sim_end; ++t) {
    if (config.sample_interval > 0 && t > 0 &&
        t % config.sample_interval == 0) {
      IntervalSample sample;
      sample.start = t - config.sample_interval;
      sample.packets = interval_packets;
      sample.accepted_ppc =
          static_cast<double>(interval_packets) /
          (static_cast<double>(config.sample_interval) * num_nodes);
      sample.avg_latency = interval_latency.Mean();
      result.timeline.push_back(sample);
      interval_latency.Reset();
      interval_packets = 0;
    }
    if (t == measure_start) {
      for (NodeId n = 0; n < num_nodes; ++n) {
        at_measure_start[n] = net.counters(n);
      }
      net.ClearActivity();
      if (telemetry != nullptr) telemetry->ResetCounters();
    }
    if (t == measure_end) {
      for (NodeId n = 0; n < num_nodes; ++n) {
        at_measure_end[n] = net.counters(n);
      }
      activity_snapshot = net.TotalActivity();
      measure_window_closed = true;
      // Counter aggregates are frozen here; windows and trace (snapshotted
      // again after the loop) keep running through the drain.
      if (telemetry != nullptr) result.telemetry = telemetry->Summarize();
    }
    // Injection at every node, including during drain (holding the load
    // keeps measured packets under realistic contention).
    for (NodeId n = 0; n < num_nodes; ++n) {
      if (injector->ShouldInject(n, rng)) {
        // Draw the destination before the reachability gate so the RNG
        // stream — and therefore every reachable packet — is identical to
        // the fault-free run.
        const NodeId dst = pattern->Dest(n, num_nodes, rng);
        if (fault_routing != nullptr &&
            !fault_routing->Reachable(net.topology().RouterOfNode(n), dst)) {
          ++outcome.unreachable_packets;
          continue;
        }
        net.EnqueuePacket(n, dst, config.packet_size);
        if (t >= measure_start && t < measure_end) ++offered_packets;
      }
    }
    net.Step();
    if (config.watchdog_cycles > 0 &&
        net.SuspectedDeadlock(config.watchdog_cycles)) {
      outcome.status = SimStatus::kDeadlock;
      outcome.cycle = net.now();
      outcome.router_occupancy = net.OccupancySnapshot();
      outcome.message = "no flit movement for " +
                        std::to_string(config.watchdog_cycles) +
                        " cycles with flits in flight (detected at cycle " +
                        std::to_string(net.now()) + ")";
      break;
    }
  }

  result.num_nodes = num_nodes;
  result.measure_cycles = config.measure;
  result.offered_ppc = config.injection_rate;
  result.packets_corrupted = packets_corrupted;

  if (telemetry != nullptr) {
    // A run that ended before measure_end has no frozen counter snapshot;
    // fall back to end-of-run aggregates so the telemetry is never silently
    // empty (outcome.status already marks the metrics untrustworthy).
    if (!measure_window_closed) result.telemetry = telemetry->Summarize();
    result.telemetry.windows = telemetry->windows();
    result.telemetry.trace = telemetry->trace_events();
  }

  // A deadlock before the measurement window closes leaves the end-of-window
  // snapshot unset; report the structured outcome and keep the metrics zero
  // rather than publishing garbage.
  if (measure_window_closed) {
    std::uint64_t delivered_total = 0;
    std::uint64_t flits_total = 0;
    double min_node = 1e300, max_node = 0.0;
    for (NodeId n = 0; n < num_nodes; ++n) {
      const std::uint64_t delivered = at_measure_end[n].packets_delivered -
                                      at_measure_start[n].packets_delivered;
      const std::uint64_t flits =
          at_measure_end[n].flits_ejected - at_measure_start[n].flits_ejected;
      delivered_total += delivered;
      flits_total += flits;
      const double node_ppc =
          static_cast<double>(delivered) / static_cast<double>(config.measure);
      min_node = std::min(min_node, node_ppc);
      max_node = std::max(max_node, node_ppc);
    }
    result.accepted_ppc =
        static_cast<double>(delivered_total) /
        (static_cast<double>(config.measure) * num_nodes);
    result.accepted_fpc =
        static_cast<double>(flits_total) / static_cast<double>(config.measure);
    result.min_node_ppc = min_node;
    result.max_node_ppc = max_node;
    result.max_min_ratio = min_node > 0.0 ? max_node / min_node : 0.0;
    result.avg_latency = latency.Mean();
    result.avg_net_latency = net_latency.Mean();
    result.p99_latency = latency_hist.Quantile(0.99);
    result.packets_measured = latency.Count();
    const double offered_meas =
        static_cast<double>(offered_packets) /
        (static_cast<double>(config.measure) * num_nodes);
    result.saturated = result.accepted_ppc < 0.95 * offered_meas;
    result.activity = activity_snapshot;
  }

  if (outcome.status == SimStatus::kOk && config.faults.Enabled()) {
    if (outcome.unreachable_packets > 0) {
      outcome.status = SimStatus::kUndeliverable;
      outcome.message = std::to_string(outcome.unreachable_packets) +
                        " packets had no surviving path to their destination";
    } else if (config.watchdog_cycles > 0 && !net.Quiescent() &&
               !result.saturated &&
               net.now() - last_delivery > config.watchdog_cycles) {
      // Flits are in flight but nothing has been *delivered* for a whole
      // watchdog window — livelock, or traffic wedged short of the full
      // no-movement deadlock criterion. (Injection continues through the
      // drain by design, so mere non-quiescence at the end is normal.)
      outcome.status = SimStatus::kUndeliverable;
      outcome.message = "no packet delivered since cycle " +
                        std::to_string(last_delivery) +
                        " with flits still in flight at end of drain";
    }
  }
  result.outcome = std::move(outcome);
  return result;
}

}  // namespace vixnoc
