#include "sim/network_sim.hpp"

#include <algorithm>
#include <vector>

#include "traffic/injection.hpp"

namespace vixnoc {

NetworkSimResult RunNetworkSim(const NetworkSimConfig& config) {
  VIXNOC_CHECK(config.injection_rate >= 0.0 && config.injection_rate <= 1.0);

  auto topology = config.topology_factory ? config.topology_factory()
                                          : MakeTopology64(config.topology);
  NetworkParams params;
  params.router.radix = topology->Radix();
  params.router.num_vcs = config.num_vcs;
  params.router.buffer_depth = config.buffer_depth;
  params.router.scheme = config.scheme;
  params.router.arbiter_kind = config.arbiter;
  params.router.vc_policy =
      config.vc_policy.value_or(RouterConfig::DefaultPolicyFor(config.scheme));
  params.router.ap_rotate_vcs = config.ap_rotate_vcs;
  params.router.vix_virtual_inputs = config.vix_virtual_inputs;
  params.router.interleaved_vins = config.interleaved_vins;
  params.router.atomic_vc_alloc = config.atomic_vc_alloc;
  params.router.prioritize_nonspeculative = config.prioritize_nonspeculative;
  params.router.va_organization = config.va_organization;
  VIXNOC_CHECK(config.pipeline_stages == 3 || config.pipeline_stages == 5);
  if (config.pipeline_stages == 5) {
    params.router.speculative_sa = false;  // VA and SA in separate stages
    params.flit_delay = 4;                 // ST + LT + RC at the next hop
  }

  Network net(std::shared_ptr<Topology>(std::move(topology)), params);
  const int num_nodes = net.NumNodes();

  auto pattern = MakePattern(config.pattern);
  Rng rng(config.seed);
  std::unique_ptr<InjectionProcess> injector;
  if (config.bursty) {
    injector = std::make_unique<OnOffInjection>(
        num_nodes, config.injection_rate, config.burst_on_rate,
        config.mean_burst_cycles);
  } else {
    injector = std::make_unique<BernoulliInjection>(config.injection_rate);
  }

  const Cycle measure_start = config.warmup;
  const Cycle measure_end = config.warmup + config.measure;
  const Cycle sim_end = measure_end + config.drain;

  RunningStat latency;
  RunningStat net_latency;
  Histogram latency_hist(/*bucket_width=*/4.0, /*num_buckets=*/4096);
  RunningStat interval_latency;  // latency of packets ejected this interval
  std::uint64_t interval_packets = 0;
  net.SetEjectCallback([&](const PacketRecord& rec) {
    if (rec.created >= measure_start && rec.created < measure_end) {
      latency.Add(static_cast<double>(rec.ejected - rec.created));
      net_latency.Add(static_cast<double>(rec.ejected - rec.injected));
      latency_hist.Add(static_cast<double>(rec.ejected - rec.created));
    }
    if (config.sample_interval > 0) {
      interval_latency.Add(static_cast<double>(rec.ejected - rec.created));
      ++interval_packets;
    }
  });

  std::vector<NodeCounters> at_measure_start(num_nodes);
  std::vector<NodeCounters> at_measure_end(num_nodes);
  RouterActivity activity_snapshot;
  std::uint64_t offered_packets = 0;

  NetworkSimResult result;
  for (Cycle t = 0; t < sim_end; ++t) {
    if (config.sample_interval > 0 && t > 0 &&
        t % config.sample_interval == 0) {
      IntervalSample sample;
      sample.start = t - config.sample_interval;
      sample.packets = interval_packets;
      sample.accepted_ppc =
          static_cast<double>(interval_packets) /
          (static_cast<double>(config.sample_interval) * num_nodes);
      sample.avg_latency = interval_latency.Mean();
      result.timeline.push_back(sample);
      interval_latency.Reset();
      interval_packets = 0;
    }
    if (t == measure_start) {
      for (NodeId n = 0; n < num_nodes; ++n) {
        at_measure_start[n] = net.counters(n);
      }
      net.ClearActivity();
    }
    if (t == measure_end) {
      for (NodeId n = 0; n < num_nodes; ++n) {
        at_measure_end[n] = net.counters(n);
      }
      activity_snapshot = net.TotalActivity();
    }
    // Injection at every node, including during drain (holding the load
    // keeps measured packets under realistic contention).
    for (NodeId n = 0; n < num_nodes; ++n) {
      if (injector->ShouldInject(n, rng)) {
        const NodeId dst = pattern->Dest(n, num_nodes, rng);
        net.EnqueuePacket(n, dst, config.packet_size);
        if (t >= measure_start && t < measure_end) ++offered_packets;
      }
    }
    net.Step();
  }

  result.num_nodes = num_nodes;
  result.measure_cycles = config.measure;
  result.offered_ppc = config.injection_rate;

  std::uint64_t delivered_total = 0;
  std::uint64_t flits_total = 0;
  double min_node = 1e300, max_node = 0.0;
  for (NodeId n = 0; n < num_nodes; ++n) {
    const std::uint64_t delivered = at_measure_end[n].packets_delivered -
                                    at_measure_start[n].packets_delivered;
    const std::uint64_t flits =
        at_measure_end[n].flits_ejected - at_measure_start[n].flits_ejected;
    delivered_total += delivered;
    flits_total += flits;
    const double node_ppc =
        static_cast<double>(delivered) / static_cast<double>(config.measure);
    min_node = std::min(min_node, node_ppc);
    max_node = std::max(max_node, node_ppc);
  }
  result.accepted_ppc =
      static_cast<double>(delivered_total) /
      (static_cast<double>(config.measure) * num_nodes);
  result.accepted_fpc =
      static_cast<double>(flits_total) / static_cast<double>(config.measure);
  result.min_node_ppc = min_node;
  result.max_node_ppc = max_node;
  result.max_min_ratio = min_node > 0.0 ? max_node / min_node : 0.0;
  result.avg_latency = latency.Mean();
  result.avg_net_latency = net_latency.Mean();
  result.p99_latency = latency_hist.Quantile(0.99);
  result.packets_measured = latency.Count();
  const double offered_meas =
      static_cast<double>(offered_packets) /
      (static_cast<double>(config.measure) * num_nodes);
  result.saturated = result.accepted_ppc < 0.95 * offered_meas;
  result.activity = activity_snapshot;
  return result;
}

}  // namespace vixnoc
